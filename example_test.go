package secdir_test

import (
	"fmt"

	"secdir"
)

// ExampleNewMachine builds a SecDir machine and performs a few accesses.
func ExampleNewMachine() {
	m, err := secdir.NewMachine(secdir.SecDirConfig(8))
	if err != nil {
		panic(err)
	}
	line := secdir.LineOf(0x1234_0000)
	r := m.Access(0, line, false)
	fmt.Println("first read:", r.Level)
	r = m.Access(0, line, false)
	fmt.Println("second read:", r.Level)
	// Output:
	// first read: memory
	// second read: L1
}

// ExampleMachine_EvictReload shows the directory attack blocked by SecDir.
func ExampleMachine_EvictReload() {
	m, err := secdir.NewMachine(secdir.SecDirConfig(8))
	if err != nil {
		panic(err)
	}
	res, err := m.EvictReload(0, []int{1, 2, 3, 4, 5, 6, 7}, secdir.AEST0Lines()[0], 40)
	if err != nil {
		panic(err)
	}
	fmt.Printf("victim evictions: %d/%d\n", res.VictimEvictions, res.Rounds)
	fmt.Printf("attack accuracy: %.2f\n", res.Accuracy())
	// Output:
	// victim evictions: 0/40
	// attack accuracy: 0.50
}

// ExampleRun executes a Table 5 SPEC mix on the SecDir machine.
func ExampleRun() {
	w, err := secdir.NewSpecMix(0, 8, 1)
	if err != nil {
		panic(err)
	}
	res, err := secdir.Run(secdir.RunOptions{
		Config:          secdir.SecDirConfig(8),
		Work:            w,
		WarmupAccesses:  10_000,
		MeasureAccesses: 10_000,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("cores measured:", len(res.PerCore))
	fmt.Println("throughput positive:", res.TotalIPC() > 0)
	// Output:
	// cores measured: 8
	// throughput positive: true
}

// ExampleMachine_CheckInvariants verifies machine-wide coherence after
// cross-core traffic.
func ExampleMachine_CheckInvariants() {
	m, err := secdir.NewMachine(secdir.SkylakeX(8))
	if err != nil {
		panic(err)
	}
	l := secdir.LineOf(0xBEEF_0000)
	m.Access(0, l, false)
	m.Access(1, l, false)
	m.Access(2, l, true) // invalidates cores 0 and 1
	fmt.Println("core 0 still caches:", m.Contains(0, l))
	fmt.Println("invariants:", m.CheckInvariants())
	// Output:
	// core 0 still caches: false
	// invariants: <nil>
}
