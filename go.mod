module secdir

go 1.22
