package secdir_test

import (
	"testing"

	"secdir"
)

func TestPublicAPIQuickstart(t *testing.T) {
	m, err := secdir.NewMachine(secdir.SecDirConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	line := secdir.LineOf(0x1234_0000)

	if r := m.Access(0, line, false); r.Level != secdir.LevelMemory {
		t.Fatalf("cold access level %v", r.Level)
	}
	if r := m.Access(0, line, false); r.Level != secdir.LevelL1 {
		t.Fatalf("warm access level %v", r.Level)
	}
	if !m.Contains(0, line) {
		t.Fatal("Contains false for a cached line")
	}
	m.Access(1, line, true)
	if m.Contains(0, line) {
		t.Fatal("write did not invalidate the old sharer")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	m.Flush(1)
	if m.Contains(1, line) {
		t.Fatal("Flush left the line cached")
	}
}

func TestPublicAPIRun(t *testing.T) {
	w, err := secdir.NewSpecMix(0, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := secdir.Run(secdir.RunOptions{
		Config:          secdir.SecDirConfig(8),
		Work:            w,
		WarmupAccesses:  5_000,
		MeasureAccesses: 5_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalIPC() <= 0 {
		t.Fatal("no throughput measured")
	}
	if len(res.PerCore) != 8 {
		t.Fatalf("PerCore = %d", len(res.PerCore))
	}
}

func TestPublicAPIWorkloads(t *testing.T) {
	names := secdir.ParsecNames()
	if len(names) != 9 {
		t.Fatalf("PARSEC catalogue has %d apps, want 9 (Figure 8)", len(names))
	}
	if _, err := secdir.NewParsecWorkload(names[0], 8, 1); err != nil {
		t.Fatal(err)
	}
	var key [16]byte
	v := secdir.NewAESVictim(key, 1)
	if a := v.Next(); a.Write {
		t.Fatal("AES victim wrote")
	}
	if got := len(secdir.AEST0Lines()); got != 16 {
		t.Fatalf("T0 lines = %d", got)
	}
}

func TestPublicAPIAttack(t *testing.T) {
	target := secdir.AEST0Lines()[0]
	attackers := []int{1, 2, 3, 4, 5, 6, 7}

	mb, err := secdir.NewMachine(secdir.SkylakeX(8))
	if err != nil {
		t.Fatal(err)
	}
	rb, err := mb.EvictReload(0, attackers, target, 20)
	if err != nil {
		t.Fatal(err)
	}
	if rb.Accuracy() < 0.9 {
		t.Fatalf("baseline attack accuracy %v", rb.Accuracy())
	}

	ms, err := secdir.NewMachine(secdir.SecDirConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	rs, err := ms.EvictReload(0, attackers, target, 20)
	if err != nil {
		t.Fatal(err)
	}
	if rs.VictimEvictions != 0 {
		t.Fatalf("SecDir suffered %d victim evictions", rs.VictimEvictions)
	}
	if _, err := ms.PrimeProbe(0, attackers, target, 10); err != nil {
		t.Fatal(err)
	}
}
