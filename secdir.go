// Package secdir is a behavioural simulator of SecDir, the secure
// cache-coherence directory of Yan, Wen, Fletcher and Torrellas (ISCA 2019),
// together with the Skylake-X-style baseline directory it hardens, a MOESI
// multicore cache model, the paper's workloads, and a directory side-channel
// attack toolkit.
//
// The package is a facade over the implementation packages:
//
//   - NewMachine builds a multicore machine (private L1/L2 per core, one
//     LLC/directory slice per core) with either the Baseline directory
//     (TD + 12-way ED, Figure 2a) or SecDir (TD + 8-way ED + per-core cuckoo
//     Victim Directories, Figure 2b).
//   - Run drives a Workload over a machine and reports IPC and L2-miss
//     breakdowns.
//   - The trace constructors (SPEC mixes, PARSEC applications, the AES
//     T-table victim) rebuild the paper's evaluation workloads.
//   - The attack functions mount cross-core conflict-based directory
//     attacks (evict+reload, prime+probe) and report whether they succeed.
//
// Quick start:
//
//	cfg := secdir.SecDirConfig(8)
//	m, err := secdir.NewMachine(cfg)
//	...
//	res := m.Access(0, secdir.LineOf(0x1234_0000), false)
//
// See DESIGN.md for the architecture and EXPERIMENTS.md for the reproduction
// of every table and figure in the paper.
package secdir

import (
	"secdir/internal/addr"
	"secdir/internal/attack"
	"secdir/internal/coherence"
	"secdir/internal/config"
	"secdir/internal/sim"
	"secdir/internal/trace"
)

// Core types, aliased so the public API is self-contained.
type (
	// Config describes a simulated machine (caches, directory geometry,
	// latencies). Use SkylakeX or SecDirConfig for the paper's designs.
	Config = config.Config
	// Line is a physical cache-line address.
	Line = addr.Line
	// Workload binds one access-trace generator per core.
	Workload = trace.Workload
	// Generator produces a core's memory access stream.
	Generator = trace.Generator
	// Access is one memory reference of a generator.
	Access = trace.Access
	// AccessResult reports where a single access was satisfied.
	AccessResult = coherence.AccessResult
	// Result is the outcome of a Run.
	Result = sim.Result
	// RunOptions configures a Run.
	RunOptions = sim.Options
)

// Directory organizations.
const (
	// Baseline is the Skylake-X-style directory, vulnerable to
	// conflict-based directory attacks.
	Baseline = config.Baseline
	// SecDir is the paper's secure directory.
	SecDir = config.SecDir
	// WayPartitioned is the §1/§11 DAWG-style alternative: secure but
	// inflexible (unbuildable beyond 11 cores at baseline geometry).
	WayPartitioned = config.WayPartitioned
	// RandMapped is the §11 CEASER-style alternative: randomized set
	// indices defeat targeted eviction sets but only slow down floods.
	RandMapped = config.RandMapped
)

// Access levels, re-exported for classifying AccessResult.Level.
const (
	LevelL1     = coherence.LevelL1
	LevelL2     = coherence.LevelL2
	LevelEDTD   = coherence.LevelEDTD
	LevelVD     = coherence.LevelVD
	LevelMemory = coherence.LevelMemory
)

// Coherence protocols (Config.Protocol).
const (
	// MOESI is the paper's evaluation protocol (§8).
	MOESI = config.MOESI
	// MESI writes dirty data back on read-sharing instead of keeping an
	// Owned copy.
	MESI = config.MESI
)

// Timing-channel mitigations (§6, Config.Mitigation).
const (
	// MitigationOff leaves the VD timing difference observable.
	MitigationOff = config.MitigationOff
	// MitigationNaive pads every ED/TD-satisfied transaction.
	MitigationNaive = config.MitigationNaive
	// MitigationSelective pads only cross-core transactions.
	MitigationSelective = config.MitigationSelective
)

// SkylakeX returns the baseline machine configuration of Tables 3/4.
func SkylakeX(cores int) Config { return config.SkylakeX(cores) }

// SecDirConfig returns the SecDir machine configuration of Table 4.
func SecDirConfig(cores int) Config { return config.SecDirConfig(cores) }

// WayPartitionedConfig returns the way-partitioned alternative design;
// NewMachine fails once cores exceed the directory way count.
func WayPartitionedConfig(cores int) Config { return config.WayPartitionedConfig(cores) }

// RandMappedConfig returns the CEASER-style randomized directory, re-keying
// every rekeyEvery slice operations.
func RandMappedConfig(cores, rekeyEvery int) Config {
	return config.RandMappedConfig(cores, rekeyEvery)
}

// LineOf returns the cache line containing the physical byte address.
func LineOf(pa uint64) Line { return addr.LineOf(pa) }

// Machine is a simulated multicore with a coherent cache hierarchy.
type Machine struct {
	eng *coherence.Engine
}

// NewMachine builds a machine from the configuration.
func NewMachine(cfg Config) (*Machine, error) {
	e, err := coherence.NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	return &Machine{eng: e}, nil
}

// Access performs one memory access by a core and returns where it was
// satisfied and the latency charged.
func (m *Machine) Access(core int, line Line, write bool) AccessResult {
	return m.eng.Access(core, line, write)
}

// Contains reports whether the core's private caches hold the line.
func (m *Machine) Contains(core int, line Line) bool {
	return m.eng.L2Contains(core, line)
}

// Flush evicts every line from the core's private caches, updating the
// directory as ordinary evictions would.
func (m *Machine) Flush(core int) { m.eng.FlushCore(core) }

// CheckInvariants verifies the machine-wide coherence invariants; it returns
// nil when the directory, cache and sharer state are mutually consistent.
func (m *Machine) CheckInvariants() error { return m.eng.CheckInvariants() }

// Engine exposes the underlying coherence engine for advanced use
// (statistics, per-slice inspection, the attack toolkit).
func (m *Machine) Engine() *coherence.Engine { return m.eng }

// Run builds a machine and drives the workload over it, returning the
// measured-phase results.
func Run(opts RunOptions) (Result, error) {
	r, err := sim.New(opts)
	if err != nil {
		return Result{}, err
	}
	return r.Run(), nil
}

// Workload constructors (the paper's evaluation workloads).

// NewSpecMix returns SPEC mix i (0..11) of Table 5 for the given core count.
func NewSpecMix(i, cores int, seed int64) (Workload, error) {
	return trace.NewSpecMix(i, cores, seed)
}

// NewParsecWorkload returns the named PARSEC-like application with one
// thread per core. See ParsecNames for the catalogue.
func NewParsecWorkload(name string, cores int, seed int64) (Workload, error) {
	return trace.NewParsecWorkload(name, cores, seed)
}

// ParsecNames lists the PARSEC application catalogue.
func ParsecNames() []string { return trace.ParsecNames() }

// NewAESVictim returns a generator that performs AES-128 T-table encryptions
// of random plaintexts and emits the table-access trace (the §9 victim).
func NewAESVictim(key [16]byte, seed int64) Generator {
	return trace.NewAESVictim(key, seed)
}

// AEST0Lines returns the 16 cache lines of the AES T0 table, the monitoring
// targets of the §9 security evaluation.
func AEST0Lines() []Line { return trace.T0Lines() }

// Attack toolkit.

// EvictReloadResult is the outcome of an evict+reload attack.
type EvictReloadResult = attack.EvictReloadResult

// PrimeProbeResult is the outcome of a prime+probe attack.
type PrimeProbeResult = attack.PrimeProbeResult

// EvictReload mounts the cross-core evict+reload directory attack of §2.2
// against the target line: the attacker cores build a directory eviction set
// and try to observe whether the victim core accesses the target.
func (m *Machine) EvictReload(victim int, attackers []int, target Line, rounds int) (EvictReloadResult, error) {
	return attack.EvictReload(m.eng, victim, attackers, target, rounds, 32)
}

// PrimeProbe mounts the cross-core prime+probe directory attack against the
// target line.
func (m *Machine) PrimeProbe(victim int, attackers []int, target Line, rounds int) (PrimeProbeResult, error) {
	return attack.PrimeProbe(m.eng, victim, attackers, target, rounds, 32)
}

// EvictTimeResult is the outcome of an evict+time attack.
type EvictTimeResult = attack.EvictTimeResult

// KeyRecoveryResult is the outcome of the AES first-round key-recovery
// attack.
type KeyRecoveryResult = attack.KeyRecoveryResult

// EvictTime mounts the evict+time variant (§2.2): the attacker evicts via
// directory conflicts and then times the victim's operation.
func (m *Machine) EvictTime(victim int, attackers []int, target Line, rounds int) (EvictTimeResult, error) {
	return attack.EvictTime(m.eng, victim, attackers, target, rounds, 32)
}

// FloodReload mounts the brute-force variant of evict+reload: instead of a
// targeted eviction set, the attackers flood the target's home slice with
// floodLines lines across many sets — the only attack shape left against a
// randomized (CEASER-style) directory, at ~1000× the cost (§11).
func (m *Machine) FloodReload(victim int, attackers []int, target Line, rounds, floodLines int) (EvictReloadResult, error) {
	return attack.FloodReload(m.eng, victim, attackers, target, rounds, floodLines)
}

// RecoverAESKey mounts the end-to-end payload of the §9 scenario: the
// Osvik-Shamir-Tromer first-round attack carried by directory conflicts,
// recovering the high nibbles of AES key bytes 0, 4, 8 and 12 from a victim
// encrypting on victimCore. On SecDir the oracle saturates and every nibble
// comes back unrecovered (-1).
func (m *Machine) RecoverAESKey(victim int, attackers []int, key [16]byte, encsPerGuess int) (KeyRecoveryResult, error) {
	return attack.RecoverAESKey(m.eng, victim, attackers, key, encsPerGuess)
}
