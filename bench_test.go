// Benchmarks that regenerate every table and figure of the SecDir paper's
// evaluation, plus ablations of the design choices called out in DESIGN.md.
// Aggregate results are attached as custom benchmark metrics; the full tables
// are printed by cmd/secdir-experiments.
package secdir_test

import (
	"context"
	"testing"

	"secdir/internal/area"
	"secdir/internal/attack"
	"secdir/internal/cachesim"
	"secdir/internal/coherence"
	"secdir/internal/config"
	"secdir/internal/experiments"
	"secdir/internal/sim"
	"secdir/internal/trace"
)

// benchOpts keeps the per-iteration simulation cost bounded; the published
// numbers in EXPERIMENTS.md use the longer default lengths.
func benchOpts() experiments.RunOpts {
	return experiments.RunOpts{Warmup: 30_000, Measure: 30_000, Cores: 8, Seed: 1}
}

// BenchmarkExpA1AssociativityAnalysis regenerates the §2.3 analysis.
func BenchmarkExpA1AssociativityAnalysis(b *testing.B) {
	var last []experiments.A1Row
	for i := 0; i < b.N; i++ {
		last = experiments.AssociativityAnalysis()
	}
	for _, r := range last {
		if r.Cores == 8 {
			b.ReportMetric(float64(r.Required), "required-assoc-8c")
		}
	}
}

// BenchmarkExpF5VDSizing regenerates Figure 5.
func BenchmarkExpF5VDSizing(b *testing.B) {
	var rows []experiments.F5Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig5VDSizing()
	}
	for _, r := range rows {
		if r.Cores == 8 {
			b.ReportMetric(r.Ratios[8], "ratio-8c-wed8")
		}
		if r.Cores == 128 {
			b.ReportMetric(r.Ratios[6], "ratio-128c-wed6")
		}
	}
}

// BenchmarkExpF6AESTrace regenerates Figure 6.
func BenchmarkExpF6AESTrace(b *testing.B) {
	o := benchOpts()
	var res experiments.F6Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Fig6AESTrace(context.Background(), o)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.MemAccesses), "T0-mem-accesses")
	b.ReportMetric(float64(res.VDOrEDTD), "T0-dir-refetches")
}

// BenchmarkExpF7SPECMixes regenerates Figure 7 and reports the average
// normalized IPC and L2-miss count (SecDir/Baseline).
func BenchmarkExpF7SPECMixes(b *testing.B) {
	o := benchOpts()
	var rows []experiments.PerfRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Fig7SPECMixes(context.Background(), o)
		if err != nil {
			b.Fatal(err)
		}
	}
	var ipc, miss float64
	for _, r := range rows {
		ipc += r.NormIPC
		miss += r.NormMisses
	}
	n := float64(len(rows))
	b.ReportMetric(ipc/n, "avg-norm-IPC")
	b.ReportMetric(miss/n, "avg-norm-misses")
}

// BenchmarkExpF8PARSEC regenerates Figure 8 and reports the average
// normalized execution time and miss count, plus freqmine's VD-hit share.
func BenchmarkExpF8PARSEC(b *testing.B) {
	o := benchOpts()
	var rows []experiments.PerfRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Fig8PARSEC(context.Background(), o)
		if err != nil {
			b.Fatal(err)
		}
	}
	var t, miss float64
	for _, r := range rows {
		t += r.NormTime
		miss += r.NormMisses
		if r.Name == "freqmine" && r.SecDir.Total() > 0 {
			b.ReportMetric(float64(r.SecDir.VDHits)/float64(r.SecDir.Total()), "freqmine-vd-hit-frac")
		}
	}
	n := float64(len(rows))
	b.ReportMetric(t/n, "avg-norm-time")
	b.ReportMetric(miss/n, "avg-norm-misses")
}

// BenchmarkExpT6VDFeatures regenerates Table 6 and reports the average
// EBVD/NoEBVD and CKVD/NoCKVD ratios.
func BenchmarkExpT6VDFeatures(b *testing.B) {
	o := benchOpts()
	var spec, parsec []experiments.T6Row
	for i := 0; i < b.N; i++ {
		var err error
		spec, err = experiments.Table6SPEC(context.Background(), o)
		if err != nil {
			b.Fatal(err)
		}
		parsec, err = experiments.Table6PARSEC(context.Background(), o)
		if err != nil {
			b.Fatal(err)
		}
	}
	avg := func(rows []experiments.T6Row) (eb, ck float64) {
		for _, r := range rows {
			eb += r.EBRatio
			ck += r.CKRatio
		}
		n := float64(len(rows))
		return eb / n, ck / n
	}
	eb, ck := avg(spec)
	b.ReportMetric(eb, "spec-EB-ratio")
	b.ReportMetric(ck, "spec-CK-ratio")
	eb, ck = avg(parsec)
	b.ReportMetric(eb, "parsec-EB-ratio")
	b.ReportMetric(ck, "parsec-CK-ratio")
}

// BenchmarkExpT7StorageArea regenerates Table 7.
func BenchmarkExpT7StorageArea(b *testing.B) {
	var rows []experiments.T7Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Table7StorageArea(8)
	}
	for _, r := range rows {
		if r.Design == "secdir" && r.Structure == "VD" {
			b.ReportMetric(r.KB, "VD-KB")
		}
	}
}

// BenchmarkExpS1Attack regenerates the §9 security comparison.
func BenchmarkExpS1Attack(b *testing.B) {
	o := benchOpts()
	var res experiments.S1Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.SecurityAttack(context.Background(), o)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.BaselineAccuracy, "baseline-accuracy")
	b.ReportMetric(res.SecDirAccuracy, "secdir-accuracy")
	b.ReportMetric(float64(res.SecDirVictimEvictions), "secdir-victim-evictions")
}

// ---------------------------------------------------------------------------
// Ablations (design choices called out in §5.2 and §7).

// attackVDConflicts measures a victim's VD self-conflicts per 100k accesses
// under the worst-case attack emulation (ED/TD disabled), for a given VD
// variant.
func attackVDConflicts(b *testing.B, mutate func(*config.Config)) float64 {
	b.Helper()
	cfg := config.SecDirConfig(8)
	cfg.DisableEDTD = true
	mutate(&cfg)
	w, err := trace.NewSpecMix(2, 8, 1)
	if err != nil {
		b.Fatal(err)
	}
	r, err := sim.New(sim.Options{Config: cfg, Work: w, WarmupAccesses: 20_000, MeasureAccesses: 50_000})
	if err != nil {
		b.Fatal(err)
	}
	res := r.Run()
	var accesses uint64
	for _, c := range res.PerCore {
		accesses += c.Stats.Accesses
	}
	return float64(res.VDSelfConflicts) / float64(accesses) * 100_000
}

// BenchmarkAblationNumRelocations sweeps the cuckoo relocation bound (§5.2.1
// names NumRelocations=8; more relocations mean fewer forced evictions).
func BenchmarkAblationNumRelocations(b *testing.B) {
	for _, n := range []int{0, 2, 4, 8, 16} {
		n := n
		b.Run(benchName("relocations", n), func(b *testing.B) {
			var c float64
			for i := 0; i < b.N; i++ {
				c = attackVDConflicts(b, func(cfg *config.Config) { cfg.NumRelocations = n })
			}
			b.ReportMetric(c, "vd-conflicts/100k")
		})
	}
}

// BenchmarkAblationCuckoo compares cuckoo vs. plain single-hash VD banks —
// the CKVD/NoCKVD comparison of Table 6 as a bench.
func BenchmarkAblationCuckoo(b *testing.B) {
	for _, cuckoo := range []bool{true, false} {
		cuckoo := cuckoo
		name := "plain"
		if cuckoo {
			name = "cuckoo"
		}
		b.Run(name, func(b *testing.B) {
			var c float64
			for i := 0; i < b.N; i++ {
				c = attackVDConflicts(b, func(cfg *config.Config) { cfg.VDCuckoo = cuckoo })
			}
			b.ReportMetric(c, "vd-conflicts/100k")
		})
	}
}

// BenchmarkAblationEmptyBit measures the VD bank look-up reduction from the
// Empty Bit (§5.2.2).
func BenchmarkAblationEmptyBit(b *testing.B) {
	cfg := config.SecDirConfig(8)
	var ratio float64
	for i := 0; i < b.N; i++ {
		w, err := trace.NewSpecMix(2, 8, 1)
		if err != nil {
			b.Fatal(err)
		}
		r, err := sim.New(sim.Options{Config: cfg, Work: w, WarmupAccesses: 20_000, MeasureAccesses: 50_000})
		if err != nil {
			b.Fatal(err)
		}
		res := r.Run()
		if res.Dir.VDLookupsNoEB > 0 {
			ratio = float64(res.Dir.VDLookups) / float64(res.Dir.VDLookupsNoEB)
		}
	}
	b.ReportMetric(ratio, "EB-lookup-ratio")
}

// BenchmarkAblationWED sweeps how many ways the ED retains (§7 considers
// W_ED = 6..10) and reports the per-core VD capacity each choice buys.
func BenchmarkAblationWED(b *testing.B) {
	for wED := 6; wED <= 10; wED++ {
		wED := wED
		b.Run(benchName("wed", wED), func(b *testing.B) {
			var s area.Sizing
			for i := 0; i < b.N; i++ {
				s = area.SizeVD(8, wED)
			}
			b.ReportMetric(s.Ratio, "vd-entries/L2-lines")
		})
	}
}

// BenchmarkAblationAppendixAFix quantifies the Skylake-X limitation: victim
// line evictions per prime round with and without the fix.
func BenchmarkAblationAppendixAFix(b *testing.B) {
	for _, fix := range []bool{false, true} {
		fix := fix
		name := "unfixed"
		if fix {
			name = "fixed"
		}
		b.Run(name, func(b *testing.B) {
			var evictions float64
			for i := 0; i < b.N; i++ {
				cfg := config.SkylakeX(8)
				cfg.AppendixAFix = fix
				e, err := coherence.NewEngine(cfg)
				if err != nil {
					b.Fatal(err)
				}
				res, err := attack.EvictReload(e, 0, []int{1, 2, 3, 4, 5, 6, 7}, trace.T0Lines()[0], 20, 16)
				if err != nil {
					b.Fatal(err)
				}
				evictions = float64(res.VictimEvictions) / float64(res.Rounds)
			}
			b.ReportMetric(evictions, "victim-evictions/round")
		})
	}
}

// BenchmarkAblationVDStash measures how a small per-bank overflow stash
// (cuckoo-with-stash, a §10.3 future-work extension) cuts worst-case VD
// self-conflicts.
func BenchmarkAblationVDStash(b *testing.B) {
	for _, stash := range []int{0, 2, 4, 8} {
		stash := stash
		b.Run(benchName("stash", stash), func(b *testing.B) {
			var c float64
			for i := 0; i < b.N; i++ {
				c = attackVDConflicts(b, func(cfg *config.Config) { cfg.VDStash = stash })
			}
			b.ReportMetric(c, "vd-conflicts/100k")
		})
	}
}

// BenchmarkAblationSearchBatch measures the IPC cost of the §5.1 batched VD
// search against the fully parallel design.
func BenchmarkAblationSearchBatch(b *testing.B) {
	for _, batch := range []int{0, 2, 4} {
		batch := batch
		b.Run(benchName("batch", batch), func(b *testing.B) {
			var ipc float64
			for i := 0; i < b.N; i++ {
				cfg := config.SecDirConfig(8)
				cfg.VDSearchBatch = batch
				w, err := trace.NewParsecWorkload("freqmine", 8, 1)
				if err != nil {
					b.Fatal(err)
				}
				r, err := sim.New(sim.Options{Config: cfg, Work: w, WarmupAccesses: 20_000, MeasureAccesses: 40_000})
				if err != nil {
					b.Fatal(err)
				}
				ipc = r.Run().TotalIPC()
			}
			b.ReportMetric(ipc, "IPC")
		})
	}
}

// BenchmarkAblationMitigation measures the IPC cost of the §6 timing-channel
// mitigations on a multithreaded workload.
func BenchmarkAblationMitigation(b *testing.B) {
	for _, mit := range []config.TimingMitigation{config.MitigationOff, config.MitigationNaive, config.MitigationSelective} {
		mit := mit
		b.Run(mit.String(), func(b *testing.B) {
			var ipc float64
			for i := 0; i < b.N; i++ {
				cfg := config.SecDirConfig(8)
				cfg.Mitigation = mit
				w, err := trace.NewParsecWorkload("x264", 8, 1)
				if err != nil {
					b.Fatal(err)
				}
				r, err := sim.New(sim.Options{Config: cfg, Work: w, WarmupAccesses: 20_000, MeasureAccesses: 40_000})
				if err != nil {
					b.Fatal(err)
				}
				ipc = r.Run().TotalIPC()
			}
			b.ReportMetric(ipc, "IPC")
		})
	}
}

// BenchmarkAblationProtocol compares MOESI vs MESI memory write-back traffic
// on a sharing-heavy workload.
func BenchmarkAblationProtocol(b *testing.B) {
	for _, p := range []config.Protocol{config.MOESI, config.MESI} {
		p := p
		b.Run(p.String(), func(b *testing.B) {
			var wb float64
			for i := 0; i < b.N; i++ {
				cfg := config.SecDirConfig(8)
				cfg.Protocol = p
				w, err := trace.NewParsecWorkload("x264", 8, 1)
				if err != nil {
					b.Fatal(err)
				}
				r, err := sim.New(sim.Options{Config: cfg, Work: w, WarmupAccesses: 20_000, MeasureAccesses: 40_000})
				if err != nil {
					b.Fatal(err)
				}
				wb = float64(r.Run().MemWritebacks)
			}
			b.ReportMetric(wb, "mem-writebacks")
		})
	}
}

// BenchmarkAccessThroughput measures the simulator's raw access rate on both
// designs (engine hot path, allocation-free steady state).
func BenchmarkAccessThroughput(b *testing.B) {
	for _, kind := range []config.DirectoryKind{config.Baseline, config.SecDir} {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) {
			cfg := config.SkylakeX(8)
			if kind == config.SecDir {
				cfg = config.SecDirConfig(8)
			}
			e, err := coherence.NewEngine(cfg)
			if err != nil {
				b.Fatal(err)
			}
			gen := trace.NewUniform(1<<24, 64<<10, 0.25, 0, 7)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a := gen.Next()
				e.Access(i&7, a.Line, a.Write)
			}
		})
	}
}

// benchName formats a sub-benchmark name with a numeric parameter.
func benchName(prefix string, v int) string {
	const digits = "0123456789"
	if v == 0 {
		return prefix + "=0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = digits[v%10]
		v /= 10
	}
	return prefix + "=" + string(buf[i:])
}

// BenchmarkAblationL2Policy compares private-cache replacement policies
// under a Table 5 mix: the defense and miss-reduction shape must not depend
// on the exact L2 policy, but absolute miss counts do.
func BenchmarkAblationL2Policy(b *testing.B) {
	for _, p := range []cachesim.Policy{cachesim.LRU, cachesim.SRRIP, cachesim.PLRU, cachesim.Random} {
		p := p
		b.Run(p.String(), func(b *testing.B) {
			var misses float64
			for i := 0; i < b.N; i++ {
				cfg := config.SecDirConfig(8)
				cfg.L2Policy = p
				w, err := trace.NewSpecMix(2, 8, 1)
				if err != nil {
					b.Fatal(err)
				}
				r, err := sim.New(sim.Options{Config: cfg, Work: w, WarmupAccesses: 20_000, MeasureAccesses: 40_000})
				if err != nil {
					b.Fatal(err)
				}
				misses = float64(r.Run().L2Misses())
			}
			b.ReportMetric(misses, "L2-misses")
		})
	}
}
