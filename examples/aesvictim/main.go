// AES victim demo (§9 of the paper): a victim core runs AES-128 T-table
// encryptions while attacker cores monitor one T-table line with the
// evict+reload directory attack. On the baseline directory the attacker
// recovers the victim's table-access pattern; on SecDir it learns nothing.
package main

import (
	"fmt"
	"log"

	"secdir"
)

func main() {
	key := [16]byte{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
		0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c}

	for _, mk := range []struct {
		name string
		cfg  secdir.Config
	}{
		{"baseline (Skylake-X-style)", secdir.SkylakeX(8)},
		{"SecDir", secdir.SecDirConfig(8)},
	} {
		fmt.Printf("=== %s ===\n", mk.name)
		m, err := secdir.NewMachine(mk.cfg)
		if err != nil {
			log.Fatal(err)
		}

		// The victim (core 0) encrypts; its T-table loads stream through
		// the cache hierarchy.
		victim := secdir.NewAESVictim(key, 1)
		warm := func(accesses int) {
			for i := 0; i < accesses; i++ {
				a := victim.Next()
				m.Access(0, a.Line, a.Write)
			}
		}
		warm(5_000)

		// The attacker (cores 1..7) monitors T0 line 0 with evict+reload:
		// evict the victim's directory entry by conflicts, let the victim
		// encrypt, then reload and time.
		target := secdir.AEST0Lines()[0]
		attackers := []int{1, 2, 3, 4, 5, 6, 7}
		res, err := m.EvictReload(0, attackers, target, 40)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("attack accuracy:        %.2f (0.50 = chance)\n", res.Accuracy())
		fmt.Printf("victim copies evicted:  %d/%d rounds\n", res.VictimEvictions, res.Rounds)
		incl := m.Engine().Stats().Core[0].ConflictInvalidations
		fmt.Printf("victim inclusion victims: %d\n", incl)

		// The payload: recover actual key material through the channel.
		kr, err := m.RecoverAESKey(0, attackers, key, 48)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("key nibbles recovered:  %d/%d (true %x, recovered %x)\n\n",
			kr.CorrectNibbles(), len(kr.TrueNibbles), kr.TrueNibbles, kr.RecoveredNibbles)
	}

	fmt.Println("Baseline: the attacker evicts the victim's directory entries, which evicts")
	fmt.Println("the victim's T-table lines from its private caches — each victim re-access")
	fmt.Println("is observable, leaking the table indices (and so the AES intermediate state).")
	fmt.Println("SecDir: the victim's entries retreat into its private Victim Directory; the")
	fmt.Println("T-table lines never leave the victim's caches and the trace is invisible.")
}
