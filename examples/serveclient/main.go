// Command serveclient is a worked example client for secdir-serve: it
// submits one job, follows the NDJSON progress stream, and prints the
// result. Start the server first:
//
//	go run ./cmd/secdir-serve &
//	go run ./examples/serveclient -kind replay -workload mix2 -design secdir
//	go run ./examples/serveclient -kind experiment -experiments F7
//	go run ./examples/serveclient -kind attack -design both
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	"secdir/internal/server"
)

func main() {
	base := flag.String("addr", "http://localhost:8372", "secdir-serve base URL")
	kind := flag.String("kind", "replay", "job kind: experiment, attack, or replay")
	experimentsList := flag.String("experiments", "A1,T7", "experiment IDs for -kind experiment")
	workload := flag.String("workload", "mix0", "workload spec for -kind replay")
	design := flag.String("design", "", "directory design (kind-specific default)")
	cores := flag.Int("cores", 8, "machine size")
	warmup := flag.Uint64("warmup", 20_000, "warmup accesses per core")
	measure := flag.Uint64("measure", 20_000, "measured accesses per core")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	spec := server.JobSpec{
		Kind:     server.JobKind(*kind),
		Workload: *workload,
		Design:   *design,
		Cores:    *cores,
		Warmup:   *warmup,
		Measure:  *measure,
		Seed:     *seed,
	}
	if spec.Kind == server.KindExperiment {
		spec.Experiments = strings.Split(*experimentsList, ",")
	}
	if err := run(*base, spec); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// run submits the spec, streams progress until the job finishes, and prints
// the result JSON.
func run(base string, spec server.JobSpec) error {
	body, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		msg, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("submit: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
	}
	var st server.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return err
	}
	fmt.Printf("submitted %s (%s)\n", st.ID, st.Spec.Kind)

	// The stream ends when the job reaches a terminal state.
	sresp, err := http.Get(base + "/jobs/" + st.ID + "/stream")
	if err != nil {
		return err
	}
	defer sresp.Body.Close()
	var last server.Event
	sc := bufio.NewScanner(sresp.Body)
	for sc.Scan() {
		var e server.Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return fmt.Errorf("bad stream line %q: %w", sc.Text(), err)
		}
		last = e
		if e.Total > 0 {
			fmt.Printf("  [%d/%d] %s (%s)\n", e.Done, e.Total, e.Stage, e.State)
		} else {
			fmt.Printf("  %s (%s)\n", e.Stage, e.State)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if last.State != server.StateDone {
		return fmt.Errorf("job finished %s: %s", last.State, last.Err)
	}

	rresp, err := http.Get(base + "/jobs/" + st.ID + "/result")
	if err != nil {
		return err
	}
	defer rresp.Body.Close()
	out, err := io.ReadAll(rresp.Body)
	if err != nil {
		return err
	}
	if rresp.StatusCode != http.StatusOK {
		return fmt.Errorf("result: HTTP %d: %s", rresp.StatusCode, bytes.TrimSpace(out))
	}
	fmt.Println(string(out))
	return nil
}
