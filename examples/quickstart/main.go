// Quickstart: build a SecDir machine, run a few accesses, and watch lines
// move through the cache hierarchy and the directory.
package main

import (
	"fmt"
	"log"

	"secdir"
)

func main() {
	// An 8-core machine with the SecDir directory (Table 4 parameters):
	// per-core 32 KB L1 + 1 MB L2, one 1.375 MB LLC slice per core, and a
	// directory slice holding an 11-way TD, an 8-way ED and eight 4-way
	// 512-set cuckoo Victim Directory banks.
	m, err := secdir.NewMachine(secdir.SecDirConfig(8))
	if err != nil {
		log.Fatal(err)
	}

	line := secdir.LineOf(0x1234_0000)

	// First access: nothing cached, the line comes from memory and a
	// directory entry is allocated in the Extended Directory.
	r := m.Access(0, line, false)
	fmt.Printf("core 0 first read:   served by %-7v latency %d cycles\n", r.Level, r.Latency)

	// Second access: L1 hit.
	r = m.Access(0, line, false)
	fmt.Printf("core 0 second read:  served by %-7v latency %d cycles\n", r.Level, r.Latency)

	// Another core reads the same line: the directory finds the entry and
	// forwards the data from core 0's private cache.
	r = m.Access(1, line, false)
	fmt.Printf("core 1 read:         served by %-7v latency %d cycles\n", r.Level, r.Latency)

	// Core 1 writes: core 0's copy is invalidated through the directory.
	r = m.Access(1, line, true)
	fmt.Printf("core 1 write:        served by %-7v latency %d cycles\n", r.Level, r.Latency)
	fmt.Printf("core 0 still caches the line: %v\n", m.Contains(0, line))

	// The machine-wide coherence invariants (every cached line has exactly
	// one directory entry whose sharer vector matches reality) hold at any
	// point.
	if err := m.CheckInvariants(); err != nil {
		log.Fatalf("invariant violation: %v", err)
	}
	fmt.Println("coherence invariants hold")

	// Run a ready-made workload: SPEC mix 2 (4×bzip2 + 4×omnetpp) for a
	// short measured phase, and look at the L2 miss breakdown.
	w, err := secdir.NewSpecMix(2, 8, 1)
	if err != nil {
		log.Fatal(err)
	}
	res, err := secdir.Run(secdir.RunOptions{
		Config:          secdir.SecDirConfig(8),
		Work:            w,
		WarmupAccesses:  20_000,
		MeasureAccesses: 20_000,
	})
	if err != nil {
		log.Fatal(err)
	}
	edtd, vd, mem := res.L2MissBreakdown()
	fmt.Printf("\nmix2 on SecDir: IPC %.3f, L2 misses %d (ED+TD %d, VD %d, memory %d)\n",
		res.TotalIPC(), edtd+vd+mem, edtd, vd, mem)
}
