// Design-space tour (§1/§11 of the paper): build the vulnerable baseline and
// all three secure-directory candidates, mount the targeted attack and the
// brute-force flood against each, and see why SecDir is the one that scales.
package main

import (
	"fmt"
	"log"

	"secdir"
)

func main() {
	target := secdir.AEST0Lines()[0]
	attackers := []int{1, 2, 3, 4, 5, 6, 7}

	designs := []struct {
		name string
		cfg  secdir.Config
	}{
		{"baseline (Skylake-X)", secdir.SkylakeX(8)},
		{"way-partitioned (DAWG-style)", secdir.WayPartitionedConfig(8)},
		{"rand-mapped (CEASER-style)", secdir.RandMappedConfig(8, 200_000)},
		{"SecDir", secdir.SecDirConfig(8)},
	}

	fmt.Printf("%-30s %22s %22s\n", "design", "targeted evict+reload", "slice flood (48k)")
	for _, d := range designs {
		m, err := secdir.NewMachine(d.cfg)
		if err != nil {
			log.Fatal(err)
		}
		tr, err := m.EvictReload(0, attackers, target, 20)
		if err != nil {
			log.Fatal(err)
		}
		m2, err := secdir.NewMachine(d.cfg)
		if err != nil {
			log.Fatal(err)
		}
		fl, err := m2.FloodReload(0, attackers, target, 6, 48_000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-30s %12.2f (%2d/%2d) %12.2f (%d/%d)\n",
			d.name, tr.Accuracy(), tr.VictimEvictions, tr.Rounds,
			fl.Accuracy(), fl.VictimEvictions, fl.Rounds)
	}

	// And the reason way partitioning cannot be the answer: it does not
	// exist at server core counts.
	if _, err := secdir.NewMachine(secdir.WayPartitionedConfig(16)); err != nil {
		fmt.Printf("\nway partitioning at 16 cores: %v\n", err)
	}
	fmt.Println("\nSecDir blocks both attacks structurally, stays buildable at any core")
	fmt.Println("count, and (Figure 5) gets cheaper than the baseline as cores grow.")
}
