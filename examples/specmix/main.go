// SPEC mix comparison: run one of the Table 5 application mixes on the
// baseline and SecDir machines and compare throughput, the L2-miss breakdown
// of Figure 7(b), and the inclusion victims that only the baseline suffers.
package main

import (
	"flag"
	"fmt"
	"log"

	"secdir"
)

func main() {
	mix := flag.Int("mix", 2, "SPEC mix index (0..11, Table 5)")
	measure := flag.Uint64("measure", 100_000, "measured accesses per core")
	flag.Parse()

	type outcome struct {
		name          string
		ipc           float64
		edtd, vd, mem uint64
		inclVictims   uint64
		selfConflicts uint64
	}
	var outs []outcome

	for _, cfg := range []secdir.Config{secdir.SkylakeX(8), secdir.SecDirConfig(8)} {
		w, err := secdir.NewSpecMix(*mix, 8, 1)
		if err != nil {
			log.Fatal(err)
		}
		res, err := secdir.Run(secdir.RunOptions{
			Config:          cfg,
			Work:            w,
			WarmupAccesses:  *measure,
			MeasureAccesses: *measure,
		})
		if err != nil {
			log.Fatal(err)
		}
		e, v, m := res.L2MissBreakdown()
		var incl, self uint64
		for _, c := range res.PerCore {
			incl += c.Stats.ConflictInvalidations
			self += c.Stats.SelfConflictInvalidations
		}
		outs = append(outs, outcome{
			name: cfg.Kind.String(), ipc: res.TotalIPC(),
			edtd: e, vd: v, mem: m, inclVictims: incl, selfConflicts: self,
		})
	}

	fmt.Printf("SPEC mix%d, 8 cores, %d measured accesses/core\n\n", *mix, *measure)
	fmt.Printf("%-10s %8s %12s %12s %10s %12s %14s\n",
		"design", "IPC", "ED+TD hits", "VD hits", "memory", "inclVictims", "selfConflicts")
	for _, o := range outs {
		fmt.Printf("%-10s %8.4f %12d %12d %10d %12d %14d\n",
			o.name, o.ipc, o.edtd, o.vd, o.mem, o.inclVictims, o.selfConflicts)
	}
	b, s := outs[0], outs[1]
	bTot := b.edtd + b.vd + b.mem
	sTot := s.edtd + s.vd + s.mem
	fmt.Printf("\nSecDir vs baseline: IPC %.4fx, L2 misses %.4fx (%+.2f%%)\n",
		s.ipc/b.ipc, float64(sTot)/float64(bTot), (float64(sTot)/float64(bTot)-1)*100)
	fmt.Println("SecDir eliminates the baseline's inclusion victims: directory conflicts can")
	fmt.Println("no longer evict another core's private lines (Table 2 transitions ③/⑤).")
}
