// Attack walkthrough: step through one round of the cross-core directory
// eviction attack of §2.3 against both designs, printing the state of the
// victim's line and directory entry after each step. This is the mechanism
// behind Figure 1 of the paper, observable at single-transition granularity.
package main

import (
	"fmt"
	"log"

	"secdir"
	"secdir/internal/attack"
	"secdir/internal/directory"
)

func main() {
	target := secdir.LineOf(0x7_2000)
	attackers := []int{1, 2, 3, 4, 5, 6, 7}

	for _, cfg := range []secdir.Config{secdir.SkylakeX(8), secdir.SecDirConfig(8)} {
		fmt.Printf("=== %s ===\n", cfg.Kind)
		m, err := secdir.NewMachine(cfg)
		if err != nil {
			log.Fatal(err)
		}
		e := m.Engine()

		show := func(step string) {
			meta, where, ok := e.Slice(e.Mapper().Slice(target)).Find(target)
			entry := "no directory entry"
			if ok {
				entry = fmt.Sprintf("entry in %v (sharers=%d)", where, meta.Sharers.Count())
			}
			fmt.Printf("%-42s victim L2 holds line: %-5v  %s\n",
				step, m.Contains(0, target), entry)
		}

		// Step 0: the victim (core 0) loads its secret-dependent line.
		m.Access(0, target, false)
		show("victim loads the target line:")

		// Step 1 (Conflict): the attackers, knowing the slice hash, cache
		// 32 lines that map to the same directory set from 7 cores —
		// more than the W_ED+W_TD = 23 entries the slice can hold.
		a, err := attack.NewAttacker(e, attackers, target, 32)
		if err != nil {
			log.Fatal(err)
		}
		a.Prime()
		show("attackers prime the directory set:")

		// Step 2 (Wait): the victim re-accesses the line if and only if its
		// secret says so. Here it does.
		r := m.Access(0, target, false)
		fmt.Printf("%-42s served by %v\n", "victim re-accesses (secret-dependent):", r.Level)

		// Step 3 (Analyze): on the baseline the re-access was a visible
		// refetch (the victim's copy had been evicted); on SecDir it was an
		// invisible private-cache hit.
		if r.Level == secdir.LevelL1 || r.Level == secdir.LevelL2 {
			fmt.Println("-> the access stayed inside the victim's private caches: NOT observable")
		} else {
			fmt.Println("-> the access went through the shared directory: OBSERVABLE by the attacker")
		}

		// Where did the victim's entry end up on SecDir?
		if cfg.Kind == secdir.SecDir {
			_, where, _ := e.Slice(e.Mapper().Slice(target)).Find(target)
			if where == directory.WhereVD {
				fmt.Println("-> the victim's entry sits in its private Victim Directory bank,")
				fmt.Println("   out of the attacker's reach (transition ③ of Table 2)")
			}
		}
		fmt.Println()
	}
}
