package sim

import (
	"context"
	"errors"
	"testing"
	"time"

	"secdir/internal/addr"
	"secdir/internal/coherence"
	"secdir/internal/config"
	"secdir/internal/trace"
)

// uniformWorkload builds a small synthetic workload for cancellation tests.
func uniformWorkload(cores int) trace.Workload {
	gens := make([]trace.Generator, cores)
	for c := 0; c < cores; c++ {
		gens[c] = trace.NewUniform(addr.Line(uint64(c+1)<<24), 4096, 0.25, 4, int64(c+1))
	}
	return trace.Workload{Name: "uniform", Gens: gens}
}

// TestRunContextCancellationStopsEarly checks that a run whose natural length
// is enormous returns promptly once its context is cancelled — the property
// the job server's cancel endpoint and per-job timeouts rely on.
func TestRunContextCancellationStopsEarly(t *testing.T) {
	cfg := config.SkylakeX(2)
	r, err := New(Options{
		Config:          cfg,
		Work:            uniformWorkload(2),
		WarmupAccesses:  0,
		MeasureAccesses: 1 << 40, // would run for days
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = r.RunContext(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RunContext error = %v, want deadline exceeded", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("cancellation took %v, want prompt stop", d)
	}
}

// TestRunContextAlreadyCancelled: a pre-cancelled context stops the run at
// the first check without completing a phase.
func TestRunContextAlreadyCancelled(t *testing.T) {
	cfg := config.SkylakeX(2)
	r, err := New(Options{
		Config:          cfg,
		Work:            uniformWorkload(2),
		WarmupAccesses:  100_000,
		MeasureAccesses: 100_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.RunContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext error = %v, want context.Canceled", err)
	}
}

// TestRunContextCancellationBoundary pins the cancellation granularity: the
// context is checked once every cancelCheckEvery accesses, just before the
// access that would start the next window. Cancelling on the access right
// before a check stops the run at that check; cancelling on or right after
// the boundary access lets the run continue for exactly one more window. In
// every case the engine's counters agree with the number of accesses the
// observer saw — the run stops between accesses, never mid-transaction.
func TestRunContextCancellationBoundary(t *testing.T) {
	const window = cancelCheckEvery
	cases := []struct {
		name        string
		cancelAfter uint64 // cancel after this many machine-wide accesses
		want        uint64 // total accesses performed when the run stops
	}{
		// The window's check runs after access window-1 and before access
		// window (sinceCheck is incremented ahead of each access).
		{"one-before-boundary", window - 1, window - 1},
		{"on-boundary", window, 2*window - 1},
		{"one-after-boundary", window + 1, 2*window - 1},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var seen uint64
			r, err := New(Options{
				Config:          config.SkylakeX(2),
				Work:            uniformWorkload(2),
				WarmupAccesses:  0, // every access is measured and observed
				MeasureAccesses: 1 << 40,
				Observer: func(core int, cycle uint64, line addr.Line, write bool, res coherence.AccessResult) {
					seen++
					if seen == tc.cancelAfter {
						cancel()
					}
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := r.RunContext(ctx); !errors.Is(err, context.Canceled) {
				t.Fatalf("RunContext error = %v, want context.Canceled", err)
			}
			var total uint64
			for _, cs := range r.Engine.Stats().Core {
				total += cs.Accesses
			}
			if total != tc.want {
				t.Fatalf("engine performed %d accesses, want %d", total, tc.want)
			}
			if seen != total {
				t.Fatalf("observer saw %d accesses, engine performed %d", seen, total)
			}
		})
	}
}

// TestRunMatchesRunContext: Run and RunContext(background) produce identical
// results for the same seeded workload.
func TestRunMatchesRunContext(t *testing.T) {
	mk := func() *Runner {
		r, err := New(Options{
			Config:          config.SecDirConfig(2),
			Work:            uniformWorkload(2),
			WarmupAccesses:  2_000,
			MeasureAccesses: 2_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a := mk().Run()
	b, err := mk().RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalIPC() != b.TotalIPC() || a.MaxCycles != b.MaxCycles || a.L2Misses() != b.L2Misses() {
		t.Fatalf("Run and RunContext diverge: %+v vs %+v", a, b)
	}
}
