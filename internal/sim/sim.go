// Package sim runs workloads on a simulated machine: it advances per-core
// clocks through a trace.Workload on a coherence.Engine, accounts latency per
// access (Table 4 constants), and reports IPC and L2-miss breakdowns — the
// measurements behind Figures 6-8 and Table 6 of the paper.
package sim

import (
	"context"
	"fmt"

	"secdir/internal/addr"
	"secdir/internal/coherence"
	"secdir/internal/config"
	"secdir/internal/directory"
	"secdir/internal/metrics"
	"secdir/internal/trace"
)

// Observer is called after every measured access. cycle is the issuing
// core's local clock after the access completed.
type Observer func(core int, cycle uint64, line addr.Line, write bool, res coherence.AccessResult)

// Options configures a simulation run.
type Options struct {
	Config config.Config
	Work   trace.Workload
	// WarmupAccesses and MeasureAccesses are per-core access counts. Stats
	// are reset at the warmup/measure boundary.
	WarmupAccesses  uint64
	MeasureAccesses uint64
	// Observer, if non-nil, sees every measured access.
	Observer Observer
	// Metrics, if non-nil, is attached to the engine before the run and
	// additionally receives a per-core IPC time series ("sim/ipc/core<N>",
	// x = local cycle, y = cumulative measured IPC) sampled every
	// IPCSampleEvery accesses during the measured phase.
	Metrics *metrics.Registry
	// IPCSampleEvery overrides the IPC sampling interval in accesses
	// (default 1024). Ignored when Metrics is nil.
	IPCSampleEvery uint64
	// EngineShards, when > 1, builds the machine with its directory slices
	// sharded over that many goroutines (coherence.Sharded) instead of the
	// serial engine. Results are bit-identical either way; call Close after
	// the run to release the shard goroutines.
	EngineShards int
	// EngineWindow, when > 1 and the engine is sharded, schedules each
	// core's bursts through conflict windows of up to this many accesses:
	// window transactions run concurrently on their home shards while the
	// results commit in program order, so the run stays bit-identical to the
	// serial engine. Ignored without EngineShards > 1. Burst batching is
	// sized so per-core clock interleaving and context-cancellation checks
	// land at exactly the serial positions.
	EngineWindow int
}

// CoreResult summarises one core's measured phase.
type CoreResult struct {
	Instructions uint64
	Cycles       uint64
	Stats        coherence.CoreStats
}

// IPC returns the core's measured instructions per cycle.
func (c CoreResult) IPC() float64 {
	if c.Cycles == 0 {
		return 0
	}
	return float64(c.Instructions) / float64(c.Cycles)
}

// Result is the outcome of a simulation run.
type Result struct {
	Name    string
	PerCore []CoreResult
	// Dir is the aggregate directory activity during the measured phase.
	Dir directory.Stats
	// MemWritebacks during the measured phase.
	MemWritebacks uint64
	// MaxCycles is the largest per-core measured cycle count — the
	// execution time of a multithreaded run.
	MaxCycles uint64
	// VDSelfConflicts is the total number of cuckoo/plain VD conflicts
	// during the measured phase (SecDir only).
	VDSelfConflicts uint64
}

// TotalIPC returns the sum of per-core IPCs (the throughput metric used to
// compare multiprogrammed mixes).
func (r Result) TotalIPC() float64 {
	var s float64
	for _, c := range r.PerCore {
		s += c.IPC()
	}
	return s
}

// L2MissBreakdown returns the measured machine-wide L2 misses split into
// ED+TD hits, VD hits, and memory accesses — the categories of Figure 7(b).
func (r Result) L2MissBreakdown() (edtd, vd, mem uint64) {
	for _, c := range r.PerCore {
		edtd += c.Stats.MissEDTD
		vd += c.Stats.MissVD
		mem += c.Stats.MissMem
	}
	return
}

// L2Misses returns the total measured L2 misses.
func (r Result) L2Misses() uint64 {
	e, v, m := r.L2MissBreakdown()
	return e + v + m
}

// Runner drives a workload over an engine with per-core clocks.
type Runner struct {
	Engine   *coherence.Engine
	sharded  *coherence.Sharded // non-nil when EngineShards > 1
	windowed bool               // conflict-window batching enabled
	worstLat uint64             // upper bound on any single access latency
	opsBuf   []coherence.BatchOp
	resBuf   []coherence.AccessResult
	opts     Options
}

// New builds the machine and binds the workload.
func New(opts Options) (*Runner, error) {
	if opts.Work.Cores() != opts.Config.Cores {
		return nil, fmt.Errorf("sim: workload drives %d cores, machine has %d", opts.Work.Cores(), opts.Config.Cores)
	}
	r := &Runner{opts: opts}
	if opts.EngineShards > 1 {
		sh, err := coherence.NewSharded(opts.Config, opts.EngineShards)
		if err != nil {
			return nil, err
		}
		r.sharded, r.Engine = sh, sh.Engine
		if opts.EngineWindow > 1 {
			sh.SetWindow(opts.EngineWindow)
			r.windowed = true
			r.worstLat = worstAccessLatency(opts.Config)
			r.opsBuf = make([]coherence.BatchOp, genChunk)
			r.resBuf = make([]coherence.AccessResult, genChunk)
		}
	} else {
		e, err := coherence.NewEngine(opts.Config)
		if err != nil {
			return nil, err
		}
		r.Engine = e
	}
	if opts.Metrics != nil {
		r.Engine.AttachMetrics(opts.Metrics)
	}
	return r, nil
}

// WindowStats returns the conflict-window scheduler's occupancy counters
// (zeros when windowing is disabled).
func (r *Runner) WindowStats() coherence.WindowStats {
	if r.sharded != nil {
		return r.sharded.WindowStats()
	}
	return coherence.WindowStats{}
}

// worstAccessLatency upper-bounds the cycles a single access can charge, for
// sizing windowed bursts against the clock-interleaving limit. Deliberately
// generous (every additive term at its maximum, no MLP division): an
// overestimate only shortens batches, never reorders them.
func worstAccessLatency(cfg config.Config) uint64 {
	maxDir := cfg.Lat.DirLocalRT
	if cfg.Lat.DirRemoteRT > maxDir {
		maxDir = cfg.Lat.DirRemoteRT
	}
	if hop := cfg.Lat.MeshHopRT; hop > 0 {
		w := 4
		if cfg.Cores < w {
			w = cfg.Cores
		}
		rows := (cfg.Cores + w - 1) / w
		if d := cfg.Lat.DirLocalRT + hop*((w-1)+(rows-1)); d > maxDir {
			maxDir = d
		}
	}
	vdRounds := cfg.Cores
	if vdRounds < 1 {
		vdRounds = 1
	}
	lat := cfg.Lat.L1RT + cfg.Lat.L2RT + maxDir +
		cfg.Lat.EBCheck + cfg.Lat.VDAccess*vdRounds +
		cfg.Lat.DRAMRT + cfg.Lat.CacheToCore
	return uint64(lat)
}

// Close releases the shard goroutines of a sharded runner (no-op for the
// serial engine). The engine stays readable and serially usable afterwards.
func (r *Runner) Close() {
	if r.sharded != nil {
		r.sharded.Close()
	}
}

// vdSelfConflicts sums cuckoo conflicts across all SecDir slices.
func vdSelfConflicts(e *coherence.Engine) uint64 {
	var n uint64
	for s := 0; s < e.Config().Cores; s++ {
		if sd, ok := e.Slice(s).(interface{ VDSelfConflicts() uint64 }); ok {
			n += sd.VDSelfConflicts()
		}
	}
	return n
}

// cancelCheckEvery is how many simulated accesses pass between context
// checks in RunContext. At simulator speeds (millions of accesses per second)
// this bounds cancellation latency to well under a millisecond while keeping
// the per-access cost to one counter increment and mask.
const cancelCheckEvery = 4096

// genChunk is how many accesses are pregenerated per core at a time. Workload
// generators are oblivious to simulation results, so their streams can be
// produced ahead of the engine in tight refill loops that keep the generator
// state hot instead of re-entering it between every engine access. The chunk
// bounds the memory to a fixed buffer per core regardless of phase length.
const genChunk = 4096

// coreStream buffers one core's pregenerated accesses for the current phase.
type coreStream struct {
	buf  []trace.Access
	pos  int
	left uint64 // accesses of this phase not yet generated
}

// Run executes the warmup and measured phases and returns the result. It is
// RunContext with a background context (which cannot be cancelled, so no
// error can occur).
func (r *Runner) Run() Result {
	res, _ := r.RunContext(context.Background())
	return res
}

// RunContext executes the warmup and measured phases, checking ctx every
// cancelCheckEvery simulated accesses. On cancellation or deadline it stops
// mid-phase and returns ctx's error with a partial (unspecified) Result —
// callers must discard the result when err != nil. This is the hook that lets
// a job server's cancel endpoint and per-job timeouts actually stop
// simulation work.
func (r *Runner) RunContext(ctx context.Context) (Result, error) {
	cores := r.opts.Config.Cores
	clocks := make([]uint64, cores)
	instrs := make([]uint64, cores)
	done := make([]uint64, cores)

	// Per-core IPC time series, sampled during the measured phase against the
	// warmup/measure boundary captured in clockBase/instrBase below.
	var ipcSeries []*metrics.Series
	clockBase := make([]uint64, cores)
	instrBase := make([]uint64, cores)
	sampleEvery := r.opts.IPCSampleEvery
	if sampleEvery == 0 {
		sampleEvery = 1024
	}
	if r.opts.Metrics != nil {
		ipcSeries = make([]*metrics.Series, cores)
		for c := 0; c < cores; c++ {
			ipcSeries[c] = r.opts.Metrics.Series(fmt.Sprintf("sim/ipc/core%d", c), 0)
		}
	}

	// phase advances every core by target accesses, interleaved by local
	// clock so cross-core interactions happen in causal order. It returns
	// early with ctx's error if the run is cancelled.
	//
	// The scheduling invariant is "always run the unfinished core with the
	// smallest local clock, lowest index on ties". Because only the chosen
	// core's clock moves, that choice stays valid until its clock passes the
	// runner-up's — so instead of re-scanning all cores per access, the loop
	// picks once and then runs the chosen core in a burst up to the
	// runner-up's clock. Observer/IPC instrumentation is resolved once per
	// burst, keeping the common (uninstrumented) inner loop to generator,
	// engine access, and clock arithmetic. The access ordering is identical
	// to the per-access re-scan.
	var sinceCheck uint64
	streams := make([]coreStream, cores)
	chunk := r.opts.WarmupAccesses
	if r.opts.MeasureAccesses > chunk {
		chunk = r.opts.MeasureAccesses
	}
	if chunk > genChunk {
		chunk = genChunk
	}
	for c := range streams {
		streams[c].buf = make([]trace.Access, 0, chunk)
	}
	gens := r.opts.Work.Gens
	// refill regenerates core c's buffer from its generator, up to the
	// phase remainder. Burst refills keep generator state hot.
	refill := func(c int) {
		s := &streams[c]
		n := uint64(cap(s.buf))
		if n > s.left {
			n = s.left
		}
		buf := s.buf[:n]
		g := gens[c]
		for i := range buf {
			buf[i] = g.Next()
		}
		s.buf, s.pos = buf, 0
		s.left -= n
	}
	phase := func(target uint64, observe bool) error {
		if target == 0 {
			return nil
		}
		for c := range done {
			done[c] = 0
		}
		for c := range streams {
			streams[c].buf = streams[c].buf[:0]
			streams[c].pos = 0
			streams[c].left = target
		}
		remaining := cores
		instrumented := observe && (r.opts.Observer != nil || ipcSeries != nil)
		// Conflict-window batching needs the whole burst up front; per-access
		// instrumentation needs the serial loop. Warmup (never instrumented)
		// and uninstrumented measurement take the windowed path.
		useWin := r.windowed && !instrumented
		// scan mirrors clocks with finished cores forced to the maximum, so
		// the pick loop below is a plain two-minimum scan with no per-core
		// done[] test.
		scan := make([]uint64, cores)
		copy(scan, clocks)
		for remaining > 0 {
			// One pass tracks both the unfinished core with the smallest
			// local clock (lowest index on ties, matching a
			// first-strictly-smaller scan) and the runner-up that bounds how
			// far it may burst.
			best, moIdx := 0, -1
			bc, mc := scan[0], ^uint64(0)
			for c := 1; c < cores; c++ {
				v := scan[c]
				if v < bc {
					mc, moIdx = bc, best
					best, bc = c, v
				} else if v < mc {
					mc, moIdx = v, c
				}
			}
			limit := ^uint64(0)
			strict := false
			if moIdx >= 0 {
				limit = mc
				// A tie re-picks the lower index, so a higher-indexed core
				// must stay strictly below the runner-up's clock.
				strict = best > moIdx
			}
			st := &streams[best]
			ck := clocks[best]
			ins := instrs[best]
			dn := done[best]
			if useWin {
				// Windowed burst: hand the engine runs of accesses whose
				// slice transactions may overlap. Each batch is sized so the
				// serial loop would provably have executed every access in it
				// before its target/limit/cancellation breaks — the burst
				// boundaries, cancel-check positions and access order are
				// bit-identical to the serial path below.
				for {
					// Serial first-access check discipline, verbatim.
					if sinceCheck++; sinceCheck >= cancelCheckEvery {
						sinceCheck = 0
						if err := ctx.Err(); err != nil {
							clocks[best] = ck
							instrs[best] = ins
							done[best] = dn
							return err
						}
					}
					if st.pos == len(st.buf) {
						refill(best)
					}
					// Cap the batch so no cancel check lands inside it, it
					// never crosses the phase target, and — under the
					// worst-case latency bound — access k's clock can never
					// pass the runner-up's limit before access k+1 issues.
					n := int(cancelCheckEvery - sinceCheck)
					if avail := len(st.buf) - st.pos; n > avail {
						n = avail
					}
					if rem := target - dn; uint64(n) > rem {
						n = int(rem)
					}
					if n > 1 && limit != ^uint64(0) {
						w := ck
						m := 1
						for m < n {
							a := st.buf[st.pos+m-1]
							w += uint64(a.Gap) + r.worstLat
							if w > limit || (strict && w == limit) {
								break
							}
							m++
						}
						n = m
					}
					ops := r.opsBuf[:n]
					for i := 0; i < n; i++ {
						a := st.buf[st.pos+i]
						ops[i] = coherence.BatchOp{Line: a.Line, Write: a.Write}
					}
					res := r.resBuf[:n]
					r.Engine.AccessBatch(best, ops, res)
					for i := 0; i < n; i++ {
						a := st.buf[st.pos+i]
						ck += uint64(a.Gap) + uint64(res[i].Latency)
						ins += uint64(a.Gap) + 1
					}
					st.pos += n
					dn += uint64(n)
					sinceCheck += uint64(n - 1)
					if dn >= target {
						break
					}
					if ck > limit || (strict && ck == limit) {
						break
					}
				}
				clocks[best] = ck
				instrs[best] = ins
				done[best] = dn
				if dn >= target {
					remaining--
					scan[best] = ^uint64(0)
				} else {
					scan[best] = ck
				}
				continue
			}
			for {
				// Same counter discipline as the historical per-access loop:
				// the check runs ahead of access N for N ≡ 0 (mod window),
				// which cancellation tests pin.
				if sinceCheck++; sinceCheck >= cancelCheckEvery {
					sinceCheck = 0
					if err := ctx.Err(); err != nil {
						clocks[best] = ck
						instrs[best] = ins
						done[best] = dn
						return err
					}
				}
				if st.pos == len(st.buf) {
					refill(best)
				}
				a := st.buf[st.pos]
				st.pos++
				ck += uint64(a.Gap)
				ins += uint64(a.Gap) + 1
				res := r.Engine.Access(best, a.Line, a.Write)
				ck += uint64(res.Latency)
				dn++
				if instrumented {
					if r.opts.Observer != nil {
						r.opts.Observer(best, ck, a.Line, a.Write, res)
					}
					if ipcSeries != nil && dn%sampleEvery == 0 {
						if dc := ck - clockBase[best]; dc > 0 {
							ipcSeries[best].Append(float64(ck),
								float64(ins-instrBase[best])/float64(dc))
						}
					}
				}
				if dn >= target {
					break
				}
				if ck > limit || (strict && ck == limit) {
					break
				}
			}
			clocks[best] = ck
			instrs[best] = ins
			done[best] = dn
			if dn >= target {
				remaining--
				scan[best] = ^uint64(0)
			} else {
				scan[best] = ck
			}
		}
		return nil
	}

	if r.opts.WarmupAccesses > 0 {
		if err := phase(r.opts.WarmupAccesses, false); err != nil {
			return Result{Name: r.opts.Work.Name}, err
		}
	}

	// Snapshot at the warmup/measure boundary.
	coreBase := make([]coherence.CoreStats, cores)
	copy(coreBase, r.Engine.Stats().Core)
	dirBase := r.Engine.DirStats()
	wbBase := r.Engine.Stats().MemWritebacks
	vdBase := vdSelfConflicts(r.Engine)
	copy(clockBase, clocks)
	copy(instrBase, instrs)

	if err := phase(r.opts.MeasureAccesses, true); err != nil {
		return Result{Name: r.opts.Work.Name}, err
	}

	res := Result{
		Name:          r.opts.Work.Name,
		PerCore:       make([]CoreResult, cores),
		MemWritebacks: r.Engine.Stats().MemWritebacks - wbBase,
	}
	dirNow := r.Engine.DirStats()
	res.Dir = dirNow
	subStats(&res.Dir, dirBase)
	res.VDSelfConflicts = vdSelfConflicts(r.Engine) - vdBase
	for c := 0; c < cores; c++ {
		cr := CoreResult{
			Instructions: instrs[c] - instrBase[c],
			Cycles:       clocks[c] - clockBase[c],
			Stats:        subCore(r.Engine.Stats().Core[c], coreBase[c]),
		}
		res.PerCore[c] = cr
		if cr.Cycles > res.MaxCycles {
			res.MaxCycles = cr.Cycles
		}
	}
	return res, nil
}

// subStats subtracts base from s field-wise.
func subStats(s *directory.Stats, base directory.Stats) {
	s.EDHits -= base.EDHits
	s.TDHits -= base.TDHits
	s.VDHits -= base.VDHits
	s.MemFetches -= base.MemFetches
	s.EDToTD -= base.EDToTD
	s.TDToED -= base.TDToED
	s.TDDrop -= base.TDDrop
	s.TDToVD -= base.TDToVD
	s.VDToTD -= base.VDToTD
	s.VDDrop -= base.VDDrop
	s.InclusionVictims -= base.InclusionVictims
	s.VDLookups -= base.VDLookups
	s.VDLookupsNoEB -= base.VDLookupsNoEB
}

// subCore subtracts base from s field-wise.
func subCore(s, base coherence.CoreStats) coherence.CoreStats {
	return coherence.CoreStats{
		Accesses:                  s.Accesses - base.Accesses,
		L1Hits:                    s.L1Hits - base.L1Hits,
		L2Hits:                    s.L2Hits - base.L2Hits,
		MissEDTD:                  s.MissEDTD - base.MissEDTD,
		MissVD:                    s.MissVD - base.MissVD,
		MissMem:                   s.MissMem - base.MissMem,
		Upgrades:                  s.Upgrades - base.Upgrades,
		NoFills:                   s.NoFills - base.NoFills,
		ConflictInvalidations:     s.ConflictInvalidations - base.ConflictInvalidations,
		SelfConflictInvalidations: s.SelfConflictInvalidations - base.SelfConflictInvalidations,
	}
}
