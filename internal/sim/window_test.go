package sim

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"secdir/internal/addr"
	"secdir/internal/coherence"
	"secdir/internal/config"
)

// runWith executes the standard windowed-oracle workload with the given
// engine options and returns the full Result.
func runWith(t *testing.T, cfg config.Config, shards, window int) (Result, *Runner) {
	t.Helper()
	r, err := New(Options{
		Config:          cfg,
		Work:            uniformWork(cfg.Cores, 31),
		WarmupAccesses:  2_000,
		MeasureAccesses: 6_000,
		EngineShards:    shards,
		EngineWindow:    window,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := r.Run()
	return res, r
}

// TestWindowedRunBitIdentical: the full simulation Result — per-core cycles,
// instructions, counters, directory activity — of a windowed sharded run is
// bit-identical to the serial run, for the designs the perf sweeps race.
func TestWindowedRunBitIdentical(t *testing.T) {
	for _, kind := range []config.DirectoryKind{config.Baseline, config.SecDir, config.SkewedDir} {
		cfg := smallCfg()
		cfg.Kind = kind
		if kind == config.SecDir {
			cfg = config.SecDirConfig(4)
			cfg.L1Sets, cfg.L1Ways = 4, 2
			cfg.L2Sets, cfg.L2Ways = 16, 4
			cfg.TDSets, cfg.TDWays = 32, 3
			cfg.EDSets, cfg.EDWays = 32, 3
		}
		want, wr := runWith(t, cfg, 0, 0)
		wr.Close()
		for _, shards := range []int{2, 4} {
			for _, window := range []int{4, 8} {
				got, r := runWith(t, cfg, shards, window)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("kind=%v shards=%d window=%d: result diverged\nserial   %+v\nwindowed %+v",
						kind, shards, window, want, got)
				}
				ws := r.WindowStats()
				if ws.Accesses+ws.Serial == 0 {
					t.Errorf("kind=%v shards=%d window=%d: window scheduler never engaged", kind, shards, window)
				}
				r.Close()
			}
		}
	}
}

// TestWindowedCancellationBoundary pins that the windowed burst loop checks
// the context at exactly the serial positions: batches never straddle a
// cancelCheckEvery boundary, so cancellation stops the run after the same
// access count as the serial engine (no observer needed — cancellation rides
// on wall-clock timeout and the counters are compared against a serial
// replay stopped by the same deadline discipline).
func TestWindowedCancellationBoundary(t *testing.T) {
	mk := func(shards, window int) *Runner {
		r, err := New(Options{
			Config:          config.SkylakeX(2),
			Work:            uniformWorkload(2),
			WarmupAccesses:  0,
			MeasureAccesses: 1 << 40,
			EngineShards:    shards,
			EngineWindow:    window,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	// A pre-cancelled context stops the windowed run at the first check
	// without performing any access.
	r := mk(2, 8)
	defer r.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.RunContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext error = %v, want context.Canceled", err)
	}
	var total uint64
	for _, cs := range r.Engine.Stats().Core {
		total += cs.Accesses
	}
	if total >= cancelCheckEvery {
		t.Fatalf("pre-cancelled windowed run performed %d accesses, want < %d", total, cancelCheckEvery)
	}

	// A deadline stops the windowed run promptly and on a check boundary:
	// the machine-wide access count is a multiple of cancelCheckEvery minus
	// the one un-executed boundary access per the serial discipline.
	r2 := mk(2, 8)
	defer r2.Close()
	ctx2, cancel2 := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel2()
	start := time.Now()
	if _, err := r2.RunContext(ctx2); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RunContext error = %v, want deadline exceeded", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("windowed cancellation took %v, want prompt stop", d)
	}
	var total2 uint64
	for _, cs := range r2.Engine.Stats().Core {
		total2 += cs.Accesses
	}
	if total2%cancelCheckEvery != cancelCheckEvery-1 && total2%cancelCheckEvery != 0 {
		t.Fatalf("windowed run stopped after %d accesses, not on a check boundary (mod %d = %d)",
			total2, cancelCheckEvery, total2%cancelCheckEvery)
	}
}

// TestWindowedObserverFallsBackSerial: an instrumented measured phase takes
// the per-access loop (observer contract: called after every access, in
// order) while warmup still windows; results remain bit-identical.
func TestWindowedObserverFallsBackSerial(t *testing.T) {
	cfg := smallCfg()
	var seen uint64
	r, err := New(Options{
		Config:          cfg,
		Work:            uniformWork(cfg.Cores, 77),
		WarmupAccesses:  1_000,
		MeasureAccesses: 1_000,
		EngineShards:    2,
		EngineWindow:    8,
		Observer:        func(int, uint64, addr.Line, bool, coherence.AccessResult) { seen++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	res := r.Run()
	defer r.Close()
	if seen != uint64(cfg.Cores)*1_000 {
		t.Fatalf("observer saw %d accesses, want %d", seen, cfg.Cores*1_000)
	}
	serial, sr := runWithOpts(t, cfg, 1_000, 1_000)
	sr.Close()
	if !reflect.DeepEqual(res, serial) {
		t.Fatalf("instrumented windowed run diverged from serial:\nserial %+v\ngot    %+v", serial, res)
	}
}

// runWithOpts runs the serial engine with explicit phase lengths.
func runWithOpts(t *testing.T, cfg config.Config, warm, meas uint64) (Result, *Runner) {
	t.Helper()
	r, err := New(Options{
		Config:          cfg,
		Work:            uniformWork(cfg.Cores, 77),
		WarmupAccesses:  warm,
		MeasureAccesses: meas,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r.Run(), r
}
