package sim

import (
	"testing"

	"secdir/internal/addr"
	"secdir/internal/coherence"
	"secdir/internal/config"
	"secdir/internal/trace"
)

func smallCfg() config.Config {
	cfg := config.SkylakeX(4)
	cfg.L1Sets, cfg.L1Ways = 4, 2
	cfg.L2Sets, cfg.L2Ways = 16, 4
	cfg.TDSets, cfg.TDWays = 32, 3
	cfg.EDSets, cfg.EDWays = 32, 3
	return cfg
}

func uniformWork(cores int, seed int64) trace.Workload {
	gens := make([]trace.Generator, cores)
	for c := 0; c < cores; c++ {
		gens[c] = trace.NewUniform(addr.Line(uint64(c+1)<<20), 4096, 0.25, 3, seed+int64(c))
	}
	return trace.Workload{Name: "uniform", Gens: gens}
}

func TestRunAccounting(t *testing.T) {
	r, err := New(Options{
		Config:          smallCfg(),
		Work:            uniformWork(4, 1),
		WarmupAccesses:  500,
		MeasureAccesses: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := r.Run()
	if len(res.PerCore) != 4 {
		t.Fatalf("PerCore = %d", len(res.PerCore))
	}
	for c, cr := range res.PerCore {
		if cr.Stats.Accesses != 1000 {
			t.Errorf("core %d measured %d accesses, want 1000", c, cr.Stats.Accesses)
		}
		if cr.Instructions < 1000 {
			t.Errorf("core %d instructions %d < accesses", c, cr.Instructions)
		}
		if cr.Cycles == 0 || cr.IPC() <= 0 {
			t.Errorf("core %d cycles/IPC zero", c)
		}
		if cr.Cycles > res.MaxCycles {
			t.Errorf("MaxCycles %d below core %d's %d", res.MaxCycles, c, cr.Cycles)
		}
		hits := cr.Stats.L1Hits + cr.Stats.L2Hits + cr.Stats.L2Misses()
		if hits != cr.Stats.Accesses {
			t.Errorf("core %d classification %d != accesses %d", c, hits, cr.Stats.Accesses)
		}
	}
	e, v, m := res.L2MissBreakdown()
	if e+v+m != res.L2Misses() {
		t.Fatal("breakdown does not sum")
	}
	if m == 0 {
		t.Fatal("uniform workload produced no memory accesses")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Result {
		r, err := New(Options{
			Config:          smallCfg(),
			Work:            uniformWork(4, 9),
			WarmupAccesses:  300,
			MeasureAccesses: 700,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r.Run()
	}
	a, b := run(), run()
	if a.TotalIPC() != b.TotalIPC() || a.MaxCycles != b.MaxCycles {
		t.Fatal("same seed produced different results")
	}
	ae, av, am := a.L2MissBreakdown()
	be, bv, bm := b.L2MissBreakdown()
	if ae != be || av != bv || am != bm {
		t.Fatal("same seed produced different miss breakdowns")
	}
}

func TestObserverSeesMeasuredPhaseOnly(t *testing.T) {
	var observed uint64
	var badCore bool
	r, err := New(Options{
		Config:          smallCfg(),
		Work:            uniformWork(4, 2),
		WarmupAccesses:  200,
		MeasureAccesses: 400,
		Observer: func(core int, cycle uint64, line addr.Line, write bool, res coherence.AccessResult) {
			observed++
			if core < 0 || core >= 4 {
				badCore = true
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Run()
	if observed != 4*400 {
		t.Fatalf("observer saw %d accesses, want %d (measured phase only)", observed, 4*400)
	}
	if badCore {
		t.Fatal("observer saw an out-of-range core")
	}
}

func TestStatsAreMeasurePhaseDeltas(t *testing.T) {
	// With a warmup long enough to fill the caches, the measured phase of a
	// cache-fitting workload must be all hits. The per-core footprints are
	// spaced so they spread over both L2 and directory sets.
	gens := make([]trace.Generator, 4)
	for c := 0; c < 4; c++ {
		base := addr.Line(uint64(c+1) << 20)
		lines := make([]trace.Access, 16)
		for i := range lines {
			lines[i] = trace.Access{Gap: 2, Line: base + addr.Line(i*9)}
		}
		gens[c] = trace.NewFixed(lines)
	}
	r, err := New(Options{
		Config:          smallCfg(),
		Work:            trace.Workload{Name: "tiny", Gens: gens},
		WarmupAccesses:  500,
		MeasureAccesses: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := r.Run()
	if res.L2Misses() != 0 {
		t.Fatalf("warm cache-fitting run still missed %d times", res.L2Misses())
	}
}

func TestWorkloadCoreMismatch(t *testing.T) {
	if _, err := New(Options{Config: smallCfg(), Work: uniformWork(2, 1)}); err == nil {
		t.Fatal("core-count mismatch accepted")
	}
}

func TestInterleavingIsClockOrdered(t *testing.T) {
	// A core with tiny gaps must execute more accesses per unit time than
	// one with huge gaps, yet both finish the same access budget.
	fast := trace.Func(func() trace.Access { return trace.Access{Gap: 0, Line: 1 << 20} })
	slow := trace.Func(func() trace.Access { return trace.Access{Gap: 100, Line: 2 << 20} })
	cfg := smallCfg()
	cfg.Cores = 4
	r, err := New(Options{
		Config:          cfg,
		Work:            trace.Workload{Name: "skew", Gens: []trace.Generator{fast, slow, fast, slow}},
		WarmupAccesses:  0,
		MeasureAccesses: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := r.Run()
	if res.PerCore[0].Cycles >= res.PerCore[1].Cycles {
		t.Fatal("fast core took more cycles than slow core")
	}
	if res.PerCore[0].Stats.Accesses != 100 || res.PerCore[1].Stats.Accesses != 100 {
		t.Fatal("access budgets not honored")
	}
}
