package sim

import (
	"testing"

	"secdir/internal/addr"
	"secdir/internal/coherence"
	"secdir/internal/config"
	"secdir/internal/trace"
)

// TestSerialInterleaveQuantum quantifies the window scheduler's occupancy
// ceiling on simulator workloads, pinning the claim DESIGN.md §14 and the
// BENCH sharded rows rest on: under the causal interleave ("always run the
// core with the smallest clock"), an 8-core specmix keeps the cores in near
// lockstep, so the runs of consecutive same-core accesses — the only material
// conflict windows can be cut from — average barely above one access. The
// windowed path therefore cannot beat serial on multiprogrammed mixes no
// matter how cheap the mailboxes get; its headroom is on direct AccessBatch
// callers (the batch64 bench row). The distribution is deterministic, so the
// bound is exact, not flaky.
func TestSerialInterleaveQuantum(t *testing.T) {
	cfg := config.SecDirConfig(8)
	work, err := trace.NewSpecMix(2, cfg.Cores, 1)
	if err != nil {
		t.Fatal(err)
	}
	last, run := -1, 0
	var total, bursts, long int
	r, err := New(Options{
		Config:          cfg,
		Work:            work,
		WarmupAccesses:  5_000,
		MeasureAccesses: 15_000,
		Observer: func(c int, _ uint64, _ addr.Line, _ bool, _ coherence.AccessResult) {
			total++
			if c == last {
				run++
				return
			}
			if last >= 0 {
				bursts++
				if run > 1 {
					long++
				}
			}
			last, run = c, 1
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Run()
	bursts++
	if err := work.Close(); err != nil {
		t.Fatal(err)
	}
	mean := float64(total) / float64(bursts)
	t.Logf("specmix2/secdir serial interleave: %d accesses in %d bursts, mean %.3f, multi-access bursts %.1f%%",
		total, bursts, mean, 100*float64(long)/float64(bursts))
	if total != int(uint64(cfg.Cores)*15_000) {
		t.Fatalf("observer saw %d measured accesses, want %d", total, cfg.Cores*15_000)
	}
	if mean >= 2 {
		t.Fatalf("mean serial burst %.3f >= 2 — the interleave quantum grew; revisit the §14 occupancy analysis", mean)
	}
}
