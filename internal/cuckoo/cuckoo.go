// Package cuckoo implements the cuckoo directory organization used by a
// SecDir Victim Directory bank (§5.2.1 and Appendix B of the paper).
//
// A bank is a set-associative table accessed with two skewing hash functions
// h1 and h2. An insertion that finds both candidate sets full evicts an entry
// and re-inserts it under its alternate hash function, repeating for up to
// NumRelocations steps before an entry is evicted from the table for good.
// Each entry carries a Cuckoo bit recording which function placed it, and each
// set has an Empty Bit (EB) that lets the simulator skip accesses to empty
// sets (§5.2.2).
package cuckoo

import (
	"secdir/internal/addr"
	"secdir/internal/hashfn"
	"secdir/internal/metrics"
	"secdir/internal/rng"
)

// entry is one slot of a bank. A VD entry holds only an address tag, a Valid
// bit and the Cuckoo bit (Table 3); sharer information is encoded by which
// core's bank the entry lives in.
type entry struct {
	line  addr.Line
	fn    uint8 // which hash function placed the entry (the Cuckoo bit)
	valid bool
}

// Table is a cuckoo-hashed set-associative table.
// It is not safe for concurrent use; the simulator is sequential.
type Table struct {
	sets        int
	ways        int
	skew        hashfn.Skew
	relocations int
	cuckoo      bool // false = plain directory using only h1 (NoCKVD mode)
	rng         rng.Rand
	arr         []entry
	count       int

	// occ[s] is the number of valid entries in set s. It materialises the
	// Empty Bit array of §5.2.2: real hardware NORs the set's Valid bits in
	// parallel, so the model must answer SetEmpty in O(1) too rather than
	// scanning the ways on the hottest filter in the VD search path.
	occ []uint16

	// stash is a small fully-associative overflow buffer: entries that a
	// failed relocation chain would evict are parked here instead (a
	// classic cuckoo-with-stash design; §10.3 leaves "more sophisticated"
	// cuckoo organizations to future work). FIFO replacement.
	stash    []entry
	stashCap int

	// Conflicts counts insertions that ended by evicting a live entry —
	// the VD self-conflicts of Table 6.
	Conflicts uint64
	// Relocated counts individual relocation steps performed.
	Relocated uint64

	// DepthHist, when attached, observes the relocation-chain depth of every
	// insertion (0 for a first-try placement). Nil adds only a branch to the
	// insert path.
	DepthHist *metrics.Histogram
	// EBChurn, when attached, counts Empty-Bit transitions: a set going
	// empty→non-empty on insert or non-empty→empty on remove.
	EBChurn *metrics.Counter
}

// Config parameterises a Table.
type Config struct {
	Sets           int
	Ways           int
	NumRelocations int  // maximum relocation chain length (8 in Table 4)
	Cuckoo         bool // use two hash functions (CKVD) or one (NoCKVD)
	// StashSize adds a fully-associative overflow stash (0 disables).
	StashSize int
	Seed      int64
}

// New returns an empty Table.
func New(cfg Config) *Table {
	if cfg.Sets <= 0 || cfg.Sets&(cfg.Sets-1) != 0 {
		panic("cuckoo: set count must be a positive power of two")
	}
	if cfg.Ways <= 0 {
		panic("cuckoo: ways must be positive")
	}
	t := &Table{
		sets:        cfg.Sets,
		ways:        cfg.Ways,
		skew:        hashfn.NewSkew(cfg.Sets),
		relocations: cfg.NumRelocations,
		cuckoo:      cfg.Cuckoo,
		stashCap:    cfg.StashSize,
		rng:         rng.New(cfg.Seed),
		arr:         make([]entry, cfg.Sets*cfg.Ways),
		occ:         make([]uint16, cfg.Sets),
	}
	if t.stashCap > 0 {
		// The stash is bounded by stashCap; allocating it up front keeps the
		// insert path allocation-free.
		t.stash = make([]entry, 0, t.stashCap)
	}
	return t
}

// Reset restores the table to the state New would produce with the given
// seed, reusing the entry, occupancy and stash storage: every entry and
// Empty-Bit count zeroed, the conflict/relocation counters cleared, and the
// relocation generator reseeded. The skew hash functions are seedless and
// keep their construction-time tables; attached metric instruments
// (DepthHist, EBChurn) stay attached.
func (t *Table) Reset(seed int64) {
	clear(t.arr)
	clear(t.occ)
	t.stash = t.stash[:0]
	t.count = 0
	t.rng = rng.New(seed)
	t.Conflicts = 0
	t.Relocated = 0
}

// Sets returns the number of sets.
func (t *Table) Sets() int { return t.sets }

// Ways returns the associativity of each set.
func (t *Table) Ways() int { return t.ways }

// Len returns the number of valid entries.
func (t *Table) Len() int { return t.count }

// Capacity returns Sets()*Ways().
func (t *Table) Capacity() int { return t.sets * t.ways }

func (t *Table) set(i int) []entry { return t.arr[i*t.ways : (i+1)*t.ways] }

func (t *Table) setOf(fn int, l addr.Line) int { return t.skew.Hash(fn, uint64(l)) }

// place writes e into way w of set s, maintaining the occupancy counts and
// the EB-churn metric. The slot must be invalid.
func (t *Table) place(set, w int, e entry) {
	if t.occ[set] == 0 && t.EBChurn != nil {
		t.EBChurn.Inc()
	}
	t.occ[set]++
	t.set(set)[w] = e
	t.count++
}

// clear invalidates way w of set s, maintaining the occupancy counts and the
// EB-churn metric. The slot must be valid.
func (t *Table) clear(set, w int) {
	t.set(set)[w] = entry{}
	t.occ[set]--
	if t.occ[set] == 0 && t.EBChurn != nil {
		t.EBChurn.Inc()
	}
	t.count--
}

// SetPair returns the line's two candidate set indices (h1 and h2). Every
// bank with the same set count computes the same pair — the skewing functions
// are parameterised only by geometry — so a multi-bank search can hash once
// and probe each bank with ContainsAt/EmptyBitHitAt.
func (t *Table) SetPair(l addr.Line) (s0, s1 int) {
	return t.skew.Hash(0, uint64(l)), t.skew.Hash(1, uint64(l))
}

// Contains reports whether the line is present. In cuckoo mode both candidate
// sets are probed; a bank look-up can return at most one hit (§5.2.1).
func (t *Table) Contains(l addr.Line) bool {
	s0, s1 := t.SetPair(l)
	return t.ContainsAt(l, s0, s1)
}

// ContainsAt is Contains with the candidate sets precomputed via SetPair.
func (t *Table) ContainsAt(l addr.Line, s0, s1 int) bool {
	if t.occ[s0] != 0 && t.findWayIn(s0, 0, l) >= 0 {
		return true
	}
	if t.cuckoo && t.occ[s1] != 0 && t.findWayIn(s1, 1, l) >= 0 {
		return true
	}
	for i := range t.stash {
		if t.stash[i].line == l {
			return true
		}
	}
	return false
}

// findWay returns the way index of l in its fn-hashed set, or -1.
func (t *Table) findWay(fn int, l addr.Line) int {
	return t.findWayIn(t.setOf(fn, l), fn, l)
}

// findWayIn returns the way index of l in the given set under fn, or -1.
func (t *Table) findWayIn(set, fn int, l addr.Line) int {
	s := t.set(set)
	for i := range s {
		if s[i].valid && s[i].line == l && int(s[i].fn) == fn {
			return i
		}
	}
	return -1
}

// SetEmpty reports whether the given set has no valid entries — the Empty Bit
// of §5.2.2, wired as the NOR of the set's Valid bits (answered from the
// occupancy count, not a way scan, to match the O(1) hardware check).
func (t *Table) SetEmpty(set int) bool { return t.occ[set] == 0 }

// EmptyBitHit reports whether a look-up for the line would be filtered by the
// EB array: true when every candidate set of the line is empty, so the bank
// array access can be skipped entirely.
func (t *Table) EmptyBitHit(l addr.Line) bool {
	s0, s1 := t.SetPair(l)
	return t.EmptyBitHitAt(s0, s1)
}

// EmptyBitHitAt is EmptyBitHit with the candidate sets precomputed via
// SetPair.
func (t *Table) EmptyBitHitAt(s0, s1 int) bool {
	if t.occ[s0] != 0 {
		return false
	}
	return !t.cuckoo || t.occ[s1] == 0
}

// Remove deletes the line, reporting whether it was present.
func (t *Table) Remove(l addr.Line) bool {
	for fn := 0; fn < t.hashes(); fn++ {
		set := t.setOf(fn, l)
		if w := t.findWayIn(set, fn, l); w >= 0 {
			t.clear(set, w)
			return true
		}
	}
	for i := range t.stash {
		if t.stash[i].line == l {
			t.stash = append(t.stash[:i], t.stash[i+1:]...)
			t.count--
			return true
		}
	}
	return false
}

func (t *Table) hashes() int {
	if t.cuckoo {
		return 2
	}
	return 1
}

// Insert adds the line to the table. If the insertion (after up to
// NumRelocations cuckoo relocations) forces a live entry out of the table,
// that entry is returned with evicted = true; the caller must then apply the
// VD-conflict transition (⑤ of Table 2). Inserting a line already present is
// a no-op.
func (t *Table) Insert(l addr.Line) (victim addr.Line, evicted bool) {
	if t.Contains(l) {
		return 0, false
	}
	cur := entry{line: l, fn: 0, valid: true}
	// First placement: prefer an empty slot under either hash function.
	for fn := 0; fn < t.hashes(); fn++ {
		set := t.setOf(fn, l)
		s := t.set(set)
		for i := range s {
			if !s[i].valid {
				cur.fn = uint8(fn)
				t.place(set, i, cur)
				t.DepthHist.Observe(0)
				return 0, false
			}
		}
	}
	if !t.cuckoo {
		// Plain directory: evict a random way of the single candidate set.
		s := t.set(t.setOf(0, l))
		vi := t.rng.Intn(len(s))
		victim = s[vi].line
		s[vi] = cur
		t.Conflicts++
		t.DepthHist.Observe(0)
		return victim, true
	}
	// Both candidate sets full: displace an entry and relocate it under its
	// alternate hash function, bounded by NumRelocations. Only a failed
	// chain falls back to the stash, keeping the stash free for genuine
	// overflow.
	fn := t.rng.Intn(2)
	cur.fn = uint8(fn)
	for r := 0; r <= t.relocations; r++ {
		s := t.set(t.setOf(int(cur.fn), cur.line))
		// Place cur, displacing a random resident entry.
		vi := t.rng.Intn(len(s))
		disp := s[vi]
		s[vi] = cur
		// Rehash the displaced entry with its alternate function.
		disp.fn ^= 1
		dset := t.setOf(int(disp.fn), disp.line)
		ds := t.set(dset)
		placed := false
		for i := range ds {
			if !ds[i].valid {
				t.place(dset, i, disp)
				placed = true
				break
			}
		}
		if placed {
			t.Relocated += uint64(r)
			t.DepthHist.Observe(uint64(r) + 1)
			return 0, false
		}
		if r == t.relocations {
			// Give up. With a stash, the displaced entry is parked there
			// instead of being evicted; otherwise (or with a full stash)
			// an entry leaves the table for good. Note the final victim is
			// generally not from the set the new entry hashed to, which
			// obscures conflict patterns (Appendix B).
			t.Relocated += uint64(r)
			t.DepthHist.Observe(uint64(r) + 1)
			if t.stashCap > 0 && len(t.stash) < t.stashCap {
				t.stash = append(t.stash, disp)
				t.count++
				return 0, false
			}
			if t.stashCap > 0 {
				// FIFO: the oldest stash entry makes room for the new one.
				victim := t.stash[0].line
				t.stash = append(t.stash[:0], t.stash[1:]...)
				t.stash = append(t.stash, disp)
				t.Conflicts++
				return victim, true
			}
			t.Conflicts++
			return disp.line, true
		}
		cur = disp
	}
	panic("cuckoo: unreachable")
}

// Lines returns all valid lines, in arbitrary order. Used by tests.
func (t *Table) Lines() []addr.Line {
	out := make([]addr.Line, 0, t.count)
	for i := range t.arr {
		if t.arr[i].valid {
			out = append(out, t.arr[i].line)
		}
	}
	for i := range t.stash {
		out = append(out, t.stash[i].line)
	}
	return out
}

// StashLen returns the number of entries currently parked in the stash.
func (t *Table) StashLen() int { return len(t.stash) }
