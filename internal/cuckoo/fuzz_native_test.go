package cuckoo

import (
	"testing"

	"secdir/internal/addr"
)

// FuzzTableOps is a native fuzz target over raw operation bytes: byte 2k
// selects insert/remove/contains for the line in byte 2k+1. Run with
// `go test -fuzz FuzzTableOps ./internal/cuckoo` for open-ended exploration;
// under plain `go test` the seed corpus below acts as a regression test.
func FuzzTableOps(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5})
	f.Add([]byte{0, 10, 0, 10, 1, 10})
	f.Add([]byte{0, 1, 0, 2, 0, 3, 0, 4, 0, 5, 0, 6, 0, 7, 0, 8, 1, 1, 2, 2})
	f.Fuzz(func(t *testing.T, ops []byte) {
		tb := New(Config{Sets: 4, Ways: 2, NumRelocations: 3, Cuckoo: true, StashSize: 1, Seed: 1})
		resident := map[addr.Line]bool{}
		for i := 0; i+1 < len(ops); i += 2 {
			l := addr.Line(ops[i+1] % 64)
			switch ops[i] % 3 {
			case 0:
				v, ev := tb.Insert(l)
				if ev {
					if !resident[v] && v != l {
						t.Fatalf("evicted never-inserted line %#x", uint64(v))
					}
					delete(resident, v)
					if v != l {
						resident[l] = true
					}
				} else {
					resident[l] = true
				}
			case 1:
				if ok := tb.Remove(l); ok != resident[l] {
					t.Fatalf("Remove(%#x) = %v, tracker %v", uint64(l), ok, resident[l])
				}
				delete(resident, l)
			case 2:
				if got := tb.Contains(l); got != resident[l] {
					t.Fatalf("Contains(%#x) = %v, tracker %v", uint64(l), got, resident[l])
				}
			}
			if tb.Len() != len(resident) {
				t.Fatalf("Len %d != tracker %d", tb.Len(), len(resident))
			}
		}
	})
}
