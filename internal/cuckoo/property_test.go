package cuckoo

import (
	"math/rand"
	"testing"

	"secdir/internal/addr"
)

// refModel is a map-backed reference for a Table: a plain set of lines with
// the same external semantics (Insert adds the line and reports what the
// relocation chain evicted; Remove deletes; Contains probes).
type refModel map[addr.Line]bool

// applyInsert mirrors Table.Insert's contract onto the model: the new line is
// always added, and the evicted victim (possibly the new line itself, in the
// displaced-own-entry case) is dropped.
func (r refModel) applyInsert(l addr.Line, victim addr.Line, evicted bool) {
	if r[l] {
		return // Insert of a present line is a no-op; no eviction possible.
	}
	r[l] = true
	if evicted {
		delete(r, victim)
	}
}

// propConfig is one table geometry exercised by the property test.
type propConfig struct {
	name string
	cfg  Config
}

func propConfigs() []propConfig {
	return []propConfig{
		{"cuckoo", Config{Sets: 16, Ways: 2, NumRelocations: 8, Cuckoo: true, Seed: 11}},
		{"cuckoo-tight", Config{Sets: 2, Ways: 1, NumRelocations: 2, Cuckoo: true, Seed: 12}},
		{"cuckoo-stash", Config{Sets: 8, Ways: 2, NumRelocations: 4, Cuckoo: true, StashSize: 4, Seed: 13}},
		{"plain", Config{Sets: 16, Ways: 2, Cuckoo: false, Seed: 14}},
	}
}

// TestTablePropertyVsModel drives random insert/remove/lookup sequences
// against the map-backed model and checks, after every operation:
//
//   - agreement: Contains matches the model for every line ever touched, and
//     Lines() is exactly the model's set (no lost or duplicated entries);
//   - occupancy: Len() equals the model's size and never exceeds
//     Capacity()+StashSize;
//   - bounded work (Appendix B): an insertion performs at most
//     NumRelocations relocation steps and evicts at most one entry.
func TestTablePropertyVsModel(t *testing.T) {
	for _, pc := range propConfigs() {
		pc := pc
		t.Run(pc.name, func(t *testing.T) {
			tab := New(pc.cfg)
			ref := refModel{}
			rng := rand.New(rand.NewSource(pc.cfg.Seed * 997))
			// A universe a few times the capacity keeps both hits and
			// conflicts frequent.
			universe := 4 * (tab.Capacity() + pc.cfg.StashSize)
			const ops = 20_000
			for i := 0; i < ops; i++ {
				l := addr.Line(rng.Intn(universe))
				switch op := rng.Intn(10); {
				case op < 6: // insert
					wasPresent := ref[l]
					relocBefore := tab.Relocated
					conflictsBefore := tab.Conflicts
					victim, evicted := tab.Insert(l)
					ref.applyInsert(l, victim, evicted)
					if wasPresent && evicted {
						t.Fatalf("op %d: inserting present line %#x evicted %#x", i, uint64(l), uint64(victim))
					}
					if steps := tab.Relocated - relocBefore; steps > uint64(pc.cfg.NumRelocations) {
						t.Fatalf("op %d: insert relocated %d entries, bound %d", i, steps, pc.cfg.NumRelocations)
					}
					if evicted {
						if tab.Conflicts != conflictsBefore+1 {
							t.Fatalf("op %d: eviction not counted as a conflict", i)
						}
						if ref[victim] && victim != l {
							t.Fatalf("op %d: victim %#x still in the model", i, uint64(victim))
						}
					}
				case op < 8: // remove
					got := tab.Remove(l)
					if want := ref[l]; got != want {
						t.Fatalf("op %d: Remove(%#x) = %v, model %v", i, uint64(l), got, want)
					}
					delete(ref, l)
				default: // lookup
					if got, want := tab.Contains(l), ref[l]; got != want {
						t.Fatalf("op %d: Contains(%#x) = %v, model %v", i, uint64(l), got, want)
					}
				}
				// Occupancy invariants.
				if tab.Len() != len(ref) {
					t.Fatalf("op %d: Len() = %d, model %d", i, tab.Len(), len(ref))
				}
				if max := tab.Capacity() + pc.cfg.StashSize; tab.Len() > max {
					t.Fatalf("op %d: occupancy %d over capacity %d", i, tab.Len(), max)
				}
				if tab.StashLen() > pc.cfg.StashSize {
					t.Fatalf("op %d: stash %d over cap %d", i, tab.StashLen(), pc.cfg.StashSize)
				}
			}
			// Final full-state agreement: no lost entries, no phantoms.
			lines := tab.Lines()
			if len(lines) != len(ref) {
				t.Fatalf("Lines() has %d entries, model %d", len(lines), len(ref))
			}
			seen := map[addr.Line]bool{}
			for _, l := range lines {
				if !ref[l] {
					t.Fatalf("phantom entry %#x", uint64(l))
				}
				if seen[l] {
					t.Fatalf("duplicated entry %#x", uint64(l))
				}
				seen[l] = true
			}
			for l := range ref {
				if !tab.Contains(l) {
					t.Fatalf("lost entry %#x", uint64(l))
				}
			}
		})
	}
}
