package cuckoo

import (
	"math/rand"
	"testing"
	"testing/quick"

	"secdir/internal/addr"
)

func newTable(sets, ways, reloc int, cuckoo bool) *Table {
	return New(Config{Sets: sets, Ways: ways, NumRelocations: reloc, Cuckoo: cuckoo, Seed: 1})
}

func TestInsertContainsRemove(t *testing.T) {
	tb := newTable(16, 2, 4, true)
	if tb.Contains(42) {
		t.Fatal("empty table claims a line")
	}
	if _, ev := tb.Insert(42); ev {
		t.Fatal("insert into empty table evicted")
	}
	if !tb.Contains(42) {
		t.Fatal("lookup after insert failed")
	}
	if tb.Len() != 1 {
		t.Fatalf("Len = %d", tb.Len())
	}
	if !tb.Remove(42) {
		t.Fatal("remove failed")
	}
	if tb.Contains(42) || tb.Len() != 0 {
		t.Fatal("line survives removal")
	}
	if tb.Remove(42) {
		t.Fatal("double remove succeeded")
	}
}

func TestDuplicateInsertNoOp(t *testing.T) {
	tb := newTable(16, 2, 4, true)
	tb.Insert(7)
	if _, ev := tb.Insert(7); ev {
		t.Fatal("duplicate insert evicted")
	}
	if tb.Len() != 1 {
		t.Fatalf("duplicate insert grew the table: Len = %d", tb.Len())
	}
}

func TestEmptyBit(t *testing.T) {
	tb := newTable(16, 2, 4, true)
	if !tb.EmptyBitHit(99) {
		t.Fatal("EB must filter look-ups on an empty table")
	}
	tb.Insert(99)
	if tb.EmptyBitHit(99) {
		t.Fatal("EB filtered a resident line")
	}
	for set := 0; set < 16; set++ {
		empty := tb.SetEmpty(set)
		hasEntry := false
		for _, l := range tb.Lines() {
			if tb.skew.H1(uint64(l)) == set || tb.skew.H2(uint64(l)) == set {
				// the entry may be in either candidate set; SetEmpty only
				// reflects actual placement, checked via occupancy below
				hasEntry = hasEntry || !empty
			}
		}
		_ = hasEntry
	}
}

func TestConflictEvictsLiveEntry(t *testing.T) {
	tb := newTable(4, 2, 2, true)
	inserted := map[addr.Line]bool{}
	var evictions int
	for i := 0; i < 64; i++ {
		l := addr.Line(i * 977)
		v, ev := tb.Insert(l)
		if ev {
			evictions++
			if !inserted[v] && v != l {
				t.Fatalf("evicted line %#x was never inserted", uint64(v))
			}
			delete(inserted, v)
			if v != l {
				inserted[l] = true
			}
		} else {
			inserted[l] = true
		}
		if tb.Len() != len(inserted) {
			t.Fatalf("Len = %d, tracker = %d", tb.Len(), len(inserted))
		}
	}
	if evictions == 0 {
		t.Fatal("overfilling a tiny table never conflicted")
	}
	if tb.Conflicts != uint64(evictions) {
		t.Fatalf("Conflicts = %d, want %d", tb.Conflicts, evictions)
	}
}

// TestCuckooOccupancy: with relocations the table reaches much higher
// occupancy before the first forced eviction than a single-hash table —
// the "higher effective associativity" claim of §5.2.1.
func TestCuckooOccupancy(t *testing.T) {
	fill := func(cuckoo bool) int {
		tb := newTable(64, 4, 8, cuckoo)
		rng := rand.New(rand.NewSource(5))
		for i := 0; ; i++ {
			if _, ev := tb.Insert(addr.Line(rng.Int63n(1 << 30))); ev {
				return tb.Len()
			}
			if i > 10000 {
				t.Fatal("table never conflicted")
			}
		}
	}
	ck, plain := fill(true), fill(false)
	if ck <= plain {
		t.Errorf("cuckoo first-conflict occupancy %d not better than plain %d", ck, plain)
	}
	if float64(ck) < 0.75*64*4 {
		t.Errorf("cuckoo reached only %d/%d before first conflict", ck, 64*4)
	}
}

// TestCuckooSelfConflictReduction reproduces the Table 6 CKVD/NoCKVD effect
// at unit level: hammering a table beyond capacity, the cuckoo organization
// suffers fewer forced evictions than a plain one for the same trace.
func TestCuckooSelfConflictReduction(t *testing.T) {
	conflicts := func(cuckoo bool) uint64 {
		tb := newTable(64, 4, 8, cuckoo)
		rng := rand.New(rand.NewSource(6))
		// Working set slightly above capacity with reuse.
		ws := make([]addr.Line, 300)
		for i := range ws {
			ws[i] = addr.Line(rng.Int63n(1 << 30))
		}
		for i := 0; i < 20000; i++ {
			l := ws[rng.Intn(len(ws))]
			if !tb.Contains(l) {
				if v, ev := tb.Insert(l); ev && v != l {
					// evicted entries are gone; nothing else to do
					_ = v
				}
			}
		}
		return tb.Conflicts
	}
	ck, plain := conflicts(true), conflicts(false)
	if ck >= plain {
		t.Errorf("cuckoo conflicts %d not below plain %d", ck, plain)
	}
}

// TestProperty runs random operation sequences under testing/quick and
// checks: no duplicates, Len consistency, capacity bound, and that every
// resident line is found by Contains.
func TestProperty(t *testing.T) {
	f := func(seed int64, ops []uint32) bool {
		tb := New(Config{Sets: 8, Ways: 2, NumRelocations: 4, Cuckoo: true, Seed: seed})
		resident := map[addr.Line]bool{}
		for _, op := range ops {
			l := addr.Line(op % 97)
			if op%2 == 0 {
				v, ev := tb.Insert(l)
				if ev {
					if !resident[v] && v != l {
						return false // evicted a never-inserted line
					}
					delete(resident, v)
					if v != l {
						resident[l] = true
					}
				} else {
					resident[l] = true
				}
			} else {
				ok := tb.Remove(l)
				if ok != resident[l] {
					return false
				}
				delete(resident, l)
			}
		}
		if tb.Len() != len(resident) || tb.Len() > tb.Capacity() {
			return false
		}
		for l := range resident {
			if !tb.Contains(l) {
				return false
			}
		}
		seen := map[addr.Line]bool{}
		for _, l := range tb.Lines() {
			if seen[l] {
				return false
			}
			seen[l] = true
			if !resident[l] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPanics(t *testing.T) {
	for _, cfg := range []Config{
		{Sets: 0, Ways: 2},
		{Sets: 3, Ways: 2},
		{Sets: 8, Ways: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%+v) did not panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}
