package cuckoo

import (
	"testing"

	"secdir/internal/addr"
)

func BenchmarkInsertSteadyState(b *testing.B) {
	t := New(Config{Sets: 512, Ways: 4, NumRelocations: 8, Cuckoo: true, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Insert(addr.Line(uint64(i) * 0x9E3779B9 % (1 << 30)))
	}
}

func BenchmarkContains(b *testing.B) {
	t := New(Config{Sets: 512, Ways: 4, NumRelocations: 8, Cuckoo: true, Seed: 1})
	for i := 0; i < 1500; i++ {
		t.Insert(addr.Line(i * 977))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Contains(addr.Line((i % 1500) * 977))
	}
}
