package experiments

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"secdir/internal/metrics"
)

// shortOpts keeps the determinism tests fast: the property under test is
// independence from the fan-out width, not simulation fidelity.
func shortOpts() RunOpts {
	return RunOpts{Warmup: 5_000, Measure: 5_000, Cores: 8, Seed: 1}
}

// TestParallelWithMetricsMatchesSerial is the contract behind removing the
// serial-forcing branch: with a (goroutine-safe) registry attached, the
// parallel fan-out must produce exactly the rows serial execution produces —
// the data behind every CSV the cmd tool writes.
func TestParallelWithMetricsMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	ctx := context.Background()

	serial := shortOpts()
	serial.Workers = 1
	serial.Metrics = metrics.New()
	serialRows, err := Fig7SPECMixes(ctx, serial)
	if err != nil {
		t.Fatal(err)
	}

	par := shortOpts()
	par.Workers = 8
	par.Metrics = metrics.New()
	parRows, err := Fig7SPECMixes(ctx, par)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(serialRows, parRows) {
		t.Fatalf("parallel rows diverge from serial:\nserial: %+v\nparallel: %+v", serialRows, parRows)
	}

	// The aggregated counters must match too: the same simulations ran, only
	// the interleaving differed, and counter addition commutes.
	ss, ps := serial.Metrics.Snapshot(), par.Metrics.Snapshot()
	if !reflect.DeepEqual(ss.Counters, ps.Counters) {
		t.Errorf("aggregated counters diverge:\nserial: %v\nparallel: %v", ss.Counters, ps.Counters)
	}
}

// TestExperimentCancellation: a cancelled context aborts a sweep with the
// context's error instead of running it to completion.
func TestExperimentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	o := DefaultRunOpts() // full length — must not actually run
	if _, err := Fig7SPECMixes(ctx, o); !errors.Is(err, context.Canceled) {
		t.Errorf("Fig7SPECMixes error = %v, want context.Canceled", err)
	}
	if _, err := Table6SPEC(ctx, o); !errors.Is(err, context.Canceled) {
		t.Errorf("Table6SPEC error = %v, want context.Canceled", err)
	}
	if _, err := SecurityAttack(ctx, o); !errors.Is(err, context.Canceled) {
		t.Errorf("SecurityAttack error = %v, want context.Canceled", err)
	}
	if _, err := Scaling(ctx, o, 16); !errors.Is(err, context.Canceled) {
		t.Errorf("Scaling error = %v, want context.Canceled", err)
	}
	if _, err := Alternatives(ctx, o); !errors.Is(err, context.Canceled) {
		t.Errorf("Alternatives error = %v, want context.Canceled", err)
	}
	if _, err := Fig6AESTrace(ctx, o); !errors.Is(err, context.Canceled) {
		t.Errorf("Fig6AESTrace error = %v, want context.Canceled", err)
	}
}
