package experiments

import (
	"context"

	"secdir/internal/area"
	"secdir/internal/attack"
	"secdir/internal/coherence"
	"secdir/internal/config"
	"secdir/internal/trace"
)

// SC — scaling study (§4.1 "the VD design is scalable with the number of
// cores"): at every machine size, the attack gets *easier* against the
// baseline (more attacker cores, §2.3) while SecDir keeps blocking it, and
// the per-core VD capacity stays pinned to the L2 size.

// SCRow is one machine size of the scaling study.
type SCRow struct {
	Cores int

	// RequiredAssoc is the §2.3 bound W_L2·(N−1)+W_LLC.
	RequiredAssoc int

	// VDEntriesPerCore and L2Lines compare the distributed VD capacity to
	// the private cache it must cover.
	VDEntriesPerCore int
	L2Lines          int

	// Storage delta (SecDir − baseline) per slice, in KB; negative means
	// SecDir is smaller.
	StorageDeltaKB float64

	// Attack outcomes at this scale.
	BaselineAccuracy        float64
	SecDirAccuracy          float64
	BaselineVictimEvictions int
	SecDirVictimEvictions   int
}

// Scaling runs the attack and the sizing arithmetic at 8..maxCores cores
// (power-of-two steps; the simulator supports up to 64). ctx is checked
// between machine sizes.
func Scaling(ctx context.Context, o RunOpts, maxCores int) ([]SCRow, error) {
	if maxCores > 64 {
		maxCores = 64
	}
	const rounds = 20
	var rows []SCRow
	for n := 8; n <= maxCores; n *= 2 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		row := SCRow{
			Cores:         n,
			RequiredAssoc: area.RequiredAssociativity(n),
			L2Lines:       config.SecDirConfig(n).L2Lines(),
		}
		secCfg := config.SecDirConfig(n)
		secCfg.Seed = o.Seed
		row.VDEntriesPerCore = secCfg.VDEntriesPerCore()
		base := area.SkylakeSlice(n)
		sec := area.SecDirSlice(n, 8)
		row.StorageDeltaKB = area.KB(sec.Total()) - area.KB(base.Total())

		target := trace.T0Lines()[0]
		attackers := make([]int, 0, n-1)
		for c := 1; c < n; c++ {
			attackers = append(attackers, c)
		}
		// The eviction set must beat W_ED+W_TD regardless of scale; 32
		// lines suffices and every added core makes priming easier.
		baseCfg := config.SkylakeX(n)
		baseCfg.Seed = o.Seed
		eb, err := coherence.NewEngine(baseCfg)
		if err != nil {
			return nil, err
		}
		rb, err := attack.EvictReload(eb, 0, attackers, target, rounds, 32)
		if err != nil {
			return nil, err
		}
		row.BaselineAccuracy = rb.Accuracy()
		row.BaselineVictimEvictions = rb.VictimEvictions

		es, err := coherence.NewEngine(secCfg)
		if err != nil {
			return nil, err
		}
		rs, err := attack.EvictReload(es, 0, attackers, target, rounds, 32)
		if err != nil {
			return nil, err
		}
		row.SecDirAccuracy = rs.Accuracy()
		row.SecDirVictimEvictions = rs.VictimEvictions

		rows = append(rows, row)
	}
	return rows, nil
}
