package experiments

import (
	"context"
	"errors"

	"secdir/internal/attack"
	"secdir/internal/coherence"
	"secdir/internal/config"
	"secdir/internal/trace"
)

// ALT — the §1/§11 design-space comparison: the vulnerable baseline, the
// DAWG-style way-partitioned alternative, the CEASER-style randomized
// alternative, and SecDir, on the same workload and under two attacks
// (targeted evict+reload and brute-force slice flooding). Way partitioning is
// secure but pays in conflict misses and cannot be built beyond 11 cores;
// randomization defeats the targeted attack but only raises the price of the
// flood; SecDir blocks both structurally at baseline-like performance.

// ALTRow is one design's outcome.
type ALTRow struct {
	Design string

	// Buildable is false when the design cannot exist at this core count
	// (way partitioning with cores > ways).
	Buildable bool

	// Performance on the workload.
	IPC      float64
	L2Misses uint64

	// Security under targeted evict+reload.
	AttackAccuracy  float64
	VictimEvictions int

	// Security under brute-force slice flooding (48k lines per round).
	FloodAccuracy  float64
	FloodEvictions int

	// InclusionVictims the victim core suffered from other cores' activity
	// during the workload run (cross-core only; way partitioning's
	// self-conflicts are not counted here, matching the threat model).
	InclusionVictims uint64
}

// Alternatives runs the three designs on SPEC mix2 and the directory attack.
// ctx is checked between designs and inside each simulation leg.
func Alternatives(ctx context.Context, o RunOpts) ([]ALTRow, error) {
	configs := []struct {
		name string
		cfg  config.Config
	}{
		{"baseline", config.SkylakeX(o.Cores)},
		{"way-partitioned", config.WayPartitionedConfig(o.Cores)},
		{"rand-mapped", config.RandMappedConfig(o.Cores, 200_000)},
		{"secdir", config.SecDirConfig(o.Cores)},
	}
	target := trace.T0Lines()[0]
	attackers := make([]int, 0, o.Cores-1)
	for c := 1; c < o.Cores; c++ {
		attackers = append(attackers, c)
	}

	var rows []ALTRow
	for _, c := range configs {
		row := ALTRow{Design: c.name, Buildable: true}
		cfg := c.cfg
		cfg.Seed = o.Seed

		// Performance leg.
		w, err := trace.NewSpecMix(2, o.Cores, o.Seed)
		if err != nil {
			return nil, err
		}
		res, _, err := run(ctx, cfg, w, o, nil)
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return nil, err
			}
			// Unbuildable designs surface here (e.g. way partitioning at
			// 16+ cores).
			row.Buildable = false
			rows = append(rows, row)
			continue
		}
		row.IPC = res.TotalIPC()
		row.L2Misses = res.L2Misses()
		for _, cr := range res.PerCore {
			row.InclusionVictims += cr.Stats.ConflictInvalidations
		}

		// Security leg.
		e, err := coherence.NewEngine(cfg)
		if err != nil {
			return nil, err
		}
		er, err := attack.EvictReload(e, 0, attackers, target, 40, 32)
		if err != nil {
			return nil, err
		}
		row.AttackAccuracy = er.Accuracy()
		row.VictimEvictions = er.VictimEvictions

		ef, err := coherence.NewEngine(cfg)
		if err != nil {
			return nil, err
		}
		fr, err := attack.FloodReload(ef, 0, attackers, target, 10, 48_000)
		if err != nil {
			return nil, err
		}
		row.FloodAccuracy = fr.Accuracy()
		row.FloodEvictions = fr.VictimEvictions
		rows = append(rows, row)
	}
	return rows, nil
}
