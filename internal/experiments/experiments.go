// Package experiments regenerates every table and figure of the SecDir
// paper's evaluation (§7, §9, §10): each exported function is one experiment
// and returns typed rows that the cmd/secdir-experiments tool (and the
// repository benchmarks) format. See DESIGN.md for the experiment index and
// EXPERIMENTS.md for paper-vs-measured results.
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"secdir/internal/addr"
	"secdir/internal/area"
	"secdir/internal/attack"
	"secdir/internal/coherence"
	"secdir/internal/config"
	"secdir/internal/metrics"
	"secdir/internal/sim"
	"secdir/internal/trace"
)

// RunOpts sets the simulation lengths used by the simulation-backed
// experiments (F6, F7, F8, T6, S1).
type RunOpts struct {
	// Warmup and Measure are per-core access counts.
	Warmup, Measure uint64
	// Cores is the machine size (the paper evaluates 8).
	Cores int
	// Seed makes runs reproducible.
	Seed int64
	// Metrics, when non-nil, is attached to every engine the experiments
	// build; counters aggregate across runs (get-or-create naming). The
	// registry is goroutine-safe, so parallel experiment fan-out works with
	// metrics enabled.
	Metrics *metrics.Registry
	// Workers bounds the experiment fan-out; 0 uses GOMAXPROCS, 1 forces
	// serial execution. Each simulation is fully independent (separate
	// engines, separate seeded generators), so the parallelism level does not
	// change any experiment's rows.
	Workers int
}

// DefaultRunOpts returns the lengths used for the published numbers in
// EXPERIMENTS.md.
func DefaultRunOpts() RunOpts {
	return RunOpts{Warmup: 150_000, Measure: 150_000, Cores: 8, Seed: 1}
}

// QuickRunOpts returns short runs for tests.
func QuickRunOpts() RunOpts {
	return RunOpts{Warmup: 20_000, Measure: 20_000, Cores: 8, Seed: 1}
}

func (o RunOpts) configs() (base, sec config.Config) {
	base = config.SkylakeX(o.Cores)
	base.Seed = o.Seed
	sec = config.SecDirConfig(o.Cores)
	sec.Seed = o.Seed
	return base, sec
}

// run simulates one workload on one configuration, honouring ctx
// cancellation.
func run(ctx context.Context, cfg config.Config, w trace.Workload, o RunOpts, obs sim.Observer) (sim.Result, *sim.Runner, error) {
	r, err := sim.New(sim.Options{
		Config:          cfg,
		Work:            w,
		WarmupAccesses:  o.Warmup,
		MeasureAccesses: o.Measure,
		Observer:        obs,
		Metrics:         o.Metrics,
	})
	if err != nil {
		return sim.Result{}, nil, err
	}
	res, err := r.RunContext(ctx)
	if err != nil {
		return sim.Result{}, nil, err
	}
	return res, r, nil
}

// ---------------------------------------------------------------------------
// A1 — §2.3: required directory associativity vs. what a slice provides.

// A1Row compares the associativity a victim needs against what the Skylake-X
// directory slice provides (W_TD + W_ED = 23).
type A1Row struct {
	Cores    int
	Required int // W_L2 × (N−1) + W_LLC
	Provided int
}

// AssociativityAnalysis regenerates the §2.3 analysis for 4..128 cores.
func AssociativityAnalysis() []A1Row {
	var rows []A1Row
	for n := 4; n <= 128; n *= 2 {
		rows = append(rows, A1Row{
			Cores:    n,
			Required: area.RequiredAssociativity(n),
			Provided: area.TDWays + area.EDWaysBase,
		})
	}
	return rows
}

// ---------------------------------------------------------------------------
// F5 — Figure 5: per-core VD entries / L2 lines for equal-storage designs.

// F5Row is one core-count column of Figure 5.
type F5Row struct {
	Cores  int
	Ratios map[int]float64 // W_ED -> ratio
	Detail map[int]area.Sizing
}

// Fig5VDSizing regenerates Figure 5: the ratio of machine-wide per-core VD
// entries to L2 lines, for W_ED in 6..10 and core counts 4..128, holding
// total directory storage equal to the Skylake-X baseline.
func Fig5VDSizing() []F5Row {
	var rows []F5Row
	for n := 4; n <= 128; n *= 2 {
		row := F5Row{Cores: n, Ratios: map[int]float64{}, Detail: map[int]area.Sizing{}}
		for wED := 6; wED <= 10; wED++ {
			s := area.SizeVD(n, wED)
			row.Ratios[wED] = s.Ratio
			row.Detail[wED] = s
		}
		rows = append(rows, row)
	}
	return rows
}

// ---------------------------------------------------------------------------
// T7 — Table 7: per-slice storage and area.

// T7Row is one structure's storage and area in one design.
type T7Row struct {
	Design    string // "baseline" or "secdir"
	Structure string // TD, ED, VD, Total
	KB        float64
	MM2       float64
}

// Table7StorageArea regenerates Table 7 for the 8-core design point.
func Table7StorageArea(cores int) []T7Row {
	base := area.SkylakeSlice(cores)
	sec := area.SecDirSlice(cores, 8)
	vdSets, vdWays := area.FullVDBank(cores)
	_ = vdSets
	_ = vdWays
	rows := []T7Row{
		{"baseline", "TD", area.KB(base.TD), area.AreaMM2(area.KB(base.TD), 1)},
		{"baseline", "ED", area.KB(base.ED), area.AreaMM2(area.KB(base.ED), 1)},
		{"baseline", "Total", area.KB(base.Total()), area.AreaMM2(area.KB(base.TD), 1) + area.AreaMM2(area.KB(base.ED), 1)},
		{"secdir", "TD", area.KB(sec.TD), area.AreaMM2(area.KB(sec.TD), 1)},
		{"secdir", "ED", area.KB(sec.ED), area.AreaMM2(area.KB(sec.ED), 1)},
		{"secdir", "VD", area.KB(sec.VD), area.AreaMM2(area.KB(sec.VD), cores)},
		{"secdir", "Total", area.KB(sec.Total()),
			area.AreaMM2(area.KB(sec.TD), 1) + area.AreaMM2(area.KB(sec.ED), 1) + area.AreaMM2(area.KB(sec.VD), cores)},
	}
	return rows
}

// ---------------------------------------------------------------------------
// F6 — Figure 6: AES T0-table access trace on SecDir with VD only.

// F6Point is one T0-table access in the trace.
type F6Point struct {
	Cycle     uint64
	LineIndex int  // 0..15 within the T0 table
	MemAccess bool // true = main-memory access, false = L1/L2 hit
}

// F6Result is the Figure 6 trace plus its summary.
type F6Result struct {
	Points []F6Point
	// MemAccesses / L1L2Hits count T0 accesses by class. The paper's
	// figure shows exactly 16 memory accesses (one per T0 line, the cold
	// first touch); everything after hits the private caches, which the
	// attacker can neither observe nor disturb.
	MemAccesses uint64
	L1L2Hits    uint64
	VDOrEDTD    uint64 // directory-served refetches (0 if the defense holds)
}

// Fig6AESTrace runs the AES victim on SecDir with the shared ED/TD disabled
// (§9's strongest adversary, which fully controls those structures) and
// records every access to the 16 lines of the T0 table.
func Fig6AESTrace(ctx context.Context, o RunOpts) (F6Result, error) {
	cfg := config.SecDirConfig(o.Cores)
	cfg.Seed = o.Seed
	cfg.DisableEDTD = true

	var key [16]byte
	for i := range key {
		key[i] = byte(0x13*i + 7)
	}
	gens := make([]trace.Generator, o.Cores)
	gens[0] = trace.NewAESVictim(key, o.Seed)
	for c := 1; c < o.Cores; c++ {
		gens[c] = trace.NewIdle(addr.Line(uint64(c+1) << 30))
	}

	t0 := map[addr.Line]int{}
	for i, l := range trace.T0Lines() {
		t0[l] = i
	}
	var res F6Result
	obs := func(core int, cycle uint64, line addr.Line, write bool, ar coherence.AccessResult) {
		idx, ok := t0[line]
		if core != 0 || !ok {
			return
		}
		p := F6Point{Cycle: cycle, LineIndex: idx}
		switch ar.Level {
		case coherence.LevelL1, coherence.LevelL2:
			res.L1L2Hits++
		case coherence.LevelMemory:
			p.MemAccess = true
			res.MemAccesses++
		default:
			res.VDOrEDTD++
		}
		res.Points = append(res.Points, p)
	}

	// No warmup: the cold first touches are the point of the figure.
	_, _, err := run(ctx, cfg, trace.Workload{Name: "aes", Gens: gens}, RunOpts{
		Warmup: 0, Measure: o.Measure, Cores: o.Cores, Seed: o.Seed,
		Metrics: o.Metrics,
	}, obs)
	return res, err
}

// ---------------------------------------------------------------------------
// F7 / F8 — Figures 7 and 8: SPEC mixes and PARSEC applications.

// PerfRow compares one workload on Baseline vs. SecDir.
type PerfRow struct {
	Name string

	// Throughput: sum of per-core IPCs (SPEC mixes) and parallel execution
	// time (PARSEC). NormIPC is SecDir/Baseline IPC; NormTime is
	// SecDir/Baseline execution time.
	BaselineIPC, SecDirIPC float64
	NormIPC                float64
	NormTime               float64

	// L2 miss breakdown (Figures 7b / 8b), absolute counts.
	Baseline MissBreakdown
	SecDir   MissBreakdown

	// NormMisses is SecDir total L2 misses / Baseline total L2 misses.
	NormMisses float64

	// BaselineInclusionVictims counts private-cache lines lost to shared-
	// structure conflicts on the baseline; SecDir's count is asserted zero
	// by the test suite.
	BaselineInclusionVictims uint64
	SecDirInclusionVictims   uint64
}

// MissBreakdown splits L2 misses by where they were served (Figure 7b).
type MissBreakdown struct {
	EDTDHits  uint64
	VDHits    uint64
	MemAccess uint64
}

// Total returns the total L2 misses.
func (m MissBreakdown) Total() uint64 { return m.EDTDHits + m.VDHits + m.MemAccess }

// comparePair runs one workload on both designs. The workload is rebuilt per
// design via mk so generator state does not leak between runs.
func comparePair(ctx context.Context, name string, mk func() (trace.Workload, error), o RunOpts) (PerfRow, error) {
	row := PerfRow{Name: name}
	base, sec := o.configs()
	for i, cfg := range []config.Config{base, sec} {
		w, err := mk()
		if err != nil {
			return row, err
		}
		res, _, err := run(ctx, cfg, w, o, nil)
		if err != nil {
			return row, err
		}
		e, v, m := res.L2MissBreakdown()
		bd := MissBreakdown{EDTDHits: e, VDHits: v, MemAccess: m}
		var incl uint64
		for _, c := range res.PerCore {
			incl += c.Stats.ConflictInvalidations
		}
		if i == 0 {
			row.BaselineIPC = res.TotalIPC()
			row.Baseline = bd
			row.BaselineInclusionVictims = incl
			row.NormTime = float64(res.MaxCycles)
		} else {
			row.SecDirIPC = res.TotalIPC()
			row.SecDir = bd
			row.SecDirInclusionVictims = incl
			row.NormTime = float64(res.MaxCycles) / row.NormTime
		}
	}
	if row.BaselineIPC > 0 {
		row.NormIPC = row.SecDirIPC / row.BaselineIPC
	}
	if bt := row.Baseline.Total(); bt > 0 {
		row.NormMisses = float64(row.SecDir.Total()) / float64(bt)
	} else {
		row.NormMisses = 1
	}
	return row, nil
}

// workers resolves the experiment fan-out width. Each simulation is fully
// independent and CPU-bound, and the metrics registry is goroutine-safe, so
// simulations fan out across cores even with metrics attached.
func (o RunOpts) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// parallelRows runs fn(i) for i in [0,n) across workers goroutines, keeping
// result order. Each experiment's simulations are fully independent
// (separate engines, separate seeded generators), so fanning them out is
// deterministic. Dispatch stops once ctx is cancelled; fn is expected to
// observe ctx itself for in-flight work.
func parallelRows[T any](ctx context.Context, workers, n int, fn func(i int) (T, error)) ([]T, error) {
	rows := make([]T, n)
	errs := make([]error, n)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				rows[i], errs[i] = fn(i)
			}
		}()
	}
dispatch:
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// Fig7SPECMixes regenerates Figure 7: the 12 Table 5 mixes on Baseline and
// SecDir.
func Fig7SPECMixes(ctx context.Context, o RunOpts) ([]PerfRow, error) {
	return parallelRows(ctx, o.workers(), len(trace.SpecMixes), func(mix int) (PerfRow, error) {
		return comparePair(ctx, fmt.Sprintf("mix%d", mix), func() (trace.Workload, error) {
			return trace.NewSpecMix(mix, o.Cores, o.Seed)
		}, o)
	})
}

// Fig8PARSEC regenerates Figure 8: the PARSEC applications on Baseline and
// SecDir.
func Fig8PARSEC(ctx context.Context, o RunOpts) ([]PerfRow, error) {
	names := trace.ParsecNames()
	return parallelRows(ctx, o.workers(), len(names), func(i int) (PerfRow, error) {
		n := names[i]
		return comparePair(ctx, n, func() (trace.Workload, error) {
			return trace.NewParsecWorkload(n, o.Cores, o.Seed)
		}, o)
	})
}

// ---------------------------------------------------------------------------
// T6 — Table 6: Empty-Bit effectiveness and cuckoo self-conflict reduction.

// T6Row evaluates the two VD features for one workload.
type T6Row struct {
	Name string
	// EBRatio is EBVD/NoEBVD: the fraction of VD bank look-ups still
	// performed with the Empty Bit filter enabled.
	EBRatio float64
	// CKRatio is CKVD/NoCKVD: VD self-conflicts with the cuckoo
	// organization relative to a plain single-hash VD, measured under the
	// worst-case attack (ED/TD fully controlled by the adversary, i.e.
	// disabled for the victim).
	CKRatio float64
}

// table6For evaluates one workload.
func table6For(ctx context.Context, name string, mk func() (trace.Workload, error), o RunOpts) (T6Row, error) {
	row := T6Row{Name: name}

	// EB effectiveness: normal SecDir run; the slice counts both the
	// filtered look-ups and what a design without EB would have performed.
	_, sec := o.configs()
	w, err := mk()
	if err != nil {
		return row, err
	}
	res, _, err := run(ctx, sec, w, o, nil)
	if err != nil {
		return row, err
	}
	if res.Dir.VDLookupsNoEB > 0 {
		row.EBRatio = float64(res.Dir.VDLookups) / float64(res.Dir.VDLookupsNoEB)
	}

	// Cuckoo effectiveness under worst-case attack: ED/TD disabled, compare
	// self-conflicts with cuckoo vs. plain banks.
	var conflicts [2]uint64
	for i, cuckoo := range []bool{true, false} {
		cfg := sec
		cfg.DisableEDTD = true
		cfg.VDCuckoo = cuckoo
		w, err := mk()
		if err != nil {
			return row, err
		}
		r, _, err := run(ctx, cfg, w, o, nil)
		if err != nil {
			return row, err
		}
		conflicts[i] = r.VDSelfConflicts
	}
	if conflicts[1] > 0 {
		row.CKRatio = float64(conflicts[0]) / float64(conflicts[1])
	}
	return row, nil
}

// Table6SPEC evaluates the VD features over the SPEC mixes.
func Table6SPEC(ctx context.Context, o RunOpts) ([]T6Row, error) {
	return parallelRows(ctx, o.workers(), len(trace.SpecMixes), func(mix int) (T6Row, error) {
		return table6For(ctx, fmt.Sprintf("mix%d", mix), func() (trace.Workload, error) {
			return trace.NewSpecMix(mix, o.Cores, o.Seed)
		}, o)
	})
}

// Table6PARSEC evaluates the VD features over the PARSEC applications.
func Table6PARSEC(ctx context.Context, o RunOpts) ([]T6Row, error) {
	names := trace.ParsecNames()
	return parallelRows(ctx, o.workers(), len(names), func(i int) (T6Row, error) {
		n := names[i]
		return table6For(ctx, n, func() (trace.Workload, error) {
			return trace.NewParsecWorkload(n, o.Cores, o.Seed)
		}, o)
	})
}

// ---------------------------------------------------------------------------
// S1 — §9: the directory attack against both designs.

// S1Result compares the directory attack on Baseline vs. SecDir.
type S1Result struct {
	// Evict+reload: classification accuracy (0.5 = chance) and how often
	// the Conflict step evicted the victim's private copy.
	BaselineAccuracy float64
	SecDirAccuracy   float64
	BaselineVictimEvictions,
	SecDirVictimEvictions int
	Rounds int

	// Prime+probe signal in probe misses per round.
	BaselineSignal float64
	SecDirSignal   float64

	// Victim inclusion victims across the whole experiment.
	BaselineInclusionVictims uint64
	SecDirInclusionVictims   uint64
}

// SecurityAttack mounts the evict+reload and prime+probe attacks of §2.2/§9
// against a T-table line on both designs. ctx is checked between attack
// stages (each stage is a bounded number of rounds, so cancellation latency
// is one stage).
func SecurityAttack(ctx context.Context, o RunOpts) (S1Result, error) {
	const rounds = 40
	target := trace.T0Lines()[0]
	attackers := make([]int, 0, o.Cores-1)
	for c := 1; c < o.Cores; c++ {
		attackers = append(attackers, c)
	}
	var out S1Result
	out.Rounds = rounds

	base, sec := o.configs()
	// The prime+probe observable is cleanest on the Appendix-A-fixed
	// baseline (see internal/attack's tests); evict+reload works on both.
	baseFixed := base
	baseFixed.AppendixAFix = true

	for i, cfg := range []config.Config{base, sec} {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		e, err := coherence.NewEngine(cfg)
		if err != nil {
			return out, err
		}
		er, err := attack.EvictReload(e, 0, attackers, target, rounds, 32)
		if err != nil {
			return out, err
		}
		incl := e.Stats().Core[0].ConflictInvalidations

		if err := ctx.Err(); err != nil {
			return out, err
		}
		pcfg := cfg
		if i == 0 {
			pcfg = baseFixed
		}
		pe, err := coherence.NewEngine(pcfg)
		if err != nil {
			return out, err
		}
		pp, err := attack.PrimeProbe(pe, 0, attackers, target, rounds, 32)
		if err != nil {
			return out, err
		}

		if i == 0 {
			out.BaselineAccuracy = er.Accuracy()
			out.BaselineVictimEvictions = er.VictimEvictions
			out.BaselineSignal = pp.Signal()
			out.BaselineInclusionVictims = incl
		} else {
			out.SecDirAccuracy = er.Accuracy()
			out.SecDirVictimEvictions = er.VictimEvictions
			out.SecDirSignal = pp.Signal()
			out.SecDirInclusionVictims = incl
		}
	}
	return out, nil
}
