package experiments

import (
	"context"
	"testing"

	"secdir/internal/trace"
)

func TestAssociativityAnalysis(t *testing.T) {
	rows := AssociativityAnalysis()
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Provided != 23 {
			t.Errorf("%d cores: provided = %d, want 23", r.Cores, r.Provided)
		}
		if r.Required <= r.Provided {
			t.Errorf("%d cores: required %d should exceed provided %d (the vulnerability)", r.Cores, r.Required, r.Provided)
		}
	}
	if rows[1].Cores != 8 || rows[1].Required != 123 {
		t.Errorf("8-core row: %+v (paper: >123 needed)", rows[1])
	}
}

func TestFig5Shape(t *testing.T) {
	rows := Fig5VDSizing()
	// Anchors from the paper's Figure 5.
	for _, r := range rows {
		if r.Cores == 8 {
			if got := r.Ratios[8]; got < 0.4 || got > 0.75 {
				t.Errorf("8 cores W_ED=8: ratio %v, want ≈0.5", got)
			}
		}
		if r.Cores == 128 {
			if got := r.Ratios[6]; got < 2.5 || got > 4.5 {
				t.Errorf("128 cores W_ED=6: ratio %v, want ≈3.5", got)
			}
		}
		// Monotone: smaller retained ED → larger VD.
		for wED := 7; wED <= 10; wED++ {
			if r.Ratios[wED] > r.Ratios[wED-1] {
				t.Errorf("%d cores: ratio not monotone at W_ED=%d", r.Cores, wED)
			}
		}
	}
	// Ratios grow with the core count (sharer bits are reused).
	for wED := 6; wED <= 10; wED++ {
		if rows[len(rows)-1].Ratios[wED] < rows[0].Ratios[wED] {
			t.Errorf("W_ED=%d: ratio shrinks with core count", wED)
		}
	}
}

func TestTable7(t *testing.T) {
	rows := Table7StorageArea(8)
	kb := map[string]float64{}
	for _, r := range rows {
		kb[r.Design+"/"+r.Structure] = r.KB
	}
	expect := map[string]float64{
		"baseline/TD": 107.25, "baseline/ED": 114.0,
		"secdir/TD": 107.25, "secdir/ED": 76.0, "secdir/VD": 66.5,
	}
	for k, want := range expect {
		if got := kb[k]; got != want {
			t.Errorf("%s = %v KB, want %v", k, got, want)
		}
	}
	if d := kb["secdir/Total"] - kb["baseline/Total"]; d != 28.5 {
		t.Errorf("per-slice storage delta = %v KB, want 28.5", d)
	}
}

func TestFig6AESDefenseHolds(t *testing.T) {
	res, err := Fig6AESTrace(context.Background(), QuickRunOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Exactly one main-memory access per T0 line (the cold first touch).
	if res.MemAccesses != 16 {
		t.Errorf("T0 memory accesses = %d, want 16", res.MemAccesses)
	}
	// Every subsequent access hits the victim's private caches — nothing
	// for the strongest adversary (full ED/TD control) to observe.
	if res.VDOrEDTD != 0 {
		t.Errorf("%d T0 refetches went through the directory", res.VDOrEDTD)
	}
	if res.L1L2Hits == 0 {
		t.Error("no T0 accesses recorded after the cold misses")
	}
	seen := map[int]bool{}
	for _, p := range res.Points {
		if p.LineIndex < 0 || p.LineIndex > 15 {
			t.Fatalf("bad line index %d", p.LineIndex)
		}
		if p.MemAccess {
			if seen[p.LineIndex] {
				t.Errorf("T0[%d] fetched from memory twice", p.LineIndex)
			}
			seen[p.LineIndex] = true
		}
	}
}

func TestSecurityAttackComparison(t *testing.T) {
	res, err := SecurityAttack(context.Background(), QuickRunOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.BaselineAccuracy < 0.95 {
		t.Errorf("baseline evict+reload accuracy %v, want ≈1.0", res.BaselineAccuracy)
	}
	if res.SecDirAccuracy > 0.6 {
		t.Errorf("secdir evict+reload accuracy %v, want ≈0.5", res.SecDirAccuracy)
	}
	if res.SecDirVictimEvictions != 0 {
		t.Errorf("secdir victim evictions = %d, want 0", res.SecDirVictimEvictions)
	}
	if res.SecDirInclusionVictims != 0 {
		t.Errorf("secdir inclusion victims = %d, want 0", res.SecDirInclusionVictims)
	}
	if res.BaselineSignal <= res.SecDirSignal {
		t.Errorf("prime+probe: baseline signal %v not above secdir %v", res.BaselineSignal, res.SecDirSignal)
	}
}

// TestFig7Subset runs two contrasting mixes end to end (quick lengths) and
// checks the Figure 7 claims: SecDir is never worse on misses, IPC is close
// to the baseline, SPEC sees no VD hits, and only the baseline suffers
// inclusion victims.
func TestFig7Subset(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	o := QuickRunOpts()
	rows, err := Fig7SPECMixes(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.NormMisses > 1.02 {
			t.Errorf("%s: SecDir misses %.3fx baseline", r.Name, r.NormMisses)
		}
		if r.NormIPC < 0.95 || r.NormIPC > 1.05 {
			t.Errorf("%s: normalized IPC %.3f not ≈1.0", r.Name, r.NormIPC)
		}
		if r.SecDir.VDHits != 0 {
			t.Errorf("%s: single-threaded mix produced %d VD hits", r.Name, r.SecDir.VDHits)
		}
		if r.SecDirInclusionVictims != 0 {
			t.Errorf("%s: SecDir inclusion victims = %d", r.Name, r.SecDirInclusionVictims)
		}
	}
}

// TestFig8Subset checks the PARSEC claims on two applications: freqmine
// shows cross-core VD hits, blackscholes shows essentially none.
func TestFig8Subset(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	o := QuickRunOpts()
	o.Warmup, o.Measure = 60_000, 60_000 // parking needs some steady state
	for _, tc := range []struct {
		name   string
		wantVD bool
	}{
		{"freqmine", true},
		{"blackscholes", false},
	} {
		name := tc.name
		row, err := comparePair(context.Background(), name, func() (trace.Workload, error) {
			return trace.NewParsecWorkload(name, o.Cores, o.Seed)
		}, o)
		if err != nil {
			t.Fatal(err)
		}
		hasVD := row.SecDir.VDHits > 0
		if hasVD != tc.wantVD {
			t.Errorf("%s: VD hits = %d, want >0: %v", tc.name, row.SecDir.VDHits, tc.wantVD)
		}
		if row.NormMisses > 1.02 {
			t.Errorf("%s: SecDir misses %.3fx baseline", tc.name, row.NormMisses)
		}
		if row.SecDirInclusionVictims != 0 {
			t.Errorf("%s: SecDir inclusion victims = %d", tc.name, row.SecDirInclusionVictims)
		}
	}
}

// TestTable6Quick checks the Table 6 shape on one mix: the Empty Bit filters
// a meaningful share of look-ups and the cuckoo organization reduces
// worst-case self-conflicts.
func TestTable6Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	o := QuickRunOpts()
	o.Warmup, o.Measure = 60_000, 60_000 // the VD needs occupancy for EB stats
	row, err := table6For(context.Background(), "mix2", func() (trace.Workload, error) {
		return trace.NewSpecMix(2, o.Cores, o.Seed)
	}, o)
	if err != nil {
		t.Fatal(err)
	}
	if row.EBRatio <= 0 || row.EBRatio >= 1 {
		t.Errorf("EB ratio = %v, want in (0,1)", row.EBRatio)
	}
	if row.CKRatio <= 0 || row.CKRatio >= 1.2 {
		t.Errorf("CK ratio = %v, want < 1.2", row.CKRatio)
	}
}

// TestScaling checks the SC study: at every machine size the baseline leaks
// and SecDir blocks, the per-core VD tracks the L2 size, and the SecDir
// storage premium shrinks (turning into a saving at large core counts).
func TestScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	rows, err := Scaling(context.Background(), QuickRunOpts(), 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 { // 8, 16, 32
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if r.BaselineAccuracy < 0.95 {
			t.Errorf("%d cores: baseline accuracy %v", r.Cores, r.BaselineAccuracy)
		}
		if r.SecDirAccuracy > 0.6 || r.SecDirVictimEvictions != 0 {
			t.Errorf("%d cores: secdir leaked (acc %v, evictions %d)", r.Cores, r.SecDirAccuracy, r.SecDirVictimEvictions)
		}
		if r.VDEntriesPerCore < r.L2Lines {
			t.Errorf("%d cores: per-core VD %d below L2 %d", r.Cores, r.VDEntriesPerCore, r.L2Lines)
		}
		if i > 0 && r.StorageDeltaKB >= rows[i-1].StorageDeltaKB {
			t.Errorf("storage premium did not shrink: %v -> %v KB", rows[i-1].StorageDeltaKB, r.StorageDeltaKB)
		}
	}
}

// TestAlternatives checks the §1/§11 design-space comparison: all three
// designs buildable at 8 cores; only the baseline leaks; way partitioning
// pays a clear miss penalty relative to SecDir.
func TestAlternatives(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	rows, err := Alternatives(context.Background(), QuickRunOpts())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]ALTRow{}
	for _, r := range rows {
		byName[r.Design] = r
	}
	base, wp, sec := byName["baseline"], byName["way-partitioned"], byName["secdir"]
	if !base.Buildable || !wp.Buildable || !sec.Buildable {
		t.Fatalf("unbuildable design at 8 cores: %+v", rows)
	}
	if base.AttackAccuracy < 0.95 || base.VictimEvictions == 0 {
		t.Errorf("baseline did not leak: %+v", base)
	}
	for _, r := range []ALTRow{wp, sec} {
		if r.VictimEvictions != 0 {
			t.Errorf("%s: attacker forced %d victim evictions", r.Design, r.VictimEvictions)
		}
		if r.AttackAccuracy > 0.6 {
			t.Errorf("%s: attack accuracy %v above chance", r.Design, r.AttackAccuracy)
		}
	}
	// The cost of way partitioning: more L2 misses and lower IPC than
	// SecDir on the same workload (the gap widens with per-set demand skew;
	// mix2's fairly uniform footprint keeps it moderate at quick lengths).
	if float64(wp.L2Misses) < 1.01*float64(sec.L2Misses) {
		t.Errorf("way partitioning misses (%d) not above SecDir (%d)", wp.L2Misses, sec.L2Misses)
	}
	if wp.IPC >= sec.IPC {
		t.Errorf("way partitioning IPC %v not below SecDir %v", wp.IPC, sec.IPC)
	}
}

// TestAlternativesUnbuildable: at 16 cores the way-partitioned design cannot
// exist (11 TD ways < 16 cores).
func TestAlternativesUnbuildable(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	o := QuickRunOpts()
	o.Cores = 16
	rows, err := Alternatives(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Design == "way-partitioned" && r.Buildable {
			t.Fatal("way partitioning claimed buildable at 16 cores")
		}
		if r.Design == "secdir" && !r.Buildable {
			t.Fatal("secdir unbuildable at 16 cores")
		}
	}
}
