package experiments

import "strconv"

// csvFloat renders a float the way every committed data/ CSV does
// (shortest-round-trip 'g' with 6 significant digits).
func csvFloat(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }

// CSVF5 returns the header and rows of the Figure 5 CSV exactly as committed
// in data/F5_vd_sizing.csv. F5 is fully analytic (no simulation), so the
// output is deterministic and cheap — the golden test regenerates it on every
// run.
func CSVF5() (head []string, rows [][]string) {
	head = []string{"cores", "wed6", "wed7", "wed8", "wed9", "wed10"}
	for _, r := range Fig5VDSizing() {
		row := []string{strconv.Itoa(r.Cores)}
		for wED := 6; wED <= 10; wED++ {
			row = append(row, csvFloat(r.Ratios[wED]))
		}
		rows = append(rows, row)
	}
	return head, rows
}

// CSVT7 returns the header and rows of the Table 7 CSV exactly as committed
// in data/T7_storage_area.csv. Like F5 it is analytic and deterministic.
func CSVT7(cores int) (head []string, rows [][]string) {
	head = []string{"design", "structure", "kb", "mm2"}
	for _, r := range Table7StorageArea(cores) {
		rows = append(rows, []string{r.Design, r.Structure, csvFloat(r.KB), csvFloat(r.MM2)})
	}
	return head, rows
}
