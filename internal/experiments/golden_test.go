package experiments

import (
	"bytes"
	"encoding/csv"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// update rewrites the golden CSVs under data/ instead of diffing against
// them: go test ./internal/experiments -run TestGolden -update
var update = flag.Bool("update", false, "rewrite the golden CSV files in data/")

// renderCSV produces the exact byte content of a data/ CSV file.
func renderCSV(t *testing.T, head []string, rows [][]string) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := csv.NewWriter(&buf)
	if err := w.Write(head); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteAll(rows); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	if err := w.Error(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// checkGolden regenerates one committed CSV and diffs it line by line, or
// rewrites it under -update.
func checkGolden(t *testing.T, name string, head []string, rows [][]string) {
	t.Helper()
	path := filepath.Join("..", "..", "data", name)
	got := renderCSV(t, head, rows)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create it): %v", err)
	}
	if bytes.Equal(got, want) {
		return
	}
	gl := strings.Split(strings.TrimRight(string(got), "\n"), "\n")
	wl := strings.Split(strings.TrimRight(string(want), "\n"), "\n")
	n := len(gl)
	if len(wl) > n {
		n = len(wl)
	}
	for i := 0; i < n; i++ {
		var g, w string
		if i < len(gl) {
			g = gl[i]
		}
		if i < len(wl) {
			w = wl[i]
		}
		if g != w {
			t.Errorf("%s line %d:\n  regenerated: %q\n  committed:   %q", name, i+1, g, w)
		}
	}
	t.Fatalf("%s diverges from the committed golden file (re-run with -update after an intentional model change)", name)
}

// TestGoldenF5 pins the Figure 5 VD-sizing model to the committed CSV: any
// change to the equal-storage arithmetic in internal/area shows up as a diff
// here before it silently shifts the paper's figures.
func TestGoldenF5(t *testing.T) {
	head, rows := CSVF5()
	checkGolden(t, "F5_vd_sizing.csv", head, rows)
}

// TestGoldenT7 pins the Table 7 storage/area model (CACTI fit) for the 8-core
// design point to the committed CSV.
func TestGoldenT7(t *testing.T) {
	head, rows := CSVT7(8)
	checkGolden(t, "T7_storage_area.csv", head, rows)
}
