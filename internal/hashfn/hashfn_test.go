package hashfn

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewSkewPanics(t *testing.T) {
	for _, bad := range []int{0, -4, 3, 1000} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSkew(%d) did not panic", bad)
				}
			}()
			NewSkew(bad)
		}()
	}
}

func TestRangeProperty(t *testing.T) {
	for _, sets := range []int{8, 512, 2048} {
		s := NewSkew(sets)
		if s.Sets() != sets {
			t.Fatalf("Sets() = %d, want %d", s.Sets(), sets)
		}
		f := func(line uint64) bool {
			h1, h2 := s.H1(line), s.H2(line)
			return h1 >= 0 && h1 < sets && h2 >= 0 && h2 < sets
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("sets=%d: %v", sets, err)
		}
	}
}

func TestHashDispatch(t *testing.T) {
	s := NewSkew(512)
	if s.Hash(0, 12345) != s.H1(12345) || s.Hash(1, 12345) != s.H2(12345) {
		t.Fatal("Hash(fn, x) does not dispatch to H1/H2")
	}
}

func TestDeterministic(t *testing.T) {
	s := NewSkew(512)
	for _, l := range []uint64{0, 1, 0xDEADBEEF, 1<<34 - 1} {
		if s.H1(l) != s.H1(l) || s.H2(l) != s.H2(l) {
			t.Fatalf("hash of %#x not deterministic", l)
		}
	}
}

// TestEqualDistribution checks the Seznec-Bodin property that the functions
// "distribute cache lines equally among sets" (§8).
func TestEqualDistribution(t *testing.T) {
	s := NewSkew(512)
	rng := rand.New(rand.NewSource(2))
	const n = 1 << 18
	c1 := make([]int, 512)
	c2 := make([]int, 512)
	for i := 0; i < n; i++ {
		l := uint64(rng.Int63n(1 << 34))
		c1[s.H1(l)]++
		c2[s.H2(l)]++
	}
	exp := n / 512
	for set := 0; set < 512; set++ {
		if c1[set] < exp/2 || c1[set] > exp*2 {
			t.Errorf("H1 set %d: %d (expected ≈%d)", set, c1[set], exp)
		}
		if c2[set] < exp/2 || c2[set] > exp*2 {
			t.Errorf("H2 set %d: %d (expected ≈%d)", set, c2[set], exp)
		}
	}
}

// TestInterBankDispersion checks the property cuckoo relocation relies on:
// lines that conflict under H1 must rarely conflict under H2 too.
func TestInterBankDispersion(t *testing.T) {
	s := NewSkew(512)
	rng := rand.New(rand.NewSource(3))
	// Collect lines hashing to one H1 set, then look at their H2 spread.
	const target = 137
	var group []uint64
	for len(group) < 64 {
		l := uint64(rng.Int63n(1 << 34))
		if s.H1(l) == target {
			group = append(group, l)
		}
	}
	h2sets := map[int]int{}
	for _, l := range group {
		h2sets[s.H2(l)]++
	}
	if len(h2sets) < len(group)/3 {
		t.Errorf("H1-conflicting lines land in only %d H2 sets (of %d lines)", len(h2sets), len(group))
	}
	for set, c := range h2sets {
		if c > 8 {
			t.Errorf("H2 set %d absorbs %d of the H1-conflict group", set, c)
		}
	}
}

// TestContiguousDispersion: consecutive lines (a streaming walk) must spread
// under both functions (the "local dispersion" property).
func TestContiguousDispersion(t *testing.T) {
	s := NewSkew(512)
	seen1 := map[int]bool{}
	seen2 := map[int]bool{}
	for i := uint64(0); i < 512; i++ {
		seen1[s.H1(0x5000+i)] = true
		seen2[s.H2(0x5000+i)] = true
	}
	if len(seen1) < 256 || len(seen2) < 256 {
		t.Errorf("contiguous walk covers only %d/%d of 512 sets", len(seen1), len(seen2))
	}
}
