package hashfn

import "testing"

func BenchmarkSkewPair(b *testing.B) {
	s := NewSkew(512)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += s.H1(uint64(i)) ^ s.H2(uint64(i))
	}
	_ = sink
}
