package hashfn

import "secdir/internal/rng"

// GFHash is the per-way index family of a SEED-style linearly-skewed
// directory (Constable & Unterluggauer, "Seeds of SEED"): way w of a
// 2^n-set table is indexed by the affine map over GF(2^n)
//
//	idx_w(A) = α_w · fold(A)  ⊕  β_w
//
// where fold XOR-folds the line address into an n-bit field element, α_w is
// a secret nonzero field multiplier and β_w a secret additive mask, both
// drawn from a seeded PRNG at construction. Multiplication by a nonzero
// element of GF(2^n) is a bijection, so each way's index is an invertible
// linear transform of the folded address — every way sees a different, full-
// rank scrambling of the set space, and without the (α, β) key material an
// attacker cannot compute which addresses co-index in any way, let alone in
// all of them at once.
//
// The per-way maps are precomputed into two 256-entry lookup tables (low and
// high folded byte), so an Index call is two loads and two XORs — no field
// arithmetic on the hot path.
type GFHash struct {
	n    int
	sets int
	poly uint32
	// alpha[w] / beta[w] are way w's multiplier and additive mask.
	alpha []uint32
	beta  []uint32
	// tabLo[w][b] = α_w · b and tabHi[w][b] = α_w · (b << 8), folded-byte
	// lookup tables; β_w is already mixed into tabLo.
	tabLo [][256]uint16
	tabHi [][256]uint16
}

// gfPolys[n] is an irreducible polynomial of degree n over GF(2) (bit n set),
// for every set-index width the simulator can meet (2..65536 sets). The unit
// tests verify irreducibility programmatically (Rabin's test), so a wrong
// entry cannot survive unnoticed.
var gfPolys = [17]uint32{
	0,       // n=0: degenerate single-set table, unused
	0x3,     // x + 1
	0x7,     // x^2 + x + 1
	0xB,     // x^3 + x + 1
	0x13,    // x^4 + x + 1
	0x25,    // x^5 + x^2 + 1
	0x43,    // x^6 + x + 1
	0x83,    // x^7 + x + 1
	0x11B,   // x^8 + x^4 + x^3 + x + 1
	0x211,   // x^9 + x^4 + 1
	0x409,   // x^10 + x^3 + 1
	0x805,   // x^11 + x^2 + 1
	0x1053,  // x^12 + x^6 + x^4 + x + 1
	0x201B,  // x^13 + x^4 + x^3 + x + 1
	0x4443,  // x^14 + x^10 + x^6 + x + 1
	0x8003,  // x^15 + x + 1
	0x1100B, // x^16 + x^12 + x^3 + x + 1
}

// NewGFHash returns the index family for a table with the given power-of-two
// set count and way count, keyed by seed.
func NewGFHash(sets, ways int, seed int64) *GFHash {
	if sets <= 0 || sets&(sets-1) != 0 {
		panic("hashfn: set count must be a positive power of two")
	}
	if sets > 1<<16 {
		panic("hashfn: GF hash supports at most 2^16 sets")
	}
	n := 0
	for 1<<n < sets {
		n++
	}
	g := &GFHash{
		n: n, sets: sets, poly: gfPolys[n],
		alpha: make([]uint32, ways),
		beta:  make([]uint32, ways),
		tabLo: make([][256]uint16, ways),
		tabHi: make([][256]uint16, ways),
	}
	r := rng.New(seed ^ 0x6F2A11)
	for w := 0; w < ways; w++ {
		if n > 0 {
			for g.alpha[w] == 0 {
				g.alpha[w] = uint32(r.Uint64()) & uint32(sets-1)
			}
			g.beta[w] = uint32(r.Uint64()) & uint32(sets-1)
		}
		for b := 0; b < 256; b++ {
			g.tabLo[w][b] = uint16(g.Mul(g.alpha[w], uint32(b)&uint32(sets-1))) ^ uint16(g.beta[w])
			g.tabHi[w][b] = uint16(g.Mul(g.alpha[w], (uint32(b)<<8)&uint32(sets-1)))
		}
	}
	return g
}

// Sets returns the set count the indices map into.
func (g *GFHash) Sets() int { return g.sets }

// Ways returns the number of per-way index functions.
func (g *GFHash) Ways() int { return len(g.alpha) }

// Bits returns the field width n (sets == 2^n).
func (g *GFHash) Bits() int { return g.n }

// Poly returns the reduction polynomial of the field.
func (g *GFHash) Poly() uint32 { return g.poly }

// Alpha returns way w's multiplier (tests only; this is the secret key).
func (g *GFHash) Alpha(w int) uint32 { return g.alpha[w] }

// Fold XOR-folds a 64-bit line address into an n-bit field element. Folding
// is linear over GF(2), so the composed map address → index stays linear.
func (g *GFHash) Fold(v uint64) uint32 {
	if g.n == 0 {
		return 0
	}
	mask := uint64(g.sets - 1)
	var acc uint64
	for v != 0 {
		acc ^= v & mask
		v >>= uint(g.n)
	}
	return uint32(acc)
}

// Mul multiplies two field elements modulo the reduction polynomial
// (russian-peasant carry-less multiplication; used at construction and by
// tests — Index never calls it).
func (g *GFHash) Mul(a, b uint32) uint32 {
	if g.n == 0 {
		return 0
	}
	var r uint32
	high := uint32(1) << uint(g.n-1)
	mask := uint32(g.sets - 1)
	for b != 0 {
		if b&1 != 0 {
			r ^= a
		}
		b >>= 1
		hi := a&high != 0
		a <<= 1
		if hi {
			a ^= g.poly
		}
		a &= mask
	}
	return r & mask
}

// Index returns way w's set index for the line: α_w·fold(line) ⊕ β_w, via
// the precomputed byte tables.
func (g *GFHash) Index(w int, line uint64) int {
	f := g.Fold(line)
	return int(g.tabLo[w][f&0xff] ^ g.tabHi[w][(f>>8)&0xff])
}
