package hashfn

import (
	"math/rand"
	"testing"
)

// polyDeg returns the degree of a GF(2) polynomial (-1 for 0).
func polyDeg(p uint64) int {
	d := -1
	for p != 0 {
		d++
		p >>= 1
	}
	return d
}

// polyMod reduces a modulo p over GF(2).
func polyMod(a, p uint64) uint64 {
	dp := polyDeg(p)
	for polyDeg(a) >= dp {
		a ^= p << uint(polyDeg(a)-dp)
	}
	return a
}

// polyMulMod multiplies two GF(2) polynomials modulo p.
func polyMulMod(a, b, p uint64) uint64 {
	var r uint64
	for b != 0 {
		if b&1 != 0 {
			r ^= a
		}
		b >>= 1
		a <<= 1
	}
	return polyMod(r, p)
}

// polyGCD is Euclid's algorithm over GF(2)[x].
func polyGCD(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, polyMod(a, b)
	}
	return a
}

// xPow2k returns x^(2^k) mod p by repeated squaring.
func xPow2k(k int, p uint64) uint64 {
	t := uint64(0b10) // x
	for i := 0; i < k; i++ {
		t = polyMulMod(t, t, p)
	}
	return t
}

// irreducible implements Rabin's irreducibility test for a degree-n
// polynomial over GF(2): x^(2^n) ≡ x (mod p), and for every prime divisor q
// of n, gcd(p, x^(2^(n/q)) − x) = 1.
func irreducible(p uint64, n int) bool {
	if polyDeg(p) != n {
		return false
	}
	if polyMod(xPow2k(n, p)^0b10, p) != 0 {
		return false
	}
	for q := 2; q <= n; q++ {
		if n%q != 0 || !isPrime(q) {
			continue
		}
		h := xPow2k(n/q, p) ^ 0b10
		if polyGCD(p, h) != 1 {
			return false
		}
	}
	return true
}

func isPrime(v int) bool {
	for d := 2; d*d <= v; d++ {
		if v%d == 0 {
			return false
		}
	}
	return v >= 2
}

// TestGFPolysIrreducible verifies every entry of the reduction-polynomial
// table with Rabin's test, so a bad constant cannot silently produce a
// non-field (and with it a non-invertible skew).
func TestGFPolysIrreducible(t *testing.T) {
	for n := 1; n <= 16; n++ {
		if !irreducible(uint64(gfPolys[n]), n) {
			t.Errorf("gfPolys[%d] = %#x is not irreducible", n, gfPolys[n])
		}
	}
}

// TestGFHashFullRank verifies each way's index map is invertible on the
// folded address space: the GF(2)-matrix whose columns are α_w·e_i has full
// rank n, for several table sizes.
func TestGFHashFullRank(t *testing.T) {
	for _, sets := range []int{2, 8, 64, 512, 2048, 1 << 16} {
		g := NewGFHash(sets, 8, 12345)
		n := g.Bits()
		for w := 0; w < g.Ways(); w++ {
			// Columns of the linear part (β only translates, never collapses).
			cols := make([]uint32, n)
			for i := 0; i < n; i++ {
				cols[i] = g.Mul(g.Alpha(w), 1<<uint(i))
			}
			// Gaussian elimination over GF(2).
			rank := 0
			for bit := 0; bit < n; bit++ {
				pivot := -1
				for j := rank; j < n; j++ {
					if cols[j]&(1<<uint(bit)) != 0 {
						pivot = j
						break
					}
				}
				if pivot < 0 {
					continue
				}
				cols[rank], cols[pivot] = cols[pivot], cols[rank]
				for j := 0; j < n; j++ {
					if j != rank && cols[j]&(1<<uint(bit)) != 0 {
						cols[j] ^= cols[rank]
					}
				}
				rank++
			}
			if rank != n {
				t.Errorf("sets=%d way %d: skew matrix rank %d, want %d (α=%#x)", sets, w, rank, n, g.Alpha(w))
			}
		}
	}
}

// TestGFHashTableMatchesField verifies the precomputed byte-table fast path
// against direct field arithmetic: Index(w, line) == α_w·fold(line) ⊕ β_w.
func TestGFHashTableMatchesField(t *testing.T) {
	g := NewGFHash(2048, 23, 7)
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 5000; i++ {
		line := r.Uint64() & (1<<34 - 1)
		w := r.Intn(g.Ways())
		want := int(g.Mul(g.Alpha(w), g.Fold(line)) ^ g.beta[w])
		if got := g.Index(w, line); got != want {
			t.Fatalf("Index(%d, %#x) = %d, field arithmetic gives %d", w, line, got, want)
		}
	}
}

// TestGFHashUniform bounds a chi-squared statistic on each way's set
// distribution under a fixed seed: random lines must spread evenly. With 256
// sets (df = 255) the 99.9th percentile is ≈ 330; the generous bound of 400
// only trips on a genuinely skewed map.
func TestGFHashUniform(t *testing.T) {
	const sets, ways, samples = 256, 4, 1 << 16
	g := NewGFHash(sets, ways, 99)
	r := rand.New(rand.NewSource(4242))
	counts := make([][]int, ways)
	for w := range counts {
		counts[w] = make([]int, sets)
	}
	for i := 0; i < samples; i++ {
		line := r.Uint64() & (1<<34 - 1)
		for w := 0; w < ways; w++ {
			counts[w][g.Index(w, line)]++
		}
	}
	exp := float64(samples) / float64(sets)
	for w := 0; w < ways; w++ {
		chi2 := 0.0
		for _, c := range counts[w] {
			d := float64(c) - exp
			chi2 += d * d / exp
		}
		if chi2 > 400 {
			t.Errorf("way %d: chi-squared %.1f over %d sets (df=%d), want < 400", w, chi2, sets, sets-1)
		}
	}
}

// TestGFHashDeterministic: same seed, same family; different seed, a
// different one.
func TestGFHashDeterministic(t *testing.T) {
	a := NewGFHash(2048, 23, 5)
	b := NewGFHash(2048, 23, 5)
	c := NewGFHash(2048, 23, 6)
	differs := false
	for i := uint64(0); i < 4096; i++ {
		for w := 0; w < a.Ways(); w++ {
			if a.Index(w, i) != b.Index(w, i) {
				t.Fatalf("same-seed families diverge at way %d line %#x", w, i)
			}
			if a.Index(w, i) != c.Index(w, i) {
				differs = true
			}
		}
	}
	if !differs {
		t.Error("seed 5 and seed 6 produced identical index families")
	}
}

// FuzzGFHash checks the structural invariants on arbitrary line pairs:
// indices stay in range, and because each way's map is an invertible affine
// transform of the folded address, two lines co-index in a way exactly when
// their folds collide.
func FuzzGFHash(f *testing.F) {
	f.Add(uint64(0), uint64(1), uint8(0))
	f.Add(uint64(0x123456789a), uint64(0x123456789a), uint8(3))
	f.Add(uint64(1)<<33, uint64(1), uint8(200))
	g := NewGFHash(2048, 8, 31337)
	f.Fuzz(func(t *testing.T, a, b uint64, wsel uint8) {
		w := int(wsel) % g.Ways()
		ia, ib := g.Index(w, a), g.Index(w, b)
		if ia < 0 || ia >= g.Sets() || ib < 0 || ib >= g.Sets() {
			t.Fatalf("index out of range: %d / %d (sets=%d)", ia, ib, g.Sets())
		}
		if (g.Fold(a) == g.Fold(b)) != (ia == ib) {
			t.Fatalf("affine map not injective on folds: fold %#x/%#x, idx %d/%d",
				g.Fold(a), g.Fold(b), ia, ib)
		}
	})
}
