// Package hashfn implements the skewing hash functions of Seznec and Bodin
// ("Skewed-Associative Caches", PARLE 1993) that the SecDir paper uses as the
// cuckoo functions h1 and h2 of a Victim Directory bank (§8).
//
// The functions are built from the linear shuffle σ: a one-bit circular shift
// with an XOR feedback tap. For an address split into n-bit chunks
// A1 (lowest), A2, A3..., the two skewing functions are
//
//	h1(A) = σ(A1) ⊕ A2 ⊕ fold(A3...)
//	h2(A) = A1 ⊕ σ(A2) ⊕ fold'(A3...)
//
// They distribute lines equally among sets and have the inter-bank dispersion
// property: two addresses that conflict under h1 are unlikely to conflict
// under h2, which is exactly what the cuckoo relocation relies on.
package hashfn

// Skew computes skewing hash functions over a set-index space of 2^bits sets.
type Skew struct {
	bits int
	mask uint64
}

// NewSkew returns a Skew for a table with the given power-of-two set count.
func NewSkew(sets int) Skew {
	if sets <= 0 || sets&(sets-1) != 0 {
		panic("hashfn: set count must be a positive power of two")
	}
	bits := 0
	for 1<<bits < sets {
		bits++
	}
	return Skew{bits: bits, mask: uint64(sets - 1)}
}

// Sets returns the number of sets the hash functions map into.
func (s Skew) Sets() int { return int(s.mask) + 1 }

// sigma is the one-bit circular shift with XOR feedback used by skewed
// associative caches: bit i of the result is bit i-1 of the input, and bit 0
// is the old high bit XORed with the middle bit (the feedback tap).
func (s Skew) sigma(x uint64) uint64 {
	high := (x >> (s.bits - 1)) & 1
	tap := (x >> (s.bits / 2)) & 1
	return ((x << 1) | (high ^ tap)) & s.mask
}

// chunk extracts the i-th n-bit chunk of v.
func (s Skew) chunk(v uint64, i int) uint64 {
	return (v >> (uint(i) * uint(s.bits))) & s.mask
}

// fold XOR-folds all chunks of v above the second into a single chunk,
// rotating each successive chunk by one position so that high address bits
// perturb different index bits.
func (s Skew) fold(v uint64, start int) uint64 {
	var acc uint64
	rot := 0
	for i := start; uint(i)*uint(s.bits) < 64; i++ {
		c := s.chunk(v, i)
		if c == 0 && v>>(uint(i)*uint(s.bits)) == 0 {
			break
		}
		acc ^= ((c << uint(rot)) | (c >> (uint(s.bits) - uint(rot)))) & s.mask
		rot = (rot + 1) % s.bits
	}
	return acc & s.mask
}

// H1 is the first skewing function.
func (s Skew) H1(line uint64) int {
	if s.bits == 0 {
		return 0 // degenerate single-set table
	}
	a1 := s.chunk(line, 0)
	a2 := s.chunk(line, 1)
	return int((s.sigma(a1) ^ a2 ^ s.fold(line, 2)) & s.mask)
}

// H2 is the second skewing function.
func (s Skew) H2(line uint64) int {
	if s.bits == 0 {
		return 0 // degenerate single-set table
	}
	a1 := s.chunk(line, 0)
	a2 := s.chunk(line, 1)
	return int((a1 ^ s.sigma(s.sigma(a2)) ^ s.fold(line, 3)) & s.mask)
}

// Hash returns H1 when fn == 0 and H2 when fn == 1. It is the form used by
// the cuckoo table, which records per entry which function placed it
// (the Cuckoo bit of Table 3).
func (s Skew) Hash(fn int, line uint64) int {
	if fn == 0 {
		return s.H1(line)
	}
	return s.H2(line)
}
