package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"testing"
	"time"
)

// Schema identifies the BENCH_*.json format version.
const Schema = "secdir-bench/v1"

// MicroResult is one microbenchmark's measurement.
type MicroResult struct {
	// Name matches the Case name ("EngineMixed", ...).
	Name string `json:"name"`
	// NsPerOp is wall-clock nanoseconds per operation.
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp is heap allocations per operation.
	AllocsPerOp int64 `json:"allocs_per_op"`
	// BytesPerOp is heap bytes allocated per operation.
	BytesPerOp int64 `json:"bytes_per_op"`
}

// Report is the machine-readable benchmark artifact (BENCH_<date>.json).
type Report struct {
	// Schema is always the Schema constant.
	Schema string `json:"schema"`
	// Date of the run, YYYY-MM-DD.
	Date string `json:"date"`
	// GoVersion, GOOS and GOARCH describe the toolchain and platform.
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// Micro holds the microbenchmark results.
	Micro []MicroResult `json:"micro"`
	// Workloads holds the bounded experiment workload timings.
	Workloads []WorkloadResult `json:"workloads"`
	// Sharded holds the sharded-vs-serial engine comparisons (absent in
	// reports predating the window scheduler).
	Sharded []ShardedResult `json:"sharded,omitempty"`
}

// Collect runs every microbenchmark via testing.Benchmark plus the bounded
// workloads and assembles a Report stamped with the current date and
// toolchain.
func Collect() (*Report, error) {
	r := &Report{
		Schema:    Schema,
		Date:      time.Now().UTC().Format("2006-01-02"),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	for _, c := range MicroCases() {
		res := testing.Benchmark(c.Bench)
		r.Micro = append(r.Micro, MicroResult{
			Name:        c.Name,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
		})
	}
	wl, err := RunWorkloads()
	if err != nil {
		return nil, err
	}
	r.Workloads = wl
	sh, err := RunSharded()
	if err != nil {
		return nil, err
	}
	r.Sharded = sh
	return r, nil
}

// WriteFile writes the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Load reads a report and validates its schema.
func Load(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	if r.Schema != Schema {
		return nil, fmt.Errorf("bench: %s: schema %q, want %q", path, r.Schema, Schema)
	}
	return &r, nil
}

// FindBaseline returns the lexically newest BENCH_*.json in dir (the naming
// scheme embeds the date, so lexical order is chronological), or an error if
// none exists.
func FindBaseline(dir string) (string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", err
	}
	if len(matches) == 0 {
		return "", fmt.Errorf("bench: no BENCH_*.json baseline in %s", dir)
	}
	sort.Strings(matches)
	return matches[len(matches)-1], nil
}

// Delta is one compared metric.
type Delta struct {
	// Name is "<benchmark or workload>/<metric>".
	Name string
	// Base and Cur are the baseline and current values.
	Base, Cur float64
	// Ratio is Cur/Base (1.0 = unchanged; +Inf when Base == 0 and Cur > 0).
	Ratio float64
	// Regressed reports whether Cur exceeds the tolerance over Base.
	Regressed bool
}

// String formats the delta for the text report.
func (d Delta) String() string {
	mark := "  "
	if d.Regressed {
		mark = "!!"
	}
	return fmt.Sprintf("%s %-40s %12.2f -> %12.2f  (%+.1f%%)", mark, d.Name, d.Base, d.Cur, (d.Ratio-1)*100)
}

// Compare evaluates cur against base with a relative tolerance (0.10 = 10%).
// Time metrics (ns/op, ns/access) regress when cur > base*(1+tol). The
// allocs/op metric is held to the hot-path invariant instead: any increase
// over the baseline count is a regression, and a zero baseline admits no
// allocations at all. Metrics present on only one side are skipped — a
// renamed benchmark should not fail the comparison.
func Compare(base, cur *Report, tol float64) []Delta {
	var out []Delta
	baseMicro := map[string]MicroResult{}
	for _, m := range base.Micro {
		baseMicro[m.Name] = m
	}
	for _, m := range cur.Micro {
		b, ok := baseMicro[m.Name]
		if !ok {
			continue
		}
		out = append(out,
			delta(m.Name+"/ns-op", b.NsPerOp, m.NsPerOp, func(bv, cv float64) bool {
				return cv > bv*(1+tol)
			}),
			delta(m.Name+"/allocs-op", float64(b.AllocsPerOp), float64(m.AllocsPerOp), func(bv, cv float64) bool {
				return cv > bv
			}),
		)
	}
	baseWL := map[string]WorkloadResult{}
	for _, w := range base.Workloads {
		baseWL[w.Name] = w
	}
	for _, w := range cur.Workloads {
		b, ok := baseWL[w.Name]
		if !ok {
			continue
		}
		out = append(out, delta(w.Name+"/ns-access", b.NsPerAccess, w.NsPerAccess, func(bv, cv float64) bool {
			return cv > bv*(1+tol)
		}))
	}
	baseSh := map[string]ShardedResult{}
	for _, s := range base.Sharded {
		baseSh[s.Name] = s
	}
	for _, s := range cur.Sharded {
		b, ok := baseSh[s.Name]
		if !ok {
			continue
		}
		out = append(out,
			delta(s.Name+"/serial-ns", b.SerialNs, s.SerialNs, func(bv, cv float64) bool {
				return cv > bv*(1+tol)
			}),
			delta(s.Name+"/sharded-ns", b.ShardedNs, s.ShardedNs, func(bv, cv float64) bool {
				return cv > bv*(1+tol)
			}),
			// Speedup is a higher-is-better ratio: regression means losing
			// more than tol of the baseline's speedup.
			delta(s.Name+"/speedup", b.Speedup, s.Speedup, func(bv, cv float64) bool {
				return cv < bv*(1-tol)
			}),
		)
	}
	return out
}

// delta builds one Delta with the given regression predicate.
func delta(name string, base, cur float64, regressed func(base, cur float64) bool) Delta {
	d := Delta{Name: name, Base: base, Cur: cur, Regressed: regressed(base, cur)}
	switch {
	case base != 0:
		d.Ratio = cur / base
	case cur == 0:
		d.Ratio = 1
	default:
		d.Ratio = cur / base // +Inf, flagged by the predicate where it matters
	}
	return d
}

// Regressions filters a comparison down to the regressed deltas.
func Regressions(deltas []Delta) []Delta {
	var out []Delta
	for _, d := range deltas {
		if d.Regressed {
			out = append(out, d)
		}
	}
	return out
}
