package bench

import (
	"reflect"
	"testing"
	"time"

	"secdir/internal/config"
	"secdir/internal/sim"
	"secdir/internal/trace"
)

// TestShardedVsSerialSmoke is the bench-smoke half of the sharded-engine
// contract: the specmix workload on the SecDir machine, run once on the
// serial engine and once with the directory slices sharded over 4
// goroutines, must produce a bit-identical simulation Result; the measured
// ns/access of both runs is logged so CI output shows the current overhead
// of the mailbox round trips. The ratio is asserted only loosely — shard
// RPC costs vary wildly across runners — but an order-of-magnitude blowup
// fails, as would any result divergence.
func TestShardedVsSerialSmoke(t *testing.T) {
	const warmup, measure = 5_000, 15_000
	cfg := config.SecDirConfig(8)
	run := func(shards int) (sim.Result, float64) {
		work, err := trace.NewSpecMix(2, cfg.Cores, 1)
		if err != nil {
			t.Fatal(err)
		}
		r, err := sim.New(sim.Options{
			Config:          cfg,
			Work:            work,
			WarmupAccesses:  warmup,
			MeasureAccesses: measure,
			EngineShards:    shards,
		})
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		res := r.Run()
		elapsed := time.Since(start)
		r.Close()
		if err := work.Close(); err != nil {
			t.Fatal(err)
		}
		return res, float64(elapsed.Nanoseconds()) / float64(cfg.Cores*(warmup+measure))
	}

	serialRes, serialNs := run(0)
	shardedRes, shardedNs := run(4)
	t.Logf("serial %.1f ns/access, sharded(4) %.1f ns/access (%.2fx)",
		serialNs, shardedNs, shardedNs/serialNs)
	if !reflect.DeepEqual(serialRes, shardedRes) {
		t.Fatalf("sharded result diverged from serial:\nserial  %+v\nsharded %+v", serialRes, shardedRes)
	}
	if shardedNs > 50*serialNs {
		t.Fatalf("sharded engine %.1f ns/access vs serial %.1f — mailbox overhead blew past 50x", shardedNs, serialNs)
	}
}
