package bench

import (
	"testing"
)

// TestShardedVsSerialSmoke is the bench-smoke half of the sharded-engine
// contract, now routed through the same probe the BENCH_*.json artifact
// records: the specmix workload on the SecDir machine, run on the serial
// engine and on the 4-shard window-8 engine, must produce a bit-identical
// simulation Result (runShardedWith fails internally otherwise); the measured
// ns/access, speedup and window occupancy are logged so CI output shows the
// current state of the mailbox overhead. The timing assertions stay loose —
// shard RPC costs vary wildly across runners — but an order-of-magnitude
// blowup fails, as would a window scheduler that never forms a multi-access
// window on this workload.
func TestShardedVsSerialSmoke(t *testing.T) {
	res, err := runShardedWith(5_000, 15_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("got %d sharded results, want 2", len(res))
	}
	for _, s := range res {
		t.Logf("%s: serial %.1f ns/access, sharded(%d,window %d) %.1f ns/access (%.2fx), occupancy %.2f over %d txns",
			s.Name, s.SerialNs, s.Shards, s.Window, s.ShardedNs, s.Speedup, s.WindowOccupancy, s.WindowTxns)
		if s.ShardedNs > 50*s.SerialNs {
			t.Fatalf("%s: sharded engine %.1f ns/access vs serial %.1f — mailbox overhead blew past 50x",
				s.Name, s.ShardedNs, s.SerialNs)
		}
		if s.WindowOccupancy < 1 {
			t.Fatalf("%s: window occupancy %.2f < 1 — the scheduler never committed a window", s.Name, s.WindowOccupancy)
		}
		if s.WindowTxns == 0 {
			t.Fatalf("%s: no window transactions dispatched — batch path never engaged", s.Name)
		}
	}
	// The direct-batch probe is where the scheduler has real batches to chew
	// on; its occupancy must clear the simulator's ~1.0 interleave ceiling.
	// The measured value (~1.4) is pinned down by the victim condition: a
	// 16-way L2 set holds residents homed at nearly every slice, so the first
	// miss's victim scan blocks most follow-on slices (see DESIGN.md §14).
	if b := res[1]; b.WindowOccupancy < 1.2 {
		t.Fatalf("%s: occupancy %.2f — windows are not forming on direct batches", b.Name, b.WindowOccupancy)
	}
}
