package bench

import (
	"fmt"
	"math"
	"path/filepath"
	"testing"

	"secdir/internal/cachesim"
	"secdir/internal/coherence"
	"secdir/internal/config"
	"secdir/internal/trace"
)

// BenchmarkAccess wraps the harness's baseline-engine microbenchmark.
func BenchmarkAccess(b *testing.B) { Access(b) }

// BenchmarkSecDirLookup wraps the harness's slice-lookup microbenchmark.
func BenchmarkSecDirLookup(b *testing.B) { SecDirLookup(b) }

// BenchmarkCuckooInsert wraps the harness's VD-insert microbenchmark.
func BenchmarkCuckooInsert(b *testing.B) { CuckooInsert(b) }

// BenchmarkCachePolicies runs the per-policy probe+fill microbenchmark for
// every replacement policy the cache supports.
func BenchmarkCachePolicies(b *testing.B) {
	for _, p := range []cachesim.Policy{cachesim.LRU, cachesim.Random, cachesim.SRRIP, cachesim.PLRU} {
		b.Run(p.String(), CachePolicy(p))
	}
}

// BenchmarkEngineMixed wraps the harness's SecDir-engine microbenchmark. The
// acceptance invariant — 0 allocs/op in steady state — is asserted by
// TestEngineMixedAllocFree so it fails fast in `go test` runs too.
func BenchmarkEngineMixed(b *testing.B) { EngineMixed(b) }

// BenchmarkDefenses runs the steady-state access path of every rival defense
// of the cross-defense leaderboard.
func BenchmarkDefenses(b *testing.B) {
	for _, d := range DefenseConfigs() {
		b.Run(d.Name, Defense(d.Config))
	}
}

// TestEngineMixedAllocFree pins the allocation-free hot-path invariant: after
// warmup, Engine.Access performs zero heap allocations per access on every
// design the leaderboard races.
func TestEngineMixedAllocFree(t *testing.T) {
	cases := []struct {
		name string
		cfg  config.Config
	}{
		{"skylake", config.SkylakeX(8)},
		{"secdir", config.SecDirConfig(8)},
	}
	for _, d := range DefenseConfigs() {
		cases = append(cases, struct {
			name string
			cfg  config.Config
		}{d.Name, d.Config})
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e, err := coherence.NewEngine(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			gen := trace.NewUniform(1<<24, 64<<10, 0.25, 0, 7)
			for i := 0; i < warmupAccesses; i++ {
				a := gen.Next()
				e.Access(i&7, a.Line, a.Write)
			}
			i := 0
			avg := testing.AllocsPerRun(5000, func() {
				a := gen.Next()
				e.Access(i&7, a.Line, a.Write)
				i++
			})
			if avg != 0 {
				t.Fatalf("steady-state Access allocates %.3f allocs/op, want 0", avg)
			}
		})
	}
}

// TestCompareSelf: a report compared against itself has no regressions — the
// invariant the CI bench job relies on for a freshly refreshed baseline.
func TestCompareSelf(t *testing.T) {
	r := &Report{
		Schema: Schema,
		Micro: []MicroResult{
			{Name: "EngineMixed", NsPerOp: 120, AllocsPerOp: 0, BytesPerOp: 0},
			{Name: "CuckooInsert", NsPerOp: 45.5, AllocsPerOp: 0},
		},
		Workloads: []WorkloadResult{{Name: "specmix2/secdir", NsPerAccess: 180}},
	}
	if reg := Regressions(Compare(r, r, 0.10)); len(reg) != 0 {
		t.Fatalf("self-comparison regressed: %v", reg)
	}
}

// TestCompareRegressions exercises the tolerance rules: time regressions past
// the tolerance fire, within-tolerance drift does not, and any allocation on
// a zero-alloc baseline fires regardless of tolerance.
func TestCompareRegressions(t *testing.T) {
	base := &Report{
		Schema: Schema,
		Micro: []MicroResult{
			{Name: "EngineMixed", NsPerOp: 100, AllocsPerOp: 0},
			{Name: "Access", NsPerOp: 100, AllocsPerOp: 4},
		},
		Workloads: []WorkloadResult{{Name: "wl", NsPerAccess: 100}},
	}
	cur := &Report{
		Schema: Schema,
		Micro: []MicroResult{
			{Name: "EngineMixed", NsPerOp: 108, AllocsPerOp: 1}, // ns within 10%, allocs 0->1
			{Name: "Access", NsPerOp: 125, AllocsPerOp: 3},      // ns +25%, allocs improved
		},
		Workloads: []WorkloadResult{{Name: "wl", NsPerAccess: 150}},
	}
	reg := Regressions(Compare(base, cur, 0.10))
	want := map[string]bool{
		"EngineMixed/allocs-op": true,
		"Access/ns-op":          true,
		"wl/ns-access":          true,
	}
	if len(reg) != len(want) {
		t.Fatalf("got %d regressions %v, want %d", len(reg), reg, len(want))
	}
	for _, d := range reg {
		if !want[d.Name] {
			t.Errorf("unexpected regression %v", d)
		}
		if math.IsNaN(d.Ratio) {
			t.Errorf("%s: NaN ratio", d.Name)
		}
	}
}

// TestReportRoundTrip: WriteFile/Load preserve the report, and FindBaseline
// picks the newest date.
func TestReportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	old := &Report{Schema: Schema, Date: "2026-01-01", Micro: []MicroResult{{Name: "A", NsPerOp: 1}}}
	cur := &Report{
		Schema: Schema, Date: "2026-02-02", GoVersion: "go0.0", GOOS: "linux", GOARCH: "amd64",
		Micro:     []MicroResult{{Name: "A", NsPerOp: 2, AllocsPerOp: 3, BytesPerOp: 4}},
		Workloads: []WorkloadResult{{Name: "w", Accesses: 10, NsPerAccess: 5, MAccessesPerSec: 200}},
	}
	if err := old.WriteFile(filepath.Join(dir, "BENCH_2026-01-01.json")); err != nil {
		t.Fatal(err)
	}
	if err := cur.WriteFile(filepath.Join(dir, "BENCH_2026-02-02.json")); err != nil {
		t.Fatal(err)
	}
	path, err := FindBaseline(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "BENCH_2026-02-02.json" {
		t.Fatalf("FindBaseline = %s, want the newest report", path)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Date != cur.Date || len(got.Micro) != 1 || got.Micro[0] != cur.Micro[0] ||
		len(got.Workloads) != 1 || got.Workloads[0] != cur.Workloads[0] {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if _, err := FindBaseline(t.TempDir()); err == nil {
		t.Fatal("FindBaseline on an empty dir should fail")
	}
}

// TestRunWorkloadContract checks the generic workload runner: best-of-reps
// timing over the closure's own access count, and error propagation.
func TestRunWorkloadContract(t *testing.T) {
	calls := 0
	res, err := runWorkload(workload{name: "synthetic", run: func() (uint64, error) {
		calls++
		return 1000, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	if calls != workloadReps {
		t.Errorf("run called %d times, want %d", calls, workloadReps)
	}
	if res.Name != "synthetic" || res.Accesses != 1000 || res.NsPerAccess < 0 {
		t.Errorf("unexpected result %+v", res)
	}
	if _, err := runWorkload(workload{name: "failing", run: func() (uint64, error) {
		return 0, fmt.Errorf("boom")
	}}); err == nil {
		t.Error("runWorkload swallowed the workload error")
	}
}

// TestLeakageTrialsWorkload runs the leakage-trials bench row once end to
// end: it must complete and report the trials' simulated access volume.
func TestLeakageTrialsWorkload(t *testing.T) {
	n, err := leakageTrials()
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("leakage-trials reported zero simulated accesses")
	}
}
