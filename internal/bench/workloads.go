package bench

import (
	"fmt"
	"io"
	"os"
	"time"

	"secdir/internal/addr"
	"secdir/internal/config"
	"secdir/internal/sim"
	"secdir/internal/trace"
)

// WorkloadResult is the wall-clock throughput of one bounded experiment
// workload: the simulator's own speed, not the simulated machine's.
type WorkloadResult struct {
	// Name identifies the workload/design pair.
	Name string `json:"name"`
	// Accesses simulated across all cores (warmup + measured).
	Accesses uint64 `json:"accesses"`
	// NsPerAccess is wall-clock nanoseconds per simulated access.
	NsPerAccess float64 `json:"ns_per_access"`
	// MAccessesPerSec is the aggregate rate in millions of accesses/second.
	MAccessesPerSec float64 `json:"maccesses_per_sec"`
}

// workload pairs a name with a runnable simulation.
type workload struct {
	name  string
	cfg   config.Config
	build func(cores int) (trace.Workload, error)
}

// workloads returns the bounded experiment workloads the harness times. They
// mirror the paper's evaluation inputs (SPEC mixes, PARSEC apps) at lengths
// short enough for CI.
func workloads() []workload {
	specMix := func(cores int) (trace.Workload, error) { return trace.NewSpecMix(2, cores, 1) }
	parsec := func(cores int) (trace.Workload, error) { return trace.NewParsecWorkload("x264", cores, 1) }
	return []workload{
		{name: "specmix2/skylake", cfg: config.SkylakeX(8), build: specMix},
		{name: "specmix2/secdir", cfg: config.SecDirConfig(8), build: specMix},
		{name: "parsec-x264/secdir", cfg: config.SecDirConfig(8), build: parsec},
		{name: "tracefile-replay/secdir", cfg: config.SecDirConfig(8), build: traceReplay},
	}
}

// traceReplay records a SPEC application stream to a temporary SDTR file and
// builds a workload that replays it on core 0 through the pipelined
// TraceStream reader — timing the full trace path (file decode pipeline +
// simulation), not just the engine. The file is unlinked immediately; the
// open descriptor keeps it readable and Workload.Close releases it.
func traceReplay(cores int) (trace.Workload, error) {
	g, err := trace.NewSpecApp("bzip2", 0, 11)
	if err != nil {
		return trace.Workload{}, err
	}
	f, err := os.CreateTemp("", "secdir-bench-*.sdtr")
	if err != nil {
		return trace.Workload{}, err
	}
	os.Remove(f.Name())
	// Core 0 consumes warmup+measure accesses: one full pass, no looping.
	if err := trace.WriteTrace(f, g, workloadWarmup+workloadMeasure); err != nil {
		f.Close()
		return trace.Workload{}, err
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		f.Close()
		return trace.Workload{}, err
	}
	ts, err := trace.OpenTraceStream(f)
	if err != nil {
		f.Close()
		return trace.Workload{}, err
	}
	gens := make([]trace.Generator, cores)
	gens[0] = &closingReplay{TraceStream: ts, f: f}
	for c := 1; c < cores; c++ {
		gens[c] = trace.NewIdle(addr.Line(uint64(c+1) << 30))
	}
	return trace.Workload{Name: "tracefile-replay", Gens: gens}, nil
}

// closingReplay ties the stream's lifetime to its backing file.
type closingReplay struct {
	*trace.TraceStream
	f *os.File
}

// Close implements the closer contract trace.Workload.Close looks for.
func (r *closingReplay) Close() error {
	err := r.TraceStream.Close()
	if cerr := r.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// workload phase lengths (per core).
const (
	workloadWarmup  = 20_000
	workloadMeasure = 60_000
)

// workloadReps is how many times each workload is run; the fastest run is
// reported. Minimum-of-N is the standard way to reject scheduler and
// frequency noise when timing a deterministic computation.
const workloadReps = 3

// RunWorkloads times every bounded workload and returns the results in a
// stable order.
func RunWorkloads() ([]WorkloadResult, error) {
	out := make([]WorkloadResult, 0, len(workloads()))
	for _, w := range workloads() {
		res, err := runWorkload(w)
		if err != nil {
			return nil, fmt.Errorf("bench: workload %s: %w", w.name, err)
		}
		out = append(out, res)
	}
	return out, nil
}

// runWorkload runs one workload workloadReps times and measures wall-clock
// ns per simulated access of the fastest run (warmup included — both phases
// exercise the same hot path). Each repetition rebuilds the workload and the
// machine, so every run simulates the identical access stream.
func runWorkload(w workload) (WorkloadResult, error) {
	var best time.Duration
	for rep := 0; rep < workloadReps; rep++ {
		work, err := w.build(w.cfg.Cores)
		if err != nil {
			return WorkloadResult{}, err
		}
		r, err := sim.New(sim.Options{
			Config:          w.cfg,
			Work:            work,
			WarmupAccesses:  workloadWarmup,
			MeasureAccesses: workloadMeasure,
		})
		if err != nil {
			return WorkloadResult{}, err
		}
		start := time.Now()
		r.Run()
		elapsed := time.Since(start)
		if err := work.Close(); err != nil {
			return WorkloadResult{}, err
		}
		if rep == 0 || elapsed < best {
			best = elapsed
		}
	}
	accesses := uint64(w.cfg.Cores) * (workloadWarmup + workloadMeasure)
	ns := float64(best.Nanoseconds()) / float64(accesses)
	return WorkloadResult{
		Name:            w.name,
		Accesses:        accesses,
		NsPerAccess:     ns,
		MAccessesPerSec: 1e3 / ns,
	}, nil
}
