package bench

import (
	"fmt"
	"time"

	"secdir/internal/config"
	"secdir/internal/sim"
	"secdir/internal/trace"
)

// WorkloadResult is the wall-clock throughput of one bounded experiment
// workload: the simulator's own speed, not the simulated machine's.
type WorkloadResult struct {
	// Name identifies the workload/design pair.
	Name string `json:"name"`
	// Accesses simulated across all cores (warmup + measured).
	Accesses uint64 `json:"accesses"`
	// NsPerAccess is wall-clock nanoseconds per simulated access.
	NsPerAccess float64 `json:"ns_per_access"`
	// MAccessesPerSec is the aggregate rate in millions of accesses/second.
	MAccessesPerSec float64 `json:"maccesses_per_sec"`
}

// workload pairs a name with a runnable simulation.
type workload struct {
	name  string
	cfg   config.Config
	build func(cores int) (trace.Workload, error)
}

// workloads returns the bounded experiment workloads the harness times. They
// mirror the paper's evaluation inputs (SPEC mixes, PARSEC apps) at lengths
// short enough for CI.
func workloads() []workload {
	specMix := func(cores int) (trace.Workload, error) { return trace.NewSpecMix(2, cores, 1) }
	parsec := func(cores int) (trace.Workload, error) { return trace.NewParsecWorkload("x264", cores, 1) }
	return []workload{
		{name: "specmix2/skylake", cfg: config.SkylakeX(8), build: specMix},
		{name: "specmix2/secdir", cfg: config.SecDirConfig(8), build: specMix},
		{name: "parsec-x264/secdir", cfg: config.SecDirConfig(8), build: parsec},
	}
}

// workload phase lengths (per core).
const (
	workloadWarmup  = 20_000
	workloadMeasure = 60_000
)

// RunWorkloads times every bounded workload and returns the results in a
// stable order.
func RunWorkloads() ([]WorkloadResult, error) {
	out := make([]WorkloadResult, 0, len(workloads()))
	for _, w := range workloads() {
		res, err := runWorkload(w)
		if err != nil {
			return nil, fmt.Errorf("bench: workload %s: %w", w.name, err)
		}
		out = append(out, res)
	}
	return out, nil
}

// runWorkload runs one workload and measures wall-clock ns per simulated
// access over the whole run (warmup included — both phases exercise the same
// hot path).
func runWorkload(w workload) (WorkloadResult, error) {
	work, err := w.build(w.cfg.Cores)
	if err != nil {
		return WorkloadResult{}, err
	}
	r, err := sim.New(sim.Options{
		Config:          w.cfg,
		Work:            work,
		WarmupAccesses:  workloadWarmup,
		MeasureAccesses: workloadMeasure,
	})
	if err != nil {
		return WorkloadResult{}, err
	}
	start := time.Now()
	r.Run()
	elapsed := time.Since(start)
	accesses := uint64(w.cfg.Cores) * (workloadWarmup + workloadMeasure)
	ns := float64(elapsed.Nanoseconds()) / float64(accesses)
	return WorkloadResult{
		Name:            w.name,
		Accesses:        accesses,
		NsPerAccess:     ns,
		MAccessesPerSec: 1e3 / ns,
	}, nil
}
