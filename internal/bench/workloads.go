package bench

import (
	"context"
	"fmt"
	"os"
	"time"

	"secdir/internal/addr"
	"secdir/internal/config"
	"secdir/internal/leakage"
	"secdir/internal/sim"
	"secdir/internal/trace"
)

// WorkloadResult is the wall-clock throughput of one bounded experiment
// workload: the simulator's own speed, not the simulated machine's.
type WorkloadResult struct {
	// Name identifies the workload/design pair.
	Name string `json:"name"`
	// Accesses simulated across all cores (warmup + measured).
	Accesses uint64 `json:"accesses"`
	// NsPerAccess is wall-clock nanoseconds per simulated access.
	NsPerAccess float64 `json:"ns_per_access"`
	// MAccessesPerSec is the aggregate rate in millions of accesses/second.
	MAccessesPerSec float64 `json:"maccesses_per_sec"`
}

// workload pairs a name with a runnable measurement: run executes one full
// repetition and returns how many simulated accesses it performed, so ns per
// access stays meaningful across simulation replays and Monte-Carlo trials.
type workload struct {
	name string
	run  func() (accesses uint64, err error)
}

// workloads returns the bounded experiment workloads the harness times. They
// mirror the paper's evaluation inputs (SPEC mixes, PARSEC apps, leakage
// trials) at lengths short enough for CI.
func workloads() []workload {
	specMix := func(cores int) (trace.Workload, error) { return trace.NewSpecMix(2, cores, 1) }
	parsec := func(cores int) (trace.Workload, error) { return trace.NewParsecWorkload("x264", cores, 1) }
	return []workload{
		{name: "specmix2/skylake", run: simWorkload(config.SkylakeX(8), specMix)},
		{name: "specmix2/secdir", run: simWorkload(config.SecDirConfig(8), specMix)},
		{name: "parsec-x264/secdir", run: simWorkload(config.SecDirConfig(8), parsec)},
		{name: "tracefile-replay/secdir", run: simWorkload(config.SecDirConfig(8), traceReplay)},
		{name: "leakage-trials/skylake-unfixed", run: leakageTrials},
	}
}

// simWorkload adapts a (config, trace builder) pair to the workload contract:
// one repetition builds the workload and machine fresh (so every run
// simulates the identical access stream) and runs warmup+measure.
func simWorkload(cfg config.Config, build func(cores int) (trace.Workload, error)) func() (uint64, error) {
	return func() (uint64, error) {
		work, err := build(cfg.Cores)
		if err != nil {
			return 0, err
		}
		r, err := sim.New(sim.Options{
			Config:          cfg,
			Work:            work,
			WarmupAccesses:  workloadWarmup,
			MeasureAccesses: workloadMeasure,
		})
		if err != nil {
			return 0, err
		}
		r.Run()
		if err := work.Close(); err != nil {
			return 0, err
		}
		return uint64(cfg.Cores) * (workloadWarmup + workloadMeasure), nil
	}
}

// leakageTrials times the Monte-Carlo trial runner on its heaviest standard
// cell — prime+probe on the unfixed baseline — exercising the worker-pool
// fan-out and per-trial engine construction that the leak jobs and
// secdir-leak live on. The access count comes from the verdict's engine
// totals, keeping ns/access comparable with the simulation rows.
func leakageTrials() (uint64, error) {
	cfg, err := leakage.ParseConfig("skylake-unfixed", 8)
	if err != nil {
		return 0, err
	}
	s, err := leakage.ParseStrategy("primeprobe")
	if err != nil {
		return 0, err
	}
	v, err := leakage.Run(context.Background(), leakage.Options{
		Config:     cfg,
		ConfigName: "skylake-unfixed",
		Strategy:   s,
		Trials:     48,
		Rounds:     16,
		Seed:       1,
		Resamples:  100,
	})
	if err != nil {
		return 0, err
	}
	return v.Accesses, nil
}

// traceReplay records a SPEC application stream to a temporary SDTR file and
// builds a workload that replays it on core 0 through the zero-copy mapped
// reader — timing the full trace path (in-place record decode + simulation),
// not just the engine. The file is unlinked as soon as the mapping exists;
// the mapping keeps the pages alive and Workload.Close releases them.
func traceReplay(cores int) (trace.Workload, error) {
	g, err := trace.NewSpecApp("bzip2", 0, 11)
	if err != nil {
		return trace.Workload{}, err
	}
	f, err := os.CreateTemp("", "secdir-bench-*.sdtr")
	if err != nil {
		return trace.Workload{}, err
	}
	name := f.Name()
	// Core 0 consumes warmup+measure accesses: one full pass, no looping.
	err = trace.WriteTrace(f, g, workloadWarmup+workloadMeasure)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(name)
		return trace.Workload{}, err
	}
	mt, err := trace.OpenMappedTrace(name)
	os.Remove(name)
	if err != nil {
		return trace.Workload{}, err
	}
	rep, err := mt.Replay()
	if err != nil {
		mt.Close()
		return trace.Workload{}, err
	}
	gens := make([]trace.Generator, cores)
	gens[0] = &closingReplay{Generator: rep, t: mt}
	for c := 1; c < cores; c++ {
		gens[c] = trace.NewIdle(addr.Line(uint64(c+1) << 30))
	}
	return trace.Workload{Name: "tracefile-replay", Gens: gens}, nil
}

// closingReplay ties the replay generator's lifetime to its backing mapping.
type closingReplay struct {
	trace.Generator
	t *trace.MappedTrace
}

// Close implements the closer contract trace.Workload.Close looks for.
func (r *closingReplay) Close() error { return r.t.Close() }

// workload phase lengths (per core).
const (
	workloadWarmup  = 20_000
	workloadMeasure = 60_000
)

// workloadReps is how many times each workload is run; the fastest run is
// reported. Minimum-of-N is the standard way to reject scheduler and
// frequency noise when timing a deterministic computation.
const workloadReps = 3

// RunWorkloads times every bounded workload and returns the results in a
// stable order.
func RunWorkloads() ([]WorkloadResult, error) {
	out := make([]WorkloadResult, 0, len(workloads()))
	for _, w := range workloads() {
		res, err := runWorkload(w)
		if err != nil {
			return nil, fmt.Errorf("bench: workload %s: %w", w.name, err)
		}
		out = append(out, res)
	}
	return out, nil
}

// runWorkload runs one workload workloadReps times and measures wall-clock
// ns per simulated access of the fastest run (warmup included — both phases
// exercise the same hot path). Each repetition performs the identical
// deterministic computation, so minimum-of-N timing is sound.
func runWorkload(w workload) (WorkloadResult, error) {
	var best time.Duration
	var accesses uint64
	for rep := 0; rep < workloadReps; rep++ {
		start := time.Now()
		n, err := w.run()
		elapsed := time.Since(start)
		if err != nil {
			return WorkloadResult{}, err
		}
		accesses = n
		if rep == 0 || elapsed < best {
			best = elapsed
		}
	}
	ns := float64(best.Nanoseconds()) / float64(accesses)
	return WorkloadResult{
		Name:            w.name,
		Accesses:        accesses,
		NsPerAccess:     ns,
		MAccessesPerSec: 1e3 / ns,
	}, nil
}
