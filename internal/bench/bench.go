// Package bench is the repo's benchmark-regression harness. It defines the
// microbenchmark bodies shared by the `go test -bench` wrappers and the
// cmd/secdir-bench tool, bounded experiment workloads measured in wall-clock
// ns/access, and the machine-readable BENCH_<date>.json report format with a
// tolerance-based comparison against the last checked-in baseline.
//
// The harness exists to pin the allocation-free hot-path invariant: after the
// caches and directories warm up, Engine.Access must perform zero heap
// allocations per access (see TestEngineMixedAllocFree and DESIGN.md).
package bench

import (
	"testing"

	"secdir/internal/addr"
	"secdir/internal/cachesim"
	"secdir/internal/coherence"
	"secdir/internal/config"
	"secdir/internal/core"
	"secdir/internal/cuckoo"
	"secdir/internal/rng"
	"secdir/internal/trace"
)

// warmupAccesses is how many accesses each engine benchmark performs before
// the timer starts, so fills, directory migrations and buffer growth settle
// and the measured loop sees only steady state.
const warmupAccesses = 200_000

// Case is one runnable microbenchmark.
type Case struct {
	// Name as reported in BENCH_*.json (matches the Benchmark* wrapper name).
	Name string
	// Bench is the benchmark body.
	Bench func(b *testing.B)
}

// MicroCases returns the harness's microbenchmarks in report order.
func MicroCases() []Case {
	cases := []Case{
		{Name: "Access", Bench: Access},
		{Name: "SecDirLookup", Bench: SecDirLookup},
		{Name: "CuckooInsert", Bench: CuckooInsert},
		{Name: "EngineMixed", Bench: EngineMixed},
	}
	for _, p := range []cachesim.Policy{cachesim.LRU, cachesim.Random, cachesim.SRRIP, cachesim.PLRU} {
		cases = append(cases, Case{Name: "CachePolicies/" + p.String(), Bench: CachePolicy(p)})
	}
	for _, d := range DefenseConfigs() {
		cases = append(cases, Case{Name: "Defenses/" + d.Name, Bench: Defense(d.Config)})
	}
	return cases
}

// DefenseConfig names one rival-defense configuration of the cross-defense
// leaderboard at the benchmark core count.
type DefenseConfig struct {
	Name   string
	Config config.Config
}

// DefenseConfigs returns the rival defenses raced by the leaderboard, in
// report order. The baseline and SecDir engines already have their own rows
// (Access, EngineMixed).
func DefenseConfigs() []DefenseConfig {
	return []DefenseConfig{
		{"skewed", config.SkewedConfig(8)},
		{"dls", config.DLSConfig(8)},
		{"tagpart", config.TagPartConfig(8)},
		{"ceaser", config.CeaserConfig(8, 20_000)},
	}
}

// Defense returns the steady-state access-path microbenchmark for one rival
// defense configuration — the same loop as Access/EngineMixed, so the
// Defenses/* rows are directly comparable across designs.
func Defense(cfg config.Config) func(b *testing.B) {
	return func(b *testing.B) {
		e, gen := newWarmEngine(b, cfg)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a := gen.Next()
			e.Access(i&7, a.Line, a.Write)
		}
	}
}

// CachePolicy returns a probe+fill microbenchmark for one replacement
// policy on a standalone L2-shaped cache (1024 sets × 16 ways), uniform over
// four times its capacity so roughly three quarters of probes miss and fill.
// It isolates the tag-scan and victim-selection cost that every simulated
// access pays, per policy.
func CachePolicy(policy cachesim.Policy) func(b *testing.B) {
	return func(b *testing.B) {
		const sets, ways = 1024, 16
		const footprint = 4 * sets * ways // lines; power of two
		c := cachesim.New[struct{}](sets, ways, cachesim.ModIndex(sets), policy, 1)
		r := rng.New(42)
		for i := 0; i < 2*footprint; i++ {
			c.Put(addr.Line(r.Uint64()&(footprint-1)), struct{}{})
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			l := addr.Line(r.Uint64() & (footprint - 1))
			if _, ok := c.Access(l); !ok {
				c.Put(l, struct{}{})
			}
		}
	}
}

// Access measures the baseline (Skylake-X) engine's steady-state access path
// on a uniform working set larger than the private caches.
func Access(b *testing.B) {
	e, gen := newWarmEngine(b, config.SkylakeX(8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := gen.Next()
		e.Access(i&7, a.Line, a.Write)
	}
}

// EngineMixed measures the SecDir engine's steady-state access path on a
// mixed read/write working set that exercises every Table 2 transition
// (fills, TD conflicts, VD migrations and consolidations). The acceptance
// invariant is 0 allocs/op after warmup.
func EngineMixed(b *testing.B) {
	e, gen := newWarmEngine(b, config.SecDirConfig(8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := gen.Next()
		e.Access(i&7, a.Line, a.Write)
	}
}

// newWarmEngine builds an engine and drives warmupAccesses mixed accesses
// through it, returning the engine and the (deterministic) generator.
func newWarmEngine(b *testing.B, cfg config.Config) (*coherence.Engine, trace.Generator) {
	b.Helper()
	e, err := coherence.NewEngine(cfg)
	if err != nil {
		b.Fatal(err)
	}
	gen := trace.NewUniform(1<<24, 64<<10, 0.25, 0, 7)
	for i := 0; i < warmupAccesses; i++ {
		a := gen.Next()
		e.Access(i&7, a.Line, a.Write)
	}
	return e, gen
}

// SecDirLookup measures a single SecDir slice's Miss path — ED/TD probes plus
// the batched VD search of §5.1 — without the surrounding engine.
func SecDirLookup(b *testing.B) {
	cfg := config.SecDirConfig(8)
	s := core.New(core.Params{
		Cores:  cfg.Cores,
		TDSets: cfg.TDSets, TDWays: cfg.TDWays,
		EDSets: cfg.EDSets, EDWays: cfg.EDWays,
		VDSets: cfg.VDSets, VDWays: cfg.VDWays,
		NumRelocations: cfg.NumRelocations,
		Cuckoo:         cfg.VDCuckoo,
		EmptyBit:       cfg.VDEmptyBit,
		Index:          cachesim.ModIndex(cfg.TDSets),
		AppendixAFix:   cfg.AppendixAFix,
		Seed:           1,
	})
	// Populate well past the ED+TD capacity so look-ups hit a mix of ED, TD,
	// VD and memory, and TD conflicts migrate entries into the VDs.
	const lines = 1 << 14
	for i := 0; i < lines; i++ {
		s.Miss(i&7, addr.Line(1<<20+i), false)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Miss(i&7, addr.Line(1<<20+i&(lines-1)), false)
	}
}

// CuckooInsert measures VD bank insert/remove cycles at full occupancy, where
// every insertion walks a relocation chain (Appendix B).
func CuckooInsert(b *testing.B) {
	cfg := config.SecDirConfig(8)
	t := cuckoo.New(cuckoo.Config{
		Sets:           cfg.VDSets,
		Ways:           cfg.VDWays,
		NumRelocations: cfg.NumRelocations,
		Cuckoo:         true,
		Seed:           1,
	})
	// Twice the capacity: half the inserts displace a live entry.
	lines := 2 * t.Capacity()
	for i := 0; i < lines; i++ {
		t.Insert(addr.Line(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := addr.Line(i % lines)
		if _, evicted := t.Insert(l); !evicted {
			t.Remove(l)
		}
	}
}
