package bench

import (
	"fmt"
	"reflect"
	"time"

	"secdir/internal/coherence"
	"secdir/internal/config"
	"secdir/internal/sim"
	"secdir/internal/trace"
)

// ShardedResult is the structured sharded-vs-serial comparison the bench
// artifact carries so speedup (or its honest absence) is tracked across PRs
// instead of living only in one smoke test's log line. Both runs simulate the
// identical access stream and are verified bit-identical before any timing is
// reported.
type ShardedResult struct {
	// Name identifies the workload/design pair ("specmix2/secdir").
	Name string `json:"name"`
	// Shards and Window are the engine geometry measured.
	Shards int `json:"shards"`
	Window int `json:"window"`
	// SerialNs and ShardedNs are wall-clock nanoseconds per simulated access
	// (fastest of the repetitions, warmup included) for the serial engine and
	// the sharded+windowed engine respectively.
	SerialNs  float64 `json:"serial_ns_per_access"`
	ShardedNs float64 `json:"sharded_ns_per_access"`
	// Speedup is SerialNs/ShardedNs (> 1 means sharding won).
	Speedup float64 `json:"speedup"`
	// WindowOccupancy is the mean committed window size (fastest sharded rep);
	// the ceiling on any speedup this workload's conflict structure admits.
	WindowOccupancy float64 `json:"window_occupancy"`
	// WindowTxns is the count of slice transactions dispatched to shard
	// goroutines in that run.
	WindowTxns uint64 `json:"window_txns"`
}

// shardedGeometry is the sharded-perf probe's fixed engine shape: the
// specmix2/secdir workload at 4 shards, window 8 — the ISSUE's headline
// configuration.
const (
	shardedProbeShards = 4
	shardedProbeWindow = 8
)

// RunSharded measures the sharded-vs-serial comparison at the standard
// workload lengths.
func RunSharded() ([]ShardedResult, error) {
	return runShardedWith(workloadWarmup, workloadMeasure, workloadReps)
}

// runShardedWith times the specmix2/secdir workload on the serial engine and
// on the sharded+windowed engine, reps times each (fastest kept), verifying
// on every repetition that the two simulation Results are bit-identical
// before trusting either timing.
func runShardedWith(warmup, measure uint64, reps int) ([]ShardedResult, error) {
	cfg := config.SecDirConfig(8)
	accesses := uint64(cfg.Cores) * (warmup + measure)

	run := func(shards, window int) (sim.Result, time.Duration, coherence.WindowStats, error) {
		work, err := trace.NewSpecMix(2, cfg.Cores, 1)
		if err != nil {
			return sim.Result{}, 0, coherence.WindowStats{}, err
		}
		r, err := sim.New(sim.Options{
			Config:          cfg,
			Work:            work,
			WarmupAccesses:  warmup,
			MeasureAccesses: measure,
			EngineShards:    shards,
			EngineWindow:    window,
		})
		if err != nil {
			return sim.Result{}, 0, coherence.WindowStats{}, err
		}
		start := time.Now()
		res := r.Run()
		elapsed := time.Since(start)
		ws := r.WindowStats()
		r.Close()
		if err := work.Close(); err != nil {
			return sim.Result{}, 0, coherence.WindowStats{}, err
		}
		return res, elapsed, ws, nil
	}

	var serialBest, shardedBest time.Duration
	var bestWS coherence.WindowStats
	for rep := 0; rep < reps; rep++ {
		sRes, sDur, _, err := run(0, 0)
		if err != nil {
			return nil, err
		}
		wRes, wDur, ws, err := run(shardedProbeShards, shardedProbeWindow)
		if err != nil {
			return nil, err
		}
		if !reflect.DeepEqual(sRes, wRes) {
			return nil, fmt.Errorf("bench: sharded result diverged from serial on rep %d", rep)
		}
		if rep == 0 || sDur < serialBest {
			serialBest = sDur
		}
		if rep == 0 || wDur < shardedBest {
			shardedBest, bestWS = wDur, ws
		}
	}

	serialNs := float64(serialBest.Nanoseconds()) / float64(accesses)
	shardedNs := float64(shardedBest.Nanoseconds()) / float64(accesses)
	out := []ShardedResult{{
		Name:            "specmix2/secdir",
		Shards:          shardedProbeShards,
		Window:          shardedProbeWindow,
		SerialNs:        serialNs,
		ShardedNs:       shardedNs,
		Speedup:         serialNs / shardedNs,
		WindowOccupancy: bestWS.Occupancy(),
		WindowTxns:      bestWS.Dispatched,
	}}
	bp, err := batchProbe(warmup+measure, reps)
	if err != nil {
		return nil, err
	}
	return append(out, bp), nil
}

// batchProbeN is the batch size of the direct-engine probe: big enough that
// the window scheduler can fill every shard's transaction budget, far beyond
// the ~1-access bursts the simulator's causal core interleave admits.
const batchProbeN = 64

// batchProbe measures the window scheduler's raw headroom, free of the
// simulator's interleaving constraint: direct AccessBatch calls of
// batchProbeN uniform accesses each (the leaderboard perf probe's geometry),
// rotating the issuing core per batch, on the serial engine versus the
// sharded+windowed one. Bit-identity is checked through the engines' full
// counter state and the summed latencies; the per-result oracle lives in the
// coherence tests.
func batchProbe(perCore uint64, reps int) (ShardedResult, error) {
	cfg := config.SecDirConfig(8)
	batches := int(perCore) * cfg.Cores / batchProbeN
	accesses := uint64(batches) * batchProbeN

	run := func(shards, window int) (time.Duration, uint64, coherence.WindowStats, fmt.Stringer, error) {
		var eng *coherence.Engine
		var sh *coherence.Sharded
		var err error
		if shards > 1 {
			sh, err = coherence.NewSharded(cfg.WithSeed(7), shards)
			if err != nil {
				return 0, 0, coherence.WindowStats{}, nil, err
			}
			sh.SetWindow(window)
			eng = sh.Engine
			defer sh.Close()
		} else {
			eng, err = coherence.NewEngine(cfg.WithSeed(7))
			if err != nil {
				return 0, 0, coherence.WindowStats{}, nil, err
			}
		}
		gen := trace.NewUniform(1<<24, 64<<10, 0.25, 0, 7)
		ops := make([]coherence.BatchOp, batchProbeN)
		res := make([]coherence.AccessResult, batchProbeN)
		var latSum uint64
		start := time.Now()
		for b := 0; b < batches; b++ {
			for i := range ops {
				a := gen.Next()
				ops[i] = coherence.BatchOp{Line: a.Line, Write: a.Write}
			}
			eng.AccessBatch(b%cfg.Cores, ops, res)
			for i := range res {
				latSum += uint64(res[i].Latency)
			}
		}
		elapsed := time.Since(start)
		var ws coherence.WindowStats
		if sh != nil {
			ws = sh.WindowStats()
		}
		return elapsed, latSum, ws, stateDigest{eng}, nil
	}

	var serialBest, shardedBest time.Duration
	var bestWS coherence.WindowStats
	for rep := 0; rep < reps; rep++ {
		sDur, sLat, _, sState, err := run(0, 0)
		if err != nil {
			return ShardedResult{}, err
		}
		wDur, wLat, ws, wState, err := run(shardedProbeShards, shardedProbeWindow)
		if err != nil {
			return ShardedResult{}, err
		}
		if sLat != wLat || sState.String() != wState.String() {
			return ShardedResult{}, fmt.Errorf("bench: batch probe diverged on rep %d (latency sum %d vs %d)", rep, sLat, wLat)
		}
		if rep == 0 || sDur < serialBest {
			serialBest = sDur
		}
		if rep == 0 || wDur < shardedBest {
			shardedBest, bestWS = wDur, ws
		}
	}

	serialNs := float64(serialBest.Nanoseconds()) / float64(accesses)
	shardedNs := float64(shardedBest.Nanoseconds()) / float64(accesses)
	return ShardedResult{
		Name:            "batch64/secdir",
		Shards:          shardedProbeShards,
		Window:          shardedProbeWindow,
		SerialNs:        serialNs,
		ShardedNs:       shardedNs,
		Speedup:         serialNs / shardedNs,
		WindowOccupancy: bestWS.Occupancy(),
		WindowTxns:      bestWS.Dispatched,
	}, nil
}

// stateDigest renders an engine's full counter state (per-core stats plus
// directory activity) for equality checks.
type stateDigest struct{ e *coherence.Engine }

// String implements fmt.Stringer over the engine's counter snapshot.
func (d stateDigest) String() string {
	return fmt.Sprintf("%+v|%+v", d.e.Stats(), d.e.DirStats())
}
