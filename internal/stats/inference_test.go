package stats

import (
	"math"
	"testing"
)

// approx fails unless got is within tol of want.
func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %.9f, want %.9f (±%g)", name, got, want, tol)
	}
}

// TestWelchT pins the t statistic and Welch–Satterthwaite df against
// reference values computed offline with scipy.stats.ttest_ind(a, b,
// equal_var=False) (SciPy 1.11) and verified by hand from the closed forms
// in the comments.
func TestWelchT(t *testing.T) {
	cases := []struct {
		name    string
		a, b    []float64
		t, df   float64
		exactT  bool // expect the exact value (degenerate branches)
		wantInf int  // -1/+1: expect t = ∓Inf
	}{
		{
			// mean_a=3, s²_a=2.5, mean_b=6, s²_b=10:
			// t = -3/sqrt(2.5/5+10/5) = -3/sqrt(2.5) = -1.897366596,
			// df = 2.5²/((0.5²)/4 + (2²)/4) = 6.25/1.0625 = 5.882352941.
			name: "textbook",
			a:    []float64{1, 2, 3, 4, 5},
			b:    []float64{2, 4, 6, 8, 10},
			t:    -1.897366596, df: 5.882352941,
		},
		{
			// s²_a=0.035, s²_b=0.035/3: t = 29/(2·sqrt(7)) = 5.480485,
			// df = (16/9)/(2/9) = 8 exactly.
			name: "tvla-shaped",
			a:    []float64{10.2, 9.8, 10.1, 10.3, 9.9, 10.0},
			b:    []float64{9.5, 9.7, 9.4, 9.6, 9.55, 9.65},
			t:    5.480485, df: 8,
		},
		{
			// Both samples constant and equal: no evidence, t = 0.
			name: "constant-equal",
			a:    []float64{1, 1, 1}, b: []float64{1, 1, 1},
			t: 0, df: 0, exactT: true,
		},
		{
			// Both samples constant, means differ: a noise-free simulator's
			// perfect distinguisher. t diverges, sign follows mean(a)-mean(b).
			name: "constant-distinct",
			a:    []float64{1, 1}, b: []float64{0, 0},
			wantInf: +1,
		},
		{
			name: "empty",
			a:    nil, b: []float64{1, 2},
			t: 0, df: 0, exactT: true,
		},
	}
	for _, c := range cases {
		gt, gdf := WelchT(c.a, c.b)
		if c.wantInf != 0 {
			if !math.IsInf(gt, c.wantInf) {
				t.Errorf("%s: t = %v, want %+dInf", c.name, gt, c.wantInf)
			}
			continue
		}
		tol := 1e-6
		if c.exactT {
			tol = 0
		}
		approx(t, c.name+"/t", gt, c.t, tol)
		approx(t, c.name+"/df", gdf, c.df, tol)
	}
}

// TestMutualInformation pins the plug-in estimator against hand-computed
// plug-in values (the estimator is a finite sum, so the references are exact
// arithmetic, not simulation): I = Σ p(x,c)·log2(p(x,c)/(p(x)p(c))).
func TestMutualInformation(t *testing.T) {
	cases := []struct {
		name string
		a, b []float64
		bins int
		want float64
	}{
		// Perfectly separated balanced classes: the observable identifies
		// the class — exactly 1 bit.
		{"separated", []float64{0, 0, 0, 0}, []float64{1, 1, 1, 1}, 2, 1},
		// Identical distributions: 0 bits.
		{"identical", []float64{0, 1, 0, 1}, []float64{0, 1, 0, 1}, 2, 0},
		// Half of class a reaches a cell class b never does:
		// I = 0.25·log2(2) + 0.5·log2(4/3) + 0.25·log2(2/3) = 0.311278 bits.
		{"partial", []float64{0, 0, 1, 1}, []float64{0, 0, 0, 0}, 2, 0.3112781245},
		// Degenerate pooled range (every observation equal): no information.
		{"degenerate-range", []float64{5, 5}, []float64{5, 5}, 8, 0},
		{"empty", nil, []float64{1}, 8, 0},
	}
	for _, c := range cases {
		approx(t, c.name, MutualInformation(c.a, c.b, c.bins), c.want, 1e-9)
	}
}

// TestAUC pins the rank-based AUC (with half-credit ties) against the
// definition P(pos > neg) + ½P(pos = neg), enumerable by hand on these
// inputs.
func TestAUC(t *testing.T) {
	cases := []struct {
		name     string
		pos, neg []float64
		want     float64
	}{
		{"perfect", []float64{2, 3, 4}, []float64{0, 1}, 1},
		{"inverted", []float64{0, 1}, []float64{2, 3, 4}, 0},
		{"all-tied", []float64{1, 2}, []float64{1, 2}, 0.5},
		// Pairs (3,2)(3,0)(1,2)(1,0): three wins of four → 0.75.
		{"mixed", []float64{3, 1}, []float64{2, 0}, 0.75},
		{"empty", nil, []float64{1}, 0.5},
	}
	for _, c := range cases {
		approx(t, c.name, AUC(c.pos, c.neg), c.want, 1e-12)
	}
}

// TestBootstrapCI checks the seeded percentile bootstrap's contract:
// deterministic under a fixed seed, collapsed for a constant sample, and
// covering the point estimate for a well-behaved one.
func TestBootstrapCI(t *testing.T) {
	mean := func(x []float64) float64 {
		s := 0.0
		for _, v := range x {
			s += v
		}
		return s / float64(len(x))
	}

	x := make([]float64, 100)
	for i := range x {
		x[i] = float64(i)
	}
	lo, hi := BootstrapCI(x, mean, 500, 0.99, 42)
	lo2, hi2 := BootstrapCI(x, mean, 500, 0.99, 42)
	if lo != lo2 || hi != hi2 {
		t.Errorf("bootstrap not deterministic under a fixed seed: [%v,%v] vs [%v,%v]", lo, hi, lo2, hi2)
	}
	if !(lo < hi) {
		t.Errorf("interval not ordered: [%v,%v]", lo, hi)
	}
	// The 99% interval of the mean of Uniform{0..99} (point estimate 49.5,
	// se ≈ 2.9) must cover the point estimate and stay in a sane band.
	if lo > 49.5 || hi < 49.5 {
		t.Errorf("interval [%v,%v] does not cover the sample mean 49.5", lo, hi)
	}
	if hi-lo > 20 {
		t.Errorf("interval [%v,%v] implausibly wide for se≈2.9", lo, hi)
	}

	// A constant sample admits exactly one resample: the interval collapses
	// onto the statistic.
	clo, chi := BootstrapCI([]float64{7, 7, 7}, mean, 100, 0.99, 1)
	if clo != 7 || chi != 7 {
		t.Errorf("constant sample: interval [%v,%v], want [7,7]", clo, chi)
	}
}

// TestBootstrapCI2 checks the two-sample variant on the AUC statistic the
// leakage lab uses: fully separated groups stay at AUC 1 under any resample.
func TestBootstrapCI2(t *testing.T) {
	act := []float64{5, 6, 7, 8}
	idl := []float64{1, 2, 3, 4}
	lo, hi := BootstrapCI2(act, idl, AUC, 200, 0.99, 9)
	if lo != 1 || hi != 1 {
		t.Errorf("separated groups: AUC interval [%v,%v], want [1,1]", lo, hi)
	}
	lo2, hi2 := BootstrapCI2(act, idl, AUC, 200, 0.99, 9)
	if lo != lo2 || hi != hi2 {
		t.Errorf("two-sample bootstrap not deterministic under a fixed seed")
	}
}
