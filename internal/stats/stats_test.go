package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestMomentsBasics(t *testing.T) {
	var m Moments
	if m.N() != 0 || m.Mean() != 0 || m.Var() != 0 {
		t.Fatal("zero Moments not zero")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		m.Add(x)
	}
	if m.N() != 8 {
		t.Fatalf("N = %d", m.N())
	}
	if math.Abs(m.Mean()-5) > 1e-9 {
		t.Fatalf("Mean = %v", m.Mean())
	}
	if math.Abs(m.Std()-2) > 1e-9 { // classic example: σ = 2
		t.Fatalf("Std = %v", m.Std())
	}
	if m.Min() != 2 || m.Max() != 9 {
		t.Fatalf("min/max = %v/%v", m.Min(), m.Max())
	}
}

func TestMomentsMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var m Moments
	var xs []float64
	for i := 0; i < 1000; i++ {
		x := rng.NormFloat64()*3 + 10
		xs = append(xs, x)
		m.Add(x)
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	var v float64
	for _, x := range xs {
		v += (x - mean) * (x - mean)
	}
	v /= float64(len(xs))
	if math.Abs(m.Mean()-mean) > 1e-9 || math.Abs(m.Var()-v) > 1e-6 {
		t.Fatalf("streaming (%v,%v) vs naive (%v,%v)", m.Mean(), m.Var(), mean, v)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{0, 1, 2, 3, 4, 7, 8, 1024} {
		h.Add(v)
	}
	if h.N() != 8 {
		t.Fatalf("N = %d", h.N())
	}
	want := (0.0 + 1 + 2 + 3 + 4 + 7 + 8 + 1024) / 8
	if math.Abs(h.Mean()-want) > 1e-9 {
		t.Fatalf("Mean = %v, want %v", h.Mean(), want)
	}
	s := h.String()
	if !strings.Contains(s, "n=8") {
		t.Fatalf("String = %q", s)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for v := uint64(1); v <= 1000; v++ {
		h.Add(v)
	}
	// Quantile returns a bucket upper bound: it must be >= the exact
	// quantile and within 2x of it (power-of-two buckets).
	for _, q := range []float64{0.5, 0.9, 0.99, 1.0} {
		exact := uint64(q * 1000)
		got := h.Quantile(q)
		if got < exact {
			t.Errorf("Quantile(%v) = %d below exact %d", q, got, exact)
		}
		if got > 2*exact {
			t.Errorf("Quantile(%v) = %d more than 2x exact %d", q, got, exact)
		}
	}
	if (&Histogram{}).Quantile(0.5) != 0 {
		t.Error("empty histogram quantile not 0")
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	f := func(vals []uint16) bool {
		var h Histogram
		for _, v := range vals {
			h.Add(uint64(v))
		}
		return h.Quantile(0.25) <= h.Quantile(0.5) &&
			h.Quantile(0.5) <= h.Quantile(0.9) &&
			h.Quantile(0.9) <= h.Quantile(1.0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(1, 0) != "n/a" {
		t.Error("Ratio with zero denominator")
	}
	if Ratio(1, 4) != "25.00%" {
		t.Errorf("Ratio(1,4) = %q", Ratio(1, 4))
	}
}
