package stats

import (
	"math"
	"sort"

	"secdir/internal/rng"
)

// This file holds the inferential statistics the leakage lab builds its
// verdicts on: Welch's unequal-variance t-test (the TVLA workhorse), a
// plug-in mutual-information estimate (channel capacity in bits), the
// rank-based ROC AUC, and seeded percentile-bootstrap confidence intervals.
// Everything is deterministic: the bootstrap draws from the repo's splitmix64
// generator, so a fixed seed pins every interval bit-for-bit.

// meanVar returns the sample mean and the unbiased (n-1) sample variance.
func meanVar(x []float64) (mean, variance float64) {
	n := float64(len(x))
	if n == 0 {
		return 0, 0
	}
	for _, v := range x {
		mean += v
	}
	mean /= n
	if n < 2 {
		return mean, 0
	}
	for _, v := range x {
		d := v - mean
		variance += d * d
	}
	return mean, variance / (n - 1)
}

// WelchT returns Welch's two-sample t statistic for a vs. b and the
// Welch–Satterthwaite degrees of freedom. This is the unequal-variance test
// TVLA ("Test Vector Leakage Assessment", Goodwill et al., NIAT 2011) builds
// its |t| > 4.5 leakage criterion on.
//
// Degenerate inputs are resolved the way a leakage verdict needs: when both
// samples have zero variance (a noise-free simulator can produce exactly
// constant observables), t is 0 for equal means and ±Inf for distinct means,
// with df 0. Callers that serialize t must cap the infinities themselves.
func WelchT(a, b []float64) (t, df float64) {
	ma, va := meanVar(a)
	mb, vb := meanVar(b)
	na, nb := float64(len(a)), float64(len(b))
	if na == 0 || nb == 0 {
		return 0, 0
	}
	se2 := va/na + vb/nb
	if se2 == 0 {
		if ma == mb {
			return 0, 0
		}
		return math.Inf(int(math.Copysign(1, ma-mb))), 0
	}
	t = (ma - mb) / math.Sqrt(se2)
	// Welch–Satterthwaite: df = (va/na + vb/nb)^2 / ((va/na)^2/(na-1) + (vb/nb)^2/(nb-1)).
	denom := 0.0
	if na > 1 {
		denom += (va / na) * (va / na) / (na - 1)
	}
	if nb > 1 {
		denom += (vb / nb) * (vb / nb) / (nb - 1)
	}
	if denom == 0 {
		return t, 0
	}
	return t, se2 * se2 / denom
}

// MutualInformation estimates I(C;X) in bits between the binary class label
// C (which of the two samples an observation came from) and the observation
// X, using the plug-in (maximum-likelihood histogram) estimator over bins
// equal-width cells spanning the pooled range. This is the per-observation
// channel capacity bound side-channel evaluations report: 0 bits means the
// observable carries no information about the class; with balanced classes
// the maximum is 1 bit.
//
// The plug-in estimator has a positive O((bins-1)/N) bias on independent
// data; callers comparing against a leakage threshold should keep bins small
// relative to the sample count. A degenerate pooled range (every observation
// identical) carries no information and returns 0.
func MutualInformation(a, b []float64, bins int) float64 {
	if len(a) == 0 || len(b) == 0 || bins < 1 {
		return 0
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range [][]float64{a, b} {
		for _, v := range s {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if hi == lo {
		return 0
	}
	width := (hi - lo) / float64(bins)
	binOf := func(v float64) int {
		k := int((v - lo) / width)
		if k >= bins {
			k = bins - 1 // v == hi lands in the last cell
		}
		return k
	}
	counts := make([][2]float64, bins)
	for _, v := range a {
		counts[binOf(v)][0]++
	}
	for _, v := range b {
		counts[binOf(v)][1]++
	}
	n := float64(len(a) + len(b))
	pc := [2]float64{float64(len(a)) / n, float64(len(b)) / n}
	mi := 0.0
	for _, c := range counts {
		px := (c[0] + c[1]) / n
		if px == 0 {
			continue
		}
		for class := 0; class < 2; class++ {
			pxy := c[class] / n
			if pxy == 0 {
				continue
			}
			mi += pxy * math.Log2(pxy/(px*pc[class]))
		}
	}
	if mi < 0 {
		mi = 0 // guard against float cancellation
	}
	return mi
}

// AUC returns the area under the ROC curve of the threshold distinguisher
// separating pos from neg: the probability that a random positive observation
// ranks above a random negative one, with ties counted half (the Mann-Whitney
// U statistic normalized by len(pos)*len(neg)). 0.5 is an uninformative
// distinguisher; 1.0 (or 0.0, for an inverted observable) is a perfect one.
// Computed by rank-sum in O(n log n), so bootstrap resampling stays cheap.
func AUC(pos, neg []float64) float64 {
	np, nn := len(pos), len(neg)
	if np == 0 || nn == 0 {
		return 0.5
	}
	type obs struct {
		v   float64
		pos bool
	}
	all := make([]obs, 0, np+nn)
	for _, v := range pos {
		all = append(all, obs{v, true})
	}
	for _, v := range neg {
		all = append(all, obs{v, false})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })
	// Sum the positives' average ranks, handling tie groups in one pass.
	var rankSum float64
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].v == all[i].v {
			j++
		}
		avgRank := float64(i+j+1) / 2 // mean of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			if all[k].pos {
				rankSum += avgRank
			}
		}
		i = j
	}
	u := rankSum - float64(np)*float64(np+1)/2
	return u / (float64(np) * float64(nn))
}

// BootstrapCI returns the percentile-bootstrap confidence interval of
// stat(x) at the given confidence level (e.g. 0.99): resamples bootstrap
// replicates of x (with replacement, seeded — deterministic for a fixed
// seed), evaluates stat on each, and returns the (1-conf)/2 and 1-(1-conf)/2
// empirical quantiles.
func BootstrapCI(x []float64, stat func([]float64) float64, resamples int, conf float64, seed int64) (lo, hi float64) {
	if len(x) == 0 || resamples < 1 {
		return 0, 0
	}
	r := rng.New(seed)
	buf := make([]float64, len(x))
	vals := make([]float64, resamples)
	for i := range vals {
		resample(&r, x, buf)
		vals[i] = stat(buf)
	}
	return percentileInterval(vals, conf)
}

// BootstrapCI2 is the two-sample variant for statistics over a pair of
// groups (the leakage lab's AUC over victim-active vs. victim-idle samples):
// each replicate resamples both groups independently.
func BootstrapCI2(a, b []float64, stat func(a, b []float64) float64, resamples int, conf float64, seed int64) (lo, hi float64) {
	if len(a) == 0 || len(b) == 0 || resamples < 1 {
		return 0, 0
	}
	r := rng.New(seed)
	bufA := make([]float64, len(a))
	bufB := make([]float64, len(b))
	vals := make([]float64, resamples)
	for i := range vals {
		resample(&r, a, bufA)
		resample(&r, b, bufB)
		vals[i] = stat(bufA, bufB)
	}
	return percentileInterval(vals, conf)
}

// resample fills buf with len(src) draws from src with replacement.
func resample(r *rng.Rand, src, buf []float64) {
	for i := range buf {
		buf[i] = src[r.Intn(len(src))]
	}
}

// percentileInterval returns the symmetric conf-level percentile interval of
// vals (which it sorts in place).
func percentileInterval(vals []float64, conf float64) (lo, hi float64) {
	sort.Float64s(vals)
	alpha := (1 - conf) / 2
	return quantileSorted(vals, alpha), quantileSorted(vals, 1-alpha)
}

// quantileSorted returns the q-quantile of sorted vals by the nearest-rank
// method, clamping q to [0,1].
func quantileSorted(vals []float64, q float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	k := int(math.Ceil(q*float64(len(vals)))) - 1
	if k < 0 {
		k = 0
	}
	if k >= len(vals) {
		k = len(vals) - 1
	}
	return vals[k]
}
