package stats

import (
	"math"
	"testing"
)

// TestHistogramQuantileEdgeCases pins the empty-histogram and boundary
// quantile behaviour the reporting layers rely on.
func TestHistogramQuantileEdgeCases(t *testing.T) {
	tests := []struct {
		name string
		vals []uint64
		q    float64
		want uint64
	}{
		{"empty p50", nil, 0.5, 0},
		{"empty p0", nil, 0, 0},
		{"empty p100", nil, 1, 0},
		{"single zero", []uint64{0}, 0.5, 0},
		{"single one", []uint64{1}, 0.5, 1},
		{"all zeros p99", []uint64{0, 0, 0, 0}, 0.99, 0},
		{"q zero clamps to first observation", []uint64{5, 5, 5}, 0, 7},
		{"exact bucket edge", []uint64{8}, 1, 15},
		{"two-point median low", []uint64{0, 1024}, 0.5, 0},
		{"two-point p99 high", []uint64{0, 1024}, 0.99, 2047},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			var h Histogram
			for _, v := range tc.vals {
				h.Add(v)
			}
			if got := h.Quantile(tc.q); got != tc.want {
				t.Fatalf("Quantile(%v) over %v = %d, want %d", tc.q, tc.vals, got, tc.want)
			}
		})
	}
}

// TestHistogramOverflowBucket: values at and beyond 2^62 land in bucket 63
// and never index out of range (a shift-based bucket computation would).
func TestHistogramOverflowBucket(t *testing.T) {
	tests := []struct {
		name   string
		val    uint64
		bucket int
	}{
		{"below overflow", 1<<62 - 1, 62},
		{"first overflow value", 1 << 62, 63},
		{"high bit set", 1 << 63, 63},
		{"max uint64", math.MaxUint64, 63},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			var h Histogram
			h.Add(tc.val)
			counts := h.Counts()
			if counts[tc.bucket] != 1 {
				t.Fatalf("Add(%#x): bucket %d count = %d, want 1 (counts %v)", tc.val, tc.bucket, counts[tc.bucket], counts)
			}
			if h.N() != 1 || h.Sum() != tc.val {
				t.Fatalf("Add(%#x): n=%d sum=%#x", tc.val, h.N(), h.Sum())
			}
		})
	}
	// Overflow observations must still be visible to quantiles.
	var h Histogram
	h.Add(math.MaxUint64)
	if got := h.Quantile(1); got != 1<<63-1 {
		t.Fatalf("overflow quantile = %#x, want %#x", got, uint64(1<<63-1))
	}
}

// TestBucketBounds pins the bucket-to-range mapping used by snapshot deltas.
func TestBucketBounds(t *testing.T) {
	tests := []struct {
		bucket int
		lo, hi uint64
	}{
		{0, 0, 0},
		{1, 1, 1},
		{2, 2, 3},
		{3, 4, 7},
		{11, 1024, 2047},
		{63, 1 << 62, 1<<63 - 1},
	}
	for _, tc := range tests {
		lo, hi := BucketBounds(tc.bucket)
		if lo != tc.lo || hi != tc.hi {
			t.Errorf("BucketBounds(%d) = [%d, %d], want [%d, %d]", tc.bucket, lo, hi, tc.lo, tc.hi)
		}
	}
	// Round trip: every value lies inside the bounds of its own bucket.
	for _, v := range []uint64{0, 1, 2, 3, 4, 100, 1 << 40, math.MaxUint64} {
		b := bucketOf(v)
		lo, hi := BucketBounds(b)
		if b != 63 && (v < lo || v > hi) {
			t.Errorf("value %d outside its bucket %d bounds [%d, %d]", v, b, lo, hi)
		}
		if b == 63 && v < lo {
			t.Errorf("overflow value %d below bucket 63 lower bound %d", v, lo)
		}
	}
}

// TestMomentsEdgeCases covers the degenerate sample counts: a single sample
// has zero variance, and min/max must track the first sample rather than the
// zero value.
func TestMomentsEdgeCases(t *testing.T) {
	tests := []struct {
		name       string
		vals       []float64
		mean, vari float64
		min, max   float64
	}{
		{"single positive", []float64{42}, 42, 0, 42, 42},
		{"single negative", []float64{-3}, -3, 0, -3, -3},
		{"single zero", []float64{0}, 0, 0, 0, 0},
		{"two identical", []float64{5, 5}, 5, 0, 5, 5},
		{"two values", []float64{1, 3}, 2, 1, 1, 3},
		{"all negative", []float64{-8, -2}, -5, 9, -8, -2},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			var m Moments
			for _, v := range tc.vals {
				m.Add(v)
			}
			if m.N() != uint64(len(tc.vals)) {
				t.Fatalf("N = %d", m.N())
			}
			if math.Abs(m.Mean()-tc.mean) > 1e-12 {
				t.Errorf("Mean = %v, want %v", m.Mean(), tc.mean)
			}
			if math.Abs(m.Var()-tc.vari) > 1e-12 {
				t.Errorf("Var = %v, want %v", m.Var(), tc.vari)
			}
			if m.Min() != tc.min || m.Max() != tc.max {
				t.Errorf("min/max = %v/%v, want %v/%v", m.Min(), m.Max(), tc.min, tc.max)
			}
		})
	}
}
