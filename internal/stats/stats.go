// Package stats provides the small statistics utilities the simulator's
// reporting layers use: streaming moments, quantile-capable histograms with
// power-of-two buckets, and ratio formatting helpers.
package stats

import (
	"fmt"
	"math"
	"math/bits"
	"strings"
)

// Moments accumulates count/mean/variance in a single pass (Welford).
type Moments struct {
	n    uint64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (m *Moments) Add(x float64) {
	m.n++
	if m.n == 1 {
		m.min, m.max = x, x
	} else {
		if x < m.min {
			m.min = x
		}
		if x > m.max {
			m.max = x
		}
	}
	d := x - m.mean
	m.mean += d / float64(m.n)
	m.m2 += d * (x - m.mean)
}

// N returns the observation count.
func (m *Moments) N() uint64 { return m.n }

// Mean returns the running mean (0 with no observations).
func (m *Moments) Mean() float64 { return m.mean }

// Var returns the population variance.
func (m *Moments) Var() float64 {
	if m.n == 0 {
		return 0
	}
	return m.m2 / float64(m.n)
}

// Std returns the population standard deviation.
func (m *Moments) Std() float64 { return math.Sqrt(m.Var()) }

// Min returns the smallest observation (0 with none).
func (m *Moments) Min() float64 { return m.min }

// Max returns the largest observation (0 with none).
func (m *Moments) Max() float64 { return m.max }

// Histogram counts non-negative integer observations in power-of-two
// buckets: bucket k holds values in [2^(k-1), 2^k) with bucket 0 holding the
// value 0 and bucket 1 holding 1. Bucket 63 is the overflow bucket: it absorbs
// every value >= 2^62, so no observation can index out of range. It supports
// approximate quantiles (exact bucket, upper-bound value).
type Histogram struct {
	buckets [64]uint64
	total   uint64
	sum     uint64
}

// bucketOf returns the bucket index for v, clamped to the overflow bucket.
func bucketOf(v uint64) int {
	b := bits.Len64(v)
	if b > 63 {
		return 63
	}
	return b
}

// Add incorporates one observation.
func (h *Histogram) Add(v uint64) {
	h.buckets[bucketOf(v)]++
	h.total++
	h.sum += v
}

// N returns the observation count.
func (h *Histogram) N() uint64 { return h.total }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() uint64 { return h.sum }

// Counts returns a copy of the 64 bucket counters. Bucket k holds values in
// [2^(k-1), 2^k) (bucket 0: the value 0; bucket 63: overflow).
func (h *Histogram) Counts() [64]uint64 { return h.buckets }

// BucketBounds returns the inclusive [lo, hi] value range of bucket b.
func BucketBounds(b int) (lo, hi uint64) {
	if b <= 0 {
		return 0, 0
	}
	return 1 << uint(b-1), 1<<uint(b) - 1
}

// Mean returns the exact mean of the observations.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Quantile returns an upper bound for the q-quantile (0 < q <= 1): the upper
// edge of the bucket containing it.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.total == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(h.total)))
	if target == 0 {
		target = 1
	}
	var seen uint64
	for b, c := range h.buckets {
		seen += c
		if seen >= target {
			if b == 0 {
				return 0
			}
			return 1<<uint(b) - 1
		}
	}
	return 1<<63 - 1
}

// String renders the non-empty buckets as a compact table.
func (h *Histogram) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "n=%d mean=%.1f", h.total, h.Mean())
	for b, c := range h.buckets {
		if c == 0 {
			continue
		}
		lo, hi := uint64(0), uint64(0)
		if b > 0 {
			lo = 1 << uint(b-1)
			hi = 1<<uint(b) - 1
		}
		fmt.Fprintf(&sb, " [%d-%d]:%d", lo, hi, c)
	}
	return sb.String()
}

// Ratio formats a/b as a percentage string, tolerating b == 0.
func Ratio(a, b uint64) string {
	if b == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2f%%", 100*float64(a)/float64(b))
}
