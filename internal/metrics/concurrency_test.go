package metrics

import (
	"fmt"
	"sync"
	"testing"
)

// TestRegistryConcurrentMutation hammers one registry from many goroutines —
// get-or-create on hot and cold names, counter/gauge/histogram/series updates,
// gauge-func re-registration — while another goroutine snapshots continuously.
// Run with -race; the assertions check that no update was lost.
func TestRegistryConcurrentMutation(t *testing.T) {
	const (
		workers = 16
		iters   = 2000
	)
	r := New()

	stop := make(chan struct{})
	var snapper sync.WaitGroup
	snapper.Add(1)
	go func() {
		defer snapper.Done()
		for {
			select {
			case <-stop:
				return
			default:
				r.Snapshot()
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// Shared names: all workers aggregate into one instrument.
				r.Counter("shared/ops").Inc()
				r.Histogram("shared/lat").Observe(uint64(i))
				r.Gauge("shared/fill").Set(float64(w))
				r.Series("shared/ipc", 64).Append(float64(i), float64(w))
				// Per-worker names: exercise concurrent map growth.
				r.Counter(fmt.Sprintf("worker%d/ops", w)).Inc()
				r.GaugeFunc(fmt.Sprintf("worker%d/fn", w), func() float64 { return float64(w) })
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	snapper.Wait()

	snap := r.Snapshot()
	if got := snap.Counters["shared/ops"]; got != workers*iters {
		t.Errorf("shared counter = %d, want %d (lost updates)", got, workers*iters)
	}
	if got := snap.Histograms["shared/lat"].N; got != workers*iters {
		t.Errorf("shared histogram n = %d, want %d (lost observations)", got, workers*iters)
	}
	for w := 0; w < workers; w++ {
		if got := snap.Counters[fmt.Sprintf("worker%d/ops", w)]; got != iters {
			t.Errorf("worker %d counter = %d, want %d", w, got, iters)
		}
		if got := snap.Gauges[fmt.Sprintf("worker%d/fn", w)]; got != float64(w) {
			t.Errorf("worker %d gauge func = %v, want %d", w, got, w)
		}
	}
	if snap.Series["shared/ipc"] == nil {
		t.Error("shared series missing from snapshot")
	}
}

// TestSnapshotMerge checks the child-registry aggregation arithmetic: two
// registries' snapshots merge into the totals one registry would have seen.
func TestSnapshotMerge(t *testing.T) {
	a, b := New(), New()
	a.Counter("jobs").Add(3)
	b.Counter("jobs").Add(4)
	a.Counter("only_a").Inc()
	b.Counter("only_b").Inc()
	for i := uint64(1); i <= 4; i++ {
		a.Histogram("lat").Observe(i)
	}
	b.Histogram("lat").Observe(1024)
	a.Gauge("fill").Set(0.25)
	b.Gauge("fill").Set(0.75)
	a.Series("s", 8).Append(1, 1)
	b.Series("s", 8).Append(2, 2)

	m := a.Snapshot().Merge(b.Snapshot())
	if m.Counters["jobs"] != 7 || m.Counters["only_a"] != 1 || m.Counters["only_b"] != 1 {
		t.Errorf("merged counters = %v", m.Counters)
	}
	h := m.Histograms["lat"]
	if h.N != 5 || h.Sum != 1024+10 {
		t.Errorf("merged histogram n=%d sum=%d, want n=5 sum=1034", h.N, h.Sum)
	}
	if h.Mean != float64(1034)/5 {
		t.Errorf("merged histogram mean=%v", h.Mean)
	}
	// p99 target ceil(0.99*5)=5 lands in the 1024 bucket, upper bound 2047.
	if h.P99 != 2047 {
		t.Errorf("merged p99 = %d, want 2047", h.P99)
	}
	// Gauges and series: last writer (the argument) wins.
	if m.Gauges["fill"] != 0.75 {
		t.Errorf("merged gauge = %v, want 0.75", m.Gauges["fill"])
	}
	if len(m.Series["s"]) != 1 || m.Series["s"][0].X != 2 {
		t.Errorf("merged series = %v, want b's points", m.Series["s"])
	}

	// Merging with an empty snapshot is the identity in both directions.
	if got := m.Merge(Snapshot{}); got.Counters["jobs"] != 7 {
		t.Errorf("merge with empty lost counters: %v", got.Counters)
	}
	if got := (Snapshot{}).Merge(m); got.Counters["jobs"] != 7 || got.Gauges["fill"] != 0.75 {
		t.Errorf("empty merge lost data: %+v", got)
	}
}
