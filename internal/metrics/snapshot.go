package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"secdir/internal/stats"
)

// HistogramSnapshot is the exportable state of a Histogram: the raw
// power-of-two bucket counts (which make delta arithmetic exact) plus derived
// summary fields.
type HistogramSnapshot struct {
	// N is the observation count and Sum the sum of observations.
	N   uint64 `json:"n"`
	Sum uint64 `json:"sum"`
	// Mean is Sum/N (0 when empty).
	Mean float64 `json:"mean"`
	// P50/P90/P99 are bucket-upper-bound quantiles.
	P50 uint64 `json:"p50"`
	P90 uint64 `json:"p90"`
	P99 uint64 `json:"p99"`
	// Buckets holds the non-empty buckets keyed by bucket index; bucket k
	// counts values in [2^(k-1), 2^k), bucket 0 the value 0, bucket 63 the
	// overflow.
	Buckets map[int]uint64 `json:"buckets,omitempty"`
}

// histSnapshot converts a stats.Histogram.
func histSnapshot(h *stats.Histogram) HistogramSnapshot {
	s := HistogramSnapshot{
		N:    h.N(),
		Sum:  h.Sum(),
		Mean: h.Mean(),
		P50:  h.Quantile(0.5),
		P90:  h.Quantile(0.9),
		P99:  h.Quantile(0.99),
	}
	counts := h.Counts()
	for b, c := range counts {
		if c != 0 {
			if s.Buckets == nil {
				s.Buckets = map[int]uint64{}
			}
			s.Buckets[b] = c
		}
	}
	return s
}

// Sub returns the histogram delta s - base, recomputing the derived fields
// from the subtracted buckets. base must be an earlier snapshot of the same
// histogram (bucket counts monotone), or the counts saturate at zero.
func (s HistogramSnapshot) Sub(base HistogramSnapshot) HistogramSnapshot {
	d := HistogramSnapshot{
		N:   satSub(s.N, base.N),
		Sum: satSub(s.Sum, base.Sum),
	}
	for b, c := range s.Buckets {
		c = satSub(c, base.Buckets[b])
		if c != 0 {
			if d.Buckets == nil {
				d.Buckets = map[int]uint64{}
			}
			d.Buckets[b] = c
		}
	}
	if d.N > 0 {
		d.Mean = float64(d.Sum) / float64(d.N)
		d.P50 = bucketQuantile(d.Buckets, d.N, 0.5)
		d.P90 = bucketQuantile(d.Buckets, d.N, 0.9)
		d.P99 = bucketQuantile(d.Buckets, d.N, 0.99)
	}
	return d
}

// bucketQuantile mirrors stats.Histogram.Quantile over a sparse bucket map:
// it returns the upper edge of the bucket containing the q-quantile.
func bucketQuantile(buckets map[int]uint64, total uint64, q float64) uint64 {
	target := uint64(math.Ceil(q * float64(total)))
	if target == 0 {
		target = 1
	}
	var seen uint64
	for b := 0; b < 64; b++ {
		seen += buckets[b]
		if seen >= target {
			_, hi := stats.BucketBounds(b)
			return hi
		}
	}
	return 1<<63 - 1
}

// satSub returns a-b, saturating at zero.
func satSub(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}

// Snapshot is a point-in-time copy of a registry's metrics, suitable for JSON
// export and for delta arithmetic between two points of a run.
type Snapshot struct {
	// Counters maps counter name to count.
	Counters map[string]uint64 `json:"counters,omitempty"`
	// Gauges maps gauge name to value; registered GaugeFuncs are evaluated
	// at snapshot time and appear here.
	Gauges map[string]float64 `json:"gauges,omitempty"`
	// Histograms maps histogram name to its bucket snapshot.
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	// Series maps series name to its retained points.
	Series map[string][]Point `json:"series,omitempty"`
}

// Snapshot captures the registry's current state, evaluating gauge
// functions. On a nil registry it returns an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]uint64, len(r.counters))
		for n, c := range r.counters {
			s.Counters[n] = c.Value()
		}
	}
	if len(r.gauges)+len(r.gaugeFns) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges)+len(r.gaugeFns))
		for n, g := range r.gauges {
			s.Gauges[n] = g.Value()
		}
		for n, fn := range r.gaugeFns {
			s.Gauges[n] = fn()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for n, h := range r.hists {
			s.Histograms[n] = histSnapshot(&h.h)
		}
	}
	if len(r.series) > 0 {
		s.Series = make(map[string][]Point, len(r.series))
		for n, sr := range r.series {
			s.Series[n] = sr.Points()
		}
	}
	return s
}

// Sub returns the delta snapshot s - base: counters and histograms subtract
// (saturating at zero, with histogram quantiles recomputed from the delta
// buckets); gauges and series keep their current values, since neither is
// cumulative. Names present only in base are dropped.
func (s Snapshot) Sub(base Snapshot) Snapshot {
	d := Snapshot{Gauges: s.Gauges, Series: s.Series}
	if len(s.Counters) > 0 {
		d.Counters = make(map[string]uint64, len(s.Counters))
		for n, v := range s.Counters {
			d.Counters[n] = satSub(v, base.Counters[n])
		}
	}
	if len(s.Histograms) > 0 {
		d.Histograms = make(map[string]HistogramSnapshot, len(s.Histograms))
		for n, h := range s.Histograms {
			d.Histograms[n] = h.Sub(base.Histograms[n])
		}
	}
	return d
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteText writes the snapshot as a sorted human-readable listing.
func (s Snapshot) WriteText(w io.Writer) error {
	for _, n := range sortedKeys(s.Counters) {
		if _, err := fmt.Fprintf(w, "counter   %-40s %d\n", n, s.Counters[n]); err != nil {
			return err
		}
	}
	for _, n := range sortedKeys(s.Gauges) {
		v := s.Gauges[n]
		if math.Abs(v) < 1000 && v == math.Trunc(v) {
			if _, err := fmt.Fprintf(w, "gauge     %-40s %g\n", n, v); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "gauge     %-40s %.4f\n", n, v); err != nil {
			return err
		}
	}
	for _, n := range sortedKeys(s.Histograms) {
		h := s.Histograms[n]
		if _, err := fmt.Fprintf(w, "histogram %-40s n=%d mean=%.2f p50<=%d p90<=%d p99<=%d\n",
			n, h.N, h.Mean, h.P50, h.P90, h.P99); err != nil {
			return err
		}
	}
	for _, n := range sortedKeys(s.Series) {
		pts := s.Series[n]
		if _, err := fmt.Fprintf(w, "series    %-40s %d points", n, len(pts)); err != nil {
			return err
		}
		if len(pts) > 0 {
			last := pts[len(pts)-1]
			if _, err := fmt.Fprintf(w, " (last x=%.0f y=%.4f)", last.X, last.Y); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
