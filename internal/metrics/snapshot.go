package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"secdir/internal/stats"
)

// HistogramSnapshot is the exportable state of a Histogram: the raw
// power-of-two bucket counts (which make delta arithmetic exact) plus derived
// summary fields.
type HistogramSnapshot struct {
	// N is the observation count and Sum the sum of observations.
	N   uint64 `json:"n"`
	Sum uint64 `json:"sum"`
	// Mean is Sum/N (0 when empty).
	Mean float64 `json:"mean"`
	// P50/P90/P99 are bucket-upper-bound quantiles.
	P50 uint64 `json:"p50"`
	P90 uint64 `json:"p90"`
	P99 uint64 `json:"p99"`
	// Buckets holds the non-empty buckets keyed by bucket index; bucket k
	// counts values in [2^(k-1), 2^k), bucket 0 the value 0, bucket 63 the
	// overflow.
	Buckets map[int]uint64 `json:"buckets,omitempty"`
}

// histSnapshot converts a stats.Histogram.
func histSnapshot(h *stats.Histogram) HistogramSnapshot {
	s := HistogramSnapshot{
		N:    h.N(),
		Sum:  h.Sum(),
		Mean: h.Mean(),
		P50:  h.Quantile(0.5),
		P90:  h.Quantile(0.9),
		P99:  h.Quantile(0.99),
	}
	counts := h.Counts()
	for b, c := range counts {
		if c != 0 {
			if s.Buckets == nil {
				s.Buckets = map[int]uint64{}
			}
			s.Buckets[b] = c
		}
	}
	return s
}

// Sub returns the histogram delta s - base, recomputing the derived fields
// from the subtracted buckets. base must be an earlier snapshot of the same
// histogram (bucket counts monotone), or the counts saturate at zero.
func (s HistogramSnapshot) Sub(base HistogramSnapshot) HistogramSnapshot {
	d := HistogramSnapshot{
		N:   satSub(s.N, base.N),
		Sum: satSub(s.Sum, base.Sum),
	}
	for b, c := range s.Buckets {
		c = satSub(c, base.Buckets[b])
		if c != 0 {
			if d.Buckets == nil {
				d.Buckets = map[int]uint64{}
			}
			d.Buckets[b] = c
		}
	}
	if d.N > 0 {
		d.Mean = float64(d.Sum) / float64(d.N)
		d.P50 = bucketQuantile(d.Buckets, d.N, 0.5)
		d.P90 = bucketQuantile(d.Buckets, d.N, 0.9)
		d.P99 = bucketQuantile(d.Buckets, d.N, 0.99)
	}
	return d
}

// bucketQuantile mirrors stats.Histogram.Quantile over a sparse bucket map:
// it returns the upper edge of the bucket containing the q-quantile.
func bucketQuantile(buckets map[int]uint64, total uint64, q float64) uint64 {
	target := uint64(math.Ceil(q * float64(total)))
	if target == 0 {
		target = 1
	}
	var seen uint64
	for b := 0; b < 64; b++ {
		seen += buckets[b]
		if seen >= target {
			_, hi := stats.BucketBounds(b)
			return hi
		}
	}
	return 1<<63 - 1
}

// satSub returns a-b, saturating at zero.
func satSub(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}

// Snapshot is a point-in-time copy of a registry's metrics, suitable for JSON
// export and for delta arithmetic between two points of a run.
type Snapshot struct {
	// Counters maps counter name to count.
	Counters map[string]uint64 `json:"counters,omitempty"`
	// Gauges maps gauge name to value; registered GaugeFuncs are evaluated
	// at snapshot time and appear here.
	Gauges map[string]float64 `json:"gauges,omitempty"`
	// Histograms maps histogram name to its bucket snapshot.
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	// Series maps series name to its retained points.
	Series map[string][]Point `json:"series,omitempty"`
}

// Snapshot captures the registry's current state, evaluating gauge
// functions. On a nil registry it returns an empty snapshot. Snapshot is safe
// to call while other goroutines mutate the registry: each instrument is read
// atomically, though the snapshot as a whole is not one instant across
// instruments. Gauge functions are evaluated outside the registry's locks.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	// Collect handle references shard by shard under each shard's read lock,
	// then read the instruments without holding any registry lock (every
	// handle is individually thread-safe, and gauge funcs may be arbitrarily
	// slow or themselves touch the registry).
	type namedFn struct {
		name string
		fn   func() float64
	}
	var (
		counters map[string]*Counter
		gauges   map[string]*Gauge
		fns      []namedFn
		hists    map[string]*Histogram
		series   map[string]*Series
	)
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.RLock()
		for n, c := range sh.counters {
			if counters == nil {
				counters = map[string]*Counter{}
			}
			counters[n] = c
		}
		for n, g := range sh.gauges {
			if gauges == nil {
				gauges = map[string]*Gauge{}
			}
			gauges[n] = g
		}
		for n, fn := range sh.gaugeFns {
			fns = append(fns, namedFn{n, fn})
		}
		for n, h := range sh.hists {
			if hists == nil {
				hists = map[string]*Histogram{}
			}
			hists[n] = h
		}
		for n, sr := range sh.series {
			if series == nil {
				series = map[string]*Series{}
			}
			series[n] = sr
		}
		sh.mu.RUnlock()
	}
	if len(counters) > 0 {
		s.Counters = make(map[string]uint64, len(counters))
		for n, c := range counters {
			s.Counters[n] = c.Value()
		}
	}
	if len(gauges)+len(fns) > 0 {
		s.Gauges = make(map[string]float64, len(gauges)+len(fns))
		for n, g := range gauges {
			s.Gauges[n] = g.Value()
		}
		for _, nf := range fns {
			s.Gauges[nf.name] = nf.fn()
		}
	}
	if len(hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(hists))
		for n, h := range hists {
			s.Histograms[n] = h.snapshot()
		}
	}
	if len(series) > 0 {
		s.Series = make(map[string][]Point, len(series))
		for n, sr := range series {
			s.Series[n] = sr.Points()
		}
	}
	return s
}

// Sub returns the delta snapshot s - base: counters and histograms subtract
// (saturating at zero, with histogram quantiles recomputed from the delta
// buckets); gauges and series keep their current values, since neither is
// cumulative. Names present only in base are dropped.
func (s Snapshot) Sub(base Snapshot) Snapshot {
	d := Snapshot{Gauges: s.Gauges, Series: s.Series}
	if len(s.Counters) > 0 {
		d.Counters = make(map[string]uint64, len(s.Counters))
		for n, v := range s.Counters {
			d.Counters[n] = satSub(v, base.Counters[n])
		}
	}
	if len(s.Histograms) > 0 {
		d.Histograms = make(map[string]HistogramSnapshot, len(s.Histograms))
		for n, h := range s.Histograms {
			d.Histograms[n] = h.Sub(base.Histograms[n])
		}
	}
	return d
}

// Add returns the histogram sum s + other: bucket-wise addition with the
// derived fields recomputed — the inverse of Sub, used to merge child
// registries into an aggregate.
func (s HistogramSnapshot) Add(other HistogramSnapshot) HistogramSnapshot {
	d := HistogramSnapshot{
		N:   s.N + other.N,
		Sum: s.Sum + other.Sum,
	}
	for _, src := range []map[int]uint64{s.Buckets, other.Buckets} {
		for b, c := range src {
			if c != 0 {
				if d.Buckets == nil {
					d.Buckets = map[int]uint64{}
				}
				d.Buckets[b] += c
			}
		}
	}
	if d.N > 0 {
		d.Mean = float64(d.Sum) / float64(d.N)
		d.P50 = bucketQuantile(d.Buckets, d.N, 0.5)
		d.P90 = bucketQuantile(d.Buckets, d.N, 0.9)
		d.P99 = bucketQuantile(d.Buckets, d.N, 0.99)
	}
	return d
}

// Merge returns the union snapshot s + other: counters and histograms add,
// gauges and series take other's value when present (last writer wins, like
// the live instruments). Neither input is modified. Merge is how a server
// folds completed per-job child registries into one cumulative view (see the
// package comment on GaugeFunc for why engines attach to child registries).
func (s Snapshot) Merge(other Snapshot) Snapshot {
	var d Snapshot
	if len(s.Counters)+len(other.Counters) > 0 {
		d.Counters = make(map[string]uint64, len(s.Counters)+len(other.Counters))
		for n, v := range s.Counters {
			d.Counters[n] = v
		}
		for n, v := range other.Counters {
			d.Counters[n] += v
		}
	}
	if len(s.Gauges)+len(other.Gauges) > 0 {
		d.Gauges = make(map[string]float64, len(s.Gauges)+len(other.Gauges))
		for n, v := range s.Gauges {
			d.Gauges[n] = v
		}
		for n, v := range other.Gauges {
			d.Gauges[n] = v
		}
	}
	if len(s.Histograms)+len(other.Histograms) > 0 {
		d.Histograms = make(map[string]HistogramSnapshot, len(s.Histograms)+len(other.Histograms))
		for n, h := range s.Histograms {
			d.Histograms[n] = h
		}
		for n, h := range other.Histograms {
			d.Histograms[n] = d.Histograms[n].Add(h)
		}
	}
	if len(s.Series)+len(other.Series) > 0 {
		d.Series = make(map[string][]Point, len(s.Series)+len(other.Series))
		for n, pts := range s.Series {
			d.Series[n] = pts
		}
		for n, pts := range other.Series {
			d.Series[n] = pts
		}
	}
	return d
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteText writes the snapshot as a sorted human-readable listing.
func (s Snapshot) WriteText(w io.Writer) error {
	for _, n := range sortedKeys(s.Counters) {
		if _, err := fmt.Fprintf(w, "counter   %-40s %d\n", n, s.Counters[n]); err != nil {
			return err
		}
	}
	for _, n := range sortedKeys(s.Gauges) {
		v := s.Gauges[n]
		if math.Abs(v) < 1000 && v == math.Trunc(v) {
			if _, err := fmt.Fprintf(w, "gauge     %-40s %g\n", n, v); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "gauge     %-40s %.4f\n", n, v); err != nil {
			return err
		}
	}
	for _, n := range sortedKeys(s.Histograms) {
		h := s.Histograms[n]
		if _, err := fmt.Fprintf(w, "histogram %-40s n=%d mean=%.2f p50<=%d p90<=%d p99<=%d\n",
			n, h.N, h.Mean, h.P50, h.P90, h.P99); err != nil {
			return err
		}
	}
	for _, n := range sortedKeys(s.Series) {
		pts := s.Series[n]
		if _, err := fmt.Fprintf(w, "series    %-40s %d points", n, len(pts)); err != nil {
			return err
		}
		if len(pts) > 0 {
			last := pts[len(pts)-1]
			if _, err := fmt.Fprintf(w, " (last x=%.0f y=%.4f)", last.X, last.Y); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
