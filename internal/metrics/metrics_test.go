package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNilRegistryAndHandlesAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	s := r.Series("s", 8)
	r.GaugeFunc("f", func() float64 { return 1 })
	if c != nil || g != nil || h != nil || s != nil {
		t.Fatalf("nil registry handed out non-nil handles: %v %v %v %v", c, g, h, s)
	}
	// All of these must be safe no-ops.
	c.Inc()
	c.Add(5)
	g.Set(3)
	h.Observe(7)
	s.Append(1, 2)
	if c.Value() != 0 || g.Value() != 0 || h.N() != 0 || s.Len() != 0 {
		t.Fatal("nil handles reported non-zero state")
	}
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms)+len(snap.Series) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", snap)
	}
}

func TestGetOrCreateAggregates(t *testing.T) {
	r := New()
	a := r.Counter("x")
	b := r.Counter("x")
	if a != b {
		t.Fatal("same name returned distinct counters")
	}
	a.Inc()
	b.Add(2)
	if got := r.Counter("x").Value(); got != 3 {
		t.Fatalf("aggregated counter = %d, want 3", got)
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Fatal("same name returned distinct histograms")
	}
	if r.Series("s", 16) != r.Series("s", 999) {
		t.Fatal("same name returned distinct series")
	}
}

func TestHotPathDoesNotAllocate(t *testing.T) {
	r := New()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(1.5)
		h.Observe(42)
	}); n != 0 {
		t.Fatalf("hot path allocated %.1f times per run, want 0", n)
	}
	var nilC *Counter
	var nilH *Histogram
	if n := testing.AllocsPerRun(1000, func() {
		nilC.Inc()
		nilH.Observe(42)
	}); n != 0 {
		t.Fatalf("disabled path allocated %.1f times per run, want 0", n)
	}
}

func TestSeriesDecimationCoversWholeRun(t *testing.T) {
	r := New()
	s := r.Series("ipc", 8)
	for i := 0; i < 1000; i++ {
		s.Append(float64(i), float64(i)*2)
	}
	pts := s.Points()
	if len(pts) == 0 || len(pts) > 9 {
		t.Fatalf("series retained %d points, want 1..9", len(pts))
	}
	// Decimation must preserve ordering and keep the first point.
	if pts[0].X != 0 {
		t.Fatalf("first retained point x=%v, want 0", pts[0].X)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].X <= pts[i-1].X {
			t.Fatalf("series out of order at %d: %v after %v", i, pts[i], pts[i-1])
		}
	}
	// The retained window must span most of the run, not just the tail.
	if last := pts[len(pts)-1].X; last < 500 {
		t.Fatalf("last retained point x=%v, want coverage near the end of the run", last)
	}
}

func TestSnapshotDeltaArithmetic(t *testing.T) {
	r := New()
	c := r.Counter("ops")
	h := r.Histogram("lat")
	r.Gauge("fill").Set(0.25)
	r.GaugeFunc("fn", func() float64 { return 7 })

	c.Add(10)
	for i := uint64(1); i <= 8; i++ {
		h.Observe(i) // buckets 1..4
	}
	base := r.Snapshot()
	if base.Gauges["fn"] != 7 {
		t.Fatalf("gauge func not evaluated at snapshot: %v", base.Gauges)
	}

	c.Add(5)
	h.Observe(0)
	h.Observe(1024) // bucket 11
	cur := r.Snapshot()
	d := cur.Sub(base)

	if d.Counters["ops"] != 5 {
		t.Fatalf("delta counter = %d, want 5", d.Counters["ops"])
	}
	dh := d.Histograms["lat"]
	if dh.N != 2 || dh.Sum != 1024 {
		t.Fatalf("delta histogram n=%d sum=%d, want n=2 sum=1024", dh.N, dh.Sum)
	}
	if dh.Mean != 512 {
		t.Fatalf("delta histogram mean=%v, want 512", dh.Mean)
	}
	if dh.Buckets[0] != 1 || dh.Buckets[11] != 1 || len(dh.Buckets) != 2 {
		t.Fatalf("delta buckets = %v, want {0:1, 11:1}", dh.Buckets)
	}
	// p50 of {0, 1024}: first bucket reaching target 1 is bucket 0 -> 0.
	if dh.P50 != 0 {
		t.Fatalf("delta p50 = %d, want 0", dh.P50)
	}
	// p99 target 2 lands in bucket 11, upper bound 2047.
	if dh.P99 != 2047 {
		t.Fatalf("delta p99 = %d, want 2047", dh.P99)
	}

	// Subtracting a snapshot from itself zeroes counters and histograms.
	z := cur.Sub(cur)
	if z.Counters["ops"] != 0 || z.Histograms["lat"].N != 0 {
		t.Fatalf("self-delta not zero: %+v", z)
	}
	// Gauges are not cumulative: the delta carries the current value.
	if z.Gauges["fill"] != 0.25 {
		t.Fatalf("self-delta gauge = %v, want current value 0.25", z.Gauges["fill"])
	}
}

// TestSnapshotSubTable is a table-driven check of the delta arithmetic edge
// cases: names missing from the base, saturating subtraction, and quantile
// recomputation from sparse delta buckets.
func TestSnapshotSubTable(t *testing.T) {
	tests := []struct {
		name      string
		base, cur Snapshot
		counter   string
		want      uint64
	}{
		{
			name:    "missing from base counts in full",
			base:    Snapshot{Counters: map[string]uint64{}},
			cur:     Snapshot{Counters: map[string]uint64{"new": 7}},
			counter: "new",
			want:    7,
		},
		{
			name:    "equal values cancel",
			base:    Snapshot{Counters: map[string]uint64{"c": 4}},
			cur:     Snapshot{Counters: map[string]uint64{"c": 4}},
			counter: "c",
			want:    0,
		},
		{
			name:    "base above current saturates to zero",
			base:    Snapshot{Counters: map[string]uint64{"c": 9}},
			cur:     Snapshot{Counters: map[string]uint64{"c": 4}},
			counter: "c",
			want:    0,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			d := tc.cur.Sub(tc.base)
			if got := d.Counters[tc.counter]; got != tc.want {
				t.Fatalf("delta %q = %d, want %d", tc.counter, got, tc.want)
			}
		})
	}

	histCases := []struct {
		name      string
		base, cur []uint64 // observations
		n         uint64
		p50, p99  uint64
	}{
		{"identical cancels", []uint64{3, 9}, []uint64{3, 9}, 0, 0, 0},
		{"empty base passes through", nil, []uint64{4, 4, 4}, 3, 7, 7},
		{"delta spans buckets", []uint64{1}, []uint64{1, 2, 200}, 2, 3, 255},
	}
	for _, tc := range histCases {
		t.Run(tc.name, func(t *testing.T) {
			mk := func(vals []uint64) Snapshot {
				r := New()
				h := r.Histogram("h")
				for _, v := range vals {
					h.Observe(v)
				}
				// base observations are a prefix of cur's, mirroring real
				// snapshots of one monotone histogram.
				return r.Snapshot()
			}
			d := mk(tc.cur).Sub(mk(tc.base))
			dh := d.Histograms["h"]
			if dh.N != tc.n || dh.P50 != tc.p50 || dh.P99 != tc.p99 {
				t.Fatalf("delta n=%d p50=%d p99=%d, want n=%d p50=%d p99=%d",
					dh.N, dh.P50, dh.P99, tc.n, tc.p50, tc.p99)
			}
		})
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := New()
	r.Counter("a").Add(3)
	r.Histogram("h").Observe(5)
	r.Series("s", 8).Append(1, 2)
	r.Gauge("g").Set(0.5)

	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("snapshot JSON does not parse: %v\n%s", err, buf.String())
	}
	if back.Counters["a"] != 3 || back.Histograms["h"].N != 1 ||
		len(back.Series["s"]) != 1 || back.Gauges["g"] != 0.5 {
		t.Fatalf("round-tripped snapshot lost data: %+v", back)
	}
}

func TestSnapshotTextListsEverything(t *testing.T) {
	r := New()
	r.Counter("engine/writebacks").Add(2)
	r.Gauge("dir/ed_fill").Set(0.75)
	r.Histogram("vd/reloc_depth").Observe(3)
	r.Series("sim/ipc/core0", 8).Append(100, 1.5)

	var buf bytes.Buffer
	if err := r.Snapshot().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"engine/writebacks", "dir/ed_fill", "vd/reloc_depth", "sim/ipc/core0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text snapshot missing %q:\n%s", want, out)
		}
	}
}
