package metrics

import (
	"flag"
	"fmt"
	"os"
)

// CLIFlags bundles the observability flags shared by the cmd tools:
// -metrics, -metrics-json, -cpuprofile, -memprofile. Register with
// RegisterCLIFlags, call Start after flag parsing, and Finish before exit.
type CLIFlags struct {
	// Text enables a human-readable metrics snapshot on stdout at exit.
	Text bool
	// JSONPath, when non-empty, receives a JSON metrics snapshot at exit
	// ("-" writes to stdout).
	JSONPath string
	// CPUProfile, when non-empty, receives a pprof CPU profile of the run.
	CPUProfile string
	// MemProfile, when non-empty, receives a pprof heap profile taken at
	// exit.
	MemProfile string

	stopCPU func() error
}

// RegisterCLIFlags registers the standard observability flags on the flag set
// (pass flag.CommandLine in main) and returns the bundle to consult after
// parsing.
func RegisterCLIFlags(fs *flag.FlagSet) *CLIFlags {
	f := &CLIFlags{}
	fs.BoolVar(&f.Text, "metrics", false, "print a metrics snapshot at exit")
	fs.StringVar(&f.JSONPath, "metrics-json", "", "write a JSON metrics snapshot to this `file` (\"-\" = stdout)")
	fs.StringVar(&f.CPUProfile, "cpuprofile", "", "write a pprof CPU profile to this `file`")
	fs.StringVar(&f.MemProfile, "memprofile", "", "write a pprof heap profile to this `file`")
	return f
}

// Registry returns a fresh registry when either metrics flag was given and
// nil otherwise, so instrumented code sees nil handles and pays nothing.
func (f *CLIFlags) Registry() *Registry {
	if f.Text || f.JSONPath != "" {
		return New()
	}
	return nil
}

// Start begins CPU profiling when -cpuprofile was given. Pair with Finish.
func (f *CLIFlags) Start() error {
	if f.CPUProfile == "" {
		return nil
	}
	stop, err := StartCPUProfile(f.CPUProfile)
	if err != nil {
		return err
	}
	f.stopCPU = stop
	return nil
}

// Finish stops CPU profiling, writes the heap profile, and emits the
// requested snapshots of r (typically the registry from Registry; nil is
// fine and skips the snapshots).
func (f *CLIFlags) Finish(r *Registry) error {
	if f.stopCPU != nil {
		if err := f.stopCPU(); err != nil {
			return err
		}
		f.stopCPU = nil
	}
	if f.MemProfile != "" {
		if err := WriteHeapProfile(f.MemProfile); err != nil {
			return err
		}
	}
	if r == nil {
		return nil
	}
	snap := r.Snapshot()
	if f.Text {
		if err := snap.WriteText(os.Stdout); err != nil {
			return err
		}
	}
	if f.JSONPath != "" {
		if f.JSONPath == "-" {
			return snap.WriteJSON(os.Stdout)
		}
		file, err := os.Create(f.JSONPath)
		if err != nil {
			return err
		}
		if err := snap.WriteJSON(file); err != nil {
			file.Close()
			return fmt.Errorf("writing %s: %w", f.JSONPath, err)
		}
		return file.Close()
	}
	return nil
}
