// Package metrics is the simulator's observability substrate: a registry of
// named counters, gauges, power-of-two histograms (reusing internal/stats)
// and bounded time series, with snapshot/delta export to JSON and text.
//
// The design goals, in order:
//
//  1. Zero cost when disabled. Every handle type is nil-receiver-safe, and a
//     nil *Registry hands out nil handles, so instrumented code records
//     unconditionally — `c.Inc()` on a nil counter is a single branch — and
//     the hot paths never allocate or lock.
//  2. Goroutine safety. Counters and gauges are lock-free atomics; histograms
//     and series take a per-instrument mutex; the name→handle maps are
//     sharded by name hash so concurrent get-or-create calls from many
//     workers rarely contend. Any number of engines, experiment workers, and
//     server jobs may mutate one registry while another goroutine snapshots
//     it.
//  3. Zero allocation on the hot path when enabled. Counter/Gauge/Histogram
//     updates touch pre-registered fixed-size state; Series bounds its memory
//     by decimating in place.
//  4. Get-or-create naming. Registering the same name twice returns the same
//     handle, so per-slice or per-bank instruments naturally aggregate into
//     one machine-wide series.
//
// Concurrency contract: every method on Registry, Counter, Gauge, Histogram
// and Series is safe for concurrent use. Snapshot() may be called at any
// time; it reads each instrument atomically (per instrument — the snapshot
// as a whole is not a single atomic cut across instruments, which is fine
// for monotone counters). The one exception is GaugeFunc callbacks: the
// registry serializes their registration, but it evaluates them at snapshot
// time, so a callback that reads non-thread-safe simulator state (engine
// occupancy) must only be snapshotted while that simulator is quiescent.
// Long-lived servers should attach engines to short-lived child registries
// and merge the final snapshots instead (see Snapshot.Merge).
package metrics

import (
	"hash/maphash"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"secdir/internal/stats"
)

// Counter is a monotonically increasing uint64. All methods are safe for
// concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one. Safe on a nil counter (no-op).
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n. Safe on a nil counter (no-op).
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-write-wins float64 value. All methods are safe for
// concurrent use (the value is stored as atomic float bits).
type Gauge struct {
	bits atomic.Uint64
}

// Set records the current value. Safe on a nil gauge (no-op).
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the last set value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram records uint64 observations in power-of-two buckets. A mutex
// serializes observations and snapshots; the critical section is a few array
// increments, so contention stays low even with many concurrent writers.
type Histogram struct {
	mu sync.Mutex
	h  stats.Histogram
}

// Observe records one observation. Safe on a nil histogram (no-op).
func (h *Histogram) Observe(v uint64) {
	if h != nil {
		h.mu.Lock()
		h.h.Add(v)
		h.mu.Unlock()
	}
}

// N returns the observation count (0 on nil).
func (h *Histogram) N() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.h.N()
}

// snapshot exports the histogram state under its lock.
func (h *Histogram) snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return histSnapshot(&h.h)
}

// Point is one sample of a Series.
type Point struct {
	// X is the sample position (typically a cycle count).
	X float64 `json:"x"`
	// Y is the sampled value.
	Y float64 `json:"y"`
}

// Series is a bounded append-only time series. When the capacity is reached
// the series decimates itself in place — every other retained point is
// dropped and the effective sampling stride doubles — so it covers the whole
// run with bounded memory instead of retaining only a recent window.
//
// A mutex makes Append/Points safe for concurrent use; note that samples
// appended by concurrent runs interleave, so a shared series' X values are
// only monotone within one producer.
type Series struct {
	mu     sync.Mutex
	pts    []Point
	max    int
	stride int // keep every stride-th appended point
	skip   int // appends remaining until the next kept point
}

// defaultSeriesCap bounds a Series that was registered with no explicit
// capacity.
const defaultSeriesCap = 1024

// Append records one sample. Safe on a nil series (no-op).
func (s *Series) Append(x, y float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.skip > 0 {
		s.skip--
		return
	}
	s.skip = s.stride - 1
	if len(s.pts) == s.max {
		// Decimate: keep points 0, 2, 4, ... and double the stride.
		for i := 0; 2*i < len(s.pts); i++ {
			s.pts[i] = s.pts[2*i]
		}
		s.pts = s.pts[:(len(s.pts)+1)/2]
		s.stride *= 2
		s.skip = s.stride - 1
	}
	s.pts = append(s.pts, Point{X: x, Y: y})
}

// Points returns the retained samples, oldest first (nil on a nil series).
func (s *Series) Points() []Point {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Point, len(s.pts))
	copy(out, s.pts)
	return out
}

// Len returns the number of retained samples (0 on nil).
func (s *Series) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pts)
}

// numShards splits the registry's name→handle maps. Handles are pointers, so
// once a caller holds one the shard is out of the picture; sharding only has
// to keep get-or-create (and gauge-func registration) from serializing a
// worker pool. 16 shards cover any realistic core count.
const numShards = 16

// shard is one partition of the registry's name→handle maps, guarded by its
// own RWMutex.
type shard struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	gaugeFns map[string]func() float64
	hists    map[string]*Histogram
	series   map[string]*Series
}

// Registry holds named metrics. The zero value is not usable; call New. A nil
// *Registry is a valid "metrics disabled" registry: every accessor returns a
// nil handle and Snapshot returns an empty snapshot. A non-nil Registry is
// safe for concurrent use by any number of goroutines.
type Registry struct {
	shards [numShards]shard
}

// shardSeed keys the name hash; process-global so every registry distributes
// names identically.
var shardSeed = maphash.MakeSeed()

// New returns an empty registry.
func New() *Registry {
	r := &Registry{}
	for i := range r.shards {
		s := &r.shards[i]
		s.counters = map[string]*Counter{}
		s.gauges = map[string]*Gauge{}
		s.gaugeFns = map[string]func() float64{}
		s.hists = map[string]*Histogram{}
		s.series = map[string]*Series{}
	}
	return r
}

// shardFor picks the shard owning name.
func (r *Registry) shardFor(name string) *shard {
	return &r.shards[maphash.String(shardSeed, name)%numShards]
}

// Counter returns the named counter, creating it on first use. Returns nil on
// a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	sh := r.shardFor(name)
	sh.mu.RLock()
	c, ok := sh.counters[name]
	sh.mu.RUnlock()
	if ok {
		return c
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if c, ok = sh.counters[name]; !ok {
		c = &Counter{}
		sh.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil on a
// nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	sh := r.shardFor(name)
	sh.mu.RLock()
	g, ok := sh.gauges[name]
	sh.mu.RUnlock()
	if ok {
		return g
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if g, ok = sh.gauges[name]; !ok {
		g = &Gauge{}
		sh.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a callback evaluated at snapshot time — the right shape
// for occupancy-style metrics whose current value is derivable from simulator
// state at no hot-path cost. Re-registering a name replaces the callback
// (the most recently attached engine wins). No-op on a nil registry.
//
// The callback itself runs outside the registry's locks; see the package
// comment for the quiescence requirement on non-thread-safe callbacks.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	if r == nil {
		return
	}
	sh := r.shardFor(name)
	sh.mu.Lock()
	sh.gaugeFns[name] = fn
	sh.mu.Unlock()
}

// Histogram returns the named histogram, creating it on first use. Returns
// nil on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	sh := r.shardFor(name)
	sh.mu.RLock()
	h, ok := sh.hists[name]
	sh.mu.RUnlock()
	if ok {
		return h
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if h, ok = sh.hists[name]; !ok {
		h = &Histogram{}
		sh.hists[name] = h
	}
	return h
}

// Series returns the named series, creating it with the given retained-point
// capacity on first use (values < 2 fall back to a default). Returns nil on a
// nil registry.
func (r *Registry) Series(name string, capacity int) *Series {
	if r == nil {
		return nil
	}
	sh := r.shardFor(name)
	sh.mu.RLock()
	s, ok := sh.series[name]
	sh.mu.RUnlock()
	if ok {
		return s
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if s, ok = sh.series[name]; !ok {
		if capacity < 2 {
			capacity = defaultSeriesCap
		}
		s = &Series{max: capacity, stride: 1}
		sh.series[name] = s
	}
	return s
}

// sortedKeys returns the map's keys in lexical order.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
