// Package metrics is the simulator's observability substrate: a registry of
// named counters, gauges, power-of-two histograms (reusing internal/stats)
// and bounded time series, with snapshot/delta export to JSON and text.
//
// The design goals, in order:
//
//  1. Zero cost when disabled. Every handle type is nil-receiver-safe, and a
//     nil *Registry hands out nil handles, so instrumented code records
//     unconditionally — `c.Inc()` on a nil counter is a single branch — and
//     the hot paths never allocate or lock.
//  2. Zero allocation on the hot path when enabled. Counter/Gauge/Histogram
//     updates touch pre-registered fixed-size state; Series bounds its memory
//     by decimating in place.
//  3. Get-or-create naming. Registering the same name twice returns the same
//     handle, so per-slice or per-bank instruments naturally aggregate into
//     one machine-wide series.
//
// The registry itself is not safe for concurrent mutation: the simulator is
// sequential per engine, and concurrent experiments attach one registry per
// engine. Snapshot() may be called at any transaction boundary.
package metrics

import (
	"sort"

	"secdir/internal/stats"
)

// Counter is a monotonically increasing uint64.
type Counter struct {
	v uint64
}

// Inc adds one. Safe on a nil counter (no-op).
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds n. Safe on a nil counter (no-op).
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v += n
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a last-write-wins float64 value.
type Gauge struct {
	v float64
}

// Set records the current value. Safe on a nil gauge (no-op).
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.v = v
	}
}

// Value returns the last set value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram records uint64 observations in power-of-two buckets.
type Histogram struct {
	h stats.Histogram
}

// Observe records one observation. Safe on a nil histogram (no-op).
func (h *Histogram) Observe(v uint64) {
	if h != nil {
		h.h.Add(v)
	}
}

// N returns the observation count (0 on nil).
func (h *Histogram) N() uint64 {
	if h == nil {
		return 0
	}
	return h.h.N()
}

// Point is one sample of a Series.
type Point struct {
	// X is the sample position (typically a cycle count).
	X float64 `json:"x"`
	// Y is the sampled value.
	Y float64 `json:"y"`
}

// Series is a bounded append-only time series. When the capacity is reached
// the series decimates itself in place — every other retained point is
// dropped and the effective sampling stride doubles — so it covers the whole
// run with bounded memory instead of retaining only a recent window.
type Series struct {
	pts    []Point
	max    int
	stride int // keep every stride-th appended point
	skip   int // appends remaining until the next kept point
}

// defaultSeriesCap bounds a Series that was registered with no explicit
// capacity.
const defaultSeriesCap = 1024

// Append records one sample. Safe on a nil series (no-op).
func (s *Series) Append(x, y float64) {
	if s == nil {
		return
	}
	if s.skip > 0 {
		s.skip--
		return
	}
	s.skip = s.stride - 1
	if len(s.pts) == s.max {
		// Decimate: keep points 0, 2, 4, ... and double the stride.
		for i := 0; 2*i < len(s.pts); i++ {
			s.pts[i] = s.pts[2*i]
		}
		s.pts = s.pts[:(len(s.pts)+1)/2]
		s.stride *= 2
		s.skip = s.stride - 1
	}
	s.pts = append(s.pts, Point{X: x, Y: y})
}

// Points returns the retained samples, oldest first (nil on a nil series).
func (s *Series) Points() []Point {
	if s == nil {
		return nil
	}
	out := make([]Point, len(s.pts))
	copy(out, s.pts)
	return out
}

// Len returns the number of retained samples (0 on nil).
func (s *Series) Len() int {
	if s == nil {
		return 0
	}
	return len(s.pts)
}

// Registry holds named metrics. The zero value is not usable; call New. A nil
// *Registry is a valid "metrics disabled" registry: every accessor returns a
// nil handle and Snapshot returns an empty snapshot.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	gaugeFns map[string]func() float64
	hists    map[string]*Histogram
	series   map[string]*Series
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		gaugeFns: map[string]func() float64{},
		hists:    map[string]*Histogram{},
		series:   map[string]*Series{},
	}
}

// Counter returns the named counter, creating it on first use. Returns nil on
// a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil on a
// nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a callback evaluated at snapshot time — the right shape
// for occupancy-style metrics whose current value is derivable from simulator
// state at no hot-path cost. Re-registering a name replaces the callback
// (the most recently attached engine wins). No-op on a nil registry.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	if r == nil {
		return
	}
	r.gaugeFns[name] = fn
}

// Histogram returns the named histogram, creating it on first use. Returns
// nil on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Series returns the named series, creating it with the given retained-point
// capacity on first use (values < 2 fall back to a default). Returns nil on a
// nil registry.
func (r *Registry) Series(name string, capacity int) *Series {
	if r == nil {
		return nil
	}
	s, ok := r.series[name]
	if !ok {
		if capacity < 2 {
			capacity = defaultSeriesCap
		}
		s = &Series{max: capacity, stride: 1}
		r.series[name] = s
	}
	return s
}

// sortedKeys returns the map's keys in lexical order.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
