package metrics

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPUProfile begins writing a CPU profile to path and returns a stop
// function that ends profiling and closes the file. It is the shared
// implementation behind the -cpuprofile flag of the cmd/ tools, giving perf
// work a uniform measurement substrate.
func StartCPUProfile(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("metrics: start cpu profile: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// WriteHeapProfile runs a GC and writes the current heap profile to path —
// the shared implementation behind the -memprofile flag of the cmd/ tools.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("metrics: write heap profile: %w", err)
	}
	return f.Close()
}
