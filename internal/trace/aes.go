package trace

import (
	"encoding/binary"
	"math/rand"

	"secdir/internal/addr"
)

// This file implements AES-128 encryption with the classic four T-table
// (Te0..Te3) structure used by OpenSSL 0.9.8, which the paper's security
// evaluation (§9) runs as the victim. The implementation is functional —
// it passes the FIPS-197 test vector — and every T-table load is traced at
// cache-line granularity, so the access pattern fed to the simulator is the
// real, key-dependent pattern that a conflict-based attacker tries to
// observe.

// sbox is the AES forward S-box.
var sbox = [256]byte{
	0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
	0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
	0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
	0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
	0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
	0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
	0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
	0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
	0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
	0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
	0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
	0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
	0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
	0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
	0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
	0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
}

// te holds the four encryption T-tables: te[0][x] = {02·S[x], S[x], S[x],
// 03·S[x]} and te[i] is te[0] rotated right by i bytes.
var te [4][256]uint32

func init() {
	for x := 0; x < 256; x++ {
		s := uint32(sbox[x])
		s2 := uint32(xtime(sbox[x]))
		s3 := s2 ^ s
		w := s2<<24 | s<<16 | s<<8 | s3
		te[0][x] = w
		te[1][x] = w>>8 | w<<24
		te[2][x] = w>>16 | w<<16
		te[3][x] = w>>24 | w<<8
	}
}

// xtime multiplies by x in GF(2^8) with the AES polynomial.
func xtime(b byte) byte {
	v := uint16(b) << 1
	if b&0x80 != 0 {
		v ^= 0x11b
	}
	return byte(v)
}

// Memory layout of the victim's tables. The T0 base byte address matches the
// region plotted in Figure 6; each 1 KB table spans 16 lines.
const (
	T0Base    = uint64(0x3200)
	tableSpan = 1024
	sboxBase  = T0Base + 4*tableSpan
)

// T0Lines returns the 16 cache lines of the T0 table, the lines whose access
// trace Figure 6 plots.
func T0Lines() []addr.Line {
	out := make([]addr.Line, 16)
	for i := range out {
		out[i] = addr.LineOf(T0Base + uint64(i*addr.LineSize))
	}
	return out
}

// tableLine returns the cache line of entry idx of T-table t (4-byte words,
// 16 per line).
func tableLine(t, idx int) addr.Line {
	return addr.LineOf(T0Base + uint64(t)*tableSpan + uint64(idx)*4)
}

// sboxLine returns the cache line of S-box entry idx (1-byte entries).
func sboxLine(idx int) addr.Line {
	return addr.LineOf(sboxBase + uint64(idx))
}

// AES is an AES-128 cipher whose encryptions emit a cache-line access trace.
type AES struct {
	rk [44]uint32
}

// NewAES expands the 16-byte key.
func NewAES(key [16]byte) *AES {
	a := &AES{}
	var rcon uint32 = 0x01000000
	for i := 0; i < 4; i++ {
		a.rk[i] = binary.BigEndian.Uint32(key[4*i:])
	}
	for i := 4; i < 44; i++ {
		t := a.rk[i-1]
		if i%4 == 0 {
			t = subWord(t<<8|t>>24) ^ rcon
			rcon = uint32(xtime(byte(rcon>>24))) << 24
		}
		a.rk[i] = a.rk[i-4] ^ t
	}
	return a
}

func subWord(w uint32) uint32 {
	return uint32(sbox[w>>24])<<24 | uint32(sbox[w>>16&0xff])<<16 |
		uint32(sbox[w>>8&0xff])<<8 | uint32(sbox[w&0xff])
}

// Encrypt encrypts one block, appending the cache lines of every table load
// to trace (which may be nil). It returns the ciphertext.
func (a *AES) Encrypt(pt [16]byte, trace *[]addr.Line) [16]byte {
	touch := func(l addr.Line) {
		if trace != nil {
			*trace = append(*trace, l)
		}
	}
	var s, t [4]uint32
	for i := 0; i < 4; i++ {
		s[i] = binary.BigEndian.Uint32(pt[4*i:]) ^ a.rk[i]
	}
	for r := 1; r < 10; r++ {
		for i := 0; i < 4; i++ {
			i0 := int(s[i] >> 24)
			i1 := int(s[(i+1)%4] >> 16 & 0xff)
			i2 := int(s[(i+2)%4] >> 8 & 0xff)
			i3 := int(s[(i+3)%4] & 0xff)
			touch(tableLine(0, i0))
			touch(tableLine(1, i1))
			touch(tableLine(2, i2))
			touch(tableLine(3, i3))
			t[i] = te[0][i0] ^ te[1][i1] ^ te[2][i2] ^ te[3][i3] ^ a.rk[4*r+i]
		}
		s = t
	}
	// Final round: SubBytes+ShiftRows via the S-box.
	var out [16]byte
	for i := 0; i < 4; i++ {
		i0 := int(s[i] >> 24)
		i1 := int(s[(i+1)%4] >> 16 & 0xff)
		i2 := int(s[(i+2)%4] >> 8 & 0xff)
		i3 := int(s[(i+3)%4] & 0xff)
		touch(sboxLine(i0))
		touch(sboxLine(i1))
		touch(sboxLine(i2))
		touch(sboxLine(i3))
		w := uint32(sbox[i0])<<24 | uint32(sbox[i1])<<16 | uint32(sbox[i2])<<8 | uint32(sbox[i3])
		w ^= a.rk[40+i]
		binary.BigEndian.PutUint32(out[4*i:], w)
	}
	return out
}

// AESVictim is a Generator that repeatedly encrypts random plaintexts and
// emits the resulting T-table access stream — the victim process of §9.
type AESVictim struct {
	aes   *AES
	rng   *rand.Rand
	queue []addr.Line
	pos   int
	// Blocks counts completed encryptions.
	Blocks uint64
}

// NewAESVictim returns a victim generator with the given key and plaintext
// seed.
func NewAESVictim(key [16]byte, seed int64) *AESVictim {
	return &AESVictim{aes: NewAES(key), rng: rand.New(rand.NewSource(seed))}
}

// Next implements Generator. Table loads are two instructions apart
// (index extraction + XOR), matching the tight T-table inner loop.
func (v *AESVictim) Next() Access {
	if v.pos >= len(v.queue) {
		v.queue = v.queue[:0]
		v.pos = 0
		var pt [16]byte
		v.rng.Read(pt[:])
		v.aes.Encrypt(pt, &v.queue)
		v.Blocks++
	}
	l := v.queue[v.pos]
	v.pos++
	return Access{Gap: 2, Line: l, Write: false}
}
