package trace

import (
	"fmt"

	"secdir/internal/addr"
	"secdir/internal/rng"
)

// Class is the cache-behaviour classification of §8, following Jaleel et al.:
// applications are core-cache fitting, LLC fitting, or LLC thrashing
// according to their L2 and L3 miss rates.
type Class int

const (
	// CCF: the working set fits in the private L2.
	CCF Class = iota
	// LLCF: the working set exceeds the L2 but fits in the shared LLC.
	LLCF
	// LLCT: the working set thrashes the LLC.
	LLCT
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case CCF:
		return "CCF"
	case LLCF:
		return "LLCF"
	case LLCT:
		return "LLCT"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// AppParams characterises one synthetic SPEC-like application. The working
// set and locality parameters are what determine the paper's classification;
// per-application values are chosen so each app lands in its published class.
type AppParams struct {
	Name  string
	Class Class
	// WorkingSetLines is the footprint in cache lines (64 B each).
	WorkingSetLines int
	// HotFraction of non-stream accesses go to the first HotLines lines.
	HotFraction float64
	HotLines    int
	// StreamFraction of accesses walk the working set sequentially.
	StreamFraction float64
	// WriteFraction of accesses are stores.
	WriteFraction float64
	// MeanGap is the mean number of non-memory instructions between
	// accesses (geometric distribution).
	MeanGap int
}

// SpecApps is the catalogue of the 14 SPEC CPU2006 applications used by the
// Table 5 mixes. Footprints are in 64-byte lines: the simulated L2 holds
// 16384 lines (1 MB) and an LLC slice 2816 lines (176 KB of tags / 1.375 MB
// of data), so CCF < 16K, LLCF tens of K, LLCT hundreds of K.
var SpecApps = map[string]AppParams{
	// Core-cache fitting: the hot set fits comfortably in the L2 and takes
	// nearly all accesses; a thin cold tail produces the small L2 miss
	// traffic real CCF applications show.
	"gobmk":   {Name: "gobmk", Class: CCF, WorkingSetLines: 24 << 10, HotFraction: 0.97, HotLines: 5 << 10, StreamFraction: 0, WriteFraction: 0.25, MeanGap: 4},
	"sjeng":   {Name: "sjeng", Class: CCF, WorkingSetLines: 32 << 10, HotFraction: 0.96, HotLines: 6 << 10, StreamFraction: 0, WriteFraction: 0.2, MeanGap: 4},
	"hmmer":   {Name: "hmmer", Class: CCF, WorkingSetLines: 16 << 10, HotFraction: 0.985, HotLines: 2 << 10, StreamFraction: 0.1, WriteFraction: 0.3, MeanGap: 3},
	"gamess":  {Name: "gamess", Class: CCF, WorkingSetLines: 20 << 10, HotFraction: 0.98, HotLines: 3 << 10, StreamFraction: 0, WriteFraction: 0.2, MeanGap: 3},
	"h264ref": {Name: "h264ref", Class: CCF, WorkingSetLines: 28 << 10, HotFraction: 0.95, HotLines: 7 << 10, StreamFraction: 0.05, WriteFraction: 0.3, MeanGap: 3},
	"namd":    {Name: "namd", Class: CCF, WorkingSetLines: 24 << 10, HotFraction: 0.97, HotLines: 4 << 10, StreamFraction: 0, WriteFraction: 0.15, MeanGap: 4},

	// LLC fitting: an L2-resident hot set with heavy reuse plus a cold
	// region that exceeds the L2 but fits in the aggregate LLC. The cold
	// stream keeps the directory churning, which is what exposes the
	// baseline's inclusion victims on the hot set.
	"bzip2":   {Name: "bzip2", Class: LLCF, WorkingSetLines: 48 << 10, HotFraction: 0.75, HotLines: 10 << 10, StreamFraction: 0, WriteFraction: 0.3, MeanGap: 4},
	"omnetpp": {Name: "omnetpp", Class: LLCF, WorkingSetLines: 56 << 10, HotFraction: 0.72, HotLines: 10 << 10, StreamFraction: 0, WriteFraction: 0.35, MeanGap: 5},
	"gromacs": {Name: "gromacs", Class: LLCF, WorkingSetLines: 40 << 10, HotFraction: 0.78, HotLines: 9 << 10, StreamFraction: 0.1, WriteFraction: 0.25, MeanGap: 4},
	"zeusmp":  {Name: "zeusmp", Class: LLCF, WorkingSetLines: 48 << 10, HotFraction: 0.74, HotLines: 10 << 10, StreamFraction: 0.1, WriteFraction: 0.3, MeanGap: 4},

	// LLC thrashing: streaming over footprints far beyond the LLC, with a
	// small reused hot set (loop state) on the side.
	"libquantum": {Name: "libquantum", Class: LLCT, WorkingSetLines: 512 << 10, HotFraction: 0.3, HotLines: 4 << 10, StreamFraction: 0.65, WriteFraction: 0.25, MeanGap: 5},
	"lbm":        {Name: "lbm", Class: LLCT, WorkingSetLines: 768 << 10, HotFraction: 0.25, HotLines: 4 << 10, StreamFraction: 0.7, WriteFraction: 0.4, MeanGap: 5},
	"bwaves":     {Name: "bwaves", Class: LLCT, WorkingSetLines: 640 << 10, HotFraction: 0.3, HotLines: 6 << 10, StreamFraction: 0.65, WriteFraction: 0.2, MeanGap: 5},
	"sphinx3":    {Name: "sphinx3", Class: LLCT, WorkingSetLines: 384 << 10, HotFraction: 0.4, HotLines: 8 << 10, StreamFraction: 0.5, WriteFraction: 0.15, MeanGap: 4},
}

// specGen generates the access stream of one application instance.
type specGen struct {
	p      AppParams
	base   addr.Line
	rng    rng.Rand
	stream int
}

// NewSpecApp returns a Generator for the named application. Each instance
// gets a disjoint address-space region selected by instance, so co-running
// copies never share lines (SPEC mixes are multiprogrammed, not
// multithreaded).
func NewSpecApp(name string, instance int, seed int64) (Generator, error) {
	p, ok := SpecApps[name]
	if !ok {
		return nil, fmt.Errorf("trace: unknown SPEC application %q", name)
	}
	return &specGen{
		p: p,
		// 2^24 lines (1 GB) per instance keeps regions disjoint within the
		// 34-bit line-address space.
		base: addr.Line(uint64(instance+1) << 24),
		rng:  rng.New(seed ^ int64(instance)*0x9E3779B9),
	}, nil
}

// scatter maps a dense working-set line offset into a page-scattered offset
// within a 2^22-line (256 MB) region, emulating a physical page allocator:
// 64-line (4 KB) pages land at pseudo-random, collision-free positions. This
// matters for fidelity: contiguous footprints fill directory sets uniformly
// and never overflow them, whereas page-granular placement yields the
// Poisson-tailed set occupancy — and hence the ED/TD conflicts — that real
// programs exhibit.
func scatter(off int) int {
	page := off >> 6
	sub := off & 63
	// Multiplicative hash by an odd constant is a bijection mod 2^16.
	p := (uint64(page) * 0x9E3779B1) & 0xFFFF
	return int(p)<<6 | sub
}

// geometricGap draws a non-memory instruction gap with the given mean.
func geometricGap(r *rng.Rand, mean int) int {
	if mean <= 0 {
		return 0
	}
	// Geometric with p = 1/(mean+1); cheap inverse-ish sampling. The
	// continue probability is loop-invariant — computing it once keeps the
	// float divide out of the draw loop (identical value, identical draws).
	g := 0
	p := 1.0 / float64(mean+1)
	for r.Float64() > p && g < 8*mean {
		g++
	}
	return g
}

// Next implements Generator.
func (g *specGen) Next() Access {
	p := g.p
	var off int
	switch {
	case g.rng.Float64() < p.StreamFraction:
		g.stream++
		if g.stream >= p.WorkingSetLines {
			g.stream = 0
		}
		off = g.stream
	case g.rng.Float64() < p.HotFraction:
		off = g.rng.Intn(p.HotLines)
	default:
		off = g.rng.Intn(p.WorkingSetLines)
	}
	return Access{
		Gap:   geometricGap(&g.rng, p.MeanGap),
		Line:  g.base + addr.Line(scatter(off)),
		Write: g.rng.Float64() < p.WriteFraction,
	}
}

// SpecMixes lists the 12 application mixes of Table 5: two apps per mix, four
// copies of each on an 8-core machine.
var SpecMixes = [12][2]string{
	{"gobmk", "sjeng"},      // mix0:  CCF, CCF
	{"hmmer", "gamess"},     // mix1:  CCF, CCF
	{"bzip2", "omnetpp"},    // mix2:  LLCF, LLCF
	{"gromacs", "zeusmp"},   // mix3:  LLCF, LLCF
	{"libquantum", "lbm"},   // mix4:  LLCT, LLCT
	{"bwaves", "sphinx3"},   // mix5:  LLCT, LLCT
	{"sjeng", "omnetpp"},    // mix6:  CCF, LLCF
	{"h264ref", "zeusmp"},   // mix7:  CCF, LLCF
	{"gobmk", "libquantum"}, // mix8:  CCF, LLCT
	{"namd", "bwaves"},      // mix9:  CCF, LLCT
	{"omnetpp", "bwaves"},   // mix10: LLCF, LLCT
	{"zeusmp", "lbm"},       // mix11: LLCF, LLCT
}

// NewSpecMix builds Table 5's mix i for the given core count: cores/2 copies
// of the first app on the low cores and cores/2 copies of the second on the
// high cores, each in a private address region.
func NewSpecMix(i, cores int, seed int64) (Workload, error) {
	if i < 0 || i >= len(SpecMixes) {
		return Workload{}, fmt.Errorf("trace: mix index %d out of range", i)
	}
	if cores < 2 || cores%2 != 0 {
		return Workload{}, fmt.Errorf("trace: SPEC mixes need an even core count, got %d", cores)
	}
	w := Workload{Name: fmt.Sprintf("mix%d", i), Gens: make([]Generator, cores)}
	for c := 0; c < cores; c++ {
		app := SpecMixes[i][0]
		if c >= cores/2 {
			app = SpecMixes[i][1]
		}
		g, err := NewSpecApp(app, i*cores+c, seed+int64(c))
		if err != nil {
			return Workload{}, err
		}
		w.Gens[c] = g
	}
	return w, nil
}

// NewParamApp builds a Generator directly from AppParams — used by tests and
// parameter-exploration tools.
func NewParamApp(p AppParams, instance int, seed int64) Generator {
	return &specGen{
		p:    p,
		base: addr.Line(uint64(instance+1) << 24),
		rng:  rng.New(seed ^ int64(instance)*0x9E3779B9),
	}
}
