package trace

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzSDTRDecode drives arbitrary byte images through both .sdtr decoders
// and demands they agree: the zero-copy ParseTrace and the legacy streaming
// ReadTrace must reach the same accept/reject verdict (rejections always
// wrapping ErrBadTrace), and on accept must decode identical records.
// Neither may panic. The seed corpus under testdata/fuzz/FuzzSDTRDecode
// pins the interesting shapes: valid traces, every header-error class,
// truncated bodies, trailing junk, and flag/field extremes.
func FuzzSDTRDecode(f *testing.F) {
	// A small valid trace: one read, one write with the max line address,
	// one max-gap record.
	var valid bytes.Buffer
	if err := WriteTrace(&valid, NewFixed([]Access{
		{Line: 7, Gap: 3},
		{Line: 1<<34 - 1, Write: true, Gap: 0},
		{Line: 0, Gap: 0xFFFF},
	}), 3); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(append(valid.Bytes(), 0xDE, 0xAD, 0xBE, 0xEF))                                // trailing junk
	f.Add(valid.Bytes()[:valid.Len()-5])                                                // truncated body
	f.Add([]byte{})                                                                     // empty input
	f.Add([]byte("SDTR\x01\x00"))                                                       // short header
	f.Add([]byte("SDTR\x01\x00\x00\x00\x00\x00\x00\x00\x00\x00"))                       // zero records
	f.Add([]byte("XXXX\x01\x00\x00\x00\x00\x00\x00\x00\x00\x00"))                       // bad magic
	f.Add([]byte("SDTR\x09\x00\x00\x00\x00\x00\x00\x00\x00\x00"))                       // bad version
	f.Add([]byte("SDTR\x01\x00\xff\xff\xff\xff\xff\xff\xff\xff"))                       // absurd count
	f.Add(append([]byte("SDTR\x01\x00\x01\x00\x00\x00\x00\x00\x00\x00"), make([]byte, 10)...)) // one zero record

	f.Fuzz(func(t *testing.T, data []byte) {
		mt, perr := ParseTrace(data)
		legacy, rerr := ReadTrace(bytes.NewReader(data))

		if (perr == nil) != (rerr == nil) {
			t.Fatalf("verdicts disagree: ParseTrace=%v ReadTrace=%v", perr, rerr)
		}
		if perr != nil {
			if !errors.Is(perr, ErrBadTrace) {
				t.Fatalf("ParseTrace error not ErrBadTrace: %v", perr)
			}
			if !errors.Is(rerr, ErrBadTrace) {
				t.Fatalf("ReadTrace error not ErrBadTrace: %v", rerr)
			}
			return
		}
		if mt.Len() != uint64(len(legacy)) {
			t.Fatalf("record counts disagree: mapped %d, legacy %d", mt.Len(), len(legacy))
		}
		for i := range legacy {
			if got := mt.At(uint64(i)); got != legacy[i] {
				t.Fatalf("record %d disagrees: mapped %+v, legacy %+v", i, got, legacy[i])
			}
		}
		// The replay generator must serve the same records without panicking,
		// including the wrap back to record 0.
		if mt.Len() > 0 {
			rep, err := mt.Replay()
			if err != nil {
				t.Fatalf("Replay() = %v on non-empty trace", err)
			}
			for i := range legacy {
				if got := rep.Next(); got != legacy[i] {
					t.Fatalf("replayed record %d disagrees: %+v vs %+v", i, got, legacy[i])
				}
			}
			if got := rep.Next(); got != legacy[0] {
				t.Fatalf("replay wrap = %+v, want %+v", got, legacy[0])
			}
		}
		if err := mt.Close(); err != nil {
			t.Fatalf("Close = %v", err)
		}
	})
}
