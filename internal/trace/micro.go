package trace

import (
	"math/rand"

	"secdir/internal/addr"
	"secdir/internal/rng"
)

// NewUniform returns a Generator that accesses lines uniformly at random in
// [base, base+lines), with the given write fraction and mean gap.
func NewUniform(base addr.Line, lines int, writeFrac float64, meanGap int, seed int64) Generator {
	r := rng.New(seed)
	return Func(func() Access {
		return Access{
			Gap:   geometricGap(&r, meanGap),
			Line:  base + addr.Line(r.Intn(lines)),
			Write: r.Float64() < writeFrac,
		}
	})
}

// NewStream returns a Generator that walks [base, base+lines) sequentially,
// wrapping around — a streaming (LLC-thrashing) access pattern.
func NewStream(base addr.Line, lines int, writeFrac float64, meanGap int, seed int64) Generator {
	r := rng.New(seed)
	pos := 0
	return Func(func() Access {
		l := base + addr.Line(pos)
		pos++
		if pos >= lines {
			pos = 0
		}
		return Access{
			Gap:   geometricGap(&r, meanGap),
			Line:  l,
			Write: r.Float64() < writeFrac,
		}
	})
}

// NewFixed returns a Generator that replays the given accesses in a loop.
func NewFixed(accesses []Access) Generator {
	i := 0
	return Func(func() Access {
		a := accesses[i%len(accesses)]
		i++
		return a
	})
}

// NewIdle returns a Generator for an idle core: it spins over a single
// private line with long gaps, contributing negligible directory traffic.
func NewIdle(base addr.Line) Generator {
	return Func(func() Access {
		return Access{Gap: 64, Line: base, Write: false}
	})
}

// NewZipf returns a Generator whose line popularity follows a Zipf
// distribution with parameter s > 1 over [base, base+lines) — the canonical
// key-value-store / web-object popularity model. Hot lines are page-scattered
// like the other generators. Zipf sampling keeps math/rand (rand.Zipf has no
// small-state equivalent); it is not on any benchmarked path.
func NewZipf(base addr.Line, lines int, s float64, writeFrac float64, meanGap int, seed int64) Generator {
	zr := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(zr, s, 1, uint64(lines-1))
	r := rng.New(seed ^ 0x2127)
	return Func(func() Access {
		return Access{
			Gap:   geometricGap(&r, meanGap),
			Line:  base + addr.Line(scatter(int(z.Uint64()))),
			Write: r.Float64() < writeFrac,
		}
	})
}
