package trace

import (
	"encoding/hex"
	"testing"
	"testing/quick"

	"secdir/internal/addr"
)

// TestAESFIPS197Vector validates the T-table AES implementation against the
// FIPS-197 Appendix B example — the victim must be a real cipher so its
// table-access trace is the real, key-dependent pattern.
func TestAESFIPS197Vector(t *testing.T) {
	key := [16]byte{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
		0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c}
	pt := [16]byte{0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d,
		0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34}
	want := "3925841d02dc09fbdc118597196a0b32"
	a := NewAES(key)
	ct := a.Encrypt(pt, nil)
	if got := hex.EncodeToString(ct[:]); got != want {
		t.Fatalf("AES(FIPS-197) = %s, want %s", got, want)
	}
}

// TestAESNISTVector checks a second key/plaintext pair (SP 800-38A, AES-128
// ECB vector #1).
func TestAESNISTVector(t *testing.T) {
	key := [16]byte{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
		0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c}
	pt := [16]byte{0x6b, 0xc1, 0xbe, 0xe2, 0x2e, 0x40, 0x9f, 0x96,
		0xe9, 0x3d, 0x7e, 0x11, 0x73, 0x93, 0x17, 0x2a}
	want := "3ad77bb40d7a3660a89ecaf32466ef97"
	ct := NewAES(key).Encrypt(pt, nil)
	if got := hex.EncodeToString(ct[:]); got != want {
		t.Fatalf("AES(SP800-38A) = %s, want %s", got, want)
	}
}

func TestAESTraceShape(t *testing.T) {
	var key, pt [16]byte
	var tr []addr.Line
	NewAES(key).Encrypt(pt, &tr)
	// 9 main rounds × 16 T-table loads + 16 final-round S-box loads.
	if len(tr) != 9*16+16 {
		t.Fatalf("trace length %d, want %d", len(tr), 9*16+16)
	}
	t0 := map[addr.Line]bool{}
	for _, l := range T0Lines() {
		t0[l] = true
	}
	if len(t0) != 16 {
		t.Fatalf("T0 spans %d lines, want 16", len(t0))
	}
	// Each main round's first load is a T0 load.
	t0Loads := 0
	for _, l := range tr {
		if t0[l] {
			t0Loads++
		}
	}
	if t0Loads == 0 {
		t.Fatal("trace contains no T0 loads")
	}
	// All trace lines fall inside the table region.
	lo := addr.LineOf(T0Base)
	hi := addr.LineOf(sboxBase + 256)
	for _, l := range tr {
		if l < lo || l > hi {
			t.Fatalf("trace line %#x outside the table region", uint64(l))
		}
	}
}

func TestAESVictimGenerator(t *testing.T) {
	var key [16]byte
	v := NewAESVictim(key, 1)
	seen := map[addr.Line]bool{}
	for i := 0; i < 1000; i++ {
		a := v.Next()
		if a.Write {
			t.Fatal("AES victim issued a store")
		}
		seen[a.Line] = true
	}
	if v.Blocks == 0 {
		t.Fatal("no encryptions completed")
	}
	if len(seen) < 32 {
		t.Fatalf("trace touches only %d lines", len(seen))
	}
}

func TestScatterBijective(t *testing.T) {
	seen := map[int]bool{}
	for off := 0; off < 1<<16; off += 64 { // one probe per page
		s := scatter(off)
		page := s >> 6
		if seen[page] {
			t.Fatalf("page collision at offset %d", off)
		}
		seen[page] = true
	}
	// Within a page, offsets stay contiguous.
	base := scatter(128)
	for i := 0; i < 64; i++ {
		if scatter(128+i) != base+i {
			t.Fatal("scatter broke intra-page contiguity")
		}
	}
	f := func(off uint16) bool {
		s := scatter(int(off))
		return s >= 0 && s < 1<<22
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSpecAppsClassified(t *testing.T) {
	for name, p := range SpecApps {
		const l2Lines = 16384
		switch p.Class {
		case CCF:
			if p.HotLines > l2Lines/2 {
				t.Errorf("%s: CCF hot set %d too large for the L2", name, p.HotLines)
			}
			if p.HotFraction < 0.9 {
				t.Errorf("%s: CCF hot fraction %v too low", name, p.HotFraction)
			}
		case LLCF:
			if p.WorkingSetLines <= l2Lines {
				t.Errorf("%s: LLCF working set %d fits the L2", name, p.WorkingSetLines)
			}
			if p.WorkingSetLines > 8*22528 {
				t.Errorf("%s: LLCF working set %d exceeds the aggregate LLC", name, p.WorkingSetLines)
			}
		case LLCT:
			if p.WorkingSetLines < 8*22528 {
				t.Errorf("%s: LLCT working set %d does not thrash the LLC", name, p.WorkingSetLines)
			}
		}
	}
}

func TestSpecAppGeneratorBounds(t *testing.T) {
	g, err := NewSpecApp("omnetpp", 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	base := addr.Line(4 << 24)
	for i := 0; i < 10000; i++ {
		a := g.Next()
		if a.Line < base || a.Line >= base+(1<<22) {
			t.Fatalf("access %#x outside the instance region", uint64(a.Line))
		}
		if a.Gap < 0 {
			t.Fatal("negative gap")
		}
	}
	if _, err := NewSpecApp("nonesuch", 0, 1); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestSpecAppDeterministic(t *testing.T) {
	g1, _ := NewSpecApp("bzip2", 0, 99)
	g2, _ := NewSpecApp("bzip2", 0, 99)
	for i := 0; i < 1000; i++ {
		if g1.Next() != g2.Next() {
			t.Fatal("same seed produced different traces")
		}
	}
}

func TestSpecMixLayout(t *testing.T) {
	w, err := NewSpecMix(2, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if w.Cores() != 8 || w.Name != "mix2" {
		t.Fatalf("workload %q with %d cores", w.Name, w.Cores())
	}
	// Different cores use disjoint regions (multiprogrammed, no sharing).
	regions := map[addr.Line]bool{}
	for c := 0; c < 8; c++ {
		a := w.Gens[c].Next()
		region := a.Line >> 24
		if regions[region] {
			t.Fatalf("cores share region %d", region)
		}
		regions[region] = true
	}
	if _, err := NewSpecMix(12, 8, 1); err == nil {
		t.Fatal("out-of-range mix accepted")
	}
	if _, err := NewSpecMix(0, 7, 1); err == nil {
		t.Fatal("odd core count accepted")
	}
}

func TestParsecSharing(t *testing.T) {
	gens, err := NewParsecApp("freqmine", 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Threads must touch overlapping shared lines.
	seen := make([]map[addr.Line]bool, 8)
	for ti, g := range gens {
		seen[ti] = map[addr.Line]bool{}
		for i := 0; i < 30000; i++ {
			seen[ti][g.Next().Line] = true
		}
	}
	shared := 0
	for l := range seen[0] {
		if seen[1][l] {
			shared++
		}
	}
	if shared == 0 {
		t.Fatal("threads 0 and 1 share no lines")
	}
	if _, err := NewParsecApp("nonesuch", 8, 1); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestParsecNamesComplete(t *testing.T) {
	names := ParsecNames()
	if len(names) != len(ParsecApps) {
		t.Fatalf("ParsecNames returned %d of %d", len(names), len(ParsecApps))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatal("names not sorted")
		}
	}
}

func TestMicroGenerators(t *testing.T) {
	u := NewUniform(100, 50, 0.5, 3, 1)
	for i := 0; i < 1000; i++ {
		a := u.Next()
		if a.Line < 100 || a.Line >= 150 {
			t.Fatalf("uniform access %d out of range", a.Line)
		}
	}
	s := NewStream(0, 4, 0, 0, 1)
	want := []addr.Line{0, 1, 2, 3, 0, 1}
	for i, w := range want {
		if got := s.Next().Line; got != w {
			t.Fatalf("stream[%d] = %d, want %d", i, got, w)
		}
	}
	fx := NewFixed([]Access{{Line: 7}, {Line: 9}})
	if fx.Next().Line != 7 || fx.Next().Line != 9 || fx.Next().Line != 7 {
		t.Fatal("fixed replay wrong")
	}
	idle := NewIdle(5)
	if a := idle.Next(); a.Line != 5 || a.Gap == 0 {
		t.Fatalf("idle access %+v", a)
	}
}

func TestClassString(t *testing.T) {
	if CCF.String() != "CCF" || LLCF.String() != "LLCF" || LLCT.String() != "LLCT" {
		t.Fatal("Class.String broken")
	}
}

func TestZipfGenerator(t *testing.T) {
	g := NewZipf(1<<20, 4096, 1.2, 0.1, 3, 1)
	counts := map[addr.Line]int{}
	for i := 0; i < 50000; i++ {
		a := g.Next()
		counts[a.Line]++
	}
	// Zipf popularity: the single hottest line takes a large share and the
	// footprint is much smaller than uniform would give.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 50000/20 {
		t.Errorf("hottest line has only %d/50000 accesses — not Zipf-shaped", max)
	}
	if len(counts) > 3000 {
		t.Errorf("footprint %d too uniform for s=1.2", len(counts))
	}
}
