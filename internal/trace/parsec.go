package trace

import (
	"fmt"
	"sort"

	"secdir/internal/addr"
	"secdir/internal/rng"
)

// ParsecParams characterises one synthetic PARSEC-like multithreaded
// application. Threads share a region (the app's shared data structures) and
// each owns a private region (stack/partition). Shared accesses concentrate
// on a hot window that drifts over the shared region, modelling phase
// behaviour: the same lines are touched by several threads close in time,
// which is what populates multiple L2s — and, under directory pressure, the
// Victim Directories — with shared lines.
type ParsecParams struct {
	Name string
	// SharedLines is the footprint of the shared region, in lines.
	SharedLines int
	// PrivateLines is the per-thread private footprint, in lines.
	PrivateLines int
	// SharedFraction of accesses go to the shared region.
	SharedFraction float64
	// WindowLines is the size of the drifting hot window in the shared
	// region; WindowPeriod is how many shared accesses (app-wide) pass
	// before the window advances by one window length.
	WindowLines  int
	WindowPeriod int
	// WindowFraction of shared accesses hit the hot window (the rest are
	// uniform over the shared region).
	WindowFraction float64
	// LagWindows staggers the threads pipeline-fashion: thread t works on
	// the window LagWindows*t positions behind thread 0.
	LagWindows int
	// OwnedLines gives each thread a partition of the shared structure it
	// predominantly works on (e.g. freqmine's per-thread FP-tree regions):
	// OwnedFraction of accesses go to the thread's own partition and
	// ForeignFraction to a random other thread's. Owner-hot lines stay
	// L2-resident at the owner while directory churn parks their entries in
	// the owner's Victim Directory; a foreign read that misses then finds
	// the entry in the owner's VD — the cross-core VD hits of §10.2.
	OwnedLines      int
	OwnedFraction   float64
	ForeignFraction float64
	// ForeignBurst makes foreign accesses sequential scans of that length
	// (a thread walking another thread's subtree), rather than isolated
	// random reads. Long quiet spells between bursts are what let the
	// owner's entries settle in its VD, so a whole burst of misses can be
	// intercepted there. 0 or 1 means isolated reads.
	ForeignBurst int
	// Write fractions per region.
	SharedWriteFraction  float64
	PrivateWriteFraction float64
	// MeanGap is the mean non-memory instruction gap.
	MeanGap int
}

// ParsecApps is the catalogue of the nine PARSEC applications of Figure 8.
// Footprints reflect the simmedium inputs' relative sizes.
var ParsecApps = map[string]ParsecParams{
	"blackscholes": {Name: "blackscholes", SharedLines: 2 << 10, PrivateLines: 2 << 10, SharedFraction: 0.05, WindowLines: 256, WindowPeriod: 4096, WindowFraction: 0.8, SharedWriteFraction: 0.02, PrivateWriteFraction: 0.3, MeanGap: 6},
	"bodytrack":    {Name: "bodytrack", SharedLines: 48 << 10, PrivateLines: 8 << 10, SharedFraction: 0.35, OwnedLines: 2 << 10, OwnedFraction: 0.3, ForeignFraction: 0.02, ForeignBurst: 64, WindowLines: 2 << 10, WindowPeriod: 8192, WindowFraction: 0.4, SharedWriteFraction: 0.1, PrivateWriteFraction: 0.25, MeanGap: 4},
	"canneal":      {Name: "canneal", SharedLines: 512 << 10, PrivateLines: 4 << 10, SharedFraction: 0.7, OwnedLines: 4 << 10, OwnedFraction: 0.2, ForeignFraction: 0.04, ForeignBurst: 128, WindowLines: 8 << 10, WindowPeriod: 16384, WindowFraction: 0.15, SharedWriteFraction: 0.12, PrivateWriteFraction: 0.2, MeanGap: 5},
	"ferret":       {Name: "ferret", SharedLines: 128 << 10, PrivateLines: 6 << 10, SharedFraction: 0.55, OwnedLines: 3 << 10, OwnedFraction: 0.3, ForeignFraction: 0.05, ForeignBurst: 256, WindowLines: 2 << 10, WindowPeriod: 6144, WindowFraction: 0.3, LagWindows: 1, SharedWriteFraction: 0.08, PrivateWriteFraction: 0.3, MeanGap: 4},
	"fluidanimate": {Name: "fluidanimate", SharedLines: 96 << 10, PrivateLines: 8 << 10, SharedFraction: 0.45, OwnedLines: 3 << 10, OwnedFraction: 0.35, ForeignFraction: 0.03, ForeignBurst: 64, WindowLines: 4 << 10, WindowPeriod: 8192, WindowFraction: 0.3, SharedWriteFraction: 0.15, PrivateWriteFraction: 0.25, MeanGap: 4},
	"freqmine":     {Name: "freqmine", SharedLines: 256 << 10, PrivateLines: 2 << 10, SharedFraction: 0.9, OwnedLines: 4 << 10, OwnedFraction: 0.45, ForeignFraction: 0.13, ForeignBurst: 384, SharedWriteFraction: 0.02, PrivateWriteFraction: 0.1, MeanGap: 4},
	"vips":         {Name: "vips", SharedLines: 128 << 10, PrivateLines: 10 << 10, SharedFraction: 0.3, WindowLines: 8 << 10, WindowPeriod: 4096, WindowFraction: 0.75, LagWindows: 1, SharedWriteFraction: 0.15, PrivateWriteFraction: 0.35, MeanGap: 4},
	"swaptions":    {Name: "swaptions", SharedLines: 1 << 10, PrivateLines: 3 << 10, SharedFraction: 0.04, WindowLines: 128, WindowPeriod: 4096, WindowFraction: 0.8, SharedWriteFraction: 0.02, PrivateWriteFraction: 0.3, MeanGap: 5},
	"x264":         {Name: "x264", SharedLines: 160 << 10, PrivateLines: 6 << 10, SharedFraction: 0.55, OwnedLines: 2 << 10, OwnedFraction: 0.25, ForeignFraction: 0.04, ForeignBurst: 128, WindowLines: 2 << 10, WindowPeriod: 4096, WindowFraction: 0.35, LagWindows: 1, SharedWriteFraction: 0.15, PrivateWriteFraction: 0.3, MeanGap: 4},
}

// ParsecNames returns the catalogue's application names, sorted.
func ParsecNames() []string {
	names := make([]string, 0, len(ParsecApps))
	for n := range ParsecApps {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// parsecApp is the state shared by all threads of one application instance.
type parsecApp struct {
	p          ParsecParams
	threads    int
	sharedBase addr.Line
	ticks      uint64 // app-wide shared-access counter driving the window
}

// parsecThread is one thread's generator.
type parsecThread struct {
	app         *parsecApp
	id          int
	privateBase addr.Line
	rng         rng.Rand

	// Foreign-burst scan state.
	fOther, fPos, fLeft int
}

// NewParsecApp returns one Generator per thread for the named application.
func NewParsecApp(name string, threads int, seed int64) ([]Generator, error) {
	p, ok := ParsecApps[name]
	if !ok {
		return nil, fmt.Errorf("trace: unknown PARSEC application %q", name)
	}
	app := &parsecApp{p: p, threads: threads, sharedBase: addr.Line(1) << 28}
	gens := make([]Generator, threads)
	for t := 0; t < threads; t++ {
		gens[t] = &parsecThread{
			app:         app,
			id:          t,
			privateBase: addr.Line(uint64(t+1) << 24),
			rng:         rng.New(seed + int64(t)*0x51ED270B),
		}
	}
	return gens, nil
}

// NewParsecWorkload wraps NewParsecApp into a Workload with one thread per
// core.
func NewParsecWorkload(name string, cores int, seed int64) (Workload, error) {
	gens, err := NewParsecApp(name, cores, seed)
	if err != nil {
		return Workload{}, err
	}
	return Workload{Name: name, Gens: gens}, nil
}

// ownedBase returns the offset of thread i's owned partition, placed after
// the uniform shared region.
func (t *parsecThread) ownedBase(i int) int {
	return t.app.p.SharedLines + i*t.app.p.OwnedLines
}

// Next implements Generator.
func (t *parsecThread) Next() Access {
	p := t.app.p
	gap := geometricGap(&t.rng, p.MeanGap)
	if t.rng.Float64() < p.SharedFraction {
		t.app.ticks++
		var off int
		r := t.rng.Float64()
		if p.OwnedLines > 0 && r < p.OwnedFraction {
			off = t.ownedBase(t.id) + t.rng.Intn(p.OwnedLines)
			return Access{Gap: gap, Line: t.app.sharedBase + addr.Line(scatter(off)), Write: t.rng.Float64() < p.SharedWriteFraction}
		}
		if p.OwnedLines > 0 && r < p.OwnedFraction+p.ForeignFraction {
			if t.fLeft <= 0 {
				t.fOther = t.rng.Intn(t.app.threads)
				if t.fOther == t.id {
					t.fOther = (t.fOther + 1) % t.app.threads
				}
				t.fPos = t.rng.Intn(p.OwnedLines)
				t.fLeft = p.ForeignBurst
				if t.fLeft < 1 {
					t.fLeft = 1
				}
			}
			off = t.ownedBase(t.fOther) + t.fPos
			t.fPos = (t.fPos + 1) % p.OwnedLines
			t.fLeft--
			return Access{Gap: gap, Line: t.app.sharedBase + addr.Line(scatter(off)), Write: t.rng.Float64() < p.SharedWriteFraction}
		}
		if t.rng.Float64() < p.WindowFraction {
			// Hot window drifting over the shared region. All threads use
			// the same window position, so they touch the same lines close
			// in time.
			windows := p.SharedLines / p.WindowLines
			if windows == 0 {
				windows = 1
			}
			pos := (int(t.app.ticks/uint64(p.WindowPeriod)) - t.id*p.LagWindows) % windows
			if pos < 0 {
				pos += windows
			}
			off = pos*p.WindowLines + t.rng.Intn(p.WindowLines)
		} else {
			off = t.rng.Intn(p.SharedLines)
		}
		return Access{
			Gap:   gap,
			Line:  t.app.sharedBase + addr.Line(scatter(off)),
			Write: t.rng.Float64() < p.SharedWriteFraction,
		}
	}
	return Access{
		Gap:   gap,
		Line:  t.privateBase + addr.Line(scatter(t.rng.Intn(p.PrivateLines))),
		Write: t.rng.Float64() < p.PrivateWriteFraction,
	}
}
