package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"secdir/internal/addr"
)

// Trace files let a workload be recorded once and replayed bit-identically —
// e.g. to compare directory designs on exactly the same reference stream, or
// to import traces produced by external tools.
//
// Format (little-endian):
//
//	magic   "SDTR" (4 bytes)
//	version uint16 (currently 1)
//	records uint64
//	then per record:
//	  line  uint64 (bit 63 = write flag; low 34 bits = line address)
//	  gap   uint16
const (
	traceMagic   = "SDTR"
	traceVersion = 1
	writeFlag    = uint64(1) << 63
)

// ErrBadTrace reports a malformed trace stream.
var ErrBadTrace = errors.New("trace: malformed trace file")

// WriteTrace records n accesses from the generator to w.
func WriteTrace(w io.Writer, g Generator, n uint64) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint16(traceVersion)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, n); err != nil {
		return err
	}
	var rec [10]byte
	for i := uint64(0); i < n; i++ {
		a := g.Next()
		v := uint64(a.Line)
		if a.Write {
			v |= writeFlag
		}
		gap := a.Gap
		if gap < 0 {
			gap = 0
		}
		if gap > 0xFFFF {
			gap = 0xFFFF
		}
		binary.LittleEndian.PutUint64(rec[0:8], v)
		binary.LittleEndian.PutUint16(rec[8:10], uint16(gap))
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace loads a whole trace into memory.
func ReadTrace(r io.Reader) ([]Access, error) {
	br := bufio.NewReader(r)
	head := make([]byte, 4+2+8)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrBadTrace, err)
	}
	if string(head[:4]) != traceMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadTrace, head[:4])
	}
	if v := binary.LittleEndian.Uint16(head[4:6]); v != traceVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadTrace, v)
	}
	n := binary.LittleEndian.Uint64(head[6:14])
	const maxRecords = 1 << 30
	if n > maxRecords {
		return nil, fmt.Errorf("%w: unreasonable record count %d", ErrBadTrace, n)
	}
	// Cap the preallocation: n comes from an untrusted header, and a claimed
	// count far beyond the actual body would otherwise allocate gigabytes
	// before the truncation check can reject the file.
	capHint := n
	if capHint > 1<<16 {
		capHint = 1 << 16
	}
	out := make([]Access, 0, capHint)
	var rec [10]byte
	for i := uint64(0); i < n; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("%w: truncated at record %d: %v", ErrBadTrace, i, err)
		}
		v := binary.LittleEndian.Uint64(rec[0:8])
		out = append(out, Access{
			Line:  addr.Line(v &^ writeFlag),
			Write: v&writeFlag != 0,
			Gap:   int(binary.LittleEndian.Uint16(rec[8:10])),
		})
	}
	return out, nil
}

// NewReplay returns a Generator replaying the recorded accesses in a loop.
func NewReplay(accesses []Access) (Generator, error) {
	if len(accesses) == 0 {
		return nil, errors.New("trace: empty replay trace")
	}
	return NewFixed(accesses), nil
}

// Fixed-width layout constants of the .sdtr format.
const (
	traceHeaderLen = 4 + 2 + 8
	traceRecordLen = 10
	// maxTraceRecords bounds the declared record count (10 GB of records) so
	// a corrupt header cannot drive a huge allocation or mapping.
	maxTraceRecords = 1 << 30
)

// MappedTrace is a zero-copy view of an .sdtr byte image: records are decoded
// in place from the fixed-width wire format on every At call — two loads and
// a couple of ALU ops — instead of being materialised into an []Access. The
// image can be a private mmap of the file (OpenMappedTrace) or any in-memory
// byte slice (ParseTrace), which makes the same decoder servable from disk,
// from an HTTP upload body, or from a fuzzer's input.
//
// The whole image is validated up front: the header fields and the exact
// record-region length. There is no deferred mid-replay error to check, which
// is what lets At and the Replay generator run unconditionally.
type MappedTrace struct {
	recs   []byte // the record region, exactly Len()*traceRecordLen bytes
	n      uint64
	unmap  func() error // releases the mapping (nil for ParseTrace images)
	closed bool
}

// ParseTrace validates an .sdtr image and returns a zero-copy view of it.
// The returned trace aliases data; the caller must keep it immutable for the
// life of the trace. Error cases match ReadTrace exactly: short header, bad
// magic, unsupported version, unreasonable record count, truncated records.
// Like ReadTrace, trailing bytes beyond the declared records are ignored.
func ParseTrace(data []byte) (*MappedTrace, error) {
	if len(data) < traceHeaderLen {
		return nil, fmt.Errorf("%w: short header: %v", ErrBadTrace, io.ErrUnexpectedEOF)
	}
	if string(data[:4]) != traceMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadTrace, data[:4])
	}
	if v := binary.LittleEndian.Uint16(data[4:6]); v != traceVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadTrace, v)
	}
	n := binary.LittleEndian.Uint64(data[6:traceHeaderLen])
	if n > maxTraceRecords {
		return nil, fmt.Errorf("%w: unreasonable record count %d", ErrBadTrace, n)
	}
	body := data[traceHeaderLen:]
	if uint64(len(body)) < n*traceRecordLen {
		return nil, fmt.Errorf("%w: truncated at record %d: %v", ErrBadTrace, uint64(len(body))/traceRecordLen, io.ErrUnexpectedEOF)
	}
	return &MappedTrace{recs: body[:n*traceRecordLen], n: n}, nil
}

// Len returns the number of records.
func (t *MappedTrace) Len() uint64 { return t.n }

// At decodes record i in place. i must be < Len().
func (t *MappedTrace) At(i uint64) Access {
	rec := t.recs[i*traceRecordLen : i*traceRecordLen+traceRecordLen]
	v := binary.LittleEndian.Uint64(rec)
	return Access{
		Line:  addr.Line(v &^ writeFlag),
		Write: v&writeFlag != 0,
		Gap:   int(binary.LittleEndian.Uint16(rec[8:10])),
	}
}

// Replay returns a Generator replaying the trace in a loop, decoding each
// record from the byte image as it is consumed. It errors on an empty trace,
// like NewReplay.
func (t *MappedTrace) Replay() (Generator, error) {
	if t.n == 0 {
		return nil, errors.New("trace: empty replay trace")
	}
	return &mappedReplay{recs: t.recs, end: t.n * traceRecordLen}, nil
}

// Close releases the underlying mapping, if any. It is safe to call multiple
// times; the trace must not be used afterwards.
func (t *MappedTrace) Close() error {
	if t.closed || t.unmap == nil {
		t.closed = true
		return nil
	}
	t.closed = true
	f := t.unmap
	t.unmap = nil
	t.recs = nil
	return f()
}

// openReadTrace is the no-mmap path of OpenMappedTrace: the whole file is
// read into memory once and the same in-place decoder runs over the image.
func openReadTrace(path string) (*MappedTrace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseTrace(data)
}

// mappedReplay is the looping zero-copy replay generator. It aliases the
// trace's record bytes directly and walks them by offset, so the hot Next
// has no pointer chase or index multiply; like At, it must not be used
// after the trace is closed.
type mappedReplay struct {
	recs []byte
	off  uint64
	end  uint64 // n * traceRecordLen
}

// Next implements Generator.
func (r *mappedReplay) Next() Access {
	rec := r.recs[r.off : r.off+traceRecordLen]
	v := binary.LittleEndian.Uint64(rec)
	gap := binary.LittleEndian.Uint16(rec[8:10])
	if r.off += traceRecordLen; r.off == r.end {
		r.off = 0
	}
	return Access{
		Line:  addr.Line(v &^ writeFlag),
		Write: v&writeFlag != 0,
		Gap:   int(gap),
	}
}
