package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"secdir/internal/addr"
)

// Trace files let a workload be recorded once and replayed bit-identically —
// e.g. to compare directory designs on exactly the same reference stream, or
// to import traces produced by external tools.
//
// Format (little-endian):
//
//	magic   "SDTR" (4 bytes)
//	version uint16 (currently 1)
//	records uint64
//	then per record:
//	  line  uint64 (bit 63 = write flag; low 34 bits = line address)
//	  gap   uint16
const (
	traceMagic   = "SDTR"
	traceVersion = 1
	writeFlag    = uint64(1) << 63
)

// ErrBadTrace reports a malformed trace stream.
var ErrBadTrace = errors.New("trace: malformed trace file")

// WriteTrace records n accesses from the generator to w.
func WriteTrace(w io.Writer, g Generator, n uint64) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint16(traceVersion)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, n); err != nil {
		return err
	}
	var rec [10]byte
	for i := uint64(0); i < n; i++ {
		a := g.Next()
		v := uint64(a.Line)
		if a.Write {
			v |= writeFlag
		}
		gap := a.Gap
		if gap < 0 {
			gap = 0
		}
		if gap > 0xFFFF {
			gap = 0xFFFF
		}
		binary.LittleEndian.PutUint64(rec[0:8], v)
		binary.LittleEndian.PutUint16(rec[8:10], uint16(gap))
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace loads a whole trace into memory.
func ReadTrace(r io.Reader) ([]Access, error) {
	br := bufio.NewReader(r)
	head := make([]byte, 4+2+8)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrBadTrace, err)
	}
	if string(head[:4]) != traceMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadTrace, head[:4])
	}
	if v := binary.LittleEndian.Uint16(head[4:6]); v != traceVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadTrace, v)
	}
	n := binary.LittleEndian.Uint64(head[6:14])
	const maxRecords = 1 << 30
	if n > maxRecords {
		return nil, fmt.Errorf("%w: unreasonable record count %d", ErrBadTrace, n)
	}
	out := make([]Access, 0, n)
	var rec [10]byte
	for i := uint64(0); i < n; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("%w: truncated at record %d: %v", ErrBadTrace, i, err)
		}
		v := binary.LittleEndian.Uint64(rec[0:8])
		out = append(out, Access{
			Line:  addr.Line(v &^ writeFlag),
			Write: v&writeFlag != 0,
			Gap:   int(binary.LittleEndian.Uint16(rec[8:10])),
		})
	}
	return out, nil
}

// NewReplay returns a Generator replaying the recorded accesses in a loop.
func NewReplay(accesses []Access) (Generator, error) {
	if len(accesses) == 0 {
		return nil, errors.New("trace: empty replay trace")
	}
	return NewFixed(accesses), nil
}

// streamBatch is the number of records decoded per pipeline batch (80 KB of
// file per batch at 10 bytes/record).
const streamBatch = 8192

// TraceStream replays a trace file without waiting for the whole file to
// decode first. A producer goroutine reads and decodes records in batches
// into a pair of recycled buffers while the consumer replays the previous
// batch, so decoding overlaps simulation instead of serialising ahead of it.
// The first pass also accumulates the records in memory; once the file is
// exhausted, Next loops over the accumulated trace exactly like NewReplay.
//
// TraceStream is a Generator for a single consumer. After the run, check
// Err: a trace that turns out to be truncated mid-file surfaces there (the
// header is validated up front by OpenTraceStream).
type TraceStream struct {
	records uint64
	filled  chan []Access
	free    chan []Access
	quit    chan struct{}
	errc    chan error

	cur     []Access
	pos     int
	all     []Access
	looping bool
	err     error
	done    bool // producer finished and errc drained
}

// OpenTraceStream validates the header of r and starts the decoding
// pipeline. The first batch is decoded synchronously so that an empty or
// garbage file fails here rather than mid-run. The caller must Close the
// stream (it owns a goroutine); closing does not close r.
func OpenTraceStream(r io.Reader) (*TraceStream, error) {
	br := bufio.NewReaderSize(r, 4*streamBatch*10)
	head := make([]byte, 4+2+8)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrBadTrace, err)
	}
	if string(head[:4]) != traceMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadTrace, head[:4])
	}
	if v := binary.LittleEndian.Uint16(head[4:6]); v != traceVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadTrace, v)
	}
	n := binary.LittleEndian.Uint64(head[6:14])
	const maxRecords = 1 << 30
	if n == 0 {
		return nil, fmt.Errorf("%w: empty trace", ErrBadTrace)
	}
	if n > maxRecords {
		return nil, fmt.Errorf("%w: unreasonable record count %d", ErrBadTrace, n)
	}
	s := &TraceStream{
		records: n,
		filled:  make(chan []Access, 1),
		free:    make(chan []Access, 2),
		quit:    make(chan struct{}),
		errc:    make(chan error, 1),
	}
	first, left, err := decodeBatch(br, make([]Access, 0, streamBatch), n)
	if err != nil {
		return nil, err
	}
	s.cur = first
	s.free <- make([]Access, 0, streamBatch)
	s.free <- make([]Access, 0, streamBatch)
	go s.produce(br, left)
	return s, nil
}

// decodeBatch decodes up to streamBatch of the remaining records from br
// into buf, returning the batch and how many records are still unread.
func decodeBatch(br *bufio.Reader, buf []Access, remaining uint64) ([]Access, uint64, error) {
	want := uint64(streamBatch)
	if want > remaining {
		want = remaining
	}
	var rec [10]byte
	for i := uint64(0); i < want; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return buf, remaining - i, fmt.Errorf("%w: truncated %d records before the end: %v", ErrBadTrace, remaining-i, err)
		}
		v := binary.LittleEndian.Uint64(rec[0:8])
		buf = append(buf, Access{
			Line:  addr.Line(v &^ writeFlag),
			Write: v&writeFlag != 0,
			Gap:   int(binary.LittleEndian.Uint16(rec[8:10])),
		})
	}
	return buf, remaining - want, nil
}

// produce decodes the rest of the file, recycling buffers through free and
// handing full batches to the consumer through filled.
func (s *TraceStream) produce(br *bufio.Reader, remaining uint64) {
	defer close(s.filled)
	for remaining > 0 {
		var buf []Access
		select {
		case buf = <-s.free:
		case <-s.quit:
			return
		}
		batch, left, err := decodeBatch(br, buf[:0], remaining)
		if len(batch) > 0 {
			select {
			case s.filled <- batch:
			case <-s.quit:
				return
			}
		}
		if err != nil {
			s.errc <- err
			return
		}
		remaining = left
	}
	s.errc <- nil
}

// Len returns the record count declared by the trace header.
func (s *TraceStream) Len() uint64 { return s.records }

// Err returns the decode error, if any. It is fully determined only once
// the first pass over the file has completed (or after Close).
func (s *TraceStream) Err() error { return s.err }

// Next implements Generator. It replays the file in order and then loops
// over it from memory, like NewReplay on the fully-read trace.
func (s *TraceStream) Next() Access {
	if s.looping {
		a := s.all[s.pos]
		if s.pos++; s.pos == len(s.all) {
			s.pos = 0
		}
		return a
	}
	if s.pos >= len(s.cur) {
		s.all = append(s.all, s.cur...)
		select {
		case s.free <- s.cur[:0]:
		default:
		}
		batch, ok := <-s.filled
		if !ok {
			if !s.done {
				s.err = <-s.errc
				s.done = true
			}
			s.looping = true
			s.pos = 0
			// all is non-empty: OpenTraceStream decoded a first batch.
			return s.Next()
		}
		s.cur = batch
		s.pos = 0
	}
	a := s.cur[s.pos]
	s.pos++
	return a
}

// Close stops the producer goroutine and reports any decode error observed
// so far. It is safe to call Close multiple times.
func (s *TraceStream) Close() error {
	select {
	case <-s.quit:
	default:
		close(s.quit)
	}
	// Drain so the producer is never blocked on filled.
	for range s.filled {
	}
	if !s.done {
		select {
		case err := <-s.errc:
			s.err = err
		default:
		}
		s.done = true
	}
	return s.err
}
