package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"secdir/internal/addr"
)

// Trace files let a workload be recorded once and replayed bit-identically —
// e.g. to compare directory designs on exactly the same reference stream, or
// to import traces produced by external tools.
//
// Format (little-endian):
//
//	magic   "SDTR" (4 bytes)
//	version uint16 (currently 1)
//	records uint64
//	then per record:
//	  line  uint64 (bit 63 = write flag; low 34 bits = line address)
//	  gap   uint16
const (
	traceMagic   = "SDTR"
	traceVersion = 1
	writeFlag    = uint64(1) << 63
)

// ErrBadTrace reports a malformed trace stream.
var ErrBadTrace = errors.New("trace: malformed trace file")

// WriteTrace records n accesses from the generator to w.
func WriteTrace(w io.Writer, g Generator, n uint64) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint16(traceVersion)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, n); err != nil {
		return err
	}
	var rec [10]byte
	for i := uint64(0); i < n; i++ {
		a := g.Next()
		v := uint64(a.Line)
		if a.Write {
			v |= writeFlag
		}
		gap := a.Gap
		if gap < 0 {
			gap = 0
		}
		if gap > 0xFFFF {
			gap = 0xFFFF
		}
		binary.LittleEndian.PutUint64(rec[0:8], v)
		binary.LittleEndian.PutUint16(rec[8:10], uint16(gap))
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace loads a whole trace into memory.
func ReadTrace(r io.Reader) ([]Access, error) {
	br := bufio.NewReader(r)
	head := make([]byte, 4+2+8)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrBadTrace, err)
	}
	if string(head[:4]) != traceMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadTrace, head[:4])
	}
	if v := binary.LittleEndian.Uint16(head[4:6]); v != traceVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadTrace, v)
	}
	n := binary.LittleEndian.Uint64(head[6:14])
	const maxRecords = 1 << 30
	if n > maxRecords {
		return nil, fmt.Errorf("%w: unreasonable record count %d", ErrBadTrace, n)
	}
	out := make([]Access, 0, n)
	var rec [10]byte
	for i := uint64(0); i < n; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("%w: truncated at record %d: %v", ErrBadTrace, i, err)
		}
		v := binary.LittleEndian.Uint64(rec[0:8])
		out = append(out, Access{
			Line:  addr.Line(v &^ writeFlag),
			Write: v&writeFlag != 0,
			Gap:   int(binary.LittleEndian.Uint16(rec[8:10])),
		})
	}
	return out, nil
}

// NewReplay returns a Generator replaying the recorded accesses in a loop.
func NewReplay(accesses []Access) (Generator, error) {
	if len(accesses) == 0 {
		return nil, errors.New("trace: empty replay trace")
	}
	return NewFixed(accesses), nil
}
