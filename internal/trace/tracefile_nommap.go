//go:build !unix

package trace

// OpenMappedTrace opens the trace file at path as a zero-copy view. On
// platforms without mmap it reads the file into memory once; replay still
// decodes records in place from the byte image.
func OpenMappedTrace(path string) (*MappedTrace, error) {
	return openReadTrace(path)
}
