//go:build unix

package trace

import (
	"fmt"
	"os"
	"syscall"
)

// OpenMappedTrace maps the trace file at path read-only into memory and
// returns a zero-copy view of it. The file contents are validated up front
// (header and record-region length); replay then decodes records straight
// out of the page cache with no read syscalls, no copy, and no per-record
// allocation. The caller must Close the trace to release the mapping.
//
// Empty files cannot be mapped, so a zero-length file reports the same
// short-header error as ParseTrace on an empty image.
func OpenMappedTrace(path string) (*MappedTrace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	if size == 0 {
		return nil, fmt.Errorf("%w: short header: empty file", ErrBadTrace)
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("%w: file too large to map", ErrBadTrace)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		// Mapping can fail on filesystems without mmap support; fall back to
		// reading the file into memory.
		return openReadTrace(path)
	}
	t, err := ParseTrace(data)
	if err != nil {
		syscall.Munmap(data)
		return nil, err
	}
	t.unmap = func() error { return syscall.Munmap(data) }
	return t, nil
}
