package trace

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"secdir/internal/addr"
)

func TestTraceRoundTrip(t *testing.T) {
	g, err := NewSpecApp("bzip2", 0, 42)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	const n = 5000
	if err := WriteTrace(&buf, g, n); err != nil {
		t.Fatal(err)
	}

	got, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("len = %d, want %d", len(got), n)
	}
	// The same seeded generator must produce exactly the recorded stream.
	g2, _ := NewSpecApp("bzip2", 0, 42)
	for i, a := range got {
		want := g2.Next()
		if a.Line != want.Line || a.Write != want.Write || a.Gap != want.Gap {
			t.Fatalf("record %d = %+v, want %+v", i, a, want)
		}
	}
}

func TestTraceWriteFlag(t *testing.T) {
	src := []Access{
		{Line: addr.Line(1<<34 - 1), Write: true, Gap: 7},
		{Line: 0, Write: false, Gap: 0},
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, NewFixed(src), uint64(len(src))); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if got[i] != src[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], src[i])
		}
	}
}

func TestTraceGapClamping(t *testing.T) {
	src := []Access{{Line: 5, Gap: 1 << 20}, {Line: 6, Gap: -3}}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, NewFixed(src), 2); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Gap != 0xFFFF || got[1].Gap != 0 {
		t.Fatalf("gaps = %d,%d; want clamped 65535,0", got[0].Gap, got[1].Gap)
	}
}

func TestReadTraceErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("XXXX"),
		[]byte("XXXX\x01\x00\x00\x00\x00\x00\x00\x00\x00\x00"), // bad magic
		[]byte("SDTR\x09\x00\x00\x00\x00\x00\x00\x00\x00\x00"), // bad version
		// valid header claiming 2 records but truncated body:
		append([]byte("SDTR\x01\x00"), []byte{2, 0, 0, 0, 0, 0, 0, 0, 1, 2, 3}...),
	}
	for i, raw := range cases {
		if _, err := ReadTrace(bytes.NewReader(raw)); !errors.Is(err, ErrBadTrace) {
			t.Errorf("case %d: err = %v, want ErrBadTrace", i, err)
		}
	}
}

func TestReplayLoops(t *testing.T) {
	g, err := NewReplay([]Access{{Line: 1}, {Line: 2}})
	if err != nil {
		t.Fatal(err)
	}
	want := []addr.Line{1, 2, 1, 2, 1}
	for i, w := range want {
		if got := g.Next().Line; got != w {
			t.Fatalf("replay[%d] = %d, want %d", i, got, w)
		}
	}
	if _, err := NewReplay(nil); err == nil {
		t.Fatal("empty replay accepted")
	}
}

// TestParseTraceMatchesReadTrace: the zero-copy view must decode exactly the
// records ReadTrace materialises, in order, and the Replay generator must
// loop like NewReplay.
func TestParseTraceMatchesReadTrace(t *testing.T) {
	g, err := NewSpecApp("omnetpp", 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	const n = 10_123
	if err := WriteTrace(&buf, g, n); err != nil {
		t.Fatal(err)
	}
	want, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	mt, err := ParseTrace(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if mt.Len() != n {
		t.Fatalf("Len = %d, want %d", mt.Len(), n)
	}
	for i := uint64(0); i < n; i++ {
		if got := mt.At(i); got != want[i] {
			t.Fatalf("At(%d) = %+v, want %+v", i, got, want[i])
		}
	}
	rep, err := mt.Replay()
	if err != nil {
		t.Fatal(err)
	}
	// First pass plus half a loop: indices past n must wrap to i%n.
	for i := 0; i < n+n/2; i++ {
		if got := rep.Next(); got != want[i%n] {
			t.Fatalf("record %d = %+v, want %+v", i, got, want[i%n])
		}
	}
	if err := mt.Close(); err != nil {
		t.Fatalf("Close = %v", err)
	}
}

// TestParseTraceErrors: malformed images fail at parse with ErrBadTrace —
// never mid-replay — in exactly the cases ReadTrace rejects.
func TestParseTraceErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("SDTR\x01\x00"),                                   // short header
		[]byte("XXXX\x01\x00\x00\x00\x00\x00\x00\x00\x00\x00"),   // bad magic
		[]byte("SDTR\x09\x00\x00\x00\x00\x00\x00\x00\x00\x00"),   // bad version
		append([]byte("SDTR\x01\x00"), 2, 0, 0, 0, 0, 0, 0, 0, 1, 2, 3), // truncated body
		append([]byte("SDTR\x01\x00"), 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF), // absurd count
	}
	for i, raw := range cases {
		if _, err := ParseTrace(raw); !errors.Is(err, ErrBadTrace) {
			t.Errorf("case %d: ParseTrace err = %v, want ErrBadTrace", i, err)
		}
		// Same verdict as the legacy streaming reader.
		if _, err := ReadTrace(bytes.NewReader(raw)); !errors.Is(err, ErrBadTrace) {
			t.Errorf("case %d: ReadTrace err = %v, want ErrBadTrace", i, err)
		}
	}
}

// TestParseTraceEmpty: a zero-record trace parses (matching ReadTrace) but
// cannot be replayed, and trailing bytes past the declared records are
// ignored by both readers.
func TestParseTraceEmpty(t *testing.T) {
	empty := []byte("SDTR\x01\x00\x00\x00\x00\x00\x00\x00\x00\x00")
	mt, err := ParseTrace(empty)
	if err != nil {
		t.Fatalf("ParseTrace(empty) = %v", err)
	}
	if mt.Len() != 0 {
		t.Fatalf("Len = %d, want 0", mt.Len())
	}
	if _, err := mt.Replay(); err == nil {
		t.Fatal("Replay of empty trace accepted")
	}
	if _, err := ReadTrace(bytes.NewReader(empty)); err != nil {
		t.Fatalf("ReadTrace(empty) = %v", err)
	}

	// One record plus trailing junk: both readers decode exactly one record.
	var buf bytes.Buffer
	if err := WriteTrace(&buf, NewFixed([]Access{{Line: 42, Gap: 1}}), 1); err != nil {
		t.Fatal(err)
	}
	raw := append(buf.Bytes(), 0xDE, 0xAD)
	mt, err = ParseTrace(raw)
	if err != nil {
		t.Fatal(err)
	}
	if mt.Len() != 1 || mt.At(0).Line != 42 {
		t.Fatalf("trailing-junk decode = len %d, At(0) %+v", mt.Len(), mt.At(0))
	}
	if got, err := ReadTrace(bytes.NewReader(raw)); err != nil || len(got) != 1 {
		t.Fatalf("ReadTrace with trailing junk = %v, %v", got, err)
	}
}

// TestOpenMappedTrace: the file-backed path must behave like ParseTrace over
// the file's bytes, and Close must be idempotent.
func TestOpenMappedTrace(t *testing.T) {
	g, err := NewSpecApp("gobmk", 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	const n = 2048
	if err := WriteTrace(&buf, g, n); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "replay.sdtr")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	want, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	mt, err := OpenMappedTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if mt.Len() != n {
		t.Fatalf("Len = %d, want %d", mt.Len(), n)
	}
	for i := uint64(0); i < n; i++ {
		if got := mt.At(i); got != want[i] {
			t.Fatalf("At(%d) = %+v, want %+v", i, got, want[i])
		}
	}
	if err := mt.Close(); err != nil {
		t.Fatalf("Close = %v", err)
	}
	if err := mt.Close(); err != nil {
		t.Fatalf("second Close = %v", err)
	}

	// Corrupt files fail at open; missing files surface the OS error.
	if err := os.WriteFile(path, []byte("XXXX"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenMappedTrace(path); !errors.Is(err, ErrBadTrace) {
		t.Fatalf("corrupt open err = %v, want ErrBadTrace", err)
	}
	if _, err := OpenMappedTrace(filepath.Join(t.TempDir(), "missing.sdtr")); err == nil {
		t.Fatal("missing file accepted")
	}
}
