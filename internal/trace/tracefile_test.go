package trace

import (
	"bytes"
	"errors"
	"testing"

	"secdir/internal/addr"
)

func TestTraceRoundTrip(t *testing.T) {
	g, err := NewSpecApp("bzip2", 0, 42)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	const n = 5000
	if err := WriteTrace(&buf, g, n); err != nil {
		t.Fatal(err)
	}

	got, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("len = %d, want %d", len(got), n)
	}
	// The same seeded generator must produce exactly the recorded stream.
	g2, _ := NewSpecApp("bzip2", 0, 42)
	for i, a := range got {
		want := g2.Next()
		if a.Line != want.Line || a.Write != want.Write || a.Gap != want.Gap {
			t.Fatalf("record %d = %+v, want %+v", i, a, want)
		}
	}
}

func TestTraceWriteFlag(t *testing.T) {
	src := []Access{
		{Line: addr.Line(1<<34 - 1), Write: true, Gap: 7},
		{Line: 0, Write: false, Gap: 0},
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, NewFixed(src), uint64(len(src))); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if got[i] != src[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], src[i])
		}
	}
}

func TestTraceGapClamping(t *testing.T) {
	src := []Access{{Line: 5, Gap: 1 << 20}, {Line: 6, Gap: -3}}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, NewFixed(src), 2); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Gap != 0xFFFF || got[1].Gap != 0 {
		t.Fatalf("gaps = %d,%d; want clamped 65535,0", got[0].Gap, got[1].Gap)
	}
}

func TestReadTraceErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("XXXX"),
		[]byte("XXXX\x01\x00\x00\x00\x00\x00\x00\x00\x00\x00"), // bad magic
		[]byte("SDTR\x09\x00\x00\x00\x00\x00\x00\x00\x00\x00"), // bad version
		// valid header claiming 2 records but truncated body:
		append([]byte("SDTR\x01\x00"), []byte{2, 0, 0, 0, 0, 0, 0, 0, 1, 2, 3}...),
	}
	for i, raw := range cases {
		if _, err := ReadTrace(bytes.NewReader(raw)); !errors.Is(err, ErrBadTrace) {
			t.Errorf("case %d: err = %v, want ErrBadTrace", i, err)
		}
	}
}

func TestReplayLoops(t *testing.T) {
	g, err := NewReplay([]Access{{Line: 1}, {Line: 2}})
	if err != nil {
		t.Fatal(err)
	}
	want := []addr.Line{1, 2, 1, 2, 1}
	for i, w := range want {
		if got := g.Next().Line; got != w {
			t.Fatalf("replay[%d] = %d, want %d", i, got, w)
		}
	}
	if _, err := NewReplay(nil); err == nil {
		t.Fatal("empty replay accepted")
	}
}

// TestTraceStreamMatchesReadTrace: the pipelined stream must replay exactly
// the records ReadTrace decodes, in order, and then loop like NewReplay.
// Spans several pipeline batches to exercise the buffer hand-off.
func TestTraceStreamMatchesReadTrace(t *testing.T) {
	g, err := NewSpecApp("omnetpp", 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	const n = 3*streamBatch + 123
	if err := WriteTrace(&buf, g, n); err != nil {
		t.Fatal(err)
	}
	want, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	ts, err := OpenTraceStream(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()
	if ts.Len() != n {
		t.Fatalf("Len = %d, want %d", ts.Len(), n)
	}
	// First pass plus half a loop: indices past n must wrap to i%n.
	for i := 0; i < n+n/2; i++ {
		if got := ts.Next(); got != want[i%n] {
			t.Fatalf("record %d = %+v, want %+v", i, got, want[i%n])
		}
	}
	if err := ts.Close(); err != nil {
		t.Fatalf("Close = %v", err)
	}
}

// TestTraceStreamHeaderErrors: garbage headers fail at open, not mid-run.
func TestTraceStreamHeaderErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("XXXX\x01\x00\x00\x00\x00\x00\x00\x00\x00\x00"), // bad magic
		[]byte("SDTR\x09\x00\x00\x00\x00\x00\x00\x00\x00\x00"), // bad version
		[]byte("SDTR\x01\x00\x00\x00\x00\x00\x00\x00\x00\x00"), // zero records
	}
	for i, raw := range cases {
		if _, err := OpenTraceStream(bytes.NewReader(raw)); !errors.Is(err, ErrBadTrace) {
			t.Errorf("case %d: err = %v, want ErrBadTrace", i, err)
		}
	}
}

// TestTraceStreamTruncated: a body truncated beyond the first batch is
// detected by the pipeline and surfaced by Close; the decoded prefix loops.
func TestTraceStreamTruncated(t *testing.T) {
	g, err := NewSpecApp("gobmk", 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	const n = 2 * streamBatch
	if err := WriteTrace(&buf, g, n); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-15] // drop 1.5 records
	ts, err := OpenTraceStream(bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err) // header and first batch are intact
	}
	for i := uint64(0); i < n; i++ {
		ts.Next() // wraps early over the decoded prefix
	}
	if err := ts.Close(); !errors.Is(err, ErrBadTrace) {
		t.Fatalf("Close = %v, want ErrBadTrace", err)
	}
}

// TestTraceStreamCloseEarly: closing before draining must stop the producer
// goroutine without deadlocking (and without a decode error).
func TestTraceStreamCloseEarly(t *testing.T) {
	g, err := NewSpecApp("gobmk", 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	const n = 4 * streamBatch
	if err := WriteTrace(&buf, g, n); err != nil {
		t.Fatal(err)
	}
	ts, err := OpenTraceStream(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	ts.Next()
	if err := ts.Close(); err != nil {
		t.Fatalf("Close = %v", err)
	}
	if err := ts.Close(); err != nil {
		t.Fatalf("second Close = %v", err)
	}
}
