// Package trace defines the memory-access trace abstraction and the
// synthetic workload generators used by the evaluation: SPEC-CPU-like
// single-threaded applications (classified CCF/LLCF/LLCT as in §8), the 12
// application mixes of Table 5, PARSEC-like multithreaded applications, and a
// real AES-128 T-table victim.
package trace

import "secdir/internal/addr"

// Access is one memory reference of a core's instruction stream.
type Access struct {
	// Gap is the number of non-memory instructions executed before this
	// access (each is charged one cycle by the timing model).
	Gap int
	// Line is the referenced cache line.
	Line addr.Line
	// Write distinguishes stores from loads.
	Write bool
}

// Generator produces an infinite access stream for one hardware thread.
type Generator interface {
	Next() Access
}

// Workload binds one Generator per core.
type Workload struct {
	Name string
	Gens []Generator
}

// Cores returns the number of hardware threads the workload drives.
func (w Workload) Cores() int { return len(w.Gens) }

// Close releases any generators that hold resources (an open trace file and
// its decoding pipeline, say) and returns the first error. Most generators
// are pure in-memory state and are skipped; callers that may replay trace
// files should Close the workload when the run finishes — the error also
// surfaces a trace that turned out to be truncated mid-run.
func (w Workload) Close() error {
	var first error
	for _, g := range w.Gens {
		if c, ok := g.(interface{ Close() error }); ok {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// Func adapts a function to the Generator interface.
type Func func() Access

// Next implements Generator.
func (f Func) Next() Access { return f() }
