package directory

import (
	"secdir/internal/addr"
	"secdir/internal/cachesim"
	"secdir/internal/rng"
)

// RandMapSlice is the §11 randomization-based alternative (CEASER/RPcache
// style): the directory set index is a keyed pseudo-random permutation of the
// line address, re-keyed periodically. An attacker cannot compute which
// addresses conflict with the victim's, so *targeted* eviction sets fail —
// but, as the paper argues, randomization "can only reduce the bandwidth of
// the attack, instead of eliminating it": flooding enough lines across many
// sets still evicts the victim's entries (see attack.FloodReload).
//
// Re-keying is modeled as a bulk remap: all live entries are re-inserted
// under the new key; entries that conflict during the remap are disposed of
// through the normal TD-victim path. (Real CEASER relocates gradually; the
// bulk model keeps the same security semantics at a coarser performance
// granularity.)
type RandMapSlice struct {
	inner *BaselineSlice
	sets  int
	key   uint64
	rng   rng.Rand

	// rekeyEvery is the number of directory operations between re-keys;
	// 0 disables re-keying.
	rekeyEvery int
	ops        int

	// Rekeys counts completed re-key events.
	Rekeys uint64

	params RandMapParams
}

// Verify interface conformance.
var _ Slice = (*RandMapSlice)(nil)

// RandMapParams configures a RandMapSlice.
type RandMapParams struct {
	TDSets, TDWays int
	EDSets, EDWays int
	// RekeyEvery is the number of slice operations between re-keys
	// (0 = never re-key).
	RekeyEvery int
	Seed       int64
}

// NewRandMapped returns a randomized-index directory slice.
func NewRandMapped(p RandMapParams) *RandMapSlice {
	s := &RandMapSlice{
		sets:       p.TDSets,
		rng:        rng.New(p.Seed ^ 0x5EC0DE),
		rekeyEvery: p.RekeyEvery,
		params:     p,
	}
	s.key = s.rng.Uint64()
	s.inner = s.build()
	return s
}

// keyedIndex is the keyed set-index permutation (an xor-multiply mix — not
// cryptographic, but the attacker model grants no key access either way).
// The mix is genuinely data-dependent, so the randomized slice kinds are the
// ones that keep the FuncIndex closure path.
func keyedIndex(key uint64, sets int) cachesim.Index {
	mask := uint64(sets - 1)
	return cachesim.FuncIndex(func(l addr.Line) int {
		return mixLine(key, l, mask)
	})
}

// mixLine is the keyed xor-multiply set-index mix shared by RandMapSlice and
// CeaserSlice.
func mixLine(key uint64, l addr.Line, mask uint64) int {
	v := uint64(l) ^ key
	v *= 0xff51afd7ed558ccd
	v ^= v >> 33
	v *= 0xc4ceb9fe1a85ec53
	v ^= v >> 29
	return int(v & mask)
}

// build constructs the inner baseline slice under the current key.
func (s *RandMapSlice) build() *BaselineSlice {
	return NewBaseline(BaselineParams{
		TDSets: s.params.TDSets, TDWays: s.params.TDWays,
		EDSets: s.params.EDSets, EDWays: s.params.EDWays,
		Index:        keyedIndex(s.key, s.sets),
		AppendixAFix: true, // give the randomized design its best case
		Seed:         s.params.Seed,
	})
}

// Housekeep implements Housekeeper: the engine calls it at transaction
// boundaries (never mid-transition, where remap invalidations could race the
// fill in flight) and applies the disposal actions of entries that conflicted
// during the remap.
func (s *RandMapSlice) Housekeep() []Action {
	if s.rekeyEvery <= 0 || s.ops < s.rekeyEvery {
		return nil
	}
	s.ops = 0
	s.Rekeys++
	old := s.inner
	s.key = s.rng.Uint64()
	fresh := s.build()
	// Carry the statistics across the swap.
	fresh.d.Stat = old.d.Stat

	// The fresh slice's buffer accumulates the disposal actions of every
	// entry that conflicts during the remap.
	fresh.d.Buf.Reset()
	old.d.ED.Range(func(l addr.Line, m *Meta) bool {
		fresh.d.InsertED(l, *m)
		return true
	})
	old.d.TD.Range(func(l addr.Line, m *Meta) bool {
		fresh.d.InsertTD(l, *m)
		return true
	})
	s.inner = fresh
	return fresh.d.Buf.Actions()
}

// Miss implements Slice.
func (s *RandMapSlice) Miss(core int, line addr.Line, write bool) MissResult {
	s.ops++
	return s.inner.Miss(core, line, write)
}

// Upgrade implements Slice.
func (s *RandMapSlice) Upgrade(core int, line addr.Line) []Action {
	s.ops++
	return s.inner.Upgrade(core, line)
}

// L2Evict implements Slice.
func (s *RandMapSlice) L2Evict(core int, line addr.Line, dirty bool) []Action {
	s.ops++
	return s.inner.L2Evict(core, line, dirty)
}

// Find implements Slice.
func (s *RandMapSlice) Find(line addr.Line) (Meta, Where, bool) {
	return s.inner.Find(line)
}

// Stats implements Slice.
func (s *RandMapSlice) Stats() *Stats { return s.inner.Stats() }

// TDED exposes the current inner structures (tests only; invalidated by the
// next re-key).
func (s *RandMapSlice) TDED() *TDED { return s.inner.TDED() }

// RekeyCount returns the number of completed re-key events.
func (s *RandMapSlice) RekeyCount() uint64 { return s.Rekeys }
