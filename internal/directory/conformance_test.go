package directory_test

import (
	"fmt"
	"math/rand"
	"testing"

	"secdir/internal/addr"
	"secdir/internal/cachesim"
	"secdir/internal/core"
	"secdir/internal/directory"
)

// The conformance suite drives every directory.Slice implementation through
// the same randomized protocol workload a coherence engine would generate and
// checks the contract the engine relies on:
//
//   - an InvalidateL2 action always targets a line the named core actually
//     caches (the engine panics otherwise);
//   - a WritebackMem action only names a line some copy of which was dirty;
//   - a conflict never silently drops tracking: every line the model still
//     considers cached has a directory entry whose sharer vector includes
//     the caching core (invalidation-on-conflict must emit the matching
//     actions first);
//   - a remote-L2 forward (SourceRemoteL2) names a core that holds the line;
//   - entries are unique — no line appears in two structures at once — and
//     occupancy never exceeds the design's entry capacity;
//   - every sharer bit in every entry corresponds to a cached private copy.
//
// The harness mirrors the engine's call discipline: Miss only when the
// requester is not a sharer, Upgrade only on a cached copy, L2Evict only on a
// cached copy, actions applied before the next mutating call (the action
// slices alias each implementation's reusable buffer), Housekeep at
// transaction boundaries.

// confEntry is one merged directory entry as reported by a design's walk.
type confEntry struct {
	line    addr.Line
	sharers directory.Bitset
}

// confSlice describes one DirectoryKind under conformance test.
type confSlice struct {
	name  string
	slice directory.Slice
	// walk reports the design's current entries, one per tracked line.
	// nil when a design exposes no entry walk.
	walk func() []confEntry
	// capacity is the design's total entry budget (0 skips the bound check).
	capacity int
}

// tdedWalk adapts designs built on the shared TDED machinery. The getter is
// called per walk because re-keying designs swap the inner structures. A line
// resident in both ED and TD is reported twice and caught by the audit's
// uniqueness check.
func tdedWalk(get func() *directory.TDED) func() []confEntry {
	return func() []confEntry {
		var out []confEntry
		collect := func(l addr.Line, m *directory.Meta) bool {
			out = append(out, confEntry{line: l, sharers: m.Sharers})
			return true
		}
		d := get()
		d.ED.Range(collect)
		d.TD.Range(collect)
		return out
	}
}

// rangerWalk adapts designs exposing the merged ForEach entry walk.
func rangerWalk(s interface {
	ForEach(fn func(l addr.Line, m directory.Meta, w directory.Where) bool)
}) func() []confEntry {
	return func() []confEntry {
		var out []confEntry
		s.ForEach(func(l addr.Line, m directory.Meta, _ directory.Where) bool {
			out = append(out, confEntry{line: l, sharers: m.Sharers})
			return true
		})
		return out
	}
}

// secdirWalk merges ED, TD and the per-core VD banks. A line's VD presences
// (one bank per sharer) form one logical entry; a line in both ED/TD and a
// VD is reported twice and caught by the audit's uniqueness check.
func secdirWalk(s *core.Slice, cores int) func() []confEntry {
	return func() []confEntry {
		inVD := map[addr.Line]directory.Bitset{}
		for c := 0; c < cores; c++ {
			for _, l := range s.VDBank(c).Lines() {
				inVD[l] = inVD[l].Set(c)
			}
		}
		out := tdedWalk(s.TDED)()
		for l, owners := range inVD {
			out = append(out, confEntry{line: l, sharers: owners})
		}
		return out
	}
}

// conformanceSlices builds the full design roster at a small shared geometry:
// 4 cores, 16-set structures, a 6-way unified budget (3+3 split where the
// design has one), so conflict paths fire constantly under a 256-line pool.
func conformanceSlices(t *testing.T, seed int64) []confSlice {
	const cores, sets = 4, 16
	index := cachesim.ModIndex(sets)

	base := func(fix bool) *directory.BaselineSlice {
		return directory.NewBaseline(directory.BaselineParams{
			TDSets: sets, TDWays: 3, EDSets: sets, EDWays: 3,
			Index: index, AppendixAFix: fix, Seed: seed,
		})
	}
	bu, bf := base(false), base(true)
	rm := directory.NewRandMapped(directory.RandMapParams{
		TDSets: sets, TDWays: 3, EDSets: sets, EDWays: 3,
		RekeyEvery: 300, Seed: seed,
	})
	ce := directory.NewCeaser(directory.CeaserParams{
		TDSets: sets, TDWays: 3, EDSets: sets, EDWays: 3,
		RekeyEvery: 300, RemapStep: 2, Seed: seed,
	})
	wp, err := directory.NewWayPartitioned(directory.WayPartParams{
		Cores: cores, TDSets: sets, TDWays: 4, EDSets: sets, EDWays: 4,
		Index: index, Seed: seed,
	})
	if err != nil {
		t.Fatalf("NewWayPartitioned: %v", err)
	}
	tp, err := directory.NewTagPartitioned(directory.TagPartParams{
		Cores: cores, Sets: sets, Ways: 6, Index: index, Seed: seed,
	})
	if err != nil {
		t.Fatalf("NewTagPartitioned: %v", err)
	}
	sk := directory.NewSkewed(directory.SkewedParams{Sets: sets, Ways: 6, Seed: seed})
	dl := directory.NewDLS(directory.DLSParams{Sets: sets, Ways: 6, Index: index, Seed: seed})
	sd := core.New(core.Params{
		Cores:  cores,
		TDSets: sets, TDWays: 3, EDSets: sets, EDWays: 2,
		VDSets: 8, VDWays: 2, NumRelocations: 4,
		Cuckoo: true, EmptyBit: true,
		Index: index, AppendixAFix: true, Seed: seed,
	})

	return []confSlice{
		{"baseline-unfixed", bu, tdedWalk(bu.TDED), 16 * 6},
		{"baseline-fixed", bf, tdedWalk(bf.TDED), 16 * 6},
		{"secdir", sd, secdirWalk(sd, cores), 16*5 + cores*8*2},
		{"way-partitioned", wp, rangerWalk(wp), 16 * 8},
		{"rand-mapped", rm, tdedWalk(rm.TDED), 16 * 6},
		{"ceaser", ce, tdedWalk(ce.TDED), 16 * 6},
		{"skewed", sk, rangerWalk(sk), 16 * 6},
		{"dls", dl, rangerWalk(dl), 16 * 6},
		{"tag-partitioned", tp, rangerWalk(tp), 16 * 6},
	}
}

// confModel is the harness's shadow of the private caches.
type confModel struct {
	cores     int
	cached    []map[addr.Line]bool // per-core cached lines
	dirty     []map[addr.Line]bool // per-core dirty copies
	dirtyEver map[addr.Line]bool   // lines some copy of which was ever dirty
}

func newConfModel(cores int) *confModel {
	m := &confModel{cores: cores, dirtyEver: map[addr.Line]bool{}}
	for c := 0; c < cores; c++ {
		m.cached = append(m.cached, map[addr.Line]bool{})
		m.dirty = append(m.dirty, map[addr.Line]bool{})
	}
	return m
}

// apply replays a slice's actions against the model, failing on any action
// the engine could not execute.
func (m *confModel) apply(t *testing.T, name string, step int, acts []directory.Action) {
	t.Helper()
	for _, a := range acts {
		switch a.Kind {
		case directory.InvalidateL2:
			if !m.cached[a.Core][a.Line] {
				t.Fatalf("%s step %d: InvalidateL2(core=%d, line=%#x, %v) targets an uncached line",
					name, step, a.Core, uint64(a.Line), a.Reason)
			}
			delete(m.cached[a.Core], a.Line)
			delete(m.dirty[a.Core], a.Line)
		case directory.WritebackMem:
			if !m.dirtyEver[a.Line] {
				t.Fatalf("%s step %d: WritebackMem(line=%#x, %v) for a never-dirty line",
					name, step, uint64(a.Line), a.Reason)
			}
		default:
			t.Fatalf("%s step %d: unknown action kind %v", name, step, a.Kind)
		}
	}
}

// audit cross-checks slice state against the model: tracking completeness via
// Find, entry uniqueness, sharer soundness and the capacity bound via walk.
func (m *confModel) audit(t *testing.T, cs confSlice, step int) {
	t.Helper()
	for c := 0; c < m.cores; c++ {
		for l := range m.cached[c] {
			meta, _, ok := cs.slice.Find(l)
			if !ok {
				t.Fatalf("%s step %d: cached line %#x (core %d) has no directory entry — conflict dropped tracking without invalidating",
					cs.name, step, uint64(l), c)
			}
			if !meta.Sharers.Has(c) {
				t.Fatalf("%s step %d: entry for cached line %#x lacks core %d's sharer bit (sharers=%b)",
					cs.name, step, uint64(l), c, meta.Sharers)
			}
		}
	}
	if cs.walk == nil {
		return
	}
	entries := cs.walk()
	if cs.capacity > 0 && len(entries) > cs.capacity {
		t.Fatalf("%s step %d: %d entries exceed the design's capacity %d", cs.name, step, len(entries), cs.capacity)
	}
	seen := map[addr.Line]bool{}
	for _, e := range entries {
		if e.sharers&(1<<63) != 0 {
			t.Fatalf("%s step %d: line %#x resides in two structures at once", cs.name, step, uint64(e.line))
		}
		if seen[e.line] {
			t.Fatalf("%s step %d: line %#x reported twice by the entry walk", cs.name, step, uint64(e.line))
		}
		seen[e.line] = true
		e.sharers.ForEach(func(c int) {
			if !m.cached[c][e.line] {
				t.Fatalf("%s step %d: entry %#x lists non-caching sharer %d", cs.name, step, uint64(e.line), c)
			}
		})
	}
}

// TestSliceConformance runs the shared conformance workload over every
// directory design.
func TestSliceConformance(t *testing.T) {
	for _, seed := range []int64{1, 42} {
		for _, cs := range conformanceSlices(t, seed) {
			cs := cs
			t.Run(fmt.Sprintf("%s/seed=%d", cs.name, seed), func(t *testing.T) {
				const cores, steps = 4, 25000
				rng := rand.New(rand.NewSource(seed * 7779))
				m := newConfModel(cores)
				hk, _ := cs.slice.(directory.Housekeeper)
				for i := 0; i < steps; i++ {
					c := rng.Intn(cores)
					l := addr.Line(rng.Intn(256))
					write := rng.Intn(3) == 0
					switch {
					case m.cached[c][l] && rng.Intn(4) == 0:
						dirty := m.dirty[c][l]
						m.apply(t, cs.name, i, cs.slice.L2Evict(c, l, dirty))
						delete(m.cached[c], l)
						delete(m.dirty[c], l)
					case m.cached[c][l]:
						if write && !m.dirty[c][l] {
							m.dirtyEver[l] = true // before apply: the writeback may be immediate
							m.apply(t, cs.name, i, cs.slice.Upgrade(c, l))
							m.dirty[c][l] = true
						}
						// Clean read hit: no directory traffic.
					default:
						if write {
							m.dirtyEver[l] = true
						}
						res := cs.slice.Miss(c, l, write)
						if res.Source == directory.SourceRemoteL2 {
							src := int(res.SrcCore)
							if src < 0 || src >= cores || !m.cached[src][l] {
								t.Fatalf("%s step %d: forward from core %d which does not cache line %#x",
									cs.name, i, src, uint64(l))
							}
						}
						m.apply(t, cs.name, i, res.Actions)
						if !res.NoFill {
							m.cached[c][l] = true
							m.dirty[c][l] = write
						}
					}
					if hk != nil {
						m.apply(t, cs.name, i, hk.Housekeep())
					}
					if i%16 == 0 {
						m.audit(t, cs, i)
					}
				}
				m.audit(t, cs, steps)
			})
		}
	}
}
