package directory

import (
	"fmt"

	"secdir/internal/addr"
	"secdir/internal/cachesim"
	"secdir/internal/rng"
)

// WayPartSlice is the §1/§11 alternative secure design: the ED and TD ways of
// every set are statically partitioned across cores (the DAWG-style
// way-partitioning the paper argues against). Look-ups search all ways, but a
// core's fills and the evictions they cause stay inside the core's own ways,
// so an attacker cannot displace a victim's entries — at the cost of tiny
// effective associativity and a hard core-count ceiling:
//
//	"this approach is inflexible, low performing, and limited, since servers
//	 can have many more cores than directory ways." (§1)
//
// NewWayPartitioned returns an error once cores exceed the way count of
// either structure, materialising the "limited" criticism.
type WayPartSlice struct {
	ed *partTable
	td *partTable

	// buf is the reusable action accumulator; see ActionBuf for the aliasing
	// contract the Slice methods inherit.
	buf ActionBuf

	stat Stats
}

// Verify interface conformance.
var _ Slice = (*WayPartSlice)(nil)

// WayPartParams configures a WayPartSlice.
type WayPartParams struct {
	Cores          int
	TDSets, TDWays int
	EDSets, EDWays int
	Index          cachesim.Index
	Seed           int64
}

// NewWayPartitioned returns a way-partitioned directory slice, or an error if
// the machine has more cores than directory ways (the design's hard limit).
func NewWayPartitioned(p WayPartParams) (*WayPartSlice, error) {
	if p.Cores > p.TDWays || p.Cores > p.EDWays {
		return nil, fmt.Errorf("directory: way partitioning cannot serve %d cores with only %d TD / %d ED ways",
			p.Cores, p.TDWays, p.EDWays)
	}
	if p.TDSets != p.EDSets {
		return nil, fmt.Errorf("directory: TD and ED must have the same set count")
	}
	s := &WayPartSlice{
		ed: newPartTable(p.EDSets, p.EDWays, p.Cores, p.Index, p.Seed),
		td: newPartTable(p.TDSets, p.TDWays, p.Cores, p.Index, p.Seed+1),
	}
	s.buf.Grow(tdedBufCap)
	return s, nil
}

// partEntry is one way of a partitioned table.
type partEntry struct {
	line  addr.Line
	valid bool
	meta  Meta
}

// partTable is a set-associative table whose ways are statically owned by
// cores. Fills by core c may only (re)use c's ways; look-ups scan every way.
type partTable struct {
	sets, ways, cores int
	index             cachesim.Index
	rng               rng.Rand
	arr               []partEntry
	// wayLo[c]..wayHi[c] is core c's way range (remainder ways distributed
	// to the low-numbered cores).
	wayLo, wayHi []int
}

func newPartTable(sets, ways, cores int, index cachesim.Index, seed int64) *partTable {
	t := &partTable{
		sets: sets, ways: ways, cores: cores,
		index: index,
		rng:   rng.New(seed),
		arr:   make([]partEntry, sets*ways),
		wayLo: make([]int, cores),
		wayHi: make([]int, cores),
	}
	base, extra := ways/cores, ways%cores
	w := 0
	for c := 0; c < cores; c++ {
		t.wayLo[c] = w
		w += base
		if c < extra {
			w++
		}
		t.wayHi[c] = w
	}
	return t
}

func (t *partTable) set(i int) []partEntry { return t.arr[i*t.ways : (i+1)*t.ways] }

// find scans every way of the line's set (look-ups are not partitioned).
func (t *partTable) find(l addr.Line) *partEntry {
	s := t.set(t.index.Of(l))
	for i := range s {
		if s[i].valid && s[i].line == l {
			return &s[i]
		}
	}
	return nil
}

// insert places the entry into core's way range, evicting a random resident
// entry of the same range if it is full.
func (t *partTable) insert(core int, l addr.Line, m Meta) (victim addr.Line, vm Meta, evicted bool) {
	s := t.set(t.index.Of(l))
	lo, hi := t.wayLo[core], t.wayHi[core]
	for i := lo; i < hi; i++ {
		if !s[i].valid {
			s[i] = partEntry{line: l, valid: true, meta: m}
			return 0, Meta{}, false
		}
	}
	vi := lo + t.rng.Intn(hi-lo)
	victim, vm = s[vi].line, s[vi].meta
	s[vi] = partEntry{line: l, valid: true, meta: m}
	return victim, vm, true
}

// remove deletes the line wherever it lives.
func (t *partTable) remove(l addr.Line) (Meta, bool) {
	if e := t.find(l); e != nil {
		m := e.meta
		*e = partEntry{}
		return m, true
	}
	return Meta{}, false
}

// Miss implements Slice. The protocol mirrors the Appendix-A-fixed baseline;
// only placement differs (requester-owned ways).
func (s *WayPartSlice) Miss(core int, line addr.Line, write bool) MissResult {
	s.buf.Reset()
	if e := s.ed.find(line); e != nil {
		s.stat.EDHits++
		res := MissResult{
			Where:   WhereED,
			Source:  SourceRemoteL2,
			SrcCore: int32(e.meta.Sharers.First()),
		}
		edServe(&s.buf, &e.meta, core, line, write)
		res.Actions = s.buf.Actions()
		return res
	}
	if e := s.td.find(line); e != nil {
		s.stat.TDHits++
		res := MissResult{Where: WhereTD}
		if e.meta.HasData {
			res.Source = SourceLLC
		} else {
			res.Source = SourceRemoteL2
			res.SrcCore = int32(e.meta.Sharers.First())
		}
		meta := e.meta
		if write {
			meta.Sharers.ForEach(func(c int) {
				if c != core {
					s.buf.Emit(Action{Kind: InvalidateL2, Core: c, Line: line, Reason: ReasonCoherence})
				}
			})
			s.td.remove(line)
			s.stat.TDToED++
			s.insertED(core, line, Meta{Sharers: Bitset(0).Set(core), Dirty: true})
		} else {
			// Victim-cache promotion: entry stays in the TD, data-less.
			if meta.HasData && meta.Dirty {
				s.buf.Emit(Action{Kind: WritebackMem, Line: line, Reason: ReasonCoherence})
			}
			e.meta.HasData = false
			e.meta.Dirty = false
			e.meta.Sharers = e.meta.Sharers.Set(core)
		}
		res.Actions = s.buf.Actions()
		return res
	}
	s.stat.MemFetches++
	s.insertED(core, line, Meta{Sharers: Bitset(0).Set(core), Dirty: write})
	return MissResult{
		Where:     WhereNone,
		Source:    SourceMemory,
		Exclusive: !write,
		Actions:   s.buf.Actions(),
	}
}

// insertED fills into the requester's ED ways; a displaced entry migrates to
// the TD — still within the same core's TD ways, so all interference stays
// inside one partition. Side effects land in s.buf.
func (s *WayPartSlice) insertED(core int, line addr.Line, m Meta) {
	v, vm, evicted := s.ed.insert(core, line, m)
	if !evicted {
		return
	}
	s.stat.EDToTD++
	vm.HasData = false
	s.insertTD(core, v, vm)
}

// insertTD fills into the owner's TD ways; a conflict discards the victim
// entry and invalidates its copies — by construction these are entries the
// same core allocated, so only self-conflicts occur. Side effects land in
// s.buf.
func (s *WayPartSlice) insertTD(core int, line addr.Line, m Meta) {
	v, vm, evicted := s.td.insert(core, line, m)
	if !evicted {
		return
	}
	if vm.HasData && vm.Dirty {
		s.buf.Emit(Action{Kind: WritebackMem, Line: v, Reason: ReasonTDConflict})
	}
	vm.Sharers.ForEach(func(c int) {
		s.buf.Emit(Action{Kind: InvalidateL2, Core: c, Line: v, Reason: ReasonTDConflict})
		s.stat.InclusionVictims++
	})
	s.stat.TDDrop++
}

// Upgrade implements Slice.
func (s *WayPartSlice) Upgrade(core int, line addr.Line) []Action {
	s.buf.Reset()
	if e := s.ed.find(line); e != nil {
		edServe(&s.buf, &e.meta, core, line, true)
		return s.buf.Actions()
	}
	if e := s.td.find(line); e != nil {
		meta := e.meta
		meta.Sharers.ForEach(func(c int) {
			if c != core {
				s.buf.Emit(Action{Kind: InvalidateL2, Core: c, Line: line, Reason: ReasonCoherence})
			}
		})
		s.td.remove(line)
		s.stat.TDToED++
		s.insertED(core, line, Meta{Sharers: Bitset(0).Set(core), Dirty: true})
		return s.buf.Actions()
	}
	panic("directory: upgrade for a line with no directory entry")
}

// L2Evict implements Slice.
//
// Placement detail with security weight: the migrated TD entry goes into the
// partition of a *remaining sharer* when one exists, not the evictor's.
// Naively placing it with the evictor leaks on shared (read-only) lines: an
// attacker that reloads the victim's line and then evicts its own copy would
// drag the victim's entry into the attacker's partition, where the attacker's
// own conflicts can discard it — re-opening the evict+reload channel this
// design exists to close. (DAWG-style partitioning ties placement to the
// protection domain for the same reason.)
func (s *WayPartSlice) L2Evict(core int, line addr.Line, dirty bool) []Action {
	s.buf.Reset()
	if e := s.ed.find(line); e != nil {
		meta := e.meta
		if !meta.Sharers.Has(core) {
			panic("directory: L2 evict by a non-sharer (ED)")
		}
		s.ed.remove(line)
		s.stat.EDToTD++
		meta.Sharers = meta.Sharers.Clear(core)
		meta.HasData = true
		meta.Dirty = dirty
		owner := core
		if r := meta.Sharers.First(); r >= 0 {
			owner = r
		}
		s.insertTD(owner, line, meta)
		return s.buf.Actions()
	}
	if e := s.td.find(line); e != nil {
		if !e.meta.Sharers.Has(core) {
			panic("directory: L2 evict by a non-sharer (TD)")
		}
		e.meta.Sharers = e.meta.Sharers.Clear(core)
		e.meta.HasData = true
		e.meta.Dirty = e.meta.Dirty || dirty
		return nil
	}
	panic("directory: L2 evict for a line with no directory entry")
}

// Find implements Slice.
func (s *WayPartSlice) Find(line addr.Line) (Meta, Where, bool) {
	if e := s.ed.find(line); e != nil {
		return e.meta, WhereED, true
	}
	if e := s.td.find(line); e != nil {
		return e.meta, WhereTD, true
	}
	return Meta{}, WhereNone, false
}

// Stats implements Slice.
func (s *WayPartSlice) Stats() *Stats { return &s.stat }

// ForEach calls fn for every entry in the slice until fn returns false.
func (s *WayPartSlice) ForEach(fn func(line addr.Line, m Meta, w Where) bool) {
	for i := range s.ed.arr {
		if s.ed.arr[i].valid && !fn(s.ed.arr[i].line, s.ed.arr[i].meta, WhereED) {
			return
		}
	}
	for i := range s.td.arr {
		if s.td.arr[i].valid && !fn(s.td.arr[i].line, s.td.arr[i].meta, WhereTD) {
			return
		}
	}
}
