package directory

import (
	"secdir/internal/addr"
	"secdir/internal/cachesim"
	"secdir/internal/rng"
)

// CeaserSlice is the CEASER-style gradual-remap variant of the randomized
// directory (Qureshi, "CEASER: mitigating conflict-based cache attacks via
// encrypted-address and remapping"): like RandMapSlice the set index is a
// keyed mix of the line address, but instead of a bulk re-key that relocates
// the whole directory at once, the slice keeps two keys live and a remap
// pointer sweeps the set space. Sets below the pointer are already indexed
// under the next-epoch key; sets above still use the current one. Every
// RekeyEvery directory operations the pointer advances by RemapStep sets and
// the resident entries of the swept window are relocated; when the pointer
// reaches the end, the epoch rolls (next key becomes current) and the sweep
// restarts.
//
// The security argument is the same as RandMapSlice's — and so is the bound:
// remapping limits how long a discovered eviction set stays useful, but a
// flood attack that does not need a stable set survives (the leaderboard
// shows both designs hold off targeted probes yet stay measurable under
// flooding). The gradual sweep is what real hardware ships, because the bulk
// remap's latency spike is unshippable; modelling it costs one compare on
// the index path.
type CeaserSlice struct {
	inner *BaselineSlice
	sets  int
	mask  uint64

	// keyCur/keyNext are the two live epoch keys; sets whose current-key index
	// is below ptr have already been remapped to keyNext.
	keyCur, keyNext uint64
	ptr             int
	rng             rng.Rand

	// rekeyEvery is the number of directory operations between remap steps;
	// 0 disables remapping. remapStep is the number of sets swept per step.
	rekeyEvery int
	remapStep  int
	ops        int

	// Epochs counts completed full sweeps; Relocated counts entries moved.
	Epochs    uint64
	Relocated uint64

	// scratch is the reusable relocation staging buffer.
	scratch []ceaserEntry
}

// Verify interface conformance.
var (
	_ Slice       = (*CeaserSlice)(nil)
	_ Housekeeper = (*CeaserSlice)(nil)
)

// ceaserEntry stages one directory entry across a remap step.
type ceaserEntry struct {
	line addr.Line
	meta Meta
	ed   bool
}

// CeaserParams configures a CeaserSlice.
type CeaserParams struct {
	TDSets, TDWays int
	EDSets, EDWays int
	// RekeyEvery is the number of slice operations between remap steps
	// (0 = never remap).
	RekeyEvery int
	// RemapStep is the number of sets relocated per step; 0 picks
	// max(1, sets/64), a full epoch every 64 steps.
	RemapStep int
	Seed      int64
}

// NewCeaser returns a gradually-remapped randomized directory slice.
func NewCeaser(p CeaserParams) *CeaserSlice {
	s := &CeaserSlice{
		sets:       p.TDSets,
		mask:       uint64(p.TDSets - 1),
		rng:        rng.New(p.Seed ^ 0xCEA5E4),
		rekeyEvery: p.RekeyEvery,
		remapStep:  p.RemapStep,
	}
	if s.remapStep <= 0 {
		s.remapStep = s.sets / 64
		if s.remapStep < 1 {
			s.remapStep = 1
		}
	}
	s.keyCur = s.rng.Uint64()
	s.keyNext = s.rng.Uint64()
	// The index closure reads the live key state, so the one inner slice
	// built here follows every pointer advance and epoch roll — entries are
	// relocated physically by Housekeep, never rebuilt wholesale.
	idx := cachesim.FuncIndex(func(l addr.Line) int {
		h := mixLine(s.keyCur, l, s.mask)
		if h < s.ptr {
			return mixLine(s.keyNext, l, s.mask)
		}
		return h
	})
	s.inner = NewBaseline(BaselineParams{
		TDSets: p.TDSets, TDWays: p.TDWays,
		EDSets: p.EDSets, EDWays: p.EDWays,
		Index:        idx,
		AppendixAFix: true, // give the randomized design its best case
		Seed:         p.Seed,
	})
	return s
}

// Housekeep implements Housekeeper: at transaction boundaries, advance the
// remap pointer and relocate the entries of the swept window under the
// next-epoch key. Entries that conflict at their new location are disposed
// of through the normal baseline victim paths, and those disposal actions
// are what the engine applies.
func (s *CeaserSlice) Housekeep() []Action {
	if s.rekeyEvery <= 0 || s.ops < s.rekeyEvery {
		return nil
	}
	s.ops = 0
	d := s.inner.d
	d.Buf.Reset()
	newPtr := s.ptr + s.remapStep
	if newPtr > s.sets {
		newPtr = s.sets
	}
	// Stage the window's residents. They are physically stored at their
	// current-key set (the index map flips only once ptr advances), so the
	// removals below must happen before the pointer moves.
	s.scratch = s.scratch[:0]
	d.ED.Range(func(l addr.Line, m *Meta) bool {
		if h := mixLine(s.keyCur, l, s.mask); h >= s.ptr && h < newPtr {
			s.scratch = append(s.scratch, ceaserEntry{line: l, meta: *m, ed: true})
		}
		return true
	})
	d.TD.Range(func(l addr.Line, m *Meta) bool {
		if h := mixLine(s.keyCur, l, s.mask); h >= s.ptr && h < newPtr {
			s.scratch = append(s.scratch, ceaserEntry{line: l, meta: *m})
		}
		return true
	})
	for i := range s.scratch {
		if s.scratch[i].ed {
			d.ED.Remove(s.scratch[i].line)
		} else {
			d.TD.Remove(s.scratch[i].line)
		}
	}
	s.ptr = newPtr
	for i := range s.scratch {
		e := &s.scratch[i]
		if e.ed {
			d.InsertED(e.line, e.meta)
		} else {
			d.InsertTD(e.line, e.meta)
		}
	}
	s.Relocated += uint64(len(s.scratch))
	if s.ptr >= s.sets {
		// Epoch roll: the next key takes over (the mapping is unchanged at
		// this instant — every set is already below the pointer) and a fresh
		// key arms the next sweep.
		s.keyCur, s.keyNext = s.keyNext, s.rng.Uint64()
		s.ptr = 0
		s.Epochs++
	}
	return d.Buf.Actions()
}

// Miss implements Slice.
func (s *CeaserSlice) Miss(core int, line addr.Line, write bool) MissResult {
	s.ops++
	return s.inner.Miss(core, line, write)
}

// Upgrade implements Slice.
func (s *CeaserSlice) Upgrade(core int, line addr.Line) []Action {
	s.ops++
	return s.inner.Upgrade(core, line)
}

// L2Evict implements Slice.
func (s *CeaserSlice) L2Evict(core int, line addr.Line, dirty bool) []Action {
	s.ops++
	return s.inner.L2Evict(core, line, dirty)
}

// Find implements Slice.
func (s *CeaserSlice) Find(line addr.Line) (Meta, Where, bool) {
	return s.inner.Find(line)
}

// Stats implements Slice.
func (s *CeaserSlice) Stats() *Stats { return s.inner.Stats() }

// TDED exposes the inner structures (tests only).
func (s *CeaserSlice) TDED() *TDED { return s.inner.TDED() }
