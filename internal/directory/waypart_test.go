package directory

import (
	"testing"

	"secdir/internal/addr"
	"secdir/internal/cachesim"
)

func newWayPart(t *testing.T, cores int) *WayPartSlice {
	t.Helper()
	s, err := NewWayPartitioned(WayPartParams{
		Cores:  cores,
		TDSets: tSets, TDWays: 8,
		EDSets: tSets, EDWays: 8,
		Index: cachesim.FuncIndex(index),
		Seed:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestWayPartCoreLimit(t *testing.T) {
	// The design's hard ceiling: more cores than ways is unbuildable (§1
	// "servers can have many more cores than directory ways").
	_, err := NewWayPartitioned(WayPartParams{
		Cores:  16,
		TDSets: tSets, TDWays: 11,
		EDSets: tSets, EDWays: 12,
		Index: cachesim.FuncIndex(index),
		Seed:  1,
	})
	if err == nil {
		t.Fatal("16 cores accepted with 11 TD ways")
	}
}

func TestWayPartWayRanges(t *testing.T) {
	s := newWayPart(t, 4) // 8 ways / 4 cores = 2 each
	for c := 0; c < 4; c++ {
		if s.ed.wayHi[c]-s.ed.wayLo[c] != 2 {
			t.Errorf("core %d owns %d ED ways, want 2", c, s.ed.wayHi[c]-s.ed.wayLo[c])
		}
	}
	// Uneven split: 8 ways / 3 cores = 3,3,2.
	u, err := NewWayPartitioned(WayPartParams{
		Cores: 3, TDSets: tSets, TDWays: 8, EDSets: tSets, EDWays: 8, Index: cachesim.FuncIndex(index), Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	widths := []int{}
	total := 0
	for c := 0; c < 3; c++ {
		w := u.ed.wayHi[c] - u.ed.wayLo[c]
		widths = append(widths, w)
		total += w
	}
	if total != 8 || widths[0] != 3 || widths[1] != 3 || widths[2] != 2 {
		t.Fatalf("way split = %v (total %d)", widths, total)
	}
}

// TestWayPartIsolation is the security property: one core flooding its own
// partition can never displace another core's entries.
func TestWayPartIsolation(t *testing.T) {
	s := newWayPart(t, 4)
	victim := lineInSet(0, 0)
	s.Miss(0, victim, false) // core 0's entry

	// Core 1 floods the same set far beyond its partition size.
	for i := 1; i < 64; i++ {
		s.Miss(1, lineInSet(0, i), false)
	}
	if m, w, ok := s.Find(victim); !ok || !m.Sharers.Has(0) {
		t.Fatalf("victim entry displaced by another core's flood (ok=%v, where=%v)", ok, w)
	}
	if s.Stats().InclusionVictims == 0 {
		t.Fatal("core 1's own entries should have self-conflicted")
	}
}

// TestWayPartSelfConflicts: the flip side — the owner's tiny partition
// conflicts quickly under its own traffic.
func TestWayPartSelfConflicts(t *testing.T) {
	s := newWayPart(t, 4)
	var acts []Action
	for i := 0; i < 16; i++ {
		res := s.Miss(0, lineInSet(1, i), false)
		acts = append(acts, res.Actions...)
	}
	// Core 0 owns 2 ED + 2 TD ways: 16 live lines cannot fit; conflicts
	// must have invalidated some of core 0's own lines.
	var selfInv int
	for _, a := range acts {
		if a.Kind == InvalidateL2 {
			if a.Core != 0 {
				t.Fatalf("conflict invalidated core %d's line, want only core 0 (self)", a.Core)
			}
			selfInv++
		}
	}
	if selfInv == 0 {
		t.Fatal("no self-conflicts despite 4-entry partition and 16 live lines")
	}
}

func TestWayPartProtocolBasics(t *testing.T) {
	s := newWayPart(t, 4)
	l := lineInSet(2, 0)
	// ① memory fetch.
	res := s.Miss(0, l, false)
	if res.Where != WhereNone || !res.Exclusive {
		t.Fatalf("cold miss %+v", res)
	}
	// Read sharing.
	res = s.Miss(1, l, false)
	if res.Where != WhereED || res.SrcCore != 0 {
		t.Fatalf("share %+v", res)
	}
	// Write invalidates the other sharer.
	res = s.Miss(2, l, true)
	inv := 0
	for _, a := range res.Actions {
		if a.Kind == InvalidateL2 && a.Line == l {
			inv++
		}
	}
	if inv != 2 {
		t.Fatalf("write invalidated %d sharers, want 2", inv)
	}
	// Eviction to the LLC and promotion back.
	acts := s.L2Evict(2, l, true)
	_ = acts
	if m, w, _ := s.Find(l); w != WhereTD || !m.HasData || !m.Dirty {
		t.Fatalf("after evict: %+v in %v", m, w)
	}
	res = s.Miss(3, l, false)
	if res.Source != SourceLLC {
		t.Fatalf("LLC refetch %+v", res)
	}
	var _ = addr.Line(0)
}
