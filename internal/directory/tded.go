package directory

import (
	"secdir/internal/addr"
	"secdir/internal/cachesim"
)

// TDED bundles the Traditional and Extended Directory of one slice and the
// migration mechanics they share between the baseline and SecDir designs.
//
// The TD is coupled to the LLC slice: TD ways == LLC ways and a TD entry owns
// the corresponding LLC data slot (Meta.HasData). The TD uses LRU replacement;
// the ED uses random replacement (§7).
type TDED struct {
	ED *cachesim.Cache[Meta]
	TD *cachesim.Cache[Meta]

	// Buf is the slice's reusable action accumulator. The owning design's
	// top-level Slice operations Reset it on entry and return its contents;
	// the migration helpers below only append, so a whole transition chain
	// (ED→TD→VD cascades included) lands in one buffer without allocating in
	// steady state.
	Buf ActionBuf

	// AppendixAFix allows TD entries with empty LLC slots, so ED→TD
	// migrations keep exclusively-held private copies alive (Appendix A).
	AppendixAFix bool

	// TDVictim disposes of an entry evicted by a TD set conflict, appending
	// its side effects to Buf. The baseline discards it and invalidates all
	// copies (transition ② of the traditional directory); SecDir migrates
	// entries with sharers into the sharers' VDs (transition ③).
	TDVictim func(line addr.Line, m Meta)

	Stat Stats
}

// tdedBufCap is the initial action-buffer capacity of a slice. A single
// transition chain emits at most a couple of actions per sharer (invalidation
// plus write-back) and the simulator caps sharers at 64, so 64 pre-grown
// slots keep the steady-state path from ever growing the buffer.
const tdedBufCap = 64

// NewTDED builds the TD and ED of one slice. index maps a line to its
// set index (shared by TD and ED, which have the same set count — a
// requirement for the deadlock-free ED↔TD migration of §4.2.1).
func NewTDED(tdSets, tdWays, edSets, edWays int, index cachesim.Index, fix bool, seed int64) *TDED {
	if tdSets != edSets {
		panic("directory: TD and ED must have the same number of sets")
	}
	d := &TDED{
		ED:           cachesim.New[Meta](edSets, edWays, index, cachesim.Random, seed),
		TD:           cachesim.New[Meta](tdSets, tdWays, index, cachesim.Random, seed+1),
		AppendixAFix: fix,
	}
	d.Buf.Grow(tdedBufCap)
	return d
}

// Reset restores the TD and ED to the state NewTDED would produce with the
// given seed, reusing their storage: both caches emptied (ED reseeded with
// seed, TD with seed+1, matching construction), the action buffer cleared and
// the counters zeroed. The TDVictim hook is preserved.
func (d *TDED) Reset(seed int64) {
	d.ED.Reset(seed)
	d.TD.Reset(seed + 1)
	d.Buf.Reset()
	d.Stat = Stats{}
}

// InsertED places an entry in the ED, appending any migration side effects to
// Buf. A full set evicts a random resident entry, which migrates to the TD;
// the TD insertion happens after the ED slot is freed so a TD conflict victim
// can never cycle back (same set index, one free slot).
func (d *TDED) InsertED(line addr.Line, m Meta) {
	d.InsertEDAt(cachesim.Cursor{}, cachesim.Cursor{}, line, m)
}

// InsertEDAt is InsertED consuming the fill cursors a missing lookup left
// behind: edCur from the ED scan of line, tdCur from the TD scan. ED and TD
// share one index, so an evicted ED victim migrates into the very TD set the
// TD cursor was scanned in — both re-scans are skipped when the cursors are
// still fresh. Zero or stale cursors degrade to full scans.
func (d *TDED) InsertEDAt(edCur, tdCur cachesim.Cursor, line addr.Line, m Meta) {
	v, evicted := d.ED.PutAt(edCur, line, m)
	if !evicted {
		return
	}
	d.Stat.EDToTD++
	d.InsertTDAt(tdCur, v.Line, d.edVictimMeta(v.Line, v.Data))
}

// edVictimMeta implements the ED→TD movement for an entry evicted by an ED
// set conflict, returning the metadata the TD entry should carry and
// appending any inclusion-victim invalidation to Buf.
func (d *TDED) edVictimMeta(line addr.Line, m Meta) Meta {
	if d.AppendixAFix {
		// Fixed behaviour: the TD entry is associated with an empty LLC
		// line; private copies are untouched.
		m.HasData = false
	} else if m.Sharers.Count() == 1 {
		// Skylake-X limitation: every TD entry must have data in the LLC.
		// The line is copied to the LLC and the exclusively-held private
		// copy is invalidated — the inclusion victim that the prime+probe
		// attack of [46] exploits.
		core := m.Sharers.First()
		d.Buf.Emit(Action{Kind: InvalidateL2, Core: core, Line: line, Reason: ReasonEDConflict})
		d.Stat.InclusionVictims++
		m.Sharers = 0
		m.HasData = true
		m.Dirty = false // a dirty copy is written back by the engine
	} else {
		// Shared lines get a (clean) LLC copy; sharers keep their S copies.
		m.HasData = true
		m.Dirty = false
	}
	return m
}

// InsertTD places an entry in the TD, appending any disposal side effects to
// Buf. A full set evicts the LRU entry, which is handed to the TDVictim hook.
func (d *TDED) InsertTD(line addr.Line, m Meta) {
	d.InsertTDAt(cachesim.Cursor{}, line, m)
}

// InsertTDAt is InsertTD consuming the fill cursor of a missing TD scan of a
// line in the same set.
func (d *TDED) InsertTDAt(tdCur cachesim.Cursor, line addr.Line, m Meta) {
	v, evicted := d.TD.PutAt(tdCur, line, m)
	if !evicted {
		return
	}
	if d.TDVictim == nil {
		panic("directory: TD conflict with no TDVictim hook")
	}
	d.TDVictim(v.Line, v.Data)
}

// PromoteTDToED implements the write path of §2.1/§4.2: the TD entry is
// removed first (freeing a slot in the same set) and re-inserted into the ED
// with the writer as the only sharer; an ED conflict victim lands in the slot
// just freed, so the migration cannot deadlock. Side effects go to Buf.
func (d *TDED) PromoteTDToED(writer int, line addr.Line, m Meta) {
	_, slot := d.TD.ProbeSlot(line)
	d.PromoteTDToEDAt(cachesim.Cursor{}, slot, writer, line, m)
}

// PromoteTDToEDAt is PromoteTDToED with the line's TD slot already located
// (by the caller's hitting lookup) and the ED fill cursor from the caller's
// missed ED scan. The ED victim's TD insertion cannot reuse a TD cursor: the
// removal below already mutated the TD, but it also freed a slot in the very
// set the victim lands in, so the fallback Put finds it.
func (d *TDED) PromoteTDToEDAt(edCur cachesim.Cursor, tdSlot, writer int, line addr.Line, m Meta) {
	// The LLC data slot is dropped with the TD entry; a dirty LLC copy needs
	// no write-back because the writer takes ownership of the data and will
	// hold it Modified.
	d.TD.RemoveSlot(tdSlot)
	d.Stat.TDToED++
	m.Sharers.ForEach(func(c int) {
		if c != writer {
			d.Buf.Emit(Action{Kind: InvalidateL2, Core: c, Line: line, Reason: ReasonCoherence})
		}
	})
	d.InsertEDAt(edCur, cachesim.Cursor{}, line, Meta{Sharers: Bitset(0).Set(writer), Dirty: true})
}

// ReadHitTD serves a read miss out of the TD, updating entry placement per
// the design's Appendix-A behaviour:
//
// The LLC is a victim cache: serving the read promotes the line into the
// requester's L2 and drops the LLC copy (no duplication), writing a dirty
// copy back to memory. What happens to the directory entry depends on the
// Appendix-A behaviour:
//
//   - Fixed design (SecDir): TD entries may own empty LLC lines, so the
//     entry stays in the TD — now data-less — and gains the requester's
//     presence bit. This matches §2.1/§4.2: an entry moves TD→ED only on a
//     write. It is also what lets shared entries oscillate between TD and
//     the VDs (transitions ③/④) and produce the VD hits of §10.2.
//   - Unfixed Skylake-X: every TD entry must own LLC data, so the entry
//     cannot remain in the TD and migrates back to the ED with the line.
//
// Any write-back lands in Buf; the boolean reports whether the LLC supplied
// the data (false means a sharer's L2 forwards it).
func (d *TDED) ReadHitTD(core int, line addr.Line, m *Meta) (fromLLC bool) {
	if d.AppendixAFix {
		return d.ReadHitTDAt(cachesim.Cursor{}, -1, core, line, m)
	}
	_, slot := d.TD.ProbeSlot(line)
	return d.ReadHitTDAt(cachesim.Cursor{}, slot, core, line, m)
}

// ReadHitTDAt is ReadHitTD with the line's TD slot already located and the
// ED fill cursor from the caller's missed ED scan (both used only on the
// unfixed TD→ED migration path; the fixed design mutates the entry in place
// and ignores them).
func (d *TDED) ReadHitTDAt(edCur cachesim.Cursor, tdSlot, core int, line addr.Line, m *Meta) (fromLLC bool) {
	fromLLC = m.HasData
	if d.AppendixAFix {
		if m.HasData && m.Dirty {
			d.Buf.Emit(Action{Kind: WritebackMem, Line: line, Reason: ReasonCoherence})
		}
		m.HasData = false
		m.Dirty = false
		m.Sharers = m.Sharers.Set(core)
		return fromLLC
	}
	meta := *m
	d.TD.RemoveSlot(tdSlot)
	d.Stat.TDToED++
	if meta.HasData && meta.Dirty {
		d.Buf.Emit(Action{Kind: WritebackMem, Line: line, Reason: ReasonCoherence})
	}
	meta.Sharers = meta.Sharers.Set(core)
	meta.Dirty = false
	meta.HasData = false
	d.InsertEDAt(edCur, cachesim.Cursor{}, line, meta)
	return fromLLC
}

// BaselineTDVictim is the traditional directory's disposal of a TD conflict
// victim (transition ② of Figure 3(a)): the entry is discarded, the LLC copy
// is written back if dirty, and every private copy is invalidated, creating
// inclusion victims.
func (d *TDED) BaselineTDVictim(line addr.Line, m Meta) {
	if m.HasData && m.Dirty {
		d.Buf.Emit(Action{Kind: WritebackMem, Line: line, Reason: ReasonTDConflict})
	}
	m.Sharers.ForEach(func(c int) {
		d.Buf.Emit(Action{Kind: InvalidateL2, Core: c, Line: line, Reason: ReasonTDConflict})
		d.Stat.InclusionVictims++
	})
	d.Stat.TDDrop++
}

// Find locates a line in the ED or TD without mutating replacement state.
func (d *TDED) Find(line addr.Line) (Meta, Where, bool) {
	if m, ok := d.ED.Probe(line); ok {
		return *m, WhereED, true
	}
	if m, ok := d.TD.Probe(line); ok {
		return *m, WhereTD, true
	}
	return Meta{}, WhereNone, false
}
