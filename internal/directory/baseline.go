package directory

import (
	"secdir/internal/addr"
	"secdir/internal/cachesim"
)

// BaselineSlice is one slice of the Skylake-X-style directory of Figure 2(a):
// a Traditional Directory coupled to the LLC slice plus a 12-way Extended
// Directory. Its TD conflicts discard entries and invalidate every private
// copy — the behaviour that directory side-channel attacks exploit.
type BaselineSlice struct {
	d *TDED
}

// Verify interface conformance.
var _ Slice = (*BaselineSlice)(nil)

// BaselineParams configures a BaselineSlice.
type BaselineParams struct {
	TDSets, TDWays int
	EDSets, EDWays int
	Index          cachesim.Index
	AppendixAFix   bool
	Seed           int64
}

// NewBaseline returns an empty baseline directory slice.
func NewBaseline(p BaselineParams) *BaselineSlice {
	s := &BaselineSlice{
		d: NewTDED(p.TDSets, p.TDWays, p.EDSets, p.EDWays, p.Index, p.AppendixAFix, p.Seed),
	}
	s.d.TDVictim = s.d.BaselineTDVictim
	return s
}

// Reset restores the slice to the state NewBaseline would produce with the
// given seed, reusing its storage.
func (s *BaselineSlice) Reset(seed int64) {
	s.d.Reset(seed)
}

// Miss implements Slice.
func (s *BaselineSlice) Miss(core int, line addr.Line, write bool) MissResult {
	s.d.Buf.Reset()
	m, slot, edCur := s.d.ED.AccessCursor(line)
	if slot >= 0 {
		s.d.Stat.EDHits++
		res := MissResult{
			Where:   WhereED,
			Source:  SourceRemoteL2,
			SrcCore: int32(m.Sharers.First()),
		}
		edServe(&s.d.Buf, m, core, line, write)
		res.Actions = s.d.Buf.Actions()
		return res
	}
	m, slot, tdCur := s.d.TD.AccessCursor(line)
	if slot >= 0 {
		s.d.Stat.TDHits++
		res := MissResult{Where: WhereTD}
		if !m.HasData {
			res.SrcCore = int32(m.Sharers.First())
		}
		if write {
			meta := *m
			res.Source = sourceOf(meta)
			s.d.PromoteTDToEDAt(edCur, slot, core, line, meta)
		} else {
			fromLLC := s.d.ReadHitTDAt(edCur, slot, core, line, m)
			if fromLLC {
				res.Source = SourceLLC
			} else {
				res.Source = SourceRemoteL2
			}
		}
		res.Actions = s.d.Buf.Actions()
		return res
	}
	// Transition ①: fetch from memory, allocate the entry in the ED.
	s.d.Stat.MemFetches++
	meta := Meta{Sharers: Bitset(0).Set(core), Dirty: write}
	s.d.InsertEDAt(edCur, tdCur, line, meta)
	return MissResult{
		Where:     WhereNone,
		Source:    SourceMemory,
		Exclusive: !write,
		Actions:   s.d.Buf.Actions(),
	}
}

// sourceOf returns where the data for a TD-resident line comes from.
func sourceOf(m Meta) Source {
	if m.HasData {
		return SourceLLC
	}
	return SourceRemoteL2
}

// edServe updates an ED entry in place for a miss served out of the ED,
// appending the coherence invalidations a write requires to buf.
func edServe(buf *ActionBuf, m *Meta, core int, line addr.Line, write bool) {
	if !write {
		m.Sharers = m.Sharers.Set(core)
		return
	}
	m.Sharers.ForEach(func(c int) {
		if c != core {
			buf.Emit(Action{Kind: InvalidateL2, Core: c, Line: line, Reason: ReasonCoherence})
		}
	})
	m.Sharers = Bitset(0).Set(core)
	m.Dirty = true
}

// Upgrade implements Slice.
func (s *BaselineSlice) Upgrade(core int, line addr.Line) []Action {
	s.d.Buf.Reset()
	if m, ok := s.d.ED.Access(line); ok {
		edServe(&s.d.Buf, m, core, line, true)
		return s.d.Buf.Actions()
	}
	if m, ok := s.d.TD.Access(line); ok {
		s.d.Stat.TDHits++
		s.d.PromoteTDToED(core, line, *m)
		return s.d.Buf.Actions()
	}
	panic("directory: upgrade for a line with no directory entry")
}

// L2Evict implements Slice: the line leaves the core's L2 and is written into
// the LLC as a victim, so the entry moves (or stays) in the TD with HasData.
func (s *BaselineSlice) L2Evict(core int, line addr.Line, dirty bool) []Action {
	s.d.Buf.Reset()
	if m, slot := s.d.ED.ProbeSlot(line); slot >= 0 {
		meta := *m
		if !meta.Sharers.Has(core) {
			panic("directory: L2 evict by a non-sharer (ED)")
		}
		s.d.ED.RemoveSlot(slot)
		s.d.Stat.EDToTD++
		meta.Sharers = meta.Sharers.Clear(core)
		meta.HasData = true
		meta.Dirty = dirty
		s.d.InsertTD(line, meta)
		return s.d.Buf.Actions()
	}
	if m, ok := s.d.TD.Probe(line); ok {
		if !m.Sharers.Has(core) {
			panic("directory: L2 evict by a non-sharer (TD)")
		}
		m.Sharers = m.Sharers.Clear(core)
		m.HasData = true
		m.Dirty = m.Dirty || dirty
		return nil
	}
	panic("directory: L2 evict for a line with no directory entry")
}

// Find implements Slice.
func (s *BaselineSlice) Find(line addr.Line) (Meta, Where, bool) {
	return s.d.Find(line)
}

// Stats implements Slice.
func (s *BaselineSlice) Stats() *Stats { return &s.d.Stat }

// TDED exposes the underlying structures for tests and the attack toolkit.
func (s *BaselineSlice) TDED() *TDED { return s.d }
