package directory

import (
	"fmt"
	"math/rand"
	"testing"

	"secdir/internal/addr"
	"secdir/internal/cachesim"
)

// sliceOracle mirrors a directory slice's externally visible contract:
// which cores hold each line, derived only from the operations issued and
// the actions returned. After every operation, Find's sharer vector must
// match the oracle exactly, for every line ever touched.
type sliceOracle struct {
	holders map[addr.Line]Bitset
}

func newSliceOracle() *sliceOracle { return &sliceOracle{holders: map[addr.Line]Bitset{}} }

func (o *sliceOracle) applyActions(acts []Action) {
	for _, a := range acts {
		if a.Kind == InvalidateL2 {
			o.holders[a.Line] = o.holders[a.Line].Clear(a.Core)
		}
	}
}

// checkLine verifies the slice's Find against the oracle for one line.
func checkLine(s Slice, o *sliceOracle, l addr.Line) error {
	want := o.holders[l]
	m, w, ok := s.Find(l)
	if want != 0 {
		if !ok {
			return fmt.Errorf("line %#x: oracle holders %b but no directory entry", uint64(l), want)
		}
		if m.Sharers != want {
			return fmt.Errorf("line %#x in %v: sharers %b, oracle %b", uint64(l), w, m.Sharers, want)
		}
		return nil
	}
	if ok && m.Sharers != 0 {
		return fmt.Errorf("line %#x in %v: stale sharers %b, oracle empty", uint64(l), w, m.Sharers)
	}
	return nil
}

// fuzzSlice drives random operations against the slice and the oracle in
// lockstep.
func fuzzSlice(t *testing.T, name string, s Slice, seed int64, ops int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	o := newSliceOracle()
	const cores = 4
	lineSpace := int64(512)

	for i := 0; i < ops; i++ {
		c := rng.Intn(cores)
		l := addr.Line(rng.Int63n(lineSpace))
		h := o.holders[l]
		switch {
		case !h.Has(c):
			write := rng.Intn(4) == 0
			res := s.Miss(c, l, write)
			o.applyActions(res.Actions)
			if !res.NoFill {
				o.holders[l] = o.holders[l].Set(c)
			}
			if write && !res.NoFill && o.holders[l] != Bitset(0).Set(c) {
				t.Fatalf("%s op %d: write left other sharers (%b)", name, i, o.holders[l])
			}
		case rng.Intn(3) == 0:
			acts := s.Upgrade(c, l)
			o.applyActions(acts)
			if !o.holders[l].Has(c) {
				t.Fatalf("%s op %d: upgrade invalidated the writer", name, i)
			}
			if o.holders[l].Count() != 1 {
				t.Fatalf("%s op %d: upgrade left %d sharers", name, i, o.holders[l].Count())
			}
		default:
			acts := s.L2Evict(c, l, rng.Intn(2) == 0)
			o.holders[l] = o.holders[l].Clear(c)
			o.applyActions(acts)
		}

		if hk, ok := s.(Housekeeper); ok && i%50 == 49 {
			o.applyActions(hk.Housekeep())
		}

		if err := checkLine(s, o, l); err != nil {
			t.Fatalf("%s op %d: %v", name, i, err)
		}
		if i%500 == 499 {
			for ll := range o.holders {
				if err := checkLine(s, o, ll); err != nil {
					t.Fatalf("%s op %d (sweep): %v", name, i, err)
				}
			}
		}
	}
}

// TestSliceFuzzAgainstOracle fuzzes every directory implementation against
// the sharer oracle. Tiny geometries force constant conflicts so every
// migration and disposal path is exercised.
func TestSliceFuzzAgainstOracle(t *testing.T) {
	idx := func(l addr.Line) int { return int(l) % 8 }
	const ops = 6000

	t.Run("baseline-fixed", func(t *testing.T) {
		fuzzSlice(t, "baseline-fixed", NewBaseline(BaselineParams{
			TDSets: 8, TDWays: 2, EDSets: 8, EDWays: 2,
			Index: cachesim.FuncIndex(idx), AppendixAFix: true, Seed: 1,
		}), 11, ops)
	})
	t.Run("baseline-unfixed", func(t *testing.T) {
		fuzzSlice(t, "baseline-unfixed", NewBaseline(BaselineParams{
			TDSets: 8, TDWays: 2, EDSets: 8, EDWays: 2,
			Index: cachesim.FuncIndex(idx), AppendixAFix: false, Seed: 2,
		}), 12, ops)
	})
	t.Run("way-partitioned", func(t *testing.T) {
		wp, err := NewWayPartitioned(WayPartParams{
			Cores:  4,
			TDSets: 8, TDWays: 4, EDSets: 8, EDWays: 4,
			Index: cachesim.FuncIndex(idx), Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		fuzzSlice(t, "way-partitioned", wp, 13, ops)
	})
	t.Run("rand-mapped", func(t *testing.T) {
		fuzzSlice(t, "rand-mapped", NewRandMapped(RandMapParams{
			TDSets: 8, TDWays: 2, EDSets: 8, EDWays: 2,
			RekeyEvery: 400, Seed: 4,
		}), 14, ops)
	})
}
