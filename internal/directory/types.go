// Package directory defines the coherence-directory model shared by the
// baseline (Skylake-X-style) design and SecDir: the entry format, the
// Traditional Directory (TD) coupled to the LLC slice, the Extended Directory
// (ED), and the baseline directory slice of Figure 2(a)/3(a) of the paper.
//
// A directory slice is the single source of truth for entry placement. Every
// mutating operation returns a list of Actions (cache invalidations, memory
// write-backs) that the coherence engine applies, which makes each transition
// of Table 2 testable in isolation.
package directory

import (
	"fmt"
	"math/bits"

	"secdir/internal/addr"
)

// Bitset is a presence bit vector over cores ("full-mapped" encoding, §7).
// The simulator supports up to 64 cores; larger machines are analysed
// analytically in internal/area.
type Bitset uint64

// Set returns the bitset with core's bit set.
func (b Bitset) Set(core int) Bitset { return b | 1<<uint(core) }

// Clear returns the bitset with core's bit cleared.
func (b Bitset) Clear(core int) Bitset { return b &^ (1 << uint(core)) }

// Has reports whether core's bit is set.
func (b Bitset) Has(core int) bool { return b&(1<<uint(core)) != 0 }

// Count returns the number of sharers.
func (b Bitset) Count() int { return bits.OnesCount64(uint64(b)) }

// First returns the lowest-numbered sharer, or -1 if empty.
func (b Bitset) First() int {
	if b == 0 {
		return -1
	}
	return bits.TrailingZeros64(uint64(b))
}

// ForEach calls fn for every set core in ascending order.
func (b Bitset) ForEach(fn func(core int)) {
	for v := uint64(b); v != 0; v &= v - 1 {
		fn(bits.TrailingZeros64(v))
	}
}

// Meta is the coherence metadata of a directory entry. The line address is
// the entry's tag and is kept by the containing structure.
type Meta struct {
	// Sharers is the presence bit vector: which cores' private caches hold
	// the line.
	Sharers Bitset
	// Dirty means the tracked copy (LLC copy for TD entries, a private copy
	// for ED entries) differs from memory.
	Dirty bool
	// HasData means the LLC slice holds the line's data. Only meaningful in
	// the TD, whose entries own LLC slots. With the Appendix-A fix a TD
	// entry may exist with HasData == false.
	HasData bool
}

// Where identifies the structure holding a directory entry. The underlying
// type is a byte so it packs tightly in MissResult, which the hot path
// returns by value.
type Where uint8

const (
	// WhereNone means no directory structure holds an entry for the line.
	WhereNone Where = iota
	// WhereED means the entry is in the Extended Directory.
	WhereED
	// WhereTD means the entry is in the Traditional Directory.
	WhereTD
	// WhereVD means the entry lives in one or more Victim Directory banks.
	WhereVD
)

// String implements fmt.Stringer.
func (w Where) String() string {
	switch w {
	case WhereNone:
		return "none"
	case WhereED:
		return "ED"
	case WhereTD:
		return "TD"
	case WhereVD:
		return "VD"
	default:
		return fmt.Sprintf("Where(%d)", int(w))
	}
}

// ActionKind identifies a side effect the coherence engine must apply.
type ActionKind int

const (
	// InvalidateL2 removes the line from the core's private L1/L2. If the
	// private copy is dirty and the Reason is a conflict (not a coherence
	// invalidation whose requester takes ownership of the data), the engine
	// writes the line back to main memory.
	InvalidateL2 ActionKind = iota
	// WritebackMem records that the LLC's dirty copy of the line was
	// written back to main memory (the data slot is then dropped).
	WritebackMem
)

// Reason explains why an Action was generated; the security evaluation keys
// off it (an attacker-forced cross-core InvalidateL2 with a conflict reason
// is an inclusion victim).
type Reason int

const (
	// ReasonCoherence: a write required invalidating other sharers. The
	// requester takes ownership of the (possibly dirty) data.
	ReasonCoherence Reason = iota
	// ReasonTDConflict: a TD set conflict discarded the entry (transition ②
	// of the traditional directory) — the attack lever of §2.3.
	ReasonTDConflict
	// ReasonEDConflict: the unfixed Skylake-X behaviour of Appendix A — an
	// ED→TD migration invalidated an exclusively-held private copy.
	ReasonEDConflict
	// ReasonVDConflict: a cuckoo conflict in the owner's own VD bank
	// (transition ⑤) — a self-conflict, safe under the threat model.
	ReasonVDConflict
)

// String implements fmt.Stringer.
func (r Reason) String() string {
	switch r {
	case ReasonCoherence:
		return "coherence"
	case ReasonTDConflict:
		return "td-conflict"
	case ReasonEDConflict:
		return "ed-conflict"
	case ReasonVDConflict:
		return "vd-conflict"
	default:
		return fmt.Sprintf("Reason(%d)", int(r))
	}
}

// Action is a side effect of a directory transition.
type Action struct {
	Kind   ActionKind
	Core   int // target core for InvalidateL2
	Line   addr.Line
	Reason Reason
}

// ActionBuf accumulates the side effects of one directory transition into a
// reusable buffer. Every slice implementation owns one: the top-level
// operations (Miss, Upgrade, L2Evict, Housekeep) truncate it on entry and the
// internal migration helpers only append, so the steady-state access path
// performs no allocations — the buffer grows to the longest transition chain
// ever seen and is reused thereafter.
//
// Aliasing contract: the slices returned through MissResult.Actions and by
// Upgrade, L2Evict and Housekeep alias this buffer, so they are valid only
// until the next mutating call on the same slice. Callers must apply or copy
// the actions before issuing that call (the coherence engine applies them
// immediately).
type ActionBuf struct {
	acts []Action
}

// Reset truncates the buffer, keeping its capacity for reuse.
func (b *ActionBuf) Reset() { b.acts = b.acts[:0] }

// Emit appends one action.
func (b *ActionBuf) Emit(a Action) { b.acts = append(b.acts, a) }

// Len returns the number of accumulated actions.
func (b *ActionBuf) Len() int { return len(b.acts) }

// Actions returns the accumulated actions, or nil if there are none. The
// returned slice aliases the buffer and is invalidated by the next Reset.
func (b *ActionBuf) Actions() []Action {
	if len(b.acts) == 0 {
		return nil
	}
	return b.acts
}

// Grow ensures the buffer can hold at least n actions without reallocating.
func (b *ActionBuf) Grow(n int) {
	if cap(b.acts) < n {
		acts := make([]Action, len(b.acts), n)
		copy(acts, b.acts)
		b.acts = acts
	}
}

// Source identifies where the data for a miss is supplied from. Byte-sized
// for the same packing reason as Where.
type Source uint8

const (
	// SourceMemory: the line is fetched from DRAM.
	SourceMemory Source = iota
	// SourceLLC: the LLC slice supplies the line.
	SourceLLC
	// SourceRemoteL2: another core's private cache forwards the line.
	SourceRemoteL2
)

// String implements fmt.Stringer.
func (s Source) String() string {
	switch s {
	case SourceMemory:
		return "memory"
	case SourceLLC:
		return "llc"
	case SourceRemoteL2:
		return "remote-l2"
	default:
		return fmt.Sprintf("Source(%d)", int(s))
	}
}

// MissResult is the directory's answer to an L2 miss. It is returned by
// value on every simulated L2 miss, so the layout is packed: narrow integer
// fields keep the whole struct at 40 bytes (slice header + one word),
// cheap to copy without a runtime block-copy call.
type MissResult struct {
	// Actions to apply.
	Actions []Action
	// SrcCore is the forwarding core when Source == SourceRemoteL2.
	SrcCore int32
	// Where the entry was found; WhereNone means a memory fetch allocated a
	// fresh entry (transition ①).
	Where Where
	// Source of the data.
	Source Source
	// VDBanksProbed is the number of VD bank arrays actually read; with the
	// Empty Bit this can be less than the number of banks, down to zero.
	VDBanksProbed uint8
	// VDBatchRounds is the number of batched search rounds the look-up took
	// (1 for the fully parallel design, more with a §5.1 batch limit).
	VDBatchRounds uint8
	// Exclusive reports that the requester may install the line in the
	// Exclusive state (memory fetch, no other sharers).
	Exclusive bool
	// NoFill tells the engine to serve the access without installing the
	// line in the requester's private caches: the requester's VD entry
	// could not be allocated (its cuckoo chain displaced the new entry),
	// and a cached line must never lack a directory entry.
	NoFill bool
	// VDConsulted reports that the Victim Directories were looked up
	// (SecDir only: the ED and TD missed).
	VDConsulted bool
}

// Stats counts per-slice directory events. Field names follow the paper's
// transition numbers (Figure 3, Table 2).
type Stats struct {
	EDHits     uint64 // L2 misses satisfied by an ED entry
	TDHits     uint64 // L2 misses satisfied by a TD entry
	VDHits     uint64 // L2 misses satisfied by a VD entry (SecDir)
	MemFetches uint64 // L2 misses that went to DRAM (transition ①)

	EDToTD uint64 // ED victim migrated to TD
	TDToED uint64 // write promoted a TD entry to ED
	TDDrop uint64 // transition ②: TD conflict discarded an entry
	TDToVD uint64 // transition ③: TD conflict migrated the entry to VDs
	VDToTD uint64 // transition ④: L2 eviction consolidated VD entries into TD
	VDDrop uint64 // transition ⑤: VD self-conflict evicted an entry

	InclusionVictims uint64 // cross-structure invalidations of live private copies

	VDLookups     uint64 // VD bank arrays probed (with EB filtering if enabled)
	VDLookupsNoEB uint64 // VD bank probes a design without EB would perform
}

// Add accumulates other into s.
func (s *Stats) Add(o Stats) {
	s.EDHits += o.EDHits
	s.TDHits += o.TDHits
	s.VDHits += o.VDHits
	s.MemFetches += o.MemFetches
	s.EDToTD += o.EDToTD
	s.TDToED += o.TDToED
	s.TDDrop += o.TDDrop
	s.TDToVD += o.TDToVD
	s.VDToTD += o.VDToTD
	s.VDDrop += o.VDDrop
	s.InclusionVictims += o.InclusionVictims
	s.VDLookups += o.VDLookups
	s.VDLookupsNoEB += o.VDLookupsNoEB
}

// Housekeeper is implemented by slices that need periodic maintenance the
// engine must run at transaction boundaries (e.g. the randomized design's
// re-keying): mid-transition maintenance could invalidate the very line a
// fill has in flight.
type Housekeeper interface {
	// Housekeep performs pending maintenance and returns its side effects.
	Housekeep() []Action
}

// Slice is one directory slice. Implementations: Baseline (this package) and
// SecDir (internal/core).
//
// Every action slice an implementation returns (MissResult.Actions, Upgrade,
// L2Evict, Housekeep) aliases the implementation's reusable ActionBuf and is
// valid only until the next mutating call on the same slice; see ActionBuf.
type Slice interface {
	// Miss handles an L2 miss by the core (GetS when write == false, GetX
	// when true). The requester must not already be a sharer.
	Miss(core int, line addr.Line, write bool) MissResult

	// Upgrade handles a write hit on a Shared private copy: all other
	// sharers are invalidated and the entry follows the write rules
	// (TD entries migrate to ED).
	Upgrade(core int, line addr.Line) []Action

	// L2Evict tells the directory that the core evicted the line from its
	// private L2 (writing it into the LLC as a victim, unless the shared
	// ED/TD are disabled). dirty reports whether the evicted copy was
	// modified.
	L2Evict(core int, line addr.Line, dirty bool) []Action

	// Find locates the entry for a line without mutating state.
	Find(line addr.Line) (Meta, Where, bool)

	// Stats returns the slice's counters.
	Stats() *Stats
}
