package directory

import (
	"testing"

	"secdir/internal/addr"
	"secdir/internal/cachesim"
)

// test geometry: tiny TD/ED with an identity-ish index so conflicting lines
// are easy to construct. Lines k*8+s map to set s.
const (
	tSets = 8
	tTD   = 2
	tED   = 2
)

func index(l addr.Line) int { return int(l) % tSets }

func newSlice(fix bool) *BaselineSlice {
	return NewBaseline(BaselineParams{
		TDSets: tSets, TDWays: tTD,
		EDSets: tSets, EDWays: tED,
		Index:        cachesim.FuncIndex(index),
		AppendixAFix: fix,
		Seed:         1,
	})
}

// lineInSet returns the i-th distinct line mapping to the given set.
func lineInSet(set, i int) addr.Line { return addr.Line(set + i*tSets) }

func TestTransition1AllocatesED(t *testing.T) {
	s := newSlice(true)
	l := lineInSet(0, 0)
	res := s.Miss(3, l, false)
	if res.Where != WhereNone || res.Source != SourceMemory || !res.Exclusive {
		t.Fatalf("cold miss: %+v", res)
	}
	m, w, ok := s.Find(l)
	if !ok || w != WhereED || !m.Sharers.Has(3) || m.Sharers.Count() != 1 {
		t.Fatalf("after ①: meta=%+v where=%v ok=%v", m, w, ok)
	}
	// A write-allocate must not grant Exclusive separately (it is Modified).
	res = s.Miss(4, lineInSet(1, 0), true)
	if res.Exclusive {
		t.Fatal("write miss reported Exclusive")
	}
	if m, _, _ := s.Find(lineInSet(1, 0)); !m.Dirty {
		t.Fatal("write-allocated entry not dirty")
	}
}

func TestEDReadSharing(t *testing.T) {
	s := newSlice(true)
	l := lineInSet(2, 0)
	s.Miss(0, l, false)
	res := s.Miss(1, l, false)
	if res.Where != WhereED || res.Source != SourceRemoteL2 || res.SrcCore != 0 {
		t.Fatalf("second read: %+v", res)
	}
	if len(res.Actions) != 0 {
		t.Fatalf("read sharing generated actions: %v", res.Actions)
	}
	m, _, _ := s.Find(l)
	if m.Sharers.Count() != 2 {
		t.Fatalf("sharers = %d", m.Sharers.Count())
	}
}

func TestEDWriteInvalidatesSharers(t *testing.T) {
	s := newSlice(true)
	l := lineInSet(2, 0)
	s.Miss(0, l, false)
	s.Miss(1, l, false)
	res := s.Miss(2, l, true)
	if len(res.Actions) != 2 {
		t.Fatalf("write actions = %v", res.Actions)
	}
	for _, a := range res.Actions {
		if a.Kind != InvalidateL2 || a.Reason != ReasonCoherence || a.Line != l {
			t.Fatalf("bad action %+v", a)
		}
	}
	m, _, _ := s.Find(l)
	if !m.Sharers.Has(2) || m.Sharers.Count() != 1 || !m.Dirty {
		t.Fatalf("post-write meta %+v", m)
	}
}

// fillED inserts n fresh single-sharer lines into set 0 via cold misses,
// starting at index start, using distinct cores so sharer sets are known.
func fillED(s *BaselineSlice, set, start, n int) {
	for i := 0; i < n; i++ {
		s.Miss(i%8, lineInSet(set, start+i), false)
	}
}

func TestEDConflictMigratesToTDFixed(t *testing.T) {
	s := newSlice(true)
	fillED(s, 0, 0, tED+1) // one more than ED holds
	// Exactly one entry migrated to TD, keeping its sharer, with no data.
	var tdCount int
	s.d.TD.Range(func(l addr.Line, m *Meta) bool {
		tdCount++
		if m.HasData || m.Sharers.Count() != 1 {
			t.Fatalf("fixed migration produced %+v", m)
		}
		return true
	})
	if tdCount != 1 {
		t.Fatalf("TD holds %d entries, want 1", tdCount)
	}
	if s.Stats().InclusionVictims != 0 {
		t.Fatal("fixed migration created inclusion victims")
	}
}

func TestEDConflictUnfixedInvalidatesExclusive(t *testing.T) {
	s := newSlice(false)
	var acts []Action
	for i := 0; i < tED+1; i++ {
		res := s.Miss(i, lineInSet(0, i), false)
		acts = append(acts, res.Actions...)
	}
	// The unfixed migration invalidates the (single) private copy.
	var invs int
	for _, a := range acts {
		if a.Kind == InvalidateL2 {
			invs++
			if a.Reason != ReasonEDConflict {
				t.Fatalf("reason = %v", a.Reason)
			}
		}
	}
	if invs != 1 {
		t.Fatalf("unfixed migration produced %d invalidations, want 1", invs)
	}
	if s.Stats().InclusionVictims != 1 {
		t.Fatalf("InclusionVictims = %d", s.Stats().InclusionVictims)
	}
	// The migrated entry owns LLC data and has no sharers.
	var m Meta
	found := false
	s.d.TD.Range(func(l addr.Line, mm *Meta) bool { m = *mm; found = true; return false })
	if !found || !m.HasData || m.Sharers != 0 {
		t.Fatalf("unfixed TD entry %+v (found=%v)", m, found)
	}
}

func TestTransition2BaselineTDConflict(t *testing.T) {
	s := newSlice(true)
	// Occupy TD with entries that still have sharers: evict lines from L2s.
	for i := 0; i < tTD; i++ {
		l := lineInSet(0, i)
		s.Miss(0, l, false)
		s.Miss(1, l, false)     // two sharers
		s.L2Evict(1, l, i == 0) // core 1 evicts (dirty for i==0): entry -> TD, sharer {0}
	}
	// Overflow the TD via an ED conflict chain: fill ED, then one more.
	fillED(s, 0, tTD, tED)
	res := s.Miss(7, lineInSet(0, tTD+tED), false)
	_ = res
	st := s.Stats()
	if st.TDDrop == 0 {
		t.Fatal("TD conflict did not drop an entry")
	}
	if st.InclusionVictims == 0 {
		t.Fatal("baseline TD conflict with sharers created no inclusion victims")
	}
}

func TestWritePromotesTDToED(t *testing.T) {
	s := newSlice(true)
	l := lineInSet(3, 0)
	s.Miss(0, l, false)
	s.L2Evict(0, l, false) // entry to TD with data, no sharers
	if _, w, _ := s.Find(l); w != WhereTD {
		t.Fatalf("entry not in TD (%v)", w)
	}
	res := s.Miss(1, l, true)
	if res.Where != WhereTD || res.Source != SourceLLC {
		t.Fatalf("write on TD entry: %+v", res)
	}
	m, w, _ := s.Find(l)
	if w != WhereED || !m.Sharers.Has(1) || !m.Dirty {
		t.Fatalf("after promote: %+v in %v", m, w)
	}
	if s.Stats().TDToED != 1 {
		t.Fatalf("TDToED = %d", s.Stats().TDToED)
	}
}

func TestReadHitTDFixedStaysDataless(t *testing.T) {
	s := newSlice(true)
	l := lineInSet(4, 0)
	s.Miss(0, l, false)
	s.L2Evict(0, l, true) // dirty victim into LLC
	res := s.Miss(1, l, false)
	if res.Source != SourceLLC || res.Where != WhereTD {
		t.Fatalf("read hit TD: %+v", res)
	}
	// The dirty LLC copy is written back on promotion to the L2.
	foundWB := false
	for _, a := range res.Actions {
		if a.Kind == WritebackMem && a.Line == l {
			foundWB = true
		}
	}
	if !foundWB {
		t.Fatal("dirty LLC promotion did not write back")
	}
	m, w, _ := s.Find(l)
	if w != WhereTD || m.HasData || m.Dirty || !m.Sharers.Has(1) {
		t.Fatalf("fixed read-hit entry %+v in %v", m, w)
	}
}

func TestReadHitTDUnfixedPromotesToED(t *testing.T) {
	s := newSlice(false)
	l := lineInSet(4, 0)
	s.Miss(0, l, false)
	s.L2Evict(0, l, false)
	res := s.Miss(1, l, false)
	if res.Source != SourceLLC {
		t.Fatalf("source = %v", res.Source)
	}
	if _, w, _ := s.Find(l); w != WhereED {
		t.Fatalf("unfixed read hit left entry in %v, want ED", w)
	}
}

func TestL2EvictFromTDClearsBit(t *testing.T) {
	s := newSlice(true)
	l := lineInSet(5, 0)
	s.Miss(0, l, false)
	s.Miss(1, l, false)
	s.L2Evict(0, l, false) // ED -> TD, sharers {1}, HasData
	m, w, _ := s.Find(l)
	if w != WhereTD || !m.HasData || m.Sharers.Count() != 1 || !m.Sharers.Has(1) {
		t.Fatalf("after first evict: %+v in %v", m, w)
	}
	s.L2Evict(1, l, true) // remaining sharer evicts dirty
	m, w, _ = s.Find(l)
	if w != WhereTD || m.Sharers != 0 || !m.Dirty {
		t.Fatalf("after second evict: %+v in %v", m, w)
	}
}

func TestUpgradePaths(t *testing.T) {
	s := newSlice(true)
	l := lineInSet(6, 0)
	s.Miss(0, l, false)
	s.Miss(1, l, false)
	acts := s.Upgrade(0, l)
	if len(acts) != 1 || acts[0].Core != 1 || acts[0].Reason != ReasonCoherence {
		t.Fatalf("upgrade actions %v", acts)
	}
	m, _, _ := s.Find(l)
	if m.Sharers.Count() != 1 || !m.Sharers.Has(0) || !m.Dirty {
		t.Fatalf("after upgrade: %+v", m)
	}
}

func TestPanicsOnInconsistentCalls(t *testing.T) {
	s := newSlice(true)
	for _, f := range []func(){
		func() { s.Upgrade(0, lineInSet(7, 0)) },
		func() { s.L2Evict(0, lineInSet(7, 1), false) },
		func() {
			l := lineInSet(7, 2)
			s.Miss(0, l, false)
			s.L2Evict(5, l, false) // non-sharer
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on inconsistent protocol call")
				}
			}()
			f()
		}()
	}
}

func TestBitset(t *testing.T) {
	var b Bitset
	if b.Count() != 0 || b.First() != -1 {
		t.Fatal("zero bitset")
	}
	b = b.Set(3).Set(17).Set(3)
	if b.Count() != 2 || !b.Has(3) || !b.Has(17) || b.Has(4) {
		t.Fatalf("bitset ops: %b", b)
	}
	if b.First() != 3 {
		t.Fatalf("First = %d", b.First())
	}
	var got []int
	b.ForEach(func(c int) { got = append(got, c) })
	if len(got) != 2 || got[0] != 3 || got[1] != 17 {
		t.Fatalf("ForEach = %v", got)
	}
	b = b.Clear(3)
	if b.Has(3) || b.Count() != 1 {
		t.Fatalf("Clear: %b", b)
	}
}

func TestStringers(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{WhereED.String(), "ED"},
		{WhereVD.String(), "VD"},
		{WhereNone.String(), "none"},
		{SourceMemory.String(), "memory"},
		{SourceLLC.String(), "llc"},
		{ReasonTDConflict.String(), "td-conflict"},
		{ReasonVDConflict.String(), "vd-conflict"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("String() = %q, want %q", c.got, c.want)
		}
	}
}
