package directory

import (
	"fmt"

	"secdir/internal/addr"
	"secdir/internal/cachesim"
)

// TagPartSlice is the tag-partitioned / data-shared isolation design (after
// Ramkrishnan et al., "New attacks and defenses for randomized caches" /
// composable-partitioning line of work): every core owns a private tag
// partition that tracks exactly the lines in that core's L2, while data stays
// shared. A miss broadcasts over all partitions to find sharers (write-shared
// coherence); fills and the conflicts they cause stay strictly inside the
// requester's own partition, so a core can never displace another core's
// tracking state — cross-core conflict invalidations are impossible by
// construction.
//
// The price is capacity: each partition gets 1/N of the tag budget, so a
// partition conflict self-invalidates one of the core's own cached lines
// long before the L2 is full. Secure like way-partitioning, and like it the
// design trades effective associativity for isolation — the leaderboard's
// sim_ns_access column shows the bill.
//
// A partition entry needs no sharer vector and no data bit (the partition
// index IS the sharer, data lives wherever the protocol put it), which is
// the design's storage win: tag + valid per entry.
type TagPartSlice struct {
	cores int
	parts []*cachesim.Cache[struct{}]

	// buf is the reusable action accumulator; see ActionBuf for the aliasing
	// contract the Slice methods inherit.
	buf  ActionBuf
	stat Stats
}

// Verify interface conformance.
var _ Slice = (*TagPartSlice)(nil)

// TagPartParams configures a TagPartSlice. Sets×Ways is the whole slice's
// tag budget; each core's partition gets Ways/Cores ways (minimum 1).
type TagPartParams struct {
	Cores      int
	Sets, Ways int
	Index      cachesim.Index
	Seed       int64
}

// NewTagPartitioned returns an empty tag-partitioned slice.
func NewTagPartitioned(p TagPartParams) (*TagPartSlice, error) {
	if p.Cores <= 0 {
		return nil, fmt.Errorf("directory: tag partitioning needs at least one core, got %d", p.Cores)
	}
	waysPer := p.Ways / p.Cores
	if waysPer < 1 {
		waysPer = 1
	}
	s := &TagPartSlice{cores: p.Cores}
	for c := 0; c < p.Cores; c++ {
		s.parts = append(s.parts, cachesim.New[struct{}](p.Sets, waysPer, p.Index, cachesim.LRU, p.Seed+int64(c)*13))
	}
	s.buf.Grow(tdedBufCap)
	return s, nil
}

// sharers returns the set of cores whose partitions track the line.
func (s *TagPartSlice) sharers(line addr.Line) Bitset {
	var b Bitset
	for c := 0; c < s.cores; c++ {
		if _, ok := s.parts[c].Probe(line); ok {
			b = b.Set(c)
		}
	}
	return b
}

// insert places the line's tag in the core's own partition; a partition
// conflict self-invalidates the core's displaced line (the engine writes a
// dirty private copy back to memory). This is the design's only conflict
// path, and it never crosses cores.
func (s *TagPartSlice) insert(core int, line addr.Line) {
	v, evicted := s.parts[core].Put(line, struct{}{})
	if !evicted {
		return
	}
	s.buf.Emit(Action{Kind: InvalidateL2, Core: core, Line: v.Line, Reason: ReasonTDConflict})
	s.stat.TDDrop++
	s.stat.InclusionVictims++
}

// Miss implements Slice.
func (s *TagPartSlice) Miss(core int, line addr.Line, write bool) MissResult {
	s.buf.Reset()
	sh := s.sharers(line)
	res := MissResult{}
	if sh != 0 {
		s.stat.EDHits++
		res.Where = WhereED
		res.Source = SourceRemoteL2
		res.SrcCore = int32(sh.First())
		if write {
			sh.ForEach(func(c int) {
				s.parts[c].Remove(line)
				s.buf.Emit(Action{Kind: InvalidateL2, Core: c, Line: line, Reason: ReasonCoherence})
			})
		}
	} else {
		s.stat.MemFetches++
		res.Where = WhereNone
		res.Source = SourceMemory
		res.Exclusive = !write
	}
	s.insert(core, line)
	res.Actions = s.buf.Actions()
	return res
}

// Upgrade implements Slice.
func (s *TagPartSlice) Upgrade(core int, line addr.Line) []Action {
	s.buf.Reset()
	if _, ok := s.parts[core].Probe(line); !ok {
		panic("directory: upgrade for a line with no partition tag")
	}
	s.sharers(line).ForEach(func(c int) {
		if c != core {
			s.parts[c].Remove(line)
			s.buf.Emit(Action{Kind: InvalidateL2, Core: c, Line: line, Reason: ReasonCoherence})
		}
	})
	return s.buf.Actions()
}

// L2Evict implements Slice: the partition mirrors the core's L2, so the tag
// simply leaves with the line. With no victim LLC in this design, a dirty
// copy goes straight back to memory.
func (s *TagPartSlice) L2Evict(core int, line addr.Line, dirty bool) []Action {
	s.buf.Reset()
	if _, ok := s.parts[core].Remove(line); !ok {
		panic("directory: L2 evict for a line with no partition tag")
	}
	if dirty {
		s.buf.Emit(Action{Kind: WritebackMem, Line: line, Reason: ReasonCoherence})
	}
	return s.buf.Actions()
}

// Find implements Slice: the merged view over all partitions.
func (s *TagPartSlice) Find(line addr.Line) (Meta, Where, bool) {
	sh := s.sharers(line)
	if sh == 0 {
		return Meta{}, WhereNone, false
	}
	return Meta{Sharers: sh}, WhereED, true
}

// Stats implements Slice.
func (s *TagPartSlice) Stats() *Stats { return &s.stat }

// ForEach calls fn once per tracked line with the merged sharer set, until
// fn returns false (invariant checks and conformance tests). A line shared
// by k cores has k partition tags; it is reported from the lowest-numbered
// sharer's partition only.
func (s *TagPartSlice) ForEach(fn func(line addr.Line, m Meta, w Where) bool) {
	stop := false
	for c := 0; c < s.cores && !stop; c++ {
		cc := c
		s.parts[cc].Range(func(l addr.Line, _ *struct{}) bool {
			sh := s.sharers(l)
			if sh.First() != cc {
				return true // a lower-numbered sharer reports this line
			}
			if !fn(l, Meta{Sharers: sh}, WhereED) {
				stop = true
				return false
			}
			return true
		})
	}
}
