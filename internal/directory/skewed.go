package directory

import (
	"secdir/internal/addr"
	"secdir/internal/hashfn"
	"secdir/internal/rng"
)

// SkewedSlice is a SEED-style linearly-skewed directory slice (Constable &
// Unterluggauer, "Seeds of SEED: a side-channel resilient cache skewed by a
// linear function over a Galois field"): one unified table whose every way is
// indexed by its own secret invertible affine map over GF(2^n)
// (hashfn.GFHash). A line probes one candidate slot per way; a conflict can
// only evict from those W candidate sets, and which sets those are is a keyed
// function the attacker cannot compute — so targeted eviction-set
// construction fails, and the skew disperses even accidental conflicts
// across ways.
//
// The coherence protocol mirrors the Appendix-A-fixed baseline with the
// ED/TD split collapsed into one structure: a data-less entry (HasData ==
// false) plays the ED role (sharers tracked, data in a private cache), an
// entry with HasData owns the LLC victim copy like a TD entry. Entries never
// migrate between structures — placement is fixed by the skew — which keeps
// every transition a single-slot update.
type SkewedSlice struct {
	sets, ways int
	gf         *hashfn.GFHash
	arr        []skewEntry // way-major: way w occupies arr[w*sets : (w+1)*sets]
	rng        rng.Rand

	// buf is the reusable action accumulator; see ActionBuf for the aliasing
	// contract the Slice methods inherit.
	buf  ActionBuf
	stat Stats
}

// Verify interface conformance.
var _ Slice = (*SkewedSlice)(nil)

// skewEntry is one slot of the skewed table.
type skewEntry struct {
	line  addr.Line
	valid bool
	meta  Meta
}

// SkewedParams configures a SkewedSlice. Ways is the unified associativity
// (the baseline's TD + ED ways, so storage is comparable).
type SkewedParams struct {
	Sets, Ways int
	Seed       int64
}

// NewSkewed returns an empty skewed directory slice keyed by Seed.
func NewSkewed(p SkewedParams) *SkewedSlice {
	s := &SkewedSlice{
		sets: p.Sets,
		ways: p.Ways,
		gf:   hashfn.NewGFHash(p.Sets, p.Ways, p.Seed),
		arr:  make([]skewEntry, p.Sets*p.Ways),
		rng:  rng.New(p.Seed ^ 0x5EED5),
	}
	s.buf.Grow(tdedBufCap)
	return s
}

// slot returns way w's candidate slot for the line.
func (s *SkewedSlice) slot(w int, line addr.Line) *skewEntry {
	return &s.arr[w*s.sets+s.gf.Index(w, uint64(line))]
}

// find returns the entry holding the line, or nil.
func (s *SkewedSlice) find(line addr.Line) *skewEntry {
	for w := 0; w < s.ways; w++ {
		if e := s.slot(w, line); e.valid && e.line == line {
			return e
		}
	}
	return nil
}

// insert places a new entry in an empty candidate slot, or evicts a random
// way's resident — the skewed design's only conflict path. The victim is
// disposed of like a TD conflict: dirty LLC data is written back and every
// private copy is invalidated (ReasonTDConflict), but because the candidate
// sets are keyed, an attacker cannot choose whose entries those are.
func (s *SkewedSlice) insert(line addr.Line, m Meta) {
	for w := 0; w < s.ways; w++ {
		if e := s.slot(w, line); !e.valid {
			*e = skewEntry{line: line, valid: true, meta: m}
			return
		}
	}
	e := s.slot(s.rng.Intn(s.ways), line)
	v, vm := e.line, e.meta
	*e = skewEntry{line: line, valid: true, meta: m}
	if vm.HasData && vm.Dirty {
		s.buf.Emit(Action{Kind: WritebackMem, Line: v, Reason: ReasonTDConflict})
	}
	vm.Sharers.ForEach(func(c int) {
		s.buf.Emit(Action{Kind: InvalidateL2, Core: c, Line: v, Reason: ReasonTDConflict})
		s.stat.InclusionVictims++
	})
	s.stat.TDDrop++
}

// Miss implements Slice.
func (s *SkewedSlice) Miss(core int, line addr.Line, write bool) MissResult {
	s.buf.Reset()
	if e := s.find(line); e != nil {
		res := MissResult{}
		if e.meta.HasData {
			s.stat.TDHits++
			res.Where = WhereTD
			res.Source = SourceLLC
		} else {
			s.stat.EDHits++
			res.Where = WhereED
			res.Source = SourceRemoteL2
			res.SrcCore = int32(e.meta.Sharers.First())
		}
		if write {
			e.meta.Sharers.ForEach(func(c int) {
				if c != core {
					s.buf.Emit(Action{Kind: InvalidateL2, Core: c, Line: line, Reason: ReasonCoherence})
				}
			})
			// The writer takes ownership of the data; the LLC copy (if any)
			// is dropped without a write-back.
			e.meta = Meta{Sharers: Bitset(0).Set(core), Dirty: true}
		} else {
			// Victim-cache promotion: serving a read out of the LLC drops the
			// data slot (dirty data goes back to memory first); the entry
			// stays in place, now data-less.
			if e.meta.HasData && e.meta.Dirty {
				s.buf.Emit(Action{Kind: WritebackMem, Line: line, Reason: ReasonCoherence})
			}
			e.meta.HasData = false
			e.meta.Dirty = false
			e.meta.Sharers = e.meta.Sharers.Set(core)
		}
		res.Actions = s.buf.Actions()
		return res
	}
	s.stat.MemFetches++
	s.insert(line, Meta{Sharers: Bitset(0).Set(core), Dirty: write})
	return MissResult{
		Where:     WhereNone,
		Source:    SourceMemory,
		Exclusive: !write,
		Actions:   s.buf.Actions(),
	}
}

// Upgrade implements Slice.
func (s *SkewedSlice) Upgrade(core int, line addr.Line) []Action {
	s.buf.Reset()
	e := s.find(line)
	if e == nil {
		panic("directory: upgrade for a line with no directory entry")
	}
	e.meta.Sharers.ForEach(func(c int) {
		if c != core {
			s.buf.Emit(Action{Kind: InvalidateL2, Core: c, Line: line, Reason: ReasonCoherence})
		}
	})
	e.meta = Meta{Sharers: Bitset(0).Set(core), Dirty: true}
	return s.buf.Actions()
}

// L2Evict implements Slice: the evicted line is written into the LLC as a
// victim, so the entry gains HasData in place — no migration, hence no
// attacker-observable movement either.
func (s *SkewedSlice) L2Evict(core int, line addr.Line, dirty bool) []Action {
	e := s.find(line)
	if e == nil {
		panic("directory: L2 evict for a line with no directory entry")
	}
	if !e.meta.Sharers.Has(core) {
		panic("directory: L2 evict by a non-sharer (skewed)")
	}
	e.meta.Sharers = e.meta.Sharers.Clear(core)
	e.meta.HasData = true
	e.meta.Dirty = e.meta.Dirty || dirty
	return nil
}

// Find implements Slice.
func (s *SkewedSlice) Find(line addr.Line) (Meta, Where, bool) {
	if e := s.find(line); e != nil {
		if e.meta.HasData {
			return e.meta, WhereTD, true
		}
		return e.meta, WhereED, true
	}
	return Meta{}, WhereNone, false
}

// Stats implements Slice.
func (s *SkewedSlice) Stats() *Stats { return &s.stat }

// ForEach calls fn for every entry in the slice until fn returns false
// (invariant checks and conformance tests).
func (s *SkewedSlice) ForEach(fn func(line addr.Line, m Meta, w Where) bool) {
	for i := range s.arr {
		if !s.arr[i].valid {
			continue
		}
		where := WhereED
		if s.arr[i].meta.HasData {
			where = WhereTD
		}
		if !fn(s.arr[i].line, s.arr[i].meta, where) {
			return
		}
	}
}
