package directory

import (
	"secdir/internal/addr"
	"secdir/internal/cachesim"
)

// DLSSlice is a DLS-style directoryless slice (Liu et al.): there is no
// extended directory at all — the shared LLC is inclusive and its tag array
// doubles as the coherence directory. Every cached line owns an LLC slot
// (HasData is always true), sharers ride on the tag, and coherence is
// resolved entirely through the shared-cache tags.
//
// The design removes the directory side channel by construction — there are
// no ED/TD structures whose conflicts an attacker can mine. What remains is
// the classic inclusive-LLC channel: an LLC set conflict still evicts the
// victim's line together with every private copy (an inclusion victim), and
// because the LLC is set-indexed by plain address bits, eviction sets are as
// computable as ever. The leaderboard quantifies exactly this residual
// channel.
type DLSSlice struct {
	tags *cachesim.Cache[Meta]

	// buf is the reusable action accumulator; see ActionBuf for the aliasing
	// contract the Slice methods inherit.
	buf  ActionBuf
	stat Stats
}

// Verify interface conformance.
var _ Slice = (*DLSSlice)(nil)

// DLSParams configures a DLSSlice. Ways is the LLC associativity — the
// baseline's TD + ED ways, modelling the directory storage folded back into
// the shared cache.
type DLSParams struct {
	Sets, Ways int
	Index      cachesim.Index
	Seed       int64
}

// NewDLS returns an empty directoryless (shared-LLC-tag) slice.
func NewDLS(p DLSParams) *DLSSlice {
	s := &DLSSlice{
		tags: cachesim.New[Meta](p.Sets, p.Ways, p.Index, cachesim.LRU, p.Seed),
	}
	s.buf.Grow(tdedBufCap)
	return s
}

// Miss implements Slice.
func (s *DLSSlice) Miss(core int, line addr.Line, write bool) MissResult {
	s.buf.Reset()
	if m, ok := s.tags.Access(line); ok {
		s.stat.TDHits++
		res := MissResult{Where: WhereTD}
		if m.Sharers != 0 {
			// A private copy is closer than the LLC slot: forward it, which
			// also lets the engine downgrade an exclusive owner.
			res.Source = SourceRemoteL2
			res.SrcCore = int32(m.Sharers.First())
		} else {
			res.Source = SourceLLC
		}
		if write {
			m.Sharers.ForEach(func(c int) {
				if c != core {
					s.buf.Emit(Action{Kind: InvalidateL2, Core: c, Line: line, Reason: ReasonCoherence})
				}
			})
			m.Sharers = Bitset(0).Set(core)
			// The writer owns the freshest data; the LLC copy is stale, not
			// dirty (the dirty private copy returns via L2Evict).
			m.Dirty = false
		} else {
			m.Sharers = m.Sharers.Set(core)
		}
		res.Actions = s.buf.Actions()
		return res
	}
	// Inclusive fill: the line is installed in the LLC tags and the
	// requester's private cache at once. An LLC set conflict evicts a
	// resident line with every private copy — the inclusion victim this
	// design still produces.
	s.stat.MemFetches++
	s.insert(line, Meta{Sharers: Bitset(0).Set(core), HasData: true})
	return MissResult{
		Where:     WhereNone,
		Source:    SourceMemory,
		Exclusive: !write,
		Actions:   s.buf.Actions(),
	}
}

// insert places an entry in the LLC tags, disposing of an evicted victim:
// dirty LLC data is written back and all private copies are invalidated.
func (s *DLSSlice) insert(line addr.Line, m Meta) {
	v, evicted := s.tags.Put(line, m)
	if !evicted {
		return
	}
	if v.Data.Dirty {
		s.buf.Emit(Action{Kind: WritebackMem, Line: v.Line, Reason: ReasonTDConflict})
	}
	v.Data.Sharers.ForEach(func(c int) {
		s.buf.Emit(Action{Kind: InvalidateL2, Core: c, Line: v.Line, Reason: ReasonTDConflict})
		s.stat.InclusionVictims++
	})
	s.stat.TDDrop++
}

// Upgrade implements Slice.
func (s *DLSSlice) Upgrade(core int, line addr.Line) []Action {
	s.buf.Reset()
	m, ok := s.tags.Probe(line)
	if !ok {
		panic("directory: upgrade for a line with no LLC tag (inclusion violated)")
	}
	m.Sharers.ForEach(func(c int) {
		if c != core {
			s.buf.Emit(Action{Kind: InvalidateL2, Core: c, Line: line, Reason: ReasonCoherence})
		}
	})
	m.Sharers = Bitset(0).Set(core)
	m.Dirty = false
	return s.buf.Actions()
}

// L2Evict implements Slice: the LLC already holds the line (inclusion), so
// the eviction just clears the presence bit; a dirty private copy refreshes
// the LLC slot, marking it dirty.
func (s *DLSSlice) L2Evict(core int, line addr.Line, dirty bool) []Action {
	m, ok := s.tags.Probe(line)
	if !ok {
		panic("directory: L2 evict for a line with no LLC tag (inclusion violated)")
	}
	if !m.Sharers.Has(core) {
		panic("directory: L2 evict by a non-sharer (DLS)")
	}
	m.Sharers = m.Sharers.Clear(core)
	m.Dirty = m.Dirty || dirty
	return nil
}

// Find implements Slice.
func (s *DLSSlice) Find(line addr.Line) (Meta, Where, bool) {
	if m, ok := s.tags.Probe(line); ok {
		return *m, WhereTD, true
	}
	return Meta{}, WhereNone, false
}

// Stats implements Slice.
func (s *DLSSlice) Stats() *Stats { return &s.stat }

// ForEach calls fn for every entry in the slice until fn returns false
// (invariant checks and conformance tests).
func (s *DLSSlice) ForEach(fn func(line addr.Line, m Meta, w Where) bool) {
	s.tags.Range(func(l addr.Line, m *Meta) bool {
		return fn(l, *m, WhereTD)
	})
}
