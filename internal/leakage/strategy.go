// Package leakage is the statistical leakage-quantification lab: it turns
// the raw per-round signals of internal/attack into verdicts. A Monte-Carlo
// trial runner executes N independently seeded machines per (configuration,
// strategy) pair, splits each trial's rounds into victim-active and
// victim-idle halves under a randomized balanced schedule (TVLA-style
// fixed-vs-random interleaving), and tests the two observable distributions
// against each other: Welch's t (the TVLA |t| > 4.5 convention), a plug-in
// mutual-information / channel-capacity estimate in bits per trial, and a
// distinguisher ROC AUC with a seeded bootstrap confidence interval. The
// outcome is a Report comparing skylake-unfixed vs. skylake-fixed vs. secdir
// per strategy — "this configuration leaks / does not leak", at a stated
// confidence, instead of a bag of counters.
package leakage

import (
	"fmt"
	"strings"

	"secdir/internal/attack"
	"secdir/internal/coherence"
	"secdir/internal/config"
)

// Strategy is one pluggable attack behind the trial loop. The five directory
// attacks of internal/attack (PrimeProbeStrategy, EvictReloadStrategy,
// EvictTimeStrategy, FloodReloadStrategy, MonitorStrategy) implement it.
type Strategy interface {
	// Name is the strategy's CLI/JSON identifier.
	Name() string
	// DefaultLines is the conflict-set size used when the caller does not
	// override it (FloodReload's flood is far larger than a targeted set).
	DefaultLines() int
	// NewDriver mounts the attack against a fresh engine.
	NewDriver(e *coherence.Engine, p attack.Params) (attack.Driver, error)
}

// Strategies returns every built-in strategy, in canonical order.
func Strategies() []Strategy {
	return []Strategy{
		attack.PrimeProbeStrategy{},
		attack.EvictReloadStrategy{},
		attack.EvictTimeStrategy{},
		attack.FloodReloadStrategy{},
		attack.MonitorStrategy{},
	}
}

// DefaultSuite returns the strategies a full report runs by default: every
// built-in except floodreload, whose ~10^5 accesses per round make it a
// deliberate opt-in for Monte-Carlo trial counts.
func DefaultSuite() []Strategy {
	out := make([]Strategy, 0, 4)
	for _, s := range Strategies() {
		if s.Name() != "floodreload" {
			out = append(out, s)
		}
	}
	return out
}

// StrategyNames returns the names of ss in order.
func StrategyNames(ss []Strategy) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = s.Name()
	}
	return out
}

// ParseStrategy resolves a strategy name.
func ParseStrategy(name string) (Strategy, error) {
	for _, s := range Strategies() {
		if s.Name() == name {
			return s, nil
		}
	}
	return nil, fmt.Errorf("leakage: unknown strategy %q (want one of %s)",
		name, strings.Join(StrategyNames(Strategies()), ","))
}

// ConfigNames lists the directory configurations a report compares by
// default, in canonical order: the Skylake-X baseline with and without the
// Appendix A fix, and SecDir.
var ConfigNames = []string{"skylake-unfixed", "skylake-fixed", "secdir"}

// RivalNames lists the rival secure-directory designs the cross-defense
// leaderboard races against the canonical trio: the SEED-style GF(2^n)
// skewed directory, the directoryless shared LLC, the tag-partitioned /
// data-shared isolation design, and the gradually-remapped CEASER variant.
var RivalNames = []string{"skewed", "dls", "tagpart", "ceaser"}

// AllConfigNames returns every parseable configuration name: the canonical
// trio followed by the rivals.
func AllConfigNames() []string {
	return append(append([]string(nil), ConfigNames...), RivalNames...)
}

// rivalRekeyEvery is the remap cadence the leaderboard's ceaser configuration
// uses: one incremental step every 20k slice operations sweeps a full epoch
// in ~1.3M operations at the baseline's 64-step schedule.
const rivalRekeyEvery = 20_000

// ParseConfig resolves a configuration name at the given core count.
// skylake-unfixed is the Skylake-X baseline with the Appendix A
// implementation limitation (an ED→TD migration invalidates an Exclusive
// private copy); skylake-fixed is the same geometry with the fix, leaking
// only through genuine ED+TD set conflicts; secdir is the paper's defense.
// The rival names resolve to the alternative defenses of the cross-defense
// leaderboard (RivalNames).
func ParseConfig(name string, cores int) (config.Config, error) {
	switch name {
	case "skylake-unfixed", "baseline":
		return config.SkylakeX(cores), nil
	case "skylake-fixed":
		c := config.SkylakeX(cores)
		c.AppendixAFix = true
		return c, nil
	case "secdir":
		return config.SecDirConfig(cores), nil
	case "skewed":
		return config.SkewedConfig(cores), nil
	case "dls":
		return config.DLSConfig(cores), nil
	case "tagpart":
		return config.TagPartConfig(cores), nil
	case "ceaser":
		return config.CeaserConfig(cores, rivalRekeyEvery), nil
	default:
		return config.Config{}, fmt.Errorf("leakage: unknown config %q (want one of %s)",
			name, strings.Join(AllConfigNames(), ","))
	}
}

// splitList parses a comma-separated CLI list, trimming blanks and expanding
// "all" (and the empty string) to defs, deduplicating while keeping order.
func splitList(spec string, defs []string) []string {
	if spec == "" || spec == "all" {
		return append([]string(nil), defs...)
	}
	seen := map[string]bool{}
	var out []string
	for _, f := range strings.Split(spec, ",") {
		f = strings.TrimSpace(f)
		if f == "" || seen[f] {
			continue
		}
		seen[f] = true
		out = append(out, f)
	}
	return out
}

// ParseConfigList expands a comma-separated configuration list ("" means the
// canonical ConfigNames trio, "all" additionally includes every rival
// defense) and validates each name.
func ParseConfigList(spec string, cores int) ([]string, error) {
	defs := ConfigNames
	if spec == "all" {
		defs = AllConfigNames()
	}
	names := splitList(spec, defs)
	for _, n := range names {
		if _, err := ParseConfig(n, cores); err != nil {
			return nil, err
		}
	}
	return names, nil
}

// ParseStrategyList expands a comma-separated strategy list ("" and "suite"
// mean the default suite, "all" every strategy) and resolves each name.
func ParseStrategyList(spec string) ([]Strategy, error) {
	switch spec {
	case "", "suite":
		return DefaultSuite(), nil
	case "all":
		return Strategies(), nil
	}
	names := splitList(spec, nil)
	out := make([]Strategy, 0, len(names))
	for _, n := range names {
		s, err := ParseStrategy(n)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("leakage: empty strategy list %q", spec)
	}
	return out, nil
}
