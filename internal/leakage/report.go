package leakage

import (
	"context"
	"fmt"
	"math"
	"strings"

	"secdir/internal/metrics"
)

// ReportOptions configures a full configuration×strategy comparison sweep.
type ReportOptions struct {
	// Configs are the configuration names to compare (default ConfigNames).
	Configs []string
	// Strategies are the attacks to quantify (default DefaultSuite).
	Strategies []Strategy
	// Cores is the simulated core count (default 8).
	Cores int
	// Trials, Rounds, EvictionLines, Workers, Seed, Confidence and Resamples
	// are forwarded to every cell's Options (zero means that field's default).
	Trials        int
	Rounds        int
	EvictionLines int
	Workers       int
	Seed          int64
	Confidence    float64
	Resamples     int
	// EngineShards is forwarded to every cell's Options: > 1 runs each
	// trial on a slice-sharded coherence engine (bit-identical verdicts).
	EngineShards int
	// EngineWindow is forwarded to every cell's Options: > 1 (with
	// EngineShards > 1) windows each trial's batched accesses
	// (bit-identical verdicts, pinned by the windowed golden test).
	EngineWindow int
	// Metrics receives the leakage counters/histograms; nil is a no-op.
	Metrics *metrics.Registry
	// Progress, when non-nil, receives per-cell trial progress with a stage
	// label like "secdir/primeprobe". May run on worker goroutines.
	Progress func(stage string, done, total int)
}

// Report is the outcome of a sweep: one Verdict per (config, strategy) cell,
// in row-major order over ReportOptions.Configs × ReportOptions.Strategies.
type Report struct {
	// Trials and Rounds echo the per-cell sampling parameters.
	Trials int `json:"trials"`
	// Rounds is the attack rounds per trial.
	Rounds int `json:"rounds"`
	// Seed is the measurement's master seed.
	Seed int64 `json:"seed"`
	// Confidence is the bootstrap interval level of every cell.
	Confidence float64 `json:"confidence"`
	// Verdicts holds every cell's outcome.
	Verdicts []Verdict `json:"verdicts"`
}

// RunReport sweeps every (config, strategy) cell sequentially (each cell
// already fans out across Workers) and assembles the Report. The context
// cancels between and within cells.
func RunReport(ctx context.Context, o ReportOptions) (*Report, error) {
	if len(o.Configs) == 0 {
		o.Configs = append([]string(nil), ConfigNames...)
	}
	if len(o.Strategies) == 0 {
		o.Strategies = DefaultSuite()
	}
	if o.Cores <= 0 {
		o.Cores = 8
	}
	base := Options{
		Trials:        o.Trials,
		Rounds:        o.Rounds,
		EvictionLines: o.EvictionLines,
		Workers:       o.Workers,
		Seed:          o.Seed,
		Confidence:    o.Confidence,
		Resamples:     o.Resamples,
		EngineShards:  o.EngineShards,
		EngineWindow:  o.EngineWindow,
		Metrics:       o.Metrics,
	}.withDefaults()

	rep := &Report{
		Trials:     base.Trials,
		Rounds:     base.Rounds,
		Seed:       base.Seed,
		Confidence: base.Confidence,
	}
	for _, cfgName := range o.Configs {
		cfg, err := ParseConfig(cfgName, o.Cores)
		if err != nil {
			return nil, err
		}
		for _, s := range o.Strategies {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			cell := base
			cell.Config = cfg
			cell.ConfigName = cfgName
			cell.Strategy = s
			if o.Progress != nil {
				stage := cfgName + "/" + s.Name()
				cell.Progress = func(done, total int) { o.Progress(stage, done, total) }
			}
			v, err := Run(ctx, cell)
			if err != nil {
				return nil, fmt.Errorf("leakage: %s/%s: %w", cfgName, s.Name(), err)
			}
			rep.Verdicts = append(rep.Verdicts, v)
		}
	}
	return rep, nil
}

// Text renders the report as an aligned table with one row per cell and a
// LEAK/NO-LEAK verdict column.
func (r *Report) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "leakage report: %d trials x %d rounds, seed %d, %v%% CIs, TVLA |t|>%.1f\n",
		r.Trials, r.Rounds, r.Seed, r.Confidence*100, TVLAThreshold)
	fmt.Fprintf(&b, "%-16s %-12s %9s %9s %9s %8s %8s %17s  %s\n",
		"CONFIG", "STRATEGY", "ACTIVE", "IDLE", "|t|", "CAP/bits", "AUC", "AUC-CI", "VERDICT")
	for _, v := range r.Verdicts {
		verdict := "NO-LEAK"
		if v.Leak {
			verdict = "LEAK"
		}
		fmt.Fprintf(&b, "%-16s %-12s %9.3f %9.3f %9.2f %8.3f %8.3f [%6.3f,%6.3f]  %s\n",
			v.Config, v.Strategy, v.ActiveMean, v.IdleMean, math.Abs(v.TStat),
			v.CapacityBits, v.AUC, v.AUCLo, v.AUCHi, verdict)
	}
	return b.String()
}

// CSV renders the report as a header plus one row per verdict, the exact
// format pinned by data/leakage_verdicts.csv. Shared by the golden test and
// the fleet determinism tests, which require the distributed merge to
// reproduce the committed file bit-for-bit.
func (r *Report) CSV() (head []string, rows [][]string) {
	head = []string{"config", "strategy", "trials", "rounds", "active_mean",
		"idle_mean", "t_stat", "df", "capacity_bits", "auc", "auc_lo", "auc_hi", "leak"}
	for _, v := range r.Verdicts {
		rows = append(rows, []string{
			v.Config, v.Strategy,
			fmt.Sprint(v.Trials), fmt.Sprint(v.Rounds),
			fmt.Sprintf("%.6f", v.ActiveMean), fmt.Sprintf("%.6f", v.IdleMean),
			fmt.Sprintf("%.4f", v.TStat), fmt.Sprintf("%.2f", v.DF),
			fmt.Sprintf("%.4f", v.CapacityBits),
			fmt.Sprintf("%.4f", v.AUC), fmt.Sprintf("%.4f", v.AUCLo), fmt.Sprintf("%.4f", v.AUCHi),
			fmt.Sprint(v.Leak),
		})
	}
	return head, rows
}

// Leaks returns the cells with a positive TVLA verdict.
func (r *Report) Leaks() []Verdict {
	var out []Verdict
	for _, v := range r.Verdicts {
		if v.Leak {
			out = append(out, v)
		}
	}
	return out
}

// Find returns the verdict for a (config, strategy) cell, if present.
func (r *Report) Find(configName, strategy string) (Verdict, bool) {
	for _, v := range r.Verdicts {
		if v.Config == configName && v.Strategy == strategy {
			return v, true
		}
	}
	return Verdict{}, false
}
