package leakage

import (
	"context"
	"testing"
)

// The windowed-engine golden re-verifications: the same end-to-end oracle as
// the sharded goldens, with the conflict-window scheduler switched on. Attack
// drivers issue accesses one at a time, so the scheduler's batch path is
// pass-through for leakage — but the engine-pool Reset path, the per-shard
// mailbox protocol and the SetWindow plumbing all run under this test, and a
// single perturbed verdict bit fails the byte-for-byte CSV diff.

// TestGoldenVerdictsWindowed replays the headline verdicts measurement with
// 2-shard, window-8 trial engines and diffs data/leakage_verdicts.csv
// byte-for-byte against the serial golden.
func TestGoldenVerdictsWindowed(t *testing.T) {
	if testing.Short() {
		t.Skip("windowed golden re-verification skipped in -short mode")
	}
	strategies, err := ParseStrategyList("primeprobe,evictreload")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunReport(context.Background(), ReportOptions{
		Configs:       []string{"skylake-unfixed", "secdir"},
		Strategies:    strategies,
		Trials:        goldenTrials,
		Rounds:        goldenRounds,
		EvictionLines: goldenEvLines,
		Seed:          goldenSeed,
		EngineShards:  2,
		EngineWindow:  8,
	})
	if err != nil {
		t.Fatal(err)
	}
	head, rows := rep.CSV()
	checkGoldenReadOnly(t, "leakage_verdicts.csv", head, rows)
}

// TestLeaderboardGoldenWindowed replays the cross-defense race with 2-shard,
// window-8 trial engines and diffs data/leaderboard.csv byte-for-byte.
func TestLeaderboardGoldenWindowed(t *testing.T) {
	if testing.Short() {
		t.Skip("windowed golden re-verification skipped in -short mode")
	}
	lb, err := RunLeaderboard(context.Background(), LeaderboardOptions{
		Trials:        lbTrials,
		Rounds:        lbRounds,
		EvictionLines: lbEvLines,
		Seed:          lbSeed,
		EngineShards:  2,
		EngineWindow:  8,
	})
	if err != nil {
		t.Fatal(err)
	}
	head, rows := lb.CSV()
	checkGoldenReadOnly(t, "leaderboard.csv", head, rows)
}

// TestEnginePoolWorkerInvariance pins the per-worker engine pool against the
// fleet's core determinism contract: the same measurement run with 1, 2 and 5
// workers — each worker resetting one pooled engine across the trials it
// happens to claim — must produce identical verdicts, both serial and
// sharded+windowed.
func TestEnginePoolWorkerInvariance(t *testing.T) {
	for _, eng := range []struct {
		name           string
		shards, window int
	}{
		{"serial", 0, 0},
		{"windowed", 2, 8},
	} {
		t.Run(eng.name, func(t *testing.T) {
			cfg, err := ParseConfig("secdir", 4)
			if err != nil {
				t.Fatal(err)
			}
			strat, err := ParseStrategy("primeprobe")
			if err != nil {
				t.Fatal(err)
			}
			base := Options{
				Config:       cfg,
				ConfigName:   "secdir",
				Strategy:     strat,
				Trials:       24,
				Rounds:       4,
				Seed:         99,
				Resamples:    50,
				EngineShards: eng.shards,
				EngineWindow: eng.window,
			}
			var want Verdict
			for i, workers := range []int{1, 2, 5} {
				o := base
				o.Workers = workers
				v, err := Run(context.Background(), o)
				if err != nil {
					t.Fatal(err)
				}
				if i == 0 {
					want = v
				} else if v != want {
					t.Fatalf("workers=%d verdict diverged:\nwant %+v\ngot  %+v", workers, want, v)
				}
			}
		})
	}
}
