package leakage

import (
	"bytes"
	"context"
	"encoding/csv"
	"os"
	"path/filepath"
	"testing"
)

// The sharded-engine golden re-verifications: the leakage verdicts and the
// cross-defense leaderboard must reproduce the committed CSVs byte-for-byte
// when every trial engine runs with its directory slices sharded across
// goroutines. This is the end-to-end half of the sharded-vs-serial oracle —
// not just equal engine state on a synthetic stream, but the exact
// statistical verdicts of the lab's two flagship experiments.

// checkGoldenReadOnly diffs generated CSV rows against a committed golden
// without ever rewriting it (the serial golden tests own -update; a sharded
// divergence must fail, never overwrite the reference).
func checkGoldenReadOnly(t *testing.T, name string, head []string, rows [][]string) {
	t.Helper()
	var buf bytes.Buffer
	w := csv.NewWriter(&buf)
	if err := w.Write(head); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteAll(rows); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	if err := w.Error(); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("..", "..", "data", name))
	if err != nil {
		t.Fatalf("missing golden file: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("%s diverges from the serial golden under the sharded engine", name)
	}
}

// TestGoldenVerdictsSharded replays the headline verdicts measurement with
// 2-shard trial engines and diffs data/leakage_verdicts.csv byte-for-byte.
func TestGoldenVerdictsSharded(t *testing.T) {
	if testing.Short() {
		t.Skip("sharded golden re-verification skipped in -short mode")
	}
	strategies, err := ParseStrategyList("primeprobe,evictreload")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunReport(context.Background(), ReportOptions{
		Configs:       []string{"skylake-unfixed", "secdir"},
		Strategies:    strategies,
		Trials:        goldenTrials,
		Rounds:        goldenRounds,
		EvictionLines: goldenEvLines,
		Seed:          goldenSeed,
		EngineShards:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	head, rows := rep.CSV()
	checkGoldenReadOnly(t, "leakage_verdicts.csv", head, rows)
}

// TestLeaderboardGoldenSharded replays the cross-defense race with 2-shard
// trial engines and diffs data/leaderboard.csv byte-for-byte.
func TestLeaderboardGoldenSharded(t *testing.T) {
	if testing.Short() {
		t.Skip("sharded golden re-verification skipped in -short mode")
	}
	lb, err := RunLeaderboard(context.Background(), LeaderboardOptions{
		Trials:        lbTrials,
		Rounds:        lbRounds,
		EvictionLines: lbEvLines,
		Seed:          lbSeed,
		EngineShards:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	head, rows := lb.CSV()
	checkGoldenReadOnly(t, "leaderboard.csv", head, rows)
}
