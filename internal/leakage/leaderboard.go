package leakage

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"secdir/internal/area"
	"secdir/internal/coherence"
	"secdir/internal/config"
	"secdir/internal/metrics"
	"secdir/internal/trace"
)

// LeaderboardNames lists the defenses the cross-defense leaderboard races, in
// canonical order: the vulnerable Skylake-X baseline as the reference, the
// paper's SecDir, then the four rival secure-directory designs.
var LeaderboardNames = []string{"skylake-unfixed", "secdir", "skewed", "dls", "tagpart", "ceaser"}

// LeaderboardStrategies names the default leaderboard attack roster: the two
// headline channels every defense faces.
var LeaderboardStrategies = []string{"primeprobe", "evictreload"}

// LeaderboardRow is one (defense, strategy) cell of the leaderboard: the
// leakage verdict joined with the defense's deterministic performance and
// hardware-cost estimates. SimNsAccess, StorageKB and AreaMM2 are per-defense
// (repeated across a defense's strategy rows).
type LeaderboardRow struct {
	Verdict
	// SimNsAccess is the average simulated memory-access latency under the
	// uniform mixed workload, in nanoseconds at the 2 GHz core clock. It is
	// computed from the engine's deterministic latency model, so it is
	// bit-reproducible — no wall clock involved.
	SimNsAccess float64 `json:"sim_ns_access"`
	// StorageKB is the defense's per-slice directory storage.
	StorageKB float64 `json:"storage_kb"`
	// AreaMM2 is the per-slice silicon estimate of the Table 7 CACTI model.
	AreaMM2 float64 `json:"area_mm2"`
}

// Leaderboard is the outcome of a cross-defense race.
type Leaderboard struct {
	Trials int              `json:"trials"`
	Rounds int              `json:"rounds"`
	Seed   int64            `json:"seed"`
	Rows   []LeaderboardRow `json:"rows"`
}

// LeaderboardOptions configures a cross-defense race.
type LeaderboardOptions struct {
	// Configs are the defense names to race (default LeaderboardNames).
	Configs []string
	// Strategies are the attacks each defense faces (default
	// primeprobe + evictreload, the two headline channels).
	Strategies []Strategy
	// Cores is the simulated core count (default 8).
	Cores int
	// Trials, Rounds, EvictionLines, Workers, Seed are forwarded to every
	// cell's Options (zero means that field's default).
	Trials        int
	Rounds        int
	EvictionLines int
	Workers       int
	Seed          int64
	// EngineShards is forwarded to every cell's Options: > 1 runs each
	// trial on a slice-sharded coherence engine (bit-identical verdicts).
	EngineShards int
	// EngineWindow is forwarded to every cell's Options: > 1 (with
	// EngineShards > 1) windows each trial's batched accesses.
	EngineWindow int
	// PerfAccesses is the measured-loop length of the simulated-latency
	// probe (default 100k, after an equal warm-up).
	PerfAccesses int
	// Metrics receives the leakage counters/histograms; nil is a no-op.
	Metrics *metrics.Registry
	// Progress, when non-nil, receives per-cell trial progress with a stage
	// label like "skewed/primeprobe". May run on worker goroutines.
	Progress func(stage string, done, total int)
}

// RunLeaderboard races every configured defense through the leakage lab and
// the deterministic performance probe. Rows come out in (defense, strategy)
// order; results are reproducible for fixed options, including across worker
// counts.
func RunLeaderboard(ctx context.Context, o LeaderboardOptions) (*Leaderboard, error) {
	if len(o.Configs) == 0 {
		o.Configs = append([]string(nil), LeaderboardNames...)
	}
	if len(o.Strategies) == 0 {
		ss, err := ParseStrategyList(strings.Join(LeaderboardStrategies, ","))
		if err != nil {
			return nil, err
		}
		o.Strategies = ss
	}
	if o.Cores <= 0 {
		o.Cores = 8
	}
	if o.PerfAccesses <= 0 {
		o.PerfAccesses = 100_000
	}
	base := Options{
		Trials:        o.Trials,
		Rounds:        o.Rounds,
		EvictionLines: o.EvictionLines,
		Workers:       o.Workers,
		Seed:          o.Seed,
		EngineShards:  o.EngineShards,
		EngineWindow:  o.EngineWindow,
		Metrics:       o.Metrics,
	}.withDefaults()

	lb := &Leaderboard{Trials: base.Trials, Rounds: base.Rounds, Seed: base.Seed}
	for _, name := range o.Configs {
		cfg, err := ParseConfig(name, o.Cores)
		if err != nil {
			return nil, err
		}
		ns, kb, mm2, err := PerfCost(name, o.Cores, o.PerfAccesses)
		if err != nil {
			return nil, err
		}
		for _, s := range o.Strategies {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			cell := base
			cell.Config = cfg
			cell.ConfigName = name
			cell.Strategy = s
			if o.Progress != nil {
				stage := name + "/" + s.Name()
				cell.Progress = func(done, total int) { o.Progress(stage, done, total) }
			}
			v, err := Run(ctx, cell)
			if err != nil {
				return nil, fmt.Errorf("leakage: %s/%s: %w", name, s.Name(), err)
			}
			lb.Rows = append(lb.Rows, LeaderboardRow{
				Verdict:     v,
				SimNsAccess: ns,
				StorageKB:   kb,
				AreaMM2:     mm2,
			})
		}
	}
	return lb, nil
}

// PerfCost computes one defense's deterministic leaderboard columns: the
// simulated-latency probe (mean ns/access at 2 GHz over the fixed uniform
// workload) and the Table 7 cost model (per-slice storage KB and silicon
// mm²). The fleet coordinator computes these locally — they are
// bit-reproducible functions of the configuration, so there is nothing to
// distribute — and joins them with the verdicts merged from remote shards.
func PerfCost(name string, cores, perfAccesses int) (simNs, storageKB, areaMM2 float64, err error) {
	if cores <= 0 {
		cores = 8
	}
	if perfAccesses <= 0 {
		perfAccesses = 100_000
	}
	cfg, err := ParseConfig(name, cores)
	if err != nil {
		return 0, 0, 0, err
	}
	ns, err := measureSimNs(cfg, perfAccesses)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("leakage: %s performance probe: %w", name, err)
	}
	storage, banks, ok := area.DefenseStorage(name, cores)
	var kb, mm2 float64
	if ok {
		kb = area.KB(storage.Total())
		mm2 = area.AreaMM2(kb, banks)
	}
	return ns, kb, mm2, nil
}

// measureSimNs runs the deterministic performance probe: a fixed-seed uniform
// mixed workload (the bench harness's geometry) over a freshly built engine,
// reporting the mean simulated access latency in nanoseconds at 2 GHz. The
// engine's latency model is cycle-deterministic, so the result depends only
// on the configuration.
func measureSimNs(cfg config.Config, accesses int) (float64, error) {
	e, err := coherence.NewEngine(cfg.WithSeed(7))
	if err != nil {
		return 0, err
	}
	gen := trace.NewUniform(1<<24, 64<<10, 0.25, 0, 7)
	mask := cfg.Cores - 1
	for i := 0; i < accesses; i++ { // warm-up: fills and migrations settle
		a := gen.Next()
		e.Access(i&mask, a.Line, a.Write)
	}
	var cycles uint64
	for i := 0; i < accesses; i++ {
		a := gen.Next()
		cycles += uint64(e.Access(i&mask, a.Line, a.Write).Latency)
	}
	return float64(cycles) / float64(accesses) / 2.0, nil
}

// CSV renders the leaderboard as a header plus one row per cell, the exact
// format pinned by data/leaderboard.csv.
func (l *Leaderboard) CSV() (head []string, rows [][]string) {
	head = []string{"defense", "strategy", "trials", "rounds", "t_stat",
		"capacity_bits", "auc", "auc_lo", "auc_hi", "leak",
		"sim_ns_access", "storage_kb", "area_mm2"}
	for _, r := range l.Rows {
		rows = append(rows, []string{
			r.Config, r.Strategy,
			fmt.Sprint(r.Trials), fmt.Sprint(r.Rounds),
			fmt.Sprintf("%.4f", r.TStat),
			fmt.Sprintf("%.4f", r.CapacityBits),
			fmt.Sprintf("%.4f", r.AUC), fmt.Sprintf("%.4f", r.AUCLo), fmt.Sprintf("%.4f", r.AUCHi),
			fmt.Sprint(r.Leak),
			fmt.Sprintf("%.3f", r.SimNsAccess),
			fmt.Sprintf("%.2f", r.StorageKB),
			fmt.Sprintf("%.4f", r.AreaMM2),
		})
	}
	return head, rows
}

// Text renders the leaderboard ranked by worst-case |t| per defense
// (most leaky first), with the performance and cost columns alongside.
func (l *Leaderboard) Text() string {
	type agg struct {
		worstT float64
		rows   []LeaderboardRow
	}
	byDef := map[string]*agg{}
	var order []*agg
	for _, r := range l.Rows {
		a := byDef[r.Config]
		if a == nil {
			a = &agg{}
			byDef[r.Config] = a
			order = append(order, a)
		}
		if t := math.Abs(r.TStat); t > a.worstT {
			a.worstT = t
		}
		a.rows = append(a.rows, r)
	}
	sort.SliceStable(order, func(i, j int) bool { return order[i].worstT > order[j].worstT })

	var b strings.Builder
	fmt.Fprintf(&b, "cross-defense leaderboard: %d trials x %d rounds, seed %d, TVLA |t|>%.1f\n",
		l.Trials, l.Rounds, l.Seed, TVLAThreshold)
	fmt.Fprintf(&b, "%-16s %-12s %9s %8s %8s %10s %10s %9s  %s\n",
		"DEFENSE", "STRATEGY", "|t|", "CAP/bits", "AUC", "ns/access", "KB/slice", "mm2", "VERDICT")
	for _, a := range order {
		for _, r := range a.rows {
			verdict := "NO-LEAK"
			if r.Leak {
				verdict = "LEAK"
			}
			fmt.Fprintf(&b, "%-16s %-12s %9.2f %8.3f %8.3f %10.3f %10.2f %9.4f  %s\n",
				r.Config, r.Strategy, math.Abs(r.TStat), r.CapacityBits, r.AUC,
				r.SimNsAccess, r.StorageKB, r.AreaMM2, verdict)
		}
	}
	return b.String()
}
