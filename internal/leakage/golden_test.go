package leakage

import (
	"bytes"
	"context"
	"encoding/csv"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// update rewrites the golden verdict CSV under data/ instead of diffing:
// go test ./internal/leakage -run TestGoldenVerdicts -update
var update = flag.Bool("update", false, "rewrite data/leakage_verdicts.csv")

// Golden sampling parameters: heavy enough that prime+probe clears the
// ISSUE's capacity bar (>0.5 bit needs ≥~96 rounds per trial at a 23-line
// eviction set — the W_ED+W_TD way count, minimizing prime self-eviction
// noise), light enough to rerun in seconds.
const (
	goldenTrials  = 200
	goldenRounds  = 128
	goldenEvLines = 23
	goldenSeed    = 1
)

// TestGoldenVerdicts pins the leakage verdicts under a fixed seed to the
// committed CSV — any change to the trial runner, the schedule derivation,
// the statistics, or the simulated machine shows up as a diff here — and
// additionally asserts the paper's headline claim at golden strength:
// skylake-unfixed leaks (|t| > 4.5, capacity > 0.5 bit) and secdir does not
// (|t| < 4.5, capacity ≈ 0) for prime+probe and evict+reload.
func TestGoldenVerdicts(t *testing.T) {
	strategies, err := ParseStrategyList("primeprobe,evictreload")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunReport(context.Background(), ReportOptions{
		Configs:       []string{"skylake-unfixed", "secdir"},
		Strategies:    strategies,
		Trials:        goldenTrials,
		Rounds:        goldenRounds,
		EvictionLines: goldenEvLines,
		Seed:          goldenSeed,
	})
	if err != nil {
		t.Fatal(err)
	}

	for _, v := range rep.Verdicts {
		// The ISSUE's acceptance bars, checked at golden strength.
		abs := math.Abs(v.TStat)
		switch v.Config {
		case "skylake-unfixed":
			if !v.Leak || abs <= TVLAThreshold || v.CapacityBits <= 0.5 {
				t.Errorf("%s/%s: |t|=%.2f capacity=%.3f — want |t|>4.5 and capacity>0.5 bit",
					v.Config, v.Strategy, abs, v.CapacityBits)
			}
		case "secdir":
			if v.Leak || abs >= TVLAThreshold || v.CapacityBits >= 0.05 {
				t.Errorf("%s/%s: |t|=%.2f capacity=%.3f — want |t|<4.5 and capacity≈0",
					v.Config, v.Strategy, abs, v.CapacityBits)
			}
		}
	}
	head, rows := rep.CSV()
	checkGolden(t, "leakage_verdicts.csv", head, rows)
}

// checkGolden regenerates one committed CSV under data/ and diffs it line by
// line, or rewrites it under -update (same contract as the experiments
// package's F5/T7 goldens).
func checkGolden(t *testing.T, name string, head []string, rows [][]string) {
	t.Helper()
	var buf bytes.Buffer
	w := csv.NewWriter(&buf)
	if err := w.Write(head); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteAll(rows); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	if err := w.Error(); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()

	path := filepath.Join("..", "..", "data", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create it): %v", err)
	}
	if bytes.Equal(got, want) {
		return
	}
	gl := strings.Split(strings.TrimRight(string(got), "\n"), "\n")
	wl := strings.Split(strings.TrimRight(string(want), "\n"), "\n")
	for i := 0; i < len(gl) || i < len(wl); i++ {
		var g, w string
		if i < len(gl) {
			g = gl[i]
		}
		if i < len(wl) {
			w = wl[i]
		}
		if g != w {
			t.Errorf("%s line %d:\n  regenerated: %q\n  committed:   %q", name, i+1, g, w)
		}
	}
	t.Fatalf("%s diverges from the committed golden file (re-run with -update after an intentional model change)", name)
}
