package leakage

import (
	"context"
	"math"
	"reflect"
	"testing"
)

// Leaderboard sampling parameters: lighter than the headline golden (six
// defenses × two strategies is twelve cells) but heavy enough that the
// baseline's channel clears TVLA by a wide margin at seed 1.
const (
	lbTrials  = 60
	lbRounds  = 32
	lbEvLines = 23
	lbSeed    = 1
)

// TestLeaderboardGolden pins the full cross-defense leaderboard —
// skylake-unfixed, secdir and the four rival designs raced through
// prime+probe and evict+reload, with the deterministic performance probe and
// the Table-7-model cost columns — to data/leaderboard.csv, and asserts the
// reference rows: the unfixed baseline leaks on both strategies, secdir on
// neither.
//
//	go test ./internal/leakage -run Leaderboard          # verify
//	go test ./internal/leakage -run Leaderboard -update  # regenerate
func TestLeaderboardGolden(t *testing.T) {
	lb, err := RunLeaderboard(context.Background(), LeaderboardOptions{
		Trials:        lbTrials,
		Rounds:        lbRounds,
		EvictionLines: lbEvLines,
		Seed:          lbSeed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * len(LeaderboardNames); len(lb.Rows) != want {
		t.Fatalf("got %d rows, want %d", len(lb.Rows), want)
	}
	for _, r := range lb.Rows {
		switch r.Config {
		case "skylake-unfixed":
			if !r.Leak {
				t.Errorf("%s/%s: |t|=%.2f — the unfixed baseline must LEAK",
					r.Config, r.Strategy, math.Abs(r.TStat))
			}
		case "secdir":
			if r.Leak {
				t.Errorf("%s/%s: |t|=%.2f — secdir must not leak",
					r.Config, r.Strategy, math.Abs(r.TStat))
			}
		}
		if r.SimNsAccess <= 0 {
			t.Errorf("%s: non-positive simulated latency %v", r.Config, r.SimNsAccess)
		}
		if r.StorageKB <= 0 || r.AreaMM2 <= 0 {
			t.Errorf("%s: missing cost estimate (%.2f KB, %.4f mm2)", r.Config, r.StorageKB, r.AreaMM2)
		}
	}
	head, rows := lb.CSV()
	checkGolden(t, "leaderboard.csv", head, rows)
}

// TestLeaderboardWorkerInvariance re-runs one leaderboard cell at 1 worker
// and at 4 and requires bit-identical rows: the trial fan-out must only
// change scheduling, never results, or the committed golden would depend on
// the machine that generated it.
func TestLeaderboardWorkerInvariance(t *testing.T) {
	run := func(workers int) []LeaderboardRow {
		lb, err := RunLeaderboard(context.Background(), LeaderboardOptions{
			Configs:       []string{"skewed"},
			Trials:        20,
			Rounds:        16,
			EvictionLines: lbEvLines,
			Seed:          lbSeed,
			Workers:       workers,
			PerfAccesses:  20_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		return lb.Rows
	}
	serial, parallel := run(1), run(4)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("leaderboard rows depend on the worker count:\n 1 worker: %+v\n 4 workers: %+v", serial, parallel)
	}
}
