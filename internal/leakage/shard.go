package leakage

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"secdir/internal/attack"
	"secdir/internal/rng"
	"secdir/internal/trace"
)

// This file is the leakage lab's sharding surface: the hooks the distributed
// trial fleet (internal/fleet) builds on. A measurement's trials are
// independently seeded from (Options.Seed, trial index) alone, so any
// partition of [0, Trials) into contiguous shards — run by any number of
// workers, on any machines, in any order — merges back into the exact
// per-trial arrays a single-process Run would have produced, and therefore
// into a bit-identical Verdict.

// TrialResult is one trial's contribution to a measurement, keyed by the
// trial's index in the master seeding order. It is the unit workers stream
// back to a fleet coordinator as NDJSON.
type TrialResult struct {
	// Index is the trial's position in [0, Options.Trials).
	Index int `json:"index"`
	// Active is the trial's victim-active half-mean observable.
	Active float64 `json:"active"`
	// Idle is the trial's victim-idle half-mean observable.
	Idle float64 `json:"idle"`
	// Accesses counts the trial's simulated memory accesses.
	Accesses uint64 `json:"accesses"`
}

// Normalized returns o with every unset field defaulted — the exact
// parameters a Run with these Options would use. A fleet coordinator
// normalizes once and ships the resulting primitive fields to workers, so
// worker-side defaulting cannot diverge from the verdict's.
func (o Options) Normalized() Options { return o.withDefaults() }

// trialSeeds derives every trial's seed up front from the master seed, so
// results do not depend on which worker — local goroutine or remote process —
// claims which trial.
func trialSeeds(seed int64, trials int) []int64 {
	r := rng.New(seed)
	seeds := make([]int64, trials)
	for i := range seeds {
		seeds[i] = int64(r.Uint64())
	}
	return seeds
}

// attackParams builds the attack geometry every trial of a measurement
// shares: victim on core 0, every other core attacking the first T0 line.
func attackParams(o Options) attack.Params {
	p := attack.Params{
		Victim:        0,
		Attackers:     make([]int, 0, o.Config.Cores-1),
		Target:        trace.T0Lines()[0],
		EvictionLines: o.EvictionLines,
	}
	for c := 1; c < o.Config.Cores; c++ {
		p.Attackers = append(p.Attackers, c)
	}
	return p
}

// RunShard executes trials [start, start+count) of the measurement o
// describes, fanning out over o.Workers goroutines, and returns their
// results ordered by trial index. emit, when non-nil, is called serially
// (under an internal lock) as each trial completes, in completion order —
// the hook a worker's NDJSON stream writes from. The full measurement is
// RunShard(ctx, o, 0, o.Trials, nil); any partition of that range merges
// back losslessly through MergeVerdict.
func RunShard(ctx context.Context, o Options, start, count int, emit func(TrialResult)) ([]TrialResult, error) {
	o = o.withDefaults()
	if o.Strategy == nil {
		return nil, fmt.Errorf("leakage: Options.Strategy is nil")
	}
	if o.Config.Cores < 2 {
		return nil, fmt.Errorf("leakage: need at least 2 cores, have %d", o.Config.Cores)
	}
	if start < 0 || count < 0 || start+count > o.Trials {
		return nil, fmt.Errorf("leakage: shard [%d,%d) outside trial range [0,%d)", start, start+count, o.Trials)
	}
	if count == 0 {
		return nil, nil
	}

	reg := o.Metrics
	trialsTotal := reg.Counter("leakage/trials_total")
	trialErrs := reg.Counter("leakage/trial_errors_total")
	trialMicros := reg.Histogram("leakage/trial_micros")

	seeds := trialSeeds(o.Seed, o.Trials)
	params := attackParams(o)

	out := make([]TrialResult, count)
	next := int64(-1) // atomic cursor over [0, count)
	var firstErr atomic.Value
	var emitMu sync.Mutex

	workers := o.Workers
	if workers > count {
		workers = count
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each worker pools one engine across all the trials it claims;
			// Engine.Reset between trials is bit-identical to a fresh build,
			// so which worker runs which trial still cannot matter.
			var te trialEngine
			defer te.close()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= count {
					return
				}
				if ctx.Err() != nil || firstErr.Load() != nil {
					return
				}
				idx := start + i
				t0 := time.Now()
				res, err := runTrial(o, params, seeds[idx], &te)
				if err != nil {
					trialErrs.Inc()
					firstErr.CompareAndSwap(nil, err)
					return
				}
				tr := TrialResult{Index: idx, Active: res.active, Idle: res.idle, Accesses: res.accesses}
				out[i] = tr
				trialsTotal.Inc()
				trialMicros.Observe(uint64(time.Since(t0).Microseconds()))
				if emit != nil {
					emitMu.Lock()
					emit(tr)
					emitMu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if err, _ := firstErr.Load().(error); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// MergeVerdict reassembles a complete set of per-trial results — every index
// in [0, Trials) exactly once, in any order — into the measurement's Verdict.
// The statistics are computed over index-ordered arrays, so the outcome is
// bit-identical to a single-process Run regardless of how the trials were
// partitioned across shards or workers. A missing, duplicate, or
// out-of-range index is an error: a coordinator must never synthesize a
// verdict from a lossy merge.
func MergeVerdict(o Options, results []TrialResult) (Verdict, error) {
	o = o.withDefaults()
	if o.Strategy == nil {
		return Verdict{}, fmt.Errorf("leakage: Options.Strategy is nil")
	}
	if len(results) != o.Trials {
		return Verdict{}, fmt.Errorf("leakage: merge has %d trial results, want %d", len(results), o.Trials)
	}
	active := make([]float64, o.Trials)
	idle := make([]float64, o.Trials)
	seen := make([]bool, o.Trials)
	for _, r := range results {
		if r.Index < 0 || r.Index >= o.Trials {
			return Verdict{}, fmt.Errorf("leakage: merge: trial index %d outside [0,%d)", r.Index, o.Trials)
		}
		if seen[r.Index] {
			return Verdict{}, fmt.Errorf("leakage: merge: duplicate result for trial %d", r.Index)
		}
		seen[r.Index] = true
		active[r.Index] = r.Active
		idle[r.Index] = r.Idle
	}
	var accesses uint64
	for _, r := range results {
		accesses += r.Accesses
	}
	return verdict(o, active, idle, accesses), nil
}
