package leakage

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"secdir/internal/attack"
	"secdir/internal/coherence"
	"secdir/internal/config"
	"secdir/internal/metrics"
	"secdir/internal/rng"
	"secdir/internal/stats"
)

// TVLAThreshold is the |t| above which a configuration is declared leaking,
// the standard Test Vector Leakage Assessment criterion (Goodwill et al.):
// |t| > 4.5 corresponds to α < 10⁻⁵ even at modest degrees of freedom.
const TVLAThreshold = 4.5

// tCap bounds |t| in a Verdict. A noise-free simulator can produce two
// exactly-constant distributions with distinct means, for which Welch's t
// diverges; encoding/json cannot represent ±Inf, so the verdict reports a
// finite sentinel far beyond any threshold instead.
const tCap = 1e6

// capacityBins is the histogram width of the plug-in mutual-information
// estimate. 16 cells keep the estimator's O((bins-1)/N) bias below ~0.1 bit
// at the default trial counts while still resolving multi-modal observables.
const capacityBins = 16

// Options configures one Monte-Carlo leakage measurement: Trials independent
// machines, each running Rounds attack rounds under a balanced random
// victim-active/victim-idle schedule.
type Options struct {
	// Config is the machine under test (its Seed is overridden per trial).
	Config config.Config
	// ConfigName labels the configuration in the Verdict (e.g. "secdir").
	ConfigName string
	// Strategy is the attack to quantify.
	Strategy Strategy
	// Trials is the number of independently seeded machines (default 200).
	Trials int
	// Rounds is the attack rounds per trial, split evenly between
	// victim-active and victim-idle (default 16; forced even).
	Rounds int
	// EvictionLines overrides the strategy's default conflict-set size.
	EvictionLines int
	// Workers is the trial-runner fan-out (default GOMAXPROCS).
	Workers int
	// Seed pins the whole measurement: trial seeds, round schedules and
	// bootstrap resamples all derive from it (default 1).
	Seed int64
	// Confidence is the bootstrap interval level (default 0.99).
	Confidence float64
	// Resamples is the bootstrap replicate count (default 400).
	Resamples int
	// EngineShards, when > 1, builds each trial's coherence engine with its
	// directory slices sharded over that many goroutines (coherence.Sharded).
	// The sharded engine is bit-identical to the serial one by construction,
	// so verdicts must not change — the golden tests re-verify exactly that.
	// 0 or 1 selects the serial engine.
	EngineShards int
	// EngineWindow, when > 1 and EngineShards > 1, enables the conflict-window
	// scheduler on each trial's sharded engine (coherence.Sharded.SetWindow).
	// Windowed execution is bit-identical to serial by construction, so
	// verdicts must not change either — the windowed golden tests pin that.
	EngineWindow int
	// Metrics receives leakage counters/histograms; nil is a no-op registry.
	Metrics *metrics.Registry
	// Progress, when non-nil, is called with completed-trial counts at a
	// coarse throttle (≈10 updates per run, always including the final one).
	// It may be called from the trial workers' goroutines.
	Progress func(done, total int)
}

// withDefaults fills unset Options fields.
func (o Options) withDefaults() Options {
	if o.Trials <= 0 {
		o.Trials = 200
	}
	if o.Rounds <= 0 {
		o.Rounds = 16
	}
	if o.Rounds%2 != 0 {
		o.Rounds++
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Confidence <= 0 || o.Confidence >= 1 {
		o.Confidence = 0.99
	}
	if o.Resamples <= 0 {
		o.Resamples = 400
	}
	return o
}

// Verdict is the statistical outcome of one (configuration, strategy)
// measurement. The distributions under test are the per-trial mean
// observables of the victim-active and victim-idle round halves.
type Verdict struct {
	// Config names the configuration measured (e.g. "skylake-unfixed").
	Config string `json:"config"`
	// Strategy names the attack measured (e.g. "primeprobe").
	Strategy string `json:"strategy"`
	// Trials is the number of independent machines measured.
	Trials int `json:"trials"`
	// Rounds is the attack rounds per trial.
	Rounds int `json:"rounds"`
	// ActiveMean is the grand mean observable over victim-active rounds.
	ActiveMean float64 `json:"active_mean"`
	// IdleMean is the grand mean observable over victim-idle rounds.
	IdleMean float64 `json:"idle_mean"`
	// TStat is Welch's t between the two per-trial mean distributions,
	// capped at ±1e6 (a noise-free channel diverges).
	TStat float64 `json:"t_stat"`
	// DF is the Welch–Satterthwaite degrees of freedom.
	DF float64 `json:"df"`
	// CapacityBits is the plug-in mutual-information estimate between the
	// victim-activity bit and the per-trial observable, in bits per trial.
	CapacityBits float64 `json:"capacity_bits"`
	// AUC is the distinguisher's ROC area (0.5 = chance).
	AUC float64 `json:"auc"`
	// AUCLo and AUCHi bound AUC at the Confidence level (seeded bootstrap).
	AUCLo float64 `json:"auc_lo"`
	AUCHi float64 `json:"auc_hi"`
	// Confidence is the bootstrap interval level.
	Confidence float64 `json:"confidence"`
	// Leak reports the TVLA verdict: |TStat| > 4.5.
	Leak bool `json:"leak"`
	// Accesses totals the simulated memory accesses across all trials.
	Accesses uint64 `json:"accesses"`
}

// String renders the verdict as one human-readable line.
func (v Verdict) String() string {
	verdict := "NO-LEAK"
	if v.Leak {
		verdict = "LEAK"
	}
	return fmt.Sprintf("%s/%s: %s |t|=%.2f capacity=%.3f bits AUC=%.3f [%.3f,%.3f]@%v%%",
		v.Config, v.Strategy, verdict, math.Abs(v.TStat), v.CapacityBits,
		v.AUC, v.AUCLo, v.AUCHi, v.Confidence*100)
}

// trialOut is one trial's contribution to the two sample distributions.
type trialOut struct {
	active, idle float64
	accesses     uint64
}

// Run executes the Monte-Carlo measurement described by o and returns its
// Verdict. Each trial builds a fresh engine from o.Config reseeded with a
// trial-specific seed, mounts the strategy's driver, and runs a balanced
// random schedule of victim-active and victim-idle rounds; the trial's two
// half-means are one observation each in the distributions the verdict
// statistics are computed over. Deterministic for fixed Options (including
// Workers — the fan-out only changes scheduling, not results). Run is the
// single-shard case of RunShard + MergeVerdict; the distributed fleet drives
// the same pair over partial trial ranges.
func Run(ctx context.Context, o Options) (Verdict, error) {
	o = o.withDefaults()

	// Coarse progress throttle: ~10 updates per run, always including the
	// final one.
	var done int64
	lastReported := int64(0)
	var progressMu sync.Mutex
	step := o.Trials / 10
	if step < 1 {
		step = 1
	}
	emit := func(TrialResult) {
		d := atomic.AddInt64(&done, 1)
		if o.Progress == nil {
			return
		}
		progressMu.Lock()
		if d-lastReported >= int64(step) || d == int64(o.Trials) {
			lastReported = d
			progressMu.Unlock()
			o.Progress(int(d), o.Trials)
			return
		}
		progressMu.Unlock()
	}

	out, err := RunShard(ctx, o, 0, o.Trials, emit)
	if err != nil {
		return Verdict{}, err
	}
	return MergeVerdict(o, out)
}

// runTrial executes one independent trial on the worker's pooled engine:
// reset (or first-trial fresh) machine, fresh driver, one balanced shuffled
// schedule, and returns the two half-means.
func runTrial(o Options, params attack.Params, seed int64, te *trialEngine) (trialOut, error) {
	e, err := te.engine(o, seed)
	if err != nil {
		return trialOut{}, err
	}
	d, err := o.Strategy.NewDriver(e, params)
	if err != nil {
		return trialOut{}, err
	}

	// Balanced random schedule: exactly Rounds/2 active rounds in a seeded
	// Fisher-Yates order, so ordering effects (warm-up, replacement drift)
	// cannot masquerade as victim activity.
	sched := make([]bool, o.Rounds)
	for i := 0; i < o.Rounds/2; i++ {
		sched[i] = true
	}
	sr := rng.New(seed ^ 0x5eed)
	for i := len(sched) - 1; i > 0; i-- {
		j := sr.Intn(i + 1)
		sched[i], sched[j] = sched[j], sched[i]
	}

	var sumA, sumI float64
	var nA, nI int
	attack.ForEachRound(d, o.Rounds, func(i int) bool { return sched[i] },
		func(_ int, active bool, obs float64) {
			if active {
				sumA += obs
				nA++
			} else {
				sumI += obs
				nI++
			}
		})

	var res trialOut
	if nA > 0 {
		res.active = sumA / float64(nA)
	}
	if nI > 0 {
		res.idle = sumI / float64(nI)
	}
	for _, cs := range e.Stats().Core {
		res.accesses += cs.Accesses
	}
	return res, nil
}

// trialEngine is one worker's reusable machine. The worker's first trial
// constructs the engine (serial, sharded, or sharded+windowed per Options);
// every later trial resets it in place with the new trial seed. Engine.Reset
// is pinned bit-identical to fresh construction by the coherence oracle
// tests, so pooling cannot perturb verdicts or break the worker-count
// invariance the fleet's lossless merges rely on — it only removes the
// per-trial allocation of caches, directories and shard goroutines.
type trialEngine struct {
	eng *coherence.Engine
	sh  *coherence.Sharded
}

// engine returns the pooled machine reset for the trial seed, building it on
// first use.
func (te *trialEngine) engine(o Options, seed int64) (*coherence.Engine, error) {
	if te.eng != nil {
		if err := te.eng.Reset(seed); err != nil {
			return nil, err
		}
		return te.eng, nil
	}
	cfg := o.Config.WithSeed(seed)
	if o.EngineShards > 1 {
		sh, err := coherence.NewSharded(cfg, o.EngineShards)
		if err != nil {
			return nil, err
		}
		if o.EngineWindow > 1 {
			sh.SetWindow(o.EngineWindow)
		}
		te.sh, te.eng = sh, sh.Engine
		return te.eng, nil
	}
	e, err := coherence.NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	te.eng = e
	return e, nil
}

// close releases the pooled engine's shard goroutines (no-op when serial or
// never used).
func (te *trialEngine) close() {
	if te.sh != nil {
		te.sh.Close()
	}
	te.eng, te.sh = nil, nil
}

// mean returns the arithmetic mean of x (0 for an empty slice).
func mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// verdict computes the statistics over the two per-trial mean distributions.
func verdict(o Options, active, idle []float64, accesses uint64) Verdict {
	t, df := stats.WelchT(active, idle)
	if math.IsInf(t, 1) || t > tCap {
		t = tCap
	}
	if math.IsInf(t, -1) || t < -tCap {
		t = -tCap
	}
	auc := stats.AUC(active, idle)
	lo, hi := stats.BootstrapCI2(active, idle, stats.AUC, o.Resamples, o.Confidence, o.Seed+1)
	return Verdict{
		Config:       o.ConfigName,
		Strategy:     o.Strategy.Name(),
		Trials:       o.Trials,
		Rounds:       o.Rounds,
		ActiveMean:   mean(active),
		IdleMean:     mean(idle),
		TStat:        t,
		DF:           df,
		CapacityBits: stats.MutualInformation(active, idle, capacityBins),
		AUC:          auc,
		AUCLo:        lo,
		AUCHi:        hi,
		Confidence:   o.Confidence,
		Leak:         math.Abs(t) > TVLAThreshold,
		Accesses:     accesses,
	}
}
