package leakage

import (
	"context"
	"math"
	"strings"
	"testing"

	"secdir/internal/metrics"
)

// testOptions returns small-but-decisive options for one cell.
func testOptions(t *testing.T, cfgName, strategy string) Options {
	t.Helper()
	cfg, err := ParseConfig(cfgName, 8)
	if err != nil {
		t.Fatal(err)
	}
	s, err := ParseStrategy(strategy)
	if err != nil {
		t.Fatal(err)
	}
	return Options{
		Config:     cfg,
		ConfigName: cfgName,
		Strategy:   s,
		Trials:     100,
		Rounds:     64,
		Seed:       7,
	}
}

// TestBaselineLeaksSecDirDoesNot is the subsystem's reason to exist: the
// unfixed Skylake-X directory must register a TVLA leak under prime+probe and
// evict+reload, and SecDir must not — with the capacity estimate agreeing
// (clearly positive vs. ≈0 bits).
func TestBaselineLeaksSecDirDoesNot(t *testing.T) {
	for _, strategy := range []string{"primeprobe", "evictreload"} {
		base, err := Run(context.Background(), testOptions(t, "skylake-unfixed", strategy))
		if err != nil {
			t.Fatal(err)
		}
		if !base.Leak || math.Abs(base.TStat) <= TVLAThreshold {
			t.Errorf("skylake-unfixed/%s: |t|=%.2f, want a TVLA leak", strategy, math.Abs(base.TStat))
		}
		if base.CapacityBits <= 0.05 {
			t.Errorf("skylake-unfixed/%s: capacity %.3f bits, want clearly positive", strategy, base.CapacityBits)
		}

		sec, err := Run(context.Background(), testOptions(t, "secdir", strategy))
		if err != nil {
			t.Fatal(err)
		}
		if sec.Leak || math.Abs(sec.TStat) > TVLAThreshold {
			t.Errorf("secdir/%s: |t|=%.2f, want no TVLA leak", strategy, math.Abs(sec.TStat))
		}
		if sec.CapacityBits > 0.05 {
			t.Errorf("secdir/%s: capacity %.3f bits, want ≈0", strategy, sec.CapacityBits)
		}
	}
}

// TestDeterminism checks that a fixed seed pins the verdict bit-for-bit, and
// that the worker fan-out only changes scheduling, never results.
func TestDeterminism(t *testing.T) {
	o := testOptions(t, "skylake-unfixed", "primeprobe")
	o.Trials = 40

	o.Workers = 1
	v1, err := Run(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	o.Workers = 8
	v8, err := Run(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	o.Workers = 8
	v8b, err := Run(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v8 {
		t.Errorf("verdict depends on worker count:\n 1: %+v\n 8: %+v", v1, v8)
	}
	if v8 != v8b {
		t.Errorf("verdict not reproducible under a fixed seed:\n a: %+v\n b: %+v", v8, v8b)
	}
}

// TestSeedSensitivity checks the trials are genuinely re-randomized: a
// different master seed must change the raw statistics (while the qualitative
// verdict holds).
func TestSeedSensitivity(t *testing.T) {
	o := testOptions(t, "skylake-unfixed", "primeprobe")
	a, err := Run(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	o.Seed = 99
	b, err := Run(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if a.TStat == b.TStat && a.ActiveMean == b.ActiveMean {
		t.Errorf("seeds 7 and 99 produced identical statistics %+v — trials not reseeded", a)
	}
	if !a.Leak || !b.Leak {
		t.Errorf("baseline leak verdict should survive reseeding: %v / %v", a.Leak, b.Leak)
	}
}

// TestCancellation checks the trial runner honors context cancellation
// instead of finishing the full Monte-Carlo run.
func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	o := testOptions(t, "skylake-unfixed", "primeprobe")
	o.Trials = 10_000 // would take far too long if cancellation were ignored
	if _, err := Run(ctx, o); err == nil {
		t.Fatal("Run returned nil error under a canceled context")
	}
}

// TestMetricsAndProgress checks the runner's observability: trial counters
// and the latency histogram land in the registry, and progress callbacks
// arrive monotonically, ending at the full trial count.
func TestMetricsAndProgress(t *testing.T) {
	reg := metrics.New()
	o := testOptions(t, "secdir", "evictreload")
	o.Trials = 30
	o.Workers = 1 // single worker makes the progress sequence strictly ordered
	o.Metrics = reg
	var calls []int
	o.Progress = func(done, total int) {
		if total != 30 {
			t.Errorf("progress total = %d, want 30", total)
		}
		calls = append(calls, done)
	}
	if _, err := Run(context.Background(), o); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("leakage/trials_total").Value(); got != 30 {
		t.Errorf("leakage/trials_total = %d, want 30", got)
	}
	if got := reg.Histogram("leakage/trial_micros").N(); got != 30 {
		t.Errorf("leakage/trial_micros observations = %d, want 30", got)
	}
	if len(calls) == 0 || calls[len(calls)-1] != 30 {
		t.Fatalf("progress calls %v, want a final done=30", calls)
	}
	for i := 1; i < len(calls); i++ {
		if calls[i] <= calls[i-1] {
			t.Errorf("progress not monotonic: %v", calls)
		}
	}
}

// TestRunReport sweeps a small configs×strategies grid and checks shape,
// labeling, lookup, and the text rendering's verdict column.
func TestRunReport(t *testing.T) {
	strategies, err := ParseStrategyList("primeprobe,evictreload")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunReport(context.Background(), ReportOptions{
		Configs:    []string{"skylake-unfixed", "secdir"},
		Strategies: strategies,
		Trials:     100,
		Rounds:     64,
		Seed:       7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Verdicts) != 4 {
		t.Fatalf("got %d verdicts, want 4", len(rep.Verdicts))
	}
	v, ok := rep.Find("skylake-unfixed", "evictreload")
	if !ok || !v.Leak {
		t.Errorf("skylake-unfixed/evictreload: ok=%v leak=%v, want a leak", ok, v.Leak)
	}
	if v, ok := rep.Find("secdir", "evictreload"); !ok || v.Leak {
		t.Errorf("secdir/evictreload: ok=%v leak=%v, want no leak", ok, v.Leak)
	}
	if got := len(rep.Leaks()); got != 2 {
		t.Errorf("Leaks() = %d cells, want 2 (both skylake-unfixed cells)", got)
	}
	text := rep.Text()
	if !strings.Contains(text, "LEAK") || !strings.Contains(text, "NO-LEAK") {
		t.Errorf("Text() missing verdict column:\n%s", text)
	}
}

// TestParsing covers the name-resolution helpers the CLI and server rely on.
func TestParsing(t *testing.T) {
	if _, err := ParseStrategy("nosuch"); err == nil {
		t.Error("ParseStrategy accepted an unknown name")
	}
	if _, err := ParseConfig("nosuch", 8); err == nil {
		t.Error("ParseConfig accepted an unknown name")
	}
	trio, err := ParseConfigList("", 8)
	if err != nil || len(trio) != len(ConfigNames) {
		t.Errorf("ParseConfigList(\"\") = %v, %v", trio, err)
	}
	all, err := ParseConfigList("all", 8)
	if err != nil || len(all) != len(AllConfigNames()) {
		t.Errorf("ParseConfigList(all) = %v, %v — want the trio plus every rival", all, err)
	}
	for _, n := range all {
		if _, err := ParseConfig(n, 8); err != nil {
			t.Errorf("ParseConfig(%q): %v", n, err)
		}
	}
	if _, err := ParseConfigList("secdir,nosuch", 8); err == nil {
		t.Error("ParseConfigList accepted an unknown name")
	}
	suite, err := ParseStrategyList("suite")
	if err != nil || len(suite) != 4 {
		t.Errorf("ParseStrategyList(suite) = %v, %v", StrategyNames(suite), err)
	}
	everything, err := ParseStrategyList("all")
	if err != nil || len(everything) != 5 {
		t.Errorf("ParseStrategyList(all) = %v, %v", StrategyNames(everything), err)
	}
	dup, err := ParseStrategyList("monitor, monitor,primeprobe")
	if err != nil || len(dup) != 2 || dup[0].Name() != "monitor" {
		t.Errorf("ParseStrategyList dedup = %v, %v", StrategyNames(dup), err)
	}
}
