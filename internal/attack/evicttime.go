package attack

import (
	"secdir/internal/addr"
	"secdir/internal/coherence"
)

// EvictTimeResult summarises an evict+time experiment (§2.2): instead of
// probing its own eviction set, the attacker times the *victim's* operation —
// if the Conflict step evicted the target, a victim operation that touches it
// runs measurably slower.
type EvictTimeResult struct {
	Rounds int
	// MeanActiveCycles / MeanIdleCycles are the victim operation's average
	// simulated duration for rounds where the operation does / does not
	// touch the target line.
	MeanActiveCycles float64
	MeanIdleCycles   float64
}

// Signal is the timing difference in cycles the attacker observes between
// target-touching and target-free victim operations. A positive signal means
// the attacker can distinguish them; ≈0 means the defense holds.
func (r EvictTimeResult) Signal() float64 {
	return r.MeanActiveCycles - r.MeanIdleCycles
}

// EvictTimeStrategy mounts the evict+time attack: the observable is the
// simulated cycle count of the victim's operation. Both operation variants
// perform the same number of loads — the target-free variant loads a warm
// victim-private dummy line instead of the target — so the distributions
// differ only through the directory side channel (a TVLA-style
// fixed-vs-random pair), not through the operation's intrinsic work.
// Implements leakage.Strategy.
type EvictTimeStrategy struct{}

// Name returns the strategy identifier.
func (EvictTimeStrategy) Name() string { return "evicttime" }

// DefaultLines returns the default conflict-set size.
func (EvictTimeStrategy) DefaultLines() int { return defaultEvictionLines }

// NewDriver prepares the attack against e and warms the victim's state
// (target, dummy and fillers cached).
func (EvictTimeStrategy) NewDriver(e *coherence.Engine, p Params) (Driver, error) {
	a, err := NewAttacker(e, p.Attackers, p.Target, p.lines(defaultEvictionLines))
	if err != nil {
		return nil, err
	}
	d := &evictTimeDriver{e: e, a: a, p: p}
	// Victim-private filler lines, far from the target's directory set; the
	// dummy line the idle operation loads sits in the same private region.
	for i := range d.fillers {
		d.fillers[i] = addr.Line(uint64(0x3F)<<24 + uint64(i))
	}
	d.dummy = addr.Line(uint64(0x3F)<<24 + uint64(len(d.fillers)))
	// Warm the victim's state: target, dummy and fillers cached.
	d.operation(true)
	d.operation(false)
	return d, nil
}

// evictTimeDriver is EvictTimeStrategy's per-engine state.
type evictTimeDriver struct {
	e       *coherence.Engine
	a       *Attacker
	p       Params
	fillers [16]addr.Line
	dummy   addr.Line
}

// operation is the victim's timed computation: one lead load — the target or
// the dummy — followed by the filler loads that pad it so it resembles a real
// computation.
func (d *evictTimeDriver) operation(touchTarget bool) (cycles uint64) {
	lead := d.dummy
	if touchTarget {
		lead = d.p.Target
	}
	cycles += uint64(d.e.Access(d.p.Victim, lead, false).Latency)
	for _, f := range d.fillers {
		cycles += uint64(d.e.Access(d.p.Victim, f, false).Latency)
	}
	return cycles
}

// Round evicts and times the victim's next operation.
func (d *evictTimeDriver) Round(_ int, active bool) float64 {
	// The victim holds the target from its previous use.
	d.e.Access(d.p.Victim, d.p.Target, false)
	// Conflict step.
	d.a.Prime()
	// The attacker times the victim's next operation.
	return float64(d.operation(active))
}

// VictimEvictions always reports 0: evict+time observes the victim's timing,
// not its cache contents.
func (d *evictTimeDriver) VictimEvictions() int { return 0 }

// EvictTime runs rounds of the evict+time attack: the attacker primes, then
// times the victim's next operation, which loads the target on active rounds
// and a warm dummy line otherwise.
func EvictTime(e *coherence.Engine, victim int, attackers []int, target addr.Line, rounds, evictionLines int) (EvictTimeResult, error) {
	d, err := EvictTimeStrategy{}.NewDriver(e, Params{
		Victim: victim, Attackers: attackers, Target: target, EvictionLines: evictionLines,
	})
	if err != nil {
		return EvictTimeResult{}, err
	}
	var res EvictTimeResult
	res.Rounds = rounds
	var activeSum, idleSum float64
	var activeN, idleN int
	ForEachRound(d, rounds, nil, func(_ int, active bool, obs float64) {
		if active {
			activeSum += obs
			activeN++
		} else {
			idleSum += obs
			idleN++
		}
	})
	if activeN > 0 {
		res.MeanActiveCycles = activeSum / float64(activeN)
	}
	if idleN > 0 {
		res.MeanIdleCycles = idleSum / float64(idleN)
	}
	return res, nil
}
