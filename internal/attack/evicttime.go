package attack

import (
	"secdir/internal/addr"
	"secdir/internal/coherence"
)

// EvictTimeResult summarises an evict+time experiment (§2.2): instead of
// probing its own eviction set, the attacker times the *victim's* operation —
// if the Conflict step evicted the target, a victim operation that touches it
// runs measurably slower.
type EvictTimeResult struct {
	Rounds int
	// MeanActiveCycles / MeanIdleCycles are the victim operation's average
	// simulated duration for rounds where the operation does / does not
	// touch the target line.
	MeanActiveCycles float64
	MeanIdleCycles   float64
}

// Signal is the timing difference in cycles the attacker observes between
// target-touching and target-free victim operations. A positive signal means
// the attacker can distinguish them; ≈0 means the defense holds.
func (r EvictTimeResult) Signal() float64 {
	return r.MeanActiveCycles - r.MeanIdleCycles
}

// EvictTime runs rounds of the evict+time attack. fillers are victim-private
// lines that pad the timed operation so it resembles a real computation; the
// target-touching variant additionally loads the target.
func EvictTime(e *coherence.Engine, victim int, attackers []int, target addr.Line, rounds, evictionLines int) (EvictTimeResult, error) {
	a, err := NewAttacker(e, attackers, target, evictionLines)
	if err != nil {
		return EvictTimeResult{}, err
	}
	// Victim-private filler lines, far from the target's directory set.
	fillers := make([]addr.Line, 16)
	for i := range fillers {
		fillers[i] = addr.Line(uint64(0x3F)<<24 + uint64(i))
	}
	operation := func(touchTarget bool) (cycles uint64) {
		if touchTarget {
			cycles += uint64(e.Access(victim, target, false).Latency)
		}
		for _, f := range fillers {
			cycles += uint64(e.Access(victim, f, false).Latency)
		}
		return cycles
	}

	var res EvictTimeResult
	res.Rounds = rounds
	var activeSum, idleSum uint64
	var activeN, idleN int
	// Warm the victim's state: target and fillers cached.
	operation(true)
	for i := 0; i < rounds; i++ {
		// The victim holds the target from its previous use.
		e.Access(victim, target, false)
		// Conflict step.
		a.Prime()
		// The attacker times the victim's next operation.
		if i%2 == 0 {
			activeSum += operation(true)
			activeN++
		} else {
			idleSum += operation(false)
			idleN++
		}
	}
	if activeN > 0 {
		res.MeanActiveCycles = float64(activeSum) / float64(activeN)
	}
	if idleN > 0 {
		res.MeanIdleCycles = float64(idleSum) / float64(idleN)
	}
	return res, nil
}
