package attack

import (
	"testing"

	"secdir/internal/config"
)

var testKey = [16]byte{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
	0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c}

// TestRecoverAESKeyBaseline: the first-round attack through directory
// conflicts recovers the high nibbles of key bytes 0,4,8,12 on the
// Skylake-X-style directory.
func TestRecoverAESKeyBaseline(t *testing.T) {
	e := newEngine(t, config.SkylakeX(8))
	res, err := RecoverAESKey(e, victimCore, attackerCores(8), testKey, 48)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Leaked() {
		t.Fatalf("baseline attack recovered %d/%d nibbles (true %v, got %v)",
			res.CorrectNibbles(), len(res.TrueNibbles), res.TrueNibbles, res.RecoveredNibbles)
	}
	// Sanity: the recovered nibbles are the key's actual high nibbles
	// (0x2, 0x2, 0xa, 0x0 for the FIPS-197 key).
	want := []int{0x2, 0x2, 0xa, 0x0}
	for i, w := range want {
		if res.RecoveredNibbles[i] != w {
			t.Errorf("nibble %d = %#x, want %#x", i, res.RecoveredNibbles[i], w)
		}
	}
}

// TestRecoverAESKeySecDir: on SecDir the Conflict step cannot evict the
// victim's T-table line, the reload oracle saturates, and no nibble is
// recovered.
func TestRecoverAESKeySecDir(t *testing.T) {
	e := newEngine(t, config.SecDirConfig(8))
	res, err := RecoverAESKey(e, victimCore, attackerCores(8), testKey, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range res.RecoveredNibbles {
		if g != -1 {
			t.Errorf("SecDir leaked a candidate for nibble %d: %#x (true %#x)", i, g, res.TrueNibbles[i])
		}
	}
	if res.Leaked() {
		t.Fatal("SecDir leaked the key nibbles")
	}
	// And the victim never lost a private line to the attacker.
	if got := e.Stats().Core[victimCore].ConflictInvalidations; got != 0 {
		t.Errorf("victim suffered %d conflict invalidations on SecDir", got)
	}
}
