package attack

import (
	"fmt"

	"secdir/internal/addr"
	"secdir/internal/coherence"
)

// FloodReload is the brute-force variant of evict+reload for directories
// whose set mapping the attacker cannot compute (the §11 randomized
// alternative): instead of a 32-line targeted eviction set, the attacker
// floods the target's home slice with lines across many sets until the
// victim's entry is statistically certain to be displaced. This is the
// paper's point about randomization-based defenses — they "can only reduce
// the bandwidth of the attack, instead of eliminating it": each observation
// now costs tens of thousands of accesses instead of a few dozen.
func FloodReload(e *coherence.Engine, victim int, attackers []int, target addr.Line, rounds, floodLines int) (EvictReloadResult, error) {
	m := e.Mapper()
	slice := m.Slice(target)
	flood := make([]addr.Line, 0, floodLines)
	for cand := addr.Line(0); len(flood) < floodLines; cand++ {
		if cand != target && m.Slice(cand) == slice {
			flood = append(flood, cand)
		}
	}
	if len(flood) < floodLines {
		return EvictReloadResult{}, fmt.Errorf("attack: found only %d/%d same-slice lines", len(flood), floodLines)
	}

	var res EvictReloadResult
	res.Rounds = rounds
	for i := 0; i < rounds; i++ {
		e.Access(victim, target, false)
		// Conflict step: flood the slice from all attacker cores, twice —
		// flushing the attackers between waves so every flood line
		// re-inserts a directory entry each time (the brute-force cost
		// randomization imposes; a targeted set needs ~32 accesses, this
		// needs tens of thousands).
		for wave := 0; wave < 2; wave++ {
			for _, a := range attackers {
				e.FlushCore(a)
			}
			for j, l := range flood {
				e.Access(attackers[j%len(attackers)], l, false)
			}
		}
		if !e.L2Contains(victim, target) {
			res.VictimEvictions++
		}
		victimAccessed := i%2 == 0
		if victimAccessed {
			e.Access(victim, target, false)
		}
		guess := e.Access(attackers[0], target, false).Level != coherence.LevelMemory
		if guess == victimAccessed {
			res.Correct++
		}
		e.FlushCore(attackers[0])
	}
	return res, nil
}
