package attack

import (
	"fmt"

	"secdir/internal/addr"
	"secdir/internal/coherence"
)

// defaultFloodLines is the flood size FloodReloadStrategy uses when Params
// leaves it unset: enough same-slice lines that the victim's entry is
// statistically certain to be displaced on the randomized design (§11's
// "tens of thousands of accesses per observation").
const defaultFloodLines = 40_000

// FloodReloadStrategy is the brute-force variant of evict+reload for
// directories whose set mapping the attacker cannot compute (the §11
// randomized alternative): instead of a targeted eviction set, the attacker
// floods the target's home slice with lines across many sets. The observable
// is the reload hit, as in EvictReloadStrategy; Params.EvictionLines is the
// flood size. Implements leakage.Strategy.
type FloodReloadStrategy struct{}

// Name returns the strategy identifier.
func (FloodReloadStrategy) Name() string { return "floodreload" }

// DefaultLines returns the default flood size.
func (FloodReloadStrategy) DefaultLines() int { return defaultFloodLines }

// NewDriver enumerates the flood set against e.
func (FloodReloadStrategy) NewDriver(e *coherence.Engine, p Params) (Driver, error) {
	floodLines := p.lines(defaultFloodLines)
	m := e.Mapper()
	slice := m.Slice(p.Target)
	flood := make([]addr.Line, 0, floodLines)
	for cand := addr.Line(0); len(flood) < floodLines; cand++ {
		if cand != p.Target && m.Slice(cand) == slice {
			flood = append(flood, cand)
		}
	}
	if len(flood) < floodLines {
		return nil, fmt.Errorf("attack: found only %d/%d same-slice lines", len(flood), floodLines)
	}
	return &floodReloadDriver{e: e, p: p, flood: flood}, nil
}

// floodReloadDriver is FloodReloadStrategy's per-engine state.
type floodReloadDriver struct {
	e         *coherence.Engine
	p         Params
	flood     []addr.Line
	evictions int
}

// Round runs one flood-Wait-Analyze cycle.
func (d *floodReloadDriver) Round(_ int, active bool) float64 {
	d.e.Access(d.p.Victim, d.p.Target, false)
	// Conflict step: flood the slice from all attacker cores, twice —
	// flushing the attackers between waves so every flood line re-inserts a
	// directory entry each time (the brute-force cost randomization imposes;
	// a targeted set needs ~32 accesses, this needs tens of thousands).
	for wave := 0; wave < 2; wave++ {
		for _, a := range d.p.Attackers {
			d.e.FlushCore(a)
		}
		for j, l := range d.flood {
			d.e.Access(d.p.Attackers[j%len(d.p.Attackers)], l, false)
		}
	}
	if !d.e.L2Contains(d.p.Victim, d.p.Target) {
		d.evictions++
	}
	if active {
		d.e.Access(d.p.Victim, d.p.Target, false)
	}
	hit := d.e.Access(d.p.Attackers[0], d.p.Target, false).Level != coherence.LevelMemory
	d.e.FlushCore(d.p.Attackers[0])
	return b2f(hit)
}

// VictimEvictions reports rounds whose flood displaced the victim's private
// copy.
func (d *floodReloadDriver) VictimEvictions() int { return d.evictions }

// FloodReload runs rounds of the brute-force slice-flooding variant of
// evict+reload against directories whose set mapping the attacker cannot
// compute. This is the paper's point about randomization-based defenses —
// they "can only reduce the bandwidth of the attack, instead of eliminating
// it": each observation costs tens of thousands of accesses instead of a few
// dozen.
func FloodReload(e *coherence.Engine, victim int, attackers []int, target addr.Line, rounds, floodLines int) (EvictReloadResult, error) {
	d, err := FloodReloadStrategy{}.NewDriver(e, Params{
		Victim: victim, Attackers: attackers, Target: target, EvictionLines: floodLines,
	})
	if err != nil {
		return EvictReloadResult{}, err
	}
	var res EvictReloadResult
	res.Rounds = rounds
	ForEachRound(d, rounds, nil, func(_ int, active bool, obs float64) {
		if (obs >= 0.5) == active {
			res.Correct++
		}
	})
	res.VictimEvictions = d.VictimEvictions()
	return res, nil
}
