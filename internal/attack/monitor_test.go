package attack

import (
	"math/rand"
	"testing"

	"secdir/internal/config"
	"secdir/internal/trace"
)

// victimPattern returns a deterministic pseudo-random touch pattern over the
// monitored lines (2-6 lines per window, like a few AES rounds' worth of
// distinct T0 lines).
func victimPattern(lines int, seed int64) func(int) []bool {
	rng := rand.New(rand.NewSource(seed))
	return func(int) []bool {
		touch := make([]bool, lines)
		n := 2 + rng.Intn(5)
		for i := 0; i < n; i++ {
			touch[rng.Intn(lines)] = true
		}
		return touch
	}
}

// TestPatternRecoveryBaseline: the attacker reconstructs the victim's
// per-window T0 access sets nearly perfectly on the vulnerable directory.
func TestPatternRecoveryBaseline(t *testing.T) {
	e := newEngine(t, config.SkylakeX(8))
	res, err := RecoverPattern(e, victimCore, attackerCores(8), trace.T0Lines(), 25, victimPattern(16, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Recall() < 0.95 {
		t.Errorf("baseline recall %.2f, want ≈1.0 (missed %d touches)", res.Recall(), res.FalseNegatives)
	}
	if res.Precision() < 0.9 {
		t.Errorf("baseline precision %.2f (%d false positives)", res.Precision(), res.FalsePositives)
	}
}

// TestPatternRecoverySecDir: on SecDir the evictions never land, every
// reload hits regardless of victim behaviour, and the reconstruction carries
// no information (precision collapses to the base rate; nothing real is
// separable from noise).
func TestPatternRecoverySecDir(t *testing.T) {
	e := newEngine(t, config.SecDirConfig(8))
	res, err := RecoverPattern(e, victimCore, attackerCores(8), trace.T0Lines(), 25, victimPattern(16, 1))
	if err != nil {
		t.Fatal(err)
	}
	// The oracle saturates: (almost) every line reads as "touched" in every
	// window, so false positives swamp the signal.
	total := res.TruePositives + res.FalsePositives + res.FalseNegatives + res.TrueNegatives
	positives := res.TruePositives + res.FalsePositives
	if positives < total*9/10 {
		t.Errorf("expected a saturated oracle on SecDir; positives %d/%d", positives, total)
	}
	if res.Precision() > 0.4 {
		t.Errorf("secdir precision %.2f, want ≈ the victim's base touch rate (~0.25)", res.Precision())
	}
	if got := e.Stats().Core[victimCore].ConflictInvalidations; got != 0 {
		t.Errorf("victim suffered %d conflict invalidations", got)
	}
}
