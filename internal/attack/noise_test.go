package attack

import (
	"testing"

	"secdir/internal/config"
	"secdir/internal/trace"
)

// TestAttackUnderBackgroundNoise runs the evict+reload attack while the
// non-attacking cores execute a benign workload. Realistic co-location noise
// perturbs the directory constantly; the security conclusions must not
// depend on a quiet machine: the baseline still leaks (accuracy well above
// chance) and SecDir still blocks every forced eviction.
func TestAttackUnderBackgroundNoise(t *testing.T) {
	// Cores 1-4 attack; cores 5-7 run benign LLC-fitting applications.
	attackers := []int{1, 2, 3, 4}
	noisy := []int{5, 6, 7}

	run := func(cfg config.Config) (EvictReloadResult, uint64) {
		e := newEngine(t, cfg)
		gens := make([]trace.Generator, len(noisy))
		for i := range noisy {
			g, err := trace.NewSpecApp("omnetpp", 40+i, int64(100+i))
			if err != nil {
				t.Fatal(err)
			}
			gens[i] = g
		}
		a, err := NewAttacker(e, attackers, targetLine, 32)
		if err != nil {
			t.Fatal(err)
		}
		var res EvictReloadResult
		res.Rounds = 40
		for i := 0; i < res.Rounds; i++ {
			e.Access(victimCore, targetLine, false)
			a.Prime()
			// Background processes issue a burst of accesses between the
			// attacker's steps.
			for j := 0; j < 500; j++ {
				for k, g := range gens {
					acc := g.Next()
					e.Access(noisy[k], acc.Line, acc.Write)
				}
			}
			if !e.L2Contains(victimCore, targetLine) {
				res.VictimEvictions++
			}
			victimAccessed := i%2 == 0
			if victimAccessed {
				e.Access(victimCore, targetLine, false)
			}
			if a.Reload(targetLine) == victimAccessed {
				res.Correct++
			}
			e.FlushCore(attackers[0])
		}
		return res, e.Stats().Core[victimCore].ConflictInvalidations
	}

	base, _ := run(config.SkylakeX(8))
	if base.VictimEvictions < base.Rounds/2 {
		t.Errorf("baseline under noise: only %d/%d victim evictions", base.VictimEvictions, base.Rounds)
	}
	if base.Accuracy() < 0.8 {
		t.Errorf("baseline under noise: accuracy %.2f collapsed", base.Accuracy())
	}

	sec, incl := run(config.SecDirConfig(8))
	if sec.VictimEvictions != 0 {
		t.Errorf("secdir under noise: %d forced victim evictions", sec.VictimEvictions)
	}
	if incl != 0 {
		t.Errorf("secdir under noise: %d inclusion victims", incl)
	}
}
