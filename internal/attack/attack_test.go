package attack

import (
	"testing"

	"secdir/internal/addr"
	"secdir/internal/coherence"
	"secdir/internal/config"
	"secdir/internal/directory"
)

const (
	victimCore = 0
	targetLine = addr.Line(0x3200 >> 6) // a T0-table line (§9)
)

func attackerCores(n int) []int {
	cores := make([]int, 0, n-1)
	for c := 1; c < n; c++ {
		cores = append(cores, c)
	}
	return cores
}

func newEngine(t *testing.T, cfg config.Config) *coherence.Engine {
	t.Helper()
	e, err := coherence.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestBuildEvictionSet(t *testing.T) {
	e := newEngine(t, config.SkylakeX(8))
	m := e.Mapper()
	ev, err := BuildEvictionSet(m, targetLine, 64)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[addr.Line]bool{targetLine: true}
	for _, l := range ev {
		if seen[l] {
			t.Fatalf("duplicate or target line %#x in eviction set", uint64(l))
		}
		seen[l] = true
		if m.Slice(l) != m.Slice(targetLine) || m.Set(l) != m.Set(targetLine) {
			t.Fatalf("line %#x does not conflict with target (slice %d/%d set %d/%d)",
				uint64(l), m.Slice(l), m.Slice(targetLine), m.Set(l), m.Set(targetLine))
		}
	}
}

// TestEvictReloadBaseline reproduces the §2.3 attack on the Skylake-X-style
// directory: with enough conflicting lines cached across the other cores,
// the victim's directory entry — and with it the victim's private copy — is
// evicted, and the attacker reads the victim's access pattern with perfect
// accuracy.
func TestEvictReloadBaseline(t *testing.T) {
	e := newEngine(t, config.SkylakeX(8))
	res, err := EvictReload(e, victimCore, attackerCores(8), targetLine, 40, 32)
	if err != nil {
		t.Fatal(err)
	}
	if res.VictimEvictions < res.Rounds*9/10 {
		t.Errorf("baseline: conflict step evicted the victim line in only %d/%d rounds", res.VictimEvictions, res.Rounds)
	}
	if res.Accuracy() < 0.95 {
		t.Errorf("baseline: attack accuracy = %.2f, want ≈1.0", res.Accuracy())
	}
}

// TestEvictReloadSecDir shows the attack is blocked: the victim's entries
// retreat into its private Victim Directory, the private copy survives every
// priming round, and the attacker learns nothing (chance accuracy).
func TestEvictReloadSecDir(t *testing.T) {
	e := newEngine(t, config.SecDirConfig(8))
	res, err := EvictReload(e, victimCore, attackerCores(8), targetLine, 40, 32)
	if err != nil {
		t.Fatal(err)
	}
	if res.VictimEvictions != 0 {
		t.Errorf("secdir: conflict step evicted the victim line in %d rounds, want 0", res.VictimEvictions)
	}
	if res.Accuracy() > 0.6 {
		t.Errorf("secdir: attack accuracy = %.2f, want ≈0.5 (chance)", res.Accuracy())
	}
	// And the victim suffered no cross-core inclusion victims at all.
	if got := e.Stats().Core[victimCore].ConflictInvalidations; got != 0 {
		t.Errorf("secdir: victim suffered %d conflict invalidations", got)
	}
}

// TestPrimeProbeSignal compares the prime+probe observable: on the baseline
// the victim's single access displaces attacker directory entries and shows
// up as extra probe misses; on SecDir displaced attacker entries retreat to
// the attacker's own VDs and the probe signal vanishes.
func TestPrimeProbeSignal(t *testing.T) {
	// The probe-based observable is cleanest on the Appendix-A-fixed
	// baseline, where only genuine ED+TD set conflicts evict lines; the
	// unfixed design's extra ED-migration evictions add churn to both the
	// active and idle rounds (its leak is demonstrated by
	// TestAppendixALimitation and the evict+reload tests).
	cfgB := config.SkylakeX(8)
	cfgB.AppendixAFix = true
	eb := newEngine(t, cfgB)
	rb, err := PrimeProbe(eb, victimCore, attackerCores(8), targetLine, 40, 32)
	if err != nil {
		t.Fatal(err)
	}
	if rb.Signal() < 0.5 {
		t.Errorf("baseline prime+probe signal = %.2f misses/round, want ≥0.5", rb.Signal())
	}

	es := newEngine(t, config.SecDirConfig(8))
	rs, err := PrimeProbe(es, victimCore, attackerCores(8), targetLine, 40, 32)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Signal() > rb.Signal()/4 {
		t.Errorf("secdir prime+probe signal = %.2f, baseline %.2f: not suppressed", rs.Signal(), rb.Signal())
	}
}

// TestAppendixALimitation reproduces the Skylake-X implementation limitation:
// without the fix, merely filling the ED (12 ways) invalidates an
// exclusively-held victim line when its entry migrates ED→TD; with the fix
// the copy survives ED pressure and only full ED+TD conflicts (23+ lines)
// evict it.
func TestAppendixALimitation(t *testing.T) {
	// For each seed: the victim takes the target Exclusive, then attacker
	// cores fill the ED set with 20 conflicting lines (leaving the TD far
	// from overflowing). The ED uses random replacement, so in a fraction
	// of the seeds the victim's entry is the one that migrates ED→TD; in
	// exactly those runs, the unfixed design must have invalidated the
	// victim's private copy and the fixed design must have kept it.
	run := func(fix bool, seed int64) (migrated, copyHeld bool) {
		cfg := config.SkylakeX(8)
		cfg.AppendixAFix = fix
		cfg.Seed = seed
		e := newEngine(t, cfg)
		e.Access(victimCore, targetLine, false)
		a, err := NewAttacker(e, attackerCores(8), targetLine, 20)
		if err != nil {
			t.Fatal(err)
		}
		a.Prime()
		_, where, ok := e.Slice(e.Mapper().Slice(targetLine)).Find(targetLine)
		migrated = !ok || where != directory.WhereED
		return migrated, e.L2Contains(victimCore, targetLine)
	}
	migrations := 0
	for seed := int64(1); seed <= 20; seed++ {
		mu, heldUnfixed := run(false, seed)
		mf, heldFixed := run(true, seed)
		if mu {
			migrations++
			if heldUnfixed {
				t.Errorf("seed %d: unfixed ED→TD migration kept the Exclusive copy", seed)
			}
		}
		if mf && !heldFixed {
			t.Errorf("seed %d: fixed ED→TD migration lost the victim copy", seed)
		}
		if !mf && !heldFixed {
			t.Errorf("seed %d: fixed run lost the victim copy without a migration", seed)
		}
	}
	if migrations < 3 {
		t.Fatalf("only %d/20 seeds migrated the victim entry; pressure too low to test", migrations)
	}
}

// TestInvariantsAfterAttack runs the full attack and then checks global
// coherence invariants on both designs.
func TestInvariantsAfterAttack(t *testing.T) {
	for _, cfg := range []config.Config{config.SkylakeX(8), config.SecDirConfig(8)} {
		e := newEngine(t, cfg)
		if _, err := EvictReload(e, victimCore, attackerCores(8), targetLine, 10, 32); err != nil {
			t.Fatal(err)
		}
		if err := e.CheckInvariants(); err != nil {
			t.Errorf("%v: %v", cfg.Kind, err)
		}
	}
}

// TestMinimalEvictionSetSize validates §2.3's arithmetic empirically on the
// fixed baseline: a directory set holds at most W_ED+W_TD = 23 entries, so
// eviction sets well below that never force the victim out, and sets just
// above it succeed in (almost) every round.
func TestMinimalEvictionSetSize(t *testing.T) {
	mk := func() (*coherence.Engine, error) {
		cfg := config.SkylakeX(8)
		cfg.AppendixAFix = true // isolate the pure set-conflict bound
		return coherence.NewEngine(cfg)
	}
	rates, err := MinimalEvictionSet(mk, victimCore, attackerCores(8), targetLine,
		[]int{8, 16, 22, 24, 32}, 20)
	if err != nil {
		t.Fatal(err)
	}
	// Below the bound: the 23 entries (victim + up to 22 attackers) fit.
	for _, small := range []int{8, 16, 22} {
		if rates[small] > 0 {
			t.Errorf("%d lines evicted the victim (rate %v); W_ED+W_TD=23 should hold them all", small, rates[small])
		}
	}
	// Above the bound: conflicts are forced.
	if rates[24] == 0 {
		t.Errorf("24 lines never evicted the victim; the 23-entry bound did not bind")
	}
	// Random ED replacement makes success probabilistic just above the
	// bound; well above it, eviction dominates.
	if rates[32] < 0.7 {
		t.Errorf("32 lines evicted the victim at rate %v, want high", rates[32])
	}
	if rates[32] < rates[24] {
		t.Errorf("eviction rate not monotone in set size: %v at 24 vs %v at 32", rates[24], rates[32])
	}
	// And the same sweep on SecDir: no size ever works.
	mkSec := func() (*coherence.Engine, error) {
		return coherence.NewEngine(config.SecDirConfig(8))
	}
	secRates, err := MinimalEvictionSet(mkSec, victimCore, attackerCores(8), targetLine,
		[]int{24, 32, 64}, 10)
	if err != nil {
		t.Fatal(err)
	}
	for size, rate := range secRates {
		if rate != 0 {
			t.Errorf("SecDir: %d lines evicted the victim at rate %v", size, rate)
		}
	}
}
