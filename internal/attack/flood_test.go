package attack

import (
	"testing"

	"secdir/internal/addr"
	"secdir/internal/config"
)

// TestRandomizedDefeatsTargetedAttack: against the CEASER-style randomized
// directory, the address-computed eviction set no longer aliases with the
// victim's entry, and targeted evict+reload collapses to chance.
func TestRandomizedDefeatsTargetedAttack(t *testing.T) {
	e := newEngine(t, config.RandMappedConfig(8, 50_000))
	res, err := EvictReload(e, victimCore, attackerCores(8), targetLine, 40, 32)
	if err != nil {
		t.Fatal(err)
	}
	if res.VictimEvictions > 2 {
		t.Errorf("targeted attack evicted the victim %d/%d times on the randomized design", res.VictimEvictions, res.Rounds)
	}
	if res.Accuracy() > 0.65 {
		t.Errorf("targeted attack accuracy %.2f on the randomized design, want ≈0.5", res.Accuracy())
	}
}

// TestFloodBeatsRandomized reproduces the §11 criticism: flooding the slice
// still evicts the victim's entry — randomization only raised the price.
func TestFloodBeatsRandomized(t *testing.T) {
	e := newEngine(t, config.RandMappedConfig(8, 200_000))
	res, err := FloodReload(e, victimCore, attackerCores(8), targetLine, 20, 48_000)
	if err != nil {
		t.Fatal(err)
	}
	// Statistical, not structural: the flood wins most rounds (vs. the
	// targeted attack's zero), at a cost of ~10^5 accesses per observation.
	if res.VictimEvictions < res.Rounds/2 {
		t.Errorf("flood evicted the victim in only %d/%d rounds", res.VictimEvictions, res.Rounds)
	}
	if res.Accuracy() < 0.7 {
		t.Errorf("flood accuracy %.2f on the randomized design, want well above chance", res.Accuracy())
	}
}

// TestFloodFailsOnSecDir: the same brute-force flood cannot touch SecDir's
// per-core Victim Directories — the defense is structural, not statistical.
func TestFloodFailsOnSecDir(t *testing.T) {
	e := newEngine(t, config.SecDirConfig(8))
	res, err := FloodReload(e, victimCore, attackerCores(8), targetLine, 10, 40_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.VictimEvictions != 0 {
		t.Errorf("flood evicted the victim %d times on SecDir", res.VictimEvictions)
	}
	if got := e.Stats().Core[victimCore].ConflictInvalidations; got != 0 {
		t.Errorf("victim suffered %d conflict invalidations", got)
	}
}

// TestRekeyingHappens: the randomized design actually re-keys under load and
// stays coherent across remaps.
func TestRekeyingHappens(t *testing.T) {
	cfg := config.RandMappedConfig(8, 2_000)
	e := newEngine(t, cfg)
	w := attackerCores(8)
	_ = w
	for i := 0; i < 30_000; i++ {
		e.Access(i%8, targetLine+addr.Line(i*13), i%6 == 0)
	}
	var rekeys uint64
	for s := 0; s < 8; s++ {
		if rm, ok := e.Slice(s).(interface{ RekeyCount() uint64 }); ok {
			rekeys += rm.RekeyCount()
		}
	}
	if rekeys == 0 {
		t.Fatal("no re-keys happened under load")
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
