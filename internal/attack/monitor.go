package attack

import (
	"fmt"

	"secdir/internal/addr"
	"secdir/internal/coherence"
)

// Monitor watches a set of victim lines (e.g. all 16 lines of the AES T0
// table) with interleaved evict+reload, reconstructing which lines the victim
// touches in each observation window — the full access-pattern recovery that
// [46] demonstrated against the Skylake-X directory and that motivates the
// paper ("As the victim re-accesses its data, the attacker can indirectly
// observe the directory state changing").
type Monitor struct {
	eng       *coherence.Engine
	cores     []int
	lines     []addr.Line
	attackers map[addr.Line]*Attacker
}

// NewMonitor builds one eviction set per monitored line.
func NewMonitor(e *coherence.Engine, cores []int, lines []addr.Line) (*Monitor, error) {
	m := &Monitor{
		eng:       e,
		cores:     cores,
		lines:     lines,
		attackers: make(map[addr.Line]*Attacker, len(lines)),
	}
	for _, l := range lines {
		a, err := NewAttacker(e, cores, l, 32)
		if err != nil {
			return nil, fmt.Errorf("attack: eviction set for %#x: %w", uint64(l), err)
		}
		m.attackers[l] = a
	}
	return m, nil
}

// Evict runs the Conflict step for every monitored line.
func (m *Monitor) Evict() {
	for _, l := range m.lines {
		m.attackers[l].Prime()
	}
}

// Observe runs the Analyze step: it reloads every monitored line and reports
// which ones re-entered the hierarchy since Evict — the victim's observed
// access set. The attacker's own reload copies are flushed afterwards.
func (m *Monitor) Observe() []bool {
	touched := make([]bool, len(m.lines))
	for i, l := range m.lines {
		touched[i] = m.attackers[l].Reload(l)
	}
	m.eng.FlushCore(m.cores[0])
	return touched
}

// MonitorResult summarises a pattern-recovery experiment.
type MonitorResult struct {
	Windows int
	// TruePositives / FalsePositives / FalseNegatives count per-line
	// classifications across all windows against the ground truth.
	TruePositives, FalsePositives, FalseNegatives int
	// TrueNegatives completes the confusion matrix.
	TrueNegatives int
}

// Precision is TP/(TP+FP), 0 when no positives were reported.
func (r MonitorResult) Precision() float64 {
	if r.TruePositives+r.FalsePositives == 0 {
		return 0
	}
	return float64(r.TruePositives) / float64(r.TruePositives+r.FalsePositives)
}

// Recall is TP/(TP+FN), 0 when the victim touched nothing.
func (r MonitorResult) Recall() float64 {
	if r.TruePositives+r.FalseNegatives == 0 {
		return 0
	}
	return float64(r.TruePositives) / float64(r.TruePositives+r.FalseNegatives)
}

// RecoverPattern runs windows observation rounds against a victim that, in
// each window, accesses the subset of lines selected by victimTouch (which is
// also the ground truth). It returns the confusion matrix of the attacker's
// reconstruction.
func RecoverPattern(e *coherence.Engine, victim int, cores []int, lines []addr.Line, windows int, victimTouch func(window int) []bool) (MonitorResult, error) {
	m, err := NewMonitor(e, cores, lines)
	if err != nil {
		return MonitorResult{}, err
	}
	var res MonitorResult
	res.Windows = windows
	for w := 0; w < windows; w++ {
		m.Evict()
		truth := victimTouch(w)
		for i, touch := range truth {
			if touch {
				e.Access(victim, lines[i], false)
			}
		}
		got := m.Observe()
		for i := range lines {
			switch {
			case got[i] && truth[i]:
				res.TruePositives++
			case got[i] && !truth[i]:
				res.FalsePositives++
			case !got[i] && truth[i]:
				res.FalseNegatives++
			default:
				res.TrueNegatives++
			}
		}
	}
	return res, nil
}
