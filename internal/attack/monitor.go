package attack

import (
	"fmt"

	"secdir/internal/addr"
	"secdir/internal/coherence"
)

// Monitor watches a set of victim lines (e.g. all 16 lines of the AES T0
// table) with interleaved evict+reload, reconstructing which lines the victim
// touches in each observation window — the full access-pattern recovery that
// [46] demonstrated against the Skylake-X directory and that motivates the
// paper ("As the victim re-accesses its data, the attacker can indirectly
// observe the directory state changing").
type Monitor struct {
	eng       *coherence.Engine
	cores     []int
	lines     []addr.Line
	attackers map[addr.Line]*Attacker
}

// NewMonitor builds one eviction set per monitored line.
func NewMonitor(e *coherence.Engine, cores []int, lines []addr.Line) (*Monitor, error) {
	m := &Monitor{
		eng:       e,
		cores:     cores,
		lines:     lines,
		attackers: make(map[addr.Line]*Attacker, len(lines)),
	}
	for _, l := range lines {
		a, err := NewAttacker(e, cores, l, defaultEvictionLines)
		if err != nil {
			return nil, fmt.Errorf("attack: eviction set for %#x: %w", uint64(l), err)
		}
		m.attackers[l] = a
	}
	return m, nil
}

// Evict runs the Conflict step for every monitored line.
func (m *Monitor) Evict() {
	for _, l := range m.lines {
		m.attackers[l].Prime()
	}
}

// Observe runs the Analyze step: it reloads every monitored line and reports
// which ones re-entered the hierarchy since Evict — the victim's observed
// access set. The attacker's own reload copies are flushed afterwards.
func (m *Monitor) Observe() []bool {
	touched := make([]bool, len(m.lines))
	for i, l := range m.lines {
		touched[i] = m.attackers[l].Reload(l)
	}
	m.eng.FlushCore(m.cores[0])
	return touched
}

// MonitorResult summarises a pattern-recovery experiment.
type MonitorResult struct {
	Windows int
	// TruePositives / FalsePositives / FalseNegatives count per-line
	// classifications across all windows against the ground truth.
	TruePositives, FalsePositives, FalseNegatives int
	// TrueNegatives completes the confusion matrix.
	TrueNegatives int
}

// Precision is TP/(TP+FP), 0 when no positives were reported.
func (r MonitorResult) Precision() float64 {
	if r.TruePositives+r.FalsePositives == 0 {
		return 0
	}
	return float64(r.TruePositives) / float64(r.TruePositives+r.FalsePositives)
}

// Recall is TP/(TP+FN), 0 when the victim touched nothing.
func (r MonitorResult) Recall() float64 {
	if r.TruePositives+r.FalseNegatives == 0 {
		return 0
	}
	return float64(r.TruePositives) / float64(r.TruePositives+r.FalseNegatives)
}

// MonitorStrategy mounts the multi-line monitor as a leakage strategy over a
// single watched line (the target): each round is one observation window, the
// victim touches the target on active rounds, and the observable is the
// number of monitored lines the attacker reports as touched. Implements
// leakage.Strategy.
type MonitorStrategy struct{}

// Name returns the strategy identifier.
func (MonitorStrategy) Name() string { return "monitor" }

// DefaultLines returns the default conflict-set size per monitored line.
func (MonitorStrategy) DefaultLines() int { return defaultEvictionLines }

// NewDriver prepares a single-line monitor against e.
func (MonitorStrategy) NewDriver(e *coherence.Engine, p Params) (Driver, error) {
	lines := []addr.Line{p.Target}
	return newMonitorDriver(e, p.Victim, p.Attackers, lines, func(_ int, active bool) []bool {
		return []bool{active}
	})
}

// monitorDriver drives one Monitor window per round: evict every monitored
// line, replay the victim's ground-truth touches, observe, and accumulate the
// confusion matrix.
type monitorDriver struct {
	e      *coherence.Engine
	m      *Monitor
	victim int
	lines  []addr.Line
	// truth produces the victim's per-line access set for window w; the
	// active flag carries the trial schedule for strategies that derive the
	// truth from it.
	truth func(w int, active bool) []bool
	res   MonitorResult
}

// newMonitorDriver builds the monitor and its driver.
func newMonitorDriver(e *coherence.Engine, victim int, cores []int, lines []addr.Line, truth func(w int, active bool) []bool) (*monitorDriver, error) {
	m, err := NewMonitor(e, cores, lines)
	if err != nil {
		return nil, err
	}
	return &monitorDriver{e: e, m: m, victim: victim, lines: lines, truth: truth}, nil
}

// Round runs one observation window and returns how many monitored lines the
// attacker classified as touched.
func (d *monitorDriver) Round(w int, active bool) float64 {
	d.m.Evict()
	truth := d.truth(w, active)
	for i, touch := range truth {
		if touch {
			d.e.Access(d.victim, d.lines[i], false)
		}
	}
	got := d.m.Observe()
	positives := 0
	for i := range d.lines {
		switch {
		case got[i] && truth[i]:
			d.res.TruePositives++
		case got[i] && !truth[i]:
			d.res.FalsePositives++
		case !got[i] && truth[i]:
			d.res.FalseNegatives++
		default:
			d.res.TrueNegatives++
		}
		if got[i] {
			positives++
		}
	}
	return float64(positives)
}

// VictimEvictions always reports 0: the monitor's reloads observe directory
// state, not the victim's private copies.
func (d *monitorDriver) VictimEvictions() int { return 0 }

// RecoverPattern runs windows observation rounds against a victim that, in
// each window, accesses the subset of lines selected by victimTouch (which is
// also the ground truth). It returns the confusion matrix of the attacker's
// reconstruction.
func RecoverPattern(e *coherence.Engine, victim int, cores []int, lines []addr.Line, windows int, victimTouch func(window int) []bool) (MonitorResult, error) {
	d, err := newMonitorDriver(e, victim, cores, lines, func(w int, _ bool) []bool {
		return victimTouch(w)
	})
	if err != nil {
		return MonitorResult{}, err
	}
	ForEachRound(d, windows, nil, nil)
	res := d.res
	res.Windows = windows
	return res, nil
}
