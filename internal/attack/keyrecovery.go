package attack

import (
	"fmt"

	"secdir/internal/addr"
	"secdir/internal/coherence"
	"secdir/internal/trace"
)

// This file mounts an end-to-end AES key-recovery attack through the
// directory side channel — the payload the paper's §9 scenario enables.
//
// It is the classic first-round, line-granular attack of Osvik, Shamir and
// Tromer, carried by directory conflicts instead of LLC conflicts: in round
// one, T-table T0 is indexed by pt[b] ⊕ k[b] for state bytes b ∈ {0,4,8,12}.
// At 64-byte line granularity the attacker observes the high nibble of the
// index. For a chosen plaintext with pt[b] = g<<4, the monitored T0 line 0 is
// touched *with certainty* in round one iff g equals the high nibble of k[b];
// for every other guess the line is touched only by chance in later rounds
// (P ≈ 1 − (15/16)^35 ≈ 0.9 per encryption — high, but reliably below 1).
// Repeating each guess over many encryptions, the guess whose touch-rate is
// exactly 1.0 reveals the key nibble.
//
// The attacker's only primitive is the directory evict+reload oracle: evict
// the monitored line via directory conflicts, let the victim encrypt once,
// reload and classify. On SecDir the Conflict step fails — the line never
// leaves the victim's private caches, the reload always hits, every guess
// ties at touch-rate 1.0, and the key nibble is unrecoverable.

// KeyRecoveryResult reports the outcome of the first-round attack.
type KeyRecoveryResult struct {
	// TargetBytes are the attacked key-byte positions (T0 column: 0,4,8,12).
	TargetBytes []int
	// TrueNibbles and RecoveredNibbles are the actual and recovered high
	// nibbles of those key bytes; Recovered is -1 when the scores tied
	// (no information — the SecDir outcome).
	TrueNibbles      []int
	RecoveredNibbles []int
	// Encryptions performed by the victim during the attack.
	Encryptions int
}

// CorrectNibbles counts recovered nibbles matching the key.
func (r KeyRecoveryResult) CorrectNibbles() int {
	n := 0
	for i := range r.TrueNibbles {
		if r.RecoveredNibbles[i] == r.TrueNibbles[i] {
			n++
		}
	}
	return n
}

// Leaked reports whether the attack recovered every targeted nibble.
func (r KeyRecoveryResult) Leaked() bool {
	return r.CorrectNibbles() == len(r.TrueNibbles)
}

// aesVictimProc is the victim process: it owns the key and encrypts
// attacker-supplied plaintexts on its core, with every T-table load going
// through the simulated memory hierarchy.
type aesVictimProc struct {
	eng  *coherence.Engine
	core int
	aes  *trace.AES
}

// encrypt performs one encryption, replaying the table-access trace through
// the victim's core.
func (v *aesVictimProc) encrypt(pt [16]byte) {
	var lines []addr.Line
	v.aes.Encrypt(pt, &lines)
	for _, l := range lines {
		v.eng.Access(v.core, l, false)
	}
}

// RecoverAESKey mounts the first-round attack against the high nibbles of
// key bytes 0, 4, 8 and 12 (the bytes that index T0 in round one). The
// victim runs on victimCore with the given key; encsPerGuess encryptions are
// observed per nibble guess (16 per byte).
func RecoverAESKey(e *coherence.Engine, victimCore int, attackers []int, key [16]byte, encsPerGuess int) (KeyRecoveryResult, error) {
	if encsPerGuess < 4 {
		return KeyRecoveryResult{}, fmt.Errorf("attack: need at least 4 encryptions per guess, got %d", encsPerGuess)
	}
	victim := &aesVictimProc{eng: e, core: victimCore, aes: trace.NewAES(key)}
	monitored := trace.T0Lines()[0]
	a, err := NewAttacker(e, attackers, monitored, 32)
	if err != nil {
		return KeyRecoveryResult{}, err
	}

	res := KeyRecoveryResult{TargetBytes: []int{0, 4, 8, 12}}
	// A tiny deterministic PRNG for the random plaintext bytes.
	rngState := uint64(0x9E3779B97F4A7C15)
	randByte := func() byte {
		rngState ^= rngState << 13
		rngState ^= rngState >> 7
		rngState ^= rngState << 17
		return byte(rngState)
	}

	for _, b := range res.TargetBytes {
		res.TrueNibbles = append(res.TrueNibbles, int(key[b]>>4))
		touches := make([]int, 16)
		for guess := 0; guess < 16; guess++ {
			for enc := 0; enc < encsPerGuess; enc++ {
				// Conflict step: evict the monitored line's directory entry
				// (and, on a vulnerable directory, the victim's copy).
				a.Prime()
				// The victim encrypts a chosen plaintext: byte b selects the
				// guessed T0 line in round one, everything else is random.
				var pt [16]byte
				for i := range pt {
					pt[i] = randByte()
				}
				pt[b] = byte(guess << 4)
				victim.encrypt(pt)
				res.Encryptions++
				// Analyze step: a fast reload means some core touched the
				// line since the eviction.
				if a.Reload(monitored) {
					touches[guess]++
				}
				// Drop the attacker's own reload copy for the next round.
				e.FlushCore(a.Cores[0])
			}
		}
		// The correct guess is touched every single time; any tie at the
		// maximum means the channel carried no information.
		best, bestCount, ties := -1, -1, 0
		for g, c := range touches {
			if c > bestCount {
				best, bestCount, ties = g, c, 1
			} else if c == bestCount {
				ties++
			}
		}
		if ties > 1 || bestCount < encsPerGuess {
			best = -1 // ambiguous: no leak
		}
		res.RecoveredNibbles = append(res.RecoveredNibbles, best)
	}
	return res, nil
}
