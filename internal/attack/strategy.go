package attack

import (
	"secdir/internal/addr"
	"secdir/internal/coherence"
)

// This file is the package's single trial loop and the per-attack drivers
// behind it. Every attack entry point (PrimeProbe, EvictReload, EvictTime,
// FloodReload, RecoverPattern) is a thin result-shaping wrapper around
// ForEachRound driving one of the five strategy types below, and the same
// five types implement leakage.Strategy, so the statistical leakage lab runs
// exactly the attack code the unit tests exercise.

// Params configures one mounted attack instance against one engine: who
// attacks whom, over which target line, with how many conflicting lines.
type Params struct {
	// Victim is the core under attack.
	Victim int
	// Attackers are the cores mounting the attack (round-robin owners of the
	// eviction set).
	Attackers []int
	// Target is the monitored line (typically a line of the AES T0 table).
	Target addr.Line
	// EvictionLines sizes the conflict set: the targeted eviction-set size
	// for the set-conflict attacks, the flood size for FloodReload. Zero
	// selects the strategy's default.
	EvictionLines int
}

// lines returns the configured conflict-set size, or def when unset.
func (p Params) lines(def int) int {
	if p.EvictionLines > 0 {
		return p.EvictionLines
	}
	return def
}

// Driver executes one attack round at a time against a prepared engine. A
// round's scalar observable is what the attacker measures on hardware
// (probe misses, reload hit, victim cycles, ...); victim-active and
// victim-idle observables form the two distributions the leakage lab tests
// against each other.
type Driver interface {
	// Round runs attack round i; active selects whether the victim acts
	// during the round's Wait step. It returns the attacker's observable.
	Round(i int, active bool) float64
	// VictimEvictions reports how many Conflict steps so far displaced the
	// victim's private copy — ground truth the simulator exposes but a real
	// attacker cannot see. Strategies without the notion return 0.
	VictimEvictions() int
}

// Schedule decides victim activity per round. A nil Schedule alternates
// strictly, victim active on even rounds — the deterministic pattern the
// classic entry points use; the leakage trial runner passes a seeded
// balanced-random schedule instead (TVLA-style random interleaving).
type Schedule func(i int) bool

// ForEachRound is the one rounds loop every attack shares: it asks the
// schedule whether the victim acts, runs the round, and hands the observable
// to sink (which may be nil). Keeping the loop in one place is what lets the
// leakage lab wrap any attack without the per-attack copies the entry points
// used to carry.
func ForEachRound(d Driver, rounds int, sched Schedule, sink func(i int, active bool, obs float64)) {
	for i := 0; i < rounds; i++ {
		active := i%2 == 0
		if sched != nil {
			active = sched(i)
		}
		obs := d.Round(i, active)
		if sink != nil {
			sink(i, active, obs)
		}
	}
}

// b2f converts an attacker's binary observation to its scalar observable.
func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// defaultEvictionLines comfortably exceeds the W_ED+W_TD = 23 entry bound of
// §2.3, so a targeted conflict set reliably fills the victim's directory set.
const defaultEvictionLines = 32

// PrimeProbeStrategy mounts the prime+probe attack of §2.2: the observable is
// the attacker's probe-miss count per round. Implements leakage.Strategy.
type PrimeProbeStrategy struct{}

// Name returns the strategy identifier.
func (PrimeProbeStrategy) Name() string { return "primeprobe" }

// DefaultLines returns the default conflict-set size.
func (PrimeProbeStrategy) DefaultLines() int { return defaultEvictionLines }

// NewDriver prepares the attack against e.
func (PrimeProbeStrategy) NewDriver(e *coherence.Engine, p Params) (Driver, error) {
	a, err := NewAttacker(e, p.Attackers, p.Target, p.lines(defaultEvictionLines))
	if err != nil {
		return nil, err
	}
	return &primeProbeDriver{e: e, a: a, p: p}, nil
}

// primeProbeDriver is PrimeProbeStrategy's per-engine state.
type primeProbeDriver struct {
	e *coherence.Engine
	a *Attacker
	p Params
}

// Round primes, lets the victim act, and probes.
func (d *primeProbeDriver) Round(_ int, active bool) float64 {
	d.a.Prime()
	if active {
		d.e.Access(d.p.Victim, d.p.Target, false)
	}
	return float64(d.a.Probe())
}

// VictimEvictions always reports 0: prime+probe observes the attacker's own
// set, not the victim's copy.
func (d *primeProbeDriver) VictimEvictions() int { return 0 }

// EvictReloadStrategy mounts the evict+reload attack of §2.2 against a
// read-shared target: the observable is 1 when the reload hit somewhere in
// the hierarchy (the attacker's "victim accessed" verdict). Implements
// leakage.Strategy.
type EvictReloadStrategy struct{}

// Name returns the strategy identifier.
func (EvictReloadStrategy) Name() string { return "evictreload" }

// DefaultLines returns the default conflict-set size.
func (EvictReloadStrategy) DefaultLines() int { return defaultEvictionLines }

// NewDriver prepares the attack against e.
func (EvictReloadStrategy) NewDriver(e *coherence.Engine, p Params) (Driver, error) {
	a, err := NewAttacker(e, p.Attackers, p.Target, p.lines(defaultEvictionLines))
	if err != nil {
		return nil, err
	}
	return &evictReloadDriver{e: e, a: a, p: p}, nil
}

// evictReloadDriver is EvictReloadStrategy's per-engine state.
type evictReloadDriver struct {
	e         *coherence.Engine
	a         *Attacker
	p         Params
	evictions int
}

// Round runs one Conflict-Wait-Analyze cycle.
func (d *evictReloadDriver) Round(_ int, active bool) float64 {
	// The victim holds the target (e.g. a T-table line it used before).
	d.e.Access(d.p.Victim, d.p.Target, false)
	// Conflict step: evict the victim's directory entry (and with it, on the
	// baseline, the victim's private copy).
	d.a.Prime()
	if !d.e.L2Contains(d.p.Victim, d.p.Target) {
		d.evictions++
	}
	// Wait step: the victim accesses the target on active rounds.
	if active {
		d.e.Access(d.p.Victim, d.p.Target, false)
	}
	// Analyze step: reload. The line being anywhere in the hierarchy is the
	// attacker's "victim accessed" verdict — but only if the eviction
	// actually worked; otherwise the reload always hits and carries no
	// information, so the attacker must guess.
	hit := d.a.Reload(d.p.Target)
	// Reset: purge the attacker's own copy of the target so the next round
	// starts clean, and drain the reload's directory state.
	d.e.FlushCore(d.a.Cores[0])
	return b2f(hit)
}

// VictimEvictions reports rounds whose Conflict step displaced the victim's
// private copy.
func (d *evictReloadDriver) VictimEvictions() int { return d.evictions }
