// Package attack implements the cross-core conflict-based directory attacks
// of §2.3/§9: directory eviction-set construction, prime+probe and
// evict+reload drivers, and ground-truth inclusion-victim detection. It is
// used to demonstrate that the baseline directory leaks and SecDir does not.
package attack

import (
	"fmt"

	"secdir/internal/addr"
	"secdir/internal/coherence"
	"secdir/internal/metrics"
)

// BuildEvictionSet returns count distinct lines, different from target, that
// map to the same directory slice and directory set as target. The attacker
// is assumed to know the slice hash (it has been reverse-engineered on real
// parts) and the set indexing.
//
// The returned lines additionally spread over the low address bits so they
// fall into several L2 sets: the attacker can cache many of them per core
// without self-conflicts.
func BuildEvictionSet(m addr.Mapper, target addr.Line, count int) ([]addr.Line, error) {
	slice := m.Slice(target)
	set := m.Set(target)
	setBits := 0
	for 1<<setBits < m.SetsPerSlice() {
		setBits++
	}
	out := make([]addr.Line, 0, count)
	// Directory set index is a pure function of the line address; walk
	// candidate lines that share it and filter by slice.
	for hi := uint64(0); hi < 1<<20 && len(out) < count; hi++ {
		for lo := uint64(0); lo < 8 && len(out) < count; lo++ {
			cand := addr.Line(hi<<(3+setBits) | uint64(set)<<3 | lo)
			if cand == target || m.Set(cand) != set || m.Slice(cand) != slice {
				continue
			}
			out = append(out, cand)
		}
	}
	if len(out) < count {
		return nil, fmt.Errorf("attack: found only %d/%d conflicting lines", len(out), count)
	}
	return out, nil
}

// Attacker mounts directory-conflict attacks from a set of cores against a
// victim core, driving the coherence engine directly (the attacker's
// instruction stream is just loads to its eviction set).
type Attacker struct {
	Engine *coherence.Engine
	Cores  []int // attacker cores (the victim runs elsewhere)
	EvSet  []addr.Line

	// probeLat and reloadLat observe the latency of every probe and reload
	// access when the engine has a metrics registry attached — the timing
	// distributions an attacker would measure on hardware. Nil otherwise.
	probeLat  *metrics.Histogram
	reloadLat *metrics.Histogram
}

// NewAttacker builds an eviction set of evictionLines lines conflicting with
// target and assigns it round-robin to the attacker cores. If the engine has
// a metrics registry attached, probe and reload latencies are recorded into
// the "attack/probe_latency" and "attack/reload_latency" histograms.
func NewAttacker(e *coherence.Engine, cores []int, target addr.Line, evictionLines int) (*Attacker, error) {
	ev, err := BuildEvictionSet(e.Mapper(), target, evictionLines)
	if err != nil {
		return nil, err
	}
	a := &Attacker{Engine: e, Cores: cores, EvSet: ev}
	if r := e.Metrics(); r != nil {
		a.probeLat = r.Histogram("attack/probe_latency")
		a.reloadLat = r.Histogram("attack/reload_latency")
	}
	return a, nil
}

// owner returns the attacker core responsible for eviction-set line i.
func (a *Attacker) owner(i int) int { return a.Cores[i%len(a.Cores)] }

// Prime accesses the whole eviction set from the attacker cores, filling the
// target directory set in the target slice (the Conflict step of §2.2).
// Two passes defeat the TD's LRU the way repeated priming does on hardware.
func (a *Attacker) Prime() {
	for pass := 0; pass < 2; pass++ {
		for i, l := range a.EvSet {
			a.Engine.Access(a.owner(i), l, false)
		}
	}
}

// Probe re-accesses the eviction set and returns how many lines had been
// evicted from the owning attacker core's private caches — the prime+probe
// signal. On hardware this is measured with load timing; the simulator
// classifies levels directly, which is equivalent and noise-free.
func (a *Attacker) Probe() int {
	misses := 0
	for i, l := range a.EvSet {
		res := a.Engine.Access(a.owner(i), l, false)
		a.probeLat.Observe(uint64(res.Latency))
		if res.Level != coherence.LevelL1 && res.Level != coherence.LevelL2 {
			misses++
		}
	}
	return misses
}

// Reload accesses the target from the first attacker core and reports
// whether the line was still somewhere in the cache hierarchy (directory hit)
// — the Analyze step of evict+reload, where a fast reload means the victim
// touched the line during the Wait interval.
func (a *Attacker) Reload(target addr.Line) bool {
	res := a.Engine.Access(a.Cores[0], target, false)
	a.reloadLat.Observe(uint64(res.Latency))
	return res.Level != coherence.LevelMemory
}

// PrimeProbeResult summarises a prime+probe experiment.
type PrimeProbeResult struct {
	Rounds int
	// ProbeMissesActive / ProbeMissesIdle are total probe misses across
	// rounds with and without victim activity between prime and probe.
	ProbeMissesActive int
	ProbeMissesIdle   int
	// VictimEvictions counts rounds in which priming evicted the target
	// from the victim's private caches (ground-truth inclusion victims).
	VictimEvictions int
}

// Signal is the per-round probe-miss difference between active and idle
// rounds: > 0 means the attacker can distinguish victim activity.
func (r PrimeProbeResult) Signal() float64 {
	if r.Rounds == 0 {
		return 0
	}
	return float64(r.ProbeMissesActive-r.ProbeMissesIdle) / float64(r.Rounds)
}

// PrimeProbe runs rounds of the prime+probe attack: the victim core
// accesses the target on "active" rounds and stays idle otherwise; the
// attacker primes, waits, and probes.
func PrimeProbe(e *coherence.Engine, victim int, attackers []int, target addr.Line, rounds, evictionLines int) (PrimeProbeResult, error) {
	d, err := PrimeProbeStrategy{}.NewDriver(e, Params{
		Victim: victim, Attackers: attackers, Target: target, EvictionLines: evictionLines,
	})
	if err != nil {
		return PrimeProbeResult{}, err
	}
	var res PrimeProbeResult
	res.Rounds = rounds
	ForEachRound(d, rounds, nil, func(_ int, active bool, obs float64) {
		if active {
			res.ProbeMissesActive += int(obs)
		} else {
			res.ProbeMissesIdle += int(obs)
		}
	})
	return res, nil
}

// EvictReloadResult summarises an evict+reload experiment.
type EvictReloadResult struct {
	Rounds int
	// Correct counts rounds where the reload classification matched the
	// victim's actual behaviour.
	Correct int
	// VictimEvictions counts rounds where the Conflict step succeeded in
	// evicting the target from the victim's private caches.
	VictimEvictions int
}

// Accuracy is the attacker's classification accuracy; 0.5 is chance.
func (r EvictReloadResult) Accuracy() float64 {
	if r.Rounds == 0 {
		return 0
	}
	return float64(r.Correct) / float64(r.Rounds)
}

// EvictReload runs rounds of the evict+reload attack against a target line
// shared (read-only) between attacker and victim. Each round: the victim
// touches the target so it is live in its private cache; the attacker evicts
// via directory conflicts; the victim re-accesses on alternate rounds; the
// attacker reloads and classifies.
func EvictReload(e *coherence.Engine, victim int, attackers []int, target addr.Line, rounds, evictionLines int) (EvictReloadResult, error) {
	d, err := EvictReloadStrategy{}.NewDriver(e, Params{
		Victim: victim, Attackers: attackers, Target: target, EvictionLines: evictionLines,
	})
	if err != nil {
		return EvictReloadResult{}, err
	}
	var res EvictReloadResult
	res.Rounds = rounds
	ForEachRound(d, rounds, nil, func(_ int, active bool, obs float64) {
		if (obs >= 0.5) == active {
			res.Correct++
		}
	})
	res.VictimEvictions = d.VictimEvictions()
	return res, nil
}

// MinimalEvictionSet measures, by construction rather than analysis, how
// many conflicting lines the attacker needs before priming reliably evicts
// the victim's copy — §2.3's arithmetic says a directory set holds at most
// W_ED + W_TD = 23 entries, so eviction sets just above that size must
// succeed and sets well below it must fail. Returns the smallest tested size
// that evicted the victim in every trial round.
func MinimalEvictionSet(mk func() (*coherence.Engine, error), victim int, attackers []int, target addr.Line, sizes []int, rounds int) (map[int]float64, error) {
	out := make(map[int]float64, len(sizes))
	for _, size := range sizes {
		e, err := mk()
		if err != nil {
			return nil, err
		}
		a, err := NewAttacker(e, attackers, target, size)
		if err != nil {
			return nil, err
		}
		evicted := 0
		for r := 0; r < rounds; r++ {
			e.Access(victim, target, false)
			a.Prime()
			if !e.L2Contains(victim, target) {
				evicted++
			}
		}
		out[size] = float64(evicted) / float64(rounds)
	}
	return out, nil
}
