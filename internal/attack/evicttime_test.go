package attack

import (
	"testing"

	"secdir/internal/config"
)

// TestEvictTime checks the §2.2 evict+time variant: on the baseline, an
// evicted target makes the victim's target-touching operation measurably
// slower; on SecDir the target survives priming and the two operation
// variants — which perform the same number of loads, the idle one hitting a
// warm dummy line — become timing-indistinguishable.
func TestEvictTime(t *testing.T) {
	run := func(cfg config.Config) float64 {
		e := newEngine(t, cfg)
		res, err := EvictTime(e, victimCore, attackerCores(8), targetLine, 40, 32)
		if err != nil {
			t.Fatal(err)
		}
		return res.Signal()
	}
	base := run(config.SkylakeX(8))
	sec := run(config.SecDirConfig(8))

	// Baseline: the target-touching operation re-fetches the evicted line
	// (tens of cycles even after the MLP division).
	if base < 10 {
		t.Errorf("baseline evict+time signal = %.1f cycles, want a clear refetch delta", base)
	}
	// SecDir: the target stays cached; both operation variants hit L1 and
	// the signal collapses to (at most) noise below one L1 round trip.
	l1 := float64(config.DefaultLatencies().L1RT)
	if sec > l1+1 {
		t.Errorf("secdir evict+time signal = %.1f cycles, want ≈0", sec)
	}
	if sec >= base/2 {
		t.Errorf("secdir signal %.1f not clearly below baseline %.1f", sec, base)
	}
}
