package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// backends runs a subtest against both backend implementations.
func backends(t *testing.T, f func(t *testing.T, open func(t *testing.T) Backend)) {
	t.Helper()
	t.Run("mem", func(t *testing.T) {
		f(t, func(t *testing.T) Backend { return NewMem() })
	})
	t.Run("disk", func(t *testing.T) {
		dir := t.TempDir()
		f(t, func(t *testing.T) Backend {
			b, err := OpenDisk(dir)
			if err != nil {
				t.Fatal(err)
			}
			return b
		})
	})
}

// payload is a stand-in result body.
type payload struct {
	Name  string    `json:"name"`
	Score float64   `json:"score"`
	Rows  []float64 `json:"rows"`
}

// TestStoreRoundTrip: append records with artifacts, read them back, verify
// the chain, and confirm content addressing deduplicates identical payloads.
func TestStoreRoundTrip(t *testing.T) {
	backends(t, func(t *testing.T, open func(t *testing.T) Backend) {
		s, err := Open(open(t), Options{})
		if err != nil {
			t.Fatal(err)
		}
		var digests []string
		for i := 0; i < 5; i++ {
			dig, err := s.PutArtifact(payload{Name: fmt.Sprint("run-", i%3), Score: float64(i % 3), Rows: []float64{1, 2.5}})
			if err != nil {
				t.Fatal(err)
			}
			digests = append(digests, dig)
			rec, err := s.Append(RunRecord{Kind: KindJob, JobID: fmt.Sprint("job-", i+1), State: "done", Seed: int64(i), ResultDigest: dig})
			if err != nil {
				t.Fatal(err)
			}
			if rec.Index != int64(i) {
				t.Fatalf("record %d got index %d", i, rec.Index)
			}
			if rec.Hash == "" || (i > 0 && rec.PrevHash == "") {
				t.Fatalf("record %d not sealed: %+v", i, rec)
			}
			if rec.Build == (BuildInfo{}) {
				t.Fatalf("record %d has no build info", i)
			}
		}
		// i%3 payloads: artifacts 3 and 4 duplicate 0 and 1.
		if digests[3] != digests[0] || digests[4] != digests[1] {
			t.Fatalf("identical payloads got different digests: %v", digests)
		}
		recs, err := s.Records()
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 5 {
			t.Fatalf("got %d records, want 5", len(recs))
		}
		for i := 1; i < len(recs); i++ {
			if recs[i].PrevHash != recs[i-1].Hash {
				t.Fatalf("record %d prev_hash does not chain", i)
			}
		}
		arts, err := s.Backend().ListArtifacts()
		if err != nil {
			t.Fatal(err)
		}
		if len(arts) != 3 {
			t.Fatalf("got %d artifacts, want 3 (content-addressed dedup): %v", len(arts), arts)
		}
		data, err := s.Artifact(digests[0])
		if err != nil {
			t.Fatal(err)
		}
		var p payload
		if err := json.Unmarshal(data, &p); err != nil || p.Name != "run-0" {
			t.Fatalf("artifact round-trip: %v %+v", err, p)
		}
		rep, err := VerifyChain(s.Backend())
		if err != nil {
			t.Fatal(err)
		}
		if rep.Records != 5 || rep.ArtifactsChecked != 3 || rep.HeadIndex != 4 {
			t.Fatalf("verify report %+v", rep)
		}
		st := s.Stats()
		if st.Records != 5 || st.Artifacts != 3 || st.HeadIndex != 4 || st.HeadHash != recs[4].Hash {
			t.Fatalf("stats %+v", st)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Append(RunRecord{Kind: KindJob}); err == nil {
			t.Fatal("append on a closed store should fail")
		}
	})
}

// TestStoreReopenResumesChain: a reopened disk store appends after the
// persisted head and the chain still verifies end to end.
func TestStoreReopenResumesChain(t *testing.T) {
	dir := t.TempDir()
	openStore := func() *Store {
		b, err := OpenDisk(dir)
		if err != nil {
			t.Fatal(err)
		}
		s, err := Open(b, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s := openStore()
	var head string
	for i := 0; i < 3; i++ {
		rec, err := s.Append(RunRecord{Kind: KindJob, JobID: fmt.Sprint("job-", i+1), State: "done"})
		if err != nil {
			t.Fatal(err)
		}
		head = rec.Hash
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openStore()
	if st := s2.Stats(); st.HeadIndex != 2 || st.HeadHash != head {
		t.Fatalf("reopened head %+v, want index 2 hash %.12s", st, head)
	}
	rec, err := s2.Append(RunRecord{Kind: KindJob, JobID: "job-4", State: "done"})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Index != 3 || rec.PrevHash != head {
		t.Fatalf("append after reopen got index %d prev %.12s, want 3 after %.12s", rec.Index, rec.PrevHash, head)
	}
	if _, err := VerifyChain(s2.Backend()); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCanonicalJSONStability: the digest of a payload depends only on its
// value, and golden pin/verify round-trips through raw artifacts.
func TestCanonicalJSONStability(t *testing.T) {
	a, err := CanonicalJSON(payload{Name: "x", Score: 1.25, Rows: []float64{3}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := CanonicalJSON(payload{Name: "x", Score: 1.25, Rows: []float64{3}})
	if err != nil {
		t.Fatal(err)
	}
	if Digest(a) != Digest(b) {
		t.Fatal("identical values produced different digests")
	}
	if len(Digest(a)) != 64 {
		t.Fatalf("digest %q is not hex sha-256", Digest(a))
	}
}

// TestGoldenPinAndVerify: pinning a file records its digest; VerifyGolden
// passes on the same content and names the divergence after an edit.
func TestGoldenPinAndVerify(t *testing.T) {
	dir := t.TempDir()
	golden := filepath.Join(dir, "golden.csv")
	if err := os.WriteFile(golden, []byte("a,b\n1,2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := OpenDisk(filepath.Join(dir, "store"))
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	data, _ := os.ReadFile(golden)
	dig, err := s.PutRawArtifact(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(RunRecord{Kind: KindGolden, Name: "golden.csv", ResultDigest: dig}); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyGolden(b, "golden.csv", golden); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyGolden(b, "other.csv", golden); err == nil {
		t.Fatal("verifying an unpinned name should fail")
	}
	if err := os.WriteFile(golden, []byte("a,b\n1,3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = VerifyGolden(b, "golden.csv", golden)
	if err == nil || !strings.Contains(err.Error(), "diverged") {
		t.Fatalf("edited golden should fail verification, got %v", err)
	}
}

// TestBuildInfoPopulated: the process build info carries at least the go
// version — the field the /versionz endpoint and every record share.
func TestBuildInfoPopulated(t *testing.T) {
	bi := Build()
	if bi.GoVersion == "" {
		t.Fatal("build info has no go version")
	}
	if bi != Build() {
		t.Fatal("build info should be stable")
	}
}

// TestAppendTimestamps: a caller-set Time survives, an unset one is stamped.
func TestAppendTimestamps(t *testing.T) {
	s, err := Open(NewMem(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	at := time.Date(2026, 8, 9, 1, 2, 3, 0, time.UTC)
	rec, err := s.Append(RunRecord{Kind: KindJob, Time: at})
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Time.Equal(at) {
		t.Fatalf("caller time overwritten: %v", rec.Time)
	}
	rec2, err := s.Append(RunRecord{Kind: KindJob})
	if err != nil {
		t.Fatal(err)
	}
	if rec2.Time.IsZero() {
		t.Fatal("unset time not stamped")
	}
}
