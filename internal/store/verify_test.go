package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// fillStore appends n job records (each with a distinct artifact) and
// flushes.
func fillStore(t *testing.T, s *Store, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		dig, err := s.PutArtifact(payload{Name: fmt.Sprint("r", i), Score: float64(i)})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Append(RunRecord{Kind: KindJob, JobID: fmt.Sprint("job-", i+1), State: "done", ResultDigest: dig}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
}

// diskStore opens a store over a fresh disk backend in dir.
func diskStore(t *testing.T, dir string) *Store {
	t.Helper()
	b, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestVerifyPinpointsCorruptedRecord: flipping one byte of one ledger line
// makes VerifyChain fail and name that record.
func TestVerifyPinpointsCorruptedRecord(t *testing.T) {
	dir := t.TempDir()
	s := diskStore(t, dir)
	fillStore(t, s, 6)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, ledgerName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSuffix(data, []byte("\n")), []byte("\n"))
	if len(lines) != 6 {
		t.Fatalf("got %d ledger lines, want 6", len(lines))
	}
	// Flip one byte inside record 3's job_id value so the line still parses
	// but its hash no longer matches.
	target := bytes.Index(lines[3], []byte("job-4"))
	if target < 0 {
		t.Fatalf("record 3 does not mention its job id: %s", lines[3])
	}
	lines[3][target+4] = '9'
	corrupted := append(bytes.Join(lines, []byte("\n")), '\n')
	if err := os.WriteFile(path, corrupted, 0o644); err != nil {
		t.Fatal(err)
	}

	b, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	_, err = VerifyChain(b)
	if err == nil {
		t.Fatal("corrupted ledger verified clean")
	}
	if !strings.Contains(err.Error(), "record 3") {
		t.Fatalf("verification error does not name record 3: %v", err)
	}
}

// TestVerifyPinpointsTruncatedArtifact: truncating a persisted artifact
// makes VerifyChain fail naming the record that references it.
func TestVerifyPinpointsTruncatedArtifact(t *testing.T) {
	dir := t.TempDir()
	s := diskStore(t, dir)
	fillStore(t, s, 4)
	recs, err := s.Records()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	victim := recs[2].ResultDigest
	path := filepath.Join(dir, "artifacts", victim[:2], victim)
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-1); err != nil {
		t.Fatal(err)
	}

	b, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	_, err = VerifyChain(b)
	if err == nil {
		t.Fatal("truncated artifact verified clean")
	}
	if !strings.Contains(err.Error(), "record 2") || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("verification error does not pinpoint the truncated artifact: %v", err)
	}

	// A deleted artifact is caught too, as a missing-artifact failure.
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if _, err = VerifyChain(b); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("missing artifact should fail verification: %v", err)
	}
}

// TestVerifyDetectsReorderAndDrop: removing a record from the middle breaks
// the index/linkage checks.
func TestVerifyDetectsReorderAndDrop(t *testing.T) {
	dir := t.TempDir()
	s := diskStore(t, dir)
	fillStore(t, s, 5)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, ledgerName)
	data, _ := os.ReadFile(path)
	lines := bytes.SplitAfter(data, []byte("\n"))
	// Drop record 2 (SplitAfter leaves a trailing empty slice).
	dropped := bytes.Join(append(lines[:2:2], lines[3:]...), nil)
	if err := os.WriteFile(path, dropped, 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if _, err = VerifyChain(b); err == nil {
		t.Fatal("ledger with a dropped record verified clean")
	}
}

// TestDoubleAppendRace: concurrent appends and artifact puts from many
// goroutines must serialise into one valid chain with no lost records —
// run under -race this also proves the locking discipline.
func TestDoubleAppendRace(t *testing.T) {
	backends(t, func(t *testing.T, open func(t *testing.T) Backend) {
		s, err := Open(open(t), Options{FlushEvery: 8})
		if err != nil {
			t.Fatal(err)
		}
		const goroutines, per = 8, 25
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < per; i++ {
					dig, err := s.PutArtifact(payload{Name: fmt.Sprint(g, "/", i)})
					if err != nil {
						t.Error(err)
						return
					}
					if _, err := s.Append(RunRecord{Kind: KindJob, JobID: fmt.Sprintf("job-%d-%d", g, i), State: "done", ResultDigest: dig}); err != nil {
						t.Error(err)
						return
					}
				}
			}(g)
		}
		wg.Wait()
		recs, err := s.Records()
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != goroutines*per {
			t.Fatalf("got %d records, want %d", len(recs), goroutines*per)
		}
		seen := map[string]bool{}
		for _, r := range recs {
			if seen[r.JobID] {
				t.Fatalf("job %s recorded twice", r.JobID)
			}
			seen[r.JobID] = true
		}
		if _, err := VerifyChain(s.Backend()); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestTornTailRepair: a crash mid-append leaves a partial final line; the
// next open truncates it away, the chain verifies, and appends continue
// from the last complete record.
func TestTornTailRepair(t *testing.T) {
	dir := t.TempDir()
	s := diskStore(t, dir)
	fillStore(t, s, 3)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, ledgerName)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"index":3,"kind":"job","job_`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := diskStore(t, dir)
	defer s2.Close()
	if st := s2.Stats(); st.Records != 3 || st.HeadIndex != 2 {
		t.Fatalf("torn tail not repaired: %+v", st)
	}
	if _, err := s2.Append(RunRecord{Kind: KindJob, JobID: "job-4", State: "done"}); err != nil {
		t.Fatal(err)
	}
	if err := s2.Flush(); err != nil {
		t.Fatal(err)
	}
	if rep, err := VerifyChain(s2.Backend()); err != nil || rep.Records != 4 {
		t.Fatalf("repaired chain does not verify: %+v %v", rep, err)
	}
}
