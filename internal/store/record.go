package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"runtime/debug"
	"sync"
	"time"
)

// Record kinds the secdir stack writes. The ledger accepts any kind string;
// these are the vocabulary the server, fleet, and CLI share.
const (
	// KindJob is a job lifecycle record: one at submission (state "queued")
	// and one at the terminal state ("done", "failed", "canceled",
	// "requeued").
	KindJob = "job"
	// KindFleetMerge records a fleet job's per-shard merge provenance: its
	// artifact lists which worker produced which trial range of which cell.
	KindFleetMerge = "fleet-merge"
	// KindGolden pins an external file (a committed golden CSV) by digest so
	// later verify runs can prove the file unchanged.
	KindGolden = "golden"
)

// BuildInfo identifies the binary that wrote a record, from
// debug.ReadBuildInfo: enough to tie a ledger entry (and therefore a golden
// number) to the exact code that produced it.
type BuildInfo struct {
	// Path is the main module path.
	Path string `json:"path,omitempty"`
	// Version is the main module version ("(devel)" for source builds).
	Version string `json:"version,omitempty"`
	// VCSRevision and VCSTime are the checkout the binary was built from,
	// when the build embedded them.
	VCSRevision string `json:"vcs_revision,omitempty"`
	// VCSTime is the commit timestamp of VCSRevision.
	VCSTime string `json:"vcs_time,omitempty"`
	// VCSModified reports a dirty working tree at build time.
	VCSModified bool `json:"vcs_modified,omitempty"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version,omitempty"`
}

// buildOnce caches the process's build info: it cannot change at runtime.
var buildOnce = sync.OnceValue(func() BuildInfo {
	bi := BuildInfo{}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return bi
	}
	bi.Path = info.Main.Path
	bi.Version = info.Main.Version
	bi.GoVersion = info.GoVersion
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			bi.VCSRevision = s.Value
		case "vcs.time":
			bi.VCSTime = s.Value
		case "vcs.modified":
			bi.VCSModified = s.Value == "true"
		}
	}
	return bi
})

// Build returns the running binary's build info (module path and version,
// VCS revision, go version) — the same struct every appended record carries.
func Build() BuildInfo { return buildOnce() }

// RunRecord is one entry of the append-only run ledger. The store fills
// Index, PrevHash, Hash, and (when zero) Time and Build at Append; the
// remaining fields describe the run and are the writer's to set. Hash covers
// every field but itself, and PrevHash chains it to the predecessor, so no
// historical record can change without breaking every later hash.
type RunRecord struct {
	// Index is the record's position in the chain, from 0.
	Index int64 `json:"index"`
	// Time is when the record was appended (UTC).
	Time time.Time `json:"time"`
	// Kind classifies the record (KindJob, KindFleetMerge, KindGolden, …).
	Kind string `json:"kind"`

	// JobID names the server job the record describes, for job records.
	JobID string `json:"job_id,omitempty"`
	// State is the job lifecycle state at write time ("queued", "done",
	// "failed", "canceled", "requeued").
	State string `json:"state,omitempty"`
	// Name labels non-job records: the pinned file path of a golden record,
	// the sweep label of a fleet merge.
	Name string `json:"name,omitempty"`
	// Spec is the canonical JSON of the job spec that produced the result.
	Spec json.RawMessage `json:"spec,omitempty"`
	// Seed is the run's master seed.
	Seed int64 `json:"seed,omitempty"`
	// EngineShards and EngineWindow are the engine options the run executed
	// with (0 = serial engine / no windowing).
	EngineShards int `json:"engine_shards,omitempty"`
	// EngineWindow is the conflict-window size used (0 = none).
	EngineWindow int `json:"engine_window,omitempty"`
	// Strategy names the attack strategies of a leakage run.
	Strategy string `json:"strategy,omitempty"`
	// Submitted, Started and Finished are the job's lifecycle timestamps,
	// when known.
	Submitted time.Time `json:"submitted,omitzero"`
	// Started is when a worker picked the job up.
	Started time.Time `json:"started,omitzero"`
	// Finished is when the job reached its terminal state.
	Finished time.Time `json:"finished,omitzero"`
	// Err carries the failure message of failed/canceled records.
	Err string `json:"error,omitempty"`
	// ResultDigest is the content address of the record's result artifact
	// ("" for records without a payload).
	ResultDigest string `json:"result_digest,omitempty"`
	// Build identifies the binary that wrote the record.
	Build BuildInfo `json:"build"`

	// PrevHash is the Hash of the preceding record ("" on the genesis
	// record).
	PrevHash string `json:"prev_hash"`
	// Hash is the SHA-256 of this record's canonical JSON with Hash itself
	// blanked — the value the next record chains on.
	Hash string `json:"hash"`
}

// CanonicalJSON is the store's one serialisation: encoding/json compact
// output. Struct fields encode in declaration order and map keys sort, so
// identical values produce identical bytes — the property content
// addressing and chain hashing rely on.
func CanonicalJSON(v any) ([]byte, error) { return json.Marshal(v) }

// Digest returns the hex SHA-256 content address of data.
func Digest(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// HashRecord computes the record's chain hash: the SHA-256 of its canonical
// JSON with the Hash field blanked. Index, PrevHash and every payload field
// are covered.
func HashRecord(rec RunRecord) (string, error) {
	rec.Hash = ""
	data, err := CanonicalJSON(rec)
	if err != nil {
		return "", err
	}
	return Digest(data), nil
}

// sealRecord fills rec.Hash and returns the record's ledger line.
func sealRecord(rec *RunRecord) ([]byte, error) {
	h, err := HashRecord(*rec)
	if err != nil {
		return nil, err
	}
	rec.Hash = h
	return CanonicalJSON(*rec)
}

// DecodeRecord parses one ledger line strictly: unknown fields are errors,
// because a record that round-trips lossily could not be re-hashed.
func DecodeRecord(line []byte) (RunRecord, error) {
	var rec RunRecord
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rec); err != nil {
		return rec, err
	}
	return rec, nil
}

// String renders a compact one-line summary for listings.
func (r RunRecord) String() string {
	id := r.JobID
	if id == "" {
		id = r.Name
	}
	dig := r.ResultDigest
	if len(dig) > 12 {
		dig = dig[:12]
	}
	return fmt.Sprintf("%4d  %s  %-11s %-22s %-8s %s",
		r.Index, r.Time.Format(time.RFC3339), r.Kind, id, r.State, dig)
}
