package store

import (
	"fmt"
	"sort"
	"sync"
)

// Backend is the storage contract the store builds on: write-once
// content-addressed artifact Puts, and an append-only ledger of opaque
// lines. Implementations must be safe for concurrent use and must make
// AppendLedger durable before returning (the batcher calls it once per
// flush, so its cost amortises over the batch).
type Backend interface {
	// PutArtifact stores data under digest. Artifacts are write-once: a Put
	// of an existing digest is a no-op (content addressing guarantees the
	// bytes match; implementations need not re-verify).
	PutArtifact(digest string, data []byte) error
	// GetArtifact returns the stored bytes, or an error naming the digest
	// when absent.
	GetArtifact(digest string) ([]byte, error)
	// ListArtifacts returns every stored digest, sorted.
	ListArtifacts() ([]string, error)
	// AppendLedger appends the encoded record lines, in order, durably.
	AppendLedger(lines [][]byte) error
	// ReadLedger returns every appended line, in order.
	ReadLedger() ([][]byte, error)
	// Close releases the backend's resources.
	Close() error
}

// MemBackend is the in-memory Backend: maps and slices under a mutex. It is
// the test and ephemeral-server backend — nothing survives the process.
type MemBackend struct {
	mu        sync.Mutex
	artifacts map[string][]byte
	ledger    [][]byte
}

// NewMem returns an empty in-memory backend.
func NewMem() *MemBackend {
	return &MemBackend{artifacts: map[string][]byte{}}
}

// PutArtifact implements Backend.
func (m *MemBackend) PutArtifact(digest string, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.artifacts[digest]; !ok {
		m.artifacts[digest] = append([]byte(nil), data...)
	}
	return nil
}

// GetArtifact implements Backend.
func (m *MemBackend) GetArtifact(digest string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.artifacts[digest]
	if !ok {
		return nil, fmt.Errorf("store: no artifact %s", digest)
	}
	return append([]byte(nil), data...), nil
}

// ListArtifacts implements Backend.
func (m *MemBackend) ListArtifacts() ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.artifacts))
	for d := range m.artifacts {
		out = append(out, d)
	}
	sort.Strings(out)
	return out, nil
}

// AppendLedger implements Backend.
func (m *MemBackend) AppendLedger(lines [][]byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, ln := range lines {
		m.ledger = append(m.ledger, append([]byte(nil), ln...))
	}
	return nil
}

// ReadLedger implements Backend.
func (m *MemBackend) ReadLedger() ([][]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([][]byte, len(m.ledger))
	for i, ln := range m.ledger {
		out[i] = append([]byte(nil), ln...)
	}
	return out, nil
}

// Close implements Backend.
func (m *MemBackend) Close() error { return nil }
