package store

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// countingBackend wraps MemBackend counting AppendLedger calls, to observe
// flush batching.
type countingBackend struct {
	*MemBackend
	mu      sync.Mutex
	appends int
}

// AppendLedger implements Backend, counting calls.
func (c *countingBackend) AppendLedger(lines [][]byte) error {
	c.mu.Lock()
	c.appends++
	c.mu.Unlock()
	return c.MemBackend.AppendLedger(lines)
}

// TestBatcherFlushOnCount: FlushEvery ops reach the backend without an
// explicit Flush, in one coalesced append.
func TestBatcherFlushOnCount(t *testing.T) {
	cb := &countingBackend{MemBackend: NewMem()}
	s, err := Open(cb, Options{FlushEvery: 4, FlushInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 4; i++ {
		if _, err := s.Append(RunRecord{Kind: KindJob, JobID: fmt.Sprint("job-", i+1)}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		lines, err := cb.ReadLedger()
		if err != nil {
			t.Fatal(err)
		}
		if len(lines) == 4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("count-triggered flush never happened: %d lines durable", len(lines))
		}
		time.Sleep(time.Millisecond)
	}
	cb.mu.Lock()
	appends := cb.appends
	cb.mu.Unlock()
	if appends != 1 {
		t.Fatalf("4 records flushed in %d appends, want 1 coalesced batch", appends)
	}
}

// TestBatcherFlushOnInterval: with a tiny interval, a single record becomes
// durable without reaching FlushEvery.
func TestBatcherFlushOnInterval(t *testing.T) {
	cb := &countingBackend{MemBackend: NewMem()}
	s, err := Open(cb, Options{FlushEvery: 1 << 20, FlushInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Append(RunRecord{Kind: KindJob, JobID: "job-1"}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		lines, err := cb.ReadLedger()
		if err != nil {
			t.Fatal(err)
		}
		if len(lines) == 1 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("interval-triggered flush never happened")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestBatcherDrainLosesNothing: every record accepted before Close is
// durable after it, across both backends and with the flush count far below
// the record count.
func TestBatcherDrainLosesNothing(t *testing.T) {
	backends(t, func(t *testing.T, open func(t *testing.T) Backend) {
		b := open(t)
		s, err := Open(b, Options{FlushEvery: 1 << 20, FlushInterval: time.Hour, QueueDepth: 64})
		if err != nil {
			t.Fatal(err)
		}
		const n = 500
		for i := 0; i < n; i++ {
			dig, err := s.PutArtifact(payload{Name: fmt.Sprint("r", i)})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.Append(RunRecord{Kind: KindJob, JobID: fmt.Sprint("job-", i+1), ResultDigest: dig}); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		lines, err := b.ReadLedger()
		if err != nil {
			t.Fatal(err)
		}
		if len(lines) != n {
			t.Fatalf("drain lost records: %d durable, want %d", len(lines), n)
		}
		if rep, err := VerifyChain(b); err != nil || rep.Records != n || rep.ArtifactsChecked != n {
			t.Fatalf("post-drain chain: %+v %v", rep, err)
		}
	})
}

// TestFlushBarrier: Flush returns only after previously appended records are
// readable through the backend.
func TestFlushBarrier(t *testing.T) {
	cb := &countingBackend{MemBackend: NewMem()}
	s, err := Open(cb, Options{FlushEvery: 1 << 20, FlushInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 3; i++ {
		if _, err := s.Append(RunRecord{Kind: KindJob, JobID: fmt.Sprint("job-", i+1)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	lines, err := cb.ReadLedger()
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 3 {
		t.Fatalf("flush returned with %d/3 records durable", len(lines))
	}
	if st := s.Stats(); st.Pending != 0 {
		t.Fatalf("pending %d after flush", st.Pending)
	}
}
