package store

import (
	"sync"
	"sync/atomic"
	"time"
)

// op is one unit of deferred write work: an artifact body or a ledger line.
// Exactly one of the two shapes is set.
type op struct {
	line           []byte // ledger record line, when non-nil
	artifactDigest string // artifact digest, when artifactData is non-nil
	artifactData   []byte
	// flushDone, when non-nil, marks a synthetic flush barrier: the writer
	// flushes everything before it and closes the channel.
	flushDone chan error
}

// batcher drains a bounded op channel on one writer goroutine, flushing to
// the backend when FlushEvery ops are pending, when FlushInterval elapses
// with work pending, or when a flush barrier (Flush/Close) arrives. FIFO
// order is preserved end to end, so an artifact enqueued before the record
// referencing it is never durable later than that record.
type batcher struct {
	b    Backend
	opts Options
	ch   chan op

	flushes int64 // atomic
	pending int64 // atomic: accepted ops not yet flushed

	stop chan struct{}
	done chan struct{}
	once sync.Once
	err  atomic.Value // first flush error, sticky
}

// newBatcher starts the writer goroutine.
func newBatcher(b Backend, opts Options) *batcher {
	bat := &batcher{
		b:    b,
		opts: opts,
		ch:   make(chan op, opts.QueueDepth),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go bat.run()
	return bat
}

// enqueue hands one op to the writer, blocking (backpressure, never loss)
// when the channel is full.
func (bat *batcher) enqueue(o op) {
	atomic.AddInt64(&bat.pending, 1)
	bat.ch <- o
}

// flush inserts a barrier and waits for everything before it to be durable.
func (bat *batcher) flush() error {
	select {
	case <-bat.done:
		// Writer already gone (Close raced); everything accepted was flushed.
		return bat.firstErr()
	default:
	}
	donec := make(chan error, 1)
	select {
	case bat.ch <- op{flushDone: donec}:
	case <-bat.done:
		return bat.firstErr()
	}
	select {
	case err := <-donec:
		return err
	case <-bat.done:
		// The writer exited (Close raced) before answering the barrier; all
		// data ops accepted before the close were flushed by its drain.
		return bat.firstErr()
	}
}

// close flushes the queue and stops the writer.
func (bat *batcher) close() error {
	bat.once.Do(func() { close(bat.stop) })
	<-bat.done
	return bat.firstErr()
}

// stats reports flush count and pending ops.
func (bat *batcher) stats() (flushes, pending int64) {
	return atomic.LoadInt64(&bat.flushes), atomic.LoadInt64(&bat.pending)
}

// firstErr returns the sticky first flush error.
func (bat *batcher) firstErr() error {
	if e, ok := bat.err.Load().(error); ok {
		return e
	}
	return nil
}

// run is the writer goroutine: accumulate, flush, repeat until stopped and
// drained.
func (bat *batcher) run() {
	defer close(bat.done)
	var batch []op
	timer := time.NewTimer(bat.opts.FlushInterval)
	defer timer.Stop()

	flush := func() {
		if len(batch) == 0 {
			return
		}
		if err := bat.writeBatch(batch); err != nil {
			bat.err.CompareAndSwap(nil, err)
		}
		atomic.AddInt64(&bat.pending, -int64(len(batch)))
		atomic.AddInt64(&bat.flushes, 1)
		batch = batch[:0]
	}

	for {
		select {
		case o := <-bat.ch:
			if o.flushDone != nil {
				flush()
				o.flushDone <- bat.firstErr()
				continue
			}
			batch = append(batch, o)
			if len(batch) >= bat.opts.FlushEvery {
				flush()
			}
		case <-timer.C:
			flush()
			timer.Reset(bat.opts.FlushInterval)
		case <-bat.stop:
			// Drain whatever is already queued, then flush and exit. Nothing
			// accepted before close() is lost.
			for {
				select {
				case o := <-bat.ch:
					if o.flushDone != nil {
						flush()
						o.flushDone <- bat.firstErr()
						continue
					}
					batch = append(batch, o)
				default:
					flush()
					return
				}
			}
		}
	}
}

// writeBatch writes one accumulated batch: artifacts and ledger lines in
// FIFO order, consecutive lines coalesced into one durable AppendLedger
// call.
func (bat *batcher) writeBatch(batch []op) error {
	var lines [][]byte
	emit := func() error {
		if len(lines) == 0 {
			return nil
		}
		err := bat.b.AppendLedger(lines)
		lines = lines[:0]
		return err
	}
	for _, o := range batch {
		if o.artifactData != nil {
			if err := emit(); err != nil {
				return err
			}
			if err := bat.b.PutArtifact(o.artifactDigest, o.artifactData); err != nil {
				return err
			}
			continue
		}
		lines = append(lines, o.line)
	}
	return emit()
}
