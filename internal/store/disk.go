package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// DiskBackend is the durable Backend: a directory holding
//
//	<dir>/ledger.ndjson            the append-only record chain, one JSON line each
//	<dir>/artifacts/<dd>/<digest>  content-addressed artifacts, sharded by digest prefix
//
// Artifacts are written via temp-file + fsync + rename, so a crash never
// leaves a partial artifact under its final name. Ledger appends go to one
// file held open in append mode and fsynced per flush. On open, a torn tail
// line (a crash mid-append) is truncated away — the records it would have
// held were never acknowledged as flushed.
type DiskBackend struct {
	dir string

	mu     sync.Mutex
	ledger *os.File
}

// ledgerName is the ledger file's name inside the store directory.
const ledgerName = "ledger.ndjson"

// OpenDisk opens (creating if needed) a disk backend rooted at dir and
// self-heals a torn ledger tail.
func OpenDisk(dir string) (*DiskBackend, error) {
	if err := os.MkdirAll(filepath.Join(dir, "artifacts"), 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	path := filepath.Join(dir, ledgerName)
	if err := truncateTornTail(path); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &DiskBackend{dir: dir, ledger: f}, nil
}

// Dir returns the backend's root directory.
func (d *DiskBackend) Dir() string { return d.dir }

// truncateTornTail cuts an existing ledger file back to its last complete
// ('\n'-terminated) line. A missing file is fine.
func truncateTornTail(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("store: %w", err)
	}
	if len(data) == 0 || data[len(data)-1] == '\n' {
		return nil
	}
	cut := bytes.LastIndexByte(data, '\n') + 1 // 0 when no newline at all
	if err := os.Truncate(path, int64(cut)); err != nil {
		return fmt.Errorf("store: truncating torn ledger tail: %w", err)
	}
	return nil
}

// artifactPath shards artifacts by the first two digest hex digits.
func (d *DiskBackend) artifactPath(digest string) string {
	shard := "xx"
	if len(digest) >= 2 {
		shard = digest[:2]
	}
	return filepath.Join(d.dir, "artifacts", shard, digest)
}

// PutArtifact implements Backend: write-once via temp file, fsync, rename.
func (d *DiskBackend) PutArtifact(digest string, data []byte) error {
	path := d.artifactPath(digest)
	if _, err := os.Stat(path); err == nil {
		return nil // content-addressed: already present means already identical
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+digest+".tmp*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// GetArtifact implements Backend.
func (d *DiskBackend) GetArtifact(digest string) ([]byte, error) {
	data, err := os.ReadFile(d.artifactPath(digest))
	if err != nil {
		return nil, fmt.Errorf("store: no artifact %s: %w", digest, err)
	}
	return data, nil
}

// ListArtifacts implements Backend.
func (d *DiskBackend) ListArtifacts() ([]string, error) {
	var out []string
	root := filepath.Join(d.dir, "artifacts")
	err := filepath.WalkDir(root, func(path string, de os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !de.IsDir() && !strings.HasPrefix(de.Name(), ".") {
			out = append(out, de.Name())
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	sort.Strings(out)
	return out, nil
}

// AppendLedger implements Backend: one write per line, one fsync per call.
func (d *DiskBackend) AppendLedger(lines [][]byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, ln := range lines {
		if _, err := d.ledger.Write(append(ln, '\n')); err != nil {
			return fmt.Errorf("store: ledger append: %w", err)
		}
	}
	if err := d.ledger.Sync(); err != nil {
		return fmt.Errorf("store: ledger fsync: %w", err)
	}
	return nil
}

// ReadLedger implements Backend, ignoring a torn unterminated tail (which
// OpenDisk would truncate on the next open).
func (d *DiskBackend) ReadLedger() ([][]byte, error) {
	data, err := os.ReadFile(filepath.Join(d.dir, ledgerName))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("store: %w", err)
	}
	var out [][]byte
	for len(data) > 0 {
		i := bytes.IndexByte(data, '\n')
		if i < 0 {
			break // torn tail: never acknowledged, not part of the ledger
		}
		line := append([]byte(nil), data[:i]...)
		out = append(out, line)
		data = data[i+1:]
	}
	return out, nil
}

// Close implements Backend.
func (d *DiskBackend) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.ledger.Close()
}
