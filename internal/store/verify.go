package store

import (
	"fmt"
	"os"
)

// VerifyReport summarises a successful chain verification.
type VerifyReport struct {
	// Records is the number of chain records verified.
	Records int `json:"records"`
	// ArtifactsChecked counts distinct referenced artifacts whose content
	// re-hashed to their digest.
	ArtifactsChecked int `json:"artifacts_checked"`
	// HeadIndex and HeadHash identify the verified chain head (-1/"" for an
	// empty ledger, which verifies trivially).
	HeadIndex int64 `json:"head_index"`
	// HeadHash is the chain head record's hash.
	HeadHash string `json:"head_hash"`
}

// VerifyChain walks the backend's entire ledger, re-deriving every record's
// hash and the prev-hash linkage, and re-hashing every referenced artifact's
// content against its digest. Any flipped byte — in a record or in an
// artifact — fails verification with an error naming the offending record.
func VerifyChain(b Backend) (VerifyReport, error) {
	rep := VerifyReport{HeadIndex: -1}
	lines, err := b.ReadLedger()
	if err != nil {
		return rep, err
	}
	checked := map[string]bool{}
	prevHash := ""
	for i, line := range lines {
		rec, err := DecodeRecord(line)
		if err != nil {
			return rep, fmt.Errorf("store: record %d does not parse (tampered or corrupted): %w", i, err)
		}
		if rec.Index != int64(i) {
			return rep, fmt.Errorf("store: record %d carries index %d — a record was inserted or removed", i, rec.Index)
		}
		if rec.PrevHash != prevHash {
			return rep, fmt.Errorf("store: record %d (%s): prev_hash %.12s does not match the chain head %.12s — the preceding history was altered",
				i, recordLabel(rec), rec.PrevHash, prevHash)
		}
		want, err := HashRecord(rec)
		if err != nil {
			return rep, fmt.Errorf("store: record %d (%s): %w", i, recordLabel(rec), err)
		}
		if rec.Hash != want {
			return rep, fmt.Errorf("store: record %d (%s): stored hash %.12s, recomputed %.12s — the record was tampered with",
				i, recordLabel(rec), rec.Hash, want)
		}
		if rec.ResultDigest != "" && !checked[rec.ResultDigest] {
			data, err := b.GetArtifact(rec.ResultDigest)
			if err != nil {
				return rep, fmt.Errorf("store: record %d (%s): artifact missing: %w", i, recordLabel(rec), err)
			}
			if got := Digest(data); got != rec.ResultDigest {
				return rep, fmt.Errorf("store: record %d (%s): artifact %.12s re-hashes to %.12s — the artifact was tampered with or truncated",
					i, recordLabel(rec), rec.ResultDigest, got)
			}
			checked[rec.ResultDigest] = true
			rep.ArtifactsChecked++
		}
		prevHash = rec.Hash
		rep.HeadIndex = rec.Index
		rep.HeadHash = rec.Hash
		rep.Records++
	}
	return rep, nil
}

// recordLabel names a record for error messages: its job ID, name, or kind.
func recordLabel(rec RunRecord) string {
	switch {
	case rec.JobID != "":
		return rec.Kind + " " + rec.JobID
	case rec.Name != "":
		return rec.Kind + " " + rec.Name
	default:
		return rec.Kind
	}
}

// VerifyGolden checks a file on disk against the newest KindGolden record
// pinning name: the file's SHA-256 must equal the recorded digest. It
// returns that record on success.
func VerifyGolden(b Backend, name, path string) (RunRecord, error) {
	lines, err := b.ReadLedger()
	if err != nil {
		return RunRecord{}, err
	}
	var pin *RunRecord
	for i := len(lines) - 1; i >= 0; i-- {
		rec, err := DecodeRecord(lines[i])
		if err != nil {
			return RunRecord{}, fmt.Errorf("store: record %d does not parse: %w", i, err)
		}
		if rec.Kind == KindGolden && rec.Name == name {
			pin = &rec
			break
		}
	}
	if pin == nil {
		return RunRecord{}, fmt.Errorf("store: no golden record pins %q", name)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return RunRecord{}, err
	}
	if got := Digest(data); got != pin.ResultDigest {
		return *pin, fmt.Errorf("store: golden %q: file %s hashes to %.12s but record %d pinned %.12s — the file diverged from the recorded run",
			name, path, got, pin.Index, pin.ResultDigest)
	}
	return *pin, nil
}
