// Package store is the durable, tamper-evident experiment store: every
// result a secdir process publishes can be written through it and later
// verified against the exact spec, seed, engine options, and binary that
// produced it.
//
// Three layers compose the store:
//
//   - A Backend (MemBackend, DiskBackend) with write-once artifact Puts and
//     append-only ledger semantics — the only interface a new storage medium
//     has to implement.
//   - A content-addressed artifact store: result payloads are serialised to
//     canonical JSON, named by the SHA-256 of those bytes, and written at
//     most once; records reference artifacts by digest only.
//   - A hash-chained append-only run ledger: each RunRecord carries the hash
//     of its predecessor, so flipping any byte of any historical record (or
//     any artifact a record references) makes VerifyChain fail and name the
//     offending record.
//
// Appends go through an asynchronous batcher — a bounded channel drained by
// one writer goroutine that flushes on count, interval, or drain — so job
// hot paths never block on I/O. Chain order and hashes are fixed
// synchronously at Append time; only the write is deferred. Flush (and
// Close) block until everything previously appended is durable, and the
// DiskBackend fsyncs on every flush, so a crash loses at most the records
// appended since the last flush interval — never a record the caller has
// Flushed.
package store

import (
	"fmt"
	"sync"
	"time"
)

// Options tunes a Store. The zero value is ready to use.
type Options struct {
	// FlushEvery flushes the batcher once this many operations are pending
	// (default 64).
	FlushEvery int
	// FlushInterval flushes the batcher at least this often while work is
	// pending (default 200ms).
	FlushInterval time.Duration
	// QueueDepth bounds the batcher channel (default 1024). An Append past
	// the bound blocks until the writer catches up — backpressure, never
	// loss.
	QueueDepth int
}

// withDefaults fills unset options.
func (o Options) withDefaults() Options {
	if o.FlushEvery <= 0 {
		o.FlushEvery = 64
	}
	if o.FlushInterval <= 0 {
		o.FlushInterval = 200 * time.Millisecond
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 1024
	}
	return o
}

// Stats is a point-in-time snapshot of a store's accounting, the /storez
// payload's core.
type Stats struct {
	// Records is the number of ledger records appended (including those
	// replayed from the backend at Open).
	Records int64 `json:"records"`
	// Artifacts is the number of distinct artifacts referenced since Open
	// (deduplicated; a re-Put of identical content does not count twice).
	Artifacts int64 `json:"artifacts"`
	// Flushes counts batcher flushes.
	Flushes int64 `json:"flushes"`
	// Pending is the number of operations accepted but not yet durable.
	Pending int64 `json:"pending"`
	// HeadIndex and HeadHash identify the chain head (-1/"" when empty).
	HeadIndex int64 `json:"head_index"`
	// HeadHash is the chain head record's hash.
	HeadHash string `json:"head_hash"`
}

// Store couples a Backend with the hash chain and the async batcher. Create
// one with Open; it is safe for concurrent use.
type Store struct {
	b    Backend
	opts Options

	mu        sync.Mutex
	headIndex int64  // index of the last appended record (-1 when empty)
	headHash  string // hash of the last appended record ("" when empty)
	records   int64
	artifacts int64
	known     map[string]bool // artifact digests already put this session
	closed    bool

	bat *batcher
}

// Open replays the backend's ledger to recover the chain head and returns a
// store appending after it. The replay only reads the tail record — full
// verification is VerifyChain's job — but it does fail on a ledger whose
// last record does not parse, since appending after an unparseable head
// would chain onto garbage.
func Open(b Backend, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	lines, err := b.ReadLedger()
	if err != nil {
		return nil, fmt.Errorf("store: open: %w", err)
	}
	s := &Store{
		b:         b,
		opts:      opts,
		headIndex: -1,
		known:     map[string]bool{},
	}
	if n := len(lines); n > 0 {
		rec, err := DecodeRecord(lines[n-1])
		if err != nil {
			return nil, fmt.Errorf("store: open: ledger tail (record %d) does not parse: %w", n-1, err)
		}
		s.headIndex = rec.Index
		s.headHash = rec.Hash
		s.records = int64(n)
	}
	s.bat = newBatcher(b, opts)
	return s, nil
}

// Backend returns the store's backend — VerifyChain and the read-side
// helpers operate on it directly.
func (s *Store) Backend() Backend { return s.b }

// PutArtifact canonical-JSON-encodes v, stores the bytes content-addressed,
// and returns their digest. Identical payloads share one artifact; the write
// itself is batched and becomes durable at the next flush.
func (s *Store) PutArtifact(v any) (string, error) {
	data, err := CanonicalJSON(v)
	if err != nil {
		return "", fmt.Errorf("store: artifact encode: %w", err)
	}
	return s.PutRawArtifact(data)
}

// PutRawArtifact stores raw bytes content-addressed and returns their
// digest. Use it for non-JSON payloads (golden CSVs); PutArtifact is the
// canonical-JSON path.
func (s *Store) PutRawArtifact(data []byte) (string, error) {
	digest := Digest(data)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return "", errClosed
	}
	if !s.known[digest] {
		s.known[digest] = true
		s.artifacts++
		// Enqueued under the store lock so a concurrent Close (which flips
		// closed under the same lock before draining) can never strand an
		// accepted op. The batcher preserves FIFO order, so an artifact
		// enqueued before the record referencing it is durable no later than
		// that record.
		s.bat.enqueue(op{artifactDigest: digest, artifactData: data})
	}
	s.mu.Unlock()
	return digest, nil
}

// Artifact returns the content of one artifact by digest. It flushes first
// so a just-Put artifact is readable.
func (s *Store) Artifact(digest string) ([]byte, error) {
	if err := s.Flush(); err != nil {
		return nil, err
	}
	return s.b.GetArtifact(digest)
}

// Append links rec onto the chain and queues it for durable write, returning
// the completed record. The store fills Index, PrevHash, Hash, and — when
// unset — Time and Build; everything else is the caller's. Chain position is
// assigned synchronously (concurrent Appends serialise under the store
// lock), so records are totally ordered even though the write is batched.
func (s *Store) Append(rec RunRecord) (RunRecord, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return RunRecord{}, errClosed
	}
	if rec.Time.IsZero() {
		rec.Time = time.Now().UTC()
	}
	if rec.Build == (BuildInfo{}) {
		rec.Build = Build()
	}
	rec.Index = s.headIndex + 1
	rec.PrevHash = s.headHash
	rec.Hash = ""
	line, err := sealRecord(&rec)
	if err != nil {
		s.mu.Unlock()
		return RunRecord{}, fmt.Errorf("store: append: %w", err)
	}
	s.headIndex = rec.Index
	s.headHash = rec.Hash
	s.records++
	s.bat.enqueue(op{line: line}) // under the lock: see PutRawArtifact
	s.mu.Unlock()
	return rec, nil
}

// Records reads the full ledger back as parsed records, flushing first so
// every accepted Append is included.
func (s *Store) Records() ([]RunRecord, error) {
	if err := s.Flush(); err != nil {
		return nil, err
	}
	lines, err := s.b.ReadLedger()
	if err != nil {
		return nil, err
	}
	out := make([]RunRecord, 0, len(lines))
	for i, ln := range lines {
		rec, err := DecodeRecord(ln)
		if err != nil {
			return nil, fmt.Errorf("store: record %d does not parse: %w", i, err)
		}
		out = append(out, rec)
	}
	return out, nil
}

// Stats snapshots the store's accounting.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	st := Stats{
		Records:   s.records,
		Artifacts: s.artifacts,
		HeadIndex: s.headIndex,
		HeadHash:  s.headHash,
	}
	s.mu.Unlock()
	st.Flushes, st.Pending = s.bat.stats()
	return st
}

// Flush blocks until every previously accepted Append and PutArtifact is
// durable on the backend.
func (s *Store) Flush() error { return s.bat.flush() }

// Close flushes, stops the batcher, and closes the backend. The store
// rejects writes afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.bat.close()
	if cerr := s.b.Close(); err == nil {
		err = cerr
	}
	return err
}

// errClosed is returned by writes on a closed store.
var errClosed = fmt.Errorf("store: closed")
