package addr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLineOfRoundTrip(t *testing.T) {
	cases := []uint64{0, 63, 64, 0x3220, 1<<40 - 1}
	for _, pa := range cases {
		l := LineOf(pa)
		if got := l.PhysAddr(); got != pa&^uint64(LineSize-1) {
			t.Errorf("LineOf(%#x).PhysAddr() = %#x, want line-aligned %#x", pa, got, pa&^uint64(LineSize-1))
		}
	}
}

func TestLineOfMasksTo34Bits(t *testing.T) {
	if l := LineOf(1<<63 | 0x40); l != Line(1) {
		// Bits above the 40-bit physical address must be dropped.
		t.Errorf("LineOf high-bit masking failed: got %#x", uint64(l))
	}
}

func TestSameLineSameByte(t *testing.T) {
	// All byte addresses within one line map to the same Line.
	base := uint64(0x1234_5000)
	l := LineOf(base)
	for off := uint64(0); off < LineSize; off++ {
		if LineOf(base+off) != l {
			t.Fatalf("offset %d escaped the line", off)
		}
	}
	if LineOf(base+LineSize) == l {
		t.Fatal("next line aliased")
	}
}

func TestMapperPanics(t *testing.T) {
	for _, bad := range []struct{ slices, sets int }{{3, 2048}, {0, 2048}, {8, 1000}, {8, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewMapper(%d,%d) did not panic", bad.slices, bad.sets)
				}
			}()
			NewMapper(bad.slices, bad.sets)
		}()
	}
}

func TestMapperRanges(t *testing.T) {
	m := NewMapper(8, 2048)
	if m.Slices() != 8 || m.SetsPerSlice() != 2048 {
		t.Fatalf("geometry: %d slices, %d sets", m.Slices(), m.SetsPerSlice())
	}
	f := func(raw uint64) bool {
		l := Line(raw & (1<<LineBits - 1))
		s := m.Slice(l)
		set := m.Set(l)
		return s >= 0 && s < 8 && set >= 0 && set < 2048
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMapperDeterministic(t *testing.T) {
	m := NewMapper(8, 2048)
	l := Line(0xABCDE)
	if m.Slice(l) != m.Slice(l) || m.Set(l) != m.Set(l) {
		t.Fatal("mapper not deterministic")
	}
}

// TestMapperDistribution checks that both the slice hash and the set index
// spread random lines near-uniformly — the property benign workloads rely on
// (§5.2.1: "a benign victim application generally distributes its directory
// entries across directory sets and slices evenly").
func TestMapperDistribution(t *testing.T) {
	m := NewMapper(8, 2048)
	rng := rand.New(rand.NewSource(1))
	const n = 1 << 18
	sliceCount := make([]int, 8)
	setCount := make([]int, 2048)
	for i := 0; i < n; i++ {
		l := Line(rng.Int63n(1 << LineBits))
		sliceCount[m.Slice(l)]++
		setCount[m.Set(l)]++
	}
	for s, c := range sliceCount {
		if c < n/8*9/10 || c > n/8*11/10 {
			t.Errorf("slice %d has %d of %d lines (expected ≈%d)", s, c, n, n/8)
		}
	}
	exp := n / 2048
	for set, c := range setCount {
		if c < exp/2 || c > exp*2 {
			t.Errorf("set %d has %d lines (expected ≈%d)", set, c, exp)
		}
	}
}

// TestConsecutiveLinesSpread checks that a contiguous region (an array walk)
// spreads across slices rather than camping on one.
func TestConsecutiveLinesSpread(t *testing.T) {
	m := NewMapper(8, 2048)
	sliceCount := make([]int, 8)
	for i := 0; i < 4096; i++ {
		sliceCount[m.Slice(Line(0x40000+i))]++
	}
	for s, c := range sliceCount {
		if c == 0 {
			t.Errorf("slice %d never hit by a contiguous walk", s)
		}
		if c > 4096/8*3/2 {
			t.Errorf("slice %d absorbed %d of 4096 contiguous lines", s, c)
		}
	}
}
