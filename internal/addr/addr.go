// Package addr models physical addresses at cache-line granularity and the
// slice/set mapping used by a sliced last-level cache and its directory.
//
// The simulated machine uses 40-bit physical addresses with 64-byte lines
// (Table 3 of the SecDir paper), so a line address has 34 significant bits.
package addr

// LineBits is the number of significant bits in a line address
// (40-bit physical address, 6-bit line offset).
const LineBits = 40 - OffsetBits

// OffsetBits is the number of byte-offset bits within a cache line.
const OffsetBits = 6

// LineSize is the cache line size in bytes.
const LineSize = 1 << OffsetBits

// Line is a physical cache-line address: the physical address shifted right
// by OffsetBits. Only the low LineBits bits are significant.
type Line uint64

// LineOf returns the line address containing the physical byte address pa.
func LineOf(pa uint64) Line { return Line(pa>>OffsetBits) & (1<<LineBits - 1) }

// PhysAddr returns the physical byte address of the first byte of the line.
func (l Line) PhysAddr() uint64 { return uint64(l) << OffsetBits }

// Mapper maps line addresses to LLC/directory slices and to sets within a
// slice. The slice hash is a proprietary function on real hardware; here it
// is an XOR-fold of the line address, which distributes lines uniformly and
// is known to the attacker model (a standard assumption: Intel's slice hash
// has been reverse-engineered).
type Mapper struct {
	slices    int
	sliceMask uint64
	setMask   uint64
}

// NewMapper returns a Mapper for a machine with the given number of slices
// (must be a power of two) and directory sets per slice (power of two).
func NewMapper(slices, setsPerSlice int) Mapper {
	if slices <= 0 || slices&(slices-1) != 0 {
		panic("addr: slice count must be a positive power of two")
	}
	if setsPerSlice <= 0 || setsPerSlice&(setsPerSlice-1) != 0 {
		panic("addr: set count must be a positive power of two")
	}
	return Mapper{
		slices:    slices,
		sliceMask: uint64(slices - 1),
		setMask:   uint64(setsPerSlice - 1),
	}
}

// Slices returns the number of slices the Mapper distributes lines over.
func (m Mapper) Slices() int { return m.slices }

// SetsPerSlice returns the number of directory sets per slice.
func (m Mapper) SetsPerSlice() int { return int(m.setMask) + 1 }

// Slice returns the home slice of a line. The hash XOR-folds all line-address
// bits so that consecutive lines rotate through slices while high-order bits
// still matter, as with Intel's slice hash.
func (m Mapper) Slice(l Line) int {
	v := uint64(l)
	v ^= v >> 17
	v ^= v >> 9
	v ^= v >> 3
	return int(v & m.sliceMask)
}

// SetShift is the line-address bit position where the directory set index
// starts — the bits directly above the slice-hash fold. It is exported so a
// directory cache can be built with an equivalent shift-and-mask index
// (cachesim.ShiftIndex(addr.SetShift, sets)) instead of a closure over
// Mapper.Set.
const SetShift = 3

// Set returns the directory set index of a line within its home slice.
// The set index is taken from the line-address bits directly above the
// slice-hash fold so that lines in the same slice spread over all sets.
func (m Mapper) Set(l Line) int {
	return int((uint64(l) >> SetShift) & m.setMask)
}

// Tag returns the address tag stored in a directory entry for the line:
// the full line address (the simulator stores full tags; storage accounting
// in internal/area charges the paper's 29-bit tag cost).
func (m Mapper) Tag(l Line) uint64 { return uint64(l) }
