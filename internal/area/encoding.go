package area

// Sharer-information encodings. The paper's §7 analysis assumes the
// "full-mapped" presence bit vector (one bit per core) and notes that the
// overhead of sharer information grows with the core count — which is exactly
// what makes the VD (which needs no sharer field) increasingly cheap in
// comparison. §2.1 points at pointer-based encodings [18] as the alternative
// for large machines; this file quantifies how the SecDir storage argument
// changes under them.

// Encoding selects how an ED/TD entry stores its sharer set.
type Encoding int

const (
	// FullMap stores one presence bit per core (the paper's default).
	FullMap Encoding = iota
	// LimitedPointers stores up to k = PointerCount core IDs of log2(N)
	// bits each plus an overflow bit (Dir_k B of Agarwal et al.; overflow
	// falls back to broadcast).
	LimitedPointers
	// CoarseVector stores one presence bit per cluster of CoarseCluster
	// cores (a coarse-grained full map).
	CoarseVector
)

// String implements fmt.Stringer.
func (e Encoding) String() string {
	switch e {
	case FullMap:
		return "full-map"
	case LimitedPointers:
		return "limited-pointers"
	case CoarseVector:
		return "coarse-vector"
	default:
		return "unknown-encoding"
	}
}

// EncodingParams sizes an encoding.
type EncodingParams struct {
	Encoding Encoding
	// PointerCount is k for LimitedPointers (typically 2-4).
	PointerCount int
	// CoarseCluster is the cores-per-bit granularity for CoarseVector.
	CoarseCluster int
}

// log2Ceil returns ceil(log2(v)) for v >= 1.
func log2Ceil(v int) int {
	b := 0
	for 1<<b < v {
		b++
	}
	return b
}

// SharerBits returns the sharer-field width of one directory entry for an
// N-core machine under the encoding.
func (p EncodingParams) SharerBits(cores int) int {
	switch p.Encoding {
	case LimitedPointers:
		k := p.PointerCount
		if k <= 0 {
			k = 2
		}
		return k*log2Ceil(cores) + 1 // pointers + overflow/broadcast bit
	case CoarseVector:
		c := p.CoarseCluster
		if c <= 0 {
			c = 4
		}
		return (cores + c - 1) / c
	default:
		return cores
	}
}

// EDEntryBitsEnc returns the ED entry width under the encoding
// (tag + Valid + sharer field).
func EDEntryBitsEnc(cores int, p EncodingParams) int {
	return EDEntryTagBits + 1 + p.SharerBits(cores)
}

// TDEntryBitsEnc returns the TD entry width under the encoding
// (tag + Valid + Dirty + sharer field).
func TDEntryBitsEnc(cores int, p EncodingParams) int {
	return TDEntryTagBits + 2 + p.SharerBits(cores)
}

// SizeVDEnc repeats the Figure 5 sizing search under an alternative sharer
// encoding: the storage freed by giving up (12−wED) ED ways — now narrower
// entries — is redistributed into VD banks. Pointer encodings shrink the
// budget, so the equal-storage VD is smaller: the full-map assumption in the
// paper is the most VD-friendly one, and this function quantifies by how
// much.
func SizeVDEnc(cores, wED int, p EncodingParams) Sizing {
	entry := uint64(EDEntryBitsEnc(cores, p))
	budget := uint64(DirSets) * uint64(EDWaysBase-wED) * entry
	perBank := budget / uint64(cores)
	best := Sizing{Cores: cores, WED: wED}
	for wVD := MinVDWays; wVD <= MaxVDWays; wVD++ {
		setCost := uint64(wVD*VDEntryBits()) + EmptyBitPerSet
		sVD := 1
		for uint64(sVD*2)*setCost <= perBank {
			sVD *= 2
		}
		if uint64(sVD)*setCost > perBank {
			continue
		}
		if e := sVD * wVD; e > best.SVD*best.WVD || best.SVD == 0 {
			best.WVD, best.SVD = wVD, sVD
		}
	}
	best.EntriesPerCore = cores * best.SVD * best.WVD
	best.Ratio = float64(best.EntriesPerCore) / float64(L2Lines)
	return best
}

// StorageCrossoverEnc repeats the §7 crossover analysis under an alternative
// encoding: the smallest core count at which SecDir (full-size per-core VD)
// stores no more than the baseline. Compact encodings push the crossover out
// because the reclaimable per-entry sharer storage grows only
// logarithmically.
func StorageCrossoverEnc(wED int, p EncodingParams) int {
	for n := 2; n <= 1<<20; n *= 2 {
		baseline := uint64(DirSets)*uint64(TDWays)*uint64(TDEntryBitsEnc(n, p)) +
			uint64(DirSets)*uint64(EDWaysBase)*uint64(EDEntryBitsEnc(n, p))
		sets, ways := FullVDBank(n)
		sec := uint64(DirSets)*uint64(TDWays)*uint64(TDEntryBitsEnc(n, p)) +
			uint64(DirSets)*uint64(wED)*uint64(EDEntryBitsEnc(n, p)) +
			uint64(n)*VDBankBits(sets, ways)
		if sec <= baseline {
			return n
		}
	}
	return -1
}
