package area

import "testing"

func TestSharerBits(t *testing.T) {
	cases := []struct {
		p     EncodingParams
		cores int
		want  int
	}{
		{EncodingParams{Encoding: FullMap}, 8, 8},
		{EncodingParams{Encoding: FullMap}, 64, 64},
		{EncodingParams{Encoding: LimitedPointers, PointerCount: 2}, 8, 2*3 + 1},
		{EncodingParams{Encoding: LimitedPointers, PointerCount: 4}, 64, 4*6 + 1},
		{EncodingParams{Encoding: CoarseVector, CoarseCluster: 4}, 8, 2},
		{EncodingParams{Encoding: CoarseVector, CoarseCluster: 4}, 64, 16},
	}
	for _, c := range cases {
		if got := c.p.SharerBits(c.cores); got != c.want {
			t.Errorf("%v @%d cores: %d bits, want %d", c.p.Encoding, c.cores, got, c.want)
		}
	}
}

func TestFullMapMatchesBaseArithmetic(t *testing.T) {
	p := EncodingParams{Encoding: FullMap}
	for _, n := range []int{4, 8, 32, 128} {
		if EDEntryBitsEnc(n, p) != EDEntryBits(n) {
			t.Errorf("%d cores: ED entry %d != %d", n, EDEntryBitsEnc(n, p), EDEntryBits(n))
		}
		if TDEntryBitsEnc(n, p) != TDEntryBits(n) {
			t.Errorf("%d cores: TD entry %d != %d", n, TDEntryBitsEnc(n, p), TDEntryBits(n))
		}
	}
	// SizeVDEnc must reproduce SizeVD under the full map.
	for _, n := range []int{8, 32, 128} {
		a, b := SizeVD(n, 8), SizeVDEnc(n, 8, p)
		if a != b {
			t.Errorf("%d cores: SizeVDEnc(full-map) %+v != SizeVD %+v", n, b, a)
		}
	}
}

// TestPointerEncodingShrinksVDBudget: with compact sharer encodings the
// reclaimable ED storage grows only logarithmically, so the equal-storage VD
// is smaller and the §7 crossover moves far out — quantifying the paper's
// insight that the full map's growing sharer field is what the VD reuses.
func TestPointerEncodingShrinksVDBudget(t *testing.T) {
	ptr := EncodingParams{Encoding: LimitedPointers, PointerCount: 2}
	for _, n := range []int{32, 64, 128} {
		full := SizeVD(n, 8).Ratio
		compact := SizeVDEnc(n, 8, ptr).Ratio
		if compact >= full {
			t.Errorf("%d cores: pointer encoding ratio %v not below full-map %v", n, compact, full)
		}
	}
	fullCross := StorageCrossoverEnc(8, EncodingParams{Encoding: FullMap})
	ptrCross := StorageCrossoverEnc(8, ptr)
	if fullCross <= 0 {
		t.Fatal("full-map crossover not found")
	}
	if ptrCross > 0 && ptrCross <= fullCross {
		t.Errorf("pointer crossover %d not beyond full-map %d", ptrCross, fullCross)
	}
}

func TestEncodingString(t *testing.T) {
	if FullMap.String() != "full-map" || LimitedPointers.String() != "limited-pointers" || CoarseVector.String() != "coarse-vector" {
		t.Fatal("Encoding.String broken")
	}
}
