package area

import (
	"math"
	"testing"
)

func almost(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (±%v)", name, got, want, tol)
	}
}

// TestTable7Storage checks the exact per-slice storage numbers of Table 7
// for the 8-core machine.
func TestTable7Storage(t *testing.T) {
	almost(t, "TD KB", KB(TDBits(8)), 107.25, 0.001)
	almost(t, "ED12 KB", KB(EDBits(12, 8)), 114.0, 0.001)
	almost(t, "ED8 KB", KB(EDBits(8, 8)), 76.0, 0.001)
	sets, ways := FullVDBank(8)
	if sets != 512 || ways != 4 {
		t.Fatalf("FullVDBank(8) = %dx%d, want 512x4 (Table 4)", sets, ways)
	}
	almost(t, "VD KB", KB(8*VDBankBits(sets, ways)), 66.5, 0.001)

	base := SkylakeSlice(8)
	sec := SecDirSlice(8, 8)
	// "SecDir needs 28.5 KB more directory storage per slice" (§7, §10.4).
	almost(t, "extra KB", KB(sec.Total())-KB(base.Total()), 28.5, 0.001)
	// "+12.9% storage" (§10.4).
	almost(t, "storage ratio", KB(sec.Total())/KB(base.Total()), 1.129, 0.005)
}

// TestTable7Area checks the fitted area model against the CACTI datapoints.
func TestTable7Area(t *testing.T) {
	almost(t, "TD mm2", AreaMM2(KB(TDBits(8)), 1), 0.080, 0.002)
	almost(t, "ED12 mm2", AreaMM2(KB(EDBits(12, 8)), 1), 0.087, 0.003)
	almost(t, "ED8 mm2", AreaMM2(KB(EDBits(8, 8)), 1), 0.057, 0.002)
	sets, ways := FullVDBank(8)
	almost(t, "VD mm2", AreaMM2(KB(8*VDBankBits(sets, ways)), 8), 0.057, 0.003)
}

// TestFig5Anchors checks the Figure 5 sizing search at points the paper
// quotes: with W_ED=8 and 8 cores the per-core VD reaches about half the L2
// (hence the extra 28.5 KB to reach 1.0), and the ratio grows with the core
// count because the VD re-uses ever-wider sharer fields.
func TestFig5Anchors(t *testing.T) {
	s := SizeVD(8, 8)
	if s.Ratio < 0.4 || s.Ratio > 0.75 {
		t.Errorf("SizeVD(8 cores, W_ED=8).Ratio = %v, want ≈0.5", s.Ratio)
	}
	// At 44+ cores the same-storage design reaches one L2 of entries.
	s44 := SizeVD(64, 8)
	if s44.Ratio < 1.0 {
		t.Errorf("SizeVD(64 cores, W_ED=8).Ratio = %v, want ≥1", s44.Ratio)
	}
	// W_ED=6 at 128 cores reaches ≈3.5 in the paper.
	s128 := SizeVD(128, 6)
	if s128.Ratio < 2.5 || s128.Ratio > 4.5 {
		t.Errorf("SizeVD(128 cores, W_ED=6).Ratio = %v, want ≈3.5", s128.Ratio)
	}
	// Monotone in freed ways: fewer ED ways retained → more VD entries.
	for cores := 4; cores <= 128; cores *= 2 {
		prev := -1.0
		for wED := 10; wED >= 6; wED-- {
			r := SizeVD(cores, wED).Ratio
			if r < prev {
				t.Errorf("ratio not monotone at %d cores, W_ED=%d: %v < %v", cores, wED, r, prev)
			}
			prev = r
		}
	}
}

// TestStorageCrossover checks the §7 claim that SecDir uses less directory
// storage than Skylake-X from 44 cores on.
func TestStorageCrossover(t *testing.T) {
	n := StorageCrossover(8)
	if n < 33 || n > 48 {
		t.Errorf("StorageCrossover(8) = %d, want ≈44 (§7)", n)
	}
	// And once crossed it stays crossed for power-of-two counts.
	for c := 64; c <= 512; c *= 2 {
		if SecDirSlice(c, 8).Total() > SkylakeSlice(c).Total() {
			t.Errorf("SecDir storage exceeds baseline again at %d cores", c)
		}
	}
}

// TestRequiredAssociativity checks the §2.3 bound: >123 ways for 8 cores.
func TestRequiredAssociativity(t *testing.T) {
	if got := RequiredAssociativity(8); got != 123 {
		t.Errorf("RequiredAssociativity(8) = %d, want 123", got)
	}
	if got := RequiredAssociativity(28); got != 16*27+11 {
		t.Errorf("RequiredAssociativity(28) = %d, want %d", got, 16*27+11)
	}
}

// TestDefenseStorage checks the leaderboard cost model: every raced defense
// resolves, the baseline aliases agree, keyed/skewed designs pay the full-tag
// premium over the baseline, and tag-partitioning's missing sharer vector
// makes it the cheapest design.
func TestDefenseStorage(t *testing.T) {
	names := []string{"skylake-unfixed", "secdir", "skewed", "dls", "tagpart", "ceaser"}
	kb := map[string]float64{}
	for _, n := range names {
		s, banks, ok := DefenseStorage(n, 8)
		if !ok {
			t.Fatalf("DefenseStorage(%q) unknown", n)
		}
		if s.Total() == 0 || banks < 1 {
			t.Fatalf("DefenseStorage(%q) = %d bits in %d banks", n, s.Total(), banks)
		}
		kb[n] = KB(s.Total())
	}
	if _, _, ok := DefenseStorage("nope", 8); ok {
		t.Error("DefenseStorage accepted an unknown name")
	}

	base, banks, _ := DefenseStorage("baseline", 8)
	if got := SkylakeSlice(8); base != got || banks != 2 {
		t.Errorf("baseline alias = %+v/%d banks, want %+v/2", base, banks, got)
	}
	almost(t, "skylake-unfixed KB", kb["skylake-unfixed"], KB(SkylakeSlice(8).Total()), 0.001)
	almost(t, "secdir KB", kb["secdir"], KB(SecDirSlice(8, 8).Total()), 0.001)
	if kb["ceaser"] <= kb["skylake-unfixed"] {
		t.Errorf("ceaser stores full tags and must exceed the baseline: %v <= %v",
			kb["ceaser"], kb["skylake-unfixed"])
	}
	if kb["skewed"] <= kb["skylake-unfixed"] {
		t.Errorf("skewed stores full tags and must exceed the baseline: %v <= %v",
			kb["skewed"], kb["skylake-unfixed"])
	}
	for _, n := range names {
		if n != "tagpart" && kb["tagpart"] >= kb[n] {
			t.Errorf("tagpart (%v KB) should undercut %s (%v KB)", kb["tagpart"], n, kb[n])
		}
	}
}

func TestEntryBits(t *testing.T) {
	if got := TDEntryBits(8); got != 39 {
		t.Errorf("TDEntryBits(8) = %d, want 39", got)
	}
	if got := EDEntryBits(8); got != 38 {
		t.Errorf("EDEntryBits(8) = %d, want 38", got)
	}
	if got := VDEntryBits(); got != 33 {
		t.Errorf("VDEntryBits() = %d, want 33", got)
	}
}
