// Package area models directory storage and silicon area: exact bit counts
// for the TD, ED and VD structures under the paper's §7 assumptions (MESI,
// full-mapped presence vector, 40-bit physical addresses), the VD sizing
// search behind Figure 5, the storage-crossover analysis of §7, the
// Table 7 storage/area comparison, and the §2.3 required-associativity bound.
//
// Area is reported by a linear model (per-KB cost plus a per-bank overhead)
// fitted to the four CACTI-7 22 nm datapoints of Table 7; storage in KB is
// exact.
package area

// Paper constants (Table 3, §7).
const (
	// TDEntryTagBits and EDEntryTagBits are the 29-bit address tags of the
	// 2048-set TD and ED.
	TDEntryTagBits = 29
	EDEntryTagBits = 29
	// VDEntryTagBits: a VD bank is indexed with skewing hash functions, so
	// the set-index bits cannot be dropped from the tag; only the slice-
	// selection bits are implicit. 34 line-address bits minus 3 slice bits.
	VDEntryTagBits = 31
	// VDEntryOverheadBits: Valid + Cuckoo bit.
	VDEntryOverheadBits = 2
	// EmptyBitPerSet: one EB per VD set (§5.2.2).
	EmptyBitPerSet = 1

	// Skylake-X geometry (Table 3).
	DirSets    = 2048
	TDWays     = 11
	EDWaysBase = 12
	L2Lines    = 16384 // 1 MB, 64 B lines
	L2Ways     = 16
	LLCWays    = 11
	MinVDWays  = 3
	MaxVDWays  = 8
)

// TDEntryBits returns the size of one TD entry for an N-core machine:
// tag + Valid + Dirty + N presence bits.
func TDEntryBits(cores int) int { return TDEntryTagBits + 2 + cores }

// EDEntryBits returns the size of one ED entry: tag + Valid + N presence.
func EDEntryBits(cores int) int { return EDEntryTagBits + 1 + cores }

// VDEntryBits returns the size of one VD entry: tag + Valid + Cuckoo. A VD
// is core-private, so it needs no sharer information — the insight that makes
// SecDir area-efficient.
func VDEntryBits() int { return VDEntryTagBits + VDEntryOverheadBits }

// TDBits returns the per-slice TD storage in bits.
func TDBits(cores int) uint64 {
	return uint64(DirSets) * uint64(TDWays) * uint64(TDEntryBits(cores))
}

// EDBits returns the per-slice ED storage in bits for the given way count.
func EDBits(ways, cores int) uint64 {
	return uint64(DirSets) * uint64(ways) * uint64(EDEntryBits(cores))
}

// VDBankBits returns the storage of one VD bank: entries plus the Empty-Bit
// array.
func VDBankBits(sets, ways int) uint64 {
	return uint64(sets)*uint64(ways)*uint64(VDEntryBits()) + uint64(sets)*EmptyBitPerSet
}

// KB converts bits to kilobytes (1024 bytes).
func KB(bits uint64) float64 { return float64(bits) / 8 / 1024 }

// Area model fitted to the CACTI-7 22 nm datapoints of Table 7:
// TD (107.25 KB → 0.080 mm²), ED12 (114 KB → 0.087), ED8 (76 KB → 0.057),
// VD (66.5 KB in 8 banks → 0.057).
const (
	mm2PerKB   = 0.080 / 107.25 // ≈ 0.000746 mm² per KB of directory SRAM
	mm2PerBank = 0.00093        // per-bank peripheral overhead
)

// AreaMM2 estimates silicon area for kb kilobytes of directory storage
// organised into the given number of independently accessed banks
// (1 for TD/ED).
func AreaMM2(kb float64, banks int) float64 {
	return kb*mm2PerKB + float64(banks-1)*mm2PerBank
}

// Sizing is one point of the Figure 5 design-space search.
type Sizing struct {
	Cores int
	WED   int // ED ways retained by SecDir
	WVD   int // chosen VD bank associativity
	SVD   int // chosen VD bank set count (power of two)
	// EntriesPerCore is the number of VD entries one core owns
	// machine-wide (Cores banks of SVD×WVD entries).
	EntriesPerCore int
	// Ratio is EntriesPerCore / L2Lines — the y-axis of Figure 5.
	Ratio float64
}

// SizeVD performs the §7 sizing search for an equal-storage SecDir design:
// the storage of the (12−wED) ED ways given up is divided into Cores VD
// banks per slice; among bank associativities 3..8 it picks the design with
// the highest entry count and a power-of-two set count that fits.
func SizeVD(cores, wED int) Sizing {
	budget := EDBits(EDWaysBase, cores) - EDBits(wED, cores) // bits per slice
	perBank := budget / uint64(cores)
	best := Sizing{Cores: cores, WED: wED}
	for wVD := MinVDWays; wVD <= MaxVDWays; wVD++ {
		setCost := uint64(wVD*VDEntryBits()) + EmptyBitPerSet
		sVD := 1
		for uint64(sVD*2)*setCost <= perBank {
			sVD *= 2
		}
		if uint64(sVD)*setCost > perBank {
			continue // not even one set fits
		}
		entries := sVD * wVD
		// Highest entry count wins; ties prefer lower associativity
		// (faster bank access).
		if entries > best.SVD*best.WVD || best.SVD == 0 {
			best.WVD, best.SVD = wVD, sVD
		}
	}
	best.EntriesPerCore = cores * best.SVD * best.WVD
	best.Ratio = float64(best.EntriesPerCore) / float64(L2Lines)
	return best
}

// FullVDBank returns the minimal power-of-two bank geometry whose Cores banks
// give a core at least L2Lines entries machine-wide: the "per-core VD as
// large as the L2" guideline of §7 (4-way 512-set banks for 8 cores).
func FullVDBank(cores int) (sets, ways int) {
	need := (L2Lines + cores - 1) / cores
	bestEntries := 1 << 62
	for w := MinVDWays; w <= MaxVDWays; w++ {
		s := 1
		for s*w < need {
			s *= 2
		}
		// Fewest entries ≥ need wins; ties prefer the lower associativity,
		// keeping bank accesses fast (§5.1 keeps W_VD modest).
		if e := s * w; e < bestEntries {
			bestEntries, sets, ways = e, s, w
		}
	}
	return sets, ways
}

// SliceStorage is the per-slice storage of one design, in bits.
type SliceStorage struct {
	TD, ED, VD uint64
}

// Total returns the slice's total directory bits.
func (s SliceStorage) Total() uint64 { return s.TD + s.ED + s.VD }

// SkylakeSlice returns the baseline per-slice storage.
func SkylakeSlice(cores int) SliceStorage {
	return SliceStorage{TD: TDBits(cores), ED: EDBits(EDWaysBase, cores)}
}

// SecDirSlice returns the per-slice storage of the §8 SecDir design: the ED
// keeps 8 ways and the per-core VD holds at least L2Lines entries
// machine-wide.
func SecDirSlice(cores, wED int) SliceStorage {
	sets, ways := FullVDBank(cores)
	return SliceStorage{
		TD: TDBits(cores),
		ED: EDBits(wED, cores),
		VD: uint64(cores) * VDBankBits(sets, ways),
	}
}

// Entry-size helpers for the rival defenses of the cross-defense leaderboard.
// Designs whose set index is a keyed or skewed function of the address cannot
// drop the set-index bits from the tag (same argument as the VD's 31-bit
// tag); conventionally indexed structures store the 29-bit tag of a 2048-set
// array.
const (
	// FullTagBits is the tag width when no address bits are implicit in the
	// set index: 34 line-address bits minus 3 slice-selection bits.
	FullTagBits = 31
)

// SkewedEntryBits returns one entry of the SEED-style skewed table: full tag
// (the per-way GF index makes no bit implicit) + Valid + Dirty + HasData +
// presence vector.
func SkewedEntryBits(cores int) int { return FullTagBits + 3 + cores }

// DLSEntryBits returns one entry of the directoryless shared-LLC tag array:
// conventional tag + Valid + Dirty + presence vector (every entry owns an
// LLC slot, so no HasData bit is needed).
func DLSEntryBits(cores int) int { return TDEntryTagBits + 2 + cores }

// TagPartEntryBits returns one entry of a per-core tag partition: tag +
// Valid. The partition index is the sharer and data lives wherever the
// protocol put it, so neither a presence vector nor data bits are stored —
// the design's storage win.
func TagPartEntryBits() int { return TDEntryTagBits + 1 }

// DefenseStorage returns the per-slice directory storage and the number of
// independently accessed banks for a leaderboard defense name at baseline
// geometry (2048 sets, 11 TD + 12 ED ways of budget). Unknown names return
// ok == false.
func DefenseStorage(name string, cores int) (s SliceStorage, banks int, ok bool) {
	unified := uint64(DirSets) * uint64(TDWays+EDWaysBase)
	switch name {
	case "skylake-unfixed", "skylake-fixed", "baseline":
		return SkylakeSlice(cores), 2, true
	case "secdir":
		return SecDirSlice(cores, 8), 2 + cores, true
	case "skewed":
		// One unified table; every way is its own independently decoded
		// array (per-way index functions), hence one bank per way.
		return SliceStorage{TD: unified * uint64(SkewedEntryBits(cores))}, TDWays + EDWaysBase, true
	case "dls":
		// The TD+ED budget folded back into the inclusive LLC tag array.
		return SliceStorage{TD: unified * uint64(DLSEntryBits(cores))}, 1, true
	case "tagpart":
		// Per-core partitions of the unified way budget (minimum 1 way each).
		ways := (TDWays + EDWaysBase) / cores
		if ways < 1 {
			ways = 1
		}
		bits := uint64(cores) * uint64(DirSets) * uint64(ways) * uint64(TagPartEntryBits())
		return SliceStorage{TD: bits}, cores, true
	case "ceaser", "rand-mapped", "randmap":
		// Baseline structure under a keyed index: full tags, plus nothing
		// else worth counting (two 64-bit keys per slice vanish at KB scale).
		td := uint64(DirSets) * uint64(TDWays) * uint64(FullTagBits+2+cores)
		ed := uint64(DirSets) * uint64(EDWaysBase) * uint64(FullTagBits+1+cores)
		return SliceStorage{TD: td, ED: ed}, 2, true
	}
	return SliceStorage{}, 0, false
}

// StorageCrossover returns the smallest core count at which the SecDir design
// (ED with wED ways + full-size per-core VD) uses no more directory storage
// than the Skylake-X baseline — the "44 cores or more" claim of §7.
func StorageCrossover(wED int) int {
	for n := 2; n <= 4096; n++ {
		if SecDirSlice(n, wED).Total() <= SkylakeSlice(n).Total() {
			return n
		}
	}
	return -1
}

// RequiredAssociativity returns the per-slice directory associativity a
// victim needs to be guaranteed one live entry against an attacker using all
// other cores: W_L2 × (N−1) + W_LLC (§2.3).
func RequiredAssociativity(cores int) int {
	return L2Ways*(cores-1) + LLCWays
}
