package core

import (
	"fmt"
	"testing"

	"secdir/internal/addr"
	"secdir/internal/cachesim"
	"secdir/internal/directory"
)

// fuzzSliceParams is the deliberately tiny geometry the native fuzz target
// runs against: a 2-set × 1-way VD with 2 relocations makes every burst of
// same-index misses walk cuckoo relocation chains and hit VD self-conflicts
// (transition ⑤) within a handful of operations.
func fuzzSliceParams() Params {
	return Params{
		Cores:  4,
		TDSets: 4, TDWays: 2,
		EDSets: 4, EDWays: 2,
		VDSets: 2, VDWays: 1,
		NumRelocations: 2,
		Cuckoo:         true,
		EmptyBit:       true,
		Index:          cachesim.FuncIndex(func(l addr.Line) int { return int(l) % 4 }),
		AppendixAFix:   true,
		Seed:           7,
	}
}

// FuzzSecDirSliceOps is a native fuzz target over raw operation bytes,
// checked against the same holders model as TestSecDirSliceFuzzAgainstOracle.
// Byte 2k encodes the op — bits 0-1 the core, bit 2 upgrade-vs-evict when the
// core holds the line, bit 3 the write/dirty flag — and byte 2k+1 the line.
// Ops that would be illegal for the current state (upgrade or evict of a line
// the core does not hold) decode to a miss instead, so every input is a legal
// sequence. Run with `go test -fuzz FuzzSecDirSliceOps ./internal/core` for
// open-ended exploration; under plain `go test` the seed corpus and the
// checked-in files under testdata/fuzz act as regression tests.
func FuzzSecDirSliceOps(f *testing.F) {
	// A burst of same-index misses from one core: ED fills, spills to TD,
	// TD victims retreat to the tiny VD and self-conflict.
	var burst []byte
	for l := byte(1); l < 126; l += 4 {
		burst = append(burst, 0, l)
	}
	f.Add(burst)
	// Two cores sharing then upgrading: exercises ReasonCoherence invalidates.
	f.Add([]byte{0, 9, 1, 9, 0x04, 9, 1, 9, 0x0c, 9})
	// Miss/evict churn on one VD set: Empty-Bit transitions both ways.
	f.Add([]byte{0, 3, 0x04, 3, 0, 3, 0x0c, 3, 0, 7, 0, 3})
	f.Fuzz(func(t *testing.T, ops []byte) {
		s := New(fuzzSliceParams())
		holders := map[addr.Line]directory.Bitset{}
		apply := func(acts []directory.Action) {
			for _, a := range acts {
				if a.Kind == directory.InvalidateL2 {
					holders[a.Line] = holders[a.Line].Clear(a.Core)
				}
			}
		}
		check := func(l addr.Line) error {
			want := holders[l]
			m, w, ok := s.Find(l)
			if want != 0 {
				if !ok || m.Sharers != want {
					return fmt.Errorf("line %#x in %v: sharers %b (ok=%v), oracle %b", uint64(l), w, m.Sharers, ok, want)
				}
				return nil
			}
			if ok && m.Sharers != 0 {
				return fmt.Errorf("line %#x in %v: stale sharers %b", uint64(l), w, m.Sharers)
			}
			return nil
		}

		for i := 0; i+1 < len(ops); i += 2 {
			b := ops[i]
			c := int(b & 3)
			flag := b&8 != 0
			l := addr.Line(ops[i+1] % 128)
			h := holders[l]
			switch {
			case h.Has(c) && b&4 == 0:
				apply(s.Upgrade(c, l))
				if !holders[l].Has(c) || holders[l].Count() != 1 {
					t.Fatalf("op %d: upgrade left sharers %b", i, holders[l])
				}
			case h.Has(c):
				acts := s.L2Evict(c, l, flag)
				holders[l] = holders[l].Clear(c)
				apply(acts)
			default:
				res := s.Miss(c, l, flag)
				apply(res.Actions)
				if !res.NoFill {
					holders[l] = holders[l].Set(c)
				}
			}
			if err := check(l); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		}
		for l := range holders {
			if err := check(l); err != nil {
				t.Fatalf("final sweep: %v", err)
			}
		}
	})
}
