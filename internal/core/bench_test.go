package core

import (
	"testing"

	"secdir/internal/addr"
	"secdir/internal/cachesim"
)

// BenchmarkMissColdStream measures the SecDir slice's miss path at full
// Skylake-X slice geometry (memory fetch + ED insertion + occasional
// migration chains).
func BenchmarkMissColdStream(b *testing.B) {
	s := New(Params{
		Cores:  8,
		TDSets: 2048, TDWays: 11,
		EDSets: 2048, EDWays: 8,
		VDSets: 512, VDWays: 4,
		NumRelocations: 8,
		Cuckoo:         true,
		EmptyBit:       true,
		Index:          cachesim.ModIndex(2048),
		AppendixAFix:   true,
		Seed:           1,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		line := addr.Line(i)
		s.Miss(i&7, line, false)
		// Keep the protocol consistent: evict immediately so sharer state
		// never references lines the bench does not track.
		s.L2Evict(i&7, line, false)
	}
}
