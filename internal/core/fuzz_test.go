package core

import (
	"fmt"
	"math/rand"
	"testing"

	"secdir/internal/addr"
	"secdir/internal/cachesim"
	"secdir/internal/directory"
)

// TestSecDirSliceFuzzAgainstOracle mirrors internal/directory's slice-oracle
// fuzz for the SecDir implementation: after every operation, Find's sharer
// vector must match a model derived purely from the issued operations and
// returned actions — across ED, TD and all VD banks, through every
// ①-⑤ transition, with tiny geometries forcing constant migration.
func TestSecDirSliceFuzzAgainstOracle(t *testing.T) {
	variants := []struct {
		name   string
		mutate func(*Params)
	}{
		{"standard", func(*Params) {}},
		{"no-cuckoo", func(p *Params) { p.Cuckoo = false }},
		{"no-eb", func(p *Params) { p.EmptyBit = false }},
		{"batched", func(p *Params) { p.SearchBatch = 2 }},
		{"stash", func(p *Params) { p.StashSize = 2 }},
		{"disable-edtd", func(p *Params) { p.DisableEDTD = true }},
		{"tiny-vd", func(p *Params) { p.VDSets = 2; p.VDWays = 1; p.NumRelocations = 2 }},
	}
	for vi, v := range variants {
		v := v
		seed := int64(vi + 1)
		t.Run(v.name, func(t *testing.T) {
			p := Params{
				Cores:  4,
				TDSets: 8, TDWays: 2,
				EDSets: 8, EDWays: 2,
				VDSets: 8, VDWays: 2,
				NumRelocations: 4,
				Cuckoo:         true,
				EmptyBit:       true,
				Index:          cachesim.FuncIndex(func(l addr.Line) int { return int(l) % 8 }),
				AppendixAFix:   true,
				Seed:           seed,
			}
			v.mutate(&p)
			fuzzSecDir(t, New(p), seed, 6000)
		})
	}
}

func fuzzSecDir(t *testing.T, s *Slice, seed int64, ops int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	holders := map[addr.Line]directory.Bitset{}
	apply := func(acts []directory.Action) {
		for _, a := range acts {
			if a.Kind == directory.InvalidateL2 {
				holders[a.Line] = holders[a.Line].Clear(a.Core)
			}
		}
	}
	check := func(l addr.Line) error {
		want := holders[l]
		m, w, ok := s.Find(l)
		if want != 0 {
			if !ok || m.Sharers != want {
				return fmt.Errorf("line %#x in %v: sharers %b (ok=%v), oracle %b", uint64(l), w, m.Sharers, ok, want)
			}
			return nil
		}
		if ok && m.Sharers != 0 {
			return fmt.Errorf("line %#x in %v: stale sharers %b", uint64(l), w, m.Sharers)
		}
		return nil
	}

	for i := 0; i < ops; i++ {
		c := rng.Intn(4)
		l := addr.Line(rng.Int63n(512))
		h := holders[l]
		switch {
		case !h.Has(c):
			write := rng.Intn(4) == 0
			res := s.Miss(c, l, write)
			apply(res.Actions)
			if !res.NoFill {
				holders[l] = holders[l].Set(c)
			}
		case rng.Intn(3) == 0:
			apply(s.Upgrade(c, l))
			if !holders[l].Has(c) || holders[l].Count() != 1 {
				t.Fatalf("op %d: upgrade sharers %b", i, holders[l])
			}
		default:
			acts := s.L2Evict(c, l, rng.Intn(2) == 0)
			holders[l] = holders[l].Clear(c)
			apply(acts)
		}
		if err := check(l); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		if i%500 == 499 {
			for ll := range holders {
				if err := check(ll); err != nil {
					t.Fatalf("op %d (sweep): %v", i, err)
				}
			}
		}
	}
}
