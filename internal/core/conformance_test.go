package core

import (
	"testing"

	"secdir/internal/addr"
	"secdir/internal/directory"
)

// ebUnfiltered returns the set of VD banks whose Empty-Bit array would NOT
// filter a look-up for the line — the banks whose candidate sets hold at
// least one entry (§5.2.2).
func ebUnfiltered(s *Slice, l addr.Line) directory.Bitset {
	var b directory.Bitset
	for c := 0; c < tCores; c++ {
		if !s.VDBank(c).EmptyBitHit(l) {
			b = b.Set(c)
		}
	}
	return b
}

// vdOccupancy returns the set of VD banks holding the line.
func vdOccupancy(s *Slice, l addr.Line) directory.Bitset {
	var b directory.Bitset
	for c := 0; c < tCores; c++ {
		if s.VDBank(c).Contains(l) {
			b = b.Set(c)
		}
	}
	return b
}

// requireWhere asserts Find's placement for the line.
func requireWhere(t *testing.T, s *Slice, l addr.Line, want directory.Where) directory.Meta {
	t.Helper()
	m, w, ok := s.Find(l)
	if want == directory.WhereNone {
		if ok {
			t.Fatalf("line %#x found in %v, want absent", uint64(l), w)
		}
		return directory.Meta{}
	}
	if !ok || w != want {
		t.Fatalf("line %#x in %v (ok=%v), want %v", uint64(l), w, ok, want)
	}
	return m
}

// TestTable2Conformance walks transitions ①–⑤ of Table 2, one subtest per
// transition, asserting entry placement (ED/TD/VD occupancy) and the
// Empty-Bit array state after each step.
func TestTable2Conformance(t *testing.T) {
	t.Run("1-memory-fetch-allocates-ED", func(t *testing.T) {
		s := newSlice()
		l := lineInSet(0, 0)
		if got := ebUnfiltered(s, l); got != 0 {
			t.Fatalf("fresh slice: EB leaves banks %b unfiltered", got)
		}
		res := s.Miss(0, l, false)
		if res.Where != directory.WhereNone || res.Source != directory.SourceMemory || !res.Exclusive {
			t.Fatalf("transition ①: %+v", res)
		}
		m := requireWhere(t, s, l, directory.WhereED)
		if !m.Sharers.Has(0) || m.Sharers.Count() != 1 {
			t.Fatalf("① sharers %b, want only core 0", m.Sharers)
		}
		if n := s.TDED().ED.Len(); n != 1 {
			t.Fatalf("① ED holds %d entries, want 1", n)
		}
		if n := s.TDED().TD.Len(); n != 0 {
			t.Fatalf("① TD holds %d entries, want 0", n)
		}
		// ① touches no VD bank: the EB arrays still filter everything.
		if got := ebUnfiltered(s, l); got != 0 {
			t.Fatalf("① EB leaves banks %b unfiltered", got)
		}
		if got := vdOccupancy(s, l); got != 0 {
			t.Fatalf("① VD occupancy %b, want none", got)
		}
		if s.Stats().MemFetches != 1 {
			t.Fatalf("① MemFetches = %d", s.Stats().MemFetches)
		}
	})

	t.Run("2-sharerless-TD-conflict-drops", func(t *testing.T) {
		s := newSlice()
		// Sharerless TD entries: fetch, then evict from the only L2 holding
		// the line, so the entry sits in the TD with data and no sharers.
		set := 1
		first := lineInSet(set, 0)
		for i := 0; i < 2*(tED+tTD)+2; i++ {
			l := lineInSet(set, i)
			s.Miss(0, l, false)
			s.L2Evict(0, l, false)
		}
		if s.Stats().TDDrop == 0 {
			t.Fatal("② sharerless TD conflicts never dropped")
		}
		if s.Stats().TDToVD != 0 {
			t.Fatal("② migrated a sharerless entry to the VDs")
		}
		// The first line was conflicted out of the (LRU) TD and discarded.
		requireWhere(t, s, first, directory.WhereNone)
		// No VD bank was touched; the EB arrays still filter everything.
		if got := ebUnfiltered(s, first); got != 0 {
			t.Fatalf("② EB leaves banks %b unfiltered", got)
		}
		// TD cannot exceed its set capacity.
		if n := s.TDED().TD.Len(); n > tTD {
			t.Fatalf("② TD holds %d entries in one set, cap %d", n, tTD)
		}
	})

	t.Run("3-shared-TD-conflict-migrates-to-VDs", func(t *testing.T) {
		s := newSlice()
		l := park(t, s, 2, []int{0, 1})
		requireWhere(t, s, l, directory.WhereVD)
		// Exactly the sharers' banks hold the entry.
		if got := vdOccupancy(s, l); got != directory.Bitset(0).Set(0).Set(1) {
			t.Fatalf("③ VD occupancy %b, want banks 0 and 1", got)
		}
		// The EB arrays of the sharers' banks must no longer filter the line
		// (its candidate sets are occupied); a look-up that skipped them would
		// miss the migrated entry.
		eb := ebUnfiltered(s, l)
		if !eb.Has(0) || !eb.Has(1) {
			t.Fatalf("③ EB filters a sharer's bank (unfiltered=%b)", eb)
		}
		// The entry left the shared structures.
		if _, ok := s.TDED().ED.Probe(l); ok {
			t.Fatal("③ left an ED entry")
		}
		if _, ok := s.TDED().TD.Probe(l); ok {
			t.Fatal("③ left a TD entry")
		}
		if s.Stats().TDToVD == 0 {
			t.Fatal("③ not counted")
		}
	})

	t.Run("4-L2-evict-consolidates-into-TD", func(t *testing.T) {
		s := newSlice()
		l := park(t, s, 3, []int{0, 1})
		tdBefore := s.TDED().TD.Len()
		disposedBefore := s.Stats().TDDrop + s.Stats().TDToVD
		s.L2Evict(0, l, true)
		m := requireWhere(t, s, l, directory.WhereTD)
		if !m.HasData || !m.Dirty {
			t.Fatalf("④ TD entry %+v, want LLC data + dirty", m)
		}
		if !m.Sharers.Has(1) || m.Sharers.Has(0) || m.Sharers.Count() != 1 {
			t.Fatalf("④ sharers %b, want only core 1", m.Sharers)
		}
		// Every VD copy of the entry was removed by the consolidation.
		if got := vdOccupancy(s, l); got != 0 {
			t.Fatalf("④ VD occupancy %b, want none", got)
		}
		// The consolidation adds one TD entry — unless the full set displaced
		// a resident entry (visible as a ② drop or ③ migration), in which
		// case occupancy is unchanged.
		want := tdBefore + 1
		if s.Stats().TDDrop+s.Stats().TDToVD > disposedBefore {
			want = tdBefore
		}
		if n := s.TDED().TD.Len(); n != want {
			t.Fatalf("④ TD occupancy %d, want %d", n, want)
		}
		if s.Stats().VDToTD == 0 {
			t.Fatal("④ not counted")
		}
	})

	t.Run("5-VD-self-conflict-evicts-own-entry", func(t *testing.T) {
		s := newSlice(func(p *Params) { p.VDSets = 1; p.VDWays = 1; p.NumRelocations = 2 })
		l1 := park(t, s, 4, []int{0})
		// A second parked line for core 0 must displace l1 from core 0's
		// 1-entry bank — and only from core 0's.
		l2 := lineInSet(5, 0)
		s.Miss(0, l2, false)
		var acts []directory.Action
		for i := 1; i < 64 && !s.VDBank(0).Contains(l2); i++ {
			res := s.Miss(3, lineInSet(5, i), false)
			acts = append(acts, res.Actions...)
		}
		var hit bool
		for _, a := range acts {
			if a.Kind == directory.InvalidateL2 && a.Line == l1 {
				if a.Core != 0 || a.Reason != directory.ReasonVDConflict {
					t.Fatalf("⑤ action %+v", a)
				}
				hit = true
			}
		}
		if !hit {
			t.Fatal("⑤ never evicted the resident entry")
		}
		if s.VDBank(0).Contains(l1) {
			t.Fatal("⑤ left the displaced entry in the bank")
		}
		// The bank is still occupied (by l2), so its EB stays non-empty.
		if s.VDBank(0).EmptyBitHit(l2) {
			t.Fatal("⑤ EB filters the occupied bank")
		}
		if s.Stats().VDDrop == 0 {
			t.Fatal("⑤ not counted")
		}
	})
}
