package core

import (
	"testing"

	"secdir/internal/addr"
	"secdir/internal/cachesim"
	"secdir/internal/directory"
)

// Tiny geometry so every transition is easy to force.
const (
	tSets  = 8
	tTD    = 2
	tED    = 2
	tCores = 4
)

func index(l addr.Line) int { return int(l) % tSets }

func newSlice(opts ...func(*Params)) *Slice {
	p := Params{
		Cores:  tCores,
		TDSets: tSets, TDWays: tTD,
		EDSets: tSets, EDWays: tED,
		VDSets: 8, VDWays: 2,
		NumRelocations: 4,
		Cuckoo:         true,
		EmptyBit:       true,
		Index:          cachesim.FuncIndex(index),
		AppendixAFix:   true,
		Seed:           1,
	}
	for _, o := range opts {
		o(&p)
	}
	return New(p)
}

func lineInSet(set, i int) addr.Line { return addr.Line(set + i*tSets) }

// park pushes a line held by the given sharers into their VD banks by
// overflowing the TD set. It returns the parked line.
func park(t *testing.T, s *Slice, set int, sharers []int) addr.Line {
	t.Helper()
	l := lineInSet(set, 0)
	for _, c := range sharers {
		s.Miss(c, l, false)
	}
	// Demote it to the TD by conflicting it out of the ED, then conflict it
	// out of the TD. Keep inserting fresh single-sharer lines until the
	// target's entry shows up in a VD bank (replacement is randomized).
	for i := 1; i < 64; i++ {
		s.Miss(3, lineInSet(set, i), false)
		if s.VDBank(sharers[0]).Contains(l) {
			if _, w, _ := s.Find(l); w != directory.WhereVD {
				t.Fatalf("parked line reported in %v", w)
			}
			return l
		}
	}
	t.Fatal("could not park the line in the VD")
	return 0
}

func TestTransition3ParksInSharersVDs(t *testing.T) {
	s := newSlice()
	l := park(t, s, 0, []int{0, 1})
	for _, c := range []int{0, 1} {
		if !s.VDBank(c).Contains(l) {
			t.Fatalf("sharer %d has no VD entry after ③", c)
		}
	}
	if s.VDBank(2).Contains(l) {
		t.Fatal("non-sharer gained a VD entry")
	}
	if s.Stats().TDToVD == 0 {
		t.Fatal("transition ③ not counted")
	}
	// ③ is local to the directory: the sharers' copies were never touched
	// (no InvalidateL2 actions with a conflict reason were needed to verify
	// here because park() would have panicked applying them; assert via
	// stats instead).
	if s.Stats().InclusionVictims != 0 {
		t.Fatal("③ created inclusion victims")
	}
}

func TestTransition2DropsSharerless(t *testing.T) {
	s := newSlice()
	// Lines that live only in the LLC: fetch then evict from L2.
	var acts []directory.Action
	for i := 0; i < 32; i++ {
		l := lineInSet(1, i)
		s.Miss(0, l, false)
		acts = append(acts, s.L2Evict(0, l, i%2 == 0)...)
	}
	if s.Stats().TDDrop == 0 {
		t.Fatal("sharerless TD conflicts never dropped")
	}
	// Dirty drops must write back; nothing may be invalidated.
	var wb int
	for _, a := range acts {
		switch a.Kind {
		case directory.WritebackMem:
			wb++
		case directory.InvalidateL2:
			t.Fatalf("transition ② invalidated a private copy: %+v", a)
		}
	}
	if wb == 0 {
		t.Fatal("dirty LLC drops never wrote back")
	}
}

func TestTransition4Consolidates(t *testing.T) {
	s := newSlice()
	l := park(t, s, 2, []int{0, 1})
	acts := s.L2Evict(0, l, true)
	for _, a := range acts {
		if a.Kind == directory.InvalidateL2 && a.Line == l {
			t.Fatalf("④ invalidated the line: %+v", a)
		}
	}
	m, w, ok := s.Find(l)
	if !ok || w != directory.WhereTD {
		t.Fatalf("after ④ entry in %v (ok=%v)", w, ok)
	}
	if !m.HasData || !m.Dirty {
		t.Fatalf("④ TD entry %+v, want LLC data + dirty", m)
	}
	if !m.Sharers.Has(1) || m.Sharers.Has(0) || m.Sharers.Count() != 1 {
		t.Fatalf("④ sharers %b, want only core 1", m.Sharers)
	}
	for c := 0; c < tCores; c++ {
		if s.VDBank(c).Contains(l) {
			t.Fatalf("④ left a VD entry in bank %d", c)
		}
	}
	if s.Stats().VDToTD == 0 {
		t.Fatal("transition ④ not counted")
	}
}

func TestTransition5SelfConflictOnly(t *testing.T) {
	// 1-set 1-way banks conflict instantly.
	s := newSlice(func(p *Params) { p.VDSets = 1; p.VDWays = 1; p.NumRelocations = 2 })
	l1 := park(t, s, 3, []int{0})
	// Park a second line for core 0: its insertion must evict l1 from
	// core 0's bank only, invalidating l1 from core 0's L2 (transition ⑤).
	l2 := lineInSet(4, 0)
	s.Miss(0, l2, false)
	var acts []directory.Action
	for i := 1; i < 64 && !s.VDBank(0).Contains(l2); i++ {
		res := s.Miss(3, lineInSet(4, i), false)
		acts = append(acts, res.Actions...)
	}
	var evicted bool
	for _, a := range acts {
		if a.Kind == directory.InvalidateL2 && a.Line == l1 {
			if a.Core != 0 || a.Reason != directory.ReasonVDConflict {
				t.Fatalf("⑤ action %+v", a)
			}
			evicted = true
		}
	}
	if !evicted {
		t.Fatal("VD conflict never evicted the old entry")
	}
	if s.Stats().VDDrop == 0 {
		t.Fatal("transition ⑤ not counted")
	}
}

func TestVDReadHitAllocatesRequester(t *testing.T) {
	s := newSlice()
	l := park(t, s, 5, []int{0})
	res := s.Miss(2, l, false)
	if res.Where != directory.WhereVD || res.Source != directory.SourceRemoteL2 || res.SrcCore != 0 {
		t.Fatalf("VD read: %+v", res)
	}
	if !res.VDConsulted || res.VDBanksProbed == 0 {
		t.Fatalf("VD probe accounting: %+v", res)
	}
	if !s.VDBank(2).Contains(l) || !s.VDBank(0).Contains(l) {
		t.Fatal("requester or owner lost its VD entry on a read")
	}
	if s.Stats().VDHits != 1 {
		t.Fatalf("VDHits = %d", s.Stats().VDHits)
	}
}

func TestVDWriteInvalidatesOtherBanks(t *testing.T) {
	s := newSlice()
	l := park(t, s, 6, []int{0, 1})
	res := s.Miss(2, l, true)
	if res.Where != directory.WhereVD {
		t.Fatalf("VD write: %+v", res)
	}
	var invalidated directory.Bitset
	for _, a := range res.Actions {
		if a.Kind == directory.InvalidateL2 && a.Line == l {
			if a.Reason != directory.ReasonCoherence {
				t.Fatalf("write invalidation reason %v", a.Reason)
			}
			invalidated = invalidated.Set(a.Core)
		}
	}
	if !invalidated.Has(0) || !invalidated.Has(1) {
		t.Fatalf("write did not invalidate both sharers (%b)", invalidated)
	}
	if s.VDBank(0).Contains(l) || s.VDBank(1).Contains(l) {
		t.Fatal("old sharers kept VD entries after a write")
	}
	if !s.VDBank(2).Contains(l) {
		t.Fatal("writer has no VD entry")
	}
}

func TestVDUpgrade(t *testing.T) {
	s := newSlice()
	l := park(t, s, 7, []int{0, 1})
	acts := s.Upgrade(1, l)
	var hit bool
	for _, a := range acts {
		if a.Kind == directory.InvalidateL2 && a.Core == 0 && a.Line == l {
			hit = true
		}
	}
	if !hit {
		t.Fatal("upgrade did not invalidate the other sharer")
	}
	if s.VDBank(0).Contains(l) || !s.VDBank(1).Contains(l) {
		t.Fatal("VD entries wrong after upgrade")
	}
}

func TestDisableEDTDMode(t *testing.T) {
	s := newSlice(func(p *Params) { p.DisableEDTD = true })
	l := lineInSet(0, 0)
	res := s.Miss(0, l, false)
	if res.Where != directory.WhereNone || res.Source != directory.SourceMemory {
		t.Fatalf("cold miss: %+v", res)
	}
	if !s.VDBank(0).Contains(l) {
		t.Fatal("entry not allocated in the requester's VD")
	}
	if m, w, ok := s.Find(l); !ok || w != directory.WhereVD || !m.Sharers.Has(0) {
		t.Fatalf("Find: %+v %v %v", m, w, ok)
	}
	// Second core reads: VD hit.
	res = s.Miss(1, l, false)
	if res.Where != directory.WhereVD {
		t.Fatalf("second read: %+v", res)
	}
	// Eviction drops the entry; dirty data goes to memory.
	acts := s.L2Evict(0, l, true)
	if len(acts) != 1 || acts[0].Kind != directory.WritebackMem {
		t.Fatalf("evict actions %v", acts)
	}
	if s.VDBank(0).Contains(l) {
		t.Fatal("evicting core kept its VD entry")
	}
	if !s.VDBank(1).Contains(l) {
		t.Fatal("other sharer lost its VD entry")
	}
}

func TestNoFillWhenOwnEntryDisplaced(t *testing.T) {
	// A 1-set 1-way bank with an odd relocation bound displaces the
	// incoming entry itself: the slice must report NoFill rather than
	// strand a cached line without a directory entry.
	s := newSlice(func(p *Params) {
		p.DisableEDTD = true
		p.VDSets = 1
		p.VDWays = 1
		p.NumRelocations = 1
	})
	s.Miss(0, lineInSet(0, 0), false)
	res := s.Miss(0, lineInSet(1, 0), false)
	if !res.NoFill {
		t.Fatalf("expected NoFill, got %+v", res)
	}
	for _, a := range res.Actions {
		if a.Kind == directory.InvalidateL2 && a.Line == lineInSet(1, 0) {
			t.Fatal("NoFill emitted an invalidation for the never-filled line")
		}
	}
	if s.VDBank(0).Contains(lineInSet(1, 0)) {
		t.Fatal("NoFill left a VD entry")
	}
}

func TestEmptyBitAccounting(t *testing.T) {
	s := newSlice()
	// Empty VDs: a cold miss consults the VDs but the EB filters every bank.
	res := s.Miss(0, lineInSet(0, 0), false)
	if !res.VDConsulted || res.VDBanksProbed != 0 {
		t.Fatalf("EB should filter all banks on empty VDs: %+v", res)
	}
	st := s.Stats()
	if st.VDLookupsNoEB != uint64(tCores) || st.VDLookups != 0 {
		t.Fatalf("lookup counters: %d/%d", st.VDLookups, st.VDLookupsNoEB)
	}

	// Without the EB, every bank is probed.
	s2 := newSlice(func(p *Params) { p.EmptyBit = false })
	res = s2.Miss(0, lineInSet(0, 0), false)
	if res.VDBanksProbed != tCores {
		t.Fatalf("no-EB probe count = %d", res.VDBanksProbed)
	}
}

func TestVDSelfConflictsCounter(t *testing.T) {
	s := newSlice(func(p *Params) {
		p.DisableEDTD = true
		p.VDSets = 2
		p.VDWays = 1
		p.NumRelocations = 2
	})
	for i := 0; i < 32; i++ {
		res := s.Miss(0, lineInSet(i%tSets, i/tSets), false)
		// apply self-invalidations implicitly: ignore, slice-level test
		_ = res
	}
	if s.VDSelfConflicts() == 0 {
		t.Fatal("overfilled bank reported no self-conflicts")
	}
}
