// Package core implements SecDir, the paper's primary contribution: a
// directory slice that re-assigns Extended Directory ways to per-core,
// cuckoo-hashed Victim Directory (VD) banks (Figure 2(b)).
//
// Entries displaced from the TD that still have sharers migrate into the
// sharers' private VD banks (transition ③ of Table 2) instead of being
// discarded, so a cross-core attacker cannot force inclusion victims in a
// victim's private caches. VD conflicts are self-conflicts by construction
// (transition ⑤) and leak nothing under the paper's threat model.
package core

import (
	"secdir/internal/addr"
	"secdir/internal/cachesim"
	"secdir/internal/cuckoo"
	"secdir/internal/directory"
	"secdir/internal/metrics"
)

// Slice is one SecDir directory slice: a TD, a narrower ED, and one VD bank
// per core.
type Slice struct {
	d     *directory.TDED
	vd    []*cuckoo.Table
	banks int

	// emptyBit enables the per-set Empty Bit arrays that filter accesses to
	// empty VD sets (§5.2.2). It affects only the look-up counters (and,
	// through them, the latency the engine charges).
	emptyBit bool

	// disableEDTD emulates the strongest adversary of §9, which fully
	// controls the shared ED and TD: the victim can use only its VDs.
	disableEDTD bool

	// searchBatch limits the banks searched per round (0 = all).
	searchBatch int

	// Metric handles (nil when no registry is attached; recording is then a
	// branch per event). Shared across slices by name, so they aggregate
	// machine-wide.
	mxEBFiltered *metrics.Counter
	mxVDProbes   *metrics.Counter
	mxTDToVD     *metrics.Counter
	mxVDDrop     *metrics.Counter
}

// Verify interface conformance.
var _ directory.Slice = (*Slice)(nil)

// Params configures a SecDir slice.
type Params struct {
	Cores          int
	TDSets, TDWays int
	EDSets, EDWays int
	VDSets, VDWays int
	NumRelocations int
	Cuckoo         bool // cuckoo (CKVD) vs. single-hash (NoCKVD) banks
	EmptyBit       bool
	DisableEDTD    bool
	// SearchBatch limits how many banks one search round touches (§5.1);
	// 0 searches all banks in parallel. Reads stop at the first hit.
	SearchBatch int
	// StashSize adds a per-bank overflow stash to the cuckoo tables.
	StashSize    int
	Index        cachesim.Index
	AppendixAFix bool
	Seed         int64
}

// New returns an empty SecDir slice.
func New(p Params) *Slice {
	s := &Slice{
		d:           directory.NewTDED(p.TDSets, p.TDWays, p.EDSets, p.EDWays, p.Index, p.AppendixAFix, p.Seed),
		vd:          make([]*cuckoo.Table, p.Cores),
		banks:       p.Cores,
		emptyBit:    p.EmptyBit,
		disableEDTD: p.DisableEDTD,
		searchBatch: p.SearchBatch,
	}
	for c := range s.vd {
		s.vd[c] = cuckoo.New(cuckoo.Config{
			Sets:           p.VDSets,
			Ways:           p.VDWays,
			NumRelocations: p.NumRelocations,
			Cuckoo:         p.Cuckoo,
			StashSize:      p.StashSize,
			Seed:           p.Seed + int64(c)*7919,
		})
	}
	s.d.TDVictim = s.tdVictim
	return s
}

// AttachMetrics registers this slice's instruments in the registry. Handles
// are looked up by name, so every slice of a machine shares one series:
// "vd/reloc_depth" (cuckoo relocation-chain depth per VD insertion),
// "vd/eb_churn" (Empty-Bit set transitions), "vd/eb_filtered" /
// "vd/lookups" (bank probes skipped by / surviving the EB filter), and the
// "dir/td_to_vd" / "dir/vd_drop" migration counters. A nil registry detaches
// nothing and costs nothing.
func (s *Slice) AttachMetrics(r *metrics.Registry) {
	s.mxEBFiltered = r.Counter("vd/eb_filtered")
	s.mxVDProbes = r.Counter("vd/lookups")
	s.mxTDToVD = r.Counter("dir/td_to_vd")
	s.mxVDDrop = r.Counter("dir/vd_drop")
	depth := r.Histogram("vd/reloc_depth")
	churn := r.Counter("vd/eb_churn")
	for _, b := range s.vd {
		b.DepthHist = depth
		b.EBChurn = churn
	}
}

// Reset restores the slice to the state New would produce with the given
// seed, reusing the TD/ED and VD-bank storage: the shared structures are
// emptied and every cuckoo bank reseeded exactly as construction seeds them
// (seed + bank*7919). Attached metric handles are preserved.
func (s *Slice) Reset(seed int64) {
	s.d.Reset(seed)
	for c, b := range s.vd {
		b.Reset(seed + int64(c)*7919)
	}
}

// tdVictim disposes of a TD conflict victim per Figure 3(b), appending the
// side effects to the slice's action buffer.
func (s *Slice) tdVictim(line addr.Line, m directory.Meta) {
	if m.HasData && m.Dirty {
		// The LLC copy is the up-to-date one; it goes back to memory
		// whether or not sharers keep clean copies.
		s.d.Buf.Emit(directory.Action{Kind: directory.WritebackMem, Line: line, Reason: directory.ReasonTDConflict})
	}
	if m.Sharers == 0 {
		// Transition ②: the line lives only in the LLC, which means the
		// victim itself evicted it from its private cache (a self-conflict).
		// Discarding it is secure.
		s.d.Stat.TDDrop++
		return
	}
	// Transition ③: migrate the entry into the VD bank of every sharer.
	// This is local to the directory: no coherence transactions, no L2 state
	// changes, and the sharers keep their lines.
	s.d.Stat.TDToVD++
	s.mxTDToVD.Inc()
	m.Sharers.ForEach(func(c int) {
		s.insertVD(c, line)
	})
}

// insertVD places the line in core's VD bank. A cuckoo conflict evicts some
// entry of the same bank (transition ⑤): the corresponding line is
// invalidated from that core's L2 only — a self-conflict, emitted into the
// slice's action buffer. If the insertion of the line itself fails (the
// relocation chain ends by displacing the new entry), the line simply gains
// no VD entry and the caller invalidates it.
func (s *Slice) insertVD(core int, line addr.Line) {
	victim, evicted := s.vd[core].Insert(line)
	if !evicted {
		return
	}
	s.d.Stat.VDDrop++
	s.mxVDDrop.Inc()
	s.d.Buf.Emit(directory.Action{
		Kind: directory.InvalidateL2, Core: core, Line: victim, Reason: directory.ReasonVDConflict,
	})
}

// vdSearch assembles the presence bit vector of Figure 4(b), counting bank
// look-ups with and without the Empty Bit filter. With a search-batch limit
// (§5.1), banks are visited batch by batch and — when stopAtFirst is set, as
// on read requests — the search is called off as soon as a match is found.
// It returns the sharers found and the number of batch rounds visited.
func (s *Slice) vdSearch(line addr.Line, stopAtFirst bool) (directory.Bitset, int) {
	batch := s.searchBatch
	if batch <= 0 || batch > s.banks {
		batch = s.banks
	}
	// All banks share one geometry, so the skewing hashes agree across banks:
	// hash the line once and probe every bank at the precomputed pair — the
	// hardware computes h1/h2 once per request too, not once per bank.
	s0, s1 := s.vd[0].SetPair(line)
	var sh directory.Bitset
	rounds := 0
	for start := 0; start < s.banks; start += batch {
		rounds++
		end := start + batch
		if end > s.banks {
			end = s.banks
		}
		for c := start; c < end; c++ {
			s.d.Stat.VDLookupsNoEB++
			if s.emptyBit && s.vd[c].EmptyBitHitAt(s0, s1) {
				s.mxEBFiltered.Inc()
				continue
			}
			s.d.Stat.VDLookups++
			s.mxVDProbes.Inc()
			if s.vd[c].ContainsAt(line, s0, s1) {
				sh = sh.Set(c)
			}
		}
		if stopAtFirst && sh != 0 {
			break
		}
	}
	return sh, rounds
}

// vdSharers performs a full (non-early-out) VD search.
func (s *Slice) vdSharers(line addr.Line) directory.Bitset {
	sh, _ := s.vdSearch(line, false)
	return sh
}

// Miss implements directory.Slice.
func (s *Slice) Miss(core int, line addr.Line, write bool) directory.MissResult {
	s.d.Buf.Reset()
	var edCur, tdCur cachesim.Cursor
	if !s.disableEDTD {
		m, slot, c1 := s.d.ED.AccessCursor(line)
		if slot >= 0 {
			s.d.Stat.EDHits++
			res := directory.MissResult{
				Where:   directory.WhereED,
				Source:  directory.SourceRemoteL2,
				SrcCore: int32(m.Sharers.First()),
			}
			edServe(&s.d.Buf, m, core, line, write)
			res.Actions = s.d.Buf.Actions()
			return res
		}
		edCur = c1
		m, slot, c2 := s.d.TD.AccessCursor(line)
		if slot >= 0 {
			s.d.Stat.TDHits++
			res := directory.MissResult{Where: directory.WhereTD}
			if !m.HasData {
				res.SrcCore = int32(m.Sharers.First())
			}
			if write {
				meta := *m
				if meta.HasData {
					res.Source = directory.SourceLLC
				} else {
					res.Source = directory.SourceRemoteL2
				}
				s.d.PromoteTDToEDAt(edCur, slot, core, line, meta)
			} else {
				fromLLC := s.d.ReadHitTDAt(edCur, slot, core, line, m)
				if fromLLC {
					res.Source = directory.SourceLLC
				} else {
					res.Source = directory.SourceRemoteL2
				}
			}
			res.Actions = s.d.Buf.Actions()
			return res
		}
		tdCur = c2
	}

	// ED and TD missed: consult the Victim Directories (§5.1). Reads call
	// off the search at the first matching bank; writes need the complete
	// sharer vector.
	probedBefore := s.d.Stat.VDLookups
	sharers, rounds := s.vdSearch(line, !write)
	res := directory.MissResult{
		VDConsulted:   true,
		VDBanksProbed: uint8(s.d.Stat.VDLookups - probedBefore),
		VDBatchRounds: uint8(rounds),
	}
	if sharers != 0 {
		s.d.Stat.VDHits++
		res.Where = directory.WhereVD
		res.Source = directory.SourceRemoteL2
		res.SrcCore = int32(sharers.First())
		if write {
			// Invalidate every sharer and its VD entry; the writer's entry
			// is allocated in the writer's own bank (§5.1).
			sharers.ForEach(func(c int) {
				s.vd[c].Remove(line)
				s.d.Buf.Emit(directory.Action{
					Kind: directory.InvalidateL2, Core: c, Line: line, Reason: directory.ReasonCoherence,
				})
			})
		}
		s.allocRequester(core, line, &res)
		res.Actions = s.d.Buf.Actions()
		return res
	}

	// Nothing anywhere: fetch from memory (transition ①). The entry goes to
	// the ED, or to the requester's VD bank when the shared structures are
	// disabled (§9's strongest-adversary emulation).
	s.d.Stat.MemFetches++
	res.Where = directory.WhereNone
	res.Source = directory.SourceMemory
	res.Exclusive = !write
	if s.disableEDTD {
		s.allocRequester(core, line, &res)
	} else {
		s.d.InsertEDAt(edCur, tdCur, line, directory.Meta{
			Sharers: directory.Bitset(0).Set(core), Dirty: write,
		})
	}
	res.Actions = s.d.Buf.Actions()
	return res
}

// allocRequester inserts the requester's VD entry for a line served out of
// the VDs (or out of memory in disableEDTD mode), emitting any self-conflict
// invalidation into the slice's action buffer. If the cuckoo chain ends by
// displacing the new entry itself, the fill is suppressed (NoFill) instead of
// caching a line with no directory entry.
func (s *Slice) allocRequester(core int, line addr.Line, res *directory.MissResult) {
	victim, evicted := s.vd[core].Insert(line)
	if !evicted {
		return
	}
	s.d.Stat.VDDrop++
	s.mxVDDrop.Inc()
	if victim == line {
		res.NoFill = true
		return
	}
	s.d.Buf.Emit(directory.Action{
		Kind: directory.InvalidateL2, Core: core, Line: victim, Reason: directory.ReasonVDConflict,
	})
}

// edServe mirrors the baseline's in-place ED update for a miss, appending a
// write's coherence invalidations to buf.
func edServe(buf *directory.ActionBuf, m *directory.Meta, core int, line addr.Line, write bool) {
	if !write {
		m.Sharers = m.Sharers.Set(core)
		return
	}
	m.Sharers.ForEach(func(c int) {
		if c != core {
			buf.Emit(directory.Action{Kind: directory.InvalidateL2, Core: c, Line: line, Reason: directory.ReasonCoherence})
		}
	})
	m.Sharers = directory.Bitset(0).Set(core)
	m.Dirty = true
}

// Upgrade implements directory.Slice.
func (s *Slice) Upgrade(core int, line addr.Line) []directory.Action {
	s.d.Buf.Reset()
	if !s.disableEDTD {
		if m, ok := s.d.ED.Access(line); ok {
			edServe(&s.d.Buf, m, core, line, true)
			return s.d.Buf.Actions()
		}
		if m, ok := s.d.TD.Access(line); ok {
			s.d.Stat.TDHits++
			s.d.PromoteTDToED(core, line, *m)
			return s.d.Buf.Actions()
		}
	}
	sharers := s.vdSharers(line)
	if !sharers.Has(core) {
		panic("core: upgrade by a core with no VD entry or directory entry")
	}
	sharers.ForEach(func(c int) {
		if c == core {
			return
		}
		s.vd[c].Remove(line)
		s.d.Buf.Emit(directory.Action{
			Kind: directory.InvalidateL2, Core: c, Line: line, Reason: directory.ReasonCoherence,
		})
	})
	return s.d.Buf.Actions()
}

// L2Evict implements directory.Slice. A line whose entry lives in the VDs is
// consolidated into a single TD entry (transition ④): all banks are searched,
// matching entries are removed, and the line is written into the LLC.
func (s *Slice) L2Evict(core int, line addr.Line, dirty bool) []directory.Action {
	s.d.Buf.Reset()
	if !s.disableEDTD {
		if m, slot := s.d.ED.ProbeSlot(line); slot >= 0 {
			meta := *m
			if !meta.Sharers.Has(core) {
				panic("core: L2 evict by a non-sharer (ED)")
			}
			s.d.ED.RemoveSlot(slot)
			s.d.Stat.EDToTD++
			meta.Sharers = meta.Sharers.Clear(core)
			meta.HasData = true
			meta.Dirty = dirty
			s.d.InsertTD(line, meta)
			return s.d.Buf.Actions()
		}
		if m, ok := s.d.TD.Probe(line); ok {
			if !m.Sharers.Has(core) {
				panic("core: L2 evict by a non-sharer (TD)")
			}
			m.Sharers = m.Sharers.Clear(core)
			m.HasData = true
			m.Dirty = m.Dirty || dirty
			return nil
		}
	}

	if s.disableEDTD {
		// No LLC/TD to receive the victim: the evicting core's VD entry is
		// dropped with the line; other sharers are undisturbed.
		if !s.vd[core].Remove(line) {
			panic("core: L2 evict for a line with no directory entry")
		}
		if dirty {
			s.d.Buf.Emit(directory.Action{Kind: directory.WritebackMem, Line: line, Reason: directory.ReasonCoherence})
		}
		return s.d.Buf.Actions()
	}

	// Transition ④: the entry must be in the VDs; consolidate.
	var sharers directory.Bitset
	s0, s1 := s.vd[0].SetPair(line)
	for c := 0; c < s.banks; c++ {
		if s.vd[c].ContainsAt(line, s0, s1) {
			sharers = sharers.Set(c)
			s.vd[c].Remove(line)
		}
	}
	if !sharers.Has(core) {
		panic("core: L2 evict for a line with no directory entry")
	}
	s.d.Stat.VDToTD++
	meta := directory.Meta{
		Sharers: sharers.Clear(core),
		HasData: true,
		Dirty:   dirty,
	}
	s.d.InsertTD(line, meta)
	return s.d.Buf.Actions()
}

// Find implements directory.Slice.
func (s *Slice) Find(line addr.Line) (directory.Meta, directory.Where, bool) {
	if m, w, ok := s.d.Find(line); ok {
		return m, w, ok
	}
	var sh directory.Bitset
	s0, s1 := s.vd[0].SetPair(line)
	for c := 0; c < s.banks; c++ {
		if s.vd[c].ContainsAt(line, s0, s1) {
			sh = sh.Set(c)
		}
	}
	if sh != 0 {
		return directory.Meta{Sharers: sh}, directory.WhereVD, true
	}
	return directory.Meta{}, directory.WhereNone, false
}

// Stats implements directory.Slice.
func (s *Slice) Stats() *directory.Stats { return &s.d.Stat }

// VDBank exposes core's VD bank in this slice for tests and experiments.
func (s *Slice) VDBank(core int) *cuckoo.Table { return s.vd[core] }

// TDED exposes the shared structures for tests and the attack toolkit.
func (s *Slice) TDED() *directory.TDED { return s.d }

// VDSelfConflicts returns the total cuckoo conflicts across all banks of this
// slice — the CKVD/NoCKVD metric of Table 6.
func (s *Slice) VDSelfConflicts() uint64 {
	var n uint64
	for _, b := range s.vd {
		n += b.Conflicts
	}
	return n
}
