package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"secdir/internal/config"
	"secdir/internal/leakage"
	"secdir/internal/metrics"
)

// testServer pairs a Server with an httptest front end.
type testServer struct {
	srv *Server
	ts  *httptest.Server
	reg *metrics.Registry
}

func newTestServer(t *testing.T, cfg config.ServerConfig) *testServer {
	t.Helper()
	reg := metrics.New()
	srv, err := New(cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_, _ = srv.Drain(ctx)
	})
	return &testServer{srv: srv, ts: ts, reg: reg}
}

func quickConfig() config.ServerConfig {
	cfg := config.DefaultServerConfig()
	cfg.Workers = 2
	cfg.QueueDepth = 8
	cfg.JobTimeout = 0
	return cfg
}

// quickReplay is a replay spec that finishes in milliseconds.
func quickReplay() JobSpec {
	return JobSpec{
		Kind:     KindReplay,
		Workload: "uniform:256",
		Cores:    2,
		Warmup:   500,
		Measure:  500,
	}
}

// hugeReplay is a replay spec that would run effectively forever without
// cancellation.
func hugeReplay() JobSpec {
	return JobSpec{
		Kind:     KindReplay,
		Workload: "uniform:4096",
		Cores:    2,
		Warmup:   0,
		Measure:  1 << 40,
	}
}

// submit POSTs a spec and decodes the response; wantCode 0 means 202.
func (s *testServer) submit(t *testing.T, spec JobSpec, wantCode int) JobStatus {
	t.Helper()
	if wantCode == 0 {
		wantCode = http.StatusAccepted
	}
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(s.ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		var e apiError
		_ = json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("submit: status %d, want %d (%s)", resp.StatusCode, wantCode, e.Error)
	}
	var st JobStatus
	if wantCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		if st.ID == "" || st.State != StateQueued {
			t.Fatalf("submit: unexpected status %+v", st)
		}
	}
	return st
}

// getStatus fetches one job's status.
func (s *testServer) getStatus(t *testing.T, id string) JobStatus {
	t.Helper()
	resp, err := http.Get(s.ts.URL + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s: HTTP %d", id, resp.StatusCode)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitState polls until the job reaches want (or any terminal state if want
// is empty), failing on timeout.
func (s *testServer) waitState(t *testing.T, id string, want JobState, timeout time.Duration) JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st := s.getStatus(t, id)
		if (want != "" && st.State == want) || (want == "" && st.State.Terminal()) {
			return st
		}
		if want != "" && st.State.Terminal() {
			t.Fatalf("job %s reached terminal state %s (err %q), want %s", id, st.State, st.Err, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s after %v, want %s", id, st.State, timeout, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSubmitPollResult is the basic lifecycle: a replay job and an analytic
// experiment job are queued, complete, and serve typed results.
func TestSubmitPollResult(t *testing.T) {
	s := newTestServer(t, quickConfig())

	// Result before done answers 409.
	st := s.submit(t, hugeReplay(), 0)
	if resp, err := http.Get(s.ts.URL + "/jobs/" + st.ID + "/result"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusConflict {
			t.Fatalf("result of pending job: HTTP %d, want 409", resp.StatusCode)
		}
	}
	// Unknown job answers 404.
	if resp, err := http.Get(s.ts.URL + "/jobs/nope"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("unknown job: HTTP %d, want 404", resp.StatusCode)
		}
	}
	s.cancelJob(t, st.ID)

	rep := s.submit(t, quickReplay(), 0)
	exp := s.submit(t, JobSpec{Kind: KindExperiment, Experiments: []string{"A1", "T7"}}, 0)

	s.waitState(t, rep.ID, StateDone, 30*time.Second)
	s.waitState(t, exp.ID, StateDone, 30*time.Second)

	var rb struct {
		State  JobState     `json:"state"`
		Result ReplayResult `json:"result"`
	}
	s.getResult(t, rep.ID, &rb)
	if rb.State != StateDone || rb.Result.TotalIPC <= 0 || rb.Result.Workload != "uniform:256" {
		t.Fatalf("replay result: %+v", rb)
	}

	var eb struct {
		Result []ExperimentResult `json:"result"`
	}
	s.getResult(t, exp.ID, &eb)
	if len(eb.Result) != 2 || eb.Result[0].ID != "A1" || eb.Result[1].ID != "T7" {
		t.Fatalf("experiment result: %+v", eb.Result)
	}

	// The list endpoint sees every job in submission order.
	resp, err := http.Get(s.ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list []JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list) != 3 {
		t.Fatalf("job list has %d entries, want 3", len(list))
	}
}

// getResult fetches and decodes a done job's result body.
func (s *testServer) getResult(t *testing.T, id string, into any) {
	t.Helper()
	resp, err := http.Get(s.ts.URL + "/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result %s: HTTP %d", id, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatal(err)
	}
}

// cancelJob POSTs the cancel endpoint.
func (s *testServer) cancelJob(t *testing.T, id string) {
	t.Helper()
	resp, err := http.Post(s.ts.URL+"/jobs/"+id+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel %s: HTTP %d", id, resp.StatusCode)
	}
}

// TestCancelMidRun submits a job that would run for days and cancels it once
// running; the job must stop promptly with state canceled.
func TestCancelMidRun(t *testing.T) {
	s := newTestServer(t, quickConfig())
	st := s.submit(t, hugeReplay(), 0)
	s.waitState(t, st.ID, StateRunning, 10*time.Second)
	start := time.Now()
	s.cancelJob(t, st.ID)
	final := s.waitState(t, st.ID, StateCanceled, 10*time.Second)
	if d := time.Since(start); d > 10*time.Second {
		t.Fatalf("cancellation took %v", d)
	}
	if final.Err == "" {
		t.Fatal("canceled job carries no error message")
	}
	// Result of a canceled job answers 410.
	resp, err := http.Get(s.ts.URL + "/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("result of canceled job: HTTP %d, want 410", resp.StatusCode)
	}
}

// TestQueueOverflow fills a 1-worker/1-slot server and checks the 429
// backpressure path, then releases the jobs.
func TestQueueOverflow(t *testing.T) {
	cfg := quickConfig()
	cfg.Workers = 1
	cfg.QueueDepth = 1
	s := newTestServer(t, cfg)

	running := s.submit(t, hugeReplay(), 0)
	s.waitState(t, running.ID, StateRunning, 10*time.Second)
	queued := s.submit(t, hugeReplay(), 0) // fills the single queue slot
	s.submit(t, quickReplay(), http.StatusTooManyRequests)

	if v := s.reg.Counter("server/jobs_rejected").Value(); v != 1 {
		t.Fatalf("jobs_rejected = %d, want 1", v)
	}
	s.cancelJob(t, queued.ID)
	s.cancelJob(t, running.ID)
	s.waitState(t, running.ID, StateCanceled, 10*time.Second)
	// With the worker free again, submissions are accepted once more.
	ok := s.submit(t, quickReplay(), 0)
	s.waitState(t, ok.ID, StateDone, 30*time.Second)
}

// TestCancelWhileQueued cancels a job before any worker picks it up; the
// worker must discard it without running.
func TestCancelWhileQueued(t *testing.T) {
	cfg := quickConfig()
	cfg.Workers = 1
	cfg.QueueDepth = 2
	s := newTestServer(t, cfg)

	running := s.submit(t, hugeReplay(), 0)
	s.waitState(t, running.ID, StateRunning, 10*time.Second)
	queued := s.submit(t, hugeReplay(), 0)
	s.cancelJob(t, queued.ID)
	if st := s.getStatus(t, queued.ID); st.State != StateCanceled {
		t.Fatalf("queued job state = %s after cancel, want canceled", st.State)
	}
	s.cancelJob(t, running.ID)
	s.waitState(t, running.ID, StateCanceled, 10*time.Second)
	// The canceled-while-queued job must never transition to running.
	if st := s.getStatus(t, queued.ID); st.State != StateCanceled || !st.Started.IsZero() {
		t.Fatalf("queued job ran anyway: %+v", st)
	}
}

// TestStreamNDJSON reads a job's progress stream: one JSON object per line,
// ending with a terminal event.
func TestStreamNDJSON(t *testing.T) {
	s := newTestServer(t, quickConfig())
	st := s.submit(t, JobSpec{Kind: KindExperiment, Experiments: []string{"A1", "F5", "T7"}}, 0)

	resp, err := http.Get(s.ts.URL + "/jobs/" + st.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}
	var events []Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(events) < 2 {
		t.Fatalf("stream delivered %d events, want at least start+finish", len(events))
	}
	last := events[len(events)-1]
	if last.State != StateDone || last.Stage != "finish" {
		t.Fatalf("stream's final event: %+v", last)
	}
	for i, e := range events {
		if e.JobID != st.ID {
			t.Fatalf("event %d has job id %q", i, e.JobID)
		}
		if i > 0 && e.Seq <= events[i-1].Seq {
			t.Fatalf("event sequence not increasing: %d then %d", events[i-1].Seq, e.Seq)
		}
	}
}

// TestGracefulDrain: draining lets a started job finish, then refuses new
// submissions with 503.
func TestGracefulDrain(t *testing.T) {
	s := newTestServer(t, quickConfig())
	st := s.submit(t, quickReplay(), 0)

	// Wait for a worker to pick the job up; a still-queued job would be
	// requeued by the drain rather than run.
	deadline := time.Now().Add(10 * time.Second)
	for s.getStatus(t, st.ID).State == StateQueued {
		if time.Now().After(deadline) {
			t.Fatalf("job %s never left the queue", st.ID)
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	requeued, err := s.srv.Drain(ctx)
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	if len(requeued) != 0 {
		t.Fatalf("drain requeued %v, want none (the job had started)", requeued)
	}
	if got := s.getStatus(t, st.ID); got.State != StateDone {
		t.Fatalf("job state after drain = %s, want done", got.State)
	}
	s.submit(t, quickReplay(), http.StatusServiceUnavailable)

	// healthz reports draining with 503.
	resp, err := http.Get(s.ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hb struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hb); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || hb.Status != "draining" {
		t.Fatalf("healthz while draining: HTTP %d, status %q", resp.StatusCode, hb.Status)
	}
}

// TestDrainDeadlineCancelsJobs: a drain whose context expires cancels the
// in-flight jobs instead of waiting forever.
func TestDrainDeadlineCancelsJobs(t *testing.T) {
	s := newTestServer(t, quickConfig())
	st := s.submit(t, hugeReplay(), 0)
	s.waitState(t, st.ID, StateRunning, 10*time.Second)

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if _, err := s.srv.Drain(ctx); err != context.DeadlineExceeded {
		t.Fatalf("drain error = %v, want deadline exceeded", err)
	}
	if got := s.getStatus(t, st.ID); got.State != StateCanceled {
		t.Fatalf("job state after forced drain = %s, want canceled", got.State)
	}
}

// TestDrainRequeuesQueuedJobs: a graceful drain pulls queued-but-unstarted
// jobs back out of the queue, marks them requeued, and returns their IDs in
// submission order instead of dropping them.
func TestDrainRequeuesQueuedJobs(t *testing.T) {
	cfg := quickConfig()
	cfg.Workers = 1
	cfg.QueueDepth = 4
	s := newTestServer(t, cfg)

	running := s.submit(t, hugeReplay(), 0)
	s.waitState(t, running.ID, StateRunning, 10*time.Second)
	q1 := s.submit(t, quickReplay(), 0)
	q2 := s.submit(t, quickReplay(), 0)

	// Free the lone worker shortly after the drain starts so Drain can
	// return; the queued jobs must already have been pulled, not run.
	go func() {
		time.Sleep(200 * time.Millisecond)
		s.cancelJob(t, running.ID)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	requeued, err := s.srv.Drain(ctx)
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	if len(requeued) != 2 || requeued[0] != q1.ID || requeued[1] != q2.ID {
		t.Fatalf("drain requeued %v, want [%s %s]", requeued, q1.ID, q2.ID)
	}
	for _, id := range requeued {
		st := s.getStatus(t, id)
		if st.State != StateRequeued || !st.Started.IsZero() {
			t.Fatalf("job %s after drain: %+v, want state requeued and never started", id, st)
		}
		if !strings.Contains(st.Err, "resubmit") {
			t.Fatalf("requeued job %s error %q does not tell the operator to resubmit", id, st.Err)
		}
		// A requeued job has no result.
		resp, err := http.Get(s.ts.URL + "/jobs/" + id + "/result")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusGone {
			t.Fatalf("result of requeued job: HTTP %d, want 410", resp.StatusCode)
		}
	}
	if v := s.reg.Counter("server/jobs_requeued").Value(); v != 2 {
		t.Fatalf("server/jobs_requeued = %d, want 2", v)
	}
}

// TestJobTimeout: a job exceeding the per-job budget fails with a timeout
// error.
func TestJobTimeout(t *testing.T) {
	cfg := quickConfig()
	cfg.JobTimeout = 100 * time.Millisecond
	s := newTestServer(t, cfg)
	st := s.submit(t, hugeReplay(), 0)
	final := s.waitState(t, st.ID, StateFailed, 30*time.Second)
	if !strings.Contains(final.Err, "timeout") {
		t.Fatalf("timeout failure message: %q", final.Err)
	}
}

// TestBadSpecRejected: malformed and invalid submissions answer 400.
func TestBadSpecRejected(t *testing.T) {
	s := newTestServer(t, quickConfig())
	for _, body := range []string{
		`{`,
		`{"kind":"nope"}`,
		`{"kind":"replay","workload":"wat"}`, // parse failure happens at run time
		`{"kind":"experiment","experiments":["ZZ"]}`,
		`{"kind":"replay","cores":3}`,
		`{"unknown_field":1,"kind":"replay"}`,
	} {
		resp, err := http.Post(s.ts.URL+"/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		want := http.StatusBadRequest
		if body == `{"kind":"replay","workload":"wat"}` {
			want = http.StatusAccepted // spec-valid; fails when run
		}
		if resp.StatusCode != want {
			t.Fatalf("submit %s: HTTP %d, want %d", body, resp.StatusCode, want)
		}
	}
}

// TestMetricz: after jobs complete, the merged snapshot carries both the
// server's operational counters and the folded per-job simulation counters.
func TestMetricz(t *testing.T) {
	s := newTestServer(t, quickConfig())
	st := s.submit(t, quickReplay(), 0)
	s.waitState(t, st.ID, StateDone, 30*time.Second)

	resp, err := http.Get(s.ts.URL + "/metricz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var mb struct {
		Snapshot metrics.Snapshot `json:"snapshot"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&mb); err != nil {
		t.Fatal(err)
	}
	if got := mb.Snapshot.Counters["server/jobs_done"]; got != 1 {
		t.Fatalf("server/jobs_done = %d, want 1", got)
	}
	// The replay engine's counters were folded in from the job's child
	// registry.
	var simCounters int
	for name := range mb.Snapshot.Counters {
		if strings.HasPrefix(name, "engine/") || strings.HasPrefix(name, "dir/") {
			simCounters++
		}
	}
	if simCounters == 0 {
		t.Fatalf("no simulation counters in /metricz snapshot: %v", mb.Snapshot.Counters)
	}
}

// TestConcurrentJobsSharedRegistry is the -race stress test: many concurrent
// jobs hammer the one shared server registry (and their own child
// registries) while /metricz, /healthz and the job list are polled
// continuously.
func TestConcurrentJobsSharedRegistry(t *testing.T) {
	cfg := quickConfig()
	cfg.Workers = 4
	cfg.QueueDepth = 64
	s := newTestServer(t, cfg)

	const jobs = 24
	ids := make([]string, 0, jobs)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			spec := quickReplay()
			if i%3 == 0 {
				spec = JobSpec{Kind: KindExperiment, Experiments: []string{"A1", "F5", "T7"}}
			}
			st := s.submit(t, spec, 0)
			mu.Lock()
			ids = append(ids, st.ID)
			mu.Unlock()
		}(i)
	}

	stop := make(chan struct{})
	var pollers sync.WaitGroup
	for _, path := range []string{"/metricz", "/healthz", "/jobs"} {
		pollers.Add(1)
		go func(path string) {
			defer pollers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(s.ts.URL + path)
				if err == nil {
					resp.Body.Close()
				}
				time.Sleep(time.Millisecond)
			}
		}(path)
	}

	wg.Wait()
	for _, id := range ids {
		s.waitState(t, id, StateDone, 60*time.Second)
	}
	close(stop)
	pollers.Wait()

	if v := s.reg.Counter("server/jobs_done").Value(); v != jobs {
		t.Fatalf("server/jobs_done = %d, want %d", v, jobs)
	}
}

// TestLeakJob runs the Monte-Carlo leakage lab through the job server: the
// leak kind normalizes, runs, streams trial-level progress over NDJSON, and
// serves a leakage.Report whose verdicts match the paper's claim.
func TestLeakJob(t *testing.T) {
	s := newTestServer(t, quickConfig())

	// A bad strategy name is rejected at submission time.
	s.submit(t, JobSpec{Kind: KindLeak, Strategies: []string{"nosuch"}}, http.StatusBadRequest)

	st := s.submit(t, JobSpec{
		Kind:       KindLeak,
		Configs:    []string{"skylake-unfixed", "secdir"},
		Strategies: []string{"evictreload"},
		Trials:     30,
		Rounds:     8,
	}, 0)

	// Stream the NDJSON progress while the job runs: trial-level events carry
	// the cell's stage label and climb toward the grid-wide trial total.
	resp, err := http.Get(s.ts.URL + "/jobs/" + st.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sawTrials bool
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if strings.Contains(e.Stage, "/evictreload") {
			sawTrials = true
			if e.Total != 60 || e.Done < 1 || e.Done > 60 {
				t.Fatalf("trial progress event out of range: %+v", e)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawTrials {
		t.Fatal("stream carried no trial-level leakage progress events")
	}

	s.waitState(t, st.ID, StateDone, 60*time.Second)
	var rb struct {
		State  JobState       `json:"state"`
		Result leakage.Report `json:"result"`
	}
	s.getResult(t, st.ID, &rb)
	if len(rb.Result.Verdicts) != 2 {
		t.Fatalf("leak result has %d verdicts, want 2: %+v", len(rb.Result.Verdicts), rb.Result)
	}
	base, ok := rb.Result.Find("skylake-unfixed", "evictreload")
	if !ok || !base.Leak {
		t.Fatalf("skylake-unfixed/evictreload: ok=%v verdict=%+v, want a leak", ok, base)
	}
	sec, ok := rb.Result.Find("secdir", "evictreload")
	if !ok || sec.Leak {
		t.Fatalf("secdir/evictreload: ok=%v verdict=%+v, want no leak", ok, sec)
	}
	// The job's leakage counters fold into the cumulative /metricz snapshot
	// once the job finishes.
	mresp, err := http.Get(s.ts.URL + "/metricz")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var mb struct {
		Snapshot metrics.Snapshot `json:"snapshot"`
	}
	if err := json.NewDecoder(mresp.Body).Decode(&mb); err != nil {
		t.Fatal(err)
	}
	if v := mb.Snapshot.Counters["leakage/trials_total"]; v != 60 {
		t.Fatalf("/metricz leakage/trials_total = %d, want 60", v)
	}
}
