package server

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// JobState is a job's position in its lifecycle.
type JobState string

const (
	// StateQueued: accepted, waiting for a worker.
	StateQueued JobState = "queued"
	// StateRunning: a worker is executing the job.
	StateRunning JobState = "running"
	// StateDone: finished successfully; the result is available.
	StateDone JobState = "done"
	// StateFailed: finished with an error (including timeout).
	StateFailed JobState = "failed"
	// StateCanceled: cancelled before completing (by request or drain).
	StateCanceled JobState = "canceled"
	// StateRequeued: pulled back out of the queue by a graceful drain before
	// any work ran; the job is safe to resubmit verbatim elsewhere.
	StateRequeued JobState = "requeued"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled || s == StateRequeued
}

// Event is one progress record of a running job, streamed as NDJSON.
type Event struct {
	// JobID identifies the job.
	JobID string `json:"job_id"`
	// Seq numbers events from 1 within the job.
	Seq int `json:"seq"`
	// State is the job state when the event fired.
	State JobState `json:"state"`
	// Stage names the work unit that completed ("F7", "secdir/prime+probe", …).
	Stage string `json:"stage,omitempty"`
	// Done and Total count completed work units; Total 0 means unknown.
	Done int `json:"done"`
	// Total is the job's stage count.
	Total int `json:"total"`
	// Err carries the failure message on a terminal failed event.
	Err string `json:"error,omitempty"`
}

// JobStatus is the JSON shape of GET /jobs/{id} (and the list endpoint).
type JobStatus struct {
	// ID is the server-assigned job identifier.
	ID string `json:"id"`
	// State is the current lifecycle state.
	State JobState `json:"state"`
	// Spec echoes the normalized submission.
	Spec JobSpec `json:"spec"`
	// Submitted, Started and Finished are lifecycle timestamps (zero until
	// reached).
	Submitted time.Time `json:"submitted"`
	// Started is when a worker picked the job up.
	Started time.Time `json:"started,omitempty"`
	// Finished is when the job reached a terminal state.
	Finished time.Time `json:"finished,omitempty"`
	// Progress is the latest progress event (nil before the first).
	Progress *Event `json:"progress,omitempty"`
	// Err is the failure message for failed jobs.
	Err string `json:"error,omitempty"`
}

// Job is one queued or running simulation request. All mutable state is
// guarded by mu; the server mutates jobs from worker goroutines while HTTP
// handlers read them.
type Job struct {
	// ID is the server-assigned identifier.
	ID string
	// Spec is the normalized submission.
	Spec JobSpec

	mu        sync.Mutex
	state     JobState
	submitted time.Time
	started   time.Time
	finished  time.Time
	result    any
	err       error

	// ctx is the job's lifetime context; cancel aborts it. Both are set
	// when the job is created so cancellation works while still queued.
	ctx    context.Context
	cancel context.CancelFunc

	seq    int
	last   *Event
	subs   map[chan Event]struct{}
	events []Event
}

// newJob builds a queued job owning ctx (whose cancel function is cancel).
func newJob(id string, spec JobSpec, ctx context.Context, cancel context.CancelFunc, now time.Time) *Job {
	return &Job{
		ID:        id,
		Spec:      spec,
		state:     StateQueued,
		submitted: now,
		ctx:       ctx,
		cancel:    cancel,
		subs:      map[chan Event]struct{}{},
	}
}

// Status returns a consistent snapshot of the job for JSON encoding.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:        j.ID,
		State:     j.state,
		Spec:      j.Spec,
		Submitted: j.submitted,
		Started:   j.started,
		Finished:  j.finished,
	}
	if j.last != nil {
		e := *j.last
		st.Progress = &e
	}
	if j.err != nil {
		st.Err = j.err.Error()
	}
	return st
}

// Result returns the job's result, or an error if it is not (successfully)
// finished.
func (j *Job) Result() (any, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case StateDone:
		return j.result, nil
	case StateFailed, StateCanceled, StateRequeued:
		return nil, fmt.Errorf("job %s %s: %v", j.ID, j.state, j.err)
	default:
		return nil, fmt.Errorf("job %s is %s; no result yet", j.ID, j.state)
	}
}

// State returns the current lifecycle state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Cancel aborts the job's context and, if the job had not started, marks it
// canceled immediately (a queued job's worker discards it on pickup).
func (j *Job) Cancel(now time.Time) {
	j.mu.Lock()
	if j.state == StateQueued {
		j.finishLocked(StateCanceled, nil, context.Canceled, now)
	}
	j.mu.Unlock()
	j.cancel()
}

// requeue marks a still-queued job requeued — the graceful-drain path that
// hands unstarted work back to the caller instead of dropping it. A job that
// already started is left alone.
func (j *Job) requeue(now time.Time) bool {
	j.mu.Lock()
	ok := j.state == StateQueued
	if ok {
		j.finishLocked(StateRequeued, nil,
			fmt.Errorf("server draining before the job started; resubmit it"), now)
	}
	j.mu.Unlock()
	if ok {
		j.cancel()
	}
	return ok
}

// start transitions queued → running; returns false if the job was cancelled
// while queued and must be discarded.
func (j *Job) start(now time.Time) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.started = now
	j.emitLocked(Event{State: StateRunning, Stage: "start"})
	return true
}

// finish records the terminal state, result and error, and emits the final
// event to all stream subscribers.
func (j *Job) finish(state JobState, result any, err error, now time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.finishLocked(state, result, err, now)
}

// finishLocked is finish with j.mu held.
func (j *Job) finishLocked(state JobState, result any, err error, now time.Time) {
	j.state = state
	j.result = result
	j.err = err
	j.finished = now
	e := Event{State: state, Stage: "finish"}
	if j.last != nil {
		e.Done, e.Total = j.last.Done, j.last.Total
	}
	if err != nil {
		e.Err = err.Error()
	}
	j.emitLocked(e)
	// Terminal: wake the streamers and drop them.
	for ch := range j.subs {
		close(ch)
	}
	j.subs = map[chan Event]struct{}{}
}

// progress records a stage completion and fans it out to subscribers.
func (j *Job) progress(stage string, done, total int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.emitLocked(Event{State: j.state, Stage: stage, Done: done, Total: total})
}

// emitLocked stamps and stores an event and delivers it to subscribers
// without blocking (a slow stream reader misses intermediate events but
// always gets the latest on its next receive).
func (j *Job) emitLocked(e Event) {
	j.seq++
	e.JobID = j.ID
	e.Seq = j.seq
	j.events = append(j.events, e)
	j.last = &j.events[len(j.events)-1]
	for ch := range j.subs {
		select {
		case ch <- e:
		default:
		}
	}
}

// Subscribe returns the events emitted so far plus a channel delivering
// subsequent ones; the channel is closed when the job reaches a terminal
// state. Call the returned cancel function when done reading.
func (j *Job) Subscribe() (history []Event, ch chan Event, unsub func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	history = append([]Event(nil), j.events...)
	if j.state.Terminal() {
		ch = make(chan Event)
		close(ch)
		return history, ch, func() {}
	}
	// Buffered so emitLocked's non-blocking send usually lands; the stream
	// handler drains promptly.
	ch = make(chan Event, 16)
	j.subs[ch] = struct{}{}
	return history, ch, func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		if _, ok := j.subs[ch]; ok {
			delete(j.subs, ch)
		}
	}
}
