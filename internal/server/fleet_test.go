package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"secdir/internal/fleet"
	"secdir/internal/leakage"
	"secdir/internal/metrics"
)

// TestShardEndpoint exercises the worker face every server exposes:
// POST /fleet/shard streams the requested trial range as NDJSON, terminated
// by a counted EOF marker, and the trials match a direct leakage.RunShard of
// the same range exactly.
func TestShardEndpoint(t *testing.T) {
	s := newTestServer(t, quickConfig())

	req := fleet.ShardRequest{
		Config:   "skylake-unfixed",
		Strategy: "evictreload",
		Cores:    8,
		Trials:   20,
		Rounds:   8,
		Seed:     5,
		Start:    5,
		Count:    10,
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(s.ts.URL+"/fleet/shard", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("shard HTTP %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q, want application/x-ndjson", ct)
	}

	var got []leakage.TrialResult
	sawEOF := false
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var line fleet.ShardLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch {
		case line.Err != "":
			t.Fatalf("shard stream error: %s", line.Err)
		case line.EOF:
			if line.Count != req.Count {
				t.Fatalf("eof count = %d, want %d", line.Count, req.Count)
			}
			sawEOF = true
		case line.Trial != nil:
			got = append(got, *line.Trial)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawEOF {
		t.Fatal("shard stream ended without an eof marker")
	}

	// The stream arrives in completion order; RunShard returns index order.
	sort.Slice(got, func(i, j int) bool { return got[i].Index < got[j].Index })
	opts, err := req.Options()
	if err != nil {
		t.Fatal(err)
	}
	want, err := leakage.RunShard(context.Background(), opts, req.Start, req.Count, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("streamed shard diverges from direct RunShard:\ngot:  %+v\nwant: %+v", got, want)
	}

	// A bad config name is rejected before any engine spins up.
	bad, _ := json.Marshal(fleet.ShardRequest{Config: "nosuch", Strategy: "evictreload", Cores: 8, Trials: 10, Count: 10})
	resp2, err := http.Post(s.ts.URL+"/fleet/shard", "application/json", bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("bad shard request HTTP %d, want 400", resp2.StatusCode)
	}
}

// TestFleetJobEndToEnd drives a fleet leak job through the public job API of
// a coordinator server backed by two real worker servers, and demands the
// result match the same job run locally — byte-for-byte at the JSON layer,
// since both decode into the same leakage.Report.
func TestFleetJobEndToEnd(t *testing.T) {
	w1 := newTestServer(t, quickConfig())
	w2 := newTestServer(t, quickConfig())
	co := newTestServer(t, quickConfig())
	co.srv.AttachFleet(fleet.New(fleet.Config{
		Workers: []string{w1.ts.URL, w2.ts.URL},
		Metrics: co.reg,
	}))

	spec := JobSpec{
		Kind:       KindLeak,
		Fleet:      true,
		Configs:    []string{"skylake-unfixed"},
		Strategies: []string{"evictreload"},
		Trials:     30,
		Rounds:     8,
		Seed:       1,
	}

	// A plain server has no coordinator: fleet submissions are rejected
	// up front, not queued to fail later.
	w1.submit(t, spec, http.StatusBadRequest)

	st := co.submit(t, spec, 0)
	co.waitState(t, st.ID, StateDone, 120*time.Second)
	var fleetRes struct {
		Result leakage.Report `json:"result"`
	}
	co.getResult(t, st.ID, &fleetRes)

	local := spec
	local.Fleet = false
	st2 := co.submit(t, local, 0)
	co.waitState(t, st2.ID, StateDone, 120*time.Second)
	var localRes struct {
		Result leakage.Report `json:"result"`
	}
	co.getResult(t, st2.ID, &localRes)

	if !reflect.DeepEqual(fleetRes.Result, localRes.Result) {
		t.Errorf("fleet job result diverges from local job:\nfleet: %+v\nlocal: %+v",
			fleetRes.Result, localRes.Result)
	}

	// The coordinator reports both workers alive at /fleet/workerz and in
	// the /metricz fleet section.
	resp, err := http.Get(co.ts.URL + "/fleet/workerz")
	if err != nil {
		t.Fatal(err)
	}
	var ws []fleet.WorkerStatus
	if err := json.NewDecoder(resp.Body).Decode(&ws); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(ws) != 2 {
		t.Fatalf("workerz has %d workers, want 2: %+v", len(ws), ws)
	}
	for _, w := range ws {
		if !w.Alive || !w.Static || w.ShardsDone == 0 {
			t.Errorf("worker %s: alive=%v static=%v done=%d, want a live static worker with shards done",
				w.URL, w.Alive, w.Static, w.ShardsDone)
		}
	}

	mresp, err := http.Get(co.ts.URL + "/metricz")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var mb struct {
		Fleet    []fleet.WorkerStatus `json:"fleet"`
		Snapshot metrics.Snapshot     `json:"snapshot"`
	}
	if err := json.NewDecoder(mresp.Body).Decode(&mb); err != nil {
		t.Fatal(err)
	}
	if len(mb.Fleet) != 2 {
		t.Errorf("/metricz fleet section has %d workers, want 2", len(mb.Fleet))
	}
	if n := mb.Snapshot.Gauges["fleet/workers_live"]; n != 2 {
		t.Errorf("fleet/workers_live = %v, want 2", n)
	}
	if mb.Snapshot.Counters["fleet/shards_dispatched"] == 0 {
		t.Error("fleet/shards_dispatched = 0 after a fleet job")
	}

	// A non-coordinator 404s the fleet read endpoints.
	resp404, err := http.Get(w1.ts.URL + "/fleet/workerz")
	if err != nil {
		t.Fatal(err)
	}
	resp404.Body.Close()
	if resp404.StatusCode != http.StatusNotFound {
		t.Errorf("workerz on a plain server: HTTP %d, want 404", resp404.StatusCode)
	}
}

// TestFleetDynamicRegistration starts a coordinator with an empty fleet:
// sweeps fail until a worker registers over HTTP, then succeed against the
// dynamically joined worker.
func TestFleetDynamicRegistration(t *testing.T) {
	w := newTestServer(t, quickConfig())
	co := newTestServer(t, quickConfig())
	co.srv.AttachFleet(fleet.New(fleet.Config{Metrics: metrics.New()}))

	spec := JobSpec{
		Kind:       KindLeak,
		Fleet:      true,
		Configs:    []string{"secdir"},
		Strategies: []string{"evictreload"},
		Trials:     20,
		Rounds:     4,
		Seed:       2,
	}

	st := co.submit(t, spec, 0)
	js := co.waitState(t, st.ID, StateFailed, 30*time.Second)
	if !strings.Contains(js.Err, "no workers") {
		t.Errorf("empty-fleet job error = %q, want a no-workers failure", js.Err)
	}

	iv, err := fleet.RegisterWorker(context.Background(), nil, co.ts.URL, w.ts.URL, 2)
	if err != nil {
		t.Fatal(err)
	}
	if iv <= 0 {
		t.Fatalf("registration returned heartbeat interval %v, want > 0", iv)
	}

	st2 := co.submit(t, spec, 0)
	co.waitState(t, st2.ID, StateDone, 120*time.Second)

	resp, err := http.Get(co.ts.URL + "/fleet/workerz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ws []fleet.WorkerStatus
	if err := json.NewDecoder(resp.Body).Decode(&ws); err != nil {
		t.Fatal(err)
	}
	if len(ws) != 1 || ws[0].Static || !ws[0].Alive || ws[0].PoolWidth != 2 {
		t.Errorf("workerz after dynamic registration = %+v, want one live dynamic worker with pool width 2", ws)
	}
}
