package server

import (
	"context"
	"encoding/json"
	"net/http"

	"secdir/internal/fleet"
	"secdir/internal/leakage"
	"secdir/internal/metrics"
)

// This file is the server's two fleet faces. Every server is a WORKER: it
// exposes POST /fleet/shard, executing one trial range of one (config,
// strategy) cell and streaming the per-trial results back as NDJSON. A
// server with a fleet.Coordinator attached (secdir-serve -coordinator) is
// additionally a COORDINATOR: it accepts fleet jobs (JobSpec.Fleet), worker
// registrations (POST /fleet/register), and serves the per-worker liveness
// snapshot (GET /fleet/workerz).

// AttachFleet makes the server a fleet coordinator: leak and leaderboard
// jobs submitted with "fleet": true run across c's workers, and the
// /fleet/register and /fleet/workerz endpoints come alive. Call before
// serving traffic.
func (s *Server) AttachFleet(c *fleet.Coordinator) {
	s.mu.Lock()
	s.fleetC = c
	s.mu.Unlock()
}

// coordinator returns the attached coordinator, or nil.
func (s *Server) coordinator() *fleet.Coordinator {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fleetC
}

// runFleetJob executes a Fleet job by fanning its sweep out across the
// coordinator's workers. The merged result is the same Go value the local
// runner would have produced, so the job API's JSON is identical either way.
// With a store attached, the sweep's per-shard merge provenance (which worker
// computed which trial range) lands in the ledger as a KindFleetMerge record.
func (s *Server) runFleetJob(ctx context.Context, c *fleet.Coordinator, j *Job) (any, error) {
	spec := fleet.SweepSpec{
		Configs:       j.Spec.Configs,
		Strategies:    j.Spec.Strategies,
		Cores:         j.Spec.Cores,
		Trials:        j.Spec.Trials,
		Rounds:        j.Spec.Rounds,
		EvictionLines: j.Spec.EvictionLines,
		Seed:          j.Spec.Seed,
		Confidence:    j.Spec.Confidence,
		Resamples:     j.Spec.Resamples,
		PerfAccesses:  j.Spec.PerfAccesses,
	}
	switch j.Spec.Kind {
	case KindLeaderboard:
		lb, prov, err := c.RunLeaderboard(ctx, spec, j.progress)
		if err != nil {
			return nil, err
		}
		s.recordFleetMerge(j, prov)
		return lb, nil
	default:
		rep, prov, err := c.RunLeak(ctx, spec, j.progress)
		if err != nil {
			return nil, err
		}
		s.recordFleetMerge(j, prov)
		return rep, nil
	}
}

// handleShard executes one shard request and streams its trials as NDJSON:
// {"trial":{...}} lines in completion order, then {"eof":true,"count":N} —
// or {"error":"..."} if the shard fails mid-stream. 503 while draining, 429
// when every shard slot is busy (the coordinator retries with backoff).
func (s *Server) handleShard(w http.ResponseWriter, r *http.Request) {
	var req fleet.ShardRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad shard request: %v", err)
		return
	}
	opts, err := req.Options()
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad shard request: %v", err)
		return
	}
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		writeError(w, http.StatusServiceUnavailable, "server is draining; not accepting shards")
		return
	}
	select {
	case s.shardSem <- struct{}{}:
		defer func() { <-s.shardSem }()
	default:
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "all %d shard slots busy; retry later", cap(s.shardSem))
		return
	}
	s.shardsServed.Inc()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	count := 0
	emit := func(tr leakage.TrialResult) { // serialized by RunShard
		t := tr
		_ = enc.Encode(fleet.ShardLine{Trial: &t})
		count++
		if flusher != nil {
			flusher.Flush()
		}
	}

	// Engine instruments go to a private registry, folded into the
	// cumulative snapshot once the shard's engines are quiescent — the same
	// isolation runJob gives job engines.
	shardReg := metrics.New()
	opts.Metrics = shardReg
	_, err = leakage.RunShard(r.Context(), opts, req.Start, req.Count, emit)
	snap := shardReg.Snapshot()
	s.mu.Lock()
	s.cum = s.cum.Merge(snap)
	s.mu.Unlock()

	if err != nil {
		_ = enc.Encode(fleet.ShardLine{Err: err.Error()})
	} else {
		_ = enc.Encode(fleet.ShardLine{EOF: true, Count: count})
	}
	if flusher != nil {
		flusher.Flush()
	}
}

// handleFleetRegister accepts a worker's registration/heartbeat. 404 unless
// this server is a coordinator.
func (s *Server) handleFleetRegister(w http.ResponseWriter, r *http.Request) {
	c := s.coordinator()
	if c == nil {
		writeError(w, http.StatusNotFound, "this server is not a fleet coordinator")
		return
	}
	var req fleet.RegisterRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad register request: %v", err)
		return
	}
	interval, err := c.Register(req.URL, req.Workers)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, fleet.RegisterResponse{IntervalMS: interval.Milliseconds()})
}

// handleFleetWorkerz serves the coordinator's per-worker status. 404 unless
// this server is a coordinator.
func (s *Server) handleFleetWorkerz(w http.ResponseWriter, r *http.Request) {
	c := s.coordinator()
	if c == nil {
		writeError(w, http.StatusNotFound, "this server is not a fleet coordinator")
		return
	}
	writeJSON(w, http.StatusOK, c.Workerz())
}
