package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"secdir/internal/config"
	"secdir/internal/metrics"
	"secdir/internal/store"
)

// storedServer is a testServer with a disk-backed experiment store attached,
// plus the pieces a test needs to "restart" it against the same directory.
type storedServer struct {
	*testServer
	st  *store.Store
	dir string
	rc  *StoreRecovery
}

// newStoredServer builds a server over a disk store at dir, replaying
// whatever ledger is already there.
func newStoredServer(t *testing.T, cfg config.ServerConfig, dir string) *storedServer {
	t.Helper()
	b, err := store.OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	// A tight flush interval keeps tests fast without changing semantics.
	st, err := store.Open(b, store.Options{FlushInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.New()
	srv, err := New(cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := srv.AttachStore(st)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	s := &storedServer{
		testServer: &testServer{srv: srv, ts: ts, reg: reg},
		st:         st,
		dir:        dir,
		rc:         rc,
	}
	t.Cleanup(func() { s.shutdown(t) })
	return s
}

// shutdown drains the server and closes the store; safe to call twice.
func (s *storedServer) shutdown(t *testing.T) {
	t.Helper()
	if s.ts == nil {
		return
	}
	s.ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_, _ = s.srv.Drain(ctx)
	if err := s.st.Close(); err != nil {
		t.Errorf("store close: %v", err)
	}
	s.ts = nil
}

// resultBytes fetches a done job's raw result body.
func (s *storedServer) resultBytes(t *testing.T, id string) []byte {
	t.Helper()
	resp, err := http.Get(s.ts.URL + "/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result %s: HTTP %d", id, resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestStoreRestartServesResultsByteIdentically: a job completed before a
// restart answers /jobs/{id}/result with the exact same bytes afterwards, and
// the recovered status keeps its terminal state and timestamps.
func TestStoreRestartServesResultsByteIdentically(t *testing.T) {
	dir := t.TempDir()
	s := newStoredServer(t, quickConfig(), dir)

	st := s.submit(t, quickReplay(), 0)
	s.waitState(t, st.ID, StateDone, 30*time.Second)
	before := s.resultBytes(t, st.ID)
	statusBefore := s.getStatus(t, st.ID)

	// A canceled job must come back canceled, too.
	huge := s.submit(t, hugeReplay(), 0)
	s.waitState(t, huge.ID, StateRunning, 30*time.Second)
	s.cancelJob(t, huge.ID)
	s.waitState(t, huge.ID, StateCanceled, 30*time.Second)

	s.shutdown(t)

	s2 := newStoredServer(t, quickConfig(), dir)
	if s2.rc.Restored != 2 {
		t.Fatalf("restart restored %d jobs, want 2 (dropped: %v)", s2.rc.Restored, s2.rc.Dropped)
	}
	after := s2.resultBytes(t, st.ID)
	if !bytes.Equal(before, after) {
		t.Errorf("result bytes changed across restart:\nbefore: %s\nafter:  %s", before, after)
	}
	statusAfter := s2.getStatus(t, st.ID)
	if statusAfter.State != StateDone ||
		!statusAfter.Submitted.Equal(statusBefore.Submitted) ||
		!statusAfter.Finished.Equal(statusBefore.Finished) {
		t.Errorf("recovered status diverges: before %+v, after %+v", statusBefore, statusAfter)
	}
	if got := s2.getStatus(t, huge.ID); got.State != StateCanceled {
		t.Errorf("canceled job came back %s, want %s", got.State, StateCanceled)
	}

	// The recovered ledger still verifies end to end.
	b, err := store.OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if _, err := store.VerifyChain(b); err != nil {
		t.Errorf("post-restart chain: %v", err)
	}
}

// TestStoreRequeuedJobsResubmitOnRestart: a job still queued when the server
// drains is persisted as requeued and re-enters the queue — under its
// original ID — when a new server replays the ledger, then runs to done.
func TestStoreRequeuedJobsResubmitOnRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := quickConfig()
	cfg.Workers = 1
	s := newStoredServer(t, cfg, dir)

	// One job hogs the single worker; the next stays queued.
	huge := s.submit(t, hugeReplay(), 0)
	s.waitState(t, huge.ID, StateRunning, 30*time.Second)
	queued := s.submit(t, quickReplay(), 0)

	s.ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	requeued, _ := s.srv.Drain(ctx)
	cancel()
	if len(requeued) != 1 || requeued[0] != queued.ID {
		t.Fatalf("drain requeued %v, want [%s]", requeued, queued.ID)
	}
	if err := s.st.Close(); err != nil {
		t.Fatal(err)
	}
	s.ts = nil

	s2 := newStoredServer(t, quickConfig(), dir)
	if len(s2.rc.Resubmitted) != 1 || s2.rc.Resubmitted[0] != queued.ID {
		t.Fatalf("restart resubmitted %v, want [%s] (dropped: %v)", s2.rc.Resubmitted, queued.ID, s2.rc.Dropped)
	}
	s2.waitState(t, queued.ID, StateDone, 30*time.Second)

	// Its completion lands in the same chain, which still verifies.
	recs, err := s2.st.Records()
	if err != nil {
		t.Fatal(err)
	}
	var states []string
	for _, rec := range recs {
		if rec.JobID == queued.ID {
			states = append(states, rec.State)
		}
	}
	want := []string{"queued", "requeued", "queued", "done"}
	if !reflect.DeepEqual(states, want) {
		t.Errorf("job %s ledger states %v, want %v", queued.ID, states, want)
	}
}

// TestVersionzMatchesLedgerBuild: /versionz serves exactly the BuildInfo
// every ledger record carries, so an operator can check a running server
// against its store.
func TestVersionzMatchesLedgerBuild(t *testing.T) {
	dir := t.TempDir()
	s := newStoredServer(t, quickConfig(), dir)

	resp, err := http.Get(s.ts.URL + "/versionz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/versionz: HTTP %d", resp.StatusCode)
	}
	var got store.BuildInfo
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got != store.Build() {
		t.Errorf("/versionz = %+v, want %+v", got, store.Build())
	}

	st := s.submit(t, quickReplay(), 0)
	s.waitState(t, st.ID, StateDone, 30*time.Second)
	recs, err := s.st.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("no ledger records after a completed job")
	}
	for _, rec := range recs {
		if rec.Build != got {
			t.Errorf("record %d build %+v diverges from /versionz %+v", rec.Index, rec.Build, got)
		}
	}
}

// TestStorezReportsChainHead: /storez exposes the chain head and artifact
// counts once jobs have landed, and 404s on a store-less server.
func TestStorezReportsChainHead(t *testing.T) {
	s := newTestServer(t, quickConfig())
	resp, err := http.Get(s.ts.URL + "/storez")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/storez without a store: HTTP %d, want 404", resp.StatusCode)
	}

	dir := t.TempDir()
	ss := newStoredServer(t, quickConfig(), dir)
	st := ss.submit(t, quickReplay(), 0)
	ss.waitState(t, st.ID, StateDone, 30*time.Second)
	if err := ss.st.Flush(); err != nil {
		t.Fatal(err)
	}

	resp, err = http.Get(ss.ts.URL + "/storez")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/storez: HTTP %d", resp.StatusCode)
	}
	var body storezBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Stats.Records < 2 || body.Stats.HeadHash == "" || body.ArtifactsOnBackend < 1 {
		t.Errorf("thin /storez after a done job: %+v", body)
	}
	if body.LastError != "" {
		t.Errorf("unexpected store error surfaced: %s", body.LastError)
	}
}
