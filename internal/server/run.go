package server

import (
	"context"
	"fmt"
	"strings"

	"secdir/internal/attack"
	"secdir/internal/coherence"
	"secdir/internal/config"
	"secdir/internal/experiments"
	"secdir/internal/leakage"
	"secdir/internal/metrics"
	"secdir/internal/sim"
	"secdir/internal/trace"
)

// ProgressFunc receives coarse progress while a job runs: the stage that just
// finished and how far through the job's total stage count the run is. It may
// be nil.
type ProgressFunc func(stage string, done, total int)

// AttackReport is the structured outcome of the §2.2/§9 attack suite against
// one directory design — the data the secdir-attack tool prints.
type AttackReport struct {
	// Design is the directory under attack ("baseline" or "secdir").
	Design string `json:"design"`
	// Rounds is the per-attack round count.
	Rounds int `json:"rounds"`

	// EvictReloadAccuracy is the attacker's classification accuracy
	// (0.50 = chance); VictimEvictions counts rounds where the Conflict
	// step evicted the victim's private copy.
	EvictReloadAccuracy float64 `json:"evict_reload_accuracy"`
	// VictimEvictions counts rounds in which the eviction set displaced the
	// victim's private copy.
	VictimEvictions int `json:"victim_evictions"`
	// PrimeProbeSignal is extra probe misses per round when the victim is
	// active.
	PrimeProbeSignal float64 `json:"prime_probe_signal"`
	// EvictTimeSignal is how many cycles slower the victim runs when its
	// operation touches the target.
	EvictTimeSignal float64 `json:"evict_time_signal"`

	// KeyNibblesRecovered / KeyNibblesTotal summarise the AES key-recovery
	// stage; Encryptions is how many encryptions the attacker observed.
	KeyNibblesRecovered int `json:"key_nibbles_recovered"`
	// KeyNibblesTotal is the number of high key nibbles under attack.
	KeyNibblesTotal int `json:"key_nibbles_total"`
	// Encryptions performed by the victim during key recovery.
	Encryptions int `json:"encryptions"`

	// InclusionVictims is the ground truth: private-cache lines the victim
	// lost to shared-structure conflicts during evict+reload and
	// prime+probe (zero on SecDir).
	InclusionVictims uint64 `json:"inclusion_victims"`
}

// RunAttackSuite mounts the full attack suite — evict+reload, prime+probe,
// evict+time, AES key recovery — against one directory configuration,
// checking ctx between stages (each stage is a bounded number of rounds, so
// cancellation latency is one stage). Engines register their instruments in
// reg (which may be nil); progress (which may be nil) is called after each of
// the four stages with done counts offset..offset+3 of total.
func RunAttackSuite(ctx context.Context, cfg config.Config, reg *metrics.Registry, rounds, evictionLines int, progress ProgressFunc, offset, total int) (AttackReport, error) {
	report := AttackReport{Rounds: rounds}
	switch cfg.Kind {
	case config.SecDir:
		report.Design = "secdir"
	default:
		report.Design = "baseline"
	}
	step := func(stage string, n int) {
		if progress != nil {
			progress(stage, offset+n, total)
		}
	}

	target := trace.T0Lines()[0] // a line of the AES T0 table
	attackers := make([]int, 0, cfg.Cores-1)
	for c := 1; c < cfg.Cores; c++ {
		attackers = append(attackers, c)
	}

	if err := ctx.Err(); err != nil {
		return report, err
	}
	e, err := coherence.NewEngine(cfg)
	if err != nil {
		return report, err
	}
	e.AttachMetrics(reg)
	er, err := attack.EvictReload(e, 0, attackers, target, rounds, evictionLines)
	if err != nil {
		return report, err
	}
	report.EvictReloadAccuracy = er.Accuracy()
	report.VictimEvictions = er.VictimEvictions
	step(report.Design+"/evict+reload", 1)

	if err := ctx.Err(); err != nil {
		return report, err
	}
	e2, err := coherence.NewEngine(cfg)
	if err != nil {
		return report, err
	}
	e2.AttachMetrics(reg)
	pp, err := attack.PrimeProbe(e2, 0, attackers, target, rounds, evictionLines)
	if err != nil {
		return report, err
	}
	report.PrimeProbeSignal = pp.Signal()
	step(report.Design+"/prime+probe", 2)

	if err := ctx.Err(); err != nil {
		return report, err
	}
	e3, err := coherence.NewEngine(cfg)
	if err != nil {
		return report, err
	}
	e3.AttachMetrics(reg)
	et, err := attack.EvictTime(e3, 0, attackers, target, rounds, evictionLines)
	if err != nil {
		return report, err
	}
	report.EvictTimeSignal = et.Signal()
	step(report.Design+"/evict+time", 3)

	if err := ctx.Err(); err != nil {
		return report, err
	}
	e4, err := coherence.NewEngine(cfg)
	if err != nil {
		return report, err
	}
	e4.AttachMetrics(reg)
	key := [16]byte{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
		0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c}
	kr, err := attack.RecoverAESKey(e4, 0, attackers, key, 48)
	if err != nil {
		return report, err
	}
	report.KeyNibblesRecovered = kr.CorrectNibbles()
	report.KeyNibblesTotal = len(kr.TrueNibbles)
	report.Encryptions = kr.Encryptions
	report.InclusionVictims = e.Stats().Core[0].ConflictInvalidations +
		e2.Stats().Core[0].ConflictInvalidations
	step(report.Design+"/key-recovery", 4)
	return report, nil
}

// ReplayResult is the outcome of a replay job: one workload on one design.
type ReplayResult struct {
	// Design and Workload echo the spec.
	Design string `json:"design"`
	// Workload is the spec string that was replayed.
	Workload string `json:"workload"`
	// TotalIPC is the sum of per-core IPCs.
	TotalIPC float64 `json:"total_ipc"`
	// MaxCycles is the execution time of the multithreaded run.
	MaxCycles uint64 `json:"max_cycles"`
	// EDTDHits, VDHits and MemAccesses break L2 misses down by where they
	// were served.
	EDTDHits uint64 `json:"edtd_hits"`
	// VDHits counts L2 misses served by the Victim Directory.
	VDHits uint64 `json:"vd_hits"`
	// MemAccesses counts L2 misses served by main memory.
	MemAccesses uint64 `json:"mem_accesses"`
	// InclusionVictims counts private-cache lines lost to shared-structure
	// conflicts.
	InclusionVictims uint64 `json:"inclusion_victims"`
}

// replayConfig maps a replay design name to its configuration.
func replayConfig(design string, cores int, seed int64) (config.Config, error) {
	var cfg config.Config
	switch design {
	case "baseline":
		cfg = config.SkylakeX(cores)
	case "secdir":
		cfg = config.SecDirConfig(cores)
	case "waypart":
		cfg = config.WayPartitionedConfig(cores)
	case "randmap":
		cfg = config.RandMappedConfig(cores, 200_000)
	case "skewed":
		cfg = config.SkewedConfig(cores)
	case "dls":
		cfg = config.DLSConfig(cores)
	case "tagpart":
		cfg = config.TagPartConfig(cores)
	case "ceaser":
		cfg = config.CeaserConfig(cores, 200_000)
	default:
		return cfg, fmt.Errorf("unknown design %q", design)
	}
	cfg.Seed = seed
	return cfg, nil
}

// ExperimentResult pairs one experiment ID with its typed rows; the concrete
// row type depends on the experiment (see package experiments).
type ExperimentResult struct {
	// ID is the experiment identifier (A1..ALT).
	ID string `json:"id"`
	// Rows is the experiment's output, JSON-encoded per its row type.
	Rows any `json:"rows"`
}

// Run executes a normalized spec under ctx, registering engine instruments in
// reg (which may be nil) and reporting coarse progress (progress may be nil).
// The result is JSON-serialisable: []ExperimentResult, []AttackReport, or
// ReplayResult.
func Run(ctx context.Context, spec JobSpec, reg *metrics.Registry, progress ProgressFunc) (any, error) {
	switch spec.Kind {
	case KindExperiment:
		return runExperiments(ctx, spec, reg, progress)
	case KindAttack:
		return runAttack(ctx, spec, reg, progress)
	case KindReplay:
		return runReplay(ctx, spec, reg, progress)
	case KindLeak:
		return runLeak(ctx, spec, reg, progress)
	case KindLeaderboard:
		return runLeaderboard(ctx, spec, reg, progress)
	default:
		return nil, fmt.Errorf("unknown job kind %q", spec.Kind)
	}
}

// runLeak executes the Monte-Carlo leakage lab over the spec's
// configs×strategies grid. Progress events count completed trials across the
// whole grid, staged per cell ("secdir/primeprobe"), so the NDJSON stream
// shows trial-level advancement.
func runLeak(ctx context.Context, spec JobSpec, reg *metrics.Registry, progress ProgressFunc) (any, error) {
	strategies, err := leakage.ParseStrategyList(strings.Join(spec.Strategies, ","))
	if err != nil {
		return nil, err
	}
	o := leakage.ReportOptions{
		Configs:       spec.Configs,
		Strategies:    strategies,
		Cores:         spec.Cores,
		Trials:        spec.Trials,
		Rounds:        spec.Rounds,
		EvictionLines: spec.EvictionLines,
		Workers:       spec.Workers,
		Seed:          spec.Seed,
		Confidence:    spec.Confidence,
		Resamples:     spec.Resamples,
		EngineShards:  spec.EngineShards,
		EngineWindow:  spec.EngineWindow,
		Metrics:       reg,
	}
	o.Progress = gridProgress(spec.Configs, leakage.StrategyNames(strategies), spec.Trials, progress)
	return leakage.RunReport(ctx, o)
}

// runLeaderboard races the cross-defense roster in-process, with the same
// staged trial-level progress convention as leak jobs.
func runLeaderboard(ctx context.Context, spec JobSpec, reg *metrics.Registry, progress ProgressFunc) (any, error) {
	strategies, err := leakage.ParseStrategyList(strings.Join(spec.Strategies, ","))
	if err != nil {
		return nil, err
	}
	o := leakage.LeaderboardOptions{
		Configs:       spec.Configs,
		Strategies:    strategies,
		Cores:         spec.Cores,
		Trials:        spec.Trials,
		Rounds:        spec.Rounds,
		EvictionLines: spec.EvictionLines,
		Workers:       spec.Workers,
		Seed:          spec.Seed,
		PerfAccesses:  spec.PerfAccesses,
		EngineShards:  spec.EngineShards,
		EngineWindow:  spec.EngineWindow,
		Metrics:       reg,
	}
	o.Progress = gridProgress(spec.Configs, leakage.StrategyNames(strategies), spec.Trials, progress)
	return leakage.RunLeaderboard(ctx, o)
}

// gridProgress adapts a job ProgressFunc to the leakage sweeps' per-cell
// convention: grid cells run in configs×strategies order, so each cell's
// trial counts are offset to make Done climb monotonically over the whole
// job. Returns nil when progress is nil.
func gridProgress(configs, strategies []string, trials int, progress ProgressFunc) func(stage string, done, total int) {
	if progress == nil {
		return nil
	}
	offsets := make(map[string]int, len(configs)*len(strategies))
	for i, cfg := range configs {
		for j, s := range strategies {
			offsets[cfg+"/"+s] = (i*len(strategies) + j) * trials
		}
	}
	total := len(offsets) * trials
	return func(stage string, done, _ int) {
		progress(stage, offsets[stage]+done, total)
	}
}

// runExperiments dispatches the requested experiment IDs.
func runExperiments(ctx context.Context, spec JobSpec, reg *metrics.Registry, progress ProgressFunc) (any, error) {
	o := experiments.RunOpts{
		Warmup:  spec.Warmup,
		Measure: spec.Measure,
		Cores:   spec.Cores,
		Seed:    spec.Seed,
		Metrics: reg,
	}
	out := make([]ExperimentResult, 0, len(spec.Experiments))
	total := len(spec.Experiments)
	for i, id := range spec.Experiments {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var rows any
		var err error
		switch id {
		case "A1":
			rows = experiments.AssociativityAnalysis()
		case "F5":
			rows = experiments.Fig5VDSizing()
		case "F6":
			rows, err = experiments.Fig6AESTrace(ctx, o)
		case "F7":
			rows, err = experiments.Fig7SPECMixes(ctx, o)
		case "F8":
			rows, err = experiments.Fig8PARSEC(ctx, o)
		case "T6":
			var s, p []experiments.T6Row
			if s, err = experiments.Table6SPEC(ctx, o); err == nil {
				if p, err = experiments.Table6PARSEC(ctx, o); err == nil {
					rows = append(s, p...)
				}
			}
		case "T7":
			rows = experiments.Table7StorageArea(spec.Cores)
		case "S1":
			rows, err = experiments.SecurityAttack(ctx, o)
		case "SC":
			rows, err = experiments.Scaling(ctx, o, 64)
		case "ALT":
			rows, err = experiments.Alternatives(ctx, o)
		default:
			err = fmt.Errorf("unknown experiment %q", id)
		}
		if err != nil {
			return nil, fmt.Errorf("experiment %s: %w", id, err)
		}
		out = append(out, ExperimentResult{ID: id, Rows: rows})
		if progress != nil {
			progress(id, i+1, total)
		}
	}
	return out, nil
}

// runAttack mounts the attack suite against the requested design(s).
func runAttack(ctx context.Context, spec JobSpec, reg *metrics.Registry, progress ProgressFunc) (any, error) {
	var cfgs []config.Config
	switch spec.Design {
	case "baseline":
		cfgs = []config.Config{config.SkylakeX(spec.Cores)}
	case "secdir":
		cfgs = []config.Config{config.SecDirConfig(spec.Cores)}
	default: // "both" — Normalize guarantees the set
		cfgs = []config.Config{config.SkylakeX(spec.Cores), config.SecDirConfig(spec.Cores)}
	}
	const stagesPerDesign = 4
	total := stagesPerDesign * len(cfgs)
	reports := make([]AttackReport, 0, len(cfgs))
	for i, cfg := range cfgs {
		cfg.Seed = spec.Seed
		rep, err := RunAttackSuite(ctx, cfg, reg, spec.Rounds, spec.EvictionLines,
			progress, i*stagesPerDesign, total)
		if err != nil {
			return nil, err
		}
		reports = append(reports, rep)
	}
	return reports, nil
}

// runReplay runs one workload on one design.
func runReplay(ctx context.Context, spec JobSpec, reg *metrics.Registry, progress ProgressFunc) (any, error) {
	cfg, err := replayConfig(spec.Design, spec.Cores, spec.Seed)
	if err != nil {
		return nil, err
	}
	w, err := ParseWorkload(spec.Workload, spec.Cores, spec.Seed)
	if err != nil {
		return nil, err
	}
	defer w.Close()
	r, err := sim.New(sim.Options{
		Config:          cfg,
		Work:            w,
		WarmupAccesses:  spec.Warmup,
		MeasureAccesses: spec.Measure,
		EngineShards:    spec.EngineShards,
		EngineWindow:    spec.EngineWindow,
		Metrics:         reg,
	})
	if err != nil {
		return nil, err
	}
	defer r.Close()
	res, err := r.RunContext(ctx)
	if err != nil {
		return nil, err
	}
	// A file-backed replay can only report a truncated trace once the run
	// has consumed it; fail the job rather than return numbers computed
	// from a partial loop.
	if err := w.Close(); err != nil {
		return nil, err
	}
	e, v, m := res.L2MissBreakdown()
	out := ReplayResult{
		Design:      spec.Design,
		Workload:    spec.Workload,
		TotalIPC:    res.TotalIPC(),
		MaxCycles:   res.MaxCycles,
		EDTDHits:    e,
		VDHits:      v,
		MemAccesses: m,
	}
	for _, c := range res.PerCore {
		out.InclusionVictims += c.Stats.ConflictInvalidations
	}
	if progress != nil {
		progress("replay", 1, 1)
	}
	return out, nil
}
