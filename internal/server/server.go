package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"secdir/internal/config"
	"secdir/internal/fleet"
	"secdir/internal/metrics"
	"secdir/internal/store"
)

// Server is the secdir-serve job server: a bounded queue feeding a worker
// pool, a job table, and an http.Handler exposing the job API. Create one
// with New; it starts accepting work immediately and stops via Drain.
//
// Metrics strategy: the server's own instruments (queue depth, job counts,
// durations) live in the shared registry passed to New, which is
// goroutine-safe. Each job's engines register in a private per-job child
// registry instead, because engine gauge functions read non-thread-safe
// engine state; when the job finishes the child's snapshot is folded into a
// cumulative snapshot under the server's lock, and /metricz serves the merge
// of the two (see the metrics package doc).
type Server struct {
	cfg config.ServerConfig
	reg *metrics.Registry
	mux *http.ServeMux

	queue chan *Job
	wg    sync.WaitGroup

	// shardSem bounds concurrently executing /fleet/shard calls to the
	// worker-pool width (each shard fans out internally).
	shardSem chan struct{}

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // submission order, for listing
	nextID   int
	draining bool
	// fleetC, when non-nil, makes this server a fleet coordinator
	// (AttachFleet).
	fleetC *fleet.Coordinator
	// st, when non-nil, is the experiment store every job lifecycle is
	// recorded in (AttachStore); lastStoreErr is the most recent write
	// failure, surfaced by /storez.
	st           *store.Store
	lastStoreErr string
	// cum accumulates the per-job child registries of finished jobs.
	cum metrics.Snapshot

	submitted    *metrics.Counter
	rejected     *metrics.Counter
	done         *metrics.Counter
	failed       *metrics.Counter
	canceled     *metrics.Counter
	requeuedJobs *metrics.Counter
	shardsServed *metrics.Counter
	storeErrs    *metrics.Counter
	jobMillis    *metrics.Histogram
}

// New builds a server from cfg, registering its operational instruments in
// reg (pass metrics.New() or an existing registry; nil creates a private
// one), and starts its worker pool.
func New(cfg config.ServerConfig, reg *metrics.Registry) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if reg == nil {
		reg = metrics.New()
	}
	s := &Server{
		cfg:          cfg,
		reg:          reg,
		queue:        make(chan *Job, cfg.QueueDepth),
		shardSem:     make(chan struct{}, cfg.ResolvedWorkers()),
		jobs:         map[string]*Job{},
		submitted:    reg.Counter("server/jobs_submitted"),
		rejected:     reg.Counter("server/jobs_rejected"),
		done:         reg.Counter("server/jobs_done"),
		failed:       reg.Counter("server/jobs_failed"),
		canceled:     reg.Counter("server/jobs_canceled"),
		requeuedJobs: reg.Counter("server/jobs_requeued"),
		shardsServed: reg.Counter("server/shards_served"),
		storeErrs:    reg.Counter("server/store_errors"),
		jobMillis:    reg.Histogram("server/job_millis"),
	}
	reg.GaugeFunc("server/queue_depth", func() float64 { return float64(len(s.queue)) })

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /jobs", s.handleList)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	s.mux.HandleFunc("GET /jobs/{id}/stream", s.handleStream)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metricz", s.handleMetrics)
	s.mux.HandleFunc("GET /storez", s.handleStorez)
	s.mux.HandleFunc("GET /versionz", s.handleVersionz)
	s.mux.HandleFunc("POST /fleet/shard", s.handleShard)
	s.mux.HandleFunc("POST /fleet/register", s.handleFleetRegister)
	s.mux.HandleFunc("GET /fleet/workerz", s.handleFleetWorkerz)

	for i := 0; i < cfg.ResolvedWorkers(); i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Drain stops accepting submissions, pulls queued-but-unstarted jobs back
// out of the queue — marking them "requeued" and returning their IDs so the
// operator can resubmit them elsewhere instead of losing them; with a store
// attached each requeued job is also persisted to the ledger, so the next
// -store-dir start re-submits them automatically — then lets running jobs
// finish and returns when the pool is idle. If ctx expires first, every
// remaining job is cancelled and Drain waits for the (now fast) pool
// shutdown before returning ctx's error. An attached fleet coordinator is
// drained too. Safe to call more than once.
func (s *Server) Drain(ctx context.Context) ([]string, error) {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	var requeued []string
	var requeuedJobs []*Job
	if !already {
		// The pool keeps receiving concurrently; whatever it grabs before the
		// close simply runs to completion, which drain waits for anyway. Only
		// jobs still sitting in the channel are handed back.
		now := time.Now()
	pull:
		for {
			select {
			case j := <-s.queue:
				if j.requeue(now) {
					s.requeuedJobs.Inc()
					requeued = append(requeued, j.ID)
					requeuedJobs = append(requeuedJobs, j)
				}
			default:
				break pull
			}
		}
		close(s.queue)
	}
	fc := s.fleetC
	s.mu.Unlock()
	for _, j := range requeuedJobs {
		s.recordJob(j, StateRequeued, nil)
	}

	idle := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(idle)
	}()
	var err error
	select {
	case <-idle:
	case <-ctx.Done():
		s.mu.Lock()
		for _, j := range s.jobs {
			j.Cancel(time.Now())
		}
		s.mu.Unlock()
		<-idle
		err = ctx.Err()
	}
	if fc != nil {
		if derr := fc.Drain(ctx); err == nil {
			err = derr
		}
	}
	return requeued, err
}

// worker executes jobs from the queue until the queue closes (Drain).
func (s *Server) worker() {
	defer s.wg.Done()
	for job := range s.queue {
		s.runJob(job)
	}
}

// runJob executes one job: per-job timeout, per-job child metrics registry,
// terminal-state accounting, cumulative snapshot fold.
func (s *Server) runJob(j *Job) {
	if !j.start(time.Now()) {
		return // cancelled while queued
	}
	ctx := j.ctx
	if s.cfg.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.JobTimeout)
		defer cancel()
	}

	// Engines must not register in the shared registry: their gauge
	// functions read live engine state, which is only safe to evaluate when
	// the engine is quiescent. A private child registry keeps /metricz
	// race-free while the job runs.
	jobReg := metrics.New()
	start := time.Now()
	var result any
	var err error
	if j.Spec.Fleet {
		if c := s.coordinator(); c != nil {
			result, err = s.runFleetJob(ctx, c, j)
		} else {
			err = fmt.Errorf("fleet job on a server with no coordinator attached")
		}
	} else {
		result, err = Run(ctx, j.Spec, jobReg, j.progress)
	}
	s.jobMillis.Observe(uint64(time.Since(start).Milliseconds()))

	now := time.Now()
	switch {
	case err == nil:
		j.finish(StateDone, result, nil, now)
		s.done.Inc()
		s.recordJob(j, StateDone, result)
	case errors.Is(err, context.Canceled):
		j.finish(StateCanceled, nil, err, now)
		s.canceled.Inc()
		s.recordJob(j, StateCanceled, nil)
	case errors.Is(err, context.DeadlineExceeded):
		j.finish(StateFailed, nil, fmt.Errorf("job exceeded %v timeout: %w", s.cfg.JobTimeout, err), now)
		s.failed.Inc()
		s.recordJob(j, StateFailed, nil)
	default:
		j.finish(StateFailed, nil, err, now)
		s.failed.Inc()
		s.recordJob(j, StateFailed, nil)
	}

	// The job's engines are quiescent now; fold their counters into the
	// cumulative simulation snapshot.
	snap := jobReg.Snapshot()
	s.mu.Lock()
	s.cum = s.cum.Merge(snap)
	s.mu.Unlock()
}

// apiError is the JSON error body every non-2xx response carries.
type apiError struct {
	// Error is the human-readable message.
	Error string `json:"error"`
}

// writeJSON encodes v with status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError sends an apiError.
func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

// handleSubmit accepts a JobSpec, queues it, and answers 202 with the job
// status; 400 on a bad spec, 429 when the queue is full, 503 while draining.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad job spec: %v", err)
		return
	}
	if err := spec.Normalize(); err != nil {
		writeError(w, http.StatusBadRequest, "bad job spec: %v", err)
		return
	}
	if spec.Fleet && s.coordinator() == nil {
		writeError(w, http.StatusBadRequest,
			"bad job spec: fleet jobs need a coordinator (start the server with -coordinator)")
		return
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "server is draining; not accepting jobs")
		return
	}
	s.nextID++
	id := fmt.Sprintf("job-%d", s.nextID)
	ctx, cancel := context.WithCancel(context.Background())
	job := newJob(id, spec, ctx, cancel, time.Now())
	select {
	case s.queue <- job:
		s.jobs[id] = job
		s.order = append(s.order, id)
		s.mu.Unlock()
		s.submitted.Inc()
		// The submission record is what lets a -store-dir restart re-submit
		// jobs a SIGKILL caught before they finished.
		s.recordJob(job, StateQueued, nil)
		writeJSON(w, http.StatusAccepted, job.Status())
	default:
		s.nextID-- // not accepted; reuse the ID
		s.mu.Unlock()
		cancel()
		s.rejected.Inc()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests,
			"job queue full (%d queued); retry later", s.cfg.QueueDepth)
	}
}

// lookup resolves {id} or writes a 404.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *Job {
	id := r.PathValue("id")
	s.mu.Lock()
	job := s.jobs[id]
	s.mu.Unlock()
	if job == nil {
		writeError(w, http.StatusNotFound, "no such job %q", id)
	}
	return job
}

// handleList answers with every job's status in submission order.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	writeJSON(w, http.StatusOK, out)
}

// handleStatus answers one job's status.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if job := s.lookup(w, r); job != nil {
		writeJSON(w, http.StatusOK, job.Status())
	}
}

// resultBody is the JSON shape of GET /jobs/{id}/result.
type resultBody struct {
	// ID and State identify the job and its terminal state.
	ID string `json:"id"`
	// State is the job's state at read time.
	State JobState `json:"state"`
	// Result is the kind-specific payload.
	Result any `json:"result"`
}

// handleResult answers the result of a done job; 409 while the job is still
// pending, 410 for failed/cancelled jobs.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	job := s.lookup(w, r)
	if job == nil {
		return
	}
	res, err := job.Result()
	if err != nil {
		if job.State().Terminal() {
			writeError(w, http.StatusGone, "%v", err)
		} else {
			writeError(w, http.StatusConflict, "%v", err)
		}
		return
	}
	writeJSON(w, http.StatusOK, resultBody{ID: job.ID, State: StateDone, Result: res})
}

// handleCancel cancels a job (queued or running) and answers its status.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job := s.lookup(w, r)
	if job == nil {
		return
	}
	job.Cancel(time.Now())
	writeJSON(w, http.StatusOK, job.Status())
}

// handleStream streams the job's progress events as NDJSON (one JSON object
// per line), flushing per event, until the job finishes or the client goes
// away.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	job := s.lookup(w, r)
	if job == nil {
		return
	}
	history, ch, unsub := job.Subscribe()
	defer unsub()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(e Event) bool {
		if err := enc.Encode(e); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	for _, e := range history {
		if !emit(e) {
			return
		}
	}
	for {
		select {
		case e, ok := <-ch:
			if !ok {
				return
			}
			if !emit(e) {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

// healthBody is the JSON shape of GET /healthz.
type healthBody struct {
	// Status is "ok" or "draining".
	Status string `json:"status"`
	// Queued and Running count jobs by live state; Workers is the pool
	// width.
	Queued int `json:"queued"`
	// Running counts jobs currently executing.
	Running int `json:"running"`
	// Workers is the worker-pool width.
	Workers int `json:"workers"`
}

// handleHealth reports liveness and load.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	body := healthBody{Status: "ok", Workers: s.cfg.ResolvedWorkers()}
	if s.draining {
		body.Status = "draining"
	}
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	for _, j := range jobs {
		switch j.State() {
		case StateQueued:
			body.Queued++
		case StateRunning:
			body.Running++
		}
	}
	code := http.StatusOK
	if body.Status != "ok" {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, body)
}

// metricsBody is the JSON shape of GET /metricz: the server's operational
// instruments merged with the cumulative simulation counters of every
// finished job, plus — on a coordinator — the fleet's per-worker status.
type metricsBody struct {
	// Snapshot is the merged registry snapshot.
	Snapshot metrics.Snapshot `json:"snapshot"`
	// Fleet is the coordinator's per-worker view (absent on plain servers).
	Fleet []fleet.WorkerStatus `json:"fleet,omitempty"`
}

// handleMetrics serves the merged metrics snapshot.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	live := s.reg.Snapshot()
	s.mu.Lock()
	cum := s.cum
	s.mu.Unlock()
	body := metricsBody{Snapshot: cum.Merge(live)}
	if c := s.coordinator(); c != nil {
		body.Fleet = c.Workerz()
	}
	writeJSON(w, http.StatusOK, body)
}
