package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"secdir/internal/fleet"
	"secdir/internal/store"
)

// This file is the server's provenance face: with a store attached
// (AttachStore, secdir-serve -store-dir) every job lifecycle lands in the
// hash-chained run ledger, completed results become content-addressed
// artifacts, a restart replays the ledger — finished jobs answer
// /jobs/{id}/result byte-identically again, jobs that were still queued are
// re-submitted — and /storez exposes the chain head. /versionz serves the
// binary's build info whether or not a store is attached: it is the same
// store.BuildInfo struct every ledger record carries.

// StoreRecovery summarises what AttachStore replayed from the ledger.
type StoreRecovery struct {
	// Restored counts terminal jobs (done/failed/canceled) whose state and
	// results are being served again.
	Restored int
	// Resubmitted lists the IDs of jobs that were queued or requeued when
	// the previous process stopped and are now queued to run again.
	Resubmitted []string
	// Dropped lists jobs the replay could not recover (unparseable spec,
	// missing artifact, queue full on resubmission), with reasons.
	Dropped []string
}

// AttachStore attaches st and replays its ledger into the job table. Call
// before serving traffic, at most once. Jobs whose last record is terminal
// come back terminal (done jobs serve their recorded result artifact
// byte-for-byte); jobs whose last record is "queued" or "requeued" are
// re-submitted onto the queue under their original IDs.
func (s *Server) AttachStore(st *store.Store) (*StoreRecovery, error) {
	recs, err := st.Records()
	if err != nil {
		return nil, fmt.Errorf("server: store replay: %w", err)
	}

	// Last job record wins: a job requeued by one process and completed by
	// the next has both records, and only the terminal one matters.
	last := map[string]store.RunRecord{}
	var order []string
	maxID := 0
	for _, rec := range recs {
		if rec.Kind != store.KindJob || rec.JobID == "" {
			continue
		}
		if _, seen := last[rec.JobID]; !seen {
			order = append(order, rec.JobID)
		}
		last[rec.JobID] = rec
		if n, err := strconv.Atoi(strings.TrimPrefix(rec.JobID, "job-")); err == nil && n > maxID {
			maxID = n
		}
	}

	rc := &StoreRecovery{}
	var resubmitted []*Job
	now := time.Now()
	s.mu.Lock()
	s.st = st
	for _, id := range order {
		rec := last[id]
		if _, exists := s.jobs[id]; exists {
			continue
		}
		var spec JobSpec
		if err := json.Unmarshal(rec.Spec, &spec); err != nil {
			rc.Dropped = append(rc.Dropped, id+": unparseable spec: "+err.Error())
			continue
		}
		switch rec.State {
		case string(StateDone):
			data, err := st.Artifact(rec.ResultDigest)
			if err != nil {
				rc.Dropped = append(rc.Dropped, id+": "+err.Error())
				continue
			}
			j := recoveredJob(id, spec, StateDone, json.RawMessage(data), nil, rec)
			s.jobs[id] = j
			s.order = append(s.order, id)
			rc.Restored++
		case string(StateFailed), string(StateCanceled):
			j := recoveredJob(id, spec, JobState(rec.State), nil, errors.New(rec.Err), rec)
			s.jobs[id] = j
			s.order = append(s.order, id)
			rc.Restored++
		case string(StateQueued), string(StateRequeued):
			ctx, cancel := context.WithCancel(context.Background())
			j := newJob(id, spec, ctx, cancel, now)
			select {
			case s.queue <- j:
				s.jobs[id] = j
				s.order = append(s.order, id)
				rc.Resubmitted = append(rc.Resubmitted, id)
				resubmitted = append(resubmitted, j)
			default:
				cancel()
				rc.Dropped = append(rc.Dropped, id+": queue full on resubmission")
			}
		default:
			rc.Dropped = append(rc.Dropped, id+": unknown recorded state "+rec.State)
		}
	}
	if maxID > s.nextID {
		s.nextID = maxID
	}
	s.mu.Unlock()
	// The resubmission itself is an auditable event: each re-enqueued job gets
	// a fresh "queued" record, so the ledger reads
	// queued → requeued → queued → done across the restart.
	for _, j := range resubmitted {
		s.recordJob(j, StateQueued, nil)
	}
	return rc, nil
}

// recoveredJob rebuilds a terminal job from its ledger record.
func recoveredJob(id string, spec JobSpec, state JobState, result any, err error, rec store.RunRecord) *Job {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // terminal: nothing to abort, but Cancel must stay safe to call
	j := newJob(id, spec, ctx, cancel, rec.Submitted)
	j.state = state
	j.started = rec.Started
	j.finished = rec.Finished
	j.result = result
	j.err = err
	return j
}

// storeHandle returns the attached store, or nil.
func (s *Server) storeHandle() *store.Store {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.st
}

// recordJob appends one job lifecycle record to the ledger (a no-op without
// a store). result, when non-nil, is stored as a content-addressed artifact
// first. Failures never fail the job: they are counted and surfaced in
// /storez.
func (s *Server) recordJob(j *Job, state JobState, result any) {
	st := s.storeHandle()
	if st == nil {
		return
	}
	rec, err := jobRecord(j, state)
	if err == nil && result != nil {
		rec.ResultDigest, err = st.PutArtifact(result)
	}
	if err == nil {
		_, err = st.Append(rec)
	}
	if err != nil {
		s.noteStoreErr(err)
	}
}

// jobRecord builds the ledger record describing j at state.
func jobRecord(j *Job, state JobState) (store.RunRecord, error) {
	spec, err := store.CanonicalJSON(j.Spec)
	if err != nil {
		return store.RunRecord{}, err
	}
	status := j.Status()
	rec := store.RunRecord{
		Kind:         store.KindJob,
		JobID:        j.ID,
		State:        string(state),
		Spec:         spec,
		Seed:         j.Spec.Seed,
		EngineShards: j.Spec.EngineShards,
		EngineWindow: j.Spec.EngineWindow,
		Strategy:     strings.Join(j.Spec.Strategies, ","),
		Submitted:    status.Submitted,
		Started:      status.Started,
		Finished:     status.Finished,
		Err:          status.Err,
	}
	return rec, nil
}

// recordFleetMerge appends a KindFleetMerge ledger record for a completed
// fleet sweep: its artifact is the per-shard provenance list — which worker's
// result each trial range of each cell was merged from. A no-op without a
// store; failures are counted, never fatal to the job.
func (s *Server) recordFleetMerge(j *Job, prov []fleet.ShardProvenance) {
	st := s.storeHandle()
	if st == nil || len(prov) == 0 {
		return
	}
	dig, err := st.PutArtifact(prov)
	if err == nil {
		_, err = st.Append(store.RunRecord{
			Kind:         store.KindFleetMerge,
			JobID:        j.ID,
			Name:         string(j.Spec.Kind),
			Seed:         j.Spec.Seed,
			Strategy:     strings.Join(j.Spec.Strategies, ","),
			ResultDigest: dig,
		})
	}
	if err != nil {
		s.noteStoreErr(err)
	}
}

// noteStoreErr counts a store write failure and keeps the latest message for
// /storez.
func (s *Server) noteStoreErr(err error) {
	s.storeErrs.Inc()
	s.mu.Lock()
	s.lastStoreErr = err.Error()
	s.mu.Unlock()
}

// storezBody is the JSON shape of GET /storez: the chain head and artifact
// accounting of the attached store.
type storezBody struct {
	// Stats is the store's live accounting (chain head, record/artifact
	// counts, batcher state).
	Stats store.Stats `json:"stats"`
	// ArtifactsOnBackend counts artifacts present on the backend, including
	// ones written by earlier processes.
	ArtifactsOnBackend int `json:"artifacts_on_backend"`
	// LastError is the most recent store write failure ("" when healthy).
	LastError string `json:"last_error,omitempty"`
}

// handleStorez serves the store's chain head and counters; 404 when the
// server runs without a store.
func (s *Server) handleStorez(w http.ResponseWriter, r *http.Request) {
	st := s.storeHandle()
	if st == nil {
		writeError(w, http.StatusNotFound, "this server has no experiment store attached (start with -store-dir)")
		return
	}
	arts, err := st.Backend().ListArtifacts()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	s.mu.Lock()
	lastErr := s.lastStoreErr
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, storezBody{
		Stats:              st.Stats(),
		ArtifactsOnBackend: len(arts),
		LastError:          lastErr,
	})
}

// handleVersionz serves the binary's build info — module path and version,
// VCS revision, go version — the exact struct each ledger record's "build"
// field carries, so operators can check a running server against its ledger.
func (s *Server) handleVersionz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, store.Build())
}
