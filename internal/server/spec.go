// Package server turns the SecDir simulator into a long-lived, multi-tenant
// service: an HTTP/JSON job server that queues simulation requests — paper
// experiments, attack scenarios, and trace replays — with bounded queueing
// and backpressure, executes them on a worker pool, and exposes job
// submit/status/result/cancel endpoints, streamed progress, and a metrics
// snapshot endpoint. It also owns the run-spec vocabulary the cmd tools
// share: workload spec strings (ParseWorkload) and the attack suite runner
// (RunAttackSuite).
package server

import (
	"fmt"
	"strconv"
	"strings"

	"secdir/internal/addr"
	"secdir/internal/leakage"
	"secdir/internal/trace"
)

// JobKind selects what a submitted job simulates.
type JobKind string

const (
	// KindExperiment reruns one or more of the paper's experiments
	// (A1,F5,F6,F7,F8,T6,T7,S1,SC,ALT) — the F5/F6/T7-style jobs.
	KindExperiment JobKind = "experiment"
	// KindAttack mounts the §2.2/§9 attack suite (evict+reload, prime+probe,
	// evict+time, AES key recovery) against one or both directory designs.
	KindAttack JobKind = "attack"
	// KindReplay runs a single workload spec (mixN, a PARSEC name, aes,
	// uniform:N, stream:N, or file:path) on one directory design and reports
	// IPC and miss breakdowns.
	KindReplay JobKind = "replay"
	// KindLeak runs the internal/leakage Monte-Carlo lab: N seeded trials per
	// (config, strategy) cell and statistical LEAK/NO-LEAK verdicts (TVLA
	// Welch t, channel capacity, bootstrap-bounded AUC).
	KindLeak JobKind = "leak"
	// KindLeaderboard races the cross-defense roster through the leakage lab
	// and joins each defense's deterministic performance and cost columns.
	KindLeaderboard JobKind = "leaderboard"
)

// ExperimentIDs lists the accepted experiment identifiers, in the canonical
// order DESIGN.md uses.
var ExperimentIDs = []string{"A1", "F5", "F6", "F7", "F8", "T6", "T7", "S1", "SC", "ALT"}

// JobSpec is the JSON body of a job submission. Zero fields take defaults in
// Normalize; Kind is mandatory.
type JobSpec struct {
	// Kind selects the job type.
	Kind JobKind `json:"kind"`

	// Experiments (KindExperiment) lists experiment IDs; empty means all.
	Experiments []string `json:"experiments,omitempty"`

	// Warmup and Measure are per-core access counts for simulation-backed
	// jobs (defaults 20k/20k — server jobs favour latency over precision;
	// submit longer runs explicitly for paper-grade numbers).
	Warmup  uint64 `json:"warmup,omitempty"`
	Measure uint64 `json:"measure,omitempty"`
	// Cores is the machine size (default 8, power of two).
	Cores int `json:"cores,omitempty"`
	// Seed makes runs reproducible (default 1).
	Seed int64 `json:"seed,omitempty"`

	// Design (KindAttack, KindReplay) selects the directory: "baseline",
	// "secdir", "waypart", "randmap", or — attack jobs only — "both"
	// (the default there; replay defaults to "secdir").
	Design string `json:"design,omitempty"`

	// Rounds and EvictionLines (KindAttack) size the attack (defaults 40/32).
	Rounds        int `json:"rounds,omitempty"`
	EvictionLines int `json:"eviction_lines,omitempty"`

	// Workload (KindReplay) is a ParseWorkload spec (default "mix0").
	Workload string `json:"workload,omitempty"`

	// Configs (KindLeak) lists the directory configurations to compare
	// (skylake-unfixed, skylake-fixed, secdir); empty means all three.
	Configs []string `json:"configs,omitempty"`
	// Strategies (KindLeak) lists the attacks to quantify; empty means the
	// default suite (every strategy but floodreload).
	Strategies []string `json:"strategies,omitempty"`
	// Trials (KindLeak) is the independent seeded trials per cell (default
	// 200 — server jobs favour latency; submit more for paper-grade CIs).
	Trials int `json:"trials,omitempty"`
	// Workers (KindLeak) bounds the trial-runner fan-out (0 = GOMAXPROCS).
	Workers int `json:"workers,omitempty"`

	// Confidence and Resamples (KindLeak) shape the AUC bootstrap
	// (defaults 0.99 / 400).
	Confidence float64 `json:"confidence,omitempty"`
	Resamples  int     `json:"resamples,omitempty"`
	// PerfAccesses (KindLeaderboard) sizes the deterministic latency probe
	// (default 100k).
	PerfAccesses int `json:"perf_accesses,omitempty"`

	// EngineShards (KindLeak, KindLeaderboard, KindReplay), when > 1, runs
	// each engine with its directory slices sharded over that many
	// goroutines. Results are bit-identical to the serial engine by
	// construction, so the field is an execution knob, not a model knob; it
	// is still recorded in the run ledger for full provenance. Ignored by
	// fleet execution (workers pick their own engine layout — results match
	// regardless).
	EngineShards int `json:"engine_shards,omitempty"`
	// EngineWindow (same kinds), when > 1 with EngineShards > 1, schedules
	// accesses through conflict windows of up to this many transactions.
	// Bit-identical like EngineShards, and recorded alongside it.
	EngineWindow int `json:"engine_window,omitempty"`

	// Fleet (KindLeak, KindLeaderboard) asks the server to run the sweep
	// across its worker fleet instead of in-process. Rejected unless the
	// server was started as a coordinator.
	Fleet bool `json:"fleet,omitempty"`
}

// Normalize applies defaults and validates the spec, returning a descriptive
// error for a submission the server must reject.
func (s *JobSpec) Normalize() error {
	if s.Warmup == 0 && s.Measure == 0 {
		s.Warmup, s.Measure = 20_000, 20_000
	}
	if s.Cores == 0 {
		s.Cores = 8
	}
	if s.Cores <= 0 || s.Cores&(s.Cores-1) != 0 {
		return fmt.Errorf("cores must be a positive power of two, got %d", s.Cores)
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	switch s.Kind {
	case KindExperiment:
		if len(s.Experiments) == 0 {
			s.Experiments = append([]string(nil), ExperimentIDs...)
		}
		known := map[string]bool{}
		for _, id := range ExperimentIDs {
			known[id] = true
		}
		for i, id := range s.Experiments {
			id = strings.ToUpper(strings.TrimSpace(id))
			if !known[id] {
				return fmt.Errorf("unknown experiment %q (want one of %s)", id, strings.Join(ExperimentIDs, ","))
			}
			s.Experiments[i] = id
		}
	case KindAttack:
		if s.Design == "" {
			s.Design = "both"
		}
		switch s.Design {
		case "baseline", "secdir", "both":
		default:
			return fmt.Errorf("attack design must be baseline, secdir, or both, got %q", s.Design)
		}
		if s.Rounds == 0 {
			s.Rounds = 40
		}
		if s.EvictionLines == 0 {
			s.EvictionLines = 32
		}
		if s.Rounds < 1 || s.EvictionLines < 1 {
			return fmt.Errorf("rounds and eviction_lines must be >= 1, got %d/%d", s.Rounds, s.EvictionLines)
		}
	case KindReplay:
		if s.Design == "" {
			s.Design = "secdir"
		}
		switch s.Design {
		case "baseline", "secdir", "waypart", "randmap", "skewed", "dls", "tagpart", "ceaser":
		default:
			return fmt.Errorf("replay design must be baseline, secdir, waypart, randmap, skewed, dls, tagpart, or ceaser, got %q", s.Design)
		}
		if s.Workload == "" {
			s.Workload = "mix0"
		}
	case KindLeak, KindLeaderboard:
		if s.Kind == KindLeaderboard && len(s.Configs) == 0 {
			s.Configs = append([]string(nil), leakage.LeaderboardNames...)
		}
		configs, err := leakage.ParseConfigList(strings.Join(s.Configs, ","), s.Cores)
		if err != nil {
			return err
		}
		s.Configs = configs
		stratSpec := strings.Join(s.Strategies, ",")
		if s.Kind == KindLeaderboard && stratSpec == "" {
			stratSpec = strings.Join(leakage.LeaderboardStrategies, ",")
		}
		strategies, err := leakage.ParseStrategyList(stratSpec)
		if err != nil {
			return err
		}
		s.Strategies = leakage.StrategyNames(strategies)
		if s.Trials == 0 {
			s.Trials = 200
		}
		if s.Rounds == 0 {
			s.Rounds = 16
		}
		if s.Trials < 2 || s.Rounds < 2 {
			return fmt.Errorf("leak jobs need trials and rounds >= 2, got %d/%d", s.Trials, s.Rounds)
		}
		if s.Workers < 0 || s.EvictionLines < 0 {
			return fmt.Errorf("workers and eviction_lines must be >= 0, got %d/%d", s.Workers, s.EvictionLines)
		}
		if s.Confidence < 0 || s.Confidence >= 1 {
			return fmt.Errorf("confidence must be in [0,1), got %v", s.Confidence)
		}
		if s.Resamples < 0 || s.PerfAccesses < 0 {
			return fmt.Errorf("resamples and perf_accesses must be >= 0, got %d/%d", s.Resamples, s.PerfAccesses)
		}
	default:
		return fmt.Errorf("unknown job kind %q (want experiment, attack, replay, leak, or leaderboard)", s.Kind)
	}
	if s.EngineShards < 0 || s.EngineWindow < 0 {
		return fmt.Errorf("engine_shards and engine_window must be >= 0, got %d/%d", s.EngineShards, s.EngineWindow)
	}
	if s.Fleet && s.Kind != KindLeak && s.Kind != KindLeaderboard {
		return fmt.Errorf("fleet execution is only available for leak and leaderboard jobs, not %q", s.Kind)
	}
	return nil
}

// ParseWorkload builds a workload from its spec string — the shared
// vocabulary of the cmd tools and replay jobs:
//
//	mixN           one of the 12 Table 5 SPEC mixes
//	<parsec name>  a PARSEC application (trace.ParsecApps)
//	aes            the AES victim on core 0, idle elsewhere
//	uniform:N      per-core uniform random over N lines
//	stream:N       per-core streaming over N lines
//	file:PATH      a recorded .sdtr trace replayed on core 0
func ParseWorkload(spec string, cores int, seed int64) (trace.Workload, error) {
	switch {
	case strings.HasPrefix(spec, "mix"):
		i, err := strconv.Atoi(strings.TrimPrefix(spec, "mix"))
		if err != nil {
			return trace.Workload{}, fmt.Errorf("bad mix spec %q", spec)
		}
		return trace.NewSpecMix(i, cores, seed)
	case spec == "aes":
		gens := make([]trace.Generator, cores)
		var key [16]byte
		for i := range key {
			key[i] = byte(i)
		}
		gens[0] = trace.NewAESVictim(key, seed)
		for c := 1; c < cores; c++ {
			gens[c] = trace.NewIdle(addr.Line(uint64(c+1) << 30))
		}
		return trace.Workload{Name: "aes", Gens: gens}, nil
	case strings.HasPrefix(spec, "file:"):
		path := strings.TrimPrefix(spec, "file:")
		// The file is mapped read-only and validated up front; records decode
		// in place as the simulation consumes them. The mapping lives until
		// the workload is Closed.
		mt, err := trace.OpenMappedTrace(path)
		if err != nil {
			return trace.Workload{}, err
		}
		rep, err := mt.Replay()
		if err != nil {
			mt.Close()
			return trace.Workload{}, err
		}
		// The recorded stream drives core 0; other cores idle in private
		// regions so the machine shape matches the recording's.
		gens := make([]trace.Generator, cores)
		gens[0] = &fileReplay{Generator: rep, t: mt}
		for c := 1; c < cores; c++ {
			gens[c] = trace.NewIdle(addr.Line(uint64(c+1) << 30))
		}
		return trace.Workload{Name: spec, Gens: gens}, nil
	case strings.HasPrefix(spec, "uniform:"), strings.HasPrefix(spec, "stream:"):
		parts := strings.SplitN(spec, ":", 2)
		lines, err := strconv.Atoi(parts[1])
		if err != nil || lines <= 0 {
			return trace.Workload{}, fmt.Errorf("bad %s spec %q", parts[0], spec)
		}
		gens := make([]trace.Generator, cores)
		for c := 0; c < cores; c++ {
			base := addr.Line(uint64(c+1) << 24)
			if parts[0] == "uniform" {
				gens[c] = trace.NewUniform(base, lines, 0.25, 4, seed+int64(c))
			} else {
				gens[c] = trace.NewStream(base, lines, 0.25, 4, seed+int64(c))
			}
		}
		return trace.Workload{Name: spec, Gens: gens}, nil
	default:
		if _, ok := trace.ParsecApps[spec]; ok {
			return trace.NewParsecWorkload(spec, cores, seed)
		}
		return trace.Workload{}, fmt.Errorf("unknown workload %q (mixN, PARSEC name, aes, uniform:N, stream:N, file:PATH)", spec)
	}
}

// fileReplay couples the replay generator with the trace mapping it decodes
// from so Workload.Close releases the mapping.
type fileReplay struct {
	trace.Generator
	t *trace.MappedTrace
}

// Close implements the closer contract Workload.Close looks for.
func (r *fileReplay) Close() error { return r.t.Close() }
