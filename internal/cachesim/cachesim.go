// Package cachesim provides a generic set-associative tag cache used to model
// the private L1 and L2 caches of the simulated machine. The cache stores a
// caller-defined payload per line (e.g. a MOESI state); data values are never
// modeled — the simulator is behavioural.
package cachesim

import (
	"secdir/internal/addr"
	"secdir/internal/rng"
)

// Policy selects the replacement policy of a Cache.
type Policy int

const (
	// LRU evicts the least recently used way.
	LRU Policy = iota
	// Random evicts a uniformly random way (the paper uses random
	// replacement in ED and VD, §7).
	Random
	// SRRIP is static re-reference interval prediction (Jaleel et al.,
	// 2-bit RRPV): hits predict near re-reference, fills predict long,
	// victims are distant lines. Scan-resistant, close to what commercial
	// LLCs implement.
	SRRIP
	// PLRU is the classic tree pseudo-LRU (requires power-of-two ways).
	PLRU
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "lru"
	case Random:
		return "random"
	case SRRIP:
		return "srrip"
	case PLRU:
		return "plru"
	default:
		return "unknown-policy"
	}
}

// srripMax is the distant re-reference value for the 2-bit RRPV.
const srripMax = 3

// IndexFunc maps a line address to a set index.
type IndexFunc func(addr.Line) int

// Index maps a line address to a set index. The common shift-and-mask
// indexings are stored as data (shift amount + mask) so every probe is two
// ALU ops instead of a closure call; arbitrary indexings fall back to a
// function. Construct with ModIndex, ShiftIndex or FuncIndex.
type Index struct {
	direct bool
	shift  uint8
	mask   addr.Line
	fn     IndexFunc
}

// ModIndex returns an Index that uses the low line-address bits,
// the conventional indexing of private caches.
func ModIndex(sets int) Index {
	return ShiftIndex(0, sets)
}

// ShiftIndex returns an Index selecting sets from the line-address bits
// starting at bit shift: set = (line >> shift) & (sets-1).
func ShiftIndex(shift uint, sets int) Index {
	if sets <= 0 || sets&(sets-1) != 0 {
		panic("cachesim: set count must be a positive power of two")
	}
	if shift > 63 {
		panic("cachesim: shift out of range")
	}
	return Index{direct: true, shift: uint8(shift), mask: addr.Line(sets - 1)}
}

// FuncIndex wraps an arbitrary indexing function (keyed/randomized
// indexings). It keeps the per-probe closure call that the direct forms
// avoid, so use it only where the indexing really is data-dependent.
func FuncIndex(fn IndexFunc) Index {
	if fn == nil {
		panic("cachesim: nil index function")
	}
	return Index{fn: fn}
}

// Of returns the set index for a line.
func (ix Index) Of(l addr.Line) int {
	if ix.direct {
		return int((l >> ix.shift) & ix.mask)
	}
	return ix.fn(l)
}

// invalidTag marks an empty way in the tags array. Line addresses carry at
// most addr.LineBits (34) significant bits, so the all-ones value can never
// collide with a real line.
const invalidTag = ^addr.Line(0)

// wayMeta is the per-way replacement state and payload. It lives in a
// separate array from the tags so the tag-match scan — the hottest loop in
// the simulator — walks a dense 8-byte-per-way array: a 16-way set is two
// host cache lines of tags instead of six lines of interleaved structs.
type wayMeta[P any] struct {
	tick uint64
	data P
	rrpv uint8 // SRRIP re-reference prediction value
}

// Cache is a set-associative tag cache with payload type P.
// It is not safe for concurrent use; the simulator is sequential.
type Cache[P any] struct {
	sets       int
	ways       int
	index      Index
	policy     Policy
	plruLevels int
	rng        rng.Rand // used by Random only; a bare uint64, never heap-allocated
	tags       []addr.Line
	meta       []wayMeta[P]
	plru       []uint64 // per-set PLRU tree bits
	clock      uint64
	count      int
}

// New returns a Cache with the given geometry. The index maps lines to sets;
// use ModIndex for conventional caches. The seed feeds the Random policy's
// generator; deterministic policies (LRU/PLRU/SRRIP) carry no random state
// beyond the embedded seed word — nothing is allocated for it either way.
func New[P any](sets, ways int, index Index, policy Policy, seed int64) *Cache[P] {
	if sets <= 0 || ways <= 0 {
		panic("cachesim: sets and ways must be positive")
	}
	if policy == PLRU && (ways&(ways-1) != 0 || ways > 64) {
		panic("cachesim: PLRU requires a power-of-two associativity up to 64")
	}
	c := &Cache[P]{
		sets:   sets,
		ways:   ways,
		index:  index,
		policy: policy,
		tags:   make([]addr.Line, sets*ways),
		meta:   make([]wayMeta[P], sets*ways),
	}
	for i := range c.tags {
		c.tags[i] = invalidTag
	}
	if policy == Random {
		c.rng = rng.New(seed)
	}
	if policy == PLRU {
		c.plru = make([]uint64, sets)
		for 1<<c.plruLevels < ways {
			c.plruLevels++
		}
	}
	return c
}

// Sets returns the number of sets.
func (c *Cache[P]) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache[P]) Ways() int { return c.ways }

// Len returns the number of valid lines currently cached.
func (c *Cache[P]) Len() int { return c.count }

// SetOf returns the set index a line maps to.
func (c *Cache[P]) SetOf(l addr.Line) int { return c.index.Of(l) }

// findIdx returns the flat way index of l, or -1 when absent.
func (c *Cache[P]) findIdx(l addr.Line) int {
	base := c.index.Of(l) * c.ways
	t := c.tags[base : base+c.ways]
	for i := range t {
		if t[i] == l {
			return base + i
		}
	}
	return -1
}

// Probe reports whether the line is cached, without updating replacement
// state. The returned pointer stays valid until the next Put or Remove and
// may be used to mutate the payload in place.
func (c *Cache[P]) Probe(l addr.Line) (*P, bool) {
	if i := c.findIdx(l); i >= 0 {
		return &c.meta[i].data, true
	}
	return nil, false
}

// Access looks up the line and, on a hit, promotes it per the replacement
// policy (most-recently-used for LRU/PLRU, near re-reference for SRRIP).
func (c *Cache[P]) Access(l addr.Line) (*P, bool) {
	set := c.index.Of(l)
	base := set * c.ways
	t := c.tags[base : base+c.ways]
	for i := range t {
		if t[i] == l {
			c.clock++
			m := &c.meta[base+i]
			m.tick = c.clock
			m.rrpv = 0
			if c.policy == PLRU {
				c.plruTouch(set, i)
			}
			return &m.data, true
		}
	}
	return nil, false
}

// plruTouch flips the tree bits on the path to w so they point away from it.
func (c *Cache[P]) plruTouch(set, w int) {
	node := 1
	for level := c.plruLevels - 1; level >= 0; level-- {
		right := w>>uint(level)&1 == 1
		if right {
			c.plru[set] &^= 1 << uint(node) // 0 = points left (away from right child)
			node = node*2 + 1
		} else {
			c.plru[set] |= 1 << uint(node) // 1 = points right
			node = node * 2
		}
	}
}

// plruVictim follows the tree bits to the pseudo-LRU way.
func (c *Cache[P]) plruVictim(set int) int {
	node := 1
	w := 0
	for level := 0; level < c.plruLevels; level++ {
		right := c.plru[set]&(1<<uint(node)) != 0
		w <<= 1
		if right {
			w |= 1
			node = node*2 + 1
		} else {
			node = node * 2
		}
	}
	return w
}

// Victim is a line evicted by Put.
type Victim[P any] struct {
	Line addr.Line
	Data P
}

// Put inserts the line with the given payload, evicting a victim from the
// set if it is full. If the line is already present its payload is replaced
// in place and no eviction occurs. The second result reports whether a
// victim was evicted.
func (c *Cache[P]) Put(l addr.Line, data P) (Victim[P], bool) {
	c.clock++
	set := c.index.Of(l)
	base := set * c.ways
	t := c.tags[base : base+c.ways]
	if c.policy == LRU {
		// Fused scan: hit / first-invalid / least-recent victim in one pass.
		// Fills hit full sets in steady state, so the victim search is the
		// common case and folding it into the tag scan saves a second pass.
		m := c.meta[base : base+c.ways]
		inv, vi := -1, 0
		minTick := ^uint64(0)
		for i := range t {
			switch t[i] {
			case l:
				m[i].data = data
				m[i].tick = c.clock
				return Victim[P]{}, false
			case invalidTag:
				if inv < 0 {
					inv = i
				}
			default:
				if m[i].tick < minTick {
					minTick = m[i].tick
					vi = i
				}
			}
		}
		if inv >= 0 {
			t[inv] = l
			m[inv] = wayMeta[P]{tick: c.clock, data: data}
			c.count++
			return Victim[P]{}, false
		}
		v := Victim[P]{Line: t[vi], Data: m[vi].data}
		t[vi] = l
		m[vi] = wayMeta[P]{tick: c.clock, data: data}
		return v, true
	}
	inv := -1
	for i := range t {
		if t[i] == l {
			m := &c.meta[base+i]
			m.data = data
			m.tick = c.clock
			return Victim[P]{}, false
		}
		if t[i] == invalidTag && inv < 0 {
			inv = i
		}
	}
	if inv >= 0 {
		t[inv] = l
		c.meta[base+inv] = wayMeta[P]{tick: c.clock, rrpv: fillRRPV(c.policy), data: data}
		c.count++
		if c.policy == PLRU {
			c.plruTouch(set, inv)
		}
		return Victim[P]{}, false
	}
	vi := 0
	switch c.policy {
	case Random:
		vi = c.rng.Intn(c.ways)
	case SRRIP:
		vi = c.srripVictim(base)
	case PLRU:
		vi = c.plruVictim(set)
	}
	v := Victim[P]{Line: t[vi], Data: c.meta[base+vi].data}
	t[vi] = l
	c.meta[base+vi] = wayMeta[P]{tick: c.clock, rrpv: fillRRPV(c.policy), data: data}
	if c.policy == PLRU {
		c.plruTouch(set, vi)
	}
	return v, true
}

// fillRRPV is the re-reference prediction assigned to a fresh fill: SRRIP
// predicts a long interval (max-1) so scans age out before resident lines.
func fillRRPV(p Policy) uint8 {
	if p == SRRIP {
		return srripMax - 1
	}
	return 0
}

// srripVictim finds (aging as needed) a way predicted for distant reuse.
func (c *Cache[P]) srripVictim(base int) int {
	m := c.meta[base : base+c.ways]
	for {
		for i := range m {
			if m[i].rrpv >= srripMax {
				return i
			}
		}
		for i := range m {
			m[i].rrpv++
		}
	}
}

// Remove invalidates the line, returning its payload if it was present.
func (c *Cache[P]) Remove(l addr.Line) (P, bool) {
	var zero P
	if i := c.findIdx(l); i >= 0 {
		d := c.meta[i].data
		c.tags[i] = invalidTag
		c.meta[i] = wayMeta[P]{}
		c.count--
		return d, true
	}
	return zero, false
}

// LinesInSet returns the valid lines currently in the given set,
// in way order. It is used by tests and the attack toolkit.
func (c *Cache[P]) LinesInSet(set int) []addr.Line {
	base := set * c.ways
	var out []addr.Line
	for _, tag := range c.tags[base : base+c.ways] {
		if tag != invalidTag {
			out = append(out, tag)
		}
	}
	return out
}

// Range calls fn for every valid line until fn returns false.
func (c *Cache[P]) Range(fn func(l addr.Line, data *P) bool) {
	for i := range c.tags {
		if c.tags[i] != invalidTag {
			if !fn(c.tags[i], &c.meta[i].data) {
				return
			}
		}
	}
}
