// Package cachesim provides a generic set-associative tag cache used to model
// the private L1 and L2 caches of the simulated machine. The cache stores a
// caller-defined payload per line (e.g. a MOESI state); data values are never
// modeled — the simulator is behavioural.
package cachesim

import (
	"secdir/internal/addr"
	"secdir/internal/rng"
)

// Policy selects the replacement policy of a Cache.
type Policy int

const (
	// LRU evicts the least recently used way.
	LRU Policy = iota
	// Random evicts a uniformly random way (the paper uses random
	// replacement in ED and VD, §7).
	Random
	// SRRIP is static re-reference interval prediction (Jaleel et al.,
	// 2-bit RRPV): hits predict near re-reference, fills predict long,
	// victims are distant lines. Scan-resistant, close to what commercial
	// LLCs implement.
	SRRIP
	// PLRU is the classic tree pseudo-LRU (requires power-of-two ways).
	PLRU
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "lru"
	case Random:
		return "random"
	case SRRIP:
		return "srrip"
	case PLRU:
		return "plru"
	default:
		return "unknown-policy"
	}
}

// srripMax is the distant re-reference value for the 2-bit RRPV.
const srripMax = 3

// IndexFunc maps a line address to a set index.
type IndexFunc func(addr.Line) int

// Index maps a line address to a set index. The common shift-and-mask
// indexings are stored as data (shift amount + mask) so every probe is two
// ALU ops instead of a closure call; arbitrary indexings fall back to a
// function. Construct with ModIndex, ShiftIndex or FuncIndex.
type Index struct {
	direct bool
	shift  uint8
	mask   addr.Line
	fn     IndexFunc
}

// ModIndex returns an Index that uses the low line-address bits,
// the conventional indexing of private caches.
func ModIndex(sets int) Index {
	return ShiftIndex(0, sets)
}

// ShiftIndex returns an Index selecting sets from the line-address bits
// starting at bit shift: set = (line >> shift) & (sets-1).
func ShiftIndex(shift uint, sets int) Index {
	if sets <= 0 || sets&(sets-1) != 0 {
		panic("cachesim: set count must be a positive power of two")
	}
	if shift > 63 {
		panic("cachesim: shift out of range")
	}
	return Index{direct: true, shift: uint8(shift), mask: addr.Line(sets - 1)}
}

// FuncIndex wraps an arbitrary indexing function (keyed/randomized
// indexings). It keeps the per-probe closure call that the direct forms
// avoid, so use it only where the indexing really is data-dependent.
func FuncIndex(fn IndexFunc) Index {
	if fn == nil {
		panic("cachesim: nil index function")
	}
	return Index{fn: fn}
}

// Of returns the set index for a line.
func (ix Index) Of(l addr.Line) int {
	if ix.direct {
		return int((l >> ix.shift) & ix.mask)
	}
	return ix.fn(l)
}

// invalidTag marks an empty way in the tags array. Line addresses carry at
// most addr.LineBits (34) significant bits, so the all-ones value can never
// collide with a real line.
const invalidTag = ^addr.Line(0)

// Cache is a set-associative tag cache with payload type P.
// It is not safe for concurrent use; the simulator is sequential.
//
// Storage is structure-of-arrays: tags, replacement ticks, payloads and SRRIP
// state each live in their own dense array. The tag-match scan — the hottest
// loop in the simulator — walks only the 8-byte tag words; the LRU victim
// search additionally walks the dense tick array; the payload array is
// touched for at most one way per operation. With interleaved per-way structs
// a 16-way LRU fill read up to six host cache lines of metadata; the split
// layout reads two lines of tags plus two of ticks.
type Cache[P any] struct {
	sets       int
	ways       int
	index      Index
	policy     Policy
	plruLevels int
	rng        rng.Rand // used by Random only; a bare uint64, never heap-allocated
	tags       []addr.Line
	ticks      []uint64
	data       []P
	rrpv       []uint8  // SRRIP re-reference values (allocated for SRRIP only)
	plru       []uint64 // per-set PLRU tree bits
	clock      uint64
	count      int
	gen        uint32 // bumped on every Put/PutAt/Remove; invalidates Cursors
}

// New returns a Cache with the given geometry. The index maps lines to sets;
// use ModIndex for conventional caches. The seed feeds the Random policy's
// generator; deterministic policies (LRU/PLRU/SRRIP) carry no random state
// beyond the embedded seed word — nothing is allocated for it either way.
func New[P any](sets, ways int, index Index, policy Policy, seed int64) *Cache[P] {
	if sets <= 0 || ways <= 0 {
		panic("cachesim: sets and ways must be positive")
	}
	if policy == PLRU && (ways&(ways-1) != 0 || ways > 64) {
		panic("cachesim: PLRU requires a power-of-two associativity up to 64")
	}
	c := &Cache[P]{
		sets:   sets,
		ways:   ways,
		index:  index,
		policy: policy,
		tags:   make([]addr.Line, sets*ways),
		ticks:  make([]uint64, sets*ways),
		data:   make([]P, sets*ways),
	}
	for i := range c.tags {
		c.tags[i] = invalidTag
	}
	if policy == Random {
		c.rng = rng.New(seed)
	}
	if policy == SRRIP {
		c.rrpv = make([]uint8, sets*ways)
	}
	if policy == PLRU {
		c.plru = make([]uint64, sets)
		for 1<<c.plruLevels < ways {
			c.plruLevels++
		}
	}
	return c
}

// Sets returns the number of sets.
func (c *Cache[P]) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache[P]) Ways() int { return c.ways }

// Len returns the number of valid lines currently cached.
func (c *Cache[P]) Len() int { return c.count }

// SetOf returns the set index a line maps to.
func (c *Cache[P]) SetOf(l addr.Line) int { return c.index.Of(l) }

// findIdx returns the flat way index of l, or -1 when absent.
func (c *Cache[P]) findIdx(l addr.Line) int {
	base := c.index.Of(l) * c.ways
	t := c.tags[base : base+c.ways]
	for i := range t {
		if t[i] == l {
			return base + i
		}
	}
	return -1
}

// Probe reports whether the line is cached, without updating replacement
// state. The returned pointer stays valid until the next Put or Remove and
// may be used to mutate the payload in place.
func (c *Cache[P]) Probe(l addr.Line) (*P, bool) {
	if i := c.findIdx(l); i >= 0 {
		return &c.data[i], true
	}
	return nil, false
}

// Access looks up the line and, on a hit, promotes it per the replacement
// policy (most-recently-used for LRU/PLRU, near re-reference for SRRIP).
func (c *Cache[P]) Access(l addr.Line) (*P, bool) {
	set := c.index.Of(l)
	base := set * c.ways
	t := c.tags[base : base+c.ways]
	for i := range t {
		if t[i] == l {
			c.clock++
			c.ticks[base+i] = c.clock
			switch c.policy {
			case SRRIP:
				c.rrpv[base+i] = 0
			case PLRU:
				c.plruTouch(set, i)
			}
			return &c.data[base+i], true
		}
	}
	return nil, false
}

// Cursor memoizes an AccessCursor miss — which set was scanned and that the
// line was absent from it — so a following PutAt can install the line
// without repeating the tag-match scan. The victim choice itself is NOT
// precomputed: many misses are served elsewhere (the directory's VD path)
// and never fill, so the inv/victim scan is deferred to PutAt and only paid
// when a fill actually happens. A cursor is pinned to the cache state at
// scan time: any Put, PutAt, RemoveSlot or Remove on the cache afterwards
// invalidates it (tracked by the generation counter), and PutAt then falls
// back to a full Put — so consuming a stale cursor is always correct, just
// not faster.
type Cursor struct {
	base int    // set * ways
	set  int32  // set index
	gen  uint32 // cache generation at scan time
	ok   bool   // set by AccessCursor; the zero Cursor is invalid and safe to pass
}

// Gen returns the cache's mutation generation. It advances on every Put,
// PutAt and Remove, so two equal readings bracket a window in which the
// cache's contents did not change — the engine uses this to skip
// did-my-fill-survive re-probes.
func (c *Cache[P]) Gen() uint32 { return c.gen }

// AccessCursor is Access plus fill/removal slot information: on a hit the
// second result is the entry's flat slot (usable with RemoveSlot before any
// other mutation); on a miss it is -1 and the Cursor records the scanned set
// so a subsequent PutAt can fill it without a second tag-match pass. On a
// hit the cursor is the zero Cursor, which PutAt treats as absent.
func (c *Cache[P]) AccessCursor(l addr.Line) (*P, int, Cursor) {
	set := c.index.Of(l)
	base := set * c.ways
	t := c.tags[base : base+c.ways]
	for i := range t {
		if t[i] == l {
			c.clock++
			c.ticks[base+i] = c.clock
			switch c.policy {
			case SRRIP:
				c.rrpv[base+i] = 0
			case PLRU:
				c.plruTouch(set, i)
			}
			return &c.data[base+i], base + i, Cursor{}
		}
	}
	return nil, -1, Cursor{base: base, set: int32(set), gen: c.gen, ok: true}
}

// PutAt installs a line into the set a prior AccessCursor miss scanned,
// skipping the tag-match pass (the cursor proves the line is absent). The
// caller must pass a line that maps to the cursor's set and is known absent
// from it — the scanned line itself, or, for the directory's ED→TD
// migrations, a victim from a same-indexed set. A stale or zero cursor (the
// cache mutated since the scan) degrades to a full Put; the result is
// identical either way.
func (c *Cache[P]) PutAt(cur Cursor, l addr.Line, data P) (Victim[P], bool) {
	if !cur.ok || cur.gen != c.gen {
		return c.Put(l, data)
	}
	c.gen++
	c.clock++
	set := int(cur.set)
	base := cur.base
	t := c.tags[base : base+c.ways]
	if c.policy == LRU {
		// Fused invalid-slot and LRU-victim search, as in Put's fast path
		// but with the per-way tag-match comparison dropped.
		tk := c.ticks[base : base+c.ways]
		inv, vi := -1, 0
		minTick := ^uint64(0)
		for i := range t {
			if t[i] == invalidTag {
				if inv < 0 {
					inv = i
				}
			} else if tk[i] < minTick {
				minTick = tk[i]
				vi = i
			}
		}
		if inv >= 0 {
			c.fillWay(set, base+inv, l, data)
			c.count++
			return Victim[P]{}, false
		}
		v := Victim[P]{Line: t[vi], Data: c.data[base+vi]}
		c.fillWay(set, base+vi, l, data)
		return v, true
	}
	inv := -1
	for i := range t {
		if t[i] == invalidTag {
			inv = i
			break
		}
	}
	if inv >= 0 {
		c.fillWay(set, base+inv, l, data)
		c.count++
		return Victim[P]{}, false
	}
	var vi int
	switch c.policy {
	case Random:
		vi = c.rng.Intn(c.ways)
	case SRRIP:
		vi = c.srripVictim(base)
	case PLRU:
		vi = c.plruVictim(set)
	}
	v := Victim[P]{Line: t[vi], Data: c.data[base+vi]}
	c.fillWay(set, base+vi, l, data)
	return v, true
}

// plruTouch flips the tree bits on the path to w so they point away from it.
func (c *Cache[P]) plruTouch(set, w int) {
	node := 1
	for level := c.plruLevels - 1; level >= 0; level-- {
		right := w>>uint(level)&1 == 1
		if right {
			c.plru[set] &^= 1 << uint(node) // 0 = points left (away from right child)
			node = node*2 + 1
		} else {
			c.plru[set] |= 1 << uint(node) // 1 = points right
			node = node * 2
		}
	}
}

// plruVictim follows the tree bits to the pseudo-LRU way.
func (c *Cache[P]) plruVictim(set int) int {
	node := 1
	w := 0
	for level := 0; level < c.plruLevels; level++ {
		right := c.plru[set]&(1<<uint(node)) != 0
		w <<= 1
		if right {
			w |= 1
			node = node*2 + 1
		} else {
			node = node * 2
		}
	}
	return w
}

// Victim is a line evicted by Put.
type Victim[P any] struct {
	Line addr.Line
	Data P
}

// Put inserts the line with the given payload, evicting a victim from the
// set if it is full. If the line is already present its payload is replaced
// in place and no eviction occurs. The second result reports whether a
// victim was evicted.
func (c *Cache[P]) Put(l addr.Line, data P) (Victim[P], bool) {
	c.gen++
	c.clock++
	set := c.index.Of(l)
	base := set * c.ways
	t := c.tags[base : base+c.ways]
	if c.policy == LRU {
		// Fused scan: hit / first-invalid / least-recent victim in one pass.
		// Fills hit full sets in steady state, so the victim search is the
		// common case and folding it into the tag scan saves a second pass.
		tk := c.ticks[base : base+c.ways]
		inv, vi := -1, 0
		minTick := ^uint64(0)
		for i := range t {
			switch t[i] {
			case l:
				c.data[base+i] = data
				tk[i] = c.clock
				return Victim[P]{}, false
			case invalidTag:
				if inv < 0 {
					inv = i
				}
			default:
				if tk[i] < minTick {
					minTick = tk[i]
					vi = i
				}
			}
		}
		if inv >= 0 {
			t[inv] = l
			tk[inv] = c.clock
			c.data[base+inv] = data
			c.count++
			return Victim[P]{}, false
		}
		v := Victim[P]{Line: t[vi], Data: c.data[base+vi]}
		t[vi] = l
		tk[vi] = c.clock
		c.data[base+vi] = data
		return v, true
	}
	inv := -1
	for i := range t {
		if t[i] == l {
			c.data[base+i] = data
			c.ticks[base+i] = c.clock
			return Victim[P]{}, false
		}
		if t[i] == invalidTag && inv < 0 {
			inv = i
		}
	}
	if inv >= 0 {
		c.fillWay(set, base+inv, l, data)
		c.count++
		return Victim[P]{}, false
	}
	vi := 0
	switch c.policy {
	case Random:
		vi = c.rng.Intn(c.ways)
	case SRRIP:
		vi = c.srripVictim(base)
	case PLRU:
		vi = c.plruVictim(set)
	}
	v := Victim[P]{Line: t[vi], Data: c.data[base+vi]}
	c.fillWay(set, base+vi, l, data)
	return v, true
}

// fillWay installs a line in way i (a flat index) of the given set.
func (c *Cache[P]) fillWay(set, i int, l addr.Line, data P) {
	c.tags[i] = l
	c.ticks[i] = c.clock
	c.data[i] = data
	switch c.policy {
	case SRRIP:
		c.rrpv[i] = srripMax - 1
	case PLRU:
		c.plruTouch(set, i-set*c.ways)
	}
}

// srripVictim finds (aging as needed) a way predicted for distant reuse.
// A fresh SRRIP fill is predicted for a long interval (srripMax-1) so scans
// age out before resident lines.
func (c *Cache[P]) srripVictim(base int) int {
	m := c.rrpv[base : base+c.ways]
	for {
		for i := range m {
			if m[i] >= srripMax {
				return i
			}
		}
		for i := range m {
			m[i]++
		}
	}
}

// Reset restores the cache to the state New would produce with the given
// seed, reusing every backing array: all ways invalid, replacement state and
// the mutation clock zeroed, and the Random policy's generator reseeded.
// Deterministic policies ignore the seed, exactly as New does. Any Cursor
// taken before the Reset must be discarded.
func (c *Cache[P]) Reset(seed int64) {
	for i := range c.tags {
		c.tags[i] = invalidTag
	}
	clear(c.ticks)
	clear(c.data)
	if c.rrpv != nil {
		clear(c.rrpv)
	}
	if c.plru != nil {
		clear(c.plru)
	}
	if c.policy == Random {
		c.rng = rng.New(seed)
	}
	c.clock = 0
	c.count = 0
	c.gen = 0
}

// Remove invalidates the line, returning its payload if it was present.
func (c *Cache[P]) Remove(l addr.Line) (P, bool) {
	var zero P
	if i := c.findIdx(l); i >= 0 {
		return c.RemoveSlot(i), true
	}
	return zero, false
}

// ProbeSlot is Probe plus the entry's flat slot index, or -1 on a miss. The
// slot stays meaningful until the next mutation, so a caller that probes and
// then removes the same entry can pass it to RemoveSlot and skip the second
// tag scan.
func (c *Cache[P]) ProbeSlot(l addr.Line) (*P, int) {
	if i := c.findIdx(l); i >= 0 {
		return &c.data[i], i
	}
	return nil, -1
}

// RemoveSlot invalidates the valid slot i — as returned by ProbeSlot or a
// hitting AccessCursor, with no mutation in between — and returns its
// payload.
func (c *Cache[P]) RemoveSlot(i int) P {
	d := c.data[i]
	var zp P
	c.gen++
	c.tags[i] = invalidTag
	c.ticks[i] = 0
	c.data[i] = zp
	if c.rrpv != nil {
		c.rrpv[i] = 0
	}
	c.count--
	return d
}

// LinesInSet returns the valid lines currently in the given set,
// in way order. It is used by tests and the attack toolkit.
func (c *Cache[P]) LinesInSet(set int) []addr.Line {
	base := set * c.ways
	var out []addr.Line
	for _, tag := range c.tags[base : base+c.ways] {
		if tag != invalidTag {
			out = append(out, tag)
		}
	}
	return out
}

// RangeSet calls fn for every valid line of one set, in way order, until fn
// returns false. Unlike LinesInSet it never allocates, so conflict-window
// admission can scan a fill set's residents on the hot path.
func (c *Cache[P]) RangeSet(set int, fn func(l addr.Line) bool) {
	base := set * c.ways
	for _, tag := range c.tags[base : base+c.ways] {
		if tag != invalidTag {
			if !fn(tag) {
				return
			}
		}
	}
}

// Range calls fn for every valid line until fn returns false.
func (c *Cache[P]) Range(fn func(l addr.Line, data *P) bool) {
	for i := range c.tags {
		if c.tags[i] != invalidTag {
			if !fn(c.tags[i], &c.data[i]) {
				return
			}
		}
	}
}
