// Package cachesim provides a generic set-associative tag cache used to model
// the private L1 and L2 caches of the simulated machine. The cache stores a
// caller-defined payload per line (e.g. a MOESI state); data values are never
// modeled — the simulator is behavioural.
package cachesim

import (
	"math/rand"

	"secdir/internal/addr"
)

// Policy selects the replacement policy of a Cache.
type Policy int

const (
	// LRU evicts the least recently used way.
	LRU Policy = iota
	// Random evicts a uniformly random way (the paper uses random
	// replacement in ED and VD, §7).
	Random
	// SRRIP is static re-reference interval prediction (Jaleel et al.,
	// 2-bit RRPV): hits predict near re-reference, fills predict long,
	// victims are distant lines. Scan-resistant, close to what commercial
	// LLCs implement.
	SRRIP
	// PLRU is the classic tree pseudo-LRU (requires power-of-two ways).
	PLRU
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "lru"
	case Random:
		return "random"
	case SRRIP:
		return "srrip"
	case PLRU:
		return "plru"
	default:
		return "unknown-policy"
	}
}

// srripMax is the distant re-reference value for the 2-bit RRPV.
const srripMax = 3

// IndexFunc maps a line address to a set index.
type IndexFunc func(addr.Line) int

// ModIndex returns an IndexFunc that uses the low line-address bits,
// the conventional indexing of private caches.
func ModIndex(sets int) IndexFunc {
	if sets <= 0 || sets&(sets-1) != 0 {
		panic("cachesim: set count must be a positive power of two")
	}
	mask := addr.Line(sets - 1)
	return func(l addr.Line) int { return int(l & mask) }
}

type way[P any] struct {
	tag   addr.Line
	valid bool
	tick  uint64
	rrpv  uint8 // SRRIP re-reference prediction value
	data  P
}

// Cache is a set-associative tag cache with payload type P.
// It is not safe for concurrent use; the simulator is sequential.
type Cache[P any] struct {
	sets   int
	ways   int
	index  IndexFunc
	policy Policy
	rng    *rand.Rand
	arr    []way[P]
	plru   []uint64 // per-set PLRU tree bits
	clock  uint64
	count  int
}

// New returns a Cache with the given geometry. The index function maps lines
// to sets; use ModIndex for conventional caches.
func New[P any](sets, ways int, index IndexFunc, policy Policy, seed int64) *Cache[P] {
	if sets <= 0 || ways <= 0 {
		panic("cachesim: sets and ways must be positive")
	}
	if policy == PLRU && (ways&(ways-1) != 0 || ways > 64) {
		panic("cachesim: PLRU requires a power-of-two associativity up to 64")
	}
	c := &Cache[P]{
		sets:   sets,
		ways:   ways,
		index:  index,
		policy: policy,
		rng:    rand.New(rand.NewSource(seed)),
		arr:    make([]way[P], sets*ways),
	}
	if policy == PLRU {
		c.plru = make([]uint64, sets)
	}
	return c
}

// Sets returns the number of sets.
func (c *Cache[P]) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache[P]) Ways() int { return c.ways }

// Len returns the number of valid lines currently cached.
func (c *Cache[P]) Len() int { return c.count }

// SetOf returns the set index a line maps to.
func (c *Cache[P]) SetOf(l addr.Line) int { return c.index(l) }

func (c *Cache[P]) set(i int) []way[P] { return c.arr[i*c.ways : (i+1)*c.ways] }

func (c *Cache[P]) find(l addr.Line) *way[P] {
	s := c.set(c.index(l))
	for i := range s {
		if s[i].valid && s[i].tag == l {
			return &s[i]
		}
	}
	return nil
}

// Probe reports whether the line is cached, without updating replacement
// state. The returned pointer stays valid until the next Put or Remove and
// may be used to mutate the payload in place.
func (c *Cache[P]) Probe(l addr.Line) (*P, bool) {
	if w := c.find(l); w != nil {
		return &w.data, true
	}
	return nil, false
}

// Access looks up the line and, on a hit, promotes it per the replacement
// policy (most-recently-used for LRU/PLRU, near re-reference for SRRIP).
func (c *Cache[P]) Access(l addr.Line) (*P, bool) {
	if w := c.find(l); w != nil {
		c.clock++
		w.tick = c.clock
		w.rrpv = 0
		if c.policy == PLRU {
			c.plruTouch(c.index(l), c.wayIndex(l))
		}
		return &w.data, true
	}
	return nil, false
}

// wayIndex returns the way currently holding l within its set (must exist).
func (c *Cache[P]) wayIndex(l addr.Line) int {
	s := c.set(c.index(l))
	for i := range s {
		if s[i].valid && s[i].tag == l {
			return i
		}
	}
	panic("cachesim: wayIndex of absent line")
}

// plruTouch flips the tree bits on the path to w so they point away from it.
func (c *Cache[P]) plruTouch(set, w int) {
	node := 1
	levels := 0
	for 1<<levels < c.ways {
		levels++
	}
	for level := levels - 1; level >= 0; level-- {
		right := w>>uint(level)&1 == 1
		if right {
			c.plru[set] &^= 1 << uint(node) // 0 = points left (away from right child)
			node = node*2 + 1
		} else {
			c.plru[set] |= 1 << uint(node) // 1 = points right
			node = node * 2
		}
	}
}

// plruVictim follows the tree bits to the pseudo-LRU way.
func (c *Cache[P]) plruVictim(set int) int {
	node := 1
	w := 0
	levels := 0
	for 1<<levels < c.ways {
		levels++
	}
	for level := 0; level < levels; level++ {
		right := c.plru[set]&(1<<uint(node)) != 0
		w <<= 1
		if right {
			w |= 1
			node = node*2 + 1
		} else {
			node = node * 2
		}
	}
	return w
}

// Victim is a line evicted by Put.
type Victim[P any] struct {
	Line addr.Line
	Data P
}

// Put inserts the line with the given payload, evicting a victim from the
// set if it is full. If the line is already present its payload is replaced
// in place and no eviction occurs. The second result reports whether a
// victim was evicted.
func (c *Cache[P]) Put(l addr.Line, data P) (Victim[P], bool) {
	c.clock++
	if w := c.find(l); w != nil {
		w.data = data
		w.tick = c.clock
		return Victim[P]{}, false
	}
	set := c.index(l)
	s := c.set(set)
	// Prefer an invalid way.
	for i := range s {
		if !s[i].valid {
			s[i] = way[P]{tag: l, valid: true, tick: c.clock, rrpv: fillRRPV(c.policy), data: data}
			c.count++
			if c.policy == PLRU {
				c.plruTouch(set, i)
			}
			return Victim[P]{}, false
		}
	}
	vi := 0
	switch c.policy {
	case LRU:
		for i := 1; i < len(s); i++ {
			if s[i].tick < s[vi].tick {
				vi = i
			}
		}
	case Random:
		vi = c.rng.Intn(len(s))
	case SRRIP:
		vi = c.srripVictim(s)
	case PLRU:
		vi = c.plruVictim(set)
	}
	v := Victim[P]{Line: s[vi].tag, Data: s[vi].data}
	s[vi] = way[P]{tag: l, valid: true, tick: c.clock, rrpv: fillRRPV(c.policy), data: data}
	if c.policy == PLRU {
		c.plruTouch(set, vi)
	}
	return v, true
}

// fillRRPV is the re-reference prediction assigned to a fresh fill: SRRIP
// predicts a long interval (max-1) so scans age out before resident lines.
func fillRRPV(p Policy) uint8 {
	if p == SRRIP {
		return srripMax - 1
	}
	return 0
}

// srripVictim finds (aging as needed) a way predicted for distant reuse.
func (c *Cache[P]) srripVictim(s []way[P]) int {
	for {
		for i := range s {
			if s[i].rrpv >= srripMax {
				return i
			}
		}
		for i := range s {
			s[i].rrpv++
		}
	}
}

// Remove invalidates the line, returning its payload if it was present.
func (c *Cache[P]) Remove(l addr.Line) (P, bool) {
	var zero P
	s := c.set(c.index(l))
	for i := range s {
		if s[i].valid && s[i].tag == l {
			d := s[i].data
			s[i] = way[P]{}
			c.count--
			return d, true
		}
	}
	return zero, false
}

// LinesInSet returns the valid lines currently in the given set,
// in way order. It is used by tests and the attack toolkit.
func (c *Cache[P]) LinesInSet(set int) []addr.Line {
	s := c.set(set)
	var out []addr.Line
	for i := range s {
		if s[i].valid {
			out = append(out, s[i].tag)
		}
	}
	return out
}

// Range calls fn for every valid line until fn returns false.
func (c *Cache[P]) Range(fn func(l addr.Line, data *P) bool) {
	for i := range c.arr {
		if c.arr[i].valid {
			if !fn(c.arr[i].tag, &c.arr[i].data) {
				return
			}
		}
	}
}
