package cachesim

import (
	"testing"

	"secdir/internal/addr"
)

func BenchmarkAccessHit(b *testing.B) {
	c := New[int](1024, 16, ModIndex(1024), LRU, 1)
	for i := 0; i < 1024*16; i++ {
		c.Put(addr.Line(i), i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(addr.Line(i & (1024*16 - 1)))
	}
}

func BenchmarkPutEvict(b *testing.B) {
	c := New[int](1024, 16, ModIndex(1024), LRU, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Put(addr.Line(i), i)
	}
}
