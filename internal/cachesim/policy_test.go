package cachesim

import (
	"math/rand"
	"testing"

	"secdir/internal/addr"
)

func TestPolicyString(t *testing.T) {
	for p, want := range map[Policy]string{LRU: "lru", Random: "random", SRRIP: "srrip", PLRU: "plru"} {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), want)
		}
	}
}

func TestPLRURequiresPow2Ways(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PLRU with 3 ways did not panic")
		}
	}()
	New[int](4, 3, ModIndex(4), PLRU, 1)
}

// TestPLRUSingleSetCycle: with repeated touches, the PLRU victim is never
// the most recently used way.
func TestPLRUSingleSetCycle(t *testing.T) {
	c := New[int](1, 4, ModIndex(1), PLRU, 1)
	for i := 0; i < 4; i++ {
		c.Put(addr.Line(i), i)
	}
	for trial := 0; trial < 50; trial++ {
		touched := addr.Line(trial % 4)
		c.Access(touched)
		v, ev := c.Put(addr.Line(100+trial), 0)
		if !ev {
			t.Fatal("full set did not evict")
		}
		if v.Line == touched {
			t.Fatalf("trial %d: PLRU evicted the just-touched line", trial)
		}
		// Restore the evicted slot with the original line for the next trial.
		c.Remove(addr.Line(100 + trial))
		c.Put(v.Line, 0)
	}
}

// TestSRRIPScanResistance: a hot set that is re-referenced survives a long
// one-shot scan under SRRIP, while LRU loses it. This is the property that
// makes SRRIP-like policies the realistic choice for LLC/TD structures.
func TestSRRIPScanResistance(t *testing.T) {
	survivors := func(p Policy) int {
		c := New[int](1, 8, ModIndex(1), p, 1)
		hot := []addr.Line{1, 2, 3, 4}
		// Establish the hot lines with reuse.
		for r := 0; r < 4; r++ {
			for _, h := range hot {
				if _, ok := c.Access(h); !ok {
					c.Put(h, 0)
				}
			}
		}
		// One-shot scan of 64 cold lines interleaved with hot reuse.
		for i := 0; i < 64; i++ {
			c.Put(addr.Line(1000+i), 0)
			if i%2 == 0 {
				for _, h := range hot {
					if _, ok := c.Access(h); ok {
						continue
					}
				}
			}
		}
		n := 0
		for _, h := range hot {
			if _, ok := c.Probe(h); ok {
				n++
			}
		}
		return n
	}
	srrip := survivors(SRRIP)
	lru := survivors(LRU)
	if srrip < lru {
		t.Errorf("SRRIP kept %d hot lines, LRU kept %d — no scan resistance", srrip, lru)
	}
	if srrip == 0 {
		t.Error("SRRIP lost the whole hot set to a scan")
	}
}

// TestPoliciesStructurallySound: every policy preserves the cache's
// structural invariants under random traffic.
func TestPoliciesStructurallySound(t *testing.T) {
	for _, p := range []Policy{LRU, Random, SRRIP, PLRU} {
		c := New[int](8, 4, ModIndex(8), p, 7)
		rng := rand.New(rand.NewSource(3))
		resident := map[addr.Line]bool{}
		for i := 0; i < 20000; i++ {
			l := addr.Line(rng.Intn(256))
			switch rng.Intn(3) {
			case 0:
				v, ev := c.Put(l, i)
				if ev {
					if !resident[v.Line] {
						t.Fatalf("%v: evicted non-resident line", p)
					}
					delete(resident, v.Line)
				}
				resident[l] = true
			case 1:
				_, hit := c.Access(l)
				if hit != resident[l] {
					t.Fatalf("%v: Access(%d) hit=%v, tracker=%v", p, l, hit, resident[l])
				}
			case 2:
				_, ok := c.Remove(l)
				if ok != resident[l] {
					t.Fatalf("%v: Remove mismatch", p)
				}
				delete(resident, l)
			}
		}
		if c.Len() != len(resident) {
			t.Fatalf("%v: Len %d != tracker %d", p, c.Len(), len(resident))
		}
	}
}
