package cachesim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"secdir/internal/addr"
)

func newLRU(sets, ways int) *Cache[int] {
	return New[int](sets, ways, ModIndex(sets), LRU, 1)
}

func TestPutProbeRemove(t *testing.T) {
	c := newLRU(4, 2)
	if _, ok := c.Probe(10); ok {
		t.Fatal("empty cache claims a hit")
	}
	if _, ev := c.Put(10, 100); ev {
		t.Fatal("insert into empty set evicted")
	}
	p, ok := c.Probe(10)
	if !ok || *p != 100 {
		t.Fatalf("Probe(10) = %v,%v", p, ok)
	}
	*p = 200 // in-place payload mutation
	if p2, _ := c.Probe(10); *p2 != 200 {
		t.Fatal("payload mutation lost")
	}
	if d, ok := c.Remove(10); !ok || d != 200 {
		t.Fatalf("Remove = %v,%v", d, ok)
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d after remove", c.Len())
	}
	if _, ok := c.Remove(10); ok {
		t.Fatal("double remove succeeded")
	}
}

func TestPutReplacesInPlace(t *testing.T) {
	c := newLRU(4, 2)
	c.Put(10, 1)
	if _, ev := c.Put(10, 2); ev {
		t.Fatal("re-Put of resident line evicted")
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
	p, _ := c.Probe(10)
	if *p != 2 {
		t.Fatalf("payload = %d, want 2", *p)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := newLRU(1, 3) // single set
	c.Put(1, 0)
	c.Put(2, 0)
	c.Put(3, 0)
	// Touch 1 so 2 becomes LRU.
	if _, ok := c.Access(1); !ok {
		t.Fatal("access miss")
	}
	v, ev := c.Put(4, 0)
	if !ev || v.Line != 2 {
		t.Fatalf("victim = %v (evicted=%v), want line 2", v.Line, ev)
	}
	// Recency order is now (old→new): 3, 1 (touched by Access), 4. Probe
	// must NOT update recency, so after probing 3 it is still the LRU.
	c.Probe(3)
	v, ev = c.Put(5, 0)
	if !ev || v.Line != 3 {
		t.Fatalf("victim = %v, want line 3 (Probe must not bump recency)", v.Line)
	}
}

func TestRandomPolicyEvictsWithinSet(t *testing.T) {
	c := New[int](2, 2, ModIndex(2), Random, 42)
	// Fill set 0 (even lines).
	c.Put(0, 0)
	c.Put(2, 0)
	v, ev := c.Put(4, 0)
	if !ev {
		t.Fatal("full set did not evict")
	}
	if v.Line != 0 && v.Line != 2 {
		t.Fatalf("random victim %d not from the conflicting set", v.Line)
	}
}

func TestLinesInSetAndRange(t *testing.T) {
	c := newLRU(2, 2)
	c.Put(0, 0)
	c.Put(2, 0)
	c.Put(1, 0)
	got := c.LinesInSet(0)
	if len(got) != 2 {
		t.Fatalf("LinesInSet(0) = %v", got)
	}
	n := 0
	c.Range(func(l addr.Line, d *int) bool { n++; return true })
	if n != 3 {
		t.Fatalf("Range visited %d lines, want 3", n)
	}
	// Early termination.
	n = 0
	c.Range(func(l addr.Line, d *int) bool { n++; return false })
	if n != 1 {
		t.Fatalf("Range did not stop early (visited %d)", n)
	}
}

func TestPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New[int](0, 4, ModIndex(4), LRU, 1) },
		func() { New[int](4, 0, ModIndex(4), LRU, 1) },
		func() { ModIndex(3) },
		func() { ModIndex(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// TestCapacityProperty drives random operations and checks structural
// invariants with testing/quick: occupancy never exceeds capacity, per-set
// occupancy never exceeds associativity, and Len matches the resident count.
func TestCapacityProperty(t *testing.T) {
	f := func(seed int64, ops []uint16) bool {
		c := New[int](8, 4, ModIndex(8), LRU, seed)
		for _, op := range ops {
			l := addr.Line(op % 256)
			switch op % 3 {
			case 0:
				c.Put(l, int(op))
			case 1:
				c.Access(l)
			case 2:
				c.Remove(l)
			}
		}
		if c.Len() > 8*4 {
			return false
		}
		count := 0
		c.Range(func(addr.Line, *int) bool { count++; return true })
		if count != c.Len() {
			return false
		}
		for set := 0; set < 8; set++ {
			if len(c.LinesInSet(set)) > 4 {
				return false
			}
			for _, l := range c.LinesInSet(set) {
				if c.SetOf(l) != set {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestNoDuplicateTags: a line is never resident twice.
func TestNoDuplicateTags(t *testing.T) {
	c := New[int](4, 4, ModIndex(4), Random, 9)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 10000; i++ {
		c.Put(addr.Line(rng.Intn(64)), i)
	}
	seen := map[addr.Line]bool{}
	dup := false
	c.Range(func(l addr.Line, _ *int) bool {
		if seen[l] {
			dup = true
			return false
		}
		seen[l] = true
		return true
	})
	if dup {
		t.Fatal("duplicate resident tag")
	}
}

// TestResetMatchesFresh: a Reset cache replays a workload exactly like a
// freshly constructed one, for every replacement policy — same hits, same
// victims, same RNG draw sequence.
func TestResetMatchesFresh(t *testing.T) {
	for _, policy := range []Policy{LRU, Random, SRRIP, PLRU} {
		fresh := New[int](8, 4, ModIndex(8), policy, 321)
		dirty := New[int](8, 4, ModIndex(8), policy, 77)
		warm := rand.New(rand.NewSource(5))
		for i := 0; i < 5000; i++ {
			dirty.Put(addr.Line(warm.Intn(256)), i)
		}
		dirty.Reset(321)
		if dirty.Len() != 0 || dirty.Gen() != fresh.Gen() {
			t.Fatalf("policy %v: reset cache not empty (len=%d gen=%d)", policy, dirty.Len(), dirty.Gen())
		}
		rng := rand.New(rand.NewSource(6))
		for i := 0; i < 20000; i++ {
			l := addr.Line(rng.Intn(256))
			if rng.Intn(3) == 0 {
				_, aok := fresh.Access(l)
				_, bok := dirty.Access(l)
				if aok != bok {
					t.Fatalf("policy %v op %d: access hit diverged", policy, i)
				}
				continue
			}
			av, ae := fresh.Put(l, i)
			bv, be := dirty.Put(l, i)
			if ae != be || av != bv {
				t.Fatalf("policy %v op %d: victim diverged: fresh (%v,%v) reset (%v,%v)",
					policy, i, av, ae, bv, be)
			}
		}
	}
}

// TestRangeSetMatchesLinesInSet: the allocation-free set walk agrees with
// LinesInSet and honours early termination.
func TestRangeSetMatchesLinesInSet(t *testing.T) {
	c := New[int](8, 4, ModIndex(8), LRU, 1)
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 4000; i++ {
		c.Put(addr.Line(rng.Intn(512)), i)
	}
	for set := 0; set < 8; set++ {
		want := c.LinesInSet(set)
		var got []addr.Line
		c.RangeSet(set, func(l addr.Line) bool {
			got = append(got, l)
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("set %d: RangeSet saw %d lines, LinesInSet %d", set, len(got), len(want))
		}
		seen := map[addr.Line]bool{}
		for _, l := range want {
			seen[l] = true
		}
		for _, l := range got {
			if !seen[l] {
				t.Fatalf("set %d: RangeSet produced line %#x not in LinesInSet", set, uint64(l))
			}
		}
		if len(want) > 1 {
			n := 0
			c.RangeSet(set, func(addr.Line) bool {
				n++
				return false
			})
			if n != 1 {
				t.Fatalf("set %d: early-terminated RangeSet visited %d lines", set, n)
			}
		}
	}
}
