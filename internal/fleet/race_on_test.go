//go:build race

package fleet_test

// raceEnabled: the golden fleet sweeps run hundreds of full Monte-Carlo
// trials through real servers — minutes of work under the race detector's
// ~10x slowdown, past go test's default timeout. The fake-clock scheduler
// tests and the server package's fleet tests exercise the same concurrent
// code under -race cheaply, so the goldens skip and stay a plain-build test.
const raceEnabled = true
