package fleet

import (
	"fmt"
	"strings"

	"secdir/internal/leakage"
)

// SweepKind selects what a fleet sweep produces.
type SweepKind string

const (
	// SweepLeak merges into a leakage.Report (the configs×strategies grid).
	SweepLeak SweepKind = "leak"
	// SweepLeaderboard merges into a leakage.Leaderboard (verdicts joined
	// with the coordinator-computed performance and cost columns).
	SweepLeaderboard SweepKind = "leaderboard"
)

// SweepSpec describes one distributed sweep — the fleet-facing mirror of the
// server's leak/leaderboard JobSpec. Zero fields default exactly as their
// single-process counterparts (leakage.RunReport / leakage.RunLeaderboard)
// do, so a fleet run of an unmodified spec reproduces the local result
// bit-for-bit.
type SweepSpec struct {
	// Kind selects the merge shape (default SweepLeak).
	Kind SweepKind
	// Configs are the configuration names to sweep (defaults: the report's
	// canonical trio, or the leaderboard roster).
	Configs []string
	// Strategies are the attack names (defaults: the report's default
	// suite, or the leaderboard pair).
	Strategies []string
	// Cores is the simulated machine size (default 8).
	Cores int
	// Trials, Rounds, EvictionLines and Seed are forwarded to every cell's
	// Options (zero means that field's leakage default).
	Trials        int
	Rounds        int
	EvictionLines int
	Seed          int64
	// Confidence and Resamples shape the AUC bootstrap of leak sweeps
	// (leaderboard sweeps always use the leakage defaults, as
	// RunLeaderboard does).
	Confidence float64
	Resamples  int
	// PerfAccesses sizes the leaderboard's deterministic latency probe
	// (default 100k).
	PerfAccesses int
}

// ShardRequest is the body of POST /fleet/shard: one contiguous trial range
// of one (config, strategy) cell. Every sampling parameter arrives
// normalized by the coordinator, so worker-side defaulting cannot diverge
// from the merge's.
type ShardRequest struct {
	// Config names the configuration under test (leakage.ParseConfig).
	Config string `json:"config"`
	// Strategy names the attack (leakage.ParseStrategy).
	Strategy string `json:"strategy"`
	// Cores is the simulated machine size.
	Cores int `json:"cores"`
	// Trials is the cell's TOTAL trial count — the seeding space — not this
	// shard's share of it.
	Trials int `json:"trials"`
	// Rounds is the attack rounds per trial.
	Rounds int `json:"rounds"`
	// EvictionLines overrides the strategy's conflict-set size (0 = default).
	EvictionLines int `json:"eviction_lines,omitempty"`
	// Seed is the cell's master seed.
	Seed int64 `json:"seed"`
	// Start and Count delimit this shard's trial index range
	// [Start, Start+Count).
	Start int `json:"start"`
	// Count is the number of trials in the shard.
	Count int `json:"count"`
	// Workers bounds the executing worker's local trial fan-out
	// (0 = its GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
}

// Options builds the leakage Options the request describes, normalized.
func (r ShardRequest) Options() (leakage.Options, error) {
	cfg, err := leakage.ParseConfig(r.Config, r.Cores)
	if err != nil {
		return leakage.Options{}, err
	}
	strat, err := leakage.ParseStrategy(r.Strategy)
	if err != nil {
		return leakage.Options{}, err
	}
	return leakage.Options{
		Config:        cfg,
		ConfigName:    r.Config,
		Strategy:      strat,
		Trials:        r.Trials,
		Rounds:        r.Rounds,
		EvictionLines: r.EvictionLines,
		Workers:       r.Workers,
		Seed:          r.Seed,
	}.Normalized(), nil
}

// ShardLine is one NDJSON line of a shard response stream: a trial result,
// a fatal error, or the terminal EOF marker whose Count lets the coordinator
// detect a truncated stream (a worker killed mid-shard).
type ShardLine struct {
	// Trial is one completed trial, in completion order.
	Trial *leakage.TrialResult `json:"trial,omitempty"`
	// Err aborts the stream with a worker-side failure.
	Err string `json:"error,omitempty"`
	// EOF marks a complete stream; Count must equal the trials streamed.
	EOF bool `json:"eof,omitempty"`
	// Count is the number of trial lines that preceded the EOF marker.
	Count int `json:"count,omitempty"`
}

// RegisterRequest is the body of POST /fleet/register: a worker announcing
// (or re-announcing — registration doubles as the heartbeat) itself to a
// coordinator.
type RegisterRequest struct {
	// URL is the worker's externally reachable base URL.
	URL string `json:"url"`
	// Workers is the worker's job-pool width, informational.
	Workers int `json:"workers,omitempty"`
}

// RegisterResponse tells the worker how often to re-register.
type RegisterResponse struct {
	// IntervalMS is the coordinator's heartbeat interval in milliseconds.
	IntervalMS int64 `json:"interval_ms"`
}

// ShardProvenance records which worker's result was accepted for one shard of
// a sweep — the merge provenance RunLeak/RunLeaderboard hand back alongside
// the merged result, so callers (the server's run ledger) can record exactly
// how a distributed result was assembled and by whom.
type ShardProvenance struct {
	// Cell is the shard's (config, strategy) stage label, "config/strategy".
	Cell string `json:"cell"`
	// Start and Count delimit the shard's trial index range
	// [Start, Start+Count) within the cell.
	Start int `json:"start"`
	// Count is the number of trials the shard carried.
	Count int `json:"count"`
	// Worker is the URL of the worker whose result won (steal-race losers are
	// discarded and never appear here).
	Worker string `json:"worker"`
	// Attempts counts the dispatches charged against the shard's attempt
	// budget before it completed (retries after genuine failures; steal
	// duplicates and reaper requeues are refunded).
	Attempts int `json:"attempts"`
	// Millis is the accepted dispatch's wall-clock duration.
	Millis int64 `json:"millis"`
}

// cell is one (config, strategy) grid cell of a sweep: its normalized
// options, its shard plan, and the trial results accumulated by the
// scheduler.
type cell struct {
	name     string
	strategy string
	opts     leakage.Options // normalized; Strategy and Config resolved
	results  []leakage.TrialResult
	done     int // trials completed, for progress reporting
	offset   int // progress offset of the cell within the sweep
}

// planCells expands a sweep spec into its cells in row-major
// (config, strategy) order — the exact order RunReport and RunLeaderboard
// emit verdicts in — with every cell's Options normalized from one shared
// base so the merge parameters match a single-process run.
func planCells(spec SweepSpec) ([]*cell, leakage.Options, error) {
	configs := spec.Configs
	strategies := spec.Strategies
	if spec.Kind == SweepLeaderboard {
		if len(configs) == 0 {
			configs = append([]string(nil), leakage.LeaderboardNames...)
		}
		if len(strategies) == 0 {
			strategies = append([]string(nil), leakage.LeaderboardStrategies...)
		}
	} else {
		if len(configs) == 0 {
			configs = append([]string(nil), leakage.ConfigNames...)
		}
		if len(strategies) == 0 {
			strategies = leakage.StrategyNames(leakage.DefaultSuite())
		}
	}
	cores := spec.Cores
	if cores <= 0 {
		cores = 8
	}

	base := leakage.Options{
		Trials:        spec.Trials,
		Rounds:        spec.Rounds,
		EvictionLines: spec.EvictionLines,
		Seed:          spec.Seed,
	}
	if spec.Kind != SweepLeaderboard {
		// RunLeaderboard's verdicts always use the default bootstrap
		// parameters; leak reports honor the caller's.
		base.Confidence = spec.Confidence
		base.Resamples = spec.Resamples
	}
	base = base.Normalized()

	var cells []*cell
	offset := 0
	for _, name := range configs {
		cfg, err := leakage.ParseConfig(name, cores)
		if err != nil {
			return nil, base, err
		}
		for _, sname := range strategies {
			strat, err := leakage.ParseStrategy(sname)
			if err != nil {
				return nil, base, err
			}
			opts := base
			opts.Config = cfg
			opts.ConfigName = name
			opts.Strategy = strat
			cells = append(cells, &cell{
				name:     name,
				strategy: sname,
				opts:     opts,
				results:  make([]leakage.TrialResult, 0, opts.Trials),
				offset:   offset,
			})
			offset += opts.Trials
		}
	}
	if len(cells) == 0 {
		return nil, base, fmt.Errorf("fleet: sweep has no (config, strategy) cells")
	}
	return cells, base, nil
}

// stageLabel is the progress stage name of a cell, matching the local job
// runner's "config/strategy" convention.
func (c *cell) stageLabel() string { return c.name + "/" + c.strategy }

// normalizeWorkerURL canonicalizes a worker base URL for map identity.
func normalizeWorkerURL(u string) string {
	u = strings.TrimSpace(u)
	u = strings.TrimRight(u, "/")
	return u
}
