// Scheduler tests: retry/backoff, attempt exhaustion and work-stealing,
// driven by a fake clock and stub workers with injectable failures, so the
// timing-dependent paths run deterministically and fast.
package fleet_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"secdir/internal/fleet"
	"secdir/internal/leakage"
	"secdir/internal/metrics"
)

// fakeClock implements fleet.Clock: time only moves when advanced, so
// backoff gates, steal aging and heartbeat cadence become deterministic.
type fakeClock struct {
	mu      sync.Mutex
	now     time.Time
	waiters []fakeWaiter
}

type fakeWaiter struct {
	at time.Time
	ch chan time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch := make(chan time.Time, 1)
	if d <= 0 {
		ch <- c.now
		return ch
	}
	c.waiters = append(c.waiters, fakeWaiter{at: c.now.Add(d), ch: ch})
	return ch
}

// advanceNext jumps to the earliest pending waiter deadline and fires every
// waiter that became due. Returns false when nothing is waiting.
func (c *fakeClock) advanceNext() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.waiters) == 0 {
		return false
	}
	earliest := c.waiters[0].at
	for _, w := range c.waiters[1:] {
		if w.at.Before(earliest) {
			earliest = w.at
		}
	}
	if earliest.After(c.now) {
		c.now = earliest
	}
	var rest []fakeWaiter
	for _, w := range c.waiters {
		if !w.at.After(c.now) {
			w.ch <- c.now
		} else {
			rest = append(rest, w)
		}
	}
	c.waiters = rest
	return true
}

// autoAdvance drives the fake clock forward whenever anyone is waiting on
// it, checking at a short real-time cadence so HTTP round trips (which run
// on the wall clock) interleave naturally. Stopped via t.Cleanup.
func autoAdvance(t *testing.T, c *fakeClock) {
	t.Helper()
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			case <-time.After(time.Millisecond):
			}
			c.advanceNext()
		}
	}()
	t.Cleanup(func() {
		close(stop)
		<-done
	})
}

// stubWorker is a minimal fleet worker: /healthz always OK, /fleet/shard
// either runs the shard for real (via leakage.RunShard), fails with an
// injected 500, or blocks until the coordinator abandons the request.
type stubWorker struct {
	ts *httptest.Server

	// fail, if set, is called with the 1-based shard request number and
	// reports whether to drop it with a 500.
	fail func(n int) bool
	// busy, if set, likewise injects a 429 all-slots-busy refusal.
	busy func(n int) bool
	// block makes every shard request hang until its context is cancelled
	// (or the test ends) — a straggler that never finishes.
	block bool
	stop  chan struct{}

	mu     sync.Mutex
	shards int
}

func newStubWorker(t *testing.T, fail func(n int) bool, block bool) *stubWorker {
	t.Helper()
	st := &stubWorker{fail: fail, block: block, stop: make(chan struct{})}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = io.WriteString(w, `{"status":"ok"}`)
	})
	mux.HandleFunc("POST /fleet/shard", func(w http.ResponseWriter, r *http.Request) {
		st.mu.Lock()
		st.shards++
		n := st.shards
		st.mu.Unlock()
		if st.block {
			select {
			case <-r.Context().Done():
			case <-st.stop:
			}
			return
		}
		if st.fail != nil && st.fail(n) {
			http.Error(w, "injected failure", http.StatusInternalServerError)
			return
		}
		if st.busy != nil && st.busy(n) {
			http.Error(w, "all 1 shard slots busy; retry later", http.StatusTooManyRequests)
			return
		}
		var req fleet.ShardRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		opts, err := req.Options()
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		count := 0
		_, err = leakage.RunShard(r.Context(), opts, req.Start, req.Count, func(tr leakage.TrialResult) {
			line := tr
			_ = enc.Encode(fleet.ShardLine{Trial: &line})
			count++
		})
		if err != nil {
			_ = enc.Encode(fleet.ShardLine{Err: err.Error()})
			return
		}
		_ = enc.Encode(fleet.ShardLine{EOF: true, Count: count})
	})
	st.ts = httptest.NewServer(mux)
	t.Cleanup(st.ts.Close)
	// LIFO: release blocked handlers before Close waits on their connections.
	t.Cleanup(func() { close(st.stop) })
	return st
}

func (s *stubWorker) requests() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shards
}

// localReport runs the same sweep single-process for bit-identical
// comparison against the fleet merge.
func localReport(t *testing.T, spec fleet.SweepSpec) *leakage.Report {
	t.Helper()
	strategies, err := leakage.ParseStrategyList(strings.Join(spec.Strategies, ","))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := leakage.RunReport(context.Background(), leakage.ReportOptions{
		Configs:       spec.Configs,
		Strategies:    strategies,
		Cores:         spec.Cores,
		Trials:        spec.Trials,
		Rounds:        spec.Rounds,
		EvictionLines: spec.EvictionLines,
		Seed:          spec.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestRetryBackoffFlakyWorker drops every third shard response and demands
// the scheduler retry exactly the dropped shards — deterministically two of
// them: requests converge at the fixed point N = tasks + |{i<=N : i%3==1}| —
// with no duplicate or missing trials in the merge.
func TestRetryBackoffFlakyWorker(t *testing.T) {
	fc := newFakeClock()
	autoAdvance(t, fc)
	st := newStubWorker(t, func(n int) bool { return n%3 == 1 }, false)

	reg := metrics.New()
	c := newCoordinator(t, fleet.Config{
		Workers:           []string{st.ts.URL},
		ShardTrials:       5,
		MaxAttempts:       4,
		BackoffBase:       10 * time.Millisecond,
		BackoffMax:        80 * time.Millisecond,
		HeartbeatInterval: 100 * time.Millisecond,
		HeartbeatMiss:     100_000,   // probes run in real time, the clock doesn't: never reap
		StealAfter:        time.Hour, // no second worker; never steal
		Clock:             fc,
		Metrics:           reg,
	})

	spec := fleet.SweepSpec{
		Kind:       fleet.SweepLeak,
		Configs:    []string{"skylake-unfixed"},
		Strategies: []string{"evictreload"},
		Trials:     20, // 4 shards of 5
		Rounds:     8,
		Seed:       3,
	}
	rep, _, err := c.RunLeak(context.Background(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := localReport(t, spec); !reflect.DeepEqual(rep, want) {
		t.Errorf("fleet report diverges from local run:\nfleet: %+v\nlocal: %+v", rep, want)
	}

	if got := st.requests(); got != 6 {
		t.Errorf("stub served %d shard requests, want 6 (4 shards + 2 injected failures)", got)
	}
	if got := reg.Counter("fleet/shards_retried").Value(); got != 2 {
		t.Errorf("fleet/shards_retried = %d, want 2", got)
	}
	if got := reg.Counter("fleet/shards_dispatched").Value(); got != 6 {
		t.Errorf("fleet/shards_dispatched = %d, want 6", got)
	}
	if got := reg.Counter("fleet/shards_discarded").Value(); got != 0 {
		t.Errorf("fleet/shards_discarded = %d, want 0 (no steals to lose)", got)
	}
}

// TestShardAttemptsExhausted points the fleet at a worker that fails every
// shard and demands the sweep fail after exactly MaxAttempts dispatches —
// bounded retries, not an infinite loop.
func TestShardAttemptsExhausted(t *testing.T) {
	fc := newFakeClock()
	autoAdvance(t, fc)
	st := newStubWorker(t, func(int) bool { return true }, false)

	reg := metrics.New()
	c := newCoordinator(t, fleet.Config{
		Workers:           []string{st.ts.URL},
		ShardTrials:       10,
		MaxAttempts:       3,
		BackoffBase:       5 * time.Millisecond,
		HeartbeatInterval: 100 * time.Millisecond,
		HeartbeatMiss:     100_000,
		StealAfter:        time.Hour,
		Clock:             fc,
		Metrics:           reg,
	})

	_, _, err := c.RunLeak(context.Background(), fleet.SweepSpec{
		Configs:    []string{"secdir"},
		Strategies: []string{"evictreload"},
		Trials:     10, // one shard
		Rounds:     4,
		Seed:       1,
	}, nil)
	if err == nil || !strings.Contains(err.Error(), "attempts exhausted") {
		t.Fatalf("err = %v, want attempts-exhausted failure", err)
	}
	if got := st.requests(); got != 3 {
		t.Errorf("stub served %d shard requests, want exactly MaxAttempts=3", got)
	}
	if got := reg.Counter("fleet/shards_retried").Value(); got != 2 {
		t.Errorf("fleet/shards_retried = %d, want 2 (third failure exhausts instead)", got)
	}
}

// TestBusyWorkerDoesNotExhaustAttempts bounces a shard off a worker's 429
// all-slots-busy refusal more times than MaxAttempts allows and demands the
// sweep still succeed: busy refusals are load signals that back off without
// charging the attempt budget, so a saturated fleet can never fail a sweep
// that would eventually run.
func TestBusyWorkerDoesNotExhaustAttempts(t *testing.T) {
	fc := newFakeClock()
	autoAdvance(t, fc)
	st := newStubWorker(t, nil, false)
	st.busy = func(n int) bool { return n <= 5 } // 5 refusals > MaxAttempts, then accept

	reg := metrics.New()
	c := newCoordinator(t, fleet.Config{
		Workers:           []string{st.ts.URL},
		ShardTrials:       10,
		MaxAttempts:       3,
		BackoffBase:       5 * time.Millisecond,
		HeartbeatInterval: 100 * time.Millisecond,
		HeartbeatMiss:     100_000,
		StealAfter:        time.Hour,
		Clock:             fc,
		Metrics:           reg,
	})

	spec := fleet.SweepSpec{
		Kind:       fleet.SweepLeak,
		Configs:    []string{"skylake-unfixed"},
		Strategies: []string{"evictreload"},
		Trials:     10, // one shard
		Rounds:     4,
		Seed:       9,
	}
	rep, _, err := c.RunLeak(context.Background(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := localReport(t, spec); !reflect.DeepEqual(rep, want) {
		t.Errorf("fleet report diverges from local run:\nfleet: %+v\nlocal: %+v", rep, want)
	}
	if got := st.requests(); got != 6 {
		t.Errorf("stub served %d shard requests, want 6 (5 busy bounces + 1 success)", got)
	}
	if got := reg.Counter("fleet/shards_busy").Value(); got != 5 {
		t.Errorf("fleet/shards_busy = %d, want 5", got)
	}
	if got := reg.Counter("fleet/shards_retried").Value(); got != 0 {
		t.Errorf("fleet/shards_retried = %d, want 0 (busy is not a genuine failure)", got)
	}
}

// TestWorkStealingRebalance gives one of two workers a shard it will never
// finish and demands the idle worker steal it once the steal age passes —
// and that the winner-takes-first-result merge still matches a local run
// exactly (the straggler's late duplicate must not double-count trials).
func TestWorkStealingRebalance(t *testing.T) {
	fc := newFakeClock()
	autoAdvance(t, fc)
	fast := newStubWorker(t, nil, false)
	slow := newStubWorker(t, nil, true) // hangs every shard until cancelled

	reg := metrics.New()
	c := newCoordinator(t, fleet.Config{
		Workers:           []string{fast.ts.URL, slow.ts.URL},
		ShardTrials:       10,
		MaxAttempts:       4,
		BackoffBase:       10 * time.Millisecond,
		HeartbeatInterval: 100 * time.Millisecond,
		HeartbeatMiss:     100_000,
		StealAfter:        300 * time.Millisecond,
		Clock:             fc,
		Metrics:           reg,
	})

	spec := fleet.SweepSpec{
		Kind:       fleet.SweepLeak,
		Configs:    []string{"skylake-unfixed"},
		Strategies: []string{"evictreload"},
		Trials:     20, // 2 shards: one per worker, then the steal
		Rounds:     8,
		Seed:       5,
	}
	rep, _, err := c.RunLeak(context.Background(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := localReport(t, spec); !reflect.DeepEqual(rep, want) {
		t.Errorf("fleet report diverges from local run:\nfleet: %+v\nlocal: %+v", rep, want)
	}

	if got := reg.Counter("fleet/shards_stolen").Value(); got < 1 {
		t.Errorf("fleet/shards_stolen = %d, want >= 1", got)
	}
	if got := fast.requests(); got != 2 {
		t.Errorf("fast worker served %d shards, want 2 (its own + the steal)", got)
	}
	if got := slow.requests(); got != 1 {
		t.Errorf("slow worker saw %d shards, want 1", got)
	}
	// The straggler's abandoned dispatch settles as a steal-race loss, never
	// as a merged duplicate.
	if got := reg.Counter("fleet/shards_dispatched").Value(); got != 3 {
		t.Errorf("fleet/shards_dispatched = %d, want 3", got)
	}
}
