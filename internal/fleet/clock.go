package fleet

import "time"

// Clock abstracts time for the coordinator so retry backoff, steal aging and
// heartbeat liveness can be driven by a fake clock in tests. Only scheduling
// decisions go through the Clock; per-request HTTP deadlines stay on the
// wall clock (they guard against a hung network, which a fake clock cannot
// simulate anyway).
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// After behaves like time.After: a channel that delivers once d has
	// elapsed.
	After(d time.Duration) <-chan time.Time
}

// realClock is the wall clock.
type realClock struct{}

// Now returns time.Now.
func (realClock) Now() time.Time { return time.Now() }

// After defers to time.After.
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// RealClock returns the wall clock, the default for Config.Clock.
func RealClock() Clock { return realClock{} }
