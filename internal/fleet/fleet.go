// Package fleet scales the leakage lab from one process to a coordinator and
// N secdir-serve workers. A leak or leaderboard sweep is embarrassingly
// parallel — (config × strategy × trial) — and the lab's trials are seeded
// from (master seed, trial index) alone, so the coordinator can decompose a
// sweep into contiguous per-trial-range shards, dispatch them to any set of
// workers over the existing HTTP/JSON + NDJSON protocol, and merge the
// per-trial streams back into a verdict bit-identical to a single-process
// run (leakage.RunShard / leakage.MergeVerdict are the two hooks).
//
// Robustness is the point of the package:
//
//   - per-shard wall-clock timeouts with exponential-backoff retry,
//   - re-enqueue of shards held by workers that die or miss heartbeats,
//   - work-stealing rebalance: an idle worker duplicates the oldest
//     in-flight shard of a straggler and the first result wins,
//   - graceful drain that lets in-flight shards finish.
//
// Workers are plain secdir-serve processes: every server exposes the
// POST /fleet/shard execution endpoint. A coordinator is a secdir-serve
// started with -coordinator; it learns its fleet from the static
// -fleet-workers list and from dynamic POST /fleet/register heartbeats, and
// reports per-worker liveness at GET /fleet/workerz.
package fleet

import (
	"net/http"
	"time"

	"secdir/internal/metrics"
)

// Config shapes a Coordinator. The zero value of every field is a usable
// default; Workers may be empty when the fleet is populated dynamically via
// Register.
type Config struct {
	// Workers are the static worker base URLs ("http://host:port") known at
	// start-up. More workers can join at runtime via Register (the
	// /fleet/register endpoint).
	Workers []string
	// ShardTrials is the trial count per dispatched shard (default 25).
	// Smaller shards ride out worker loss more cheaply; larger shards
	// amortize HTTP overhead.
	ShardTrials int
	// MaxInflight bounds the shards concurrently in flight per worker
	// (default 2: one executing, one queued behind the worker's pool).
	MaxInflight int
	// MaxAttempts bounds the genuine-failure dispatch attempts per shard
	// before the sweep fails (default 4). Re-enqueues caused by worker death
	// or losing a steal race do not count against the budget.
	MaxAttempts int
	// BackoffBase and BackoffMax shape the exponential retry backoff:
	// attempt n waits min(BackoffBase << (n-1), BackoffMax)
	// (defaults 100ms and 5s).
	BackoffBase time.Duration
	// BackoffMax caps the exponential backoff.
	BackoffMax time.Duration
	// ShardTimeout is the per-attempt wall-clock budget of one shard call
	// (default 5m). It runs on the wall clock, not Config.Clock.
	ShardTimeout time.Duration
	// HeartbeatInterval is the liveness probe cadence and the re-register
	// cadence handed to dynamic workers (default 2s).
	HeartbeatInterval time.Duration
	// HeartbeatMiss is how many intervals a worker may go unseen before it
	// is declared dead and its in-flight shards are re-enqueued (default 3).
	HeartbeatMiss int
	// StealAfter is how long a shard may sit in flight on one worker while
	// another sits idle before the coordinator duplicates it onto the idle
	// worker (default 30s). The first result wins; the loser is discarded.
	StealAfter time.Duration
	// LocalWorkers overrides each shard's worker-local trial fan-out
	// (0 = the executing worker's GOMAXPROCS). Results are invariant either
	// way; this only tunes worker CPU usage.
	LocalWorkers int
	// Clock drives backoff, steal aging and heartbeats (default wall clock).
	Clock Clock
	// Metrics receives the fleet gauges and counters (nil = private
	// registry): fleet/workers_known, fleet/workers_live,
	// fleet/shards_inflight, fleet/shards_dispatched, fleet/shards_retried,
	// fleet/shards_stolen, fleet/shards_requeued, fleet/shards_discarded,
	// fleet/shards_busy, fleet/shard_millis.
	Metrics *metrics.Registry
	// Client issues the worker HTTP calls (default a plain &http.Client{};
	// per-call deadlines come from ShardTimeout contexts).
	Client *http.Client
}

// withDefaults fills unset Config fields.
func (c Config) withDefaults() Config {
	if c.ShardTrials <= 0 {
		c.ShardTrials = 25
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 2
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 100 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 5 * time.Second
	}
	if c.ShardTimeout <= 0 {
		c.ShardTimeout = 5 * time.Minute
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 2 * time.Second
	}
	if c.HeartbeatMiss <= 0 {
		c.HeartbeatMiss = 3
	}
	if c.StealAfter <= 0 {
		c.StealAfter = 30 * time.Second
	}
	if c.Clock == nil {
		c.Clock = RealClock()
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	return c
}

// backoff returns the wait before retry attempt n (1-based): exponential
// from BackoffBase, capped at BackoffMax.
func (c Config) backoff(attempt int) time.Duration {
	d := c.BackoffBase
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= c.BackoffMax {
			return c.BackoffMax
		}
	}
	if d > c.BackoffMax {
		return c.BackoffMax
	}
	return d
}
