// Determinism tests: a fleet of real secdir-serve workers behind httptest
// must reproduce the committed golden CSVs bit-for-bit at 1, 2 and 4 workers
// — including a fleet that loses a worker mid-sweep. Trial seeding is
// worker-count invariant and float64 JSON round-trips are exact, so any byte
// of drift here is a real scheduling or merge bug.
package fleet_test

import (
	"bytes"
	"context"
	"encoding/csv"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"secdir/internal/config"
	"secdir/internal/fleet"
	"secdir/internal/metrics"
	"secdir/internal/server"
)

// Golden sampling parameters, mirroring the leakage package's golden tests
// (internal/leakage/golden_test.go and leaderboard_test.go): the fleet must
// reproduce the exact CSVs those tests pin.
const (
	goldenTrials  = 200
	goldenRounds  = 128
	goldenEvLines = 23
	goldenSeed    = 1

	lbTrials = 60
	lbRounds = 32
)

// newWorker starts one real secdir-serve server behind httptest and returns
// its base URL. The server is a full worker: POST /fleet/shard and
// GET /healthz are live.
func newWorker(t *testing.T) string {
	t.Helper()
	cfg := config.DefaultServerConfig()
	cfg.Workers = 2
	srv, err := server.New(cfg, metrics.New())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_, _ = srv.Drain(ctx)
	})
	return ts.URL
}

// newCoordinator builds a coordinator that is drained at test end.
func newCoordinator(t *testing.T, cfg fleet.Config) *fleet.Coordinator {
	t.Helper()
	c := fleet.New(cfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = c.Drain(ctx)
	})
	return c
}

// assertGolden renders (head, rows) exactly as the golden writers do and
// byte-compares against the committed CSV under data/.
func assertGolden(t *testing.T, name string, head []string, rows [][]string) {
	t.Helper()
	var buf bytes.Buffer
	w := csv.NewWriter(&buf)
	if err := w.Write(head); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteAll(rows); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	got := buf.Bytes()

	path := filepath.Join("..", "..", "data", name)
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden %s: %v", path, err)
	}
	if bytes.Equal(got, want) {
		return
	}
	gl := bytes.Split(bytes.TrimRight(got, "\n"), []byte("\n"))
	wl := bytes.Split(bytes.TrimRight(want, "\n"), []byte("\n"))
	for i := 0; i < len(gl) || i < len(wl); i++ {
		var g, w0 []byte
		if i < len(gl) {
			g = gl[i]
		}
		if i < len(wl) {
			w0 = wl[i]
		}
		if !bytes.Equal(g, w0) {
			t.Errorf("%s line %d:\n  fleet : %s\n  golden: %s", name, i+1, g, w0)
		}
	}
	t.Fatalf("fleet result diverges from golden %s", name)
}

// TestFleetReproducesLeakGolden sweeps the golden leak grid through fleets
// of one and two workers and demands the merged report render byte-identical
// to data/leakage_verdicts.csv — the same file the single-process golden
// test pins.
func TestFleetReproducesLeakGolden(t *testing.T) {
	if raceEnabled {
		t.Skip("golden fleet sweep is too heavy under -race; sched_test.go races the scheduler")
	}
	spec := fleet.SweepSpec{
		Kind:          fleet.SweepLeak,
		Configs:       []string{"skylake-unfixed", "secdir"},
		Strategies:    []string{"primeprobe", "evictreload"},
		Trials:        goldenTrials,
		Rounds:        goldenRounds,
		EvictionLines: goldenEvLines,
		Seed:          goldenSeed,
	}
	stages := []string{
		"skylake-unfixed/primeprobe", "skylake-unfixed/evictreload",
		"secdir/primeprobe", "secdir/evictreload",
	}
	total := len(stages) * goldenTrials

	for _, n := range []int{1, 2} {
		t.Run(fmt.Sprintf("workers=%d", n), func(t *testing.T) {
			urls := make([]string, n)
			for i := range urls {
				urls[i] = newWorker(t)
			}
			c := newCoordinator(t, fleet.Config{Workers: urls})

			var mu sync.Mutex
			events := map[string][]int{}
			rep, prov, err := c.RunLeak(context.Background(), spec, func(stage string, done, tot int) {
				mu.Lock()
				defer mu.Unlock()
				if tot != total {
					t.Errorf("progress total = %d, want %d", tot, total)
				}
				events[stage] = append(events[stage], done)
			})
			if err != nil {
				t.Fatal(err)
			}

			// The merge provenance tiles the sweep exactly: every trial of
			// every cell is covered once, by a named worker.
			covered := 0
			for _, p := range prov {
				if p.Worker == "" {
					t.Errorf("provenance shard %s [%d,%d) has no worker", p.Cell, p.Start, p.Start+p.Count)
				}
				covered += p.Count
			}
			if covered != total {
				t.Errorf("provenance covers %d trials, want %d", covered, total)
			}

			head, rows := rep.CSV()
			assertGolden(t, "leakage_verdicts.csv", head, rows)

			// Progress climbs monotonically per stage to the stage's slice of
			// the sweep total, matching the local job runner's convention.
			for i, stage := range stages {
				dones := events[stage]
				if len(dones) == 0 {
					t.Errorf("stage %s reported no progress", stage)
					continue
				}
				for j := 1; j < len(dones); j++ {
					if dones[j] <= dones[j-1] {
						t.Errorf("stage %s progress not monotonic: %v", stage, dones)
						break
					}
				}
				if want := (i + 1) * goldenTrials; dones[len(dones)-1] != want {
					t.Errorf("stage %s final progress = %d, want %d", stage, dones[len(dones)-1], want)
				}
			}
		})
	}
}

// killSwitch wraps a worker's handler to simulate a process dying mid-sweep:
// after killAfter completed shard requests the next shard request streams a
// torn half-line, severs every live connection, and from then on every
// request — /healthz included — is aborted, so the coordinator's heartbeat
// ages the worker out and its shards re-enqueue elsewhere.
type killSwitch struct {
	inner     http.Handler
	ts        *httptest.Server
	killAfter int

	mu     sync.Mutex
	shards int
	dead   bool
}

func (k *killSwitch) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	k.mu.Lock()
	if k.dead {
		k.mu.Unlock()
		panic(http.ErrAbortHandler)
	}
	kill := false
	if r.URL.Path == "/fleet/shard" {
		k.shards++
		if k.shards > k.killAfter {
			k.dead, kill = true, true
		}
	}
	k.mu.Unlock()
	if kill {
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte(`{"trial":`)) // torn mid-line
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		go k.ts.CloseClientConnections()
		panic(http.ErrAbortHandler)
	}
	k.inner.ServeHTTP(w, r)
}

// TestFleetLeaderboardGoldenSurvivesWorkerKill races the full leaderboard
// roster across four workers, kills one after its second shard, and demands
// the merged leaderboard still render byte-identical to data/leaderboard.csv:
// the dead worker's shards must re-enqueue, never half-merge.
func TestFleetLeaderboardGoldenSurvivesWorkerKill(t *testing.T) {
	if raceEnabled {
		t.Skip("golden fleet sweep is too heavy under -race; sched_test.go races the scheduler")
	}
	urls := make([]string, 0, 4)
	for i := 0; i < 3; i++ {
		urls = append(urls, newWorker(t))
	}

	cfg := config.DefaultServerConfig()
	cfg.Workers = 2
	doomedSrv, err := server.New(cfg, metrics.New())
	if err != nil {
		t.Fatal(err)
	}
	ks := &killSwitch{inner: doomedSrv, killAfter: 2}
	doomed := httptest.NewServer(ks)
	ks.ts = doomed
	t.Cleanup(func() {
		doomed.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_, _ = doomedSrv.Drain(ctx)
	})
	urls = append(urls, doomed.URL)

	reg := metrics.New()
	c := newCoordinator(t, fleet.Config{
		Workers:           urls,
		HeartbeatInterval: 100 * time.Millisecond,
		HeartbeatMiss:     2,
		MaxAttempts:       8,
		BackoffBase:       20 * time.Millisecond,
		Metrics:           reg,
	})

	start := time.Now()
	lb, prov, err := c.RunLeaderboard(context.Background(), fleet.SweepSpec{
		Kind:          fleet.SweepLeaderboard,
		Trials:        lbTrials,
		Rounds:        lbRounds,
		EvictionLines: goldenEvLines,
		Seed:          goldenSeed,
	}, func(stage string, done, total int) {
		t.Logf("%7.2fs %-24s %d/%d", time.Since(start).Seconds(), stage, done, total)
	})
	if err != nil {
		t.Fatal(err)
	}

	if len(prov) == 0 {
		t.Error("leaderboard sweep returned no merge provenance")
	}

	head, rows := lb.CSV()
	assertGolden(t, "leaderboard.csv", head, rows)

	if retried, requeued := reg.Counter("fleet/shards_retried").Value(),
		reg.Counter("fleet/shards_requeued").Value(); retried+requeued == 0 {
		t.Error("a worker died mid-sweep but no shard was retried or requeued")
	}
	var sawDead bool
	for _, w := range c.Workerz() {
		if w.URL == doomed.URL {
			sawDead = !w.Alive
		}
	}
	if !sawDead {
		t.Error("killed worker still reported alive in Workerz")
	}
}
