package fleet

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"secdir/internal/leakage"
	"secdir/internal/metrics"
)

// Coordinator owns a fleet of secdir-serve workers and runs leak/leaderboard
// sweeps across them. Create one with New; it immediately starts probing its
// workers and stops via Drain.
type Coordinator struct {
	cfg    Config
	reg    *metrics.Registry
	clock  Clock
	client *http.Client

	mu       sync.Mutex
	workers  map[string]*worker
	draining bool
	runs     sync.WaitGroup
	stopHB   chan struct{}
	hbDone   chan struct{}

	inflight int64 // atomic: shards in flight fleet-wide

	dispatched  *metrics.Counter
	retried     *metrics.Counter
	stolen      *metrics.Counter
	requeuedCtr *metrics.Counter
	discarded   *metrics.Counter
	busyCtr     *metrics.Counter
	shardMillis *metrics.Histogram
}

// New builds a coordinator over cfg's static workers (more may Register
// later) and starts its heartbeat prober.
func New(cfg Config) *Coordinator {
	cfg = cfg.withDefaults()
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.New()
	}
	c := &Coordinator{
		cfg:     cfg,
		reg:     reg,
		clock:   cfg.Clock,
		client:  cfg.Client,
		workers: map[string]*worker{},
		stopHB:  make(chan struct{}),
		hbDone:  make(chan struct{}),

		dispatched:  reg.Counter("fleet/shards_dispatched"),
		retried:     reg.Counter("fleet/shards_retried"),
		stolen:      reg.Counter("fleet/shards_stolen"),
		requeuedCtr: reg.Counter("fleet/shards_requeued"),
		discarded:   reg.Counter("fleet/shards_discarded"),
		busyCtr:     reg.Counter("fleet/shards_busy"),
		shardMillis: reg.Histogram("fleet/shard_millis"),
	}
	now := c.clock.Now()
	for _, u := range cfg.Workers {
		u = normalizeWorkerURL(u)
		if u == "" {
			continue
		}
		c.workers[u] = &worker{url: u, static: true, lastSeen: now}
	}
	reg.GaugeFunc("fleet/workers_known", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(len(c.workers))
	})
	reg.GaugeFunc("fleet/workers_live", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		n := 0
		t := c.clock.Now()
		for _, w := range c.workers {
			if w.alive(t, c.cfg) {
				n++
			}
		}
		return float64(n)
	})
	reg.GaugeFunc("fleet/shards_inflight", func() float64 {
		return float64(atomic.LoadInt64(&c.inflight))
	})
	go c.heartbeatLoop()
	return c
}

// Register adds or refreshes a worker — the /fleet/register handler's hook.
// Registration doubles as the heartbeat: a registered worker that stops
// re-registering ages out after HeartbeatMiss intervals. Returns the
// interval the worker should re-register at.
func (c *Coordinator) Register(rawURL string, poolWidth int) (time.Duration, error) {
	u := normalizeWorkerURL(rawURL)
	parsed, err := url.Parse(u)
	if err != nil || (parsed.Scheme != "http" && parsed.Scheme != "https") || parsed.Host == "" {
		return 0, fmt.Errorf("fleet: bad worker url %q (want http(s)://host:port)", rawURL)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.draining {
		return 0, fmt.Errorf("fleet: coordinator is draining; not accepting workers")
	}
	w := c.workers[u]
	if w == nil {
		w = &worker{url: u}
		c.workers[u] = w
	}
	w.lastSeen = c.clock.Now()
	if poolWidth > 0 {
		w.poolWidth = poolWidth
	}
	return c.cfg.HeartbeatInterval, nil
}

// Workerz snapshots every worker's liveness and shard accounting, sorted by
// URL — the /fleet/workerz payload.
func (c *Coordinator) Workerz() []WorkerStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.clock.Now()
	out := make([]WorkerStatus, 0, len(c.workers))
	for _, w := range c.workers {
		out = append(out, WorkerStatus{
			URL:                w.url,
			Alive:              w.alive(now, c.cfg),
			Static:             w.static,
			LastHeartbeatAgeMS: now.Sub(w.lastSeen).Milliseconds(),
			Inflight:           w.inflight,
			PoolWidth:          w.poolWidth,
			ShardsDone:         w.done,
			ShardsFailed:       w.failed,
			ShardsStolenFrom:   w.stolenFrom,
			ShardsStolenBy:     w.stolenBy,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}

// Drain stops the heartbeat prober, refuses new sweeps and registrations,
// and waits for active sweeps — and therefore their in-flight shards — to
// finish, bounded by ctx. Safe to call more than once.
func (c *Coordinator) Drain(ctx context.Context) error {
	c.mu.Lock()
	already := c.draining
	c.draining = true
	c.mu.Unlock()
	if !already {
		close(c.stopHB)
	}
	<-c.hbDone
	done := make(chan struct{})
	go func() {
		c.runs.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// heartbeatLoop probes every worker's /healthz each interval, refreshing
// lastSeen on success. A worker that stops answering ages out and its
// in-flight shards are re-enqueued by the sweep scheduler.
func (c *Coordinator) heartbeatLoop() {
	defer close(c.hbDone)
	// An eager first probe learns static workers' pool widths before the
	// first sweep, so the scheduler can size dispatch to them immediately.
	c.probeWorkers()
	for {
		select {
		case <-c.stopHB:
			return
		case <-c.clock.After(c.cfg.HeartbeatInterval):
		}
		c.probeWorkers()
	}
}

// probeWorkers probes all workers concurrently and folds the outcomes back
// under the lock.
func (c *Coordinator) probeWorkers() {
	c.mu.Lock()
	targets := make([]*worker, 0, len(c.workers))
	for _, w := range c.workers {
		targets = append(targets, w)
	}
	c.mu.Unlock()
	if len(targets) == 0 {
		return
	}
	ok := make([]bool, len(targets))
	widths := make([]int, len(targets))
	var wg sync.WaitGroup
	for i, w := range targets {
		wg.Add(1)
		go func(i int, w *worker) {
			defer wg.Done()
			ok[i], widths[i] = c.probe(w)
		}(i, w)
	}
	wg.Wait()
	c.mu.Lock()
	now := c.clock.Now()
	for i, w := range targets {
		if ok[i] {
			w.lastSeen = now
			if widths[i] > 0 {
				w.poolWidth = widths[i]
			}
		}
	}
	c.mu.Unlock()
}

// taskState is a shard task's scheduling state.
type taskState int

const (
	taskPending taskState = iota
	taskInflight
	taskDone
)

// task is one shard of one cell as the scheduler tracks it.
type task struct {
	id        int
	cell      *cell
	req       ShardRequest
	state     taskState
	attempts  int       // genuine-failure attempts charged against MaxAttempts
	notBefore time.Time // backoff gate for the next dispatch
	assigns   map[*assign]struct{}
}

// assign is one live (task, worker) dispatch.
type assign struct {
	t       *task
	w       *worker
	cancel  context.CancelFunc
	started time.Time // Clock time, for steal aging
	charged bool      // this dispatch consumed one of the task's attempts
	requeue bool      // cancelled by reaper/steal settlement: refund the attempt
}

// shardResult is what a dispatch goroutine reports back to the scheduler.
type shardResult struct {
	a      *assign
	trials []leakage.TrialResult
	err    error
	millis int64
}

// RunLeak executes a distributed leak sweep and merges it into the exact
// Report a single-process leakage.RunReport of the same spec produces, along
// with the per-shard merge provenance (which worker's result each trial range
// came from). progress (may be nil) receives per-cell trial counts offset so
// done climbs monotonically per stage, matching the local job runner's
// convention.
func (c *Coordinator) RunLeak(ctx context.Context, spec SweepSpec, progress func(stage string, done, total int)) (*leakage.Report, []ShardProvenance, error) {
	spec.Kind = SweepLeak
	cells, base, err := c.begin(spec)
	if err != nil {
		return nil, nil, err
	}
	defer c.runs.Done()
	prov, err := c.runShards(ctx, cells, progress)
	if err != nil {
		return nil, nil, err
	}
	rep := &leakage.Report{
		Trials:     base.Trials,
		Rounds:     base.Rounds,
		Seed:       base.Seed,
		Confidence: base.Confidence,
	}
	for _, cl := range cells {
		v, err := leakage.MergeVerdict(cl.opts, cl.results)
		if err != nil {
			return nil, nil, fmt.Errorf("fleet: %s: %w", cl.stageLabel(), err)
		}
		rep.Verdicts = append(rep.Verdicts, v)
	}
	return rep, prov, nil
}

// RunLeaderboard executes a distributed cross-defense race: verdicts merge
// from remote shards; the deterministic performance probe and Table 7 cost
// columns are computed locally. The result is bit-identical to
// leakage.RunLeaderboard of the same spec; the second return value is the
// per-shard merge provenance, as in RunLeak.
func (c *Coordinator) RunLeaderboard(ctx context.Context, spec SweepSpec, progress func(stage string, done, total int)) (*leakage.Leaderboard, []ShardProvenance, error) {
	spec.Kind = SweepLeaderboard
	cells, base, err := c.begin(spec)
	if err != nil {
		return nil, nil, err
	}
	defer c.runs.Done()
	prov, err := c.runShards(ctx, cells, progress)
	if err != nil {
		return nil, nil, err
	}
	cores := spec.Cores
	if cores <= 0 {
		cores = 8
	}
	lb := &leakage.Leaderboard{Trials: base.Trials, Rounds: base.Rounds, Seed: base.Seed}
	var curName string
	var ns, kb, mm2 float64
	for _, cl := range cells {
		if cl.name != curName {
			curName = cl.name
			ns, kb, mm2, err = leakage.PerfCost(cl.name, cores, spec.PerfAccesses)
			if err != nil {
				return nil, nil, err
			}
		}
		v, err := leakage.MergeVerdict(cl.opts, cl.results)
		if err != nil {
			return nil, nil, fmt.Errorf("fleet: %s: %w", cl.stageLabel(), err)
		}
		lb.Rows = append(lb.Rows, leakage.LeaderboardRow{
			Verdict:     v,
			SimNsAccess: ns,
			StorageKB:   kb,
			AreaMM2:     mm2,
		})
	}
	return lb, prov, nil
}

// begin validates sweep admission (not draining, at least one worker) and
// plans the cells.
func (c *Coordinator) begin(spec SweepSpec) ([]*cell, leakage.Options, error) {
	c.mu.Lock()
	if c.draining {
		c.mu.Unlock()
		return nil, leakage.Options{}, fmt.Errorf("fleet: coordinator is draining; not accepting sweeps")
	}
	if len(c.workers) == 0 {
		c.mu.Unlock()
		return nil, leakage.Options{}, fmt.Errorf("fleet: no workers (configure -fleet-workers or register some)")
	}
	c.runs.Add(1)
	c.mu.Unlock()
	cells, base, err := planCells(spec)
	if err != nil {
		c.runs.Done()
		return nil, base, err
	}
	return cells, base, nil
}

// runShards is the sweep scheduler: it decomposes every cell into
// ShardTrials-sized tasks and drives them all to completion across the
// fleet, retrying failures with exponential backoff, re-enqueueing shards
// from dead workers, and duplicating stragglers' shards onto idle workers.
// On success it returns one ShardProvenance per task, sorted by (cell, start)
// so the listing is deterministic regardless of completion order.
func (c *Coordinator) runShards(ctx context.Context, cells []*cell, progress func(stage string, done, total int)) ([]ShardProvenance, error) {
	var tasks []*task
	total := 0
	for _, cl := range cells {
		total += cl.opts.Trials
		for start := 0; start < cl.opts.Trials; start += c.cfg.ShardTrials {
			count := min(c.cfg.ShardTrials, cl.opts.Trials-start)
			tasks = append(tasks, &task{
				id:   len(tasks),
				cell: cl,
				req: ShardRequest{
					Config:        cl.name,
					Strategy:      cl.strategy,
					Cores:         cl.opts.Config.Cores,
					Trials:        cl.opts.Trials,
					Rounds:        cl.opts.Rounds,
					EvictionLines: cl.opts.EvictionLines,
					Seed:          cl.opts.Seed,
					Start:         start,
					Count:         count,
					Workers:       c.cfg.LocalWorkers,
				},
				assigns: map[*assign]struct{}{},
			})
		}
	}

	resc := make(chan shardResult)
	remaining := len(tasks)
	outstanding := 0
	var failErr error
	var prov []ShardProvenance

	for remaining > 0 && failErr == nil && ctx.Err() == nil {
		c.reapDead(tasks)
		c.launch(ctx, tasks, resc, &outstanding)
		wake := c.nextWake(tasks)
		select {
		case r := <-resc:
			outstanding--
			c.settle(r, &remaining, &failErr, progress, total, &prov)
		case <-c.clock.After(wake):
			// Wake to re-check backoff gates, liveness and steal aging.
		case <-ctx.Done():
		}
	}

	// Teardown: cancel whatever is still in flight (steal losers after
	// success, everything on failure/cancel) and drain their results so no
	// goroutine leaks.
	c.mu.Lock()
	for _, t := range tasks {
		for a := range t.assigns {
			a.requeue = true
			a.cancel()
		}
	}
	c.mu.Unlock()
	for outstanding > 0 {
		r := <-resc
		outstanding--
		c.settle(r, &remaining, &failErr, nil, total, &prov)
	}
	if failErr != nil {
		return nil, failErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sort.Slice(prov, func(i, j int) bool {
		if prov[i].Cell != prov[j].Cell {
			return prov[i].Cell < prov[j].Cell
		}
		return prov[i].Start < prov[j].Start
	})
	return prov, nil
}

// launch assigns ready pending tasks to live workers with free slots, then
// steals for idle workers: duplicating the oldest sufficiently-aged single-
// assignment in-flight shard onto a strictly idle worker.
func (c *Coordinator) launch(ctx context.Context, tasks []*task, resc chan<- shardResult, outstanding *int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.clock.Now()

	// A worker with a known pool width never takes more concurrent shards
	// than it has slots: dispatching past that would only bounce off its
	// 429 busy refusals.
	slots := func(w *worker) int {
		n := c.cfg.MaxInflight
		if w.poolWidth > 0 && w.poolWidth < n {
			n = w.poolWidth
		}
		return n
	}
	free := func() []*worker {
		var ws []*worker
		for _, w := range c.workers {
			if w.alive(now, c.cfg) && w.inflight < slots(w) {
				ws = append(ws, w)
			}
		}
		// Least-loaded first; URL breaks ties for stable scheduling.
		sort.Slice(ws, func(i, j int) bool {
			if ws[i].inflight != ws[j].inflight {
				return ws[i].inflight < ws[j].inflight
			}
			return ws[i].url < ws[j].url
		})
		return ws
	}

	// Pending pass.
	candidates := free()
	for _, t := range tasks {
		if len(candidates) == 0 {
			break
		}
		if t.state != taskPending || t.notBefore.After(now) {
			continue
		}
		w := candidates[0]
		t.attempts++ // charged up front; refunded if the attempt is requeued through no fault of its own
		c.spawn(ctx, t, w, true, now, resc, outstanding)
		candidates = free()
	}

	// Steal pass: strictly idle workers adopt the oldest straggling shard.
	for _, w := range free() {
		if w.inflight != 0 {
			continue
		}
		var victim *task
		var oldest time.Time
		for _, t := range tasks {
			if t.state != taskInflight || len(t.assigns) != 1 {
				continue
			}
			var a *assign
			for a0 := range t.assigns {
				a = a0
			}
			if a.w == w || now.Sub(a.started) < c.cfg.StealAfter {
				continue
			}
			if victim == nil || a.started.Before(oldest) {
				victim, oldest = t, a.started
			}
		}
		if victim == nil {
			continue
		}
		var from *worker
		for a := range victim.assigns {
			from = a.w
		}
		from.stolenFrom++
		w.stolenBy++
		c.stolen.Inc()
		// Steal duplicates don't charge the attempt budget: the shard isn't
		// failing, its worker is straggling.
		c.spawn(ctx, victim, w, false, now, resc, outstanding)
	}
}

// spawn launches one dispatch goroutine for (t, w). Caller holds c.mu.
func (c *Coordinator) spawn(ctx context.Context, t *task, w *worker, charged bool, now time.Time, resc chan<- shardResult, outstanding *int) {
	actx, cancel := context.WithCancel(ctx)
	a := &assign{t: t, w: w, cancel: cancel, started: now, charged: charged}
	t.assigns[a] = struct{}{}
	t.state = taskInflight
	w.inflight++
	*outstanding++
	atomic.AddInt64(&c.inflight, 1)
	c.dispatched.Inc()
	wall := time.Now()
	go func() {
		trials, err := c.executeShard(actx, w, t.req)
		cancel()
		resc <- shardResult{a: a, trials: trials, err: err, millis: time.Since(wall).Milliseconds()}
	}()
}

// settle folds one dispatch outcome back into the scheduler state, appending
// to prov when it accepts a shard's result. progress is nil during teardown
// drains.
func (c *Coordinator) settle(r shardResult, remaining *int, failErr *error, progress func(stage string, done, total int), total int, prov *[]ShardProvenance) {
	c.mu.Lock()
	a, t := r.a, r.a.t
	delete(t.assigns, a)
	a.w.inflight--
	atomic.AddInt64(&c.inflight, -1)
	now := c.clock.Now()

	if r.err == nil {
		c.shardMillis.Observe(uint64(r.millis))
		if t.state == taskDone {
			// A steal-race loser that completed anyway: first result won,
			// this one is discarded — the merge must never see duplicates.
			c.discarded.Inc()
			c.mu.Unlock()
			return
		}
		t.state = taskDone
		*remaining--
		a.w.done++
		*prov = append(*prov, ShardProvenance{
			Cell:     t.cell.stageLabel(),
			Start:    t.req.Start,
			Count:    t.req.Count,
			Worker:   a.w.url,
			Attempts: t.attempts,
			Millis:   r.millis,
		})
		t.cell.results = append(t.cell.results, r.trials...)
		t.cell.done += len(r.trials)
		stage, done, offset := t.cell.stageLabel(), t.cell.done, t.cell.offset
		for other := range t.assigns {
			other.requeue = true
			other.cancel()
		}
		c.mu.Unlock()
		if progress != nil {
			progress(stage, offset+done, total)
		}
		return
	}

	if t.state == taskDone {
		// The cancelled loser of a settled steal race.
		c.mu.Unlock()
		return
	}
	if a.requeue {
		// Killed by the dead-worker reaper or sweep teardown — not the
		// shard's fault: refund the attempt (if this dispatch was charged)
		// and redispatch immediately.
		if a.charged {
			t.attempts--
		}
		c.requeuedCtr.Inc()
		if len(t.assigns) == 0 {
			t.state = taskPending
			t.notBefore = now
		}
		c.mu.Unlock()
		return
	}
	if errors.Is(r.err, errWorkerBusy) {
		// The worker's shard slots were all occupied — a load signal, not a
		// failure: refund the attempt and retry after a backoff so the shard
		// can't exhaust its budget bouncing off a busy fleet.
		if a.charged {
			t.attempts--
		}
		c.busyCtr.Inc()
		if len(t.assigns) == 0 {
			t.state = taskPending
			t.notBefore = now.Add(c.cfg.backoff(t.attempts + 1))
		}
		c.mu.Unlock()
		return
	}
	a.w.failed++
	if len(t.assigns) > 0 {
		// A duplicate is still in flight; let it race on.
		c.mu.Unlock()
		return
	}
	if t.attempts >= c.cfg.MaxAttempts {
		if *failErr == nil {
			*failErr = fmt.Errorf("fleet: shard %s trials [%d,%d): %d attempts exhausted: %w",
				t.cell.stageLabel(), t.req.Start, t.req.Start+t.req.Count, t.attempts, r.err)
		}
		c.mu.Unlock()
		return
	}
	t.state = taskPending
	t.notBefore = now.Add(c.cfg.backoff(t.attempts))
	c.retried.Inc()
	c.mu.Unlock()
}

// reapDead cancels assignments held by workers whose heartbeats have aged
// out; their shards re-enqueue through the settle path with the attempt
// refunded.
func (c *Coordinator) reapDead(tasks []*task) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.clock.Now()
	for _, t := range tasks {
		for a := range t.assigns {
			if !a.requeue && !a.w.alive(now, c.cfg) {
				a.requeue = true
				a.cancel()
			}
		}
	}
}

// nextWake picks how long the scheduler may sleep: the nearest pending
// backoff gate, capped at the heartbeat interval so liveness and steal aging
// are re-checked at that cadence.
func (c *Coordinator) nextWake(tasks []*task) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.clock.Now()
	wake := c.cfg.HeartbeatInterval
	for _, t := range tasks {
		if t.state != taskPending {
			continue
		}
		if d := t.notBefore.Sub(now); d > 0 && d < wake {
			wake = d
		}
	}
	if wake < time.Millisecond {
		wake = time.Millisecond
	}
	return wake
}
