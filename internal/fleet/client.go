package fleet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client drives a coordinator's job API from the command line: submit a
// fleet job, stream its progress, fetch its result. It mirrors the server's
// JSON wire shapes instead of importing internal/server (the server imports
// this package).
type Client struct {
	// BaseURL is the coordinator's base URL ("http://host:port").
	BaseURL string
	// HTTP issues the requests (nil = a plain &http.Client{}).
	HTTP *http.Client
}

// JobRequest mirrors the fields of the server's JobSpec that fleet sweeps
// use, tag-for-tag.
type JobRequest struct {
	// Kind is "leak" or "leaderboard".
	Kind string `json:"kind"`
	// Fleet asks the coordinator to run the sweep across its workers.
	Fleet bool `json:"fleet,omitempty"`
	// Configs and Strategies select the sweep grid (empty = kind defaults).
	Configs    []string `json:"configs,omitempty"`
	Strategies []string `json:"strategies,omitempty"`
	// Cores, Trials, Rounds, EvictionLines, Workers and Seed match their
	// JobSpec meanings.
	Cores         int   `json:"cores,omitempty"`
	Trials        int   `json:"trials,omitempty"`
	Rounds        int   `json:"rounds,omitempty"`
	EvictionLines int   `json:"eviction_lines,omitempty"`
	Workers       int   `json:"workers,omitempty"`
	Seed          int64 `json:"seed,omitempty"`
	// Confidence and Resamples shape leak-sweep bootstrap CIs.
	Confidence float64 `json:"confidence,omitempty"`
	Resamples  int     `json:"resamples,omitempty"`
	// PerfAccesses sizes the leaderboard performance probe.
	PerfAccesses int `json:"perf_accesses,omitempty"`
}

// ProgressEvent mirrors the server's NDJSON stream Event.
type ProgressEvent struct {
	// JobID identifies the job.
	JobID string `json:"job_id"`
	// State is the job state when the event fired.
	State string `json:"state"`
	// Stage names the work unit that completed.
	Stage string `json:"stage,omitempty"`
	// Done and Total count completed work units.
	Done  int `json:"done"`
	Total int `json:"total"`
	// Err carries the failure message on a terminal failed event.
	Err string `json:"error,omitempty"`
}

// terminal mirrors JobState.Terminal for the wire states.
func terminalState(s string) bool { return s == "done" || s == "failed" || s == "canceled" }

// jobStatus is the slice of the server's JobStatus the client needs.
type jobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Err   string `json:"error"`
}

// SubmitAndWait submits req, streams progress events to progress (which may
// be nil) until the job reaches a terminal state, and returns the raw JSON
// of the job's result payload. The result bytes are the server's own
// encoding of the Report/Leaderboard, so re-emitting them preserves
// bit-identity with a local run.
func (c *Client) SubmitAndWait(ctx context.Context, req JobRequest, progress func(ProgressEvent)) (json.RawMessage, error) {
	hc := c.HTTP
	if hc == nil {
		hc = &http.Client{}
	}
	base := normalizeWorkerURL(c.BaseURL)
	if base == "" {
		return nil, fmt.Errorf("fleet: client needs a coordinator base URL")
	}

	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/jobs", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := hc.Do(hreq)
	if err != nil {
		return nil, fmt.Errorf("fleet: submit: %w", err)
	}
	var st jobStatus
	err = decodeJSON(resp, http.StatusAccepted, &st)
	if err != nil {
		return nil, fmt.Errorf("fleet: submit: %w", err)
	}

	// Stream progress until the terminal event; if the stream drops early,
	// fall through to a status poll.
	state := st.State
	sreq, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/jobs/"+st.ID+"/stream", nil)
	if err != nil {
		return nil, err
	}
	sresp, err := hc.Do(sreq)
	if err == nil {
		func() {
			defer sresp.Body.Close()
			if sresp.StatusCode != http.StatusOK {
				return
			}
			sc := bufio.NewScanner(sresp.Body)
			sc.Buffer(make([]byte, 64<<10), 1<<20)
			for sc.Scan() {
				var e ProgressEvent
				if json.Unmarshal(sc.Bytes(), &e) != nil {
					continue
				}
				if progress != nil {
					progress(e)
				}
				if terminalState(e.State) {
					state = e.State
					if e.Err != "" {
						st.Err = e.Err
					}
				}
			}
		}()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	if !terminalState(state) {
		// The stream ended without a terminal event (connection drop, proxy
		// timeout); ask the job table directly.
		greq, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/jobs/"+st.ID, nil)
		if err != nil {
			return nil, err
		}
		gresp, err := hc.Do(greq)
		if err != nil {
			return nil, fmt.Errorf("fleet: job %s status: %w", st.ID, err)
		}
		if err := decodeJSON(gresp, http.StatusOK, &st); err != nil {
			return nil, fmt.Errorf("fleet: job %s status: %w", st.ID, err)
		}
		state = st.State
	}
	if state != "done" {
		msg := st.Err
		if msg == "" {
			msg = "no error detail"
		}
		return nil, fmt.Errorf("fleet: job %s %s: %s", st.ID, state, msg)
	}

	rreq, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/jobs/"+st.ID+"/result", nil)
	if err != nil {
		return nil, err
	}
	rresp, err := hc.Do(rreq)
	if err != nil {
		return nil, fmt.Errorf("fleet: job %s result: %w", st.ID, err)
	}
	var rb struct {
		Result json.RawMessage `json:"result"`
	}
	if err := decodeJSON(rresp, http.StatusOK, &rb); err != nil {
		return nil, fmt.Errorf("fleet: job %s result: %w", st.ID, err)
	}
	return rb.Result, nil
}

// decodeJSON drains and closes resp, decoding into v on the expected status
// and surfacing the server's error body otherwise.
func decodeJSON(resp *http.Response, want int, v any) error {
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != want {
		var ae struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(raw, &ae) == nil && ae.Error != "" {
			return fmt.Errorf("HTTP %d: %s", resp.StatusCode, ae.Error)
		}
		return fmt.Errorf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(raw)))
	}
	return json.Unmarshal(raw, v)
}

// RegisterWorker announces workerURL to the coordinator — the call a worker
// repeats as its heartbeat. Returns the re-register interval the coordinator
// wants (its HeartbeatInterval).
func RegisterWorker(ctx context.Context, hc *http.Client, coordinatorURL, workerURL string, poolWidth int) (time.Duration, error) {
	if hc == nil {
		hc = &http.Client{}
	}
	body, err := json.Marshal(RegisterRequest{URL: workerURL, Workers: poolWidth})
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		normalizeWorkerURL(coordinatorURL)+"/fleet/register", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := hc.Do(req)
	if err != nil {
		return 0, err
	}
	var rr RegisterResponse
	if err := decodeJSON(resp, http.StatusOK, &rr); err != nil {
		return 0, err
	}
	iv := time.Duration(rr.IntervalMS) * time.Millisecond
	if iv <= 0 {
		iv = 2 * time.Second
	}
	return iv, nil
}
