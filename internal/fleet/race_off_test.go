//go:build !race

package fleet_test

// raceEnabled reports whether the race detector is compiled in; the golden
// fleet sweeps skip under it (see race_on_test.go).
const raceEnabled = false
