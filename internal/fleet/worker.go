package fleet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"secdir/internal/leakage"
)

// errWorkerBusy marks a shard attempt the worker refused with HTTP 429 (all
// shard slots occupied). Busy refusals requeue with backoff but never count
// against a shard's MaxAttempts budget.
var errWorkerBusy = errors.New("fleet: worker busy")

// worker is the coordinator's view of one secdir-serve instance. All fields
// are guarded by the coordinator's mutex.
type worker struct {
	url    string
	static bool // configured at start-up; never pruned, only marked dead

	lastSeen  time.Time // last successful probe or registration
	inflight  int       // shards currently assigned
	poolWidth int       // reported pool width: caps dispatch concurrency when known

	done       uint64 // shards completed and accepted
	failed     uint64 // shard attempts that errored
	stolenFrom uint64 // shards duplicated away because this worker straggled
	stolenBy   uint64 // duplicated shards this worker picked up
}

// alive reports liveness by heartbeat age: a worker unseen for more than
// HeartbeatMiss intervals is dead and receives no new shards until a probe
// or registration revives it.
func (w *worker) alive(now time.Time, cfg Config) bool {
	return now.Sub(w.lastSeen) <= time.Duration(cfg.HeartbeatMiss)*cfg.HeartbeatInterval
}

// WorkerStatus is one row of GET /fleet/workerz: a worker's liveness and
// shard accounting as JSON.
type WorkerStatus struct {
	// URL is the worker's base URL.
	URL string `json:"url"`
	// Alive reports heartbeat-age liveness.
	Alive bool `json:"alive"`
	// Static distinguishes -fleet-workers entries from dynamic registrants.
	Static bool `json:"static"`
	// LastHeartbeatAgeMS is how long ago the worker was last seen.
	LastHeartbeatAgeMS int64 `json:"last_heartbeat_age_ms"`
	// Inflight counts shards currently assigned to the worker.
	Inflight int `json:"inflight"`
	// PoolWidth is the worker's reported job-pool width (0 = unknown).
	PoolWidth int `json:"pool_width,omitempty"`
	// ShardsDone counts accepted shard completions.
	ShardsDone uint64 `json:"shards_done"`
	// ShardsFailed counts errored shard attempts.
	ShardsFailed uint64 `json:"shards_failed"`
	// ShardsStolenFrom counts shards duplicated away from this straggler.
	ShardsStolenFrom uint64 `json:"shards_stolen_from"`
	// ShardsStolenBy counts duplicated shards this worker picked up.
	ShardsStolenBy uint64 `json:"shards_stolen_by"`
}

// executeShard runs one shard on one worker: POST the request, stream the
// NDJSON response, and validate completeness against the EOF marker. The
// context carries the per-attempt ShardTimeout; cancelling it (steal loss,
// dead-worker reap, sweep teardown) aborts the transfer.
func (c *Coordinator) executeShard(ctx context.Context, w *worker, req ShardRequest) ([]leakage.TrialResult, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(ctx, c.cfg.ShardTimeout)
	defer cancel()
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, w.url+"/fleet/shard", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(hreq)
	if err != nil {
		return nil, fmt.Errorf("worker %s: %w", w.url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		err := fmt.Errorf("worker %s: shard HTTP %d: %s", w.url, resp.StatusCode, strings.TrimSpace(string(msg)))
		if resp.StatusCode == http.StatusTooManyRequests {
			// Every shard slot on the worker is busy (its pool may be shared
			// with local jobs or another coordinator). Not the shard's fault:
			// the scheduler backs off without charging the attempt budget.
			err = fmt.Errorf("%w: %v", errWorkerBusy, err)
		}
		return nil, err
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	out := make([]leakage.TrialResult, 0, req.Count)
	sawEOF := false
	for sc.Scan() {
		var line ShardLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return nil, fmt.Errorf("worker %s: bad shard stream line %q: %w", w.url, sc.Text(), err)
		}
		switch {
		case line.Err != "":
			return nil, fmt.Errorf("worker %s: %s", w.url, line.Err)
		case line.EOF:
			if line.Count != len(out) {
				return nil, fmt.Errorf("worker %s: shard stream inconsistent: eof says %d trials, streamed %d",
					w.url, line.Count, len(out))
			}
			sawEOF = true
		case line.Trial != nil:
			out = append(out, *line.Trial)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("worker %s: shard stream: %w", w.url, err)
	}
	if !sawEOF {
		return nil, fmt.Errorf("worker %s: shard stream truncated after %d/%d trials (no eof marker)",
			w.url, len(out), req.Count)
	}
	if len(out) != req.Count {
		return nil, fmt.Errorf("worker %s: shard returned %d trials, want %d", w.url, len(out), req.Count)
	}
	return out, nil
}

// probe checks one worker's /healthz on the wall clock (bounded by the
// heartbeat interval) and reports whether it is accepting work, plus the
// worker-pool width the health body advertises (0 = unknown) so the
// scheduler can avoid oversubscribing narrow workers.
func (c *Coordinator) probe(w *worker) (ok bool, poolWidth int) {
	timeout := c.cfg.HeartbeatInterval
	if timeout > 2*time.Second {
		timeout = 2 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.url+"/healthz", nil)
	if err != nil {
		return false, 0
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return false, 0
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	// A draining worker answers 503: reachable, but it must not receive new
	// shards; letting its heartbeat age out re-enqueues them elsewhere.
	if resp.StatusCode != http.StatusOK {
		return false, 0
	}
	var hb struct {
		Workers int `json:"workers"`
	}
	_ = json.Unmarshal(body, &hb)
	return true, hb.Workers
}
