package rng

import "testing"

// TestDeterminism: the stream is fully determined by the seed — two
// generators with the same seed produce identical draws, which is what makes
// every simulation in this repo reproducible run-to-run.
func TestDeterminism(t *testing.T) {
	a, b := New(12345), New(12345)
	for i := 0; i < 10000; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("draw %d diverged: %#x vs %#x", i, x, y)
		}
	}
	// Copying forks the stream: the copy replays what the original produces.
	c := a
	want := a.Uint64()
	if got := c.Uint64(); got != want {
		t.Fatalf("copied generator diverged: %#x vs %#x", got, want)
	}
}

// TestSeedIndependence: sequential seeds — the VD's per-bank seeding pattern
// (bank 0, bank 1, ...) — must yield streams that do not collide or
// correlate. splitmix64's finalizer is designed for exactly this; the test
// pins it by checking (a) no value appears in two neighbouring banks'
// prefixes and (b) each per-bank stream is unbiased bit-wise.
func TestSeedIndependence(t *testing.T) {
	const banks, draws = 8, 4096
	seen := make(map[uint64]int, banks*draws)
	for bank := 0; bank < banks; bank++ {
		r := New(int64(bank))
		ones := 0
		for i := 0; i < draws; i++ {
			v := r.Uint64()
			if prev, dup := seen[v]; dup {
				t.Fatalf("value %#x drawn by both bank %d and bank %d", v, prev, bank)
			}
			seen[v] = bank
			ones += popcount(v)
		}
		// Mean bit density over 4096 draws of 64 bits: expect 0.5 with a
		// standard deviation of ~0.001, so 0.49..0.51 is a >9-sigma band.
		density := float64(ones) / (draws * 64)
		if density < 0.49 || density > 0.51 {
			t.Errorf("bank %d: bit density %.4f, want ~0.5", bank, density)
		}
	}
}

func popcount(v uint64) int {
	n := 0
	for ; v != 0; v &= v - 1 {
		n++
	}
	return n
}

// TestIntnRange: Intn stays in [0, n) across the n values the simulator uses
// (way counts, bank counts, relocation picks) and panics on n <= 0.
func TestIntnRange(t *testing.T) {
	r := New(7)
	for _, n := range []int{1, 2, 3, 8, 16, 163} {
		for i := 0; i < 2000; i++ {
			if v := r.Intn(n); v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

// TestFloat64Range: Float64 stays in [0, 1) and is not constant.
func TestFloat64Range(t *testing.T) {
	r := New(99)
	var sum float64
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of range", v)
		}
		sum += v
	}
	if mean := sum / 10000; mean < 0.48 || mean > 0.52 {
		t.Errorf("Float64 mean %.4f, want ~0.5", mean)
	}
}
