// Package rng provides the simulator's replacement-policy random number
// generator: a seeded splitmix64 stream held by value.
//
// The hot paths (cachesim Random replacement, cuckoo displacement picks,
// trace generators) previously drew from math/rand.Rand, which costs an
// interface dispatch through rand.Source per draw plus a heap allocation per
// cache/table for the generator state. Rand here is a single uint64 of state
// embedded directly in its owner, advanced by the splitmix64 finalizer
// (Steele, Lea & Flood, "Fast splittable pseudorandom number generators",
// OOPSLA 2014). The stream is fully determined by the seed, so simulations
// stay reproducible run-to-run, and sequential seeds (bank 0, bank 1, ...)
// yield statistically independent streams — splitmix64 is specifically
// designed to decorrelate consecutive seeds, which is exactly the per-bank
// seeding pattern the VD uses.
package rng

import "math/bits"

// Rand is a splitmix64 generator. The zero value is a valid generator seeded
// with 0; use New to seed it explicitly. Copying a Rand forks the stream.
type Rand struct {
	state uint64
}

// New returns a generator seeded with seed. Distinct seeds — including
// consecutive integers — produce independent streams.
func New(seed int64) Rand {
	return Rand{state: uint64(seed)}
}

// Uint64 advances the stream and returns the next 64 uniformly random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a uniformly random int in [0, n). It panics if n <= 0.
// The fixed-point reduction (Lemire 2019) maps the 64-bit draw onto [0, n)
// with a single multiply; for the way/bank counts used here (n ≤ a few
// hundred) the modulo bias is below 2^-55 and irrelevant to the simulation.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	hi, _ := bits.Mul64(r.Uint64(), uint64(n))
	return int(hi)
}

// Float64 returns a uniformly random float64 in [0, 1) with 53 bits of
// precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}
