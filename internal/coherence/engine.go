// Package coherence implements the multicore cache-coherence engine: private
// L1/L2 caches per core, one directory/LLC slice per core, and a MOESI-style
// protocol driven through the directory.Slice interface. The engine is
// behavioural and sequential: each access is an atomic transaction (no
// transient states), which is the right abstraction level for the paper's
// directory-occupancy and conflict results.
package coherence

import (
	"fmt"

	"secdir/internal/addr"
	"secdir/internal/cachesim"
	"secdir/internal/config"
	"secdir/internal/core"
	"secdir/internal/directory"
)

// l2Line is the per-line private cache state. MOESI is encoded as
// {Excl,Dirty}: M = {true,true}, O = {false,true}, E = {true,false},
// S = {false,false}; Invalid lines are simply absent.
type l2Line struct {
	Dirty bool
	Excl  bool
}

// Level classifies where an access was satisfied.
type Level int

const (
	// LevelL1: hit in the private L1.
	LevelL1 Level = iota
	// LevelL2: hit in the private L2.
	LevelL2
	// LevelEDTD: L2 miss satisfied by an ED or TD entry.
	LevelEDTD
	// LevelVD: L2 miss satisfied by a Victim Directory entry.
	LevelVD
	// LevelMemory: L2 miss that fetched from DRAM.
	LevelMemory
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	case LevelEDTD:
		return "ED+TD"
	case LevelVD:
		return "VD"
	case LevelMemory:
		return "memory"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// AccessResult describes one memory access.
type AccessResult struct {
	Level   Level
	Latency int // round-trip cycles charged to the core
	NoFill  bool
}

// CoreStats aggregates per-core counters.
type CoreStats struct {
	Accesses uint64
	L1Hits   uint64
	L2Hits   uint64
	MissEDTD uint64 // L2 misses satisfied by ED/TD
	MissVD   uint64 // L2 misses satisfied by VD
	MissMem  uint64 // L2 misses that went to memory
	Upgrades uint64 // S->M directory upgrades
	NoFills  uint64
	// ConflictInvalidations counts private-cache lines this core lost to
	// shared-structure conflicts (TD or unfixed-ED) caused by any core —
	// the inclusion victims that directory attacks create.
	ConflictInvalidations uint64
	// SelfConflictInvalidations counts lines lost to this core's own VD
	// conflicts (transition ⑤) — safe under the threat model.
	SelfConflictInvalidations uint64
}

// Stats aggregates engine-wide counters.
type Stats struct {
	Core          []CoreStats
	MemWritebacks uint64
}

// L2Misses returns the total L2 misses of a core.
func (c CoreStats) L2Misses() uint64 { return c.MissEDTD + c.MissVD + c.MissMem }

// Engine is the multicore coherence simulator.
type Engine struct {
	cfg    config.Config
	mapper addr.Mapper
	l1     []*cachesim.Cache[struct{}]
	l2     []*cachesim.Cache[l2Line]
	slices []directory.Slice

	// secSlices/baseSlices alias slices with their concrete types when the
	// configuration uses SecDir or Baseline directories (nil otherwise). The
	// miss path dispatches through these so the two kinds every experiment
	// sweep measures skip the directory.Slice interface call.
	secSlices  []*core.Slice
	baseSlices []*directory.BaselineSlice
	// housekeepers[s] is non-nil iff slice s needs maintenance at transaction
	// boundaries; resolving the type assertion once at construction keeps it
	// off the per-miss path.
	housekeepers []directory.Housekeeper

	stats Stats
	log   *eventLog
	mx    *engineMetrics

	// router, when non-nil, owns the directory slices and executes slice
	// transactions on their home shard (see Sharded). The serial engine
	// leaves it nil and pays one predictable nil-check per miss.
	router sliceRouter

	// winSched, when non-nil, is the conflict-window scheduler AccessBatch
	// dispatches through (see Sharded.SetWindow). Nil on serial engines and
	// on sharded engines without windowing.
	winSched *windowScheduler

	// flushScratch is FlushCore's reusable line buffer, sized to the largest
	// L2 occupancy flushed so far.
	flushScratch []addr.Line
}

// NewEngine builds a machine from the configuration. The directory kind
// selects baseline or SecDir slices.
func NewEngine(cfg config.Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := addr.NewMapper(cfg.Cores, cfg.TDSets)
	e := &Engine{
		cfg:          cfg,
		mapper:       m,
		l1:           make([]*cachesim.Cache[struct{}], cfg.Cores),
		l2:           make([]*cachesim.Cache[l2Line], cfg.Cores),
		slices:       make([]directory.Slice, cfg.Cores),
		secSlices:    make([]*core.Slice, cfg.Cores),
		baseSlices:   make([]*directory.BaselineSlice, cfg.Cores),
		housekeepers: make([]directory.Housekeeper, cfg.Cores),
	}
	e.stats.Core = make([]CoreStats, cfg.Cores)
	for c := 0; c < cfg.Cores; c++ {
		e.l1[c] = cachesim.New[struct{}](cfg.L1Sets, cfg.L1Ways, cachesim.ModIndex(cfg.L1Sets), cachesim.LRU, cfg.Seed+int64(c)*31)
		e.l2[c] = cachesim.New[l2Line](cfg.L2Sets, cfg.L2Ways, cachesim.ModIndex(cfg.L2Sets), cfg.L2Policy, cfg.Seed+int64(c)*37)
	}
	// Identical to closing over m.Set, but expressed as data so directory
	// probes stay on the cachesim shift-and-mask fast path.
	index := cachesim.ShiftIndex(addr.SetShift, cfg.TDSets)
	for s := 0; s < cfg.Cores; s++ {
		sl, err := buildSlice(cfg, index, s)
		if err != nil {
			return nil, err
		}
		e.installSlice(s, sl)
	}
	return e, nil
}

// buildSlice constructs directory slice s for the configuration. Engine.Reset
// rebuilds the rival kinds through the same path NewEngine constructs them,
// so a reset engine and a fresh engine start bit-identical.
func buildSlice(cfg config.Config, index cachesim.Index, s int) (directory.Slice, error) {
	seed := cfg.Seed + int64(s)*101
	switch cfg.Kind {
	case config.Baseline:
		return directory.NewBaseline(directory.BaselineParams{
			TDSets: cfg.TDSets, TDWays: cfg.TDWays,
			EDSets: cfg.EDSets, EDWays: cfg.EDWays,
			Index:        index,
			AppendixAFix: cfg.AppendixAFix,
			Seed:         seed,
		}), nil
	case config.SecDir:
		return core.New(core.Params{
			Cores:  cfg.Cores,
			TDSets: cfg.TDSets, TDWays: cfg.TDWays,
			EDSets: cfg.EDSets, EDWays: cfg.EDWays,
			VDSets: cfg.VDSets, VDWays: cfg.VDWays,
			NumRelocations: cfg.NumRelocations,
			Cuckoo:         cfg.VDCuckoo,
			EmptyBit:       cfg.VDEmptyBit,
			DisableEDTD:    cfg.DisableEDTD,
			SearchBatch:    cfg.VDSearchBatch,
			StashSize:      cfg.VDStash,
			Index:          index,
			AppendixAFix:   cfg.AppendixAFix,
			Seed:           seed,
		}), nil
	case config.RandMapped:
		return directory.NewRandMapped(directory.RandMapParams{
			TDSets: cfg.TDSets, TDWays: cfg.TDWays,
			EDSets: cfg.EDSets, EDWays: cfg.EDWays,
			RekeyEvery: cfg.RekeyEvery,
			Seed:       seed,
		}), nil
	case config.WayPartitioned:
		return directory.NewWayPartitioned(directory.WayPartParams{
			Cores:  cfg.Cores,
			TDSets: cfg.TDSets, TDWays: cfg.TDWays,
			EDSets: cfg.EDSets, EDWays: cfg.EDWays,
			Index: index,
			Seed:  seed,
		})
	case config.SkewedDir:
		return directory.NewSkewed(directory.SkewedParams{
			Sets: cfg.TDSets, Ways: cfg.TDWays + cfg.EDWays,
			Seed: seed,
		}), nil
	case config.DLS:
		return directory.NewDLS(directory.DLSParams{
			Sets: cfg.TDSets, Ways: cfg.TDWays + cfg.EDWays,
			Index: index,
			Seed:  seed,
		}), nil
	case config.TagPartitioned:
		return directory.NewTagPartitioned(directory.TagPartParams{
			Cores: cfg.Cores,
			Sets:  cfg.TDSets, Ways: cfg.TDWays + cfg.EDWays,
			Index: index,
			Seed:  seed,
		})
	case config.Ceaser:
		return directory.NewCeaser(directory.CeaserParams{
			TDSets: cfg.TDSets, TDWays: cfg.TDWays,
			EDSets: cfg.EDSets, EDWays: cfg.EDWays,
			RekeyEvery: cfg.RekeyEvery,
			RemapStep:  cfg.RemapStep,
			Seed:       seed,
		}), nil
	default:
		return nil, fmt.Errorf("coherence: unknown directory kind %v", cfg.Kind)
	}
}

// installSlice wires a slice into position s, resolving the monomorphic
// aliases and the housekeeper assertion once so none of them sit on a hot
// path.
func (e *Engine) installSlice(s int, sl directory.Slice) {
	e.slices[s] = sl
	e.secSlices[s], _ = sl.(*core.Slice)
	e.baseSlices[s], _ = sl.(*directory.BaselineSlice)
	e.housekeepers[s], _ = sl.(directory.Housekeeper)
}

// Reset restores the engine to the state NewEngine(cfg.WithSeed(seed)) would
// produce, reusing the private-cache and directory storage. The SecDir and
// Baseline kinds — the ones every leakage sweep hammers — reset their slices
// in place; the rival kinds rebuild their (much smaller) slice objects but
// still keep the per-core cache arrays. Attached metrics and event logs stay
// attached with their counters untouched; a Sharded engine may be reset
// between transactions (the shard goroutines are idle then, and the channel
// hand-offs of the previous transaction order their memory).
func (e *Engine) Reset(seed int64) error {
	e.cfg = e.cfg.WithSeed(seed)
	for c := 0; c < e.cfg.Cores; c++ {
		e.l1[c].Reset(e.cfg.Seed + int64(c)*31)
		e.l2[c].Reset(e.cfg.Seed + int64(c)*37)
	}
	index := cachesim.ShiftIndex(addr.SetShift, e.cfg.TDSets)
	for s := 0; s < e.cfg.Cores; s++ {
		seed := e.cfg.Seed + int64(s)*101
		if sd := e.secSlices[s]; sd != nil {
			sd.Reset(seed)
			continue
		}
		if b := e.baseSlices[s]; b != nil {
			b.Reset(seed)
			continue
		}
		sl, err := buildSlice(e.cfg, index, s)
		if err != nil {
			return err
		}
		e.installSlice(s, sl)
	}
	for c := range e.stats.Core {
		e.stats.Core[c] = CoreStats{}
	}
	e.stats.MemWritebacks = 0
	return nil
}

// sliceRouter executes slice transactions on behalf of the engine. The
// sharded engine implements it by forwarding each call to the goroutine that
// owns the slice and draining that shard's coherence mailbox on return; the
// returned actions are then applied by the caller at the transaction
// boundary, exactly where the serial engine applies them.
type sliceRouter interface {
	routeMiss(s, c int, line addr.Line, write bool) directory.MissResult
	routeUpgrade(s, c int, line addr.Line) []directory.Action
	routeL2Evict(s, c int, line addr.Line, dirty bool) []directory.Action
	routeHousekeep(s int) []directory.Action
}

// sliceMiss dispatches an L2 miss to its home slice — through the router
// when the slices are sharded, else monomorphically for the SecDir and
// Baseline kinds so the compiler sees a direct call.
func (e *Engine) sliceMiss(s, c int, line addr.Line, write bool) directory.MissResult {
	if e.router != nil {
		return e.router.routeMiss(s, c, line, write)
	}
	return e.sliceMissLocal(s, c, line, write)
}

// sliceMissLocal runs the miss on the calling goroutine. Only the slice
// owner (the engine when serial, the home shard when sharded) may call it.
func (e *Engine) sliceMissLocal(s, c int, line addr.Line, write bool) directory.MissResult {
	if sd := e.secSlices[s]; sd != nil {
		return sd.Miss(c, line, write)
	}
	if b := e.baseSlices[s]; b != nil {
		return b.Miss(c, line, write)
	}
	return e.slices[s].Miss(c, line, write)
}

// sliceUpgrade dispatches a directory upgrade, monomorphically where possible.
func (e *Engine) sliceUpgrade(s, c int, line addr.Line) []directory.Action {
	if e.router != nil {
		return e.router.routeUpgrade(s, c, line)
	}
	return e.sliceUpgradeLocal(s, c, line)
}

// sliceUpgradeLocal runs the upgrade on the calling goroutine (slice owner
// only).
func (e *Engine) sliceUpgradeLocal(s, c int, line addr.Line) []directory.Action {
	if sd := e.secSlices[s]; sd != nil {
		return sd.Upgrade(c, line)
	}
	if b := e.baseSlices[s]; b != nil {
		return b.Upgrade(c, line)
	}
	return e.slices[s].Upgrade(c, line)
}

// sliceL2Evict dispatches an L2 victim notification, monomorphically where
// possible.
func (e *Engine) sliceL2Evict(s, c int, line addr.Line, dirty bool) []directory.Action {
	if e.router != nil {
		return e.router.routeL2Evict(s, c, line, dirty)
	}
	return e.sliceL2EvictLocal(s, c, line, dirty)
}

// sliceL2EvictLocal runs the eviction on the calling goroutine (slice owner
// only).
func (e *Engine) sliceL2EvictLocal(s, c int, line addr.Line, dirty bool) []directory.Action {
	if sd := e.secSlices[s]; sd != nil {
		return sd.L2Evict(c, line, dirty)
	}
	if b := e.baseSlices[s]; b != nil {
		return b.L2Evict(c, line, dirty)
	}
	return e.slices[s].L2Evict(c, line, dirty)
}

// Config returns the engine's configuration.
func (e *Engine) Config() config.Config { return e.cfg }

// Mapper returns the address mapper (slice/set hashing).
func (e *Engine) Mapper() addr.Mapper { return e.mapper }

// Slice returns directory slice s.
func (e *Engine) Slice(s int) directory.Slice { return e.slices[s] }

// Stats returns the engine counters.
func (e *Engine) Stats() *Stats { return &e.stats }

// DirStats returns the sum of all slices' directory counters.
func (e *Engine) DirStats() directory.Stats {
	var agg directory.Stats
	for _, s := range e.slices {
		agg.Add(*s.Stats())
	}
	return agg
}

// dirLatency returns the round trip to the line's home slice from the core.
// With MeshHopRT set, tiles sit on a width-4 mesh (Table 4's 4×2 layout for
// 8 cores) and the cost grows with the Manhattan distance; otherwise the flat
// local/remote split applies.
func (e *Engine) dirLatency(c, slice int) int {
	if hop := e.cfg.Lat.MeshHopRT; hop > 0 {
		return e.cfg.Lat.DirLocalRT + hop*meshHops(c, slice, e.cfg.Cores)
	}
	if c == slice {
		return e.cfg.Lat.DirLocalRT
	}
	return e.cfg.Lat.DirRemoteRT
}

// meshHops returns the Manhattan distance between two tiles on a mesh of
// width min(4, cores).
func meshHops(a, b, cores int) int {
	w := 4
	if cores < w {
		w = cores
	}
	ax, ay := a%w, a/w
	bx, by := b%w, b/w
	dx, dy := ax-bx, ay-by
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// Access performs one memory access by the core and returns where it was
// satisfied plus the latency charged.
func (e *Engine) Access(c int, line addr.Line, write bool) AccessResult {
	st := &e.stats.Core[c]
	st.Accesses++

	// L1 probe. L1 is a subset of L2, so an L1 hit implies an L2 entry that
	// holds the authoritative MOESI state. The miss scans leave fill cursors
	// behind so the fills at the end of the transaction skip their re-scans.
	_, l1slot, l1cur := e.l1[c].AccessCursor(line)
	if l1slot >= 0 {
		st.L1Hits++
		lat := e.cfg.Lat.L1RT
		if write {
			ls, ok := e.l2[c].Probe(line)
			if !ok {
				panic("coherence: L1 line not present in L2 (subset invariant)")
			}
			l, _ := e.writeHit(c, line, ls)
			lat += l
		}
		if e.log != nil {
			e.emit(Event{Kind: OpAccess, Core: c, Line: line, Level: LevelL1, Write: write})
		}
		e.recordAccess(LevelL1, lat)
		return AccessResult{Level: LevelL1, Latency: lat}
	}

	// L2 probe.
	ls, l2slot, l2cur := e.l2[c].AccessCursor(line)
	if l2slot >= 0 {
		st.L2Hits++
		lat := e.cfg.Lat.L2RT
		lost := false
		if write {
			var l int
			l, lost = e.writeHit(c, line, ls)
			lat += l
		}
		if !lost {
			e.l1[c].PutAt(l1cur, line, struct{}{})
		}
		if e.log != nil {
			e.emit(Event{Kind: OpAccess, Core: c, Line: line, Level: LevelL2, Write: write})
		}
		e.recordAccess(LevelL2, lat)
		return AccessResult{Level: LevelL2, Latency: lat}
	}

	// L2 miss: consult the line's home directory slice.
	if mx := e.mx; mx != nil {
		if write {
			mx.msgGetX.Inc()
		} else {
			mx.msgGetS.Inc()
		}
	}
	slice := e.mapper.Slice(line)
	res := e.sliceMiss(slice, c, line, write)
	e.apply(c, res.Actions)

	lat := e.cfg.Lat.L2RT + e.dirLatency(c, slice)
	if res.VDConsulted {
		rounds := int(res.VDBatchRounds)
		if rounds < 1 {
			rounds = 1
		}
		if e.cfg.VDEmptyBit {
			lat += e.cfg.Lat.EBCheck
			if res.VDBanksProbed > 0 {
				lat += e.cfg.Lat.VDAccess * rounds
			}
		} else {
			lat += e.cfg.Lat.VDAccess * rounds
		}
	} else if e.cfg.Kind == config.SecDir {
		// §6 timing-channel mitigation: pad ED/TD-satisfied transactions so
		// the attacker cannot tell from latency whether a victim's entry
		// lives in the shared structures or in a VD.
		lat += e.mitigationPad(res.Source == directory.SourceRemoteL2 || hasInvalidation(res.Actions))
	}
	var level Level
	switch res.Where {
	case directory.WhereED, directory.WhereTD:
		st.MissEDTD++
		level = LevelEDTD
	case directory.WhereVD:
		st.MissVD++
		level = LevelVD
	default:
		st.MissMem++
		level = LevelMemory
	}
	switch res.Source {
	case directory.SourceMemory:
		lat += e.cfg.Lat.DRAMRT
	case directory.SourceRemoteL2:
		lat += e.cfg.Lat.CacheToCore
		// A forwarding exclusive owner downgrades on a read: M→O / E→S under
		// MOESI; under MESI there is no Owned state, so a dirty forwarder
		// writes back to memory and both copies become Shared.
		if !write {
			if fs, ok := e.l2[res.SrcCore].Probe(line); ok {
				fs.Excl = false
				if e.cfg.Protocol == config.MESI && fs.Dirty {
					fs.Dirty = false
					e.stats.MemWritebacks++
					if e.mx != nil {
						e.mx.writebacks.Inc()
					}
				}
			}
		}
	}

	// The core overlaps independent misses (memory-level parallelism): the
	// stall charged per miss is the round trip divided by the MLP factor.
	if mlp := e.cfg.Lat.MLP; mlp > 1 {
		lat /= mlp
	}

	if e.log != nil {
		e.emit(Event{Kind: OpAccess, Core: c, Line: line, Level: level, Write: write})
	}
	e.recordAccess(level, lat)
	if res.NoFill {
		st.NoFills++
		if e.mx != nil {
			e.mx.noFills.Inc()
		}
		e.housekeep(c, slice)
		return AccessResult{Level: level, Latency: lat, NoFill: true}
	}
	// The victim's eviction cascade can conflict-invalidate the very line
	// just filled (likeliest with tiny per-core partitions): only install
	// it in the L1 if it survived, or the L1 would outlive the L2.
	if e.fillL2At(c, l2cur, line, l2Line{Dirty: write, Excl: write || res.Exclusive}) {
		e.l1[c].PutAt(l1cur, line, struct{}{})
	}
	e.housekeep(c, slice)
	return AccessResult{Level: level, Latency: lat}
}

// BatchOp is one access of an AccessBatch call.
type BatchOp struct {
	Line  addr.Line
	Write bool
}

// AccessBatch performs ops in order on core c, writing one AccessResult per
// op into res (which must be at least len(ops) long). It is exactly
// equivalent to calling Access once per op — same state transitions, same
// counters, same latencies — and exists so a driver that already knows a run
// of accesses belongs to one core (a trace replay, a single-core burst) can
// hoist its per-access bookkeeping to batch granularity.
func (e *Engine) AccessBatch(c int, ops []BatchOp, res []AccessResult) {
	_ = res[:len(ops)]
	if ws := e.winSched; ws != nil {
		ws.accessBatch(c, ops, res)
		return
	}
	for i, op := range ops {
		res[i] = e.Access(c, op.Line, op.Write)
	}
}

// housekeep runs deferred slice maintenance (e.g. randomized re-keying) at a
// transaction boundary, where every cached line has a settled directory
// entry. The Housekeeper assertion is resolved once at construction, so the
// common kinds pay one nil check here.
func (e *Engine) housekeep(c, slice int) {
	if hk := e.housekeepers[slice]; hk != nil {
		if e.router != nil {
			e.apply(c, e.router.routeHousekeep(slice))
			return
		}
		e.apply(c, hk.Housekeep())
	}
}

// writeHit upgrades a private copy for writing. ls is the writer's L2 entry,
// already located by the caller's probe. Exclusive copies (E/M) are written
// silently; Shared/Owned copies need a directory upgrade that invalidates the
// other sharers. It returns the extra latency and whether the writer's own
// copy was lost mid-upgrade: an upgrade never invalidates the writer, but
// slice housekeeping (the randomized design's re-keying) can conflict the
// freshly upgraded entry out before the transaction settles. On loss, the
// store itself has already been performed architecturally; the caller must
// simply not re-install the line in the L1.
func (e *Engine) writeHit(c int, line addr.Line, ls *l2Line) (int, bool) {
	if ls.Excl {
		ls.Dirty = true
		return 0, false
	}
	slice := e.mapper.Slice(line)
	lat := e.dirLatency(c, slice)
	if e.cfg.Kind == config.SecDir {
		// An upgrade consults the VDs only when the entry lives there;
		// charge that path, or the §6 mitigation pad on the ED/TD path
		// (an upgrade always invalidates other sharers, so the selective
		// mitigation applies too).
		if _, w, _ := e.secSlices[slice].Find(line); w == directory.WhereVD {
			lat += e.cfg.Lat.EBCheck + e.cfg.Lat.VDAccess
		} else {
			lat += e.mitigationPad(true)
		}
	}
	gen := e.l2[c].Gen()
	acts := e.sliceUpgrade(slice, c, line)
	e.apply(c, acts)
	e.housekeep(c, slice)
	e.stats.Core[c].Upgrades++
	if e.mx != nil {
		e.mx.msgUpgrade.Inc()
	}
	// Housekeeping may have invalidated the writer's copy (and with it the
	// pointer captured above); the probe pointer stays valid as long as
	// nothing in the L2 moved, which the unchanged generation certifies.
	if e.l2[c].Gen() != gen {
		var ok bool
		ls, ok = e.l2[c].Probe(line)
		if !ok {
			return lat, true
		}
	}
	ls.Excl = true
	ls.Dirty = true
	return lat, false
}

// mitigationPad returns the §6 latency padding for an ED/TD-satisfied
// transaction. crossCore reports whether the transaction invalidates or
// queries another core's cache.
func (e *Engine) mitigationPad(crossCore bool) int {
	switch e.cfg.Mitigation {
	case config.MitigationNaive:
		return e.cfg.Lat.EBCheck + e.cfg.Lat.VDAccess
	case config.MitigationSelective:
		if crossCore {
			return e.cfg.Lat.EBCheck + e.cfg.Lat.VDAccess
		}
	}
	return 0
}

// hasInvalidation reports whether any action invalidates a private cache.
func hasInvalidation(acts []directory.Action) bool {
	for _, a := range acts {
		if a.Kind == directory.InvalidateL2 {
			return true
		}
	}
	return false
}

// fillL2At installs a line in the core's L2 at the slot the miss scan's
// cursor selected, handling the victim's directory update (and any cascade it
// triggers). It reports whether the line is still present afterwards: the
// victim's eviction cascade can conflict-invalidate the just-filled line. The
// common no-invalidation case is detected by the L2 generation counter not
// having moved, skipping the re-probe.
func (e *Engine) fillL2At(c int, cur cachesim.Cursor, line addr.Line, state l2Line) bool {
	v, evicted := e.l2[c].PutAt(cur, line, state)
	if !evicted {
		return true
	}
	gen := e.l2[c].Gen()
	// Back-invalidate L1 to preserve the subset property.
	e.l1[c].Remove(v.Line)
	if e.log != nil {
		e.emit(Event{Kind: OpL2Evict, Core: c, Line: v.Line})
	}
	if e.mx != nil {
		e.mx.msgEvict.Inc()
	}
	vslice := e.mapper.Slice(v.Line)
	acts := e.sliceL2Evict(vslice, c, v.Line, v.Data.Dirty)
	e.apply(c, acts)
	if e.l2[c].Gen() == gen {
		return true
	}
	_, ok := e.l2[c].Probe(line)
	return ok
}

// apply executes the side effects of a directory transition. requester is
// the core whose access triggered the transition (used only for accounting).
func (e *Engine) apply(requester int, acts []directory.Action) {
	for _, a := range acts {
		switch a.Kind {
		case directory.InvalidateL2:
			e.l1[a.Core].Remove(a.Line)
			ls, ok := e.l2[a.Core].Remove(a.Line)
			if !ok {
				panic(fmt.Sprintf("coherence: invalidate of uncached line %#x on core %d (%v)", uint64(a.Line), a.Core, a.Reason))
			}
			if e.log != nil {
				e.emit(Event{Kind: OpInvalidate, Core: a.Core, Line: a.Line, Reason: a.Reason})
			}
			if e.mx != nil {
				e.mx.invalidate[a.Reason].Inc()
			}
			switch a.Reason {
			case directory.ReasonCoherence:
				// The requester takes ownership of the data: no write-back.
			case directory.ReasonVDConflict:
				e.stats.Core[a.Core].SelfConflictInvalidations++
				if ls.Dirty {
					e.stats.MemWritebacks++
					if e.mx != nil {
						e.mx.writebacks.Inc()
					}
				}
			default: // TD or unfixed-ED conflicts: inclusion victims.
				e.stats.Core[a.Core].ConflictInvalidations++
				if ls.Dirty {
					e.stats.MemWritebacks++
					if e.mx != nil {
						e.mx.writebacks.Inc()
					}
				}
			}
		case directory.WritebackMem:
			e.stats.MemWritebacks++
			if e.mx != nil {
				e.mx.writebacks.Inc()
			}
			if e.log != nil {
				e.emit(Event{Kind: OpWriteback, Core: requester, Line: a.Line})
			}
		}
	}
}

// L2Contains reports whether the core's L2 holds the line — used by the
// attack toolkit to detect inclusion victims directly.
func (e *Engine) L2Contains(c int, line addr.Line) bool {
	_, ok := e.l2[c].Probe(line)
	return ok
}

// FlushCore invalidates every line of the core's private caches, updating
// the directory as if each line were evicted (used to reset attacker state
// between attack rounds).
func (e *Engine) FlushCore(c int) {
	// Pre-size the scratch buffer from the L2 occupancy so collecting the
	// lines never reallocates mid-Range.
	if n := e.l2[c].Len(); cap(e.flushScratch) < n {
		e.flushScratch = make([]addr.Line, 0, n)
	}
	lines := e.flushScratch[:0]
	e.l2[c].Range(func(l addr.Line, _ *l2Line) bool {
		lines = append(lines, l)
		return true
	})
	e.flushScratch = lines
	for _, l := range lines {
		// Evicting one line can conflict-invalidate a later one from this
		// same core; skip lines that are already gone.
		st, ok := e.l2[c].Remove(l)
		if !ok {
			continue
		}
		e.l1[c].Remove(l)
		if e.mx != nil {
			e.mx.msgEvict.Inc()
		}
		acts := e.sliceL2Evict(e.mapper.Slice(l), c, l, st.Dirty)
		e.apply(c, acts)
	}
}
