package coherence

import (
	"math/rand"
	"reflect"
	"testing"

	"secdir/internal/addr"
	"secdir/internal/config"
)

// burst is a run of same-core ops, the unit AccessBatch consumes.
type burst struct {
	core int
	ops  []BatchOp
}

// TestAccessBatchBitIdentical is the regression test for the batched hot
// path: AccessBatch must be exactly equivalent to calling Access once per
// op. One seeded workload — generated as per-core bursts, the shape the
// batching exists for — is replayed through two engines of the same design:
// one per-call, one batched. Every AccessResult, the final per-core and
// directory counters, the structural invariants and the observable memory
// image (a core-0 read sweep over every touched line) must agree
// bit-for-bit.
func TestAccessBatchBitIdentical(t *testing.T) {
	for _, kind := range []config.DirectoryKind{config.Baseline, config.SecDir} {
		t.Run(kind.String(), func(t *testing.T) {
			cfg := smallConfig(kind)
			// Bursty stream: pick a core, run 1..16 ops on it, repeat.
			rng := rand.New(rand.NewSource(404))
			var bursts []burst
			total := 0
			for total < 50000 {
				n := 1 + rng.Intn(16)
				b := burst{core: rng.Intn(cfg.Cores), ops: make([]BatchOp, n)}
				for i := range b.ops {
					b.ops[i] = BatchOp{Line: addr.Line(rng.Intn(1 << 12)), Write: rng.Intn(4) == 0}
				}
				bursts = append(bursts, b)
				total += n
			}

			perCall := newEngine(t, cfg)
			batched := newEngine(t, cfg)
			res := make([]AccessResult, 16)
			for bi, b := range bursts {
				batched.AccessBatch(b.core, b.ops, res)
				for i, op := range b.ops {
					want := perCall.Access(b.core, op.Line, op.Write)
					if res[i] != want {
						t.Fatalf("%v burst %d op %d (core %d line %#x write %v): batched %+v, per-call %+v",
							kind, bi, i, b.core, uint64(op.Line), op.Write, res[i], want)
					}
				}
			}
			if err := perCall.CheckInvariants(); err != nil {
				t.Fatalf("per-call invariants: %v", err)
			}
			if err := batched.CheckInvariants(); err != nil {
				t.Fatalf("batched invariants: %v", err)
			}
			if a, b := perCall.Stats(), batched.Stats(); !reflect.DeepEqual(a, b) {
				t.Fatalf("stats diverged:\nper-call %+v\nbatched  %+v", a, b)
			}
			if a, b := perCall.DirStats(), batched.DirStats(); a != b {
				t.Fatalf("directory stats diverged:\nper-call %+v\nbatched  %+v", a, b)
			}
			lines := touchedLines(bursts)
			if a, b := memoryImage(t, perCall, lines), memoryImage(t, batched, lines); !reflect.DeepEqual(a, b) {
				t.Fatal("memory images diverged between per-call and batched replay")
			}
		})
	}
}

// touchedLines returns the distinct lines a burst stream accessed, in line
// order.
func touchedLines(bursts []burst) []addr.Line {
	touched := map[addr.Line]bool{}
	for _, b := range bursts {
		for _, op := range b.ops {
			touched[op.Line] = true
		}
	}
	out := make([]addr.Line, 0, len(touched))
	for l := addr.Line(0); l < 1<<12; l++ {
		if touched[l] {
			out = append(out, l)
		}
	}
	return out
}

// memoryImage reads every line from core 0 and returns line -> result, the
// design's observable end state. (Both engines replayed identical streams,
// so equal sweeps plus equal stats pin bit-identical behaviour; data
// versioning itself is covered by TestDifferentialMemoryImage.)
func memoryImage(t *testing.T, e *Engine, lines []addr.Line) map[addr.Line]AccessResult {
	t.Helper()
	img := make(map[addr.Line]AccessResult, len(lines))
	for _, l := range lines {
		img[l] = e.Access(0, l, false)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatalf("invariants violated after image sweep: %v", err)
	}
	return img
}
