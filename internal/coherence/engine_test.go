package coherence

import (
	"math/rand"
	"testing"

	"secdir/internal/addr"
	"secdir/internal/config"
	"secdir/internal/directory"
)

func newEngine(t *testing.T, cfg config.Config) *Engine {
	t.Helper()
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	return e
}

// smallConfig returns a scaled-down machine so conflict paths are exercised
// quickly: tiny L2s and directories with the same structural relationships as
// the full Skylake-X configuration.
func smallConfig(kind config.DirectoryKind) config.Config {
	cfg := config.SkylakeX(4)
	cfg.L1Sets, cfg.L1Ways = 4, 2
	cfg.L2Sets, cfg.L2Ways = 16, 4
	cfg.TDSets, cfg.TDWays = 32, 3
	cfg.EDSets, cfg.EDWays = 32, 3
	cfg.Kind = kind
	switch kind {
	case config.SecDir:
		cfg.AppendixAFix = true // SecDir always incorporates the Appendix-A fix
		cfg.EDWays = 2
		cfg.VDSets, cfg.VDWays = 8, 2
		cfg.NumRelocations = 4
		cfg.VDCuckoo = true
		cfg.VDEmptyBit = true
	case config.WayPartitioned:
		// Per-core partitioning needs at least one way per core.
		cfg.TDWays, cfg.EDWays = 4, 4
		cfg.AppendixAFix = true
	case config.RandMapped, config.Ceaser:
		cfg.AppendixAFix = true
		cfg.RekeyEvery = 400 // exercise the remap paths in short tests
	case config.SkewedDir, config.DLS, config.TagPartitioned:
		cfg.AppendixAFix = true
	}
	return cfg
}

func TestSingleCoreReadWrite(t *testing.T) {
	for _, kind := range []config.DirectoryKind{config.Baseline, config.SecDir} {
		t.Run(kind.String(), func(t *testing.T) {
			e := newEngine(t, smallConfig(kind))
			l := addr.Line(0x1234)

			r := e.Access(0, l, false)
			if r.Level != LevelMemory {
				t.Fatalf("first read level = %v, want memory", r.Level)
			}
			if m, w, ok := e.Slice(e.Mapper().Slice(l)).Find(l); !ok || w != directory.WhereED || !m.Sharers.Has(0) {
				t.Fatalf("after first read: entry=%v where=%v ok=%v", m, w, ok)
			}
			if r = e.Access(0, l, false); r.Level != LevelL1 {
				t.Fatalf("second read level = %v, want L1", r.Level)
			}
			// A write to the Exclusive copy must be silent (no upgrade).
			if r = e.Access(0, l, true); r.Level != LevelL1 {
				t.Fatalf("write level = %v, want L1", r.Level)
			}
			if got := e.Stats().Core[0].Upgrades; got != 0 {
				t.Fatalf("silent E->M write performed %d upgrades", got)
			}
			if err := e.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestCrossCoreSharingAndInvalidation(t *testing.T) {
	for _, kind := range []config.DirectoryKind{config.Baseline, config.SecDir} {
		t.Run(kind.String(), func(t *testing.T) {
			e := newEngine(t, smallConfig(kind))
			l := addr.Line(0xBEEF)

			e.Access(0, l, false) // core 0 fetches (E)
			r := e.Access(1, l, false)
			if r.Level != LevelEDTD {
				t.Fatalf("core 1 read level = %v, want ED+TD", r.Level)
			}
			m, _, _ := e.Slice(e.Mapper().Slice(l)).Find(l)
			if m.Sharers.Count() != 2 {
				t.Fatalf("sharers = %d, want 2", m.Sharers.Count())
			}

			// Core 1 writes: core 0 must lose its copy.
			e.Access(1, l, true)
			if e.L2Contains(0, l) {
				t.Fatal("core 0 still caches the line after core 1's write")
			}
			m, _, _ = e.Slice(e.Mapper().Slice(l)).Find(l)
			if !m.Sharers.Has(1) || m.Sharers.Count() != 1 {
				t.Fatalf("sharers after write = %b, want only core 1", m.Sharers)
			}
			if err := e.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestRandomTrafficInvariants drives random multicore traffic through both
// designs and checks the full coherence invariants periodically. This is the
// main protocol fuzz test: every Table 2 transition fires under this load.
func TestRandomTrafficInvariants(t *testing.T) {
	for _, kind := range []config.DirectoryKind{config.Baseline, config.SecDir} {
		for _, fix := range []bool{true, false} {
			name := kind.String()
			if !fix {
				name += "-unfixed"
			}
			t.Run(name, func(t *testing.T) {
				cfg := smallConfig(kind)
				cfg.AppendixAFix = fix
				e := newEngine(t, cfg)
				rng := rand.New(rand.NewSource(42))
				// A footprint much larger than L2+directory so that every
				// conflict path triggers, with a hot subset for sharing.
				hot := make([]addr.Line, 64)
				for i := range hot {
					hot[i] = addr.Line(rng.Intn(1 << 14))
				}
				for i := 0; i < 60000; i++ {
					c := rng.Intn(cfg.Cores)
					var l addr.Line
					if rng.Intn(4) == 0 {
						l = hot[rng.Intn(len(hot))]
					} else {
						l = addr.Line(rng.Intn(1 << 14))
					}
					e.Access(c, l, rng.Intn(5) == 0)
					if i%5000 == 4999 {
						if err := e.CheckInvariants(); err != nil {
							t.Fatalf("after %d accesses: %v", i+1, err)
						}
					}
				}
				if err := e.CheckInvariants(); err != nil {
					t.Fatal(err)
				}
				ds := e.DirStats()
				if ds.MemFetches == 0 || ds.EDToTD == 0 {
					t.Fatalf("traffic did not exercise migrations: %+v", ds)
				}
				if kind == config.SecDir && ds.TDToVD == 0 {
					t.Fatal("SecDir traffic never exercised transition ③ (TD→VD)")
				}
			})
		}
	}
}

// TestSecDirNoCrossCoreInclusionVictims is the core security property: under
// arbitrary traffic, SecDir never invalidates a private line because of a
// shared-structure (TD/ED) conflict.
func TestSecDirNoCrossCoreInclusionVictims(t *testing.T) {
	cfg := smallConfig(config.SecDir)
	e := newEngine(t, cfg)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 80000; i++ {
		e.Access(rng.Intn(cfg.Cores), addr.Line(rng.Intn(1<<15)), rng.Intn(6) == 0)
	}
	for c, cs := range e.Stats().Core {
		if cs.ConflictInvalidations != 0 {
			t.Fatalf("core %d suffered %d shared-structure inclusion victims on SecDir", c, cs.ConflictInvalidations)
		}
	}
	if e.DirStats().InclusionVictims != 0 {
		t.Fatal("SecDir directory reported inclusion victims")
	}
}

// TestBaselineCreatesInclusionVictims documents the vulnerability SecDir
// fixes: baseline TD conflicts invalidate live private copies.
func TestBaselineCreatesInclusionVictims(t *testing.T) {
	cfg := smallConfig(config.Baseline)
	e := newEngine(t, cfg)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 80000; i++ {
		e.Access(rng.Intn(cfg.Cores), addr.Line(rng.Intn(1<<15)), rng.Intn(6) == 0)
	}
	var total uint64
	for _, cs := range e.Stats().Core {
		total += cs.ConflictInvalidations
	}
	if total == 0 {
		t.Fatal("baseline produced no inclusion victims under thrashing traffic")
	}
}

func TestFlushCore(t *testing.T) {
	cfg := smallConfig(config.SecDir)
	e := newEngine(t, cfg)
	for i := 0; i < 32; i++ {
		e.Access(2, addr.Line(i*64+1), i%3 == 0)
	}
	e.FlushCore(2)
	for i := 0; i < 32; i++ {
		if e.L2Contains(2, addr.Line(i*64+1)) {
			t.Fatalf("line %d survived FlushCore", i)
		}
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
