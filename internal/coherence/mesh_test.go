package coherence

import (
	"testing"

	"secdir/internal/config"
)

// TestMeshHopsTable pins the full Manhattan-distance matrix of the Table 4
// mesh model for both supported layouts: 8 cores on a 4×2 mesh and 4 cores on
// a 1×4 row. Any change to the tile placement (row-major, width min(4,cores))
// shows up as a diff against these matrices.
func TestMeshHopsTable(t *testing.T) {
	cases := []struct {
		name  string
		cores int
		// hops[a][b] is the expected Manhattan distance from tile a to tile b.
		hops [][]int
	}{
		{
			// 4×2 mesh:  0 1 2 3
			//            4 5 6 7
			name:  "8-core-4x2",
			cores: 8,
			hops: [][]int{
				{0, 1, 2, 3, 1, 2, 3, 4},
				{1, 0, 1, 2, 2, 1, 2, 3},
				{2, 1, 0, 1, 3, 2, 1, 2},
				{3, 2, 1, 0, 4, 3, 2, 1},
				{1, 2, 3, 4, 0, 1, 2, 3},
				{2, 1, 2, 3, 1, 0, 1, 2},
				{3, 2, 1, 2, 2, 1, 0, 1},
				{4, 3, 2, 1, 3, 2, 1, 0},
			},
		},
		{
			// 1×4 row: 0 1 2 3 — hops collapse to |a-b|.
			name:  "4-core-1x4",
			cores: 4,
			hops: [][]int{
				{0, 1, 2, 3},
				{1, 0, 1, 2},
				{2, 1, 0, 1},
				{3, 2, 1, 0},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for a := 0; a < tc.cores; a++ {
				for b := 0; b < tc.cores; b++ {
					if got := meshHops(a, b, tc.cores); got != tc.hops[a][b] {
						t.Errorf("meshHops(%d,%d,%d) = %d, want %d", a, b, tc.cores, got, tc.hops[a][b])
					}
				}
			}
		})
	}
}

// TestDirLatencyTable pins dirLatency under both latency models: with
// MeshHopRT set it is DirLocalRT + MeshHopRT per hop (Table 4), and with it
// unset the flat local/remote split applies.
func TestDirLatencyTable(t *testing.T) {
	for _, cores := range []int{4, 8} {
		cfg := config.SkylakeX(cores)
		cfg.Lat.DirLocalRT = 30
		cfg.Lat.DirRemoteRT = 50
		cfg.Lat.MeshHopRT = 10
		mesh := newEngine(t, cfg)

		flatCfg := cfg
		flatCfg.Lat.MeshHopRT = 0
		flat := newEngine(t, flatCfg)

		for c := 0; c < cores; c++ {
			for s := 0; s < cores; s++ {
				if got, want := mesh.dirLatency(c, s), 30+10*meshHops(c, s, cores); got != want {
					t.Errorf("cores=%d mesh dirLatency(%d,%d) = %d, want %d", cores, c, s, got, want)
				}
				want := 50
				if c == s {
					want = 30
				}
				if got := flat.dirLatency(c, s); got != want {
					t.Errorf("cores=%d flat dirLatency(%d,%d) = %d, want %d", cores, c, s, got, want)
				}
			}
		}
	}
}
