package coherence

import (
	"fmt"

	"secdir/internal/core"
	"secdir/internal/directory"
	"secdir/internal/metrics"
)

// engineMetrics holds the engine's pre-registered metric handles. A nil
// *engineMetrics (no registry attached) keeps the hot path at a single
// branch per access; every handle is itself nil-safe.
type engineMetrics struct {
	reg *metrics.Registry

	// Per-service-level access counts and latency histograms, indexed by
	// Level (directory hit/miss latencies included).
	access  [int(LevelMemory) + 1]*metrics.Counter
	latency [int(LevelMemory) + 1]*metrics.Histogram

	// Per-message-class counts: GetS/GetX on a private miss, upgrades, and
	// L2 victim write-backs into the directory.
	msgGetS    *metrics.Counter
	msgGetX    *metrics.Counter
	msgUpgrade *metrics.Counter
	msgEvict   *metrics.Counter

	// Invalidations by directory.Reason, memory write-backs, suppressed
	// fills.
	invalidate [int(directory.ReasonVDConflict) + 1]*metrics.Counter
	writebacks *metrics.Counter
	noFills    *metrics.Counter
}

// AttachMetrics registers the engine's instruments in the registry and
// attaches the directory slices' own instruments (SecDir slices add the VD
// relocation-depth histogram and Empty-Bit counters). Occupancy is exported
// as gauge functions evaluated at snapshot time, so the hot path never pays
// for it. Attaching a nil registry detaches metrics.
func (e *Engine) AttachMetrics(r *metrics.Registry) {
	if r == nil {
		e.mx = nil
		return
	}
	mx := &engineMetrics{reg: r}
	for lv := LevelL1; lv <= LevelMemory; lv++ {
		mx.access[lv] = r.Counter(fmt.Sprintf("engine/access/%v", lv))
		mx.latency[lv] = r.Histogram(fmt.Sprintf("engine/latency/%v", lv))
	}
	mx.msgGetS = r.Counter("engine/msg/gets")
	mx.msgGetX = r.Counter("engine/msg/getx")
	mx.msgUpgrade = r.Counter("engine/msg/upgrade")
	mx.msgEvict = r.Counter("engine/msg/evict")
	for reason := directory.ReasonCoherence; reason <= directory.ReasonVDConflict; reason++ {
		mx.invalidate[reason] = r.Counter(fmt.Sprintf("engine/invalidate/%v", reason))
	}
	mx.writebacks = r.Counter("engine/mem_writebacks")
	mx.noFills = r.Counter("engine/no_fills")
	e.mx = mx

	// Directory occupancy: TD/ED/VD entry counts and fill fractions.
	r.GaugeFunc("dir/ed_entries", func() float64 { return float64(e.OccupancySnapshot().EDEntries) })
	r.GaugeFunc("dir/ed_fill", func() float64 { return e.OccupancySnapshot().EDFill() })
	r.GaugeFunc("dir/td_entries", func() float64 { return float64(e.OccupancySnapshot().TDEntries) })
	r.GaugeFunc("dir/td_fill", func() float64 { return e.OccupancySnapshot().TDFill() })
	r.GaugeFunc("dir/vd_entries", func() float64 { return float64(e.OccupancySnapshot().VDEntries) })
	r.GaugeFunc("dir/vd_fill", func() float64 { return e.OccupancySnapshot().VDFill() })

	for _, sl := range e.slices {
		if s, ok := sl.(*core.Slice); ok {
			s.AttachMetrics(r)
		}
	}
}

// Metrics returns the attached registry, or nil when metrics are disabled.
// Layers above and beside the engine (the attack toolkit, the simulator)
// register their own instruments through it.
func (e *Engine) Metrics() *metrics.Registry {
	if e.mx == nil {
		return nil
	}
	return e.mx.reg
}

// recordAccess notes one completed access at its service level.
func (e *Engine) recordAccess(level Level, lat int) {
	if mx := e.mx; mx != nil {
		mx.access[level].Inc()
		mx.latency[level].Observe(uint64(lat))
	}
}
