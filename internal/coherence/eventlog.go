package coherence

import (
	"fmt"

	"secdir/internal/addr"
	"secdir/internal/directory"
)

// The event log records the engine's observable operations in a bounded ring
// buffer: accesses with their service level, directory-driven invalidations
// with their reason, write-backs, and L2 evictions. It is the debugging
// companion to the statistics counters — the counters say *how often*, the
// log says *in what order* — and is disabled (zero-cost) by default.

// OpKind classifies a logged event.
type OpKind int

const (
	// OpAccess is a core's memory access (Level and Write are set).
	OpAccess OpKind = iota
	// OpInvalidate is a directory-driven invalidation of a private copy
	// (Reason is set).
	OpInvalidate
	// OpWriteback is a write-back of dirty data to main memory.
	OpWriteback
	// OpL2Evict is a capacity/conflict eviction from a private L2.
	OpL2Evict
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case OpAccess:
		return "access"
	case OpInvalidate:
		return "invalidate"
	case OpWriteback:
		return "writeback"
	case OpL2Evict:
		return "l2-evict"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Event is one logged engine operation.
type Event struct {
	// Seq is a monotonically increasing sequence number.
	Seq uint64
	// Kind classifies the event.
	Kind OpKind
	// Core is the acting core (the invalidated core for OpInvalidate).
	Core int
	// Line is the affected cache line.
	Line addr.Line
	// Level is the service level (OpAccess only).
	Level Level
	// Write marks store accesses (OpAccess only).
	Write bool
	// Reason explains directory-driven events (OpInvalidate only).
	Reason directory.Reason
}

// String implements fmt.Stringer.
func (ev Event) String() string {
	switch ev.Kind {
	case OpAccess:
		rw := "R"
		if ev.Write {
			rw = "W"
		}
		return fmt.Sprintf("#%d core%d %s %s %#x -> %v", ev.Seq, ev.Core, ev.Kind, rw, uint64(ev.Line), ev.Level)
	case OpInvalidate:
		return fmt.Sprintf("#%d core%d %s %#x (%v)", ev.Seq, ev.Core, ev.Kind, uint64(ev.Line), ev.Reason)
	default:
		return fmt.Sprintf("#%d core%d %s %#x", ev.Seq, ev.Core, ev.Kind, uint64(ev.Line))
	}
}

// eventLog is a fixed-capacity ring buffer.
type eventLog struct {
	buf  []Event
	next uint64 // total events ever logged
}

// EnableEventLog starts recording the most recent capacity events.
// Re-enabling resets the log.
func (e *Engine) EnableEventLog(capacity int) {
	if capacity <= 0 {
		e.log = nil
		return
	}
	e.log = &eventLog{buf: make([]Event, 0, capacity)}
}

// Events returns the retained events, oldest first.
func (e *Engine) Events() []Event {
	if e.log == nil {
		return nil
	}
	l := e.log
	if uint64(cap(l.buf)) >= l.next {
		out := make([]Event, len(l.buf))
		copy(out, l.buf)
		return out
	}
	// Ring has wrapped: rotate so the oldest retained event comes first.
	idx := int(l.next % uint64(cap(l.buf)))
	out := make([]Event, 0, cap(l.buf))
	out = append(out, l.buf[idx:]...)
	out = append(out, l.buf[:idx]...)
	return out
}

// EventCount returns the total number of events logged (including those the
// ring has discarded).
func (e *Engine) EventCount() uint64 {
	if e.log == nil {
		return 0
	}
	return e.log.next
}

// emit appends an event when logging is enabled.
func (e *Engine) emit(ev Event) {
	l := e.log
	if l == nil {
		return
	}
	ev.Seq = l.next
	l.next++
	if len(l.buf) < cap(l.buf) {
		l.buf = append(l.buf, ev)
		return
	}
	l.buf[int(ev.Seq%uint64(cap(l.buf)))] = ev
}
