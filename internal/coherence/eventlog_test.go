package coherence

import (
	"strings"
	"testing"

	"secdir/internal/addr"
	"secdir/internal/config"
)

func TestEventLogRecordsAccessSequence(t *testing.T) {
	e := newEngine(t, smallConfig(config.SecDir))
	e.EnableEventLog(64)
	l := addr.Line(0x42)
	e.Access(0, l, false)
	e.Access(0, l, false)
	e.Access(1, l, true)

	evs := e.Events()
	var accesses []Event
	for _, ev := range evs {
		if ev.Kind == OpAccess {
			accesses = append(accesses, ev)
		}
	}
	if len(accesses) != 3 {
		t.Fatalf("logged %d accesses, want 3", len(accesses))
	}
	if accesses[0].Level != LevelMemory || accesses[1].Level != LevelL1 {
		t.Fatalf("levels = %v, %v", accesses[0].Level, accesses[1].Level)
	}
	if !accesses[2].Write {
		t.Fatal("write flag lost")
	}
	// The write must have logged an invalidation of core 0's copy.
	foundInv := false
	for _, ev := range evs {
		if ev.Kind == OpInvalidate && ev.Core == 0 && ev.Line == l {
			foundInv = true
		}
	}
	if !foundInv {
		t.Fatal("coherence invalidation not logged")
	}
	// Sequence numbers are strictly increasing.
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatal("sequence numbers not increasing")
		}
	}
}

func TestEventLogRingWraps(t *testing.T) {
	e := newEngine(t, smallConfig(config.Baseline))
	e.EnableEventLog(8)
	for i := 0; i < 50; i++ {
		e.Access(0, addr.Line(i), false)
	}
	evs := e.Events()
	if len(evs) != 8 {
		t.Fatalf("retained %d events, want 8", len(evs))
	}
	if e.EventCount() < 50 {
		t.Fatalf("EventCount = %d, want >= 50", e.EventCount())
	}
	// Oldest-first order preserved across the wrap.
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("retained events not consecutive: %d after %d", evs[i].Seq, evs[i-1].Seq)
		}
	}
}

func TestEventLogDisabled(t *testing.T) {
	e := newEngine(t, smallConfig(config.Baseline))
	e.Access(0, 1, false)
	if e.Events() != nil || e.EventCount() != 0 {
		t.Fatal("disabled log recorded events")
	}
	e.EnableEventLog(4)
	e.Access(0, 2, false)
	e.EnableEventLog(0) // turn off again
	if e.Events() != nil {
		t.Fatal("log not cleared")
	}
}

func TestEventString(t *testing.T) {
	ev := Event{Seq: 7, Kind: OpAccess, Core: 2, Line: 0x40, Level: LevelVD, Write: true}
	s := ev.String()
	for _, want := range []string{"#7", "core2", "W", "VD"} {
		if !strings.Contains(s, want) {
			t.Errorf("Event.String() = %q missing %q", s, want)
		}
	}
	inv := Event{Kind: OpInvalidate, Core: 1, Line: 0x80}
	if !strings.Contains(inv.String(), "invalidate") {
		t.Errorf("invalidate String() = %q", inv.String())
	}
}
