package coherence

import (
	"testing"

	"secdir/internal/addr"
	"secdir/internal/config"
)

// TestFlushCorePreallocated is the regression test for FlushCore's line
// collection: it must pre-size its scratch buffer from the L2 occupancy
// instead of growing it with repeated appends, so a steady-state
// flush-and-refill cycle (the attack toolkit's per-round reset) performs no
// heap allocations.
func TestFlushCorePreallocated(t *testing.T) {
	cfg := config.SecDirConfig(2)
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Fill core 0's L2 well past its capacity so Range sees a full cache,
	// and warm every directory structure on the way.
	fill := func() {
		for i := 0; i < 4*cfg.L2Sets*cfg.L2Ways; i++ {
			e.Access(0, addr.Line(1<<20+i), i%4 == 0)
		}
	}
	fill()
	// First flush grows the scratch buffer to the full L2 occupancy.
	e.FlushCore(0)
	fill()
	avg := testing.AllocsPerRun(5, func() {
		e.FlushCore(0)
		fill()
	})
	if avg != 0 {
		t.Fatalf("steady-state FlushCore+refill allocates %.3f allocs/run, want 0", avg)
	}
	// The flush must still actually flush.
	e.FlushCore(0)
	if n := e.l2[0].Len(); n != 0 {
		t.Fatalf("L2 holds %d lines after FlushCore", n)
	}
}
