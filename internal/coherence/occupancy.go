package coherence

import (
	"secdir/internal/core"
	"secdir/internal/directory"
)

// Occupancy reports how full the directory structures are, machine-wide —
// the observability hook behind §7's sizing arguments (the ED holds about as
// many entries as L2 lines; the VDs absorb conflict refugees).
type Occupancy struct {
	// EDEntries / EDCapacity aggregate the Extended Directories.
	EDEntries, EDCapacity int
	// TDEntries / TDCapacity aggregate the Traditional Directories.
	TDEntries, TDCapacity int
	// VDEntries / VDCapacity aggregate all Victim Directory banks
	// (zero on non-SecDir designs).
	VDEntries, VDCapacity int
	// VDPerCore is the number of VD entries each core currently owns
	// machine-wide (SecDir only).
	VDPerCore []int
}

// fill returns used/capacity as a fraction, tolerating zero capacity.
func fill(used, capacity int) float64 {
	if capacity == 0 {
		return 0
	}
	return float64(used) / float64(capacity)
}

// EDFill returns the ED occupancy fraction.
func (o Occupancy) EDFill() float64 { return fill(o.EDEntries, o.EDCapacity) }

// TDFill returns the TD occupancy fraction.
func (o Occupancy) TDFill() float64 { return fill(o.TDEntries, o.TDCapacity) }

// VDFill returns the VD occupancy fraction.
func (o Occupancy) VDFill() float64 { return fill(o.VDEntries, o.VDCapacity) }

// OccupancySnapshot walks the directory slices and returns current fill
// levels. Designs without introspectable structures (way-partitioned,
// randomized) report only what they expose.
func (e *Engine) OccupancySnapshot() Occupancy {
	o := Occupancy{VDPerCore: make([]int, e.cfg.Cores)}
	for _, sl := range e.slices {
		switch s := sl.(type) {
		case *directory.BaselineSlice:
			o.addTDED(s.TDED())
		case *directory.RandMapSlice:
			o.addTDED(s.TDED())
		case *core.Slice:
			o.addTDED(s.TDED())
			for c := 0; c < e.cfg.Cores; c++ {
				b := s.VDBank(c)
				o.VDEntries += b.Len()
				o.VDCapacity += b.Capacity()
				o.VDPerCore[c] += b.Len()
			}
		}
	}
	return o
}

// addTDED accumulates one slice's shared structures.
func (o *Occupancy) addTDED(d *directory.TDED) {
	o.EDEntries += d.ED.Len()
	o.EDCapacity += d.ED.Sets() * d.ED.Ways()
	o.TDEntries += d.TD.Len()
	o.TDCapacity += d.TD.Sets() * d.TD.Ways()
}
