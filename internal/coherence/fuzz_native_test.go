package coherence

import (
	"testing"

	"secdir/internal/addr"
	"secdir/internal/config"
)

// FuzzEngineOps is a native fuzz target driving whole-machine access
// sequences through the SecDir engine. Byte 2k encodes the op — bits 0-1 the
// core, bit 2 the write flag, bits 3-7 the high line bits — and byte 2k+1 the
// low line bits, spanning the same 13-bit line space as the oracle test.
// Every hit is validated against the protocol oracle and the structural
// invariants must hold at the end. Run with
// `go test -fuzz FuzzEngineOps ./internal/coherence` for open-ended
// exploration; under plain `go test` the seed corpus and the checked-in files
// under testdata/fuzz act as regression tests.
func FuzzEngineOps(f *testing.F) {
	// Read-share a line everywhere, then write it: global invalidation.
	f.Add([]byte{0, 42, 1, 42, 2, 42, 3, 42, 4, 42, 1, 42})
	// Conflict pressure: one core sweeps lines that collide in the tiny
	// directory sets, forcing TD→VD retreats and VD self-conflicts.
	var sweep []byte
	for i := byte(0); i < 40; i++ {
		sweep = append(sweep, i<<3, 17)
	}
	f.Add(sweep)
	f.Fuzz(func(t *testing.T, ops []byte) {
		cfg := smallConfig(config.SecDir)
		e, err := NewEngine(cfg)
		if err != nil {
			t.Fatalf("NewEngine: %v", err)
		}
		o := newOracle()
		for i := 0; i+1 < len(ops); i += 2 {
			b := ops[i]
			c := int(b & 3)
			w := b&4 != 0
			l := addr.Line(uint64(b>>3)<<8 | uint64(ops[i+1]))
			res := e.Access(c, l, w)
			if (res.Level == LevelL1 || res.Level == LevelL2) && !o.mayHit(c, l) {
				t.Fatalf("op %d: core %d hit line %#x it cannot legally hold", i, c, uint64(l))
			}
			o.access(c, l, w)
		}
		if err := e.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	})
}
