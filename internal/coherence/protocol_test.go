package coherence

import (
	"testing"

	"secdir/internal/addr"
	"secdir/internal/config"
	"secdir/internal/directory"
)

// TestMOESIOwnedForwarding: a dirty line read by another core is forwarded
// without a memory write-back (M→O), and the dirty data eventually reaches
// memory when the owner's copy is displaced by a conflict.
func TestMOESIOwnedForwarding(t *testing.T) {
	cfg := smallConfig(config.Baseline)
	e := newEngine(t, cfg)
	l := addr.Line(0x333)
	e.Access(0, l, true)  // core 0: M
	e.Access(1, l, false) // core 1 reads: 0 downgrades to O
	if got := e.Stats().MemWritebacks; got != 0 {
		t.Fatalf("read sharing caused %d memory writebacks under MOESI", got)
	}
	// Core 0 evicts the dirty line: it goes to the LLC dirty; evicting the
	// TD entry later must write it back. Here we just verify the dirty bit
	// reached the directory.
	st, ok := e.l2[0].Probe(l)
	if !ok || !st.Dirty || st.Excl {
		t.Fatalf("owner state after downgrade: %+v (ok=%v), want Owned (dirty, not exclusive)", st, ok)
	}
	rd, ok2 := e.l2[1].Probe(l)
	if !ok2 || rd.Dirty || rd.Excl {
		t.Fatalf("reader state: %+v, want Shared", rd)
	}
}

// TestDirtyWritebackOnConflictInvalidation: when a TD conflict invalidates a
// dirty private copy (baseline inclusion victim), the data must be written
// back to memory.
func TestDirtyWritebackOnConflictInvalidation(t *testing.T) {
	cfg := config.SkylakeX(8)
	e := newEngine(t, cfg)
	m := e.Mapper()
	target := addr.Line(0x700)
	e.Access(0, target, true) // dirty in core 0

	wbBefore := e.Stats().MemWritebacks
	// Conflict the entry out with single-sharer lines from other cores.
	filler := 0
	for cand := addr.Line(0); filler < 400 && e.L2Contains(0, target); cand++ {
		if cand == target || m.Slice(cand) != m.Slice(target) || m.Set(cand) != m.Set(target) {
			continue
		}
		filler++
		e.Access(1+filler%7, cand, false)
	}
	if e.L2Contains(0, target) {
		t.Fatal("could not conflict the dirty line out")
	}
	if e.Stats().MemWritebacks == wbBefore {
		t.Fatal("dirty inclusion victim vanished without a memory writeback")
	}
}

// TestLatencyModel checks the Table 4 constants end to end for the access
// paths a single core exercises.
func TestLatencyModel(t *testing.T) {
	cfg := config.SkylakeX(8)
	cfg.Lat.MLP = 1 // raw round trips
	e := newEngine(t, cfg)
	l := addr.Line(0x808)
	slice := e.Mapper().Slice(l)
	dir := cfg.Lat.DirLocalRT
	if slice != 0 {
		dir = cfg.Lat.DirRemoteRT
	}

	r := e.Access(0, l, false)
	if want := cfg.Lat.L2RT + dir + cfg.Lat.DRAMRT; r.Latency != want {
		t.Errorf("memory fetch latency %d, want %d", r.Latency, want)
	}
	if r = e.Access(0, l, false); r.Latency != cfg.Lat.L1RT {
		t.Errorf("L1 hit latency %d, want %d", r.Latency, cfg.Lat.L1RT)
	}
	// Evict from L1 only (fill L1 set with conflicting lines far away).
	for i := 1; i <= cfg.L1Ways; i++ {
		e.Access(0, l+addr.Line(i*cfg.L1Sets*64), false)
	}
	if r = e.Access(0, l, false); r.Level != LevelL2 || r.Latency != cfg.Lat.L2RT {
		t.Errorf("L2 hit: level %v latency %d, want L2/%d", r.Level, r.Latency, cfg.Lat.L2RT)
	}
}

// TestRemoteVsLocalSliceLatency: accesses to the core's own slice are
// cheaper than to remote slices.
func TestRemoteVsLocalSliceLatency(t *testing.T) {
	cfg := config.SkylakeX(8)
	cfg.Lat.MLP = 1
	e := newEngine(t, cfg)
	var local, remote int
	for l := addr.Line(0); local == 0 || remote == 0; l += 9 {
		s := e.Mapper().Slice(l)
		lat := e.Access(0, l, false).Latency
		if s == 0 && local == 0 {
			local = lat
		}
		if s != 0 && remote == 0 {
			remote = lat
		}
	}
	if remote-local != cfg.Lat.DirRemoteRT-cfg.Lat.DirLocalRT {
		t.Errorf("remote-local delta = %d, want %d", remote-local, cfg.Lat.DirRemoteRT-cfg.Lat.DirLocalRT)
	}
}

// TestCrossCoreReadChain walks a line through three cores and checks the
// sharer vector at every step.
func TestCrossCoreReadChain(t *testing.T) {
	for _, kind := range []config.DirectoryKind{config.Baseline, config.SecDir} {
		cfg := smallConfig(kind)
		e := newEngine(t, cfg)
		l := addr.Line(0x99)
		for c := 0; c < 4; c++ {
			e.Access(c, l, false)
			m, _, ok := e.Slice(e.Mapper().Slice(l)).Find(l)
			if !ok || m.Sharers.Count() != c+1 {
				t.Fatalf("%v: after core %d read, sharers = %d", kind, c, m.Sharers.Count())
			}
		}
		// A write from core 3 collapses the sharer set.
		e.Access(3, l, true)
		m, _, _ := e.Slice(e.Mapper().Slice(l)).Find(l)
		if m.Sharers.Count() != 1 || !m.Sharers.Has(3) {
			t.Fatalf("%v: post-write sharers %b", kind, m.Sharers)
		}
		for c := 0; c < 3; c++ {
			if e.L2Contains(c, l) {
				t.Fatalf("%v: core %d kept its copy across a write", kind, c)
			}
		}
		if err := e.CheckInvariants(); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
	}
}

// TestWriteMissTakesDirtyOwnership: writing a line that another core holds
// dirty transfers ownership without a memory write-back (the writer's copy
// becomes the dirty one).
func TestWriteMissTakesDirtyOwnership(t *testing.T) {
	cfg := smallConfig(config.SecDir)
	e := newEngine(t, cfg)
	l := addr.Line(0x77)
	e.Access(0, l, true) // core 0 dirty
	wb := e.Stats().MemWritebacks
	e.Access(1, l, true) // core 1 takes over
	if e.Stats().MemWritebacks != wb {
		t.Fatal("ownership transfer caused a memory writeback")
	}
	st, ok := e.l2[1].Probe(l)
	if !ok || !st.Dirty || !st.Excl {
		t.Fatalf("new owner state %+v, want Modified", st)
	}
	if e.L2Contains(0, l) {
		t.Fatal("old owner kept its copy")
	}
}

// TestVDHitLevelReported: an L2 miss served out of a Victim Directory is
// classified LevelVD with the EB+VD latency charged.
func TestVDHitLevelReported(t *testing.T) {
	cfg := config.SecDirConfig(8)
	cfg.Lat.MLP = 1
	line := addr.Line(0x41200)
	e := parkEntryInVD(t, cfg, 0, line)
	r := e.Access(7, line, false)
	if r.Level != LevelVD {
		t.Fatalf("level %v, want VD", r.Level)
	}
	slice := e.Mapper().Slice(line)
	base := cfg.Lat.L2RT + cfg.Lat.DirRemoteRT
	if slice == 7 {
		base = cfg.Lat.L2RT + cfg.Lat.DirLocalRT
	}
	want := base + cfg.Lat.EBCheck + cfg.Lat.VDAccess + cfg.Lat.CacheToCore
	if r.Latency != want {
		t.Fatalf("VD hit latency %d, want %d", r.Latency, want)
	}
}

// TestActionReasonsReachStats: conflict-invalidation accounting reaches the
// right per-core counters for each reason.
func TestActionReasonsReachStats(t *testing.T) {
	cfg := smallConfig(config.SecDir)
	cfg.VDSets, cfg.VDWays = 2, 1 // tiny VDs: force ⑤
	cfg.NumRelocations = 2
	e := newEngine(t, cfg)
	w := newTrafficMix(3)
	for i := 0; i < 60000; i++ {
		c, l, wr := w()
		e.Access(c, l, wr)
	}
	var self uint64
	for _, cs := range e.Stats().Core {
		self += cs.SelfConflictInvalidations
		if cs.ConflictInvalidations != 0 {
			t.Fatalf("SecDir charged cross-core conflict invalidations: %+v", cs)
		}
	}
	if self == 0 {
		t.Fatal("tiny VDs produced no self-conflict invalidations")
	}
	if got := e.DirStats().VDDrop; got < self {
		t.Fatalf("VDDrop %d below self invalidations %d", got, self)
	}
}

// TestNoFillServedUncached: when a requester's VD insertion fails, the access
// is served but the line is not cached and no stale entry remains.
func TestNoFillServedUncached(t *testing.T) {
	cfg := smallConfig(config.SecDir)
	cfg.DisableEDTD = true
	cfg.VDSets, cfg.VDWays = 1, 1
	cfg.NumRelocations = 1
	e := newEngine(t, cfg)
	// Two lines homed on the same slice, so they share the 1-entry VD bank.
	first := addr.Line(0x10)
	second := first + 1
	for e.Mapper().Slice(second) != e.Mapper().Slice(first) {
		second++
	}
	e.Access(0, first, false)
	r := e.Access(0, second, false)
	if !r.NoFill {
		t.Fatalf("expected NoFill, got %+v", r)
	}
	if e.L2Contains(0, second) {
		t.Fatal("NoFill access left the line cached")
	}
	if _, _, ok := e.Slice(e.Mapper().Slice(second)).Find(second); ok {
		t.Fatal("NoFill access left a directory entry")
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if e.Stats().Core[0].NoFills == 0 {
		t.Fatal("NoFill not counted")
	}
}

// TestInvariantCheckerDetectsCorruption: the checker must actually catch a
// broken state (guards against a vacuous checker).
func TestInvariantCheckerDetectsCorruption(t *testing.T) {
	cfg := smallConfig(config.SecDir)
	e := newEngine(t, cfg)
	e.Access(0, 0x123, false)
	// Corrupt: remove the line from L2 behind the directory's back.
	e.l1[0].Remove(0x123)
	e.l2[0].Remove(0x123)
	if err := e.CheckInvariants(); err == nil {
		t.Fatal("invariant checker missed a directory entry for an uncached line")
	}
}

// TestDirStatsAggregation: DirStats sums per-slice counters.
func TestDirStatsAggregation(t *testing.T) {
	cfg := smallConfig(config.Baseline)
	e := newEngine(t, cfg)
	for i := 0; i < 2000; i++ {
		e.Access(i%4, addr.Line(i*7), i%5 == 0)
	}
	agg := e.DirStats()
	var manual directory.Stats
	for s := 0; s < cfg.Cores; s++ {
		manual.Add(*e.Slice(s).Stats())
	}
	if agg != manual {
		t.Fatalf("DirStats mismatch:\n%+v\n%+v", agg, manual)
	}
}
