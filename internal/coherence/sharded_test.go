package coherence

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"
	"testing/quick"

	"secdir/internal/addr"
	"secdir/internal/cachesim"
	"secdir/internal/config"
)

// shardedDesigns are the nine directory designs the sharded engine must
// reproduce bit-identically: every kind the engine supports, plus the
// unfixed Skylake-X baseline whose inclusion-victim behaviour differs.
func shardedDesigns() []struct {
	name string
	cfg  config.Config
} {
	unfixed := smallConfig(config.Baseline)
	unfixed.AppendixAFix = false
	fixed := smallConfig(config.Baseline)
	fixed.AppendixAFix = true
	return []struct {
		name string
		cfg  config.Config
	}{
		{"skylake-unfixed", unfixed},
		{"skylake-fixed", fixed},
		{"secdir", smallConfig(config.SecDir)},
		{"way-partitioned", smallConfig(config.WayPartitioned)},
		{"rand-mapped", smallConfig(config.RandMapped)},
		{"skewed", smallConfig(config.SkewedDir)},
		{"dls", smallConfig(config.DLS)},
		{"tag-partitioned", smallConfig(config.TagPartitioned)},
		{"ceaser", smallConfig(config.Ceaser)},
	}
}

// shardedBursts generates the seeded bursty stream (with interspersed core
// flushes) every sharded-oracle replay consumes.
func shardedBursts(cores int) []burst {
	rng := rand.New(rand.NewSource(7071))
	var bursts []burst
	total := 0
	for total < 30000 {
		n := 1 + rng.Intn(16)
		b := burst{core: rng.Intn(cores), ops: make([]BatchOp, n)}
		for i := range b.ops {
			b.ops[i] = BatchOp{Line: addr.Line(rng.Intn(1 << 12)), Write: rng.Intn(4) == 0}
		}
		bursts = append(bursts, b)
		total += n
	}
	return bursts
}

// snapshotStats deep-copies the engine's counters so later sweeps don't
// mutate the captured value through the shared slice.
func snapshotStats(e *Engine) Stats {
	st := e.stats
	st.Core = append([]CoreStats(nil), e.stats.Core...)
	return st
}

// replayBursts drives the stream through an engine via AccessBatch,
// flushing a rotating core every 64 bursts so the eviction-notification
// path crosses shards too, and returns every AccessResult.
func replayBursts(e *Engine, bursts []burst) []AccessResult {
	var out []AccessResult
	res := make([]AccessResult, 16)
	for bi, b := range bursts {
		e.AccessBatch(b.core, b.ops, res)
		out = append(out, res[:len(b.ops)]...)
		if bi%64 == 63 {
			e.FlushCore(bi / 64 % e.cfg.Cores)
		}
	}
	return out
}

// TestShardedBitIdentical is the sharded-vs-serial oracle: for all nine
// directory designs and shard counts 1, 2 and 4, one seeded bursty workload
// replayed through a Sharded engine must be indistinguishable from the
// serial Engine — every AccessResult, the per-core and directory counters,
// the structural invariants and the observable memory image all agree
// bit-for-bit. Run under -race this also proves the slice-ownership
// discipline: each slice is only ever touched by its home shard goroutine.
func TestShardedBitIdentical(t *testing.T) {
	for _, d := range shardedDesigns() {
		t.Run(d.name, func(t *testing.T) {
			bursts := shardedBursts(d.cfg.Cores)
			serial := newEngine(t, d.cfg)
			want := replayBursts(serial, bursts)
			if err := serial.CheckInvariants(); err != nil {
				t.Fatalf("serial invariants: %v", err)
			}
			wantStats := snapshotStats(serial)
			wantDir := serial.DirStats()
			lines := touchedLines(bursts)
			wantImg := memoryImage(t, serial, lines)

			for _, shards := range []int{1, 2, 4} {
				sh, err := NewSharded(d.cfg, shards)
				if err != nil {
					t.Fatalf("NewSharded(%d): %v", shards, err)
				}
				got := replayBursts(sh.Engine, bursts)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("shards=%d op %d: sharded %+v, serial %+v", shards, i, got[i], want[i])
					}
				}
				if err := sh.CheckInvariants(); err != nil {
					t.Fatalf("shards=%d invariants: %v", shards, err)
				}
				if got := snapshotStats(sh.Engine); !reflect.DeepEqual(got, wantStats) {
					t.Fatalf("shards=%d stats diverged:\nserial  %+v\nsharded %+v", shards, wantStats, got)
				}
				if got := sh.DirStats(); got != wantDir {
					t.Fatalf("shards=%d directory stats diverged:\nserial  %+v\nsharded %+v", shards, wantDir, got)
				}
				if img := memoryImage(t, sh.Engine, lines); !reflect.DeepEqual(img, wantImg) {
					t.Fatalf("shards=%d: memory image diverged from serial", shards)
				}
				sh.Close()
			}
		})
	}
}

// TestShardedGOMAXPROCS is the scheduler-independence stress test: the same
// short workload replayed on a 4-shard SecDir engine under GOMAXPROCS 1, 2
// and 8 must produce the serial engine's exact verdict — results, counters
// and memory image. Determinism must come from the mailbox barriers, never
// from the scheduler happening to serialize the shards.
func TestShardedGOMAXPROCS(t *testing.T) {
	cfg := smallConfig(config.SecDir)
	bursts := shardedBursts(cfg.Cores)
	serial := newEngine(t, cfg)
	want := replayBursts(serial, bursts)
	wantStats := snapshotStats(serial)
	lines := touchedLines(bursts)
	wantImg := memoryImage(t, serial, lines)

	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, procs := range []int{1, 2, 8} {
		runtime.GOMAXPROCS(procs)
		sh, err := NewSharded(cfg, 4)
		if err != nil {
			t.Fatalf("NewSharded: %v", err)
		}
		got := replayBursts(sh.Engine, bursts)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("GOMAXPROCS=%d op %d: sharded %+v, serial %+v", procs, i, got[i], want[i])
			}
		}
		if got := snapshotStats(sh.Engine); !reflect.DeepEqual(got, wantStats) {
			t.Fatalf("GOMAXPROCS=%d: stats diverged from serial", procs)
		}
		if img := memoryImage(t, sh.Engine, lines); !reflect.DeepEqual(img, wantImg) {
			t.Fatalf("GOMAXPROCS=%d: memory image diverged from serial", procs)
		}
		sh.Close()
	}
}

// TestShardedAfterClose: Close reverts the engine to serial dispatch, so
// final-state reads and even further accesses keep working.
func TestShardedAfterClose(t *testing.T) {
	cfg := smallConfig(config.SecDir)
	sh, err := NewSharded(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	sh.Access(0, 42, true)
	sh.Close()
	sh.Close() // idempotent
	res := sh.Access(0, 42, false)
	if res.Level != LevelL1 {
		t.Fatalf("post-Close access level = %v, want L1", res.Level)
	}
	if err := sh.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestSlicePartitionProperty pins the address-partition function the
// sharding rests on: every line maps to exactly one home slice and exactly
// one owning shard, the mapping is a pure function of the line (stable
// across mapper and engine instances), shard ownership partitions the slices
// evenly, and the directory set index the engine hands the slices — the
// cachesim shift-and-mask fast path — agrees with the mapper's Set for every
// line.
func TestSlicePartitionProperty(t *testing.T) {
	cfg := smallConfig(config.SecDir)
	m := addr.NewMapper(cfg.Cores, cfg.TDSets)
	m2 := addr.NewMapper(cfg.Cores, cfg.TDSets)
	index := cachesim.ShiftIndex(addr.SetShift, cfg.TDSets)

	sharded := map[int]*Sharded{}
	for _, n := range []int{1, 2, 4} {
		sh, err := NewSharded(cfg, n)
		if err != nil {
			t.Fatal(err)
		}
		defer sh.Close()
		sharded[n] = sh
		// Ownership partitions the slices: every slice has exactly one owner
		// and the shard loads differ by at most one slice.
		count := make([]int, n)
		for s := 0; s < cfg.Cores; s++ {
			own := sh.ShardOf(s)
			if own < 0 || own >= n {
				t.Fatalf("shards=%d: slice %d owned by out-of-range shard %d", n, s, own)
			}
			count[own]++
		}
		for i, c := range count {
			if max, min := (cfg.Cores+n-1)/n, cfg.Cores/n; c > max || c < min {
				t.Fatalf("shards=%d: shard %d owns %d slices, want %d..%d", n, i, c, min, max)
			}
		}
	}

	prop := func(raw uint64) bool {
		l := addr.Line(raw & (1<<34 - 1))
		s := m.Slice(l)
		if s < 0 || s >= cfg.Cores {
			t.Errorf("line %#x: slice %d out of range", uint64(l), s)
			return false
		}
		// Stable across instances: same line, same slice and set.
		if m2.Slice(l) != s || m2.Set(l) != m.Set(l) {
			t.Errorf("line %#x: mapping not stable across mapper instances", uint64(l))
			return false
		}
		// The engine's fast-path set index agrees with the mapper.
		if index.Of(l) != m.Set(l) {
			t.Errorf("line %#x: ShiftIndex set %d != mapper set %d", uint64(l), index.Of(l), m.Set(l))
			return false
		}
		// Exactly one owning shard per line, at every shard count, and it is
		// the home slice's owner.
		for n, sh := range sharded {
			if sh.ShardOf(s) != s%n {
				t.Errorf("line %#x: shards=%d owner %d, want %d", uint64(l), n, sh.ShardOf(s), s%n)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}
