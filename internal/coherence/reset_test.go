package coherence

import (
	"reflect"
	"testing"

	"secdir/internal/config"
)

// TestResetBitIdentical pins Engine.Reset to the NewEngine oracle for every
// directory design: an engine that ran a full workload, was Reset with a new
// seed and replayed a second workload must be indistinguishable from a fresh
// engine built with that seed — every AccessResult, the counters, the
// invariants and the memory image. The leakage lab's per-worker engine pool
// rests on this exactness (worker-count invariance would otherwise break).
func TestResetBitIdentical(t *testing.T) {
	for _, d := range shardedDesigns() {
		t.Run(d.name, func(t *testing.T) {
			bursts := shardedBursts(d.cfg.Cores)
			freshCfg := d.cfg.WithSeed(d.cfg.Seed + 555)
			fresh := newEngine(t, freshCfg)
			want := replayBursts(fresh, bursts)
			wantStats := snapshotStats(fresh)
			wantDir := fresh.DirStats()
			lines := touchedLines(bursts)
			wantImg := memoryImage(t, fresh, lines)

			reused := newEngine(t, d.cfg)
			replayBursts(reused, bursts) // dirty every structure first
			if err := reused.Reset(freshCfg.Seed); err != nil {
				t.Fatalf("Reset: %v", err)
			}
			got := replayBursts(reused, bursts)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("op %d: reset %+v, fresh %+v", i, got[i], want[i])
				}
			}
			if err := reused.CheckInvariants(); err != nil {
				t.Fatalf("invariants after reset replay: %v", err)
			}
			if gotStats := snapshotStats(reused); !reflect.DeepEqual(gotStats, wantStats) {
				t.Fatalf("stats diverged:\nfresh %+v\nreset %+v", wantStats, gotStats)
			}
			if gotDir := reused.DirStats(); gotDir != wantDir {
				t.Fatalf("directory stats diverged:\nfresh %+v\nreset %+v", wantDir, gotDir)
			}
			if img := memoryImage(t, reused, lines); !reflect.DeepEqual(img, wantImg) {
				t.Fatal("memory image diverged from fresh engine")
			}
		})
	}
}

// TestResetSharded: Reset composes with the sharded (and windowed) engine —
// resetting between replays reproduces the fresh serial verdict while the
// shard goroutines stay up.
func TestResetSharded(t *testing.T) {
	cfg := smallConfig(config.SecDir)
	bursts := shardedBursts(cfg.Cores)
	freshCfg := cfg.WithSeed(cfg.Seed + 555)
	fresh := newEngine(t, freshCfg)
	want := replayBursts(fresh, bursts)
	wantStats := snapshotStats(fresh)

	sh, err := NewSharded(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	sh.SetWindow(8)
	replayBursts(sh.Engine, bursts)
	if err := sh.Reset(freshCfg.Seed); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	got := replayBursts(sh.Engine, bursts)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("op %d: reset sharded %+v, fresh serial %+v", i, got[i], want[i])
		}
	}
	if gotStats := snapshotStats(sh.Engine); !reflect.DeepEqual(gotStats, wantStats) {
		t.Fatalf("stats diverged:\nfresh %+v\nreset %+v", wantStats, gotStats)
	}
}
