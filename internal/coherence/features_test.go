package coherence

import (
	"testing"

	"secdir/internal/addr"
	"secdir/internal/config"
	"secdir/internal/directory"
)

// parkEntryInVD drives a line held by the victim core into its Victim
// Directory by filling the shared ED/TD set with conflicting single-sharer
// lines from other cores. It returns the engine once the entry is VD-resident.
func parkEntryInVD(t *testing.T, cfg config.Config, victim int, line addr.Line) *Engine {
	t.Helper()
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.Access(victim, line, false)
	m := e.Mapper()
	slice, set := m.Slice(line), m.Set(line)
	filler := 0
	for cand := addr.Line(0); filler < 200; cand++ {
		if cand == line || m.Slice(cand) != slice || m.Set(cand) != set {
			continue
		}
		filler++
		e.Access(1+filler%(cfg.Cores-1), cand, false)
		if _, w, _ := e.Slice(slice).Find(line); w == directory.WhereVD {
			if !e.L2Contains(victim, line) {
				t.Fatal("victim lost its line while parking")
			}
			return e
		}
	}
	t.Fatal("could not park the victim's entry in its VD")
	return nil
}

// remoteReadLatency measures the latency core 1 sees reading a line that
// core 0 holds (forwarded through the directory).
func remoteReadLatency(e *Engine, line addr.Line) int {
	return e.Access(1, line, false).Latency
}

// TestTimingMitigation verifies §6: without mitigation, a coherence
// transaction whose entry sits in a VD is slower than one whose entry sits in
// the ED/TD; with mitigation the two are indistinguishable.
func TestTimingMitigation(t *testing.T) {
	line := addr.Line(0x41200)

	measure := func(mit config.TimingMitigation) (edLat, vdLat int) {
		cfg := config.SecDirConfig(8)
		cfg.Mitigation = mit
		// ED/TD-resident entry: fresh machine, core 0 fetches, core 1 reads.
		e, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		e.Access(0, line, false)
		edLat = remoteReadLatency(e, line)

		// VD-resident entry: park, then read from another core.
		e2 := parkEntryInVD(t, cfg, 0, line)
		vdLat = remoteReadLatency(e2, line)
		return edLat, vdLat
	}

	edOff, vdOff := measure(config.MitigationOff)
	if vdOff <= edOff {
		t.Fatalf("unmitigated: VD-path latency %d not above ED-path %d (no channel to mitigate?)", vdOff, edOff)
	}
	for _, mit := range []config.TimingMitigation{config.MitigationNaive, config.MitigationSelective} {
		ed, vd := measure(mit)
		if ed != vd {
			t.Errorf("%v: ED-path %d != VD-path %d — the timing channel is open", mit, ed, vd)
		}
	}
}

// TestSelectiveMitigationSparesLocalMisses checks that the selective variant
// does not slow transactions that involve no other core (plain memory
// fetches), while the naive variant slows those too.
func TestSelectiveMitigationSparesLocalMisses(t *testing.T) {
	latency := func(mit config.TimingMitigation) int {
		cfg := config.SecDirConfig(8)
		cfg.Mitigation = mit
		e, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// A second fetch of an LLC-resident, sharer-free line is an
		// ED/TD-satisfied transaction with no cross-core involvement.
		l := addr.Line(0x9100)
		e.Access(0, l, false)
		e.FlushCore(0) // line now only in the LLC (TD entry)
		return e.Access(0, l, false).Latency
	}
	off := latency(config.MitigationOff)
	sel := latency(config.MitigationSelective)
	naive := latency(config.MitigationNaive)
	if sel != off {
		t.Errorf("selective mitigation slowed a local transaction: %d vs %d", sel, off)
	}
	if naive <= off {
		t.Errorf("naive mitigation did not slow a local transaction: %d vs %d", naive, off)
	}
}

// TestMESIWritebackOnSharedDirty checks the protocol switch: under MESI a
// remote read of a Modified line writes back to memory; under MOESI the owner
// keeps the dirty data (Owned state) and no write-back happens.
func TestMESIWritebackOnSharedDirty(t *testing.T) {
	run := func(p config.Protocol) uint64 {
		cfg := config.SecDirConfig(8)
		cfg.Protocol = p
		e, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		l := addr.Line(0x5150)
		e.Access(0, l, true)  // core 0: Modified
		e.Access(1, l, false) // core 1 reads: M→O (MOESI) or WB + S,S (MESI)
		return e.Stats().MemWritebacks
	}
	if wb := run(config.MOESI); wb != 0 {
		t.Errorf("MOESI wrote back %d times on a read of a dirty line", wb)
	}
	if wb := run(config.MESI); wb != 1 {
		t.Errorf("MESI wrote back %d times, want 1", wb)
	}
}

// TestMESIInvariants runs random traffic under MESI.
func TestMESIInvariants(t *testing.T) {
	cfg := smallConfig(config.SecDir)
	cfg.Protocol = config.MESI
	e := newEngine(t, cfg)
	w := newTrafficMix(7)
	for i := 0; i < 40000; i++ {
		c, l, wr := w()
		e.Access(c, l, wr)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestVDSearchBatching checks §5.1: a batched design reports multiple search
// rounds, reads stop early once a match is found, and the protocol outcome is
// unchanged.
func TestVDSearchBatching(t *testing.T) {
	line := addr.Line(0x41200)
	cfg := config.SecDirConfig(8)
	cfg.VDSearchBatch = 2
	e := parkEntryInVD(t, cfg, 0, line)
	res := e.Access(7, line, false)
	if res.Level != LevelVD {
		t.Fatalf("batched read level %v, want VD", res.Level)
	}
	// Compare with an unbatched machine: same outcome, lower or equal
	// bank-probe count for the batched read (early out).
	e2 := parkEntryInVD(t, cfg, 0, line)
	ds := e2.DirStats()
	before := ds.VDLookups
	e2.Access(7, line, false)
	probes := e2.DirStats().VDLookups - before
	if probes > 8 {
		t.Fatalf("batched read probed %d banks", probes)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestVDStashReducesSelfConflicts checks the cuckoo-stash extension under
// worst-case pressure: fewer transition-⑤ drops with a stash.
func TestVDStashReducesSelfConflicts(t *testing.T) {
	run := func(stash int) uint64 {
		cfg := smallConfig(config.SecDir)
		cfg.DisableEDTD = true
		cfg.VDStash = stash
		e := newEngine(t, cfg)
		w := newTrafficMix(11)
		for i := 0; i < 40000; i++ {
			c, l, wr := w()
			e.Access(c, l, wr)
		}
		return e.DirStats().VDDrop
	}
	without, with := run(0), run(4)
	if without == 0 {
		t.Fatal("pressure too low: no VD conflicts without a stash")
	}
	if with >= without {
		t.Errorf("stash did not reduce VD drops: %d vs %d", with, without)
	}
	// The stash machine must still satisfy the invariants.
	cfg := smallConfig(config.SecDir)
	cfg.VDStash = 4
	e := newEngine(t, cfg)
	w := newTrafficMix(13)
	for i := 0; i < 40000; i++ {
		c, l, wr := w()
		e.Access(c, l, wr)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// newTrafficMix returns a deterministic pseudo-random traffic source.
func newTrafficMix(seed uint64) func() (core int, line addr.Line, write bool) {
	state := seed
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	return func() (int, addr.Line, bool) {
		v := next()
		return int(v % 4), addr.Line(next() % (1 << 14)), next()%6 == 0
	}
}

// TestMeshLatencyModel checks the distance-based directory latency: local
// access costs DirLocalRT, and each Manhattan hop on the 4x2 mesh adds
// MeshHopRT round-trip cycles.
func TestMeshLatencyModel(t *testing.T) {
	cfg := config.SkylakeX(8)
	cfg.Lat.MLP = 1
	cfg.Lat.MeshHopRT = 10
	e := newEngine(t, cfg)
	memLat := cfg.Lat.L2RT + cfg.Lat.DRAMRT
	// Find, for core 0, lines homed at slice 0 (0 hops), slice 1 (1 hop)
	// and slice 7 (4 hops: 3 across + 1 down), and check the cold-miss
	// latency of each.
	want := map[int]int{0: 0, 1: 1, 7: 4}
	seen := map[int]bool{}
	for l := addr.Line(0); len(seen) < len(want); l += 7 {
		s := e.Mapper().Slice(l)
		hops, ok := want[s]
		if !ok || seen[s] {
			continue
		}
		seen[s] = true
		got := e.Access(0, l, false).Latency
		if exp := memLat + cfg.Lat.DirLocalRT + 10*hops; got != exp {
			t.Errorf("slice %d (%d hops): latency %d, want %d", s, hops, got, exp)
		}
	}
}

// TestMeshHopsSymmetry: the hop metric is symmetric and zero on the
// diagonal.
func TestMeshHopsSymmetry(t *testing.T) {
	for a := 0; a < 8; a++ {
		if meshHops(a, a, 8) != 0 {
			t.Errorf("meshHops(%d,%d) != 0", a, a)
		}
		for b := 0; b < 8; b++ {
			if meshHops(a, b, 8) != meshHops(b, a, 8) {
				t.Errorf("meshHops asymmetric for %d,%d", a, b)
			}
		}
	}
	// Corners of the 4x2 mesh are 4 hops apart.
	if got := meshHops(0, 7, 8); got != 4 {
		t.Errorf("meshHops(0,7) = %d, want 4", got)
	}
}

// TestWayPartitionedEngine runs random traffic on the way-partitioned design
// and checks invariants plus its construction limit.
func TestWayPartitionedEngine(t *testing.T) {
	cfg := config.WayPartitionedConfig(8)
	e := newEngine(t, cfg)
	w := newTrafficMix(21)
	for i := 0; i < 40000; i++ {
		c, l, wr := w()
		e.Access(c&3, l, wr) // traffic mix emits 0..3; machine has 8 cores
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if _, err := NewEngine(config.WayPartitionedConfig(16)); err == nil {
		t.Fatal("way-partitioned engine built at 16 cores (11 TD ways)")
	}
}

// TestRandMappedEngineLongRun is the regression test for a mid-upgrade loss:
// re-keying during an upgrade's housekeeping may invalidate the writer's own
// just-upgraded line; the engine must not re-install it in the L1 (doing so
// broke the L1⊆L2 invariant and tripped a panic on the next write).
func TestRandMappedEngineLongRun(t *testing.T) {
	cfg := config.RandMappedConfig(8, 1_500) // aggressive re-keying
	cfg.L2Sets, cfg.L2Ways = 64, 4           // small caches keep it fast
	cfg.L1Sets, cfg.L1Ways = 8, 2
	cfg.TDSets, cfg.TDWays = 128, 4
	cfg.EDSets, cfg.EDWays = 128, 4
	e := newEngine(t, cfg)
	w := newTrafficMix(31)
	for i := 0; i < 120_000; i++ {
		c, l, _ := w()
		// Write-heavy to exercise the upgrade path constantly.
		e.Access(c, l%4096, i%3 == 0)
		if i%20_000 == 19_999 {
			if err := e.CheckInvariants(); err != nil {
				t.Fatalf("after %d accesses: %v", i+1, err)
			}
		}
	}
	var rekeys uint64
	for s := 0; s < cfg.Cores; s++ {
		if rm, ok := e.Slice(s).(interface{ RekeyCount() uint64 }); ok {
			rekeys += rm.RekeyCount()
		}
	}
	if rekeys == 0 {
		t.Fatal("the run never re-keyed; regression scenario not exercised")
	}
}

// TestWayPartitionedLongRun is the regression test for the fill-cascade
// self-invalidation: filling a line can evict a victim whose directory
// cascade conflict-invalidates the just-filled line (likeliest with the
// way-partitioned design's tiny per-core partitions); the engine must not
// then install the line in the L1.
func TestWayPartitionedLongRun(t *testing.T) {
	cfg := config.WayPartitionedConfig(8)
	cfg.L2Sets, cfg.L2Ways = 64, 8
	cfg.L1Sets, cfg.L1Ways = 8, 2
	cfg.TDSets, cfg.TDWays = 64, 8
	cfg.EDSets, cfg.EDWays = 64, 8
	e := newEngine(t, cfg)
	w := newTrafficMix(41)
	for i := 0; i < 150_000; i++ {
		c, l, wr := w()
		e.Access(int(uint(c))%8, l%8192, wr)
		if i%25_000 == 24_999 {
			if err := e.CheckInvariants(); err != nil {
				t.Fatalf("after %d accesses: %v", i+1, err)
			}
		}
	}
}

// TestOccupancySnapshot checks the introspection API: after warming a SecDir
// machine, the ED holds entries, conflicts have parked some in VDs, and the
// per-core totals add up.
func TestOccupancySnapshot(t *testing.T) {
	cfg := smallConfig(config.SecDir)
	e := newEngine(t, cfg)
	w := newTrafficMix(51)
	for i := 0; i < 40000; i++ {
		c, l, wr := w()
		e.Access(c, l, wr)
	}
	o := e.OccupancySnapshot()
	if o.EDEntries == 0 || o.EDCapacity == 0 {
		t.Fatalf("ED occupancy empty: %+v", o)
	}
	if o.EDFill() <= 0 || o.EDFill() > 1 || o.TDFill() > 1 || o.VDFill() > 1 {
		t.Fatalf("fill fractions out of range: %v %v %v", o.EDFill(), o.TDFill(), o.VDFill())
	}
	sum := 0
	for _, n := range o.VDPerCore {
		sum += n
	}
	if sum != o.VDEntries {
		t.Fatalf("per-core VD sum %d != total %d", sum, o.VDEntries)
	}
	// Baseline machines have no VD.
	eb := newEngine(t, smallConfig(config.Baseline))
	eb.Access(0, 1, false)
	if ob := eb.OccupancySnapshot(); ob.VDCapacity != 0 || ob.VDFill() != 0 {
		t.Fatalf("baseline reports VD occupancy: %+v", ob)
	}
}
